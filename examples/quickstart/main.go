// Quickstart: boot a simulated host, run a deflatable and an on-demand
// VM on it, reclaim resources with each mechanism, and reinflate.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vmdeflate"
)

func main() {
	log.SetFlags(0)

	// A 48-CPU / 128 GB server, as in the paper's evaluation.
	host, err := vmdeflate.NewHost(vmdeflate.HostConfig{
		Name:     "node-0",
		Capacity: vmdeflate.NewVector(48, 131072, 1000, 10000),
	})
	if err != nil {
		log.Fatal(err)
	}

	// A low-priority deflatable VM...
	low, err := host.Define(vmdeflate.DomainConfig{
		Name:       "webapp",
		Size:       vmdeflate.NewVector(16, 32768, 100, 1000),
		Deflatable: true,
		Priority:   0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := low.Start(); err != nil {
		log.Fatal(err)
	}
	// ... with an application footprint inside the guest (6 GB resident,
	// 8 GB page cache), which bounds explicit memory unplug.
	low.Guest().SetWorkload(6144, 8192)

	fmt.Println("undeflated:", low.Effective())

	// Transparent deflation: the guest is unaware, allocations are
	// fine-grained.
	got, err := vmdeflate.DeflateByFraction(vmdeflate.TransparentMechanism, low, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("transparent 50%:", got, "| guest still sees",
		low.Guest().OnlineVCPUs(), "vCPUs")

	// Hybrid deflation (Figure 13): hot-unplug what the guest can safely
	// give up, multiplex the rest.
	got, err = vmdeflate.DeflateByFraction(vmdeflate.HybridMechanism, low, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hybrid 50%:     ", got, "| guest now sees",
		low.Guest().OnlineVCPUs(), "vCPUs,",
		low.Guest().PluggedMemoryMB(), "MB plugged")

	// Reinflate to full size (deflation run backwards).
	got, err = vmdeflate.HybridMechanism.Apply(low, low.MaxSize())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reinflated:     ", got)

	// The host accounts committed vs capacity; an arriving on-demand VM
	// would be admitted by the cluster manager via deflation (see the
	// tracedriven example for the cluster-scale version).
	od, err := host.Define(vmdeflate.DomainConfig{
		Name: "database",
		Size: vmdeflate.NewVector(40, 98304, 500, 5000),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := od.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed %.0f of %.0f cores (overcommit %.0f%%)\n",
		host.Committed().Get(vmdeflate.CPU),
		host.Capacity().Get(vmdeflate.CPU),
		host.Overcommit()*100)
}
