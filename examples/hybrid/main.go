// Hybrid: a walk-through of the three deflation mechanisms on a SpecJBB
// VM (the Figure 13/14 scenario): transparent multiplexing vs explicit
// hotplug vs the hybrid of both, under memory-only deflation.
//
// Run with: go run ./examples/hybrid
package main

import (
	"fmt"
	"log"

	"vmdeflate"
)

func main() {
	log.SetFlags(0)

	for _, mech := range []vmdeflate.Mechanism{
		vmdeflate.TransparentMechanism,
		vmdeflate.ExplicitMechanism,
		vmdeflate.HybridMechanism,
	} {
		host, err := vmdeflate.NewHost(vmdeflate.HostConfig{
			Name:     "host-" + mech.Name(),
			Capacity: vmdeflate.NewVector(64, 262144, 2000, 20000),
		})
		if err != nil {
			log.Fatal(err)
		}
		d, err := host.Define(vmdeflate.DomainConfig{
			Name:       "specjbb",
			Size:       vmdeflate.NewVector(8, 16384, 200, 2000),
			Deflatable: true,
			Priority:   0.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := d.Start(); err != nil {
			log.Fatal(err)
		}
		// JVM-style footprint: ~9 GB resident (heap), small cache.
		d.Guest().SetWorkload(9000, 800)

		// Deflate memory only, by 40%.
		target := d.MaxSize().With(vmdeflate.Memory, 16384*0.6)
		got, err := mech.Apply(d, target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s effective=%v\n", mech.Name()+":", got)
		fmt.Printf("%-12s guest: %d vCPUs online, %.0f MB plugged, swap pressure %.2f\n\n",
			"", d.Guest().OnlineVCPUs(), d.Guest().PluggedMemoryMB(), d.SwapPressure())
	}
	fmt.Println("Transparent deflation leaves the guest oblivious (and pays swap),",
		"\nexplicit hotplug stops at the guest's RSS safety threshold, and hybrid",
		"\nunplugs what is safe before multiplexing the remainder (Figure 13).")
}
