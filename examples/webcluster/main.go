// Webcluster: the Figure 19 scenario — three Wikipedia replicas behind
// a load balancer; two replicas are deflated progressively, and the
// deflation-aware balancer is compared with vanilla weighted round
// robin.
//
// Run with: go run ./examples/webcluster
package main

import (
	"fmt"
	"log"

	"vmdeflate"
)

func main() {
	log.SetFlags(0)

	cfg := vmdeflate.DefaultLBConfig()
	cfg.Duration = 60

	fmt.Println("3 Wikipedia replicas (10 cores each), 200 req/s; replicas 1-2 deflatable")
	fmt.Printf("%8s  %21s  %21s\n", "", "mean RT (s)", "p90 RT (s)")
	fmt.Printf("%8s  %10s %10s  %10s %10s\n", "defl%", "aware", "vanilla", "aware", "vanilla")
	for _, pct := range []float64{0, 20, 40, 60, 80} {
		aware, err := vmdeflate.RunLBExperiment(cfg, pct, true)
		if err != nil {
			log.Fatal(err)
		}
		vanilla, err := vmdeflate.RunLBExperiment(cfg, pct, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.0f  %10.3f %10.3f  %10.3f %10.3f\n",
			pct, aware.Mean, vanilla.Mean, aware.P90, vanilla.P90)
	}
	fmt.Println("\nThe deflation-aware balancer shifts load toward the undeflated",
		"\nreplica as deflation deepens, cutting tail latency (paper: 15-40%).")
}
