// Tracedriven: the Figure 20-22 scenario at demo scale — generate an
// Azure-like trace, replay it through the deflation-aware cluster
// manager at increasing overcommitment, and compare against the
// preemption baseline.
//
// Run with: go run ./examples/tracedriven
package main

import (
	"fmt"
	"log"

	"vmdeflate"
)

func main() {
	log.SetFlags(0)

	cfg := vmdeflate.DefaultAzureConfig()
	cfg.NumVMs = 1200
	tr := vmdeflate.GenerateAzureTrace(cfg)

	base, err := vmdeflate.BaselineServerCount(tr, vmdeflate.DefaultServerCapacity())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d VMs; baseline cluster: %d servers (48 CPU / 128 GB each)\n\n",
		len(tr.VMs), base)

	ocs := []float64{0, 20, 40, 60}
	for _, strategy := range []string{
		vmdeflate.StrategyProportional,
		vmdeflate.StrategyPreemption,
	} {
		sr, err := vmdeflate.SweepOvercommit(tr, strategy, ocs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- %s\n%8s %14s %14s %14s\n",
			strategy, "oc%", "failure prob", "tput loss %", "rev-static +%")
		inc := vmdeflate.RevenueIncrease(sr, "static")
		for i, p := range sr.Points {
			fmt.Printf("%8.0f %14.4f %14.2f %14.1f\n",
				p.OvercommitPct, p.FailureProbability, p.ThroughputLossPct, inc[i])
		}
		fmt.Println()
	}
	fmt.Println("Deflation admits the same load with a fraction of the failures",
		"\npreemption causes, while revenue grows with overcommitment (Fig 20-22).")
}
