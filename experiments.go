package vmdeflate

import (
	"vmdeflate/internal/apps"
	"vmdeflate/internal/clustersim"
	"vmdeflate/internal/feasibility"
	"vmdeflate/internal/trace"
)

// This file exposes the paper's experiment harnesses through the public
// API: the Section 3 feasibility analysis, the Section 7.2-7.3 testbed
// application experiments, and the Section 7.4 cluster-scale simulation.

// --- Feasibility analysis (Figures 5-12) ---

// FeasibilityTable is a per-deflation-level population summary.
type FeasibilityTable = feasibility.Table

// DefaultDeflationLevels is the x-axis shared by Figures 5-12.
func DefaultDeflationLevels() []float64 {
	return append([]float64(nil), feasibility.DefaultDeflationLevels...)
}

// CPUFeasibility computes Figure 5 from an Azure-like trace.
func CPUFeasibility(tr *AzureTrace, levels []float64) (FeasibilityTable, error) {
	return feasibility.CPUFeasibility(tr, levels)
}

// FeasibilityByClass computes Figure 6.
func FeasibilityByClass(tr *AzureTrace, levels []float64) ([]FeasibilityTable, error) {
	return feasibility.ByClass(tr, levels)
}

// FeasibilityBySize computes Figure 7.
func FeasibilityBySize(tr *AzureTrace, levels []float64) ([]FeasibilityTable, error) {
	return feasibility.BySize(tr, levels)
}

// FeasibilityByPeak computes Figure 8.
func FeasibilityByPeak(tr *AzureTrace, levels []float64) ([]FeasibilityTable, error) {
	return feasibility.ByPeak(tr, levels)
}

// FormatFeasibilityTable renders a table as aligned text.
func FormatFeasibilityTable(t FeasibilityTable) string { return feasibility.FormatTable(t) }

// --- Application experiments (Figures 3, 14, 16-19) ---

// WikipediaConfig parameterises the Figure 16/17 experiment.
type WikipediaConfig = apps.WikipediaConfig

// WikipediaPoint is one deflation level's measurements.
type WikipediaPoint = apps.WikipediaPoint

// DefaultWikipediaConfig mirrors Section 7.2 (30 cores, 800 req/s).
func DefaultWikipediaConfig() WikipediaConfig { return apps.DefaultWikipediaConfig() }

// RunWikipedia measures the Wikipedia application at one CPU deflation
// level.
func RunWikipedia(cfg WikipediaConfig, deflPct float64) (WikipediaPoint, error) {
	return apps.RunWikipedia(cfg, deflPct)
}

// SocialNetConfig parameterises the Figure 18 experiment.
type SocialNetConfig = apps.SocialNetConfig

// SocialNetPoint is one deflation level's measurements.
type SocialNetPoint = apps.SocialNetPoint

// DefaultSocialNetConfig mirrors Section 7.2 (30 microservices, 500 req/s).
func DefaultSocialNetConfig() SocialNetConfig { return apps.DefaultSocialNetConfig() }

// RunSocialNetwork measures the social-network application with 22 of
// its 30 microservices deflated by deflPct.
func RunSocialNetwork(cfg SocialNetConfig, deflPct float64) (SocialNetPoint, error) {
	return apps.RunSocialNetwork(cfg, deflPct)
}

// LBConfig parameterises the Figure 19 experiment.
type LBConfig = apps.LBConfig

// LBPoint is one deflation level's measurements for one balancer.
type LBPoint = apps.LBPoint

// DefaultLBConfig mirrors Section 7.3 (3 replicas, 200 req/s).
func DefaultLBConfig() LBConfig { return apps.DefaultLBConfig() }

// RunLBExperiment measures response times behind a vanilla or
// deflation-aware load balancer at one deflation level.
func RunLBExperiment(cfg LBConfig, deflPct float64, deflationAware bool) (LBPoint, error) {
	return apps.RunLBExperiment(cfg, deflPct, deflationAware)
}

// --- Cluster-scale simulation (Figures 20-22) ---

// SimConfig parameterises a trace-driven cluster simulation run.
type SimConfig = clustersim.Config

// SimResult summarises one run.
type SimResult = clustersim.Result

// SimSweepResult holds a full overcommitment sweep for one strategy.
type SimSweepResult = clustersim.SweepResult

// Simulation strategies.
const (
	StrategyProportional  = clustersim.StrategyProportional
	StrategyPriority      = clustersim.StrategyPriority
	StrategyDeterministic = clustersim.StrategyDeterministic
	StrategyPartitioned   = clustersim.StrategyPartitioned
	StrategyPreemption    = clustersim.StrategyPreemption
)

// RunSimulation executes one trace-driven cluster simulation.
func RunSimulation(cfg SimConfig) (*SimResult, error) { return clustersim.Run(cfg) }

// SweepOvercommit runs one strategy across overcommitment percentages.
func SweepOvercommit(tr *AzureTrace, strategy string, overcommitPcts []float64) (*SimSweepResult, error) {
	return clustersim.Sweep(tr, strategy, overcommitPcts)
}

// SimSweepOptions tunes sweep execution (worker count, pinned baseline).
type SimSweepOptions = clustersim.Options

// SweepGrid fans a strategy × overcommitment grid out across all cores;
// results are bit-for-bit those of a sequential sweep.
func SweepGrid(tr *AzureTrace, strategies []string, overcommitPcts []float64, opts SimSweepOptions) ([]*SimSweepResult, error) {
	return clustersim.SweepGrid(tr, strategies, overcommitPcts, opts)
}

// ScenarioConfig parameterises the synthetic workload generators
// (azure, diurnal, bursty, heavytail).
type ScenarioConfig = trace.ScenarioConfig

// GenerateScenario builds a synthetic trace for a workload scenario.
func GenerateScenario(cfg ScenarioConfig) (*AzureTrace, error) {
	return trace.GenerateScenario(cfg)
}

// RevenueIncrease converts a sweep's revenue into Figure 22's
// "increase in revenue %" series for one pricing scheme.
func RevenueIncrease(sr *SimSweepResult, scheme string) []float64 {
	return clustersim.RevenueIncrease(sr, scheme)
}

// BaselineServerCount returns the minimum cluster size that runs the
// trace without rejections at full allocations.
func BaselineServerCount(tr *AzureTrace, serverCapacity Vector) (int, error) {
	return clustersim.BaselineServerCount(tr, serverCapacity)
}

// DefaultServerCapacity is the paper's server: 48 CPUs, 128 GB.
func DefaultServerCapacity() Vector { return clustersim.DefaultServerCapacity() }

// SampleInterval is the trace sampling granularity (300 s).
const SampleInterval = trace.SampleInterval
