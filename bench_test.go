package vmdeflate

// One benchmark per figure of the paper's evaluation. Each benchmark
// regenerates its figure's data series and attaches the figure's
// headline quantity as a custom metric (b.ReportMetric), so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
// EXPERIMENTS.md records paper-vs-measured for every series.

import (
	"runtime"
	"sync"
	"testing"

	"vmdeflate/internal/apps"
	"vmdeflate/internal/clustersim"
	"vmdeflate/internal/feasibility"
	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/trace"
)

// Shared fixtures, built once.
var (
	azureOnce sync.Once
	azureTr   *trace.AzureTrace
	azureBase int
	alibabaTr *trace.AlibabaTrace
)

func fixtures(b *testing.B) (*trace.AzureTrace, *trace.AlibabaTrace, int) {
	b.Helper()
	azureOnce.Do(func() {
		cfg := trace.DefaultAzureConfig()
		cfg.NumVMs = 1500
		cfg.Duration = 2 * 86400
		azureTr = trace.GenerateAzure(cfg)
		acfg := trace.DefaultAlibabaConfig()
		acfg.NumContainers = 1500
		alibabaTr = trace.GenerateAlibaba(acfg)
		n, err := clustersim.BaselineServerCount(azureTr, clustersim.DefaultServerCapacity())
		if err != nil {
			panic(err)
		}
		azureBase = n
	})
	return azureTr, alibabaTr, azureBase
}

var allLevels = []float64{10, 20, 30, 40, 50, 60, 70, 80, 90}

// BenchmarkFig03_AppDeflationCurves regenerates Figure 3: normalised
// performance of SpecJBB, kernel-compile and memcached when all
// resources are deflated together. Reported metric: memcached's
// performance at 50% deflation (the paper's most deflation-tolerant
// application).
func BenchmarkFig03_AppDeflationCurves(b *testing.B) {
	pcts := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	var mcAt50 float64
	for i := 0; i < b.N; i++ {
		for _, m := range []apps.ResourceModel{apps.SpecJBB{}, apps.Kcompile{}, apps.Memcached{}} {
			pts, err := apps.DeflationCurve(m, mechanism.Transparent{}, pcts)
			if err != nil {
				b.Fatal(err)
			}
			if m.Name() == "memcached" {
				mcAt50 = pts[5].Performance
			}
		}
	}
	b.ReportMetric(mcAt50, "memcached_perf@50%")
}

// BenchmarkFig05_CPUFeasibility regenerates Figure 5. Reported metric:
// median fraction of time above the deflated allocation at 50%
// deflation (paper: ~0.2).
func BenchmarkFig05_CPUFeasibility(b *testing.B) {
	tr, _, _ := fixtures(b)
	b.ResetTimer()
	var med float64
	for i := 0; i < b.N; i++ {
		t, err := feasibility.CPUFeasibility(tr, allLevels)
		if err != nil {
			b.Fatal(err)
		}
		med = t.Rows[4].Box.Median // 50% level
	}
	b.ReportMetric(med, "median_fracAbove@50%")
}

// BenchmarkFig06_ByClass regenerates Figure 6. Reported metric: mean
// fraction-above for interactive VMs at 50% deflation (paper: <=0.15).
func BenchmarkFig06_ByClass(b *testing.B) {
	tr, _, _ := fixtures(b)
	b.ResetTimer()
	var interactive float64
	for i := 0; i < b.N; i++ {
		ts, err := feasibility.ByClass(tr, allLevels)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range ts {
			if t.Name == "interactive" {
				interactive = t.Rows[4].Box.Mean
			}
		}
	}
	b.ReportMetric(interactive, "interactive_mean@50%")
}

// BenchmarkFig07_BySize regenerates Figure 7. Reported metric: spread of
// the size-class means at 50% deflation (paper: no correlation, small
// spread).
func BenchmarkFig07_BySize(b *testing.B) {
	tr, _, _ := fixtures(b)
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		ts, err := feasibility.BySize(tr, allLevels)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := 1.0, 0.0
		for _, t := range ts {
			m := t.Rows[4].Box.Mean
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		spread = hi - lo
	}
	b.ReportMetric(spread, "size_mean_spread@50%")
}

// BenchmarkFig08_ByPeak regenerates Figure 8. Reported metric: mean
// fraction-above for low-peak VMs (p95<33) at 20% deflation (paper: ~0).
func BenchmarkFig08_ByPeak(b *testing.B) {
	tr, _, _ := fixtures(b)
	b.ResetTimer()
	var lowPeak float64
	for i := 0; i < b.N; i++ {
		ts, err := feasibility.ByPeak(tr, allLevels)
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range ts {
			if t.Name == "p95<33" {
				lowPeak = t.Rows[1].Box.Mean // 20% level
			}
		}
	}
	b.ReportMetric(lowPeak, "lowpeak_mean@20%")
}

// BenchmarkFig09_Memory regenerates Figure 9. Reported metric: mean
// fraction of time memory occupancy exceeds a 10%-deflated allocation
// (paper: >0.7).
func BenchmarkFig09_Memory(b *testing.B) {
	_, tr, _ := fixtures(b)
	b.ResetTimer()
	var at10 float64
	for i := 0; i < b.N; i++ {
		t, err := feasibility.MemoryFeasibility(tr, allLevels)
		if err != nil {
			b.Fatal(err)
		}
		at10 = t.Rows[0].Box.Mean
	}
	b.ReportMetric(at10, "mem_mean_fracAbove@10%")
}

// BenchmarkFig10_MemBandwidth regenerates Figure 10. Reported metric:
// mean memory-bus bandwidth utilisation (paper: <0.1%).
func BenchmarkFig10_MemBandwidth(b *testing.B) {
	_, tr, _ := fixtures(b)
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		s, err := feasibility.MemoryBandwidthUsage(tr)
		if err != nil {
			b.Fatal(err)
		}
		mean = s.MeanOfMeans
	}
	b.ReportMetric(mean, "membw_mean_pct")
}

// BenchmarkFig11_Disk regenerates Figure 11. Reported metric: mean
// fraction-above at 50% disk deflation (paper: <0.01).
func BenchmarkFig11_Disk(b *testing.B) {
	_, tr, _ := fixtures(b)
	b.ResetTimer()
	var at50 float64
	for i := 0; i < b.N; i++ {
		t, err := feasibility.DiskFeasibility(tr, allLevels)
		if err != nil {
			b.Fatal(err)
		}
		at50 = t.Rows[4].Box.Mean
	}
	b.ReportMetric(at50, "disk_mean_fracAbove@50%")
}

// BenchmarkFig12_Network regenerates Figure 12. Reported metric: mean
// fraction-above at 70% network deflation (paper: ~0.01).
func BenchmarkFig12_Network(b *testing.B) {
	_, tr, _ := fixtures(b)
	b.ResetTimer()
	var at70 float64
	for i := 0; i < b.N; i++ {
		t, err := feasibility.NetworkFeasibility(tr, allLevels)
		if err != nil {
			b.Fatal(err)
		}
		at70 = t.Rows[6].Box.Mean
	}
	b.ReportMetric(at70, "net_mean_fracAbove@70%")
}

// BenchmarkFig14_SpecJBBHybrid regenerates Figure 14: SpecJBB mean RT
// under transparent vs hybrid memory deflation. Reported metric: hybrid's
// advantage over transparent at 45% deflation.
func BenchmarkFig14_SpecJBBHybrid(b *testing.B) {
	pcts := []float64{0, 10, 20, 30, 40, 45}
	var advantage float64
	for i := 0; i < b.N; i++ {
		tr, err := apps.SpecJBBMemoryCurve(mechanism.Transparent{}, pcts)
		if err != nil {
			b.Fatal(err)
		}
		hy, err := apps.SpecJBBMemoryCurve(mechanism.Hybrid{}, pcts)
		if err != nil {
			b.Fatal(err)
		}
		advantage = tr[5].MeanRTNormalized - hy[5].MeanRTNormalized
	}
	b.ReportMetric(advantage, "hybrid_RT_advantage@45%")
}

// BenchmarkFig16_WikipediaRT regenerates Figure 16 (response-time
// distribution under CPU deflation). Reported metric: mean RT ratio
// 80%-deflated vs undeflated (paper: ~2x).
func BenchmarkFig16_WikipediaRT(b *testing.B) {
	cfg := apps.DefaultWikipediaConfig()
	cfg.Duration = 40
	var ratio float64
	for i := 0; i < b.N; i++ {
		base, err := apps.RunWikipedia(cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		d80, err := apps.RunWikipedia(cfg, 80)
		if err != nil {
			b.Fatal(err)
		}
		ratio = d80.Mean / base.Mean
	}
	b.ReportMetric(ratio, "meanRT_80%/0%")
}

// BenchmarkFig17_RequestsServed regenerates Figure 17 (% requests
// served). Reported metric: served fraction at 70% deflation (paper:
// ~1.0 — loss only beyond 70%).
func BenchmarkFig17_RequestsServed(b *testing.B) {
	cfg := apps.DefaultWikipediaConfig()
	cfg.Duration = 40
	var served float64
	for i := 0; i < b.N; i++ {
		p, err := apps.RunWikipedia(cfg, 70)
		if err != nil {
			b.Fatal(err)
		}
		served = p.ServedFraction
	}
	b.ReportMetric(served, "served@70%")
}

// BenchmarkFig18_Microservices regenerates Figure 18 (social network
// response times at 0/30/50/60/65% deflation). Reported metric: p99
// ratio 65% vs 50% (the abrupt knee).
func BenchmarkFig18_Microservices(b *testing.B) {
	cfg := apps.DefaultSocialNetConfig()
	cfg.Duration = 40
	var knee float64
	for i := 0; i < b.N; i++ {
		pts, err := apps.SocialNetworkSweep(cfg, []float64{0, 30, 50, 60, 65})
		if err != nil {
			b.Fatal(err)
		}
		knee = pts[4].P99 / pts[2].P99
	}
	b.ReportMetric(knee, "p99_65%/50%")
}

// BenchmarkFig19_DeflationAwareLB regenerates Figure 19. Reported
// metric: tail-latency reduction of the deflation-aware balancer at 70%
// deflation (paper: 15-40% lower).
func BenchmarkFig19_DeflationAwareLB(b *testing.B) {
	cfg := apps.DefaultLBConfig()
	cfg.Duration = 40
	var reduction float64
	for i := 0; i < b.N; i++ {
		aware, err := apps.RunLBExperiment(cfg, 70, true)
		if err != nil {
			b.Fatal(err)
		}
		vanilla, err := apps.RunLBExperiment(cfg, 70, false)
		if err != nil {
			b.Fatal(err)
		}
		reduction = 1 - aware.P90/vanilla.P90
	}
	b.ReportMetric(reduction*100, "p90_reduction_pct@70%")
}

// BenchmarkFig20_FailureProbability regenerates Figure 20 at 50%
// overcommitment. Reported metrics: failure probability for proportional
// deflation (paper: ~0) and the preemption baseline (paper: >0.1 and
// climbing to 0.35 by 70%).
func BenchmarkFig20_FailureProbability(b *testing.B) {
	tr, _, base := fixtures(b)
	b.ResetTimer()
	var defl, pre float64
	for i := 0; i < b.N; i++ {
		d, err := clustersim.Run(clustersim.Config{
			Trace: tr, Overcommit: 0.5, BaselineServers: base,
		})
		if err != nil {
			b.Fatal(err)
		}
		p, err := clustersim.Run(clustersim.Config{
			Trace: tr, Mode: clustersim.ModePreemption, Overcommit: 0.5, BaselineServers: base,
		})
		if err != nil {
			b.Fatal(err)
		}
		defl, pre = d.FailureProbability, p.FailureProbability
	}
	b.ReportMetric(defl, "deflation_failprob@50%OC")
	b.ReportMetric(pre, "preemption_failprob@50%OC")
}

// BenchmarkFig21_ThroughputLoss regenerates Figure 21 at 50%
// overcommitment. Reported metric: throughput loss % for proportional
// deflation (paper: ~1%).
func BenchmarkFig21_ThroughputLoss(b *testing.B) {
	tr, _, base := fixtures(b)
	b.ResetTimer()
	var loss float64
	for i := 0; i < b.N; i++ {
		d, err := clustersim.Run(clustersim.Config{
			Trace: tr, Overcommit: 0.5, BaselineServers: base,
		})
		if err != nil {
			b.Fatal(err)
		}
		loss = d.ThroughputLoss * 100
	}
	b.ReportMetric(loss, "tput_loss_pct@50%OC")
}

// BenchmarkFig22_Revenue regenerates Figure 22. Reported metric: static
// revenue increase at 60% overcommitment (paper: ~15%).
func BenchmarkFig22_Revenue(b *testing.B) {
	tr, _, _ := fixtures(b)
	b.ResetTimer()
	var inc float64
	for i := 0; i < b.N; i++ {
		sr, err := clustersim.Sweep(tr, clustersim.StrategyProportional, []float64{0, 60})
		if err != nil {
			b.Fatal(err)
		}
		inc = clustersim.RevenueIncrease(sr, "static")[1]
	}
	b.ReportMetric(inc, "static_rev_increase_pct@60%OC")
}

// --- Cluster-scale sweep engine benchmarks ---

// Sweep fixture: a 10k-VM Azure-like trace with its baseline cluster
// size, built once. This is the scale the parallel sweep layer exists
// for; the per-figure fixtures above stay small to keep `go test` fast.
var (
	sweepOnce sync.Once
	sweepTr   *trace.AzureTrace
	sweepBase int
)

func sweepFixture(b *testing.B) (*trace.AzureTrace, int) {
	b.Helper()
	sweepOnce.Do(func() {
		cfg := trace.DefaultAzureConfig()
		cfg.NumVMs = 10000
		cfg.Duration = 2 * 86400
		sweepTr = trace.GenerateAzure(cfg)
		n, err := clustersim.BaselineServerCount(sweepTr, clustersim.DefaultServerCapacity())
		if err != nil {
			panic(err)
		}
		sweepBase = n
	})
	return sweepTr, sweepBase
}

// sweepGridBench runs the benchmark grid — two deflation strategies at
// two overcommitment levels, the shape of one Figure 20/21 panel — with
// the given worker count.
func sweepGridBench(b *testing.B, workers int) {
	tr, base := sweepFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := clustersim.SweepGrid(tr,
			[]string{clustersim.StrategyProportional, clustersim.StrategyPriority},
			[]float64{30, 60},
			clustersim.Options{Workers: workers, BaselineServers: base})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[0].Points[1].ThroughputLossPct, "prop_loss_pct@60%OC")
	}
}

// BenchmarkSweep10kSequential is the Workers=1 reference point for the
// parallel engine: the identical grid, one run at a time.
func BenchmarkSweep10kSequential(b *testing.B) { sweepGridBench(b, 1) }

// BenchmarkSweep10kParallel fans the same grid out across all cores.
// Results are bit-for-bit those of the sequential run (guarded by
// TestSweepGridParallelMatchesSequential); on >= 4 cores the wall clock
// should drop to roughly the slowest single point, i.e. >= 2x faster
// than sequential.
func BenchmarkSweep10kParallel(b *testing.B) { sweepGridBench(b, 0) }

// BenchmarkDeflationRun10k measures ONE deflation-mode run — the unit
// the capacity index accelerates — at 10k VMs and 50% overcommitment.
// The PR 1 baseline for this run shape was ~4.3 s; the indexed manager
// must hold a >= 5x improvement.
func BenchmarkDeflationRun10k(b *testing.B) {
	tr, base := sweepFixture(b)
	b.ResetTimer()
	var fail float64
	for i := 0; i < b.N; i++ {
		res, err := clustersim.Run(clustersim.Config{
			Trace: tr, Overcommit: 0.5, BaselineServers: base,
		})
		if err != nil {
			b.Fatal(err)
		}
		fail = res.FailureProbability
	}
	b.ReportMetric(fail, "failprob@50%OC")
}

// BenchmarkDeflationRunReference10k is the identical run through the
// retained brute-force reference path: the indexed/reference ratio is
// the capacity index's direct speedup, with every other PR change held
// constant.
func BenchmarkDeflationRunReference10k(b *testing.B) {
	tr, base := sweepFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clustersim.Run(clustersim.Config{
			Trace: tr, Overcommit: 0.5, BaselineServers: base, ReferencePlacement: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// 100k fixture: a heavy-tail trace at the cloud-scale target, sized by
// the cheap peak-demand bound (the packing replay of the full baseline
// bound would dwarf the run being measured).
var (
	hundredKOnce sync.Once
	hundredKTr   *trace.AzureTrace
	hundredKBase int
)

func hundredKFixture(b *testing.B) (*trace.AzureTrace, int) {
	b.Helper()
	hundredKOnce.Do(func() {
		tr, err := trace.GenerateScenario(trace.ScenarioConfig{
			Kind: trace.ScenarioHeavyTail, NumVMs: 100000, Duration: 3 * 86400, Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		hundredKTr = tr
		n, err := clustersim.PeakServerLowerBound(tr, clustersim.DefaultServerCapacity())
		if err != nil {
			panic(err)
		}
		hundredKBase = n
	})
	return hundredKTr, hundredKBase
}

// BenchmarkDeflationRun100k is the cloud-scale single-run target the
// capacity index and the zero-allocation policy hot path exist for:
// 100k VMs in one trace, one engine, fully sequential.
func BenchmarkDeflationRun100k(b *testing.B) {
	tr, base := hundredKFixture(b)
	b.ResetTimer()
	var admitted int
	for i := 0; i < b.N; i++ {
		res, err := clustersim.Run(clustersim.Config{
			Trace: tr, Overcommit: 0.5, BaselineServers: base,
		})
		if err != nil {
			b.Fatal(err)
		}
		admitted = res.Admitted
	}
	b.ReportMetric(float64(admitted), "admitted")
}

// BenchmarkDeflationRun100kSharded is the identical run partitioned
// across GOMAXPROCS shards (sample metering and departure-batch
// reinflation fan out inside per-timestamp barriers). Results are
// bit-for-bit those of the sequential run — guarded by
// TestShardedEngineMatchesSequentialAndReference — so the ratio to
// BenchmarkDeflationRun100k is pure intra-run parallelism.
func BenchmarkDeflationRun100kSharded(b *testing.B) {
	tr, base := hundredKFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := clustersim.Run(clustersim.Config{
			Trace: tr, Overcommit: 0.5, BaselineServers: base, Shards: runtime.GOMAXPROCS(0),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioBursty10k exercises the engine on the flash-crowd
// scenario at 10k-VM scale: one proportional-deflation point at 50%
// overcommitment, trace generated fresh each iteration from a fixed
// seed (per-run RNG, as the replicated sweeps use).
func BenchmarkScenarioBursty10k(b *testing.B) {
	var fail float64
	for i := 0; i < b.N; i++ {
		tr, err := trace.GenerateScenario(trace.ScenarioConfig{
			Kind: trace.ScenarioBursty, NumVMs: 10000, Duration: 2 * 86400, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := clustersim.Run(clustersim.Config{Trace: tr, Overcommit: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		fail = res.FailureProbability
	}
	b.ReportMetric(fail, "failprob@50%OC")
}

// BenchmarkScenarioGen100k measures trace synthesis alone at 100k-VM
// scale — the generator must never be the bottleneck of a cloud-scale
// sweep.
func BenchmarkScenarioGen100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := trace.GenerateScenario(trace.ScenarioConfig{
			Kind: trace.ScenarioHeavyTail, NumVMs: 100000, Duration: 3 * 86400, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.VMs) != 100000 {
			b.Fatalf("generated %d VMs", len(tr.VMs))
		}
	}
}

// BenchmarkAblationHybridThreshold ablates the hybrid mechanism's
// switchover point: swap pressure paid when deflating a memory-heavy VM
// to 50% with hybrid (hotplug stops at RSS) vs pure transparent.
func BenchmarkAblationHybridThreshold(b *testing.B) {
	pcts := []float64{45}
	var trRT, hyRT float64
	for i := 0; i < b.N; i++ {
		tr, err := apps.SpecJBBMemoryCurve(mechanism.Transparent{}, pcts)
		if err != nil {
			b.Fatal(err)
		}
		hy, err := apps.SpecJBBMemoryCurve(mechanism.Hybrid{}, pcts)
		if err != nil {
			b.Fatal(err)
		}
		trRT, hyRT = tr[0].MeanRTNormalized, hy[0].MeanRTNormalized
	}
	b.ReportMetric(trRT/hyRT, "transparent/hybrid_RT@45%")
}

// BenchmarkAblationPolicies ablates the server-level policy choice at
// 60% overcommitment: deterministic deflation's throughput loss relative
// to plain proportional (Section 7.4.2 finds priority-aware policies cut
// the loss).
func BenchmarkAblationPolicies(b *testing.B) {
	tr, _, base := fixtures(b)
	b.ResetTimer()
	var prop, det float64
	for i := 0; i < b.N; i++ {
		p, err := clustersim.Sweep(tr, clustersim.StrategyProportional, []float64{60})
		if err != nil {
			b.Fatal(err)
		}
		d, err := clustersim.Sweep(tr, clustersim.StrategyDeterministic, []float64{60})
		if err != nil {
			b.Fatal(err)
		}
		prop = p.Points[0].ThroughputLossPct
		det = d.Points[0].ThroughputLossPct
	}
	_ = base
	b.ReportMetric(prop, "proportional_loss_pct@60%OC")
	b.ReportMetric(det, "deterministic_loss_pct@60%OC")
}

// BenchmarkAblationPlacementPartitioning ablates priority-partitioned
// pools (Section 5.2.1) against mixed placement at 50% overcommitment.
func BenchmarkAblationPlacementPartitioning(b *testing.B) {
	tr, _, _ := fixtures(b)
	b.ResetTimer()
	var mixed, parted float64
	for i := 0; i < b.N; i++ {
		m, err := clustersim.Sweep(tr, clustersim.StrategyPriority, []float64{50})
		if err != nil {
			b.Fatal(err)
		}
		p, err := clustersim.Sweep(tr, clustersim.StrategyPartitioned, []float64{50})
		if err != nil {
			b.Fatal(err)
		}
		mixed = m.Points[0].ThroughputLossPct
		parted = p.Points[0].ThroughputLossPct
	}
	b.ReportMetric(mixed, "mixed_loss_pct@50%OC")
	b.ReportMetric(parted, "partitioned_loss_pct@50%OC")
}
