// Package guestos models the guest operating system inside a deflatable
// VM, as needed by the explicit (hotplug) deflation mechanisms of Section
// 4.3: vCPU online/offline with safety constraints, memory hot-unplug in
// coarse blocks bounded by the resident set size, page-cache reclaim, and
// the swap behaviour that makes transparent memory deflation below the
// working set expensive.
//
// The paper's prototype talks to the real guest kernel through the QEMU
// guest agent; this package is the synthetic equivalent, exposing the
// same success/partial-success semantics ("the hot unplug operation is
// allowed to return unfinished", Section 6).
package guestos

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by hotplug operations.
var (
	ErrInvalid = errors.New("guestos: invalid argument")
)

// Config sizes a guest.
type Config struct {
	// VCPUs is the configured (maximum) number of virtual CPUs.
	VCPUs int
	// MemoryMB is the configured (maximum) memory size.
	MemoryMB float64
	// MemBlockMB is the memory hotplug granularity. The default (128 MB)
	// matches the Linux memory-block size on x86.
	MemBlockMB float64
	// MinVCPUs is the number of vCPUs that can never be offlined (vCPU0
	// plus any IRQ-pinned CPUs). Default 1.
	MinVCPUs int
	// ReserveMB is kernel-reserved memory that can never be unplugged.
	// Default 256 MB.
	ReserveMB float64
}

func (c *Config) applyDefaults() {
	if c.MemBlockMB <= 0 {
		c.MemBlockMB = 128
	}
	if c.MinVCPUs <= 0 {
		c.MinVCPUs = 1
	}
	if c.ReserveMB <= 0 {
		c.ReserveMB = 256
	}
}

// GuestOS is a simulated guest kernel. It is not safe for concurrent use;
// the owning hypervisor domain serialises access.
type GuestOS struct {
	cfg Config

	onlineVCPUs int
	pluggedMB   float64

	rssMB   float64 // anonymous working set (heap, stacks)
	cacheMB float64 // reclaimable page cache / buffers

	// swappedMB tracks resident pages the guest had to push to swap
	// because plugged memory dropped below the working set (only happens
	// if the caller forces unplug below RSS, which the safety threshold
	// normally prevents).
	swappedMB float64
}

// New boots a guest with all configured resources online. RSS starts at a
// minimal kernel footprint; applications grow it via Touch/SetRSS.
func New(cfg Config) (*GuestOS, error) {
	cfg.applyDefaults()
	if cfg.VCPUs < cfg.MinVCPUs {
		return nil, fmt.Errorf("%w: %d vCPUs < minimum %d", ErrInvalid, cfg.VCPUs, cfg.MinVCPUs)
	}
	if cfg.MemoryMB < cfg.ReserveMB {
		return nil, fmt.Errorf("%w: %g MB memory < reserve %g MB", ErrInvalid, cfg.MemoryMB, cfg.ReserveMB)
	}
	return &GuestOS{
		cfg:         cfg,
		onlineVCPUs: cfg.VCPUs,
		pluggedMB:   cfg.MemoryMB,
		rssMB:       cfg.ReserveMB,
	}, nil
}

// Config returns the guest's configuration.
func (g *GuestOS) Config() Config { return g.cfg }

// OnlineVCPUs returns the number of currently online vCPUs.
func (g *GuestOS) OnlineVCPUs() int { return g.onlineVCPUs }

// PluggedMemoryMB returns the currently plugged memory.
func (g *GuestOS) PluggedMemoryMB() float64 { return g.pluggedMB }

// RSSMB returns the guest's resident set size: the paper's hot-unplug
// safety threshold for memory (Section 4.4).
func (g *GuestOS) RSSMB() float64 { return g.rssMB }

// PageCacheMB returns reclaimable page-cache size.
func (g *GuestOS) PageCacheMB() float64 { return g.cacheMB }

// SwappedMB returns how much of the working set is currently swapped out.
func (g *GuestOS) SwappedMB() float64 { return g.swappedMB }

// FreeMB returns plugged memory not used by RSS or cache.
func (g *GuestOS) FreeMB() float64 {
	f := g.pluggedMB - g.rssMB - g.cacheMB
	if f < 0 {
		return 0
	}
	return f
}

// SetWorkload installs an application memory footprint: rss of anonymous
// memory and cache of page cache. The cache is truncated to available
// space; rss beyond plugged memory is swapped.
func (g *GuestOS) SetWorkload(rssMB, cacheMB float64) error {
	if rssMB < 0 || cacheMB < 0 {
		return fmt.Errorf("%w: negative workload", ErrInvalid)
	}
	rssMB += g.cfg.ReserveMB
	g.rssMB = rssMB
	g.swappedMB = 0
	if g.rssMB > g.pluggedMB {
		g.swappedMB = g.rssMB - g.pluggedMB
		g.rssMB = g.pluggedMB
	}
	avail := g.pluggedMB - g.rssMB
	if cacheMB > avail {
		cacheMB = avail
	}
	g.cacheMB = cacheMB
	return nil
}

// UnplugVCPUs offlines up to n vCPUs, never going below MinVCPUs. It
// returns the number actually removed, mirroring the partial-success
// semantics of agent-based hotplug.
func (g *GuestOS) UnplugVCPUs(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("%w: negative vCPU count", ErrInvalid)
	}
	removable := g.onlineVCPUs - g.cfg.MinVCPUs
	if removable < 0 {
		removable = 0
	}
	if n > removable {
		n = removable
	}
	g.onlineVCPUs -= n
	return n, nil
}

// PlugVCPUs onlines up to n vCPUs, never exceeding the configured count.
// It returns the number actually added.
func (g *GuestOS) PlugVCPUs(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("%w: negative vCPU count", ErrInvalid)
	}
	addable := g.cfg.VCPUs - g.onlineVCPUs
	if n > addable {
		n = addable
	}
	g.onlineVCPUs += n
	return n, nil
}

// SafeUnplugMemoryMB returns the maximum memory that can currently be
// hot-unplugged without swapping: everything above RSS (cache is dropped
// first, then free memory), in whole blocks.
func (g *GuestOS) SafeUnplugMemoryMB() float64 {
	safe := g.pluggedMB - g.rssMB
	if safe < 0 {
		return 0
	}
	return math.Floor(safe/g.cfg.MemBlockMB) * g.cfg.MemBlockMB
}

// UnplugMemory removes up to mb of memory in whole blocks. Per the safety
// rule of Section 4.4 it never removes memory below the current RSS: if
// the request exceeds the safe amount, it unplugs only what is safe and
// "returns unfinished" with the smaller amount. Page cache is silently
// shrunk as needed (the guest drops clean pages).
func (g *GuestOS) UnplugMemory(mb float64) (float64, error) {
	if mb < 0 {
		return 0, fmt.Errorf("%w: negative memory", ErrInvalid)
	}
	req := math.Floor(mb/g.cfg.MemBlockMB) * g.cfg.MemBlockMB
	safe := g.SafeUnplugMemoryMB()
	if req > safe {
		req = safe
	}
	g.pluggedMB -= req
	// The guest preferentially surrenders free memory, then drops cache.
	if over := g.rssMB + g.cacheMB - g.pluggedMB; over > 0 {
		g.cacheMB -= over
		if g.cacheMB < 0 {
			g.cacheMB = 0
		}
	}
	return req, nil
}

// PlugMemory adds up to mb of memory in whole blocks, never exceeding the
// configured maximum. Swapped-out working set is transparently brought
// back in first. It returns the amount actually added.
func (g *GuestOS) PlugMemory(mb float64) (float64, error) {
	if mb < 0 {
		return 0, fmt.Errorf("%w: negative memory", ErrInvalid)
	}
	req := math.Floor(mb/g.cfg.MemBlockMB) * g.cfg.MemBlockMB
	if max := g.cfg.MemoryMB - g.pluggedMB; req > max {
		req = math.Floor(max/g.cfg.MemBlockMB) * g.cfg.MemBlockMB
	}
	g.pluggedMB += req
	// Swap-in.
	if g.swappedMB > 0 {
		in := math.Min(g.swappedMB, g.pluggedMB-g.rssMB-g.cacheMB)
		if in > 0 {
			g.swappedMB -= in
			g.rssMB += in
		}
	}
	return req, nil
}

// SwapPressure quantifies how far an externally imposed memory limit
// cuts into the guest's resident pages. limitMB is the effective physical
// memory granted by the hypervisor (which may be below the plugged size
// under transparent deflation). The result is the fraction of the RSS
// that does not fit — the input to the performance penalty models.
func (g *GuestOS) SwapPressure(limitMB float64) float64 {
	if limitMB >= g.rssMB || g.rssMB <= 0 {
		return 0
	}
	p := (g.rssMB - limitMB) / g.rssMB
	if p > 1 {
		p = 1
	}
	return p
}

// CacheLoss returns the fraction of the guest's page cache lost under an
// externally imposed memory limit: cache is evicted before resident pages
// when the limit is between RSS and RSS+cache.
func (g *GuestOS) CacheLoss(limitMB float64) float64 {
	if g.cacheMB <= 0 {
		return 0
	}
	have := limitMB - g.rssMB
	if have >= g.cacheMB {
		return 0
	}
	if have < 0 {
		have = 0
	}
	return (g.cacheMB - have) / g.cacheMB
}
