package guestos

import (
	"math"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config) *GuestOS {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewDefaults(t *testing.T) {
	g := mustNew(t, Config{VCPUs: 4, MemoryMB: 8192})
	if g.OnlineVCPUs() != 4 {
		t.Errorf("OnlineVCPUs = %d", g.OnlineVCPUs())
	}
	if g.PluggedMemoryMB() != 8192 {
		t.Errorf("PluggedMemoryMB = %v", g.PluggedMemoryMB())
	}
	if g.Config().MemBlockMB != 128 || g.Config().MinVCPUs != 1 || g.Config().ReserveMB != 256 {
		t.Errorf("defaults not applied: %+v", g.Config())
	}
	if g.RSSMB() != 256 {
		t.Errorf("boot RSS = %v, want kernel reserve", g.RSSMB())
	}
}

func TestNewInvalid(t *testing.T) {
	if _, err := New(Config{VCPUs: 0, MemoryMB: 8192}); err == nil {
		t.Error("0 vCPUs should fail")
	}
	if _, err := New(Config{VCPUs: 1, MemoryMB: 100}); err == nil {
		t.Error("memory below reserve should fail")
	}
}

func TestSetWorkload(t *testing.T) {
	g := mustNew(t, Config{VCPUs: 4, MemoryMB: 8192})
	if err := g.SetWorkload(4000, 2000); err != nil {
		t.Fatal(err)
	}
	if g.RSSMB() != 4256 { // workload + kernel reserve
		t.Errorf("RSS = %v", g.RSSMB())
	}
	if g.PageCacheMB() != 2000 {
		t.Errorf("cache = %v", g.PageCacheMB())
	}
	if got := g.FreeMB(); math.Abs(got-(8192-4256-2000)) > 1e-9 {
		t.Errorf("free = %v", got)
	}
	if err := g.SetWorkload(-1, 0); err == nil {
		t.Error("negative workload should fail")
	}
}

func TestSetWorkloadOversized(t *testing.T) {
	g := mustNew(t, Config{VCPUs: 1, MemoryMB: 1024})
	if err := g.SetWorkload(2000, 500); err != nil {
		t.Fatal(err)
	}
	if g.RSSMB() != 1024 {
		t.Errorf("RSS should be capped at plugged: %v", g.RSSMB())
	}
	if g.SwappedMB() != 2256-1024 {
		t.Errorf("swapped = %v", g.SwappedMB())
	}
	if g.PageCacheMB() != 0 {
		t.Errorf("no room for cache: %v", g.PageCacheMB())
	}
}

func TestUnplugVCPUs(t *testing.T) {
	g := mustNew(t, Config{VCPUs: 8, MemoryMB: 8192})
	n, err := g.UnplugVCPUs(3)
	if err != nil || n != 3 || g.OnlineVCPUs() != 5 {
		t.Errorf("UnplugVCPUs(3) = %d, %v; online=%d", n, err, g.OnlineVCPUs())
	}
	// Partial success: only 4 more can come out (MinVCPUs=1).
	n, err = g.UnplugVCPUs(100)
	if err != nil || n != 4 || g.OnlineVCPUs() != 1 {
		t.Errorf("UnplugVCPUs(100) = %d, %v; online=%d", n, err, g.OnlineVCPUs())
	}
	n, err = g.UnplugVCPUs(1)
	if err != nil || n != 0 {
		t.Errorf("unplug at floor = %d, %v", n, err)
	}
	if _, err := g.UnplugVCPUs(-1); err == nil {
		t.Error("negative should fail")
	}
}

func TestPlugVCPUs(t *testing.T) {
	g := mustNew(t, Config{VCPUs: 8, MemoryMB: 8192})
	g.UnplugVCPUs(5)
	n, err := g.PlugVCPUs(2)
	if err != nil || n != 2 || g.OnlineVCPUs() != 5 {
		t.Errorf("PlugVCPUs = %d, %v; online=%d", n, err, g.OnlineVCPUs())
	}
	n, _ = g.PlugVCPUs(100)
	if n != 3 || g.OnlineVCPUs() != 8 {
		t.Errorf("overplug: added %d, online=%d", n, g.OnlineVCPUs())
	}
	if _, err := g.PlugVCPUs(-2); err == nil {
		t.Error("negative should fail")
	}
}

func TestUnplugMemorySafety(t *testing.T) {
	g := mustNew(t, Config{VCPUs: 4, MemoryMB: 8192})
	g.SetWorkload(4000, 1000) // RSS 4256, cache 1000, free 2936
	safe := g.SafeUnplugMemoryMB()
	// safe = floor((8192-4256)/128)*128 = floor(3936/128)*128 = 30*128 = 3840
	if safe != 3840 {
		t.Errorf("SafeUnplugMemoryMB = %v, want 3840", safe)
	}
	// Request far more than safe: partial success at the safety threshold.
	got, err := g.UnplugMemory(100000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3840 {
		t.Errorf("unplugged %v, want 3840", got)
	}
	if g.PluggedMemoryMB() != 8192-3840 {
		t.Errorf("plugged = %v", g.PluggedMemoryMB())
	}
	// RSS untouched; cache shrunk to fit.
	if g.RSSMB() != 4256 {
		t.Errorf("RSS changed: %v", g.RSSMB())
	}
	if g.PageCacheMB() > g.PluggedMemoryMB()-g.RSSMB()+1e-9 {
		t.Errorf("cache %v exceeds available", g.PageCacheMB())
	}
	if g.SwappedMB() != 0 {
		t.Error("safe unplug must not swap")
	}
}

func TestUnplugMemoryBlockGranularity(t *testing.T) {
	g := mustNew(t, Config{VCPUs: 4, MemoryMB: 8192})
	got, err := g.UnplugMemory(300) // rounds down to 256
	if err != nil || got != 256 {
		t.Errorf("UnplugMemory(300) = %v, %v; want 256", got, err)
	}
	got, _ = g.UnplugMemory(100) // below one block
	if got != 0 {
		t.Errorf("sub-block unplug = %v, want 0", got)
	}
	if _, err := g.UnplugMemory(-5); err == nil {
		t.Error("negative should fail")
	}
}

func TestPlugMemory(t *testing.T) {
	g := mustNew(t, Config{VCPUs: 4, MemoryMB: 8192})
	g.UnplugMemory(4096)
	got, err := g.PlugMemory(1000) // rounds down to 896
	if err != nil || got != 896 {
		t.Errorf("PlugMemory(1000) = %v, %v", got, err)
	}
	got, _ = g.PlugMemory(1 << 20) // capped at configured max
	if g.PluggedMemoryMB() != 8192 {
		t.Errorf("plugged = %v, want back to 8192 (added %v)", g.PluggedMemoryMB(), got)
	}
	if _, err := g.PlugMemory(-5); err == nil {
		t.Error("negative should fail")
	}
}

func TestPlugMemorySwapsIn(t *testing.T) {
	g := mustNew(t, Config{VCPUs: 1, MemoryMB: 2048})
	g.SetWorkload(3000, 0) // oversubscribed: swaps
	if g.SwappedMB() == 0 {
		t.Fatal("expected swap")
	}
	// Memory can't be plugged beyond config, so enlarge via a new guest:
	// instead verify swap-in on replug after an unplug cannot occur (all
	// memory is resident-occupied), then shrink workload and replug.
	g2 := mustNew(t, Config{VCPUs: 1, MemoryMB: 8192})
	g2.SetWorkload(1000, 0)
	g2.UnplugMemory(8192) // leaves RSS intact
	pluggedAfter := g2.PluggedMemoryMB()
	g2.SetWorkload(pluggedAfter+500, 0) // force 500+ MB swapped
	swapped := g2.SwappedMB()
	if swapped <= 0 {
		t.Fatal("setup: expected swap")
	}
	g2.PlugMemory(1024)
	if g2.SwappedMB() >= swapped {
		t.Errorf("plugging memory should swap in: before %v after %v", swapped, g2.SwappedMB())
	}
}

func TestSwapPressure(t *testing.T) {
	g := mustNew(t, Config{VCPUs: 4, MemoryMB: 8192})
	g.SetWorkload(4000, 1000) // RSS 4256
	if got := g.SwapPressure(8192); got != 0 {
		t.Errorf("no pressure expected: %v", got)
	}
	if got := g.SwapPressure(4256); got != 0 {
		t.Errorf("limit at RSS: %v", got)
	}
	got := g.SwapPressure(2128)
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("half RSS resident: pressure = %v, want 0.5", got)
	}
	if got := g.SwapPressure(-10); got != 1 {
		t.Errorf("pressure capped at 1: %v", got)
	}
}

func TestCacheLoss(t *testing.T) {
	g := mustNew(t, Config{VCPUs: 4, MemoryMB: 8192})
	g.SetWorkload(4000, 1000) // RSS 4256, cache 1000
	if got := g.CacheLoss(8192); got != 0 {
		t.Errorf("no loss expected: %v", got)
	}
	if got := g.CacheLoss(4256 + 500); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("half cache lost: %v", got)
	}
	if got := g.CacheLoss(1000); got != 1 {
		t.Errorf("all cache lost: %v", got)
	}
	g.SetWorkload(1000, 0)
	if got := g.CacheLoss(500); got != 0 {
		t.Errorf("no cache to lose: %v", got)
	}
}

// Property: unplug/plug cycles keep invariants: plugged within
// [0, config], online vCPUs within [min, config], RSS never exceeds
// plugged, and safe unplug never induces swap.
func TestQuickHotplugInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		g, err := New(Config{VCPUs: 16, MemoryMB: 16384})
		if err != nil {
			return false
		}
		g.SetWorkload(3000, 2000)
		for _, op := range ops {
			switch op % 5 {
			case 0:
				g.UnplugVCPUs(int(op>>4) + 1)
			case 1:
				g.PlugVCPUs(int(op>>4) + 1)
			case 2:
				g.UnplugMemory(float64(op) * 77)
			case 3:
				g.PlugMemory(float64(op) * 77)
			case 4:
				g.SetWorkload(float64(op)*50, float64(op>>2)*30)
			}
			if g.OnlineVCPUs() < 1 || g.OnlineVCPUs() > 16 {
				return false
			}
			if g.PluggedMemoryMB() < 0 || g.PluggedMemoryMB() > 16384 {
				return false
			}
			if g.RSSMB() > g.PluggedMemoryMB()+1e-9 {
				return false
			}
			if g.RSSMB()+g.PageCacheMB() > g.PluggedMemoryMB()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
