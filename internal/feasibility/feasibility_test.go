package feasibility

import (
	"strings"
	"testing"

	"vmdeflate/internal/trace"
)

func azure(t *testing.T, n int) *trace.AzureTrace {
	t.Helper()
	cfg := trace.DefaultAzureConfig()
	cfg.NumVMs = n
	return trace.GenerateAzure(cfg)
}

func alibaba(t *testing.T, n int) *trace.AlibabaTrace {
	t.Helper()
	cfg := trace.DefaultAlibabaConfig()
	cfg.NumContainers = n
	return trace.GenerateAlibaba(cfg)
}

func TestCPUFeasibilityShape(t *testing.T) {
	tr := azure(t, 800)
	tab, err := CPUFeasibility(tr, DefaultDeflationLevels)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(DefaultDeflationLevels) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Fractions are monotone in deflation level (higher deflation ->
	// more time above the allocation) for every quantile.
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i].Box.Median < tab.Rows[i-1].Box.Median-1e-9 {
			t.Errorf("median not monotone at level %v", tab.Rows[i].DeflationPct)
		}
	}
	// Figure 5's headline: at 50% deflation the median VM is below the
	// deflated allocation ~80% of the time (fraction above <= ~0.2).
	var at50 Row
	for _, r := range tab.Rows {
		if r.DeflationPct == 50 {
			at50 = r
		}
	}
	if at50.Box.Median > 0.3 {
		t.Errorf("median fraction-above at 50%% = %v, want <= 0.3 (paper ~0.2)", at50.Box.Median)
	}
}

func TestByClassSeparation(t *testing.T) {
	tr := azure(t, 1000)
	tabs, err := ByClass(tr, DefaultDeflationLevels)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("tables = %d", len(tabs))
	}
	byName := map[string]Table{}
	for _, tab := range tabs {
		byName[tab.Name] = tab
	}
	inter, batch := byName["interactive"], byName["delay-insensitive"]
	// Figure 6: interactive VMs have more slack than batch at every
	// deflation level (compare means).
	for i := range inter.Rows {
		if inter.Rows[i].Box.Mean > batch.Rows[i].Box.Mean+0.02 {
			t.Errorf("at %v%%: interactive mean %v should be <= batch %v",
				inter.Rows[i].DeflationPct, inter.Rows[i].Box.Mean, batch.Rows[i].Box.Mean)
		}
	}
}

func TestBySizeNoCorrelation(t *testing.T) {
	tr := azure(t, 1200)
	tabs, err := BySize(tr, []float64{30, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("tables = %d", len(tabs))
	}
	// Figure 7: all size classes see similar impact — means within a
	// modest band of each other at each level.
	for i := range tabs[0].Rows {
		lo, hi := 1.0, 0.0
		for _, tab := range tabs {
			m := tab.Rows[i].Box.Mean
			if m < lo {
				lo = m
			}
			if m > hi {
				hi = m
			}
		}
		if hi-lo > 0.15 {
			t.Errorf("size classes diverge at %v%%: spread %v", tabs[0].Rows[i].DeflationPct, hi-lo)
		}
	}
}

func TestByPeakOrdering(t *testing.T) {
	tr := azure(t, 1500)
	tabs, err := ByPeak(tr, []float64{20, 50})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table{}
	for _, tab := range tabs {
		byName[tab.Name] = tab
	}
	low, ok1 := byName["p95<33"]
	high, ok2 := byName["p95>=80"]
	if !ok1 || !ok2 {
		t.Skip("peak buckets not both populated")
	}
	// Figure 8: higher peak load -> greater impact when deflated.
	for i := range low.Rows {
		if low.Rows[i].Box.Mean > high.Rows[i].Box.Mean {
			t.Errorf("at %v%%: low-peak mean %v should be <= high-peak %v",
				low.Rows[i].DeflationPct, low.Rows[i].Box.Mean, high.Rows[i].Box.Mean)
		}
	}
	// Low-peak VMs see minimal impact at 20% deflation.
	if low.Rows[0].Box.Mean > 0.05 {
		t.Errorf("low-peak VMs at 20%% deflation: mean %v, want ~0", low.Rows[0].Box.Mean)
	}
}

func TestMemoryFeasibilityHigh(t *testing.T) {
	tr := alibaba(t, 400)
	tab, err := MemoryFeasibility(tr, []float64{10, 30})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 9: even 10% memory deflation looks heavily under-allocated.
	if tab.Rows[0].Box.Mean < 0.5 {
		t.Errorf("memory fraction-above at 10%% = %v, want high (paper >0.7)", tab.Rows[0].Box.Mean)
	}
}

func TestMemoryBandwidthTiny(t *testing.T) {
	tr := alibaba(t, 400)
	s, err := MemoryBandwidthUsage(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 10: mean well under 1%, max ~1%.
	if s.MeanOfMeans > 0.2 {
		t.Errorf("mean memory BW = %v%%, want < 0.2%%", s.MeanOfMeans)
	}
	if s.MaxOfMax > 1.001 {
		t.Errorf("max memory BW = %v%%, want <= 1%%", s.MaxOfMax)
	}
}

func TestDiskAndNetworkLow(t *testing.T) {
	tr := alibaba(t, 400)
	disk, err := DiskFeasibility(tr, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 11: at 50% disk deflation, under-allocated <1-2% of time.
	if disk.Rows[0].Box.Mean > 0.02 {
		t.Errorf("disk fraction-above at 50%% = %v", disk.Rows[0].Box.Mean)
	}
	net, err := NetworkFeasibility(tr, []float64{50, 70})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 12: below 50% deflation impact near zero; ~1% at 70%.
	if net.Rows[0].Box.Mean > 0.01 {
		t.Errorf("net fraction-above at 50%% = %v", net.Rows[0].Box.Mean)
	}
	if net.Rows[1].Box.Mean > 0.04 {
		t.Errorf("net fraction-above at 70%% = %v", net.Rows[1].Box.Mean)
	}
}

func TestEmptyTraceErrors(t *testing.T) {
	if _, err := CPUFeasibility(&trace.AzureTrace{}, []float64{50}); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := MemoryBandwidthUsage(&trace.AlibabaTrace{}); err == nil {
		t.Error("empty container trace should error")
	}
}

func TestFormatTable(t *testing.T) {
	tr := azure(t, 50)
	tab, err := CPUFeasibility(tr, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	s := FormatTable(tab)
	if !strings.Contains(s, "cpu-all") || !strings.Contains(s, "median") {
		t.Errorf("format output missing headers: %q", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 3 {
		t.Errorf("unexpected line count in %q", s)
	}
}
