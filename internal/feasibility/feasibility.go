// Package feasibility implements the Section 3 trace analysis: for each
// VM (or container) and each candidate deflation level, the fraction of
// its lifetime that resource usage exceeds the deflated allocation. Box
// plots of these fractions across the population are exactly Figures
// 5-12.
package feasibility

import (
	"fmt"
	"sort"

	"vmdeflate/internal/stats"
	"vmdeflate/internal/trace"
)

// DefaultDeflationLevels is the x-axis shared by Figures 5-12.
var DefaultDeflationLevels = []float64{10, 20, 30, 40, 50, 60, 70, 80, 90}

// Row is one deflation level's population summary.
type Row struct {
	DeflationPct float64
	Box          stats.BoxPlot
}

// Table is a named series of rows, e.g. one box-plot group.
type Table struct {
	Name string
	Rows []Row
}

// fractionTable summarises, per deflation level, the distribution across
// series of the fraction of samples above the deflated allocation.
func fractionTable(name string, series [][]float64, levels []float64) (Table, error) {
	t := Table{Name: name}
	for _, lvl := range levels {
		threshold := 100 - lvl
		fracs := make([]float64, 0, len(series))
		for _, s := range series {
			if len(s) == 0 {
				continue
			}
			fracs = append(fracs, stats.FractionAbove(s, threshold))
		}
		box, err := stats.NewBoxPlot(fracs)
		if err != nil {
			return Table{}, fmt.Errorf("feasibility: %s at %g%%: %w", name, lvl, err)
		}
		t.Rows = append(t.Rows, Row{DeflationPct: lvl, Box: box})
	}
	return t, nil
}

// CPUFeasibility reproduces Figure 5: the distribution across all VMs of
// the fraction of time CPU usage exceeds each deflated allocation.
func CPUFeasibility(tr *trace.AzureTrace, levels []float64) (Table, error) {
	series := make([][]float64, 0, len(tr.VMs))
	for _, vm := range tr.VMs {
		series = append(series, vm.CPUUtil)
	}
	return fractionTable("cpu-all", series, levels)
}

// ByClass reproduces Figure 6: Figure 5 broken down by workload class.
func ByClass(tr *trace.AzureTrace, levels []float64) ([]Table, error) {
	byClass := tr.ByClass()
	classes := make([]trace.VMClass, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	var out []Table
	for _, c := range classes {
		series := make([][]float64, 0, len(byClass[c]))
		for _, vm := range byClass[c] {
			series = append(series, vm.CPUUtil)
		}
		t, err := fractionTable(c.String(), series, levels)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// BySize reproduces Figure 7: deflatability by VM memory size.
func BySize(tr *trace.AzureTrace, levels []float64) ([]Table, error) {
	bySize := tr.BySize()
	sizes := make([]trace.SizeClass, 0, len(bySize))
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	var out []Table
	for _, s := range sizes {
		series := make([][]float64, 0, len(bySize[s]))
		for _, vm := range bySize[s] {
			series = append(series, vm.CPUUtil)
		}
		t, err := fractionTable(s.String(), series, levels)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ByPeak reproduces Figure 8: deflatability by 95th-percentile CPU usage.
func ByPeak(tr *trace.AzureTrace, levels []float64) ([]Table, error) {
	byPeak := tr.ByPeak()
	peaks := make([]trace.PeakClass, 0, len(byPeak))
	for p := range byPeak {
		peaks = append(peaks, p)
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i] < peaks[j] })
	var out []Table
	for _, p := range peaks {
		series := make([][]float64, 0, len(byPeak[p]))
		for _, vm := range byPeak[p] {
			series = append(series, vm.CPUUtil)
		}
		t, err := fractionTable(p.String(), series, levels)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// containerSeries extracts one utilisation dimension from a container
// trace.
func containerSeries(tr *trace.AlibabaTrace, pick func(*trace.ContainerRecord) []float64) [][]float64 {
	out := make([][]float64, 0, len(tr.Containers))
	for _, c := range tr.Containers {
		out = append(out, pick(c))
	}
	return out
}

// MemoryFeasibility reproduces Figure 9: container memory occupancy vs
// deflated allocations.
func MemoryFeasibility(tr *trace.AlibabaTrace, levels []float64) (Table, error) {
	return fractionTable("memory", containerSeries(tr, func(c *trace.ContainerRecord) []float64 { return c.MemUtil }), levels)
}

// MemoryBandwidth reproduces Figure 10: the distribution of per-container
// mean and max memory-bus bandwidth utilisation (percent).
type MemoryBandwidthSummary struct {
	MeanOfMeans float64
	MaxOfMax    float64
	Box         stats.BoxPlot
}

// MemoryBandwidthUsage summarises memory-bus utilisation (Figure 10).
func MemoryBandwidthUsage(tr *trace.AlibabaTrace) (MemoryBandwidthSummary, error) {
	var means []float64
	maxOfMax := 0.0
	for _, c := range tr.Containers {
		means = append(means, stats.Mean(c.MemBWUtil))
		if m := stats.Max(c.MemBWUtil); m > maxOfMax {
			maxOfMax = m
		}
	}
	box, err := stats.NewBoxPlot(means)
	if err != nil {
		return MemoryBandwidthSummary{}, err
	}
	return MemoryBandwidthSummary{
		MeanOfMeans: stats.Mean(means),
		MaxOfMax:    maxOfMax,
		Box:         box,
	}, nil
}

// DiskFeasibility reproduces Figure 11.
func DiskFeasibility(tr *trace.AlibabaTrace, levels []float64) (Table, error) {
	return fractionTable("disk", containerSeries(tr, func(c *trace.ContainerRecord) []float64 { return c.DiskUtil }), levels)
}

// NetworkFeasibility reproduces Figure 12.
func NetworkFeasibility(tr *trace.AlibabaTrace, levels []float64) (Table, error) {
	return fractionTable("network", containerSeries(tr, func(c *trace.ContainerRecord) []float64 { return c.NetUtil }), levels)
}

// FormatTable renders a table as aligned text rows (deflation%, then the
// five-number summary), for the CLI tools and EXPERIMENTS.md.
func FormatTable(t Table) string {
	s := fmt.Sprintf("# %s\n%10s %8s %8s %8s %8s %8s %8s\n",
		t.Name, "defl%", "min", "q1", "median", "q3", "max", "mean")
	for _, r := range t.Rows {
		b := r.Box
		s += fmt.Sprintf("%10.0f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f\n",
			r.DeflationPct, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
	}
	return s
}
