package loadbalancer

import (
	"testing"
)

func names(n int) []*Backend {
	out := make([]*Backend, n)
	for i := range out {
		out[i] = &Backend{Name: string(rune('a' + i)), Weight: 1}
	}
	return out
}

func countPicks(t *testing.T, b Balancer, n int) map[string]int {
	t.Helper()
	got := map[string]int{}
	for i := 0; i < n; i++ {
		be, err := b.Pick()
		if err != nil {
			t.Fatal(err)
		}
		got[be.Name]++
		Release(be)
	}
	return got
}

func TestRoundRobinCycles(t *testing.T) {
	bs := names(3)
	rr := NewRoundRobin(bs)
	if rr.Name() != "round-robin" {
		t.Errorf("Name = %q", rr.Name())
	}
	got := countPicks(t, rr, 9)
	for _, b := range bs {
		if got[b.Name] != 3 {
			t.Errorf("backend %s picked %d times, want 3", b.Name, got[b.Name])
		}
	}
}

func TestRoundRobinEmpty(t *testing.T) {
	rr := NewRoundRobin(nil)
	if _, err := rr.Pick(); err != ErrNoBackends {
		t.Errorf("err = %v", err)
	}
}

func TestWRRProportions(t *testing.T) {
	bs := []*Backend{
		{Name: "big", Weight: 3},
		{Name: "small", Weight: 1},
	}
	wrr := NewWeightedRoundRobin(bs)
	got := countPicks(t, wrr, 400)
	if got["big"] != 300 || got["small"] != 100 {
		t.Errorf("picks = %v, want 300/100", got)
	}
}

func TestWRRSmoothness(t *testing.T) {
	// Smooth WRR must interleave, not burst: with weights 2,1 the pattern
	// over 3 picks contains no two consecutive "small" picks and at most
	// two consecutive "big" picks.
	bs := []*Backend{{Name: "big", Weight: 2}, {Name: "small", Weight: 1}}
	wrr := NewWeightedRoundRobin(bs)
	var seq []string
	for i := 0; i < 12; i++ {
		b, _ := wrr.Pick()
		seq = append(seq, b.Name)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i] == "small" && seq[i-1] == "small" {
			t.Fatalf("bursty small picks: %v", seq)
		}
	}
}

func TestWRRSkipsZeroWeight(t *testing.T) {
	bs := []*Backend{
		{Name: "dead", Weight: 0},
		{Name: "live", Weight: 1},
	}
	wrr := NewWeightedRoundRobin(bs)
	got := countPicks(t, wrr, 10)
	if got["dead"] != 0 || got["live"] != 10 {
		t.Errorf("picks = %v", got)
	}
	all := NewWeightedRoundRobin([]*Backend{{Name: "x", Weight: 0}})
	if _, err := all.Pick(); err != ErrNoBackends {
		t.Errorf("all-zero weights err = %v", err)
	}
}

func TestLeastConnections(t *testing.T) {
	bs := names(2)
	lc := NewLeastConnections(bs)
	b1, _ := lc.Pick() // both 0: first with weight tie -> a
	b2, _ := lc.Pick() // a has 1, b has 0 -> b
	if b1.Name == b2.Name {
		t.Errorf("least-connections should alternate on empty backends: %s, %s", b1.Name, b2.Name)
	}
	// Without releasing, thirds pick balances again.
	b3, _ := lc.Pick()
	Release(b3)
	if lc.Name() != "least-connections" {
		t.Errorf("Name = %q", lc.Name())
	}
	empty := NewLeastConnections(nil)
	if _, err := empty.Pick(); err != ErrNoBackends {
		t.Errorf("err = %v", err)
	}
}

func TestReleaseNilAndUnderflow(t *testing.T) {
	Release(nil) // no panic
	b := &Backend{Name: "x"}
	Release(b) // inflight already 0: no underflow
	if b.inflight != 0 {
		t.Errorf("inflight = %d", b.inflight)
	}
}

func TestDeflationAwareReweighting(t *testing.T) {
	bs := []*Backend{
		{Name: "d1", Weight: 100},
		{Name: "d2", Weight: 100},
		{Name: "full", Weight: 100},
	}
	da := NewDeflationAware(bs)
	if da.Name() != "deflation-aware" {
		t.Errorf("Name = %q", da.Name())
	}
	// Two replicas deflated to 2 cores, one at 10 cores.
	da.ReportCapacity(bs[0], 2)
	da.ReportCapacity(bs[1], 2)
	da.ReportCapacity(bs[2], 10)
	got := countPicks(t, da, 1400)
	// Expected proportions 2:2:10 -> 200:200:1000.
	if got["full"] != 1000 || got["d1"] != 200 || got["d2"] != 200 {
		t.Errorf("picks = %v, want full=1000 d1=200 d2=200", got)
	}
}

// pickSeq records the names of n successive picks without releasing.
func pickSeq(t *testing.T, b Balancer, n int, release bool) []string {
	t.Helper()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		be, err := b.Pick()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, be.Name)
		if release {
			Release(be)
		}
	}
	return out
}

// TestPickOrderIndependentOfSlicePosition pins the strict-total-order
// tie-break: with equal weights (WRR) or equal inflight counts (least
// connections), the pick sequence must be identical no matter how the
// backend slice is permuted — ties end in name, never slice position.
func TestPickOrderIndependentOfSlicePosition(t *testing.T) {
	orders := [][]string{
		{"a", "b", "c"},
		{"c", "a", "b"},
		{"b", "c", "a"},
	}
	build := func(names []string) []*Backend {
		bs := make([]*Backend, len(names))
		for i, n := range names {
			bs[i] = &Backend{Name: n, Weight: 2}
		}
		return bs
	}
	wrrWant := pickSeq(t, NewWeightedRoundRobin(build(orders[0])), 9, true)
	lcWant := pickSeq(t, NewLeastConnections(build(orders[0])), 9, false)
	for _, names := range orders[1:] {
		if got := pickSeq(t, NewWeightedRoundRobin(build(names)), 9, true); !equalSeq(got, wrrWant) {
			t.Errorf("WRR picks depend on slice order %v: got %v, want %v", names, got, wrrWant)
		}
		if got := pickSeq(t, NewLeastConnections(build(names)), 9, false); !equalSeq(got, lcWant) {
			t.Errorf("least-connections picks depend on slice order %v: got %v, want %v", names, got, lcWant)
		}
	}
}

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDeflationAwareKeepsStaticWeight is the reinflate round trip: the
// configured Weight must survive deflation untouched, and restoring the
// original capacity must restore the original traffic proportions.
func TestDeflationAwareKeepsStaticWeight(t *testing.T) {
	bs := []*Backend{
		{Name: "big", Weight: 3},
		{Name: "small", Weight: 1},
	}
	da := NewDeflationAware(bs)
	if got := countPicks(t, da, 400); got["big"] != 300 || got["small"] != 100 {
		t.Fatalf("initial picks = %v, want 300/100", got)
	}
	// Deflate big to the same capacity as small: traffic evens out.
	da.ReportCapacity(bs[0], 1)
	if got := countPicks(t, da, 400); got["big"] != 200 || got["small"] != 200 {
		t.Errorf("deflated picks = %v, want 200/200", got)
	}
	if bs[0].Weight != 3 || bs[1].Weight != 1 {
		t.Errorf("static weights clobbered: big=%d small=%d, want 3/1", bs[0].Weight, bs[1].Weight)
	}
	// Reinflate: the original proportion must come back.
	da.ReportCapacity(bs[0], 3)
	if got := countPicks(t, da, 400); got["big"] != 300 || got["small"] != 100 {
		t.Errorf("restored picks = %v, want 300/100", got)
	}
}

func TestDeflationAwareTinyCapacity(t *testing.T) {
	bs := []*Backend{
		{Name: "tiny", Weight: 100},
		{Name: "full", Weight: 100},
	}
	da := NewDeflationAware(bs)
	da.ReportCapacity(bs[0], 0.001) // rounds to 0 but must stay pickable
	da.ReportCapacity(bs[1], 1)
	got := countPicks(t, da, 101)
	if got["tiny"] == 0 {
		t.Error("tiny-capacity backend should still receive some traffic")
	}
	if got["tiny"] >= got["full"] {
		t.Errorf("tiny should get far less: %v", got)
	}
}

func TestDeflationAwareZeroCapacityDrained(t *testing.T) {
	bs := []*Backend{
		{Name: "dead", Weight: 100},
		{Name: "live", Weight: 100},
	}
	da := NewDeflationAware(bs)
	da.ReportCapacity(bs[0], 0)
	got := countPicks(t, da, 10)
	if got["dead"] != 0 {
		t.Errorf("zero-capacity backend should be drained: %v", got)
	}
}
