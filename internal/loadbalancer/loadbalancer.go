// Package loadbalancer implements the HAProxy-style load balancing of
// Section 7.3: smooth weighted round robin (the algorithm HAProxy and
// nginx use), plain round robin, least-connections, and the paper's
// deflation-aware variant that re-weights backends by their current
// effective capacity so deflated replicas receive proportionally fewer
// requests.
package loadbalancer

import (
	"errors"
	"math"
)

// Backend is one server behind the balancer.
type Backend struct {
	// Name identifies the backend.
	Name string
	// Weight is the static configured weight (vanilla WRR).
	Weight int

	// current is smooth-WRR state.
	current int
	// inflight tracks outstanding requests (least-connections).
	inflight int
	// capacity is the dynamic effective capacity reported by the
	// deflation system (deflation-aware re-weighting).
	capacity float64
	// effWeight is the capacity-derived weight a DeflationAware balancer
	// maintains. It is kept separate from the static Weight so the
	// configured proportion survives deflate/reinflate round trips;
	// effValid gates which of the two smooth WRR reads.
	effWeight int
	effValid  bool
}

// weight returns the backend's smooth-WRR weight: the capacity-derived
// effective weight when a DeflationAware balancer maintains one, else
// the static configured weight.
func (b *Backend) weight() int {
	if b.effValid {
		return b.effWeight
	}
	return b.Weight
}

// ErrNoBackends is returned when the balancer has no usable backend.
var ErrNoBackends = errors.New("loadbalancer: no backends")

// Balancer picks a backend per request.
type Balancer interface {
	// Name identifies the algorithm.
	Name() string
	// Pick selects a backend for the next request.
	Pick() (*Backend, error)
}

// Release informs the balancer a request to b completed (used by
// least-connections; others ignore it).
func Release(b *Backend) {
	if b != nil && b.inflight > 0 {
		b.inflight--
	}
}

// RoundRobin cycles through backends.
type RoundRobin struct {
	backends []*Backend
	next     int
}

// NewRoundRobin creates a plain round-robin balancer.
func NewRoundRobin(backends []*Backend) *RoundRobin {
	return &RoundRobin{backends: backends}
}

// Name implements Balancer.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Balancer.
func (r *RoundRobin) Pick() (*Backend, error) {
	if len(r.backends) == 0 {
		return nil, ErrNoBackends
	}
	b := r.backends[r.next%len(r.backends)]
	r.next++
	b.inflight++
	return b, nil
}

// WeightedRoundRobin implements smooth weighted round robin: each pick
// adds every backend's weight to its current counter and selects the
// largest, subtracting the weight total. This interleaves picks
// proportionally to weight without bursts.
type WeightedRoundRobin struct {
	backends []*Backend
}

// NewWeightedRoundRobin creates a vanilla HAProxy-style WRR balancer.
func NewWeightedRoundRobin(backends []*Backend) *WeightedRoundRobin {
	return &WeightedRoundRobin{backends: backends}
}

// Name implements Balancer.
func (*WeightedRoundRobin) Name() string { return "weighted-round-robin" }

// Pick implements Balancer. Ties on the smooth-WRR counter break by
// name, so the pick sequence is a strict total order independent of the
// backend slice's construction order.
func (w *WeightedRoundRobin) Pick() (*Backend, error) {
	var best *Backend
	total := 0
	for _, b := range w.backends {
		wt := b.weight()
		if wt <= 0 {
			continue
		}
		total += wt
		b.current += wt
		if best == nil || b.current > best.current ||
			(b.current == best.current && b.Name < best.Name) {
			best = b
		}
	}
	if best == nil {
		return nil, ErrNoBackends
	}
	best.current -= total
	best.inflight++
	return best, nil
}

// LeastConnections picks the backend with the fewest in-flight requests,
// breaking ties by configured weight, then by name — a strict total
// order, so the pick sequence cannot depend on slice position.
type LeastConnections struct {
	backends []*Backend
}

// NewLeastConnections creates a least-connections balancer.
func NewLeastConnections(backends []*Backend) *LeastConnections {
	return &LeastConnections{backends: backends}
}

// Name implements Balancer.
func (*LeastConnections) Name() string { return "least-connections" }

// Pick implements Balancer.
func (l *LeastConnections) Pick() (*Backend, error) {
	var best *Backend
	for _, b := range l.backends {
		if best == nil || b.inflight < best.inflight ||
			(b.inflight == best.inflight && (b.Weight > best.Weight ||
				(b.Weight == best.Weight && b.Name < best.Name))) {
			best = b
		}
	}
	if best == nil {
		return nil, ErrNoBackends
	}
	best.inflight++
	return best, nil
}

// DeflationAware wraps smooth WRR with dynamic weights derived from each
// backend's reported effective capacity — the paper's modified HAProxy
// ("dynamically changing the weights assigned to the different servers
// based on the current deflation level", Section 6). Weights are the
// capacity in 1/100ths of a core so fractional deflation levels remain
// distinguishable.
type DeflationAware struct {
	wrr *WeightedRoundRobin
}

// NewDeflationAware creates a deflation-aware balancer. Capacities
// default to weight until ReportCapacity is called.
func NewDeflationAware(backends []*Backend) *DeflationAware {
	da := &DeflationAware{wrr: NewWeightedRoundRobin(backends)}
	for _, b := range backends {
		if b.capacity == 0 {
			b.capacity = float64(b.Weight)
		}
	}
	da.reweigh()
	return da
}

// Name implements Balancer.
func (*DeflationAware) Name() string { return "deflation-aware" }

// ReportCapacity records a backend's new effective capacity (cores) after
// a deflation or reinflation event and recomputes weights.
func (da *DeflationAware) ReportCapacity(b *Backend, cores float64) {
	b.capacity = cores
	da.reweigh()
}

func (da *DeflationAware) reweigh() {
	for _, b := range da.wrr.backends {
		w := int(math.Round(b.capacity * 100))
		if b.capacity > 0 && w == 0 {
			w = 1
		}
		// The derived weight lives beside the static Weight, never over
		// it: after a deflate/reinflate round trip the configured
		// proportion is still intact for anything reading Weight.
		b.effWeight = w
		b.effValid = true
	}
}

// Pick implements Balancer.
func (da *DeflationAware) Pick() (*Backend, error) { return da.wrr.Pick() }
