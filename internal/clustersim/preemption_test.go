package clustersim

import (
	"fmt"
	"reflect"
	"testing"

	"vmdeflate/internal/policy"
	"vmdeflate/internal/trace"
)

// TestPreemptionBaselineUnderParallelEngineConfig is the differential
// guarantee for preemption.go under the fully parallel engine
// configuration: one trace is run (a) in preemption mode and (b) in
// deflation mode, each sequentially and with intra-run shards plus
// placement partitions enabled, and every Result must be bit-for-bit
// identical to its sequential twin. The deflation leg exercises the
// sharded sample pass, the batched departures and the partitioned
// arrival batches; the preemption leg proves the baseline is untouched
// by (and insensitive to) the parallelism knobs it deliberately does
// not use. The trace is sized so the baseline actually preempts —
// otherwise the test would pass vacuously.
func TestPreemptionBaselineUnderParallelEngineConfig(t *testing.T) {
	tr, err := trace.GenerateScenario(trace.ScenarioConfig{
		Kind: trace.ScenarioDiurnal, NumVMs: 500, Duration: 86400, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModePreemption, ModeDeflation} {
		base := Config{Trace: tr, Mode: mode, Policy: policy.Priority{}, Overcommit: 0.6}
		seq, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		if mode == ModePreemption {
			if seq.Preemptions == 0 {
				t.Fatal("baseline run preempted nothing; the differential is vacuous")
			}
			if seq.FailureProbability <= 0 {
				t.Fatal("baseline failure probability is zero under pressure")
			}
		}
		for _, shards := range []int{2, 8} {
			for _, parts := range []int{2, 8} {
				name := fmt.Sprintf("mode=%d/shards=%d/partitions=%d", mode, shards, parts)
				t.Run(name, func(t *testing.T) {
					cfg := base
					cfg.Shards = shards
					cfg.PlacementPartitions = parts
					got, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, seq) {
						t.Fatalf("parallel-config run diverged from sequential:\ngot %+v\nseq %+v", *got, *seq)
					}
				})
			}
		}
	}
}
