package clustersim

import (
	"testing"

	"vmdeflate/internal/policy"
	"vmdeflate/internal/trace"
)

// sloSteadyEngine stands up a populated deflation-mode engine with SLO
// metering on: a bursty trace's VMs are all admitted in one batch, so
// subsequent samplePass calls meter a steady running set — the per-VM
// queueing math exactly as the event loop runs it, without the loop.
func sloSteadyEngine(tb testing.TB, nVMs int) *Engine {
	tb.Helper()
	tr, err := trace.GenerateScenario(trace.ScenarioConfig{
		Kind: trace.ScenarioBursty, NumVMs: nVMs, Duration: 86400, Seed: 1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	e, err := NewEngine(Config{
		Trace:      tr,
		Policy:     policy.LatencyAware{},
		Overcommit: 0.5,
		SLO:        &SLOConfig{MaxSlowdown: 2},
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := e.setupDeflation(); err != nil {
		tb.Fatal(err)
	}
	evs := make([]simEvent, len(tr.VMs))
	for i, vm := range tr.VMs {
		evs[i] = simEvent{at: 0, kind: evArrival, vm: vm, seq: i}
	}
	e.handleArrivals(evs)
	if len(e.runList) == 0 {
		tb.Fatal("no VMs admitted; sample pass would measure nothing")
	}
	return e
}

// samplePassCycle runs one metered sample at a rotating trace offset so
// utilisations (and hence published loads) actually change between
// passes — the dirty-marking edge, not just the unchanged-load fast
// path, is inside the measurement.
func samplePassCycle(e *Engine, i int) {
	e.samplePass(float64(1+i%100) * trace.SampleInterval)
}

// TestSamplePassSLOZeroAllocs is the allocation-regression guard for
// the SLO-metered sample pass: closed-form queueing math, histogram
// updates and load publication must all be allocation-free once warm,
// since this path runs once per VM per 5-minute boundary at 1M-VM
// scale. Measured on the sequential path — the sharded pass spawns its
// shard goroutines, which inherently allocate.
func TestSamplePassSLOZeroAllocs(t *testing.T) {
	e := sloSteadyEngine(t, 600)
	defer e.mgr.Close()
	samplePassCycle(e, 0) // warm
	i := 1
	got := testing.AllocsPerRun(100, func() {
		samplePassCycle(e, i)
		i++
	})
	if got != 0 {
		t.Errorf("SLO sample pass allocates %.1f allocs/op, want 0", got)
	}
}

// BenchmarkSamplePassSLOSteadyState is the clustersim benchmark CI's
// alloc smoke watches: `-benchmem` must report 0 allocs/op or the make
// target fails the build. ns/op here is the full-cluster metering cost
// paid every 5 simulated minutes.
func BenchmarkSamplePassSLOSteadyState(b *testing.B) {
	e := sloSteadyEngine(b, 600)
	defer e.mgr.Close()
	samplePassCycle(e, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samplePassCycle(e, i)
	}
}
