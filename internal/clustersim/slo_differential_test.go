package clustersim

import (
	"fmt"
	"reflect"
	"testing"

	"vmdeflate/internal/perfmodel"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/trace"
)

// sloTestConfig builds a latency-policy + SLO-metered run, the
// configuration whose new accumulators (violation counters, per-shard
// histograms, load publication) the differential suite must prove
// shard- and partition-invariant.
func sloTestConfig(tr *trace.AzureTrace, oc float64) Config {
	slo := &SLOConfig{Curve: perfmodel.Kcompile, MaxSlowdown: 2}
	return Config{
		Trace:      tr,
		Policy:     policy.LatencyAware{Curve: slo.Curve, MaxSlowdown: slo.MaxSlowdown},
		Overcommit: oc,
		SLO:        slo,
	}
}

// TestSLOEngineMatchesAcrossShardsAndPartitions is the determinism
// guarantee for the SLO path: the per-VM queueing math runs inside the
// sharded sample pass and its partials (integer violation counters,
// per-shard histograms) merge in canonical order, so every SLO metric —
// violation seconds, rate, p99 proxy, the per-priority map — must be
// bit-for-bit identical at any shard × placement-partition combination,
// and identical to the brute-force reference placement path.
func TestSLOEngineMatchesAcrossShardsAndPartitions(t *testing.T) {
	for _, kind := range []trace.Scenario{trace.ScenarioBursty, trace.ScenarioDiurnal} {
		tr, err := trace.GenerateScenario(trace.ScenarioConfig{
			Kind: kind, NumVMs: 400, Duration: 86400, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		base := sloTestConfig(tr, 0.5)
		seq, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		if seq.SLOSampleSeconds == 0 {
			t.Fatalf("%v: degenerate run, no SLO samples metered", kind)
		}
		refCfg := base
		refCfg.ReferencePlacement = true
		ref, err := Run(refCfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizeScanMeters(seq), normalizeScanMeters(ref)) {
			t.Fatalf("%v: SLO run diverged from reference placement:\nseq %+v\nref %+v", kind, *seq, *ref)
		}
		for _, shards := range []int{1, 4} {
			for _, parts := range []int{1, 3, 8} {
				t.Run(fmt.Sprintf("%v/shards=%d/partitions=%d", kind, shards, parts), func(t *testing.T) {
					cfg := base
					cfg.Shards = shards
					cfg.PlacementPartitions = parts
					got, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, seq) {
						t.Fatalf("SLO run diverged from sequential:\ngot %+v\nseq %+v", *got, *seq)
					}
				})
			}
		}
	}
}

// TestSLOMetricsPopulated sanity-checks the accounting identities on a
// metered run: rate = violations/samples, the per-priority map covers
// every level and sums to the total, and the p99 proxy is a plausible
// slowdown (>= 1) whenever anything was metered.
func TestSLOMetricsPopulated(t *testing.T) {
	tr, err := trace.GenerateScenario(trace.ScenarioConfig{
		Kind: trace.ScenarioBursty, NumVMs: 300, Duration: 86400, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sloTestConfig(tr, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOSampleSeconds <= 0 {
		t.Fatal("no SLO samples metered")
	}
	if got := res.SLOViolationRate * res.SLOSampleSeconds; !almostEq(got, res.SLOViolationSeconds) {
		t.Errorf("rate*samples = %g, want violation seconds %g", got, res.SLOViolationSeconds)
	}
	if len(res.SLOViolationsByPriority) != 4 {
		t.Errorf("per-priority map has %d levels, want all 4", len(res.SLOViolationsByPriority))
	}
	var sum float64
	for _, v := range res.SLOViolationsByPriority {
		sum += v
	}
	if !almostEq(sum, res.SLOViolationSeconds) {
		t.Errorf("per-priority violations sum to %g, want %g", sum, res.SLOViolationSeconds)
	}
	if res.SLOLatencyP99 < 1 {
		t.Errorf("p99 slowdown proxy %g < 1", res.SLOLatencyP99)
	}
}

// TestNoSLOLeavesResultUntouched pins the gating: without Config.SLO
// the run must carry zero SLO state — no metrics, no published loads —
// so pre-SLO results are reproduced exactly.
func TestNoSLOLeavesResultUntouched(t *testing.T) {
	tr, err := trace.GenerateScenario(trace.ScenarioConfig{
		Kind: trace.ScenarioDiurnal, NumVMs: 200, Duration: 43200, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Trace: tr, Policy: policy.Proportional{}, Overcommit: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if res.SLOViolationSeconds != 0 || res.SLOSampleSeconds != 0 || res.SLOViolationRate != 0 ||
		res.SLOLatencyP99 != 0 || res.SLOViolationsByPriority != nil {
		t.Errorf("non-SLO run carries SLO state: %+v", res)
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if b > 1 {
		scale = b
	}
	return d <= 1e-9*scale
}
