package clustersim

import (
	"sort"

	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
	"vmdeflate/internal/trace"
)

// pVM is one VM in the preemption baseline.
type pVM struct {
	rec    *trace.VMRecord
	size   resources.Vector
	lowPri bool
	prio   float64
	server int
}

// runPreemption simulates today's transient servers: VMs always get
// their full allocation; when an on-demand VM arrives and no server has
// room, low-priority VMs are preempted — killed — lowest priority first
// until it fits. Low-priority arrivals that do not fit are rejected. The
// Figure 20 baseline metric is the probability that an admitted
// low-priority VM is preempted before its natural departure.
//
// The baseline drives the same lazily scheduled event queue as the
// deflation engine: departures enter the queue only for admitted VMs,
// and a preempted VM's stale departure event is ignored because the VM
// is no longer in the running set.
func (e *Engine) runPreemption() (*Result, error) {
	cfg := e.cfg
	free := make([]resources.Vector, e.nServers)
	for i := range free {
		free[i] = cfg.ServerCapacity
	}
	running := map[string]*pVM{}
	res := &Result{Servers: e.nServers, Revenue: map[string]float64{}}
	var demandTotal, lostTotal float64

	place := func(vm *pVM) bool {
		// Conventional bin-packing: tightest fit, as used by
		// non-deflatable cluster managers (Section 5.2).
		best := tightestFit(free, vm.size, cfg.ServerCapacity)
		if best < 0 {
			return false
		}
		vm.server = best
		free[best] = free[best].Sub(vm.size)
		return true
	}

	// remainingDemand integrates a VM's CPU demand (core-seconds) from
	// time t to its natural end: the demand a preemption destroys.
	remainingDemand := func(rec *trace.VMRecord, t float64) float64 {
		var d float64
		for ts := t; ts < rec.End; ts += trace.SampleInterval {
			d += rec.UtilAt(ts) / 100 * float64(rec.Cores) * trace.SampleInterval
		}
		return d
	}

	evict := func(need resources.Vector, server int, now float64) bool {
		var victims []*pVM
		for _, vm := range running {
			if vm.lowPri && vm.server == server {
				victims = append(victims, vm)
			}
		}
		sort.Slice(victims, func(i, j int) bool {
			if victims[i].prio != victims[j].prio {
				return victims[i].prio < victims[j].prio
			}
			return victims[i].rec.ID < victims[j].rec.ID
		})
		for _, v := range victims {
			if need.FitsIn(free[server]) {
				break
			}
			free[server] = free[server].Add(v.size)
			delete(running, v.rec.ID)
			res.Preemptions++
			lostTotal += remainingDemand(v.rec, now)
		}
		return need.FitsIn(free[server])
	}

	// bestEvictionServer picks the server where free space plus
	// evictable low-priority allocation best covers `need`.
	bestEvictionServer := func(need resources.Vector) int {
		best, bestFit := -1, -1.0
		for i := range free {
			avail := free[i]
			for _, vm := range running {
				if vm.lowPri && vm.server == i {
					avail = avail.Add(vm.size)
				}
			}
			if !need.FitsIn(avail) {
				continue
			}
			fit := resources.CosineFitness(need, avail)
			if fit > bestFit {
				best, bestFit = i, fit
			}
		}
		return best
	}

	queue := newArrivalQueue(cfg.Trace)
	for !queue.empty() {
		ev := queue.pop()
		if ev.kind == evDeparture {
			vm, ok := running[ev.vm.ID]
			if !ok {
				continue // already preempted
			}
			free[vm.server] = free[vm.server].Add(vm.size)
			delete(running, ev.vm.ID)
			continue
		}
		res.Arrivals++
		vm := &pVM{
			rec:    ev.vm,
			size:   vmSize(ev.vm),
			lowPri: ev.vm.Class == trace.Interactive,
			prio:   policy.PriorityFromP95(ev.vm.P95(), cfg.PriorityLevels),
		}
		if vm.lowPri {
			// Total low-priority demand, for the throughput-loss ratio.
			demandTotal += remainingDemand(ev.vm, ev.vm.Start)
		}
		admit := func() {
			running[ev.vm.ID] = vm
			queue.push(simEvent{at: ev.vm.End, kind: evDeparture, vm: ev.vm, seq: ev.seq})
		}
		if place(vm) {
			res.Admitted++
			if vm.lowPri {
				res.DeflatableAdmitted++
			}
			admit()
			continue
		}
		if !vm.lowPri {
			// On-demand pressure: reclaim by preemption.
			res.ReclamationAttempts++
			if s := bestEvictionServer(vm.size); s >= 0 && evict(vm.size, s, ev.at) && place(vm) {
				res.Admitted++
				admit()
				continue
			}
			res.ReclamationFailures++
		}
		res.Rejected++
	}

	// Figure 20 baseline metric: preemption probability for admitted
	// low-priority VMs.
	if res.DeflatableAdmitted > 0 {
		res.FailureProbability = float64(res.Preemptions) / float64(res.DeflatableAdmitted)
	}
	if demandTotal > 0 {
		res.ThroughputLoss = lostTotal / demandTotal
	}
	return res, nil
}
