package clustersim

import (
	"sort"

	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
	"vmdeflate/internal/trace"
)

// pVM is one VM in the preemption baseline.
type pVM struct {
	rec    *trace.VMRecord
	size   resources.Vector
	lowPri bool
	prio   float64
	server int
}

// runPreemption simulates today's transient servers: VMs always get
// their full allocation; when an on-demand VM arrives and no server has
// room, low-priority VMs are preempted — killed — lowest priority first
// until it fits. Low-priority arrivals that do not fit are rejected. The
// Figure 20 baseline metric is the probability that an admitted
// low-priority VM is preempted before its natural departure.
//
// Capacity shocks are where the baseline diverges hardest from
// deflation: a revoked server kills every resident outright (there is
// no migration on today's transient servers), and a shrink kills
// lowest-priority residents until the rest fits. The same shock
// schedule drives both modes, which is what makes the
// deflation-saves-the-shock-victims comparison an apples-to-apples one.
//
// The baseline drives the same lazily scheduled event queue as the
// deflation engine: departures enter the queue only for admitted VMs,
// and a preempted or shock-killed VM's stale departure event is ignored
// because the VM is no longer in the running set.
func (e *Engine) runPreemption() (*Result, error) {
	cfg := e.cfg
	free := make([]resources.Vector, e.nServers)
	curCap := make([]resources.Vector, e.nServers)
	revoked := make([]bool, e.nServers)
	for i := range free {
		free[i] = cfg.ServerCapacity
		curCap[i] = cfg.ServerCapacity
	}
	running := map[string]*pVM{}
	res := &Result{Servers: e.nServers, Revenue: map[string]float64{}}
	var demandTotal, lostTotal float64

	place := func(vm *pVM) bool {
		// Conventional bin-packing: tightest fit, as used by
		// non-deflatable cluster managers (Section 5.2).
		best := tightestFit(free, vm.size, cfg.ServerCapacity)
		if best < 0 {
			return false
		}
		vm.server = best
		free[best] = free[best].Sub(vm.size)
		return true
	}

	evict := func(need resources.Vector, server int, now float64) bool {
		var victims []*pVM
		for _, vm := range running {
			if vm.lowPri && vm.server == server {
				victims = append(victims, vm)
			}
		}
		sort.Slice(victims, func(i, j int) bool {
			if victims[i].prio != victims[j].prio {
				return victims[i].prio < victims[j].prio
			}
			return victims[i].rec.ID < victims[j].rec.ID
		})
		for _, v := range victims {
			if need.FitsIn(free[server]) {
				break
			}
			free[server] = free[server].Add(v.size)
			delete(running, v.rec.ID)
			res.Preemptions++
			lostTotal += remainingDemand(v.rec, now)
		}
		return need.FitsIn(free[server])
	}

	// shockKill removes one VM the provider's capacity shock destroyed:
	// unlike evict it is not an admission preemption, so it counts in
	// ShockKills, and only low-priority demand feeds the loss ratio
	// (the deflation engine charges its shock kills the same remaining
	// demand, so the cross-engine loss comparison is apples to apples).
	shockKill := func(vm *pVM, now float64) {
		free[vm.server] = free[vm.server].Add(vm.size)
		delete(running, vm.rec.ID)
		res.ShockKills++
		if vm.lowPri {
			lostTotal += remainingDemand(vm.rec, now)
		}
	}

	// victimsOn lists server i's residents lowest (priority, ID) first —
	// the deterministic kill order shocks use.
	victimsOn := func(i int) []*pVM {
		var v []*pVM
		for _, vm := range running {
			if vm.server == i {
				v = append(v, vm)
			}
		}
		sort.Slice(v, func(a, b int) bool {
			if v[a].prio != v[b].prio {
				return v[a].prio < v[b].prio
			}
			return v[a].rec.ID < v[b].rec.ID
		})
		return v
	}

	// bestEvictionServer picks the server where free space plus
	// evictable low-priority allocation best covers `need`.
	bestEvictionServer := func(need resources.Vector) int {
		best, bestFit := -1, -1.0
		for i := range free {
			if revoked[i] {
				continue
			}
			avail := free[i]
			for _, vm := range running {
				if vm.lowPri && vm.server == i {
					avail = avail.Add(vm.size)
				}
			}
			if !need.FitsIn(avail) {
				continue
			}
			fit := resources.CosineFitness(need, avail)
			if fit > bestFit {
				best, bestFit = i, fit
			}
		}
		return best
	}

	queue := newArrivalQueue(cfg.Trace, cfg.useHeapQueue)
	e.horizon = cfg.Trace.Duration() // pushShocks defaults a generated schedule to it
	e.pushShocks(queue)
	for !queue.empty() {
		ev := queue.pop()
		switch ev.kind {
		case evDeparture:
			vm, ok := running[ev.vm.ID]
			if !ok {
				continue // already preempted or shock-killed
			}
			free[vm.server] = free[vm.server].Add(vm.size)
			delete(running, ev.vm.ID)
			continue
		case evRevoke:
			// Today's transient server disappearing: every resident
			// dies. Lowest (priority, ID) first only fixes the float
			// fold order; everyone goes.
			i := ev.shock.Server
			if revoked[i] {
				continue
			}
			revoked[i] = true
			res.Revocations++
			for _, vm := range victimsOn(i) {
				shockKill(vm, ev.at)
			}
			free[i] = resources.Vector{} // nothing fits a revoked server
			continue
		case evRestore:
			i := ev.shock.Server
			if !revoked[i] {
				continue
			}
			revoked[i] = false
			res.Restorations++
			free[i] = curCap[i] // the revocation emptied it
			continue
		case evResize:
			// A shrink kills lowest-priority residents until the rest
			// fits — no deflation exists in this world.
			i := ev.shock.Server
			if revoked[i] {
				continue
			}
			newCap := cfg.ServerCapacity.Scale(ev.shock.Scale)
			free[i] = free[i].Add(newCap.Sub(curCap[i]))
			curCap[i] = newCap
			res.Resizes++
			for _, vm := range victimsOn(i) {
				if free[i].CheckNonNegative() == nil {
					break
				}
				shockKill(vm, ev.at)
			}
			continue
		}
		res.Arrivals++
		vm := &pVM{
			rec:    ev.vm,
			size:   vmSize(ev.vm),
			lowPri: ev.vm.Class == trace.Interactive,
			prio:   policy.PriorityFromP95(ev.vm.P95(), cfg.PriorityLevels),
		}
		if vm.lowPri {
			// Total low-priority demand, for the throughput-loss ratio.
			demandTotal += remainingDemand(ev.vm, ev.vm.Start)
		}
		admit := func() {
			running[ev.vm.ID] = vm
			queue.push(simEvent{at: ev.vm.End, kind: evDeparture, vm: ev.vm, seq: ev.seq})
		}
		if place(vm) {
			res.Admitted++
			if vm.lowPri {
				res.DeflatableAdmitted++
			}
			admit()
			continue
		}
		if !vm.lowPri {
			// On-demand pressure: reclaim by preemption.
			res.ReclamationAttempts++
			if s := bestEvictionServer(vm.size); s >= 0 && evict(vm.size, s, ev.at) && place(vm) {
				res.Admitted++
				admit()
				continue
			}
			res.ReclamationFailures++
		}
		res.Rejected++
	}

	// Figure 20 baseline metric: preemption probability for admitted
	// low-priority VMs.
	if res.DeflatableAdmitted > 0 {
		res.FailureProbability = float64(res.Preemptions) / float64(res.DeflatableAdmitted)
	}
	if demandTotal > 0 {
		res.ThroughputLoss = lostTotal / demandTotal
	}
	return res, nil
}
