package clustersim

import (
	"reflect"
	"sync/atomic"
	"testing"

	"vmdeflate/internal/notify"
	"vmdeflate/internal/trace"
)

// TestSweepGridParallelMatchesSequential is the determinism guard for
// the worker-pool refactor: the same grid run strictly sequentially and
// on a parallel pool must produce identical SweepResult values, down to
// the last float bit.
func TestSweepGridParallelMatchesSequential(t *testing.T) {
	tr := testTrace(250)
	strategies := []string{StrategyProportional, StrategyPriority, StrategyPreemption}
	ocs := []float64{0, 30, 60}

	seq, err := SweepGrid(tr, strategies, ocs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepGrid(tr, strategies, ocs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel sweep diverged from sequential:\nseq: %+v\npar: %+v", dump(seq), dump(par))
	}
	// And a second parallel pass must reproduce itself (no hidden
	// global state across runs).
	par2, err := SweepGrid(tr, strategies, ocs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par, par2) {
		t.Fatal("repeated parallel sweep is not reproducible")
	}
}

func dump(rs []*SweepResult) []SweepResult {
	out := make([]SweepResult, len(rs))
	for i, r := range rs {
		out[i] = *r
	}
	return out
}

// TestSweepMatchesGrid keeps the legacy single-strategy entry point and
// the grid runner in lockstep.
func TestSweepMatchesGrid(t *testing.T) {
	tr := testTrace(200)
	ocs := []float64{0, 40}
	single, err := Sweep(tr, StrategyDeterministic, ocs)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := SweepGrid(tr, []string{StrategyDeterministic}, ocs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(single, grid[0]) {
		t.Fatalf("Sweep and SweepGrid disagree:\n%+v\n%+v", *single, *grid[0])
	}
}

func TestSweepGridValidation(t *testing.T) {
	tr := testTrace(50)
	if _, err := SweepGrid(tr, nil, []float64{0}, Options{}); err == nil {
		t.Error("empty strategy list should fail")
	}
	if _, err := SweepGrid(tr, []string{StrategyProportional}, nil, Options{}); err == nil {
		t.Error("empty overcommit list should fail")
	}
	if _, err := SweepGrid(tr, []string{"bogus"}, []float64{0}, Options{}); err == nil {
		t.Error("unknown strategy should fail instead of silently simulating proportional")
	}
}

// TestReplicatedSweepDeterministic checks that scenario replicates —
// whose traces are generated inside the workers from per-run seeds —
// are bit-for-bit reproducible regardless of worker count.
func TestReplicatedSweepDeterministic(t *testing.T) {
	gen := func(seed int64) *trace.AzureTrace {
		tr, err := trace.GenerateScenario(trace.ScenarioConfig{
			Kind: trace.ScenarioBursty, NumVMs: 150, Duration: 86400, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	seeds := []int64{1, 2}
	strategies := []string{StrategyProportional}
	ocs := []float64{20, 50}

	seq, err := ReplicatedSweep(gen, seeds, strategies, ocs, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReplicatedSweep(gen, seeds, strategies, ocs, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("replicated sweep diverged between sequential and parallel execution")
	}
	if len(par) != len(seeds) || len(par[0]) != len(strategies) {
		t.Fatalf("result shape = %dx%d, want %dx%d", len(par), len(par[0]), len(seeds), len(strategies))
	}
	// Different seeds must actually produce different workloads.
	if reflect.DeepEqual(par[0], par[1]) {
		t.Error("distinct replicate seeds produced identical sweeps")
	}

	avg := AverageSweeps(par)
	if len(avg) != len(strategies) || len(avg[0].Points) != len(ocs) {
		t.Fatalf("average shape = %+v", avg)
	}
	for pi := range ocs {
		want := (par[0][0].Points[pi].FailureProbability + par[1][0].Points[pi].FailureProbability) / 2
		got := avg[0].Points[pi].FailureProbability
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("point %d mean failure prob = %v, want %v", pi, got, want)
		}
	}
}

// TestConcurrentEnginesSharedBus runs a parallel grid whose engines all
// publish allocation changes to one shared notify.Bus — the
// race-detector target for the bus fan-out path (run via `go test
// -race`).
func TestConcurrentEnginesSharedBus(t *testing.T) {
	tr := testTrace(200)
	bus := &notify.Bus{}
	var events atomic.Int64
	defer bus.Subscribe(func(notify.Event) { events.Add(1) })()

	strategies := []string{StrategyProportional, StrategyPriority, StrategyDeterministic}
	if _, err := SweepGrid(tr, strategies, []float64{50, 70}, Options{Workers: 6, Notify: bus}); err != nil {
		t.Fatal(err)
	}
	if events.Load() == 0 {
		t.Error("no allocation-change events reached the shared bus")
	}
	if bus.Delivered() != int(events.Load()) {
		t.Errorf("bus delivered %d, subscriber saw %d", bus.Delivered(), events.Load())
	}
}
