package clustersim

import (
	"fmt"
	"math"
	"sort"

	"vmdeflate/internal/cluster"
	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/pricing"
	"vmdeflate/internal/resources"
	"vmdeflate/internal/trace"
)

// vmTracking is the engine's per-VM accounting record.
type vmTracking struct {
	rec    *trace.VMRecord
	domain *hypervisor.Domain
	meters map[string]*pricing.Meter
	lastT  float64
	demand float64 // integrated demand (core-seconds)
	lost   float64 // integrated demand above allocation
	prio   float64
}

// Engine executes one simulation run. It owns every piece of mutable
// run state — the cluster manager, the pending-event queue, the running
// set and all metric accumulators — so concurrently executing engines
// share nothing (a shared *trace.AzureTrace is read-only) and a sweep
// worker pool can run one engine per grid point without coordination.
//
// An Engine is single-use: NewEngine builds it, Run consumes it.
type Engine struct {
	cfg      Config
	nServers int

	// Deflation-mode state.
	mgr     *cluster.Manager
	queue   *eventQueue
	running map[string]*vmTracking
	res     *Result
	horizon float64

	demandTotal float64
	lostTotal   float64
}

// NewEngine validates cfg, resolves the baseline cluster size and
// prepares a run. The expensive BaselineServerCount bound is computed
// here (once) unless cfg.BaselineServers pins it, which sweeps do so
// that every grid point sees an identically sized cluster.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	base := cfg.BaselineServers
	if base <= 0 {
		var err error
		base, err = BaselineServerCount(cfg.Trace, cfg.ServerCapacity)
		if err != nil {
			return nil, err
		}
	}
	nServers := int(math.Ceil(float64(base) / (1 + cfg.Overcommit)))
	if nServers < 1 {
		nServers = 1
	}
	return &Engine{cfg: cfg, nServers: nServers}, nil
}

// Run executes the simulation and returns its metrics.
func (e *Engine) Run() (*Result, error) {
	if e.cfg.Mode == ModePreemption {
		return e.runPreemption()
	}
	return e.runDeflation()
}

// runDeflation drives the deflation-mode event loop: arrivals are
// placed (deflating residents when needed), departures reinflate
// survivors, and self-rescheduling sample events meter demand, loss and
// revenue every trace.SampleInterval. At equal timestamps the queue
// delivers samples, then departures, then arrivals (see eventKind).
func (e *Engine) runDeflation() (*Result, error) {
	cfg := e.cfg
	mgrCfg := cluster.Config{
		Policy:              cfg.Policy,
		Mechanism:           cfg.Mechanism,
		PartitionByPriority: cfg.Partitioned,
		PriorityLevels:      cfg.PriorityLevels,
		Notify:              cfg.Notify,
		ReferencePlacement:  cfg.ReferencePlacement,
	}
	e.mgr = cluster.NewManager(mgrCfg)
	partitions := partitionPlan(cfg, e.nServers)
	for i := 0; i < e.nServers; i++ {
		if _, err := e.mgr.AddServer(fmt.Sprintf("node-%03d", i), cfg.ServerCapacity, partitions[i]); err != nil {
			return nil, err
		}
	}

	e.res = &Result{Servers: e.nServers, Revenue: map[string]float64{}}
	e.running = map[string]*vmTracking{}
	e.queue = newArrivalQueue(cfg.Trace)
	e.horizon = cfg.Trace.Duration()
	if trace.SampleInterval <= e.horizon {
		e.queue.push(simEvent{at: trace.SampleInterval, kind: evSample})
	}

	// Reusable scratch for departure batching, so the hot loop does not
	// allocate per event.
	var (
		batch []simEvent
		names []string
	)
	for !e.queue.empty() {
		ev := e.queue.pop()
		switch ev.kind {
		case evSample:
			for _, vt := range e.running {
				sampleVM(vt, ev.at, cfg)
			}
			if next := ev.at + trace.SampleInterval; next <= e.horizon {
				e.queue.push(simEvent{at: next, kind: evSample})
			}
		case evArrival:
			e.res.Arrivals++
			e.handleArrival(ev)
		case evDeparture:
			// Coalesce the run of departures sharing this timestamp into
			// one batched removal: the manager reinflates each affected
			// server once instead of once per departing VM. The queue's
			// (time, kind, seq) order guarantees the batch is exactly the
			// simultaneous departures, in trace order.
			batch = batch[:0]
			batch = append(batch, ev)
			for !e.queue.empty() {
				next := e.queue.peek()
				if next.at != ev.at || next.kind != evDeparture {
					break
				}
				batch = append(batch, e.queue.pop())
			}
			names = names[:0]
			for _, dev := range batch {
				// Departures are scheduled only on admission and a VM
				// leaves the running set only here, so the lookup cannot
				// miss; it stays as a guard against future schedulers
				// (e.g. preemption-style early removal) rather than a
				// crash.
				vt, ok := e.running[dev.vm.ID]
				if !ok {
					continue
				}
				e.closeVM(vt, dev.at)
				delete(e.running, dev.vm.ID)
				names = append(names, dev.vm.ID)
			}
			if len(names) > 0 {
				if err := e.mgr.RemoveVMs(names...); err != nil {
					return nil, err
				}
			}
		}
	}
	// Defensively close any VM that somehow outlived its departure
	// event, in sorted order so accumulator arithmetic stays
	// deterministic.
	ids := make([]string, 0, len(e.running))
	for id := range e.running {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e.closeVM(e.running[id], e.horizon)
	}

	e.res.ReclamationFailures = e.mgr.Rejections()
	if e.res.ReclamationAttempts > 0 {
		e.res.FailureProbability = float64(e.res.ReclamationFailures) / float64(e.res.ReclamationAttempts)
	}
	if e.demandTotal > 0 {
		e.res.ThroughputLoss = e.lostTotal / e.demandTotal
	}
	return e.res, nil
}

// closeVM settles a VM's meters and folds its demand integrals into the
// run accumulators.
func (e *Engine) closeVM(vt *vmTracking, at float64) {
	finishVM(vt, at, e.res)
	e.demandTotal += vt.demand
	e.lostTotal += vt.lost
}

// handleArrival admits one VM, scheduling its departure only if the
// placement succeeds (rejected VMs leave no residue in the queue).
func (e *Engine) handleArrival(ev simEvent) {
	cfg, vm := e.cfg, ev.vm
	deflatable := vm.Class == trace.Interactive
	prio := policy.PriorityFromP95(vm.P95(), cfg.PriorityLevels)
	dc := hypervisor.DomainConfig{
		Name:       vm.ID,
		Size:       vmSize(vm),
		Deflatable: deflatable,
		Priority:   prio,
	}
	if !deflatable {
		dc.Priority = 0
	}

	// Count reclamation attempts: would this placement need deflation?
	// The capacity index answers in O(log servers) instead of a scan.
	if !e.mgr.FitsWithoutDeflation(dc.Size) {
		e.res.ReclamationAttempts++
	}

	d, _, err := e.mgr.PlaceVM(dc)
	if err != nil {
		e.res.Rejected++
		return
	}
	e.res.Admitted++
	vt := &vmTracking{rec: vm, domain: d, lastT: ev.at, prio: prio}
	if deflatable {
		e.res.DeflatableAdmitted++
		vt.meters = map[string]*pricing.Meter{}
		for _, s := range cfg.PricingSchemes {
			m := &pricing.Meter{}
			m.Observe(ev.at/3600, s.Rate(dc.Size, prio, d.Allocation()))
			vt.meters[s.Name()] = m
		}
	}
	e.running[vm.ID] = vt
	e.queue.push(simEvent{at: vm.End, kind: evDeparture, vm: vm, seq: ev.seq})
}

// sampleVM accumulates demand/loss and refreshes allocation-based
// billing at one 5-minute boundary.
func sampleVM(vt *vmTracking, at float64, cfg Config) {
	if !vt.domain.Deflatable() {
		return
	}
	util := vt.rec.UtilAt(at)
	maxCores := vt.domain.MaxSize().Get(resources.CPU)
	allocCores := vt.domain.Allocation().Get(resources.CPU)
	demand := util / 100 * maxCores * trace.SampleInterval
	vt.demand += demand
	if over := util/100*maxCores - allocCores; over > 0 {
		vt.lost += over * trace.SampleInterval
	}
	for name, m := range vt.meters {
		var rate float64
		switch name {
		case "static":
			rate = 0.2 * maxCores
		case "priority":
			rate = vt.prio * maxCores
		case "allocation":
			rate = 0.2 * allocCores
		}
		m.Observe(at/3600, rate)
	}
}

func finishVM(vt *vmTracking, at float64, res *Result) {
	for name, m := range vt.meters {
		res.Revenue[name] += m.Close(at / 3600)
	}
}
