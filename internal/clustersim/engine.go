package clustersim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"vmdeflate/internal/cluster"
	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/pricing"
	"vmdeflate/internal/resources"
	"vmdeflate/internal/trace"
)

// vmTracking is the engine's per-VM accounting record.
type vmTracking struct {
	rec    *trace.VMRecord
	domain *hypervisor.Domain
	// meters is position-indexed by Config.PricingSchemes (nil for
	// on-demand VMs). A flat slice instead of the old name-keyed map:
	// one admission used to allocate a map plus one Meter per scheme;
	// now it is a single slice allocation, and the per-sample walk is an
	// index loop instead of a map range.
	meters []pricing.Meter
	lastT  float64
	demand float64 // integrated demand (core-seconds)
	lost   float64 // integrated demand above allocation
	prio   float64
	// idx is the VM's position in the engine's running list (swap-remove
	// bookkeeping for the sharded sample pass).
	idx int
}

// Engine executes one simulation run. It owns every piece of mutable
// run state — the cluster manager, the pending-event queue, the running
// set and all metric accumulators — so concurrently executing engines
// share nothing (a shared *trace.AzureTrace is read-only) and a sweep
// worker pool can run one engine per grid point without coordination.
//
// An Engine is single-use: NewEngine builds it, Run consumes it.
type Engine struct {
	cfg      Config
	nServers int
	shards   int

	// Deflation-mode state.
	mgr     *cluster.Manager
	queue   *eventQueue
	running map[string]*vmTracking
	runList []*vmTracking // the running set as a slice, for sharded sampling
	res     *Result
	horizon float64

	demandTotal float64
	lostTotal   float64

	// Arrival-batch scratch, reused across handleArrivals calls.
	dcBuf   []hypervisor.DomainConfig
	prioBuf []float64
	plBuf   []cluster.Placement
}

// minShardedSample is the running-set size below which the sample pass
// stays sequential: spawning shard goroutines for a handful of VMs
// costs more than it saves. The threshold depends only on simulation
// state, never on timing, so it cannot affect results (per-VM sampling
// is order-independent either way).
const minShardedSample = 128

// NewEngine validates cfg, resolves the baseline cluster size and
// prepares a run. The expensive BaselineServerCount bound is computed
// here (once) unless cfg.BaselineServers pins it, which sweeps do so
// that every grid point sees an identically sized cluster.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	base := cfg.BaselineServers
	if base <= 0 {
		var err error
		base, err = BaselineServerCount(cfg.Trace, cfg.ServerCapacity)
		if err != nil {
			return nil, err
		}
	}
	nServers := int(math.Ceil(float64(base) / (1 + cfg.Overcommit)))
	if nServers < 1 {
		nServers = 1
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	return &Engine{cfg: cfg, nServers: nServers, shards: shards}, nil
}

// Run executes the simulation and returns its metrics.
func (e *Engine) Run() (*Result, error) {
	if e.cfg.Mode == ModePreemption {
		return e.runPreemption()
	}
	return e.runDeflation()
}

// runDeflation drives the deflation-mode event loop: arrivals are
// placed (deflating residents when needed), departures reinflate
// survivors, and self-rescheduling sample events meter demand, loss and
// revenue every trace.SampleInterval. At equal timestamps the queue
// delivers samples, then departures, then arrivals (see eventKind).
// With Shards > 1 the sample pass and departure-batch reinflations fan
// out across shards inside the per-timestamp barrier (see the package
// comment's sharding section).
func (e *Engine) runDeflation() (*Result, error) {
	cfg := e.cfg
	mgrCfg := cluster.Config{
		Policy:              cfg.Policy,
		Mechanism:           cfg.Mechanism,
		PartitionByPriority: cfg.Partitioned,
		PriorityLevels:      cfg.PriorityLevels,
		Notify:              cfg.Notify,
		ReferencePlacement:  cfg.ReferencePlacement,
		ReinflateShards:     e.shards,
		PlacementPartitions: cfg.PlacementPartitions,
	}
	e.mgr = cluster.NewManager(mgrCfg)
	defer e.mgr.Close() // stop the partition phase workers with the run
	partitions := partitionPlan(cfg, e.nServers)
	for i := 0; i < e.nServers; i++ {
		if _, err := e.mgr.AddServer(fmt.Sprintf("node-%03d", i), cfg.ServerCapacity, partitions[i]); err != nil {
			return nil, err
		}
	}

	e.res = &Result{Servers: e.nServers, Revenue: map[string]float64{}}
	e.running = map[string]*vmTracking{}
	e.queue = newArrivalQueue(cfg.Trace)
	e.horizon = cfg.Trace.Duration()
	if trace.SampleInterval <= e.horizon {
		e.queue.push(simEvent{at: trace.SampleInterval, kind: evSample})
	}

	// Reusable scratch for departure batching, so the hot loop does not
	// allocate per event.
	var (
		batch []simEvent
		names []string
	)
	for !e.queue.empty() {
		ev := e.queue.pop()
		switch ev.kind {
		case evSample:
			e.samplePass(ev.at)
			if next := ev.at + trace.SampleInterval; next <= e.horizon {
				e.queue.push(simEvent{at: next, kind: evSample})
			}
		case evArrival:
			// Coalesce the run of arrivals sharing this timestamp into one
			// batch for the manager's propose/commit placement engine. The
			// queue's (time, kind, seq) order guarantees the batch is
			// exactly the simultaneous arrivals, in trace order — the
			// canonical commit order, so results are identical at any
			// partition count (and to placing them one at a time). One
			// exception preserves the departures-before-arrivals invariant
			// of eventKind: a zero-lifetime VM (End == arrival instant,
			// possible in hand-written CSV traces; the synthetic
			// generators clip lifetimes to >= SampleInterval) departs at
			// this same instant, and that departure must free its capacity
			// for the arrivals still queued behind it — so it closes the
			// batch, its departure event outranks the remaining arrivals,
			// and the loop resumes batching after processing it.
			batch = batch[:0]
			batch = append(batch, ev)
			if ev.vm.End > ev.at { // a zero-lifetime first VM is a singleton batch
				for !e.queue.empty() {
					next := e.queue.peek()
					if next.at != ev.at || next.kind != evArrival {
						break
					}
					nb := e.queue.pop()
					batch = append(batch, nb)
					if nb.vm.End <= nb.at {
						break // zero-lifetime VM closes the batch (see above)
					}
				}
			}
			e.handleArrivals(batch)
		case evDeparture:
			// Coalesce the run of departures sharing this timestamp into
			// one batched removal: the manager reinflates each affected
			// server once instead of once per departing VM. The queue's
			// (time, kind, seq) order guarantees the batch is exactly the
			// simultaneous departures, in trace order.
			batch = batch[:0]
			batch = append(batch, ev)
			for !e.queue.empty() {
				next := e.queue.peek()
				if next.at != ev.at || next.kind != evDeparture {
					break
				}
				batch = append(batch, e.queue.pop())
			}
			names = names[:0]
			for _, dev := range batch {
				// Departures are scheduled only on admission and a VM
				// leaves the running set only here, so the lookup cannot
				// miss; it stays as a guard against future schedulers
				// (e.g. preemption-style early removal) rather than a
				// crash.
				vt, ok := e.running[dev.vm.ID]
				if !ok {
					continue
				}
				e.closeVM(vt, dev.at)
				e.dropRunning(dev.vm.ID, vt)
				names = append(names, dev.vm.ID)
			}
			if len(names) > 0 {
				if err := e.mgr.RemoveVMs(names...); err != nil {
					return nil, err
				}
			}
		}
	}
	// Defensively close any VM that somehow outlived its departure
	// event, in sorted order so accumulator arithmetic stays
	// deterministic.
	ids := make([]string, 0, len(e.running))
	for id := range e.running {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e.closeVM(e.running[id], e.horizon)
	}

	e.res.ReclamationFailures = e.mgr.Rejections()
	if e.res.ReclamationAttempts > 0 {
		e.res.FailureProbability = float64(e.res.ReclamationFailures) / float64(e.res.ReclamationAttempts)
	}
	if e.demandTotal > 0 {
		e.res.ThroughputLoss = e.lostTotal / e.demandTotal
	}
	return e.res, nil
}

// samplePass meters every running VM at one 5-minute boundary. Each
// sampleVM call reads and writes only its own VM's record, domain and
// meters, so with Shards > 1 the running list is split into contiguous
// chunks sampled concurrently — no cross-VM float accumulation exists
// to reorder, which is why the shard count cannot change any result.
func (e *Engine) samplePass(at float64) {
	if e.shards <= 1 || len(e.runList) < minShardedSample {
		for _, vt := range e.runList {
			sampleVM(vt, at, e.cfg)
		}
		return
	}
	n := len(e.runList)
	var wg sync.WaitGroup
	for w := 0; w < e.shards; w++ {
		lo, hi := w*n/e.shards, (w+1)*n/e.shards
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(chunk []*vmTracking) {
			defer wg.Done()
			for _, vt := range chunk {
				sampleVM(vt, at, e.cfg)
			}
		}(e.runList[lo:hi])
	}
	wg.Wait()
}

// addRunning and dropRunning keep the running map and the sharded
// sample pass's slice in sync; dropRunning swap-removes, which reorders
// the list but sampling is per-VM isolated so order never matters.
func (e *Engine) addRunning(id string, vt *vmTracking) {
	vt.idx = len(e.runList)
	e.runList = append(e.runList, vt)
	e.running[id] = vt
}

func (e *Engine) dropRunning(id string, vt *vmTracking) {
	last := len(e.runList) - 1
	moved := e.runList[last]
	e.runList[vt.idx] = moved
	moved.idx = vt.idx
	e.runList = e.runList[:last]
	delete(e.running, id)
}

// closeVM settles a VM's meters and folds its demand integrals into the
// run accumulators.
func (e *Engine) closeVM(vt *vmTracking, at float64) {
	finishVM(vt, at, e.res, e.cfg.PricingSchemes)
	e.demandTotal += vt.demand
	e.lostTotal += vt.lost
}

// handleArrivals admits one same-timestamp batch of VMs through the
// manager's batch placement (propose in parallel across placement
// partitions, commit serially in trace order — identical to placing
// them one at a time), scheduling departures only for placements that
// succeed (rejected VMs leave no residue in the queue). Admission-time
// billing reads Placement.Initial — the allocation the VM launched
// with, before any later commit of the same batch deflated it — which
// is exactly what the one-at-a-time engine observed.
func (e *Engine) handleArrivals(evs []simEvent) {
	cfg := e.cfg
	dcs := e.dcBuf[:0]
	prios := e.prioBuf[:0]
	for _, ev := range evs {
		vm := ev.vm
		deflatable := vm.Class == trace.Interactive
		prio := policy.PriorityFromP95(vm.P95(), cfg.PriorityLevels)
		dc := hypervisor.DomainConfig{
			Name:       vm.ID,
			Size:       vmSize(vm),
			Deflatable: deflatable,
			Priority:   prio,
		}
		if !deflatable {
			dc.Priority = 0
		}
		dcs = append(dcs, dc)
		prios = append(prios, prio)
	}
	e.dcBuf, e.prioBuf = dcs, prios

	e.plBuf = e.mgr.PlaceVMs(dcs, e.plBuf[:0])
	placements := e.plBuf
	for i, ev := range evs {
		e.res.Arrivals++
		pl := placements[i]
		// Count reclamation attempts: did this placement need deflation?
		// The batch evaluates the check against the same state the
		// placement decision saw.
		if pl.NeedsReclaim {
			e.res.ReclamationAttempts++
		}
		if pl.Err != nil {
			e.res.Rejected++
			continue
		}
		e.res.Admitted++
		vm := ev.vm
		vt := &vmTracking{rec: vm, domain: pl.Domain, lastT: ev.at, prio: prios[i]}
		if dcs[i].Deflatable {
			e.res.DeflatableAdmitted++
			vt.meters = make([]pricing.Meter, len(cfg.PricingSchemes))
			for j, s := range cfg.PricingSchemes {
				vt.meters[j].Observe(ev.at/3600, s.Rate(dcs[i].Size, prios[i], pl.Initial))
			}
		}
		e.addRunning(vm.ID, vt)
		e.queue.push(simEvent{at: vm.End, kind: evDeparture, vm: vm, seq: ev.seq})
	}
}

// sampleVM accumulates demand/loss and refreshes allocation-based
// billing at one 5-minute boundary. It touches only vt's own state (and
// reads its domain through that domain's lock), which is what makes the
// sharded sample pass safe and shard-count-invariant.
func sampleVM(vt *vmTracking, at float64, cfg Config) {
	if !vt.domain.Deflatable() {
		return
	}
	util := vt.rec.UtilAt(at)
	maxCores := vt.domain.MaxSize().Get(resources.CPU)
	allocCores := vt.domain.Allocation().Get(resources.CPU)
	demand := util / 100 * maxCores * trace.SampleInterval
	vt.demand += demand
	if over := util/100*maxCores - allocCores; over > 0 {
		vt.lost += over * trace.SampleInterval
	}
	for i := range vt.meters {
		var rate float64
		switch cfg.PricingSchemes[i].Name() {
		case "static":
			rate = 0.2 * maxCores
		case "priority":
			rate = vt.prio * maxCores
		case "allocation":
			rate = 0.2 * allocCores
		}
		vt.meters[i].Observe(at/3600, rate)
	}
}

func finishVM(vt *vmTracking, at float64, res *Result, schemes []pricing.Scheme) {
	for i := range vt.meters {
		res.Revenue[schemes[i].Name()] += vt.meters[i].Close(at / 3600)
	}
}
