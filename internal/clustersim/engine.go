package clustersim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"vmdeflate/internal/cluster"
	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/pricing"
	"vmdeflate/internal/queueing"
	"vmdeflate/internal/resources"
	"vmdeflate/internal/risk"
	"vmdeflate/internal/stats"
	"vmdeflate/internal/trace"
)

// vmTracking is the engine's per-VM accounting record.
type vmTracking struct {
	rec    *trace.VMRecord
	domain *hypervisor.Domain
	// meters is position-indexed by Config.PricingSchemes (nil for
	// on-demand VMs). A flat slice instead of the old name-keyed map:
	// one admission used to allocate a map plus one Meter per scheme;
	// now it is a single slice allocation, and the per-sample walk is an
	// index loop instead of a map range.
	meters []pricing.Meter
	admitT float64 // admission time, for the on-demand-equivalent bill
	demand float64 // integrated demand (core-seconds)
	lost   float64 // integrated demand above allocation
	prio   float64
	// sloViol/sloSamples count this VM's SLO-violating and total metered
	// samples (Config.SLO runs only). Integer per-VM counters folded at
	// close time keep the accumulation exact and shard-order-free.
	sloViol    uint32
	sloSamples uint32
	// idx is the VM's position in the engine's running list (swap-remove
	// bookkeeping for the sharded sample pass).
	idx int
	// cur reads this VM's utilisation incrementally on streamed runs
	// (nil on eager runs, where rec.CPUUtil is materialised). Cursors
	// are recycled through the engine's free list when the VM closes.
	cur *trace.UtilCursor
}

// Engine executes one simulation run. It owns every piece of mutable
// run state — the cluster manager, the pending-event queue, the running
// set and all metric accumulators — so concurrently executing engines
// share nothing (a shared *trace.AzureTrace is read-only) and a sweep
// worker pool can run one engine per grid point without coordination.
//
// An Engine is single-use: NewEngine builds it, Run consumes it.
type Engine struct {
	cfg      Config
	nServers int
	shards   int

	// Deflation-mode state.
	mgr     *cluster.Manager
	queue   eventQueue
	running map[string]*vmTracking
	runList []*vmTracking // the running set as a slice, for sharded sampling
	res     *Result
	horizon float64

	// Streamed-trace state (nil/zero on eager runs). geo carries the
	// compact sizing view between NewEngine and setupDeflation and is
	// released before the event loop; synth/utilBuf serve admission-time
	// P95 synthesis; cursorFree recycles utilisation cursors (with their
	// embedded RNG state) across VM lifetimes — the per-run arena that
	// keeps steady-state churn allocation-light.
	geo        *streamGeometry
	synth      *trace.SeriesSynth
	utilBuf    []float64
	cursorFree []*trace.UtilCursor

	// sampleTime accumulates the sample passes' wall time when
	// cfg.Timings is set.
	sampleTime time.Duration

	// Capacity-shock state: the provisioned servers' names (shock
	// events address servers by index) and which of them are currently
	// revoked.
	serverNames []string
	revoked     []bool

	// Portfolio / risk provisioning state (deflation mode). baseCap and
	// rateScale are nil on homogeneous fleets: per-server provisioned
	// capacity (resize events scale it) and the per-server shock-rate
	// multipliers handed to the schedule generator. costRate is each
	// server's PriceFactor-weighted core count; outStart/outAccum meter
	// its out-of-service seconds so FleetCost bills in-service time only.
	baseCap   []resources.Vector
	rateScale []float64
	costRate  []float64
	outStart  []float64
	outAccum  []float64

	demandTotal float64
	lostTotal   float64

	// SLO accumulators (nil unless cfg.SLO is set). sloHists is one
	// slowdown histogram per shard — the sharded sample pass increments
	// only its own shard's buckets, and the integer merge at run end is
	// order-exact, so the shard count cannot perturb the distribution.
	// sloViolByLevel counts violating samples per quantised priority
	// level, folded per VM in canonical close order.
	sloHists       [][]uint64
	sloViolByLevel []uint64
	sloSampleCount uint64

	// Arrival-batch scratch, reused across handleArrivals calls.
	dcBuf   []hypervisor.DomainConfig
	prioBuf []float64
	plBuf   []cluster.Placement
}

// minShardedSample is the running-set size below which the sample pass
// stays sequential: spawning shard goroutines for a handful of VMs
// costs more than it saves. The threshold depends only on simulation
// state, never on timing, so it cannot affect results (per-VM sampling
// is order-independent either way).
const minShardedSample = 128

// NewEngine validates cfg, resolves the baseline cluster size and
// prepares a run. The expensive BaselineServerCount bound is computed
// here (once) unless cfg.BaselineServers pins it, which sweeps do so
// that every grid point sees an identically sized cluster.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg}
	if cfg.Stream != nil {
		// One Params pass builds the compact geometry every sizing and
		// planning step below shares; it is released before the event
		// loop starts (setupDeflation keeps only the arrival order).
		e.geo = newStreamGeometry(cfg.Stream)
	}
	base := cfg.BaselineServers
	if base <= 0 {
		var err error
		if cfg.Stream != nil {
			base, err = streamBaselineServerCount(cfg.Stream, e.geo, cfg.ServerCapacity)
		} else {
			base, err = BaselineServerCount(cfg.Trace, cfg.ServerCapacity)
		}
		if err != nil {
			return nil, err
		}
	}
	e.nServers = int(math.Ceil(float64(base) / (1 + cfg.Overcommit)))
	if e.nServers < 1 {
		e.nServers = 1
	}
	e.shards = cfg.Shards
	if e.shards < 1 {
		e.shards = 1
	}
	return e, nil
}

// Run executes the simulation and returns its metrics.
func (e *Engine) Run() (*Result, error) {
	if e.cfg.Mode == ModePreemption {
		return e.runPreemption()
	}
	return e.runDeflation()
}

// setupDeflation builds the deflation-mode run state: the cluster
// manager with its provisioned servers, the event queue seeded with the
// trace and the shock schedule, and the metric accumulators. Split from
// the event loop so white-box benchmarks can stand a populated cluster
// up and drive individual passes. The caller owns e.mgr.Close().
func (e *Engine) setupDeflation() error {
	cfg := e.cfg
	mgrCfg := cluster.Config{
		Policy:              cfg.Policy,
		Mechanism:           cfg.Mechanism,
		PartitionByPriority: cfg.Partitioned,
		PriorityLevels:      cfg.PriorityLevels,
		Notify:              cfg.Notify,
		ReferencePlacement:  cfg.ReferencePlacement,
		FullPressureScan:    cfg.FullPressureScan,
		ReinflateShards:     e.shards,
		PlacementPartitions: cfg.PlacementPartitions,
		CollectTimings:      cfg.Timings != nil,
	}
	if cfg.Risk != nil {
		mgrCfg.Risk = &cluster.RiskConfig{HighPriority: cfg.Risk.HighPriority, MaxBands: cfg.Risk.Bands}
	}
	e.mgr = cluster.NewManager(mgrCfg)
	var partitions []int
	if cfg.Stream != nil {
		partitions = partitionPlanStream(cfg, cfg.Stream, e.geo, e.nServers)
	} else {
		partitions = partitionPlan(cfg, e.nServers)
	}

	// Portfolio typing and the analytic hazard model. Both are pure
	// functions of config and server count, so every engine over the
	// same config provisions an identical fleet. Baseline sizing above
	// stays on the base ServerCapacity: the portfolio redistributes the
	// same nominal fleet, it does not resize it.
	typeOf := portfolioAssign(cfg.Portfolio, e.nServers)
	if typeOf != nil {
		e.baseCap = make([]resources.Vector, e.nServers)
		e.rateScale = make([]float64, e.nServers)
		for i, t := range typeOf {
			e.baseCap[i] = cfg.ServerCapacity.Scale(orOne(cfg.Portfolio[t].CapacityScale))
			e.rateScale[i] = orOne(cfg.Portfolio[t].ShockRateScale)
		}
	}
	var model *risk.Model
	bands, headroom := 0, 1.0
	if cfg.Risk != nil && cfg.Shocks == nil && cfg.ShockConfig != nil {
		sc := *cfg.ShockConfig
		sc.RateScale = e.rateScale
		model = risk.New(sc, e.nServers)
		bands = cfg.Risk.Bands
		if bands <= 0 {
			bands = 4 // keep in sync with cluster.RiskConfig's default
		}
		if cfg.Risk.HeadroomScale > 0 {
			headroom = cfg.Risk.HeadroomScale
		}
	}

	e.serverNames = make([]string, e.nServers)
	e.revoked = make([]bool, e.nServers)
	e.costRate = make([]float64, e.nServers)
	e.outStart = make([]float64, e.nServers)
	e.outAccum = make([]float64, e.nServers)
	for i := 0; i < e.nServers; i++ {
		e.serverNames[i] = fmt.Sprintf("node-%03d", i)
		capacity, price := cfg.ServerCapacity, 1.0
		if typeOf != nil {
			capacity = e.baseCap[i]
			price = orOne(cfg.Portfolio[typeOf[i]].PriceFactor)
		}
		e.costRate[i] = price * capacity.Get(resources.CPU)
		spec := cluster.ServerSpec{Name: e.serverNames[i], Capacity: capacity, Partition: partitions[i]}
		if model != nil {
			spec.Band = model.Band(i, bands)
			if f := model.OutageFraction(i) * headroom; f > 0 {
				spec.ReserveFraction = math.Min(f, 1)
			}
		}
		if _, err := e.mgr.AddServerSpec(spec); err != nil {
			e.mgr.Close()
			return err
		}
	}

	e.res = &Result{Servers: e.nServers, Revenue: map[string]float64{}, RevenueByPriority: map[int]float64{}}
	if cfg.SLO != nil {
		e.sloHists = make([][]uint64, e.shards)
		for i := range e.sloHists {
			e.sloHists[i] = make([]uint64, sloHistBuckets)
		}
		e.sloViolByLevel = make([]uint64, cfg.PriorityLevels)
	}
	e.running = map[string]*vmTracking{}
	if cfg.Stream != nil {
		// The live-set queue holds departures, samples and shocks for
		// the currently running VMs only; arrivals stay latent in the
		// stream. Size the calendar for a modest live set — it resizes
		// itself as the population moves.
		var inner eventQueue
		if cfg.useHeapQueue {
			inner = &heapQueue{}
		} else {
			inner = newCalendarQueue(1024, e.geo.maxEnd)
		}
		e.queue = newStreamQueue(cfg.Stream, e.geo.byStart, inner)
		e.horizon = e.geo.maxEnd
		e.synth = trace.NewSeriesSynth()
		// Release the geometry: the queue owns byStart, and the other
		// four columns (~32 bytes/VM) are dead weight through the run.
		e.geo = nil
	} else {
		e.queue = newArrivalQueue(cfg.Trace, cfg.useHeapQueue)
		e.horizon = cfg.Trace.Duration()
	}
	if trace.SampleInterval <= e.horizon {
		e.queue.push(simEvent{at: trace.SampleInterval, kind: evSample})
	}
	e.pushShocks(e.queue)
	return nil
}

// runDeflation drives the deflation-mode event loop: arrivals are
// placed (deflating residents when needed), departures reinflate
// survivors, and self-rescheduling sample events meter demand, loss and
// revenue every trace.SampleInterval. At equal timestamps the queue
// delivers samples, then departures, then arrivals (see eventKind).
// With Shards > 1 the sample pass and departure-batch reinflations fan
// out across shards inside the per-timestamp barrier (see the package
// comment's sharding section).
func (e *Engine) runDeflation() (*Result, error) {
	cfg := e.cfg
	if err := e.setupDeflation(); err != nil {
		return nil, err
	}
	defer e.mgr.Close() // stop the partition phase workers with the run

	// Reusable scratch for departure batching, so the hot loop does not
	// allocate per event.
	var (
		batch []simEvent
		names []string
	)
	for !e.queue.empty() {
		ev := e.queue.pop()
		switch ev.kind {
		case evSample:
			if cfg.Timings != nil {
				t0 := time.Now()
				e.samplePass(ev.at)
				e.sampleTime += time.Since(t0)
			} else {
				e.samplePass(ev.at)
			}
			if next := ev.at + trace.SampleInterval; next <= e.horizon {
				e.queue.push(simEvent{at: next, kind: evSample})
			}
		case evArrival:
			// Coalesce the run of arrivals sharing this timestamp into one
			// batch for the manager's propose/commit placement engine. The
			// queue's (time, kind, seq) order guarantees the batch is
			// exactly the simultaneous arrivals, in trace order — the
			// canonical commit order, so results are identical at any
			// partition count (and to placing them one at a time). One
			// exception preserves the departures-before-arrivals invariant
			// of eventKind: a zero-lifetime VM (End == arrival instant,
			// possible in hand-written CSV traces; the synthetic
			// generators clip lifetimes to >= SampleInterval) departs at
			// this same instant, and that departure must free its capacity
			// for the arrivals still queued behind it — so it closes the
			// batch, its departure event outranks the remaining arrivals,
			// and the loop resumes batching after processing it.
			batch = batch[:0]
			batch = append(batch, ev)
			if ev.vm.End > ev.at { // a zero-lifetime first VM is a singleton batch
				for !e.queue.empty() {
					next := e.queue.peek()
					if next.at != ev.at || next.kind != evArrival {
						break
					}
					nb := e.queue.pop()
					batch = append(batch, nb)
					if nb.vm.End <= nb.at {
						break // zero-lifetime VM closes the batch (see above)
					}
				}
			}
			e.handleArrivals(batch)
		case evRevoke:
			// Coalesce the run of revocations sharing this timestamp —
			// a rack-sized correlated shock — into ONE multi-server
			// revocation, so every displaced VM across the whole shock
			// relocates through a single batch of the propose/commit
			// engine, in (server order, VM name) evacuation order.
			batch = batch[:0]
			batch = append(batch, ev)
			for !e.queue.empty() {
				next := e.queue.peek()
				if next.at != ev.at || next.kind != evRevoke {
					break
				}
				batch = append(batch, e.queue.pop())
			}
			names = names[:0]
			for _, rev := range batch {
				i := rev.shock.Server
				if e.revoked[i] {
					continue // generator guards double revokes; stay safe
				}
				e.revoked[i] = true
				e.outStart[i] = rev.at
				names = append(names, e.serverNames[i])
			}
			if len(names) > 0 {
				e.res.Revocations += len(names)
				out, err := e.mgr.RevokeServers(names...)
				if err != nil {
					return nil, err
				}
				e.applyEvacuation(out, ev.at)
			}
		case evRestore:
			i := ev.shock.Server
			if e.revoked[i] {
				e.revoked[i] = false
				// Restores can land past the horizon (a late shock's outage
				// overruns it); clamp so FleetCost never bills beyond the run.
				if end := math.Min(ev.at, e.horizon); end > e.outStart[i] {
					e.outAccum[i] += end - e.outStart[i]
				}
				if err := e.mgr.RestoreServer(e.serverNames[i]); err != nil {
					return nil, err
				}
				e.res.Restorations++
			}
		case evResize:
			i := ev.shock.Server
			if !e.revoked[i] {
				capacity := cfg.ServerCapacity
				if e.baseCap != nil {
					capacity = e.baseCap[i] // resize scales the type's own size
				}
				out, err := e.mgr.ResizeServer(e.serverNames[i], capacity.Scale(ev.shock.Scale))
				if err != nil {
					return nil, err
				}
				e.res.Resizes++
				e.applyEvacuation(out, ev.at)
			}
		case evDeparture:
			// Coalesce the run of departures sharing this timestamp into
			// one batched removal: the manager reinflates each affected
			// server once instead of once per departing VM. The queue's
			// (time, kind, seq) order guarantees the batch is exactly the
			// simultaneous departures, in trace order.
			batch = batch[:0]
			batch = append(batch, ev)
			for !e.queue.empty() {
				next := e.queue.peek()
				if next.at != ev.at || next.kind != evDeparture {
					break
				}
				batch = append(batch, e.queue.pop())
			}
			names = names[:0]
			for _, dev := range batch {
				// Departures are scheduled only on admission and a VM
				// leaves the running set only here, so the lookup cannot
				// miss; it stays as a guard against future schedulers
				// (e.g. preemption-style early removal) rather than a
				// crash.
				vt, ok := e.running[dev.vm.ID]
				if !ok {
					continue
				}
				e.closeVM(vt, dev.at)
				e.dropRunning(dev.vm.ID, vt)
				names = append(names, dev.vm.ID)
			}
			if len(names) > 0 {
				if err := e.mgr.RemoveVMs(names...); err != nil {
					return nil, err
				}
			}
		}
	}
	// Defensively close any VM that somehow outlived its departure
	// event, in sorted order so accumulator arithmetic stays
	// deterministic.
	ids := make([]string, 0, len(e.running))
	for id := range e.running {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e.closeVM(e.running[id], e.horizon)
	}

	e.res.ReclamationFailures = e.mgr.Rejections()
	e.res.RiskRejections = e.mgr.RiskRejections()
	e.res.PressuredArrivals, e.res.PressureScored, e.res.PressurePruned = e.mgr.PressureStats()
	// FleetCost: bill each server's in-service core-hours at its type's
	// price factor, in server index order. Outage intervals accumulated
	// in event order; still-revoked servers charge out to the horizon.
	for i, rate := range e.costRate {
		out := e.outAccum[i]
		if e.revoked[i] && e.horizon > e.outStart[i] {
			out += e.horizon - e.outStart[i]
		}
		e.res.FleetCost += rate * (e.horizon - out) / 3600
	}
	if e.res.ReclamationAttempts > 0 {
		e.res.FailureProbability = float64(e.res.ReclamationFailures) / float64(e.res.ReclamationAttempts)
	}
	if e.demandTotal > 0 {
		e.res.ThroughputLoss = e.lostTotal / e.demandTotal
	}
	if e.res.OnDemandRevenue > 0 {
		e.res.CostSavings = make(map[string]float64, len(cfg.PricingSchemes))
		for _, s := range cfg.PricingSchemes {
			e.res.CostSavings[s.Name()] = 1 - e.res.Revenue[s.Name()]/e.res.OnDemandRevenue
		}
	}
	if cfg.SLO != nil {
		e.finishSLO()
	}
	if cfg.Timings != nil {
		pt := e.mgr.PhaseTimings()
		cfg.Timings.Propose += pt.Propose
		cfg.Timings.Commit += pt.Commit
		cfg.Timings.Surplus += pt.Surplus
		cfg.Timings.Pressure += pt.Pressure
		cfg.Timings.Reinflate += pt.Reinflate
		cfg.Timings.Sample += e.sampleTime
	}
	return e.res, nil
}

// sloHistBuckets and sloHistScale shape the slowdown histogram: bucket i
// covers slowdown (1 + i/scale, 1 + (i+1)/scale], so 128 buckets at
// resolution 0.05 track slowdowns up to 7.4x before saturating —
// comfortably past any plausible SLO threshold.
const (
	sloHistBuckets = 128
	sloHistScale   = 20
	// sloSlowdownCap bounds the modelled slowdown for metering: far past
	// every threshold and histogram bucket, yet small enough that the
	// bucket-index conversion to int stays well-defined.
	sloSlowdownCap = 1e6
)

// finishSLO folds the integer SLO accumulators into the Result: all
// merging is integer summation (exact at any shard count), converted to
// seconds and rates only at the very end. The p99 proxy is the upper
// edge of the first histogram bucket at or past the 99th percentile,
// compared in integers (cum*100 >= total*99) so no division order can
// flip a boundary sample.
func (e *Engine) finishSLO() {
	res := e.res
	res.SLOViolationsByPriority = make(map[int]float64, len(e.sloViolByLevel))
	var viol uint64
	for lvl, n := range e.sloViolByLevel {
		res.SLOViolationsByPriority[lvl] = float64(n) * trace.SampleInterval
		viol += n
	}
	res.SLOViolationSeconds = float64(viol) * trace.SampleInterval
	res.SLOSampleSeconds = float64(e.sloSampleCount) * trace.SampleInterval
	if e.sloSampleCount > 0 {
		res.SLOViolationRate = float64(viol) / float64(e.sloSampleCount)
	}
	merged := e.sloHists[0]
	for _, h := range e.sloHists[1:] {
		for i, v := range h {
			merged[i] += v
		}
	}
	var total uint64
	for _, v := range merged {
		total += v
	}
	if total == 0 {
		return
	}
	var cum uint64
	for i, v := range merged {
		cum += v
		if cum*100 >= total*99 {
			res.SLOLatencyP99 = 1 + float64(i+1)/sloHistScale
			return
		}
	}
}

// pushShocks schedules the run's capacity-shock events: the explicit
// Config.Shocks list when given, otherwise a schedule generated for
// this run's own server count from Config.ShockConfig. Shocks
// addressing servers beyond the provisioned count are dropped, so one
// schedule replays against any cluster size.
func (e *Engine) pushShocks(q eventQueue) {
	shocks := e.cfg.Shocks
	if shocks == nil && e.cfg.ShockConfig != nil {
		sc := *e.cfg.ShockConfig
		if sc.Duration <= 0 {
			sc.Duration = e.horizon
		}
		if e.rateScale != nil {
			sc.RateScale = e.rateScale // portfolio types shape per-server rates
		}
		shocks = trace.GenerateShocks(sc, e.nServers)
	}
	for i := range shocks {
		sh := &shocks[i]
		if sh.Server < 0 || sh.Server >= e.nServers {
			continue
		}
		var kind eventKind
		switch sh.Kind {
		case trace.ShockRevoke:
			kind = evRevoke
		case trace.ShockRestore:
			kind = evRestore
		case trace.ShockResize:
			kind = evResize
		default:
			continue
		}
		q.push(simEvent{at: sh.At, kind: kind, shock: sh, seq: i})
	}
}

// remainingDemand integrates a VM's CPU demand (core-seconds) from
// time t to its natural end: the demand a kill destroys. Shared by the
// preemption baseline and the deflation engine's shock kills so both
// charge a destroyed VM identically.
func remainingDemand(rec *trace.VMRecord, t float64) float64 {
	var d float64
	for ts := t; ts < rec.End; ts += trace.SampleInterval {
		d += rec.UtilAt(ts) / 100 * float64(rec.Cores) * trace.SampleInterval
	}
	return d
}

// remainingDemandOf is remainingDemand for a tracked VM, reading
// utilisation through the streamed cursor when one is bound. The cursor
// produces the same sample bits as the materialised series, so both
// forms charge a killed VM identically.
func (e *Engine) remainingDemandOf(vt *vmTracking, t float64) float64 {
	if vt.cur == nil {
		return remainingDemand(vt.rec, t)
	}
	var d float64
	for ts := t; ts < vt.rec.End; ts += trace.SampleInterval {
		d += vt.cur.At(ts) / 100 * float64(vt.rec.Cores) * trace.SampleInterval
	}
	return d
}

// applyEvacuation folds one capacity shock's evacuation outcome into
// the run state: relocated VMs swap to their new domains (and re-meter
// allocation-based billing at the relocation allocation), killed VMs
// are settled and dropped at the shock instant — their already-queued
// departure events become stale and are skipped by the departure
// batch's running-set guard. A killed deflatable VM's never-served
// future demand is charged to both the demand and loss integrals,
// exactly as the preemption baseline charges its shock kills, so the
// two modes' ThroughputLoss stays comparable under shocks.
func (e *Engine) applyEvacuation(out cluster.Evacuation, at float64) {
	for i := range out.VMs {
		name := out.VMs[i].Name
		vt, ok := e.running[name]
		if !ok {
			continue
		}
		pl := out.Placements[i]
		if pl.Err != nil {
			e.res.ShockKills++
			if out.VMs[i].Deflatable {
				rem := e.remainingDemandOf(vt, at)
				vt.demand += rem
				vt.lost += rem
			}
			e.closeVM(vt, at)
			e.dropRunning(name, vt)
			continue
		}
		e.res.Evacuations++
		e.res.DisplacedDowntime += e.cfg.EvacuationDowntime
		vt.domain = pl.Domain
		for j := range vt.meters {
			s := e.cfg.PricingSchemes[j]
			vt.meters[j].Observe(at/3600, s.Rate(out.VMs[i].Size, vt.prio, pl.Initial))
		}
	}
}

// samplePass meters every running VM at one 5-minute boundary. Each
// sampleVM call reads and writes only its own VM's record, domain and
// meters, so with Shards > 1 the running list is split into contiguous
// chunks sampled concurrently — no cross-VM float accumulation exists
// to reorder, which is why the shard count cannot change any result.
func (e *Engine) samplePass(at float64) {
	if e.shards <= 1 || len(e.runList) < minShardedSample {
		var hist []uint64
		if e.sloHists != nil {
			hist = e.sloHists[0]
		}
		for _, vt := range e.runList {
			sampleVM(vt, at, e.cfg, hist)
		}
		return
	}
	n := len(e.runList)
	var wg sync.WaitGroup
	for w := 0; w < e.shards; w++ {
		lo, hi := w*n/e.shards, (w+1)*n/e.shards
		if lo == hi {
			continue
		}
		var hist []uint64
		if e.sloHists != nil {
			hist = e.sloHists[w]
		}
		wg.Add(1)
		go func(chunk []*vmTracking, hist []uint64) {
			defer wg.Done()
			for _, vt := range chunk {
				sampleVM(vt, at, e.cfg, hist)
			}
		}(e.runList[lo:hi], hist)
	}
	wg.Wait()
}

// addRunning and dropRunning keep the running map and the sharded
// sample pass's slice in sync; dropRunning swap-removes, which reorders
// the list but sampling is per-VM isolated so order never matters.
func (e *Engine) addRunning(id string, vt *vmTracking) {
	vt.idx = len(e.runList)
	e.runList = append(e.runList, vt)
	e.running[id] = vt
}

func (e *Engine) dropRunning(id string, vt *vmTracking) {
	last := len(e.runList) - 1
	moved := e.runList[last]
	e.runList[vt.idx] = moved
	moved.idx = vt.idx
	e.runList = e.runList[:last]
	delete(e.running, id)
}

// closeVM settles a VM's meters and folds its demand integrals into the
// run accumulators.
func (e *Engine) closeVM(vt *vmTracking, at float64) {
	finishVM(vt, at, e.res, e.cfg)
	e.demandTotal += vt.demand
	e.lostTotal += vt.lost
	if e.cfg.SLO != nil {
		e.sloViolByLevel[priorityLevel(vt.prio, e.cfg.PriorityLevels)] += uint64(vt.sloViol)
		e.sloSampleCount += uint64(vt.sloSamples)
	}
	if vt.cur != nil {
		e.cursorFree = append(e.cursorFree, vt.cur)
		vt.cur = nil
	}
}

// handleArrivals admits one same-timestamp batch of VMs through the
// manager's batch placement (propose in parallel across placement
// partitions, commit serially in trace order — identical to placing
// them one at a time), scheduling departures only for placements that
// succeed (rejected VMs leave no residue in the queue). Admission-time
// billing reads Placement.Initial — the allocation the VM launched
// with, before any later commit of the same batch deflated it — which
// is exactly what the one-at-a-time engine observed.
func (e *Engine) handleArrivals(evs []simEvent) {
	cfg := e.cfg
	streamed := cfg.Stream != nil
	dcs := e.dcBuf[:0]
	prios := e.prioBuf[:0]
	for _, ev := range evs {
		vm := ev.vm
		deflatable := vm.Class == trace.Interactive
		var prio float64
		dc := hypervisor.DomainConfig{
			Name:       vm.ID,
			Size:       vmSize(vm),
			Deflatable: deflatable,
		}
		switch {
		case streamed && deflatable:
			// The record carries no materialised series; synthesize it
			// once into the reusable buffer for the P95 the priority
			// quantises, reading the admission-instant load off sample 0
			// (ev.at is exactly vm.Start). Same bits as the eager reads.
			p := cfg.Stream.Params(ev.seq)
			e.utilBuf = e.synth.Append(p, e.utilBuf[:0])
			prio = policy.PriorityFromP95(stats.Percentile(e.utilBuf, 95), cfg.PriorityLevels)
			dc.Priority = prio
			if cfg.SLO != nil {
				dc.Load = e.utilBuf[0] / 100 * float64(vm.Cores)
			}
		case streamed:
			// On-demand VM: priority is forced to 0 below either way, and
			// nothing downstream reads an on-demand VM's p95-derived prio
			// (no meters, no SLO samples), so skip the synthesis.
		default:
			prio = policy.PriorityFromP95(vm.P95(), cfg.PriorityLevels)
			dc.Priority = prio
			if !deflatable {
				dc.Priority = 0
			}
			if deflatable && cfg.SLO != nil {
				// Seed the admission-time offered load so the VM's own
				// admission pass (and any deflation it triggers) sees it.
				dc.Load = vm.UtilAt(ev.at) / 100 * float64(vm.Cores)
			}
		}
		dcs = append(dcs, dc)
		prios = append(prios, prio)
	}
	e.dcBuf, e.prioBuf = dcs, prios

	e.plBuf = e.mgr.PlaceVMs(dcs, e.plBuf[:0])
	placements := e.plBuf
	for i, ev := range evs {
		e.res.Arrivals++
		pl := placements[i]
		// Count reclamation attempts: did this placement need deflation?
		// The batch evaluates the check against the same state the
		// placement decision saw.
		if pl.NeedsReclaim {
			e.res.ReclamationAttempts++
		}
		if pl.Err != nil {
			e.res.Rejected++
			continue
		}
		e.res.Admitted++
		vm := ev.vm
		vt := &vmTracking{rec: vm, domain: pl.Domain, admitT: ev.at, prio: prios[i]}
		if dcs[i].Deflatable {
			e.res.DeflatableAdmitted++
			vt.meters = make([]pricing.Meter, len(cfg.PricingSchemes))
			for j, s := range cfg.PricingSchemes {
				vt.meters[j].Observe(ev.at/3600, s.Rate(dcs[i].Size, prios[i], pl.Initial))
			}
		}
		if streamed {
			// Bind a utilisation cursor for the VM's lifetime, recycled
			// through the free list so steady-state churn allocates
			// nothing.
			var cur *trace.UtilCursor
			if n := len(e.cursorFree); n > 0 {
				cur, e.cursorFree = e.cursorFree[n-1], e.cursorFree[:n-1]
			} else {
				cur = trace.NewUtilCursor()
			}
			cur.Reset(cfg.Stream.Params(ev.seq))
			vt.cur = cur
		}
		e.addRunning(vm.ID, vt)
		e.queue.push(simEvent{at: vm.End, kind: evDeparture, vm: vm, seq: ev.seq})
	}
}

// sampleVM accumulates demand/loss, SLO state and allocation-based
// billing at one 5-minute boundary. It touches only vt's own state (and
// reads its domain through that domain's lock; hist belongs to this
// VM's shard alone), which is what makes the sharded sample pass safe
// and shard-count-invariant. With cfg.SLO set it additionally maps the
// offered load and current allocation to a request slowdown through the
// closed-form PS model — pure float math, so the pass stays
// allocation-free — and publishes the load to the domain for the
// latency-aware policy's next pass.
func sampleVM(vt *vmTracking, at float64, cfg Config, hist []uint64) {
	if !vt.domain.Deflatable() {
		return
	}
	util := vmUtil(vt, at)
	maxCores := vt.domain.MaxSize().Get(resources.CPU)
	allocCores := vt.domain.Allocation().Get(resources.CPU)
	demand := util / 100 * maxCores * trace.SampleInterval
	vt.demand += demand
	if over := util/100*maxCores - allocCores; over > 0 {
		vt.lost += over * trace.SampleInterval
	}
	if cfg.SLO != nil {
		load := util / 100 * maxCores
		vt.domain.SetOfferedLoad(load)
		effCap := cfg.SLO.Curve.EffectiveCapacity(maxCores, allocCores)
		s := queueing.PSSlowdownRatio(load, maxCores, effCap, sloSlowdownCap)
		vt.sloSamples++
		if s > cfg.SLO.MaxSlowdown+1e-9 {
			vt.sloViol++
		}
		idx := int((s - 1) * sloHistScale)
		if idx < 0 {
			idx = 0
		} else if idx >= sloHistBuckets {
			idx = sloHistBuckets - 1
		}
		hist[idx]++
	}
	for i := range vt.meters {
		var rate float64
		switch cfg.PricingSchemes[i].Name() {
		case "static":
			rate = 0.2 * maxCores
		case "priority":
			rate = vt.prio * maxCores
		case "allocation":
			rate = 0.2 * allocCores
		}
		vt.meters[i].Observe(at/3600, rate)
	}
}

// vmUtil reads a tracked VM's utilisation at time t: through the
// streamed cursor when one is bound (samples advance monotonically, so
// the cursor's forward reads are O(1) amortised), else from the
// materialised series. The two produce identical bits — the cursor
// replays the same generator from the same per-VM seed.
func vmUtil(vt *vmTracking, at float64) float64 {
	if vt.cur != nil {
		return vt.cur.At(at)
	}
	return vt.rec.UtilAt(at)
}

// finishVM settles a departing (or shock-killed) VM's billing: each
// scheme's meter closes into Revenue, the "priority" scheme is
// additionally split by quantised priority level, and the VM's
// on-demand-equivalent bill (cores × hours at rate 1) accumulates so
// the run can report the paper's customer cost-savings fraction.
func finishVM(vt *vmTracking, at float64, res *Result, cfg Config) {
	for i := range vt.meters {
		name := cfg.PricingSchemes[i].Name()
		rev := vt.meters[i].Close(at / 3600)
		res.Revenue[name] += rev
		if name == "priority" {
			res.RevenueByPriority[priorityLevel(vt.prio, cfg.PriorityLevels)] += rev
		}
	}
	if vt.meters != nil {
		res.OnDemandRevenue += float64(vt.rec.Cores) * (at - vt.admitT) / 3600
	}
}

// priorityLevel maps a quantised priority pi = (level+1)/n back to its
// zero-based level index.
func priorityLevel(prio float64, levels int) int {
	lvl := int(prio*float64(levels)+0.5) - 1
	if lvl < 0 {
		lvl = 0
	}
	if lvl >= levels {
		lvl = levels - 1
	}
	return lvl
}
