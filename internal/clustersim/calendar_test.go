package clustersim

import (
	"math/rand"
	"testing"
)

// TestCalendarQueueMatchesHeapRandomized is the randomized differential
// property: any interleaving of pushes and pops drains in exactly the
// same (time, kind, seq) order from the calendar and the heap. The
// workload deliberately includes same-instant collisions across every
// kind and adjacent seq values — the tie cases the total order exists
// for — plus time-warped pushes below the current scan position.
func TestCalendarQueueMatchesHeapRandomized(t *testing.T) {
	kinds := []eventKind{evSample, evDeparture, evRestore, evRevoke, evResize, evArrival}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		cal := newCalendarQueue(8, 1000)
		hp := &heapQueue{}
		seq := 0
		mk := func() simEvent {
			// Quantised times force heavy same-instant collisions; a few
			// scattered huge times exercise the year filter and the
			// direct-scan fallback.
			at := float64(rng.Intn(50)) * 100
			if rng.Intn(20) == 0 {
				at = float64(rng.Intn(1000000)) + rng.Float64()
			}
			e := simEvent{at: at, kind: kinds[rng.Intn(len(kinds))], seq: seq}
			if rng.Intn(3) == 0 {
				e.seq = seq - rng.Intn(2) // adjacent-seq ties at same instant
			}
			seq++
			return e
		}
		live := 0
		for op := 0; op < 20000; op++ {
			if live == 0 || rng.Intn(3) != 0 {
				e := mk()
				cal.push(e)
				hp.push(e)
				live++
				continue
			}
			if cal.empty() != hp.empty() {
				t.Fatalf("seed %d op %d: empty() diverges", seed, op)
			}
			cp, hpk := cal.peek(), hp.peek()
			if cp != hpk {
				t.Fatalf("seed %d op %d: peek %+v != %+v", seed, op, cp, hpk)
			}
			ce, he := cal.pop(), hp.pop()
			if ce != he {
				t.Fatalf("seed %d op %d: pop %+v != %+v", seed, op, ce, he)
			}
			live--
		}
		for !hp.empty() {
			if cal.empty() {
				t.Fatalf("seed %d: calendar drained early", seed)
			}
			ce, he := cal.pop(), hp.pop()
			if ce != he {
				t.Fatalf("seed %d: drain pop %+v != %+v", seed, ce, he)
			}
		}
		if !cal.empty() {
			t.Fatalf("seed %d: calendar not empty after drain", seed)
		}
	}
}

// TestCalendarQueueResizeCycle drives the population through growth and
// drain so both resize directions (double and shrink) fire, and the
// drain order stays fully sorted.
func TestCalendarQueueResizeCycle(t *testing.T) {
	q := newCalendarQueue(4, 10)
	rng := rand.New(rand.NewSource(9))
	n := 5000
	for i := 0; i < n; i++ {
		q.push(simEvent{at: rng.Float64() * 1e5, kind: evSample, seq: i})
	}
	var last simEvent
	for i := 0; i < n; i++ {
		e := q.pop()
		if i > 0 && eventLess(e, last) {
			t.Fatalf("pop %d out of order: %+v after %+v", i, e, last)
		}
		last = e
	}
	if !q.empty() {
		t.Fatal("queue not empty after full drain")
	}
}

// BenchmarkCalendarQueueSteadyState is the hot-loop shape the engine
// drives: a warmed queue at constant size, one pop + one push per
// iteration (a departure retiring and a new one scheduling). Gated at 0
// allocs/op by `make bench-allocs` — the buckets are warmed to capacity
// before timing, so steady-state churn must not grow anything.
func BenchmarkCalendarQueueSteadyState(b *testing.B) {
	const live = 4096
	q := newCalendarQueue(live, 86400)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < live; i++ {
		q.push(simEvent{at: rng.Float64() * 86400, kind: evDeparture, seq: i})
	}
	// One full churn cycle warms every bucket's capacity past what the
	// steady state revisits.
	for i := 0; i < 4*live; i++ {
		e := q.pop()
		e.at += rng.Float64() * 3600
		e.seq = live + i
		q.push(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.pop()
		e.at += 1800
		e.seq = 5*live + i
		q.push(e)
	}
}
