package clustersim

// calendarQueue is a calendar queue (Brown, CACM 1988): the pending
// events hash into a power-of-two ring of time buckets of fixed width,
// and the dequeue scan walks buckets from the current position, so both
// push and pop are O(1) amortized — against the O(log n) of the binary
// heap, which at 10M-VM scale spends a measurable fraction of the run
// sifting a millions-deep heap.
//
// The ordering contract is exactly eventLess — the strict (time, kind,
// seq) total order — so the calendar substitutes for heapQueue without
// perturbing one result bit; the randomized property test in
// calendar_test.go and the engine-level differential suite both pit the
// two against each other.
//
// Layout: an event with time at lives in bucket int64(at/width) & mask.
// The scan position curAbs is an absolute (un-masked) bucket index;
// bucket contents are filtered by their absolute index ("this year's
// events only"), so far-future events sharing a ring slot are skipped
// until the scan's year reaches them. If a whole ring revolution finds
// nothing, the remaining events are more than a year ahead and a direct
// min-scan repositions the calendar in one pass.
type calendarQueue struct {
	buckets [][]simEvent
	mask    int64 // len(buckets)-1
	size    int
	width   float64
	curAbs  int64 // events below this absolute bucket index are gone

	// Width calibration. A size-triggered resize never fires at steady
	// state (departures replace arrivals one for one), so a width picked
	// during warm-up can stay wrong forever: too wide and the live
	// population concentrates in a few fat buckets — every findMin scans
	// tens of events, and the scan's sliding window strands bucket
	// capacity behind it that no revolution ever revisits. scanWork
	// accumulates findMin effort (buckets stepped + events examined);
	// when it exceeds calendarScanFactor per pop over a calibration
	// window, the ring rebuilds with the width re-derived from the live
	// population's actual time span.
	scanWork int
	popCount int

	// One-event peek cache, so the peek-then-pop pattern of the
	// engine's batch coalescing scans at most once per event.
	hasPeek bool
	peekEv  simEvent
	peekB   int // ring slot holding peekEv
	peekPos int // position within that slot
}

// calendarMinBuckets floors the ring size; 16 keeps the direct-scan
// fallback trivial for tiny queues while letting the ring shrink hard
// after a drain.
const calendarMinBuckets = 16

// calendarPopWindow and calendarScanFactor tune the steady-state
// recalibration: every window pops, if findMin averaged more than the
// factor in scan work per pop, the width is miscalibrated and the ring
// rebuilds. The resize walks every pending event, so the window bounds
// recalibration overhead to O(size/window) per pop — negligible — while
// catching miscalibration within one window.
const (
	calendarPopWindow  = 4096
	calendarScanFactor = 8
)

// newCalendarQueue sizes the ring for about sizeHint events spread over
// span seconds. Both are hints: the ring resizes itself as the
// population moves, so they only position the first few resize steps.
func newCalendarQueue(sizeHint int, span float64) *calendarQueue {
	nb := calendarMinBuckets
	for nb < sizeHint {
		nb <<= 1
	}
	q := &calendarQueue{
		buckets: make([][]simEvent, nb),
		mask:    int64(nb - 1),
	}
	q.width = calendarWidth(span, sizeHint)
	return q
}

// calendarWidth picks a bucket width targeting ~1 event per bucket-year
// step: span/n. Any positive width is correct (the year filter and the
// direct-scan fallback handle both extremes); this is purely the
// constant-factor knob. The microsecond floor keeps the absolute bucket
// index of any simulation-range timestamp far inside int64 even when a
// near-degenerate population (all events within a float ulp) would
// otherwise drive the width toward zero.
func calendarWidth(span float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	w := span / float64(n)
	if !(w > 1e-6) { // also catches NaN
		w = 1e-6
	}
	return w
}

func (q *calendarQueue) empty() bool { return q.size == 0 }

func (q *calendarQueue) push(e simEvent) {
	if q.size+1 > 2*len(q.buckets) {
		q.resize()
	}
	abs := int64(e.at / q.width)
	slot := abs & q.mask
	q.buckets[slot] = append(q.buckets[slot], e)
	q.size++
	if abs < q.curAbs {
		// The engine never schedules into the past, but the queue stays
		// correct if a caller does: rewind the scan.
		q.curAbs = abs
	}
	if q.hasPeek && eventLess(e, q.peekEv) {
		q.hasPeek = false
	}
}

func (q *calendarQueue) peek() simEvent {
	if !q.hasPeek {
		q.findMin()
	}
	return q.peekEv
}

func (q *calendarQueue) pop() simEvent {
	if !q.hasPeek {
		q.findMin()
	}
	e := q.peekEv
	b := q.buckets[q.peekB]
	last := len(b) - 1
	// Swap-remove: (at, kind, seq) is unique per event, so in-bucket
	// order carries no information.
	b[q.peekPos] = b[last]
	b[last] = simEvent{} // drop the vm/shock pointers for the GC
	q.buckets[q.peekB] = b[:last]
	q.size--
	q.hasPeek = false
	switch {
	case q.size < len(q.buckets)/4 && len(q.buckets) > calendarMinBuckets:
		q.resize()
	default:
		q.popCount++
		if q.popCount >= calendarPopWindow {
			if q.scanWork > calendarScanFactor*q.popCount {
				q.resize()
			}
			q.popCount, q.scanWork = 0, 0
		}
	}
	return e
}

// findMin locates the next event in eventLess order and caches it for
// peek/pop. Callers guarantee size > 0.
func (q *calendarQueue) findMin() {
	nb := int64(len(q.buckets))
	// Invariant: no pending event maps below curAbs (pop never advances
	// past a bucket with current-year events; push rewinds). So the
	// first year-matching occupant found while scanning forward is in
	// the earliest non-empty year-bucket, and the eventLess-min of that
	// bucket's matches is the global min.
	for step := int64(0); step < nb; step++ {
		a := q.curAbs + step
		slot := int(a & q.mask)
		b := q.buckets[slot]
		q.scanWork += 1 + len(b)
		best := -1
		for i := range b {
			if int64(b[i].at/q.width) != a {
				continue // a different year shares this slot
			}
			if best < 0 || eventLess(b[i], b[best]) {
				best = i
			}
		}
		if best >= 0 {
			q.curAbs = a
			q.hasPeek, q.peekEv, q.peekB, q.peekPos = true, b[best], slot, best
			return
		}
	}
	// Everything is over a year away: one direct scan finds the global
	// min and repositions the year.
	q.directMin()
}

// directMin is the sparse-population fallback: scan every pending event
// once. It runs only when a full ring revolution found nothing, which
// bounds its amortized contribution.
func (q *calendarQueue) directMin() {
	found := false
	for slot := range q.buckets {
		for i := range q.buckets[slot] {
			e := q.buckets[slot][i]
			if !found || eventLess(e, q.peekEv) {
				found = true
				q.peekEv, q.peekB, q.peekPos = e, slot, i
			}
		}
	}
	if !found {
		panic("clustersim: pop/peek on empty calendarQueue")
	}
	q.hasPeek = true
	q.curAbs = int64(q.peekEv.at / q.width)
}

// resize rebuilds the ring at a power of two matched to the current
// population and re-derives the bucket width from the live population's
// actual time span (min..max pending event), then rehashes every event.
// Deriving the width from the live window rather than the remaining
// horizon is what keeps ~1 event per bucket-year: under trace-driven
// churn the pending departures cluster a mean-lifetime ahead of now,
// a tiny slice of the horizon. Amortized O(1) per push/pop by the
// usual doubling argument plus the calibration window.
func (q *calendarQueue) resize() {
	nb := calendarMinBuckets
	for nb < q.size {
		nb <<= 1
	}
	minAt, maxAt, first := 0.0, 0.0, true
	for _, b := range q.buckets {
		for i := range b {
			at := b[i].at
			if first || at < minAt {
				minAt = at
			}
			if first || at > maxAt {
				maxAt = at
			}
			first = false
		}
	}
	old := q.buckets
	q.buckets = make([][]simEvent, nb)
	q.mask = int64(nb - 1)
	q.width = calendarWidth(maxAt-minAt, q.size)
	q.hasPeek = false
	q.curAbs = int64(minAt / q.width)
	for _, b := range old {
		for _, e := range b {
			abs := int64(e.at / q.width)
			q.buckets[abs&q.mask] = append(q.buckets[abs&q.mask], e)
			if abs < q.curAbs {
				q.curAbs = abs
			}
		}
	}
	q.popCount, q.scanWork = 0, 0
}
