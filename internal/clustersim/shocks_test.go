package clustersim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"vmdeflate/internal/policy"
	"vmdeflate/internal/trace"
)

func testShockConfig(seed int64) *trace.ShockConfig {
	return &trace.ShockConfig{
		Kind:       trace.ShockPoisson,
		RatePerDay: 2,
		OutageMean: 4 * 3600,
		Seed:       seed,
	}
}

// TestShockEventOrdering pins the extended same-instant kind order:
// samples, departures, restorations, revocations, resizes, arrivals.
// Restorations MUST precede revocations: a same-instant restore+revoke
// pair must free the returning capacity before the evacuation needs it,
// and a back-to-back outage of one server (restore then re-revoke at
// one instant) must replay as two outages, not be silently dropped.
func TestShockEventOrdering(t *testing.T) {
	vm := &trace.VMRecord{ID: "vm"}
	sh := &trace.CapacityShock{Server: 0}
	push := []simEvent{
		{at: 100, kind: evArrival, vm: vm},
		{at: 100, kind: evResize, shock: sh},
		{at: 100, kind: evRevoke, shock: sh},
		{at: 100, kind: evRestore, shock: sh},
		{at: 100, kind: evDeparture, vm: vm},
		{at: 100, kind: evSample},
	}
	want := []eventKind{evSample, evDeparture, evRestore, evRevoke, evResize, evArrival}
	for implName, mk := range queueImpls() {
		q := mk()
		for _, e := range push {
			q.push(e)
		}
		for i, k := range want {
			got := q.pop()
			if got.kind != k {
				t.Fatalf("%s: pop %d: kind %v, want %v", implName, i, got.kind, k)
			}
		}
	}
}

// TestRevocationRunsProcessShocks: a shocked deflation run actually
// revokes, restores and relocates — the counters tie together.
func TestRevocationRunsProcessShocks(t *testing.T) {
	cfg := Config{
		Trace:       testTrace(400),
		Policy:      policy.Priority{},
		Overcommit:  0.3,
		ShockConfig: testShockConfig(11),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Revocations == 0 {
		t.Fatal("no revocations processed at rate 2/server/day over 2 days")
	}
	if res.Restorations > res.Revocations {
		t.Fatalf("restorations (%d) exceed revocations (%d)", res.Restorations, res.Revocations)
	}
	if res.Evacuations+res.ShockKills == 0 {
		t.Fatal("revocations displaced no VMs at 30% overcommitment")
	}
	wantDowntime := float64(res.Evacuations) * 30
	if math.Abs(res.DisplacedDowntime-wantDowntime) > 1e-9 {
		t.Fatalf("DisplacedDowntime = %g, want %g (30 s × %d evacuations)",
			res.DisplacedDowntime, wantDowntime, res.Evacuations)
	}
}

// TestRevocationDifferential is the acceptance guarantee of the
// transient-server refactor: under revocation churn, runs are
// bit-for-bit identical across shard counts {1,4} × placement-partition
// counts {1,3,8} and against the brute-force reference placement path,
// across scenarios and shock schedules.
func TestRevocationDifferential(t *testing.T) {
	scenarios := []trace.Scenario{trace.ScenarioDiurnal, trace.ScenarioHeavyTail}
	shockKinds := []trace.ShockScenario{trace.ShockPoisson, trace.ShockRack}
	for _, kind := range scenarios {
		for _, shockKind := range shockKinds {
			tr, err := trace.GenerateScenario(trace.ScenarioConfig{
				Kind: kind, NumVMs: 400, Duration: 86400, Seed: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			sc := testShockConfig(7)
			sc.Kind = shockKind
			base := Config{Trace: tr, Policy: policy.Priority{}, Overcommit: 0.5, ShockConfig: sc}
			seq, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			if seq.Revocations == 0 {
				t.Fatalf("%v/%v: shock schedule produced no revocations — the suite is vacuous", kind, shockKind)
			}
			refCfg := base
			refCfg.ReferencePlacement = true
			ref, err := Run(refCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalizeScanMeters(seq), normalizeScanMeters(ref)) {
				t.Fatalf("%v/%v: sequential diverged from reference:\nseq %+v\nref %+v", kind, shockKind, *seq, *ref)
			}
			for _, shards := range []int{1, 4} {
				for _, parts := range []int{1, 3, 8} {
					name := fmt.Sprintf("%v/%v/shards=%d/partitions=%d", kind, shockKind, shards, parts)
					t.Run(name, func(t *testing.T) {
						cfg := base
						cfg.Shards = shards
						cfg.PlacementPartitions = parts
						got, err := Run(cfg)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, seq) {
							t.Fatalf("shocked run diverged from sequential:\ngot %+v\nseq %+v", *got, *seq)
						}
					})
				}
			}
		}
	}
}

// TestDeflationSavesShockVictims is the paper's headline claim under
// actual transiency: with the same workload and the same revocation
// schedule, deflation-first evacuation saves at least 90% of the VMs
// the preemption baseline kills.
func TestDeflationSavesShockVictims(t *testing.T) {
	tr := testTrace(500)
	sc := testShockConfig(5)
	base := Config{Trace: tr, Policy: policy.Priority{}, Overcommit: 0.2, ShockConfig: sc}

	defl, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	preCfg := base
	preCfg.Mode = ModePreemption
	pre, err := Run(preCfg)
	if err != nil {
		t.Fatal(err)
	}
	if pre.ShockKills == 0 {
		t.Fatal("preemption baseline killed nobody — the comparison is vacuous")
	}
	saved := pre.ShockKills - defl.ShockKills
	if saved*10 < pre.ShockKills*9 {
		t.Fatalf("deflation saved %d of the %d VMs preemption kills (%.0f%%), want >= 90%%\ndeflation: %d evacuated, %d killed",
			saved, pre.ShockKills, 100*float64(saved)/float64(pre.ShockKills),
			defl.Evacuations, defl.ShockKills)
	}
}

// TestResizeShocksDeflateInPlace: an explicit shrink/restore schedule
// drives the in-place resize path — residents deflate instead of dying,
// and the restore reinflates them.
func TestResizeShocksDeflateInPlace(t *testing.T) {
	tr := testTrace(300)
	horizon := tr.Duration()
	shocks := []trace.CapacityShock{
		{At: horizon * 0.25, Kind: trace.ShockResize, Server: 0, Scale: 0.5},
		{At: horizon * 0.25, Kind: trace.ShockResize, Server: 1, Scale: 0.4},
		{At: horizon * 0.6, Kind: trace.ShockResize, Server: 0, Scale: 1.0},
		{At: horizon * 0.6, Kind: trace.ShockResize, Server: 1, Scale: 1.0},
	}
	cfg := Config{Trace: tr, Policy: policy.Proportional{}, Overcommit: 0.5, Shocks: shocks}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resizes == 0 {
		t.Fatal("no resize shocks processed")
	}
	if res.Revocations != 0 || res.Restorations != 0 {
		t.Fatalf("resize-only schedule recorded %d revocations / %d restorations", res.Revocations, res.Restorations)
	}
	// Shrinks must not slaughter: with tiny default floors the residents
	// deflate in place, so kills should be rare or zero.
	if res.ShockKills > res.Evacuations+2 {
		t.Fatalf("in-place shrink killed %d VMs (evacuated %d)", res.ShockKills, res.Evacuations)
	}
}

// TestPricingWiredIntoResult covers the pricing satellites: the
// on-demand-equivalent bill, the per-scheme cost-savings fraction and
// the per-priority revenue split must be populated and consistent.
func TestPricingWiredIntoResult(t *testing.T) {
	cfg := Config{Trace: testTrace(300), Policy: policy.Priority{}, Overcommit: 0.4}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OnDemandRevenue <= 0 {
		t.Fatal("OnDemandRevenue not accumulated")
	}
	if res.CostSavings == nil {
		t.Fatal("CostSavings not computed")
	}
	// The static scheme bills a flat 0.2x the on-demand rate, so its
	// customer savings are 80% by construction.
	if got := res.CostSavings["static"]; math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("CostSavings[static] = %g, want 0.8", got)
	}
	for scheme, s := range res.CostSavings {
		if s < -1e-9 || s > 1 {
			t.Fatalf("CostSavings[%s] = %g outside [0,1]", scheme, s)
		}
	}
	if len(res.RevenueByPriority) == 0 {
		t.Fatal("RevenueByPriority empty")
	}
	var sum float64
	for lvl, v := range res.RevenueByPriority {
		if lvl < 0 || lvl >= 4 {
			t.Fatalf("priority level %d outside [0,4)", lvl)
		}
		sum += v
	}
	if prio := res.Revenue["priority"]; math.Abs(sum-prio) > 1e-6*math.Max(1, prio) {
		t.Fatalf("per-priority revenue sums to %g, scheme total is %g", sum, prio)
	}
}

// TestShockedSweepGrid: the sweep layer threads the shock config
// through to every grid point, and the deflation strategies report
// evacuations where the preemption baseline reports kills.
func TestShockedSweepGrid(t *testing.T) {
	tr := testTrace(250)
	opts := Options{Workers: 2, ShockConfig: testShockConfig(9)}
	results, err := SweepGrid(tr, []string{StrategyProportional, StrategyPreemption}, []float64{0, 30}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range results {
		for _, p := range sr.Points {
			if p.Revocations == 0 {
				t.Fatalf("%s @ %g%%: no revocations in a shocked sweep", sr.Strategy, p.OvercommitPct)
			}
			if sr.Strategy == StrategyPreemption && p.Evacuations != 0 {
				t.Fatalf("preemption baseline reported %d evacuations", p.Evacuations)
			}
		}
	}
}
