package clustersim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"vmdeflate/internal/policy"
	"vmdeflate/internal/trace"
)

// testPortfolio is a two-type transient mix: a small slice of stable
// full-price servers and a larger slice of cheap, revocation-heavy
// ones. The 100x hazard spread spreads servers across the band range
// and gives the risk model real reserves to work with.
func testPortfolio() []ServerType {
	return []ServerType{
		{Name: "stable", Fraction: 1, PriceFactor: 1, ShockRateScale: 0.02},
		{Name: "spot", Fraction: 2, PriceFactor: 0.4, ShockRateScale: 2},
	}
}

// TestPortfolioAssign pins the type-assignment rule: largest-remainder
// counts (exact to the rounding unit), contiguous runs in declaration
// order, zero-fraction defaults, and the nil degenerations.
func TestPortfolioAssign(t *testing.T) {
	if got := portfolioAssign(nil, 10); got != nil {
		t.Fatalf("empty portfolio assigned %v", got)
	}
	if got := portfolioAssign(testPortfolio(), 0); got != nil {
		t.Fatalf("zero servers assigned %v", got)
	}
	got := portfolioAssign(testPortfolio(), 10)
	want := []int{0, 0, 0, 1, 1, 1, 1, 1, 1, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("1:2 mix over 10 = %v, want %v", got, want)
	}
	// Zero fractions weigh 1 each: three types split 10 as 4/3/3.
	even := []ServerType{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	got = portfolioAssign(even, 10)
	counts := map[int]int{}
	last := 0
	for _, ty := range got {
		if ty < last {
			t.Fatalf("assignment %v not contiguous in declaration order", got)
		}
		last = ty
		counts[ty]++
	}
	if counts[0] != 4 || counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("even 3-way split over 10 = %v, want 4/3/3", counts)
	}
}

// riskConfig is the shared shocked, portfolio-provisioned, risk-aware
// run the differential and accounting suites drive.
func riskConfig(tr *trace.AzureTrace) Config {
	sc := testShockConfig(13)
	sc.Kind = trace.ShockRack
	return Config{
		Trace:       tr,
		Policy:      policy.Priority{},
		Overcommit:  0.4,
		ShockConfig: sc,
		Portfolio:   testPortfolio(),
		Risk:        &RiskOptions{HighPriority: 0.75, Bands: 4, HeadroomScale: 0.5},
	}
}

// Expected trade at this toy scale (6 servers, rack shocks, headroom
// 0.5): the gate trades roughly a quarter of low-priority admissions
// for half the shock kills and a quarter less displaced downtime. The
// thresholds below leave margin but the runs are fully deterministic.
const minAwareRevenueShare = 0.7

// TestRiskDifferential is the acceptance guarantee for the risk
// tentpole: a portfolio fleet with hazard-banded placement and the
// headroom admission gate active must produce bit-for-bit identical
// results across shard counts {1,4} x placement-partition counts
// {1,3,8} and against the brute-force reference path — and the run
// must actually exercise the new machinery (revocations AND headroom
// rejections), or the suite is vacuous.
func TestRiskDifferential(t *testing.T) {
	tr := testTrace(400)
	base := riskConfig(tr)
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Revocations == 0 {
		t.Fatal("no revocations — the differential is vacuous")
	}
	if seq.RiskRejections == 0 {
		t.Fatal("headroom gate never fired — the differential is vacuous")
	}
	if seq.RiskRejections > seq.Rejected {
		t.Fatalf("RiskRejections %d exceeds Rejected %d", seq.RiskRejections, seq.Rejected)
	}
	refCfg := base
	refCfg.ReferencePlacement = true
	ref, err := Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeScanMeters(seq), normalizeScanMeters(ref)) {
		t.Fatalf("sequential diverged from reference:\nseq %+v\nref %+v", *seq, *ref)
	}
	for _, shards := range []int{1, 4} {
		for _, parts := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("shards=%d/partitions=%d", shards, parts), func(t *testing.T) {
				cfg := base
				cfg.Shards = shards
				cfg.PlacementPartitions = parts
				got, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, seq) {
					t.Fatalf("risk run diverged from sequential:\ngot %+v\nseq %+v", *got, *seq)
				}
			})
		}
	}
}

// TestRiskAwareDominatesRiskBlind is the paper-level claim the
// benchreport frontier gate enforces per mix: on the same workload,
// portfolio and shock schedule, risk-aware admission+placement kills
// fewer displaced VMs and accrues less displaced downtime than the
// risk-blind run, while giving up only a bounded slice of admitted
// revenue — and the provider's fleet cost is identical by construction
// (the schedule and fleet don't depend on placement).
func TestRiskAwareDominatesRiskBlind(t *testing.T) {
	tr := testTrace(400)
	aware := riskConfig(tr)
	blind := aware
	blind.Risk = nil

	ra, err := Run(aware)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(blind)
	if err != nil {
		t.Fatal(err)
	}
	if rb.RiskRejections != 0 {
		t.Fatalf("risk-blind run recorded %d risk rejections", rb.RiskRejections)
	}
	if ra.ShockKills >= rb.ShockKills {
		t.Fatalf("risk-aware kills %d >= risk-blind %d", ra.ShockKills, rb.ShockKills)
	}
	if ra.DisplacedDowntime >= rb.DisplacedDowntime {
		t.Fatalf("risk-aware downtime %g >= risk-blind %g", ra.DisplacedDowntime, rb.DisplacedDowntime)
	}
	if ra.OnDemandRevenue < minAwareRevenueShare*rb.OnDemandRevenue {
		t.Fatalf("risk-aware admitted revenue %g below %g of risk-blind %g",
			ra.OnDemandRevenue, minAwareRevenueShare, rb.OnDemandRevenue)
	}
	if math.Abs(ra.FleetCost-rb.FleetCost) > 1e-9 {
		t.Fatalf("fleet cost diverged: aware %g, blind %g", ra.FleetCost, rb.FleetCost)
	}
	if ra.FleetCost <= 0 {
		t.Fatal("FleetCost not metered")
	}
}

// TestPortfolioShapesSchedule: the portfolio's ShockRateScale really
// reaches the generator — under independent (poisson) shocks the cheap
// high-rate slice eats revocations at a multiple of the stable slice's
// rate. Counted from the generated schedule itself, with the type
// boundary recomputed exactly as the engine assigns it. (Rack shocks
// dilute the skew by construction on small fleets: a rack straddling
// the type boundary revokes its stable members at the rack's blended
// rate, and per-rack non-overlap saturates the hot racks.)
func TestPortfolioShapesSchedule(t *testing.T) {
	tr := testTrace(300)
	cfg := riskConfig(tr)
	cfg.ShockConfig.Kind = trace.ShockPoisson
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.setupDeflation(); err != nil {
		t.Fatal(err)
	}
	defer eng.mgr.Close()
	assign := portfolioAssign(cfg.Portfolio, eng.nServers)
	sc := *cfg.ShockConfig
	sc.Duration = 2 * 86400
	sc.RateScale = eng.rateScale
	var perType [2]int
	for _, sh := range trace.GenerateShocks(sc, eng.nServers) {
		if sh.Kind == trace.ShockRevoke {
			perType[assign[sh.Server]]++
		}
	}
	nStable := 0
	for _, ty := range assign {
		if ty == 0 {
			nStable++
		}
	}
	stableRate := float64(perType[0]) / float64(nStable)
	spotRate := float64(perType[1]) / float64(eng.nServers-nStable)
	if spotRate == 0 || spotRate < 10*stableRate {
		t.Fatalf("spot slice revokes at %.2f/server vs stable %.2f/server — want >= 10x (configured 100x)",
			spotRate, stableRate)
	}
}

// TestSameInstantRestoreRevokeRace pins the event-order contract under
// the nastiest schedule: restores and revocations sharing an instant
// with an in-flight evacuation, plus a restore+re-revoke of the same
// server at one instant (two back-to-back outages, not a dropped one).
// The restore must free its capacity before the same-instant
// revocation's evacuation places into it, on every engine
// configuration, bit for bit.
func TestSameInstantRestoreRevokeRace(t *testing.T) {
	tr := testTrace(350)
	h := tr.Duration()
	shocks := []trace.CapacityShock{
		{At: 0.2 * h, Kind: trace.ShockRevoke, Server: 0},
		// One instant: S0 returns, S1 and S2 go — the coalesced two-server
		// evacuation may land displaced VMs on the just-restored S0.
		{At: 0.5 * h, Kind: trace.ShockRestore, Server: 0},
		{At: 0.5 * h, Kind: trace.ShockRevoke, Server: 1},
		{At: 0.5 * h, Kind: trace.ShockRevoke, Server: 2},
		// One instant: S1 restores and is immediately revoked again — the
		// restore-before-revoke order makes this two outages.
		{At: 0.7 * h, Kind: trace.ShockRestore, Server: 1},
		{At: 0.7 * h, Kind: trace.ShockRevoke, Server: 1},
		{At: 0.9 * h, Kind: trace.ShockRestore, Server: 1},
		{At: 0.9 * h, Kind: trace.ShockRestore, Server: 2},
	}
	base := Config{Trace: tr, Policy: policy.Priority{}, Overcommit: 0.5, Shocks: shocks}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Revocations != 4 || seq.Restorations != 4 {
		t.Fatalf("processed %d revocations / %d restorations, want 4 / 4 (re-revoke replayed as a second outage)",
			seq.Revocations, seq.Restorations)
	}
	if seq.Evacuations == 0 {
		t.Fatal("schedule displaced nobody — the race is vacuous")
	}
	refCfg := base
	refCfg.ReferencePlacement = true
	ref, err := Run(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeScanMeters(seq), normalizeScanMeters(ref)) {
		t.Fatalf("sequential diverged from reference:\nseq %+v\nref %+v", *seq, *ref)
	}
	for _, parts := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("partitions=%d", parts), func(t *testing.T) {
			cfg := base
			cfg.PlacementPartitions = parts
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, seq) {
				t.Fatalf("raced run diverged from sequential:\ngot %+v\nseq %+v", *got, *seq)
			}
		})
	}
}

// TestRiskSweepThreadsThrough: the sweep layer passes portfolio and
// risk options to every grid point, and the projected points carry the
// new frontier fields.
func TestRiskSweepThreadsThrough(t *testing.T) {
	tr := testTrace(250)
	opts := Options{
		Workers:     2,
		ShockConfig: testShockConfig(9),
		Portfolio:   testPortfolio(),
		Risk:        &RiskOptions{HeadroomScale: 1.5},
	}
	results, err := SweepGrid(tr, []string{StrategyPriority}, []float64{20, 40}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range results[0].Points {
		if p.FleetCost <= 0 {
			t.Fatalf("@ %g%%: FleetCost not projected into the sweep point", p.OvercommitPct)
		}
		if p.OnDemandRevenue <= 0 {
			t.Fatalf("@ %g%%: OnDemandRevenue not projected", p.OvercommitPct)
		}
		if p.Revocations == 0 {
			t.Fatalf("@ %g%%: no revocations in a shocked sweep", p.OvercommitPct)
		}
	}
}
