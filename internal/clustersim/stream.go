package clustersim

import (
	"fmt"
	"sort"

	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
	"vmdeflate/internal/stats"
	"vmdeflate/internal/trace"
)

// Streamed-trace support: everything a run needs from a trace.Stream
// without materialising VMRecords. The geometry pass below is the only
// O(N)-memory structure a streamed run builds, and it is compact — a
// few machine words per VM instead of a record plus a utilisation
// slice — and mostly freed before the event loop starts.

// streamGeometry is the compact sizing/planning view of a stream: VM
// indices sorted by start and by end, the start/end/cores columns, and
// the trace horizon. It exists through engine setup (cluster sizing,
// partition planning, queue seeding) and is released before the run
// loop, leaving only the arrival order with the queue.
type streamGeometry struct {
	byStart []int32 // VM indices sorted by (Start, index)
	byEnd   []int32 // VM indices sorted by (End, index)
	starts  []float64
	ends    []float64
	cores   []int32
	maxEnd  float64
}

// newStreamGeometry runs the one Params pass over the stream and sorts
// the two index columns.
func newStreamGeometry(s *trace.Stream) *streamGeometry {
	n := s.Len()
	g := &streamGeometry{
		byStart: make([]int32, n),
		byEnd:   make([]int32, n),
		starts:  make([]float64, n),
		ends:    make([]float64, n),
		cores:   make([]int32, n),
	}
	for i := 0; i < n; i++ {
		p := s.Params(i)
		g.starts[i], g.ends[i], g.cores[i] = p.Start, p.End, int32(p.Cores)
		g.byStart[i], g.byEnd[i] = int32(i), int32(i)
		if p.End > g.maxEnd {
			g.maxEnd = p.End
		}
	}
	// (key, index) is a strict total order, so an unstable sort is
	// deterministic.
	sort.Slice(g.byStart, func(a, b int) bool {
		ia, ib := g.byStart[a], g.byStart[b]
		if g.starts[ia] != g.starts[ib] {
			return g.starts[ia] < g.starts[ib]
		}
		return ia < ib
	})
	sort.Slice(g.byEnd, func(a, b int) bool {
		ia, ib := g.byEnd[a], g.byEnd[b]
		if g.ends[ia] != g.ends[ib] {
			return g.ends[ia] < g.ends[ib]
		}
		return ia < ib
	})
	return g
}

// forEachEvent merges the two sorted index columns into exactly the
// order buildEvents produces for the materialised trace — (time,
// departures-first, trace index) — without allocating the 2N event
// slice. Bounds and partition planning replay this walk, which is what
// keeps their float accumulations bit-identical to the eager path.
func (g *streamGeometry) forEachEvent(fn func(idx int32, arrival bool) bool) {
	i, j := 0, 0
	for i < len(g.byStart) || j < len(g.byEnd) {
		var takeArrival bool
		switch {
		case i >= len(g.byStart):
			takeArrival = false
		case j >= len(g.byEnd):
			takeArrival = true
		default:
			// Departure first on time ties, matching buildEvents.
			takeArrival = g.ends[g.byEnd[j]] > g.starts[g.byStart[i]]
		}
		if takeArrival {
			if !fn(g.byStart[i], true) {
				return
			}
			i++
		} else {
			if !fn(g.byEnd[j], false) {
				return
			}
			j++
		}
	}
}

// vmSizeParams is vmSize for a streamed parameter record.
func vmSizeParams(p trace.VMParams) resources.Vector {
	return resources.CPUMem(float64(p.Cores), p.MemoryMB)
}

// PeakServerLowerBoundStream is PeakServerLowerBound for a streamed
// trace: identical accumulation order, identical result, O(N) compact
// memory instead of the materialised trace plus its event slice.
func PeakServerLowerBoundStream(s *trace.Stream, serverCap resources.Vector) (int, error) {
	return streamPeakLowerBound(s, newStreamGeometry(s), serverCap)
}

func streamPeakLowerBound(s *trace.Stream, g *streamGeometry, serverCap resources.Vector) (int, error) {
	var cur, peak resources.Vector
	var err error
	g.forEachEvent(func(idx int32, arrival bool) bool {
		p := s.Params(int(idx))
		size := vmSizeParams(p)
		if arrival {
			if !size.FitsIn(serverCap) {
				err = fmt.Errorf("clustersim: VM %s (%v) exceeds server capacity %v",
					p.ID(), size, serverCap)
				return false
			}
			cur = cur.Add(size)
			peak = peak.Max(cur)
		} else {
			cur = cur.Sub(size)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	return serversForPeak(peak, serverCap), nil
}

// BaselineServerCountStream is BaselineServerCount for a streamed
// trace: the same lower bound plus the same tightest-fit feasibility
// replay, with a flat int32 placement column instead of the per-replay
// name map.
func BaselineServerCountStream(s *trace.Stream, serverCap resources.Vector) (int, error) {
	return streamBaselineServerCount(s, newStreamGeometry(s), serverCap)
}

func streamBaselineServerCount(s *trace.Stream, g *streamGeometry, serverCap resources.Vector) (int, error) {
	lb, err := streamPeakLowerBound(s, g, serverCap)
	if err != nil {
		return 0, err
	}
	where := make([]int32, s.Len())
	for n := lb; n <= 4*lb+4; n++ {
		if streamFullAllocationFeasible(s, g, n, serverCap, where) {
			return n, nil
		}
	}
	return 0, fmt.Errorf("clustersim: no feasible packing within %d servers", 4*lb+4)
}

func streamFullAllocationFeasible(s *trace.Stream, g *streamGeometry, n int, serverCap resources.Vector, where []int32) bool {
	free := make([]resources.Vector, n)
	for i := range free {
		free[i] = serverCap
	}
	for i := range where {
		where[i] = -1
	}
	ok := true
	g.forEachEvent(func(idx int32, arrival bool) bool {
		size := vmSizeParams(s.Params(int(idx)))
		if !arrival {
			if sv := where[idx]; sv >= 0 {
				free[sv] = free[sv].Add(size)
				where[idx] = -1
			}
			return true
		}
		best := tightestFit(free, size, serverCap)
		if best < 0 {
			ok = false
			return false
		}
		free[best] = free[best].Sub(size)
		where[idx] = int32(best)
		return true
	})
	return ok
}

// partitionPlanStream is partitionPlan over a streamed trace: the same
// peak-concurrent-demand-per-level accounting in the same event order,
// with per-VM priority levels derived by synthesizing each interactive
// VM's utilisation series once (the P95 the eager path reads off the
// materialised record).
func partitionPlanStream(cfg Config, s *trace.Stream, g *streamGeometry, nServers int) []int {
	out := make([]int, nServers)
	if !cfg.Partitioned {
		return out
	}
	levels := cfg.PriorityLevels
	lvlOf := make([]int8, s.Len())
	synth := trace.NewSeriesSynth()
	var buf []float64
	for i := 0; i < s.Len(); i++ {
		p := s.Params(i)
		lvl := levels - 1 // on-demand pool
		if p.Class == trace.Interactive {
			buf = synth.Append(p, buf[:0])
			pr := policy.PriorityFromP95(stats.Percentile(buf, 95), levels)
			lvl = int(pr*float64(levels)) - 1
			if lvl < 0 {
				lvl = 0
			}
			if lvl >= levels {
				lvl = levels - 1
			}
		}
		lvlOf[i] = int8(lvl)
	}
	demand := make([]float64, levels)
	current := make([]float64, levels)
	g.forEachEvent(func(idx int32, arrival bool) bool {
		lvl := lvlOf[idx]
		if arrival {
			current[lvl] += float64(g.cores[idx])
			if current[lvl] > demand[lvl] {
				demand[lvl] = current[lvl]
			}
		} else {
			current[lvl] -= float64(g.cores[idx])
		}
		return true
	})
	return allocatePools(out, demand, nServers, levels)
}

// streamChunkShift sizes the arrival-order chunks: 1<<20 arrivals
// (4 MB of int32) per chunk, released as soon as the scan moves past
// them, so the retained arrival column shrinks toward zero as the run
// progresses instead of pinning 4 bytes per trace VM to the end.
const streamChunkShift = 20

// streamQueue is the eventQueue of a streamed run: arrivals come from
// the pre-sorted arrival order, materialised one VM at a time as the
// simulation reaches them, while departures, samples and shocks live in
// a conventional inner queue sized to the live set. The arrival order
// is held in chunks whose consumed prefix is freed incrementally, so
// peak queue memory is the unconsumed arrival suffix plus O(live
// events) — never the 10M-deep event set an eager seed would build.
type streamQueue struct {
	s      *trace.Stream
	chunks [][]int32 // arrival order; consumed chunks are nilled
	next   int       // next unmaterialised absolute position
	total  int
	headOK bool
	head   simEvent // materialised next arrival
	inner  eventQueue
}

// newStreamQueue copies byStart (the geometry's arrival order column)
// into releasable chunks; the caller's slice can then be dropped with
// the rest of the geometry.
func newStreamQueue(s *trace.Stream, byStart []int32, inner eventQueue) *streamQueue {
	q := &streamQueue{s: s, total: len(byStart), inner: inner}
	const chunk = 1 << streamChunkShift
	for off := 0; off < len(byStart); off += chunk {
		end := off + chunk
		if end > len(byStart) {
			end = len(byStart)
		}
		c := make([]int32, end-off)
		copy(c, byStart[off:end])
		q.chunks = append(q.chunks, c)
	}
	return q
}

// materializeVM builds the streamed form of a VMRecord: metadata only,
// CPUUtil left nil. The engine reads utilisation through a UtilCursor
// instead — sampleVM and remainingDemandOf dispatch on vt.cur — so the
// nil slice is never consulted.
func materializeVM(p trace.VMParams) *trace.VMRecord {
	return &trace.VMRecord{
		ID:       p.ID(),
		Class:    p.Class,
		Cores:    p.Cores,
		MemoryMB: p.MemoryMB,
		Start:    p.Start,
		End:      p.End,
	}
}

// ensureHead materialises the next pending arrival, if any, releasing
// each arrival-order chunk as the scan leaves it.
func (q *streamQueue) ensureHead() {
	if q.headOK || q.next >= q.total {
		return
	}
	const mask = 1<<streamChunkShift - 1
	c := q.next >> streamChunkShift
	idx := q.chunks[c][q.next&mask]
	q.next++
	if q.next&mask == 0 || q.next >= q.total {
		q.chunks[c] = nil
	}
	p := q.s.Params(int(idx))
	q.head = simEvent{at: p.Start, kind: evArrival, vm: materializeVM(p), seq: int(idx)}
	q.headOK = true
}

func (q *streamQueue) empty() bool {
	return !q.headOK && q.next >= q.total && q.inner.empty()
}

func (q *streamQueue) push(e simEvent) {
	// The engine never schedules arrivals — they exist only in the
	// stream — so everything pushed belongs to the live-set queue.
	q.inner.push(e)
}

func (q *streamQueue) peek() simEvent {
	q.ensureHead()
	if !q.headOK {
		return q.inner.peek()
	}
	if q.inner.empty() || eventLess(q.head, q.inner.peek()) {
		return q.head
	}
	return q.inner.peek()
}

func (q *streamQueue) pop() simEvent {
	q.ensureHead()
	if !q.headOK {
		return q.inner.pop()
	}
	if q.inner.empty() || eventLess(q.head, q.inner.peek()) {
		q.headOK = false
		return q.head
	}
	return q.inner.pop()
}
