package clustersim

import (
	"container/heap"
	"slices"

	"vmdeflate/internal/trace"
)

// eventKind orders simultaneous events. Samples fire first so metering
// observes the population as it stood through the preceding interval;
// departures precede capacity shocks so a VM that leaves at the shock
// instant is not pointlessly evacuated (and its freed capacity is
// available to the evacuees); restorations precede revocations so a
// same-instant restore+revoke pair frees the returning capacity before
// the evacuation that needs it — and so back-to-back outages of one
// server (restore and re-revoke at the same instant, which the
// generators' admission sweep can legally produce) replay as two
// outages instead of silently dropping the second; resizes follow
// revocations so their displaced VMs never land on a server revoked at
// the same instant; and every shock precedes the arrivals so newcomers
// only ever see post-shock capacity (the invariant the old slice-based
// replay encoded in its sort comparator, extended to the
// transient-server events).
type eventKind int

const (
	evSample eventKind = iota
	evDeparture
	evRestore
	evRevoke
	evResize
	evArrival
)

// String names the kind for test failure messages.
func (k eventKind) String() string {
	switch k {
	case evSample:
		return "sample"
	case evDeparture:
		return "departure"
	case evRevoke:
		return "revoke"
	case evRestore:
		return "restore"
	case evResize:
		return "resize"
	case evArrival:
		return "arrival"
	default:
		return "eventKind(?)"
	}
}

// simEvent is one scheduled simulation event. vm is nil for samples and
// capacity shocks; shock is nil for everything else.
type simEvent struct {
	at   float64
	kind eventKind
	vm   *trace.VMRecord
	// shock carries the capacity-shock payload of
	// evRevoke/evRestore/evResize events.
	shock *trace.CapacityShock
	// seq breaks ties among equal (at, kind) pairs. Arrival and
	// departure events carry the VM's trace index, shock events their
	// schedule index, so simultaneous events replay in trace order — the
	// same total order the previous implementation obtained from a
	// stable sort over the trace slice, which keeps refactored runs
	// bit-for-bit comparable.
	seq int
}

// eventLess is the strict total event order: (time, kind, seq), with
// the kind ranking documented on eventKind. Every queue implementation
// delivers exactly this order, which is what lets them substitute for
// one another without perturbing a single result bit.
func eventLess(a, b simEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// eventQueue is the pending-event set: push schedules, pop/peek deliver
// in (time, kind, seq) order. Two interchangeable implementations
// exist — heapQueue (container/heap, the original and the property-test
// reference) and calendarQueue (O(1) amortized, the default) — plus
// streamQueue, which overlays lazily generated arrivals on a live-set
// queue for streamed traces. Unlike the pre-queue approach —
// materialise 2N events in one slice and sort it per run — all of them
// admit lazily scheduled events (departures are only scheduled for VMs
// that were actually admitted, samples reschedule themselves), so a
// run's live set stays proportional to the pending horizon rather than
// the whole trace.
type eventQueue interface {
	// push schedules an event.
	push(simEvent)
	// pop removes and returns the next event in (time, kind, seq) order.
	pop() simEvent
	// peek returns the next event without removing it. Callers must
	// check empty() first. The engine uses it to coalesce runs of
	// same-timestamp departures/arrivals/revocations into one batch.
	peek() simEvent
	// empty reports whether any events remain.
	empty() bool
}

// heapQueue is the container/heap-backed eventQueue: O(log n) push/pop.
// It remains as the differential reference for calendarQueue (see
// Config.useHeapQueue and the randomized property test) — any ordering
// bug in the calendar shows up as a bit-level divergence against it.
type heapQueue struct {
	evs []simEvent
}

// Len, Less, Swap, Push and Pop implement heap.Interface; the ordering
// is eventLess.
func (q *heapQueue) Len() int { return len(q.evs) }

func (q *heapQueue) Less(i, j int) bool { return eventLess(q.evs[i], q.evs[j]) }

func (q *heapQueue) Swap(i, j int) { q.evs[i], q.evs[j] = q.evs[j], q.evs[i] }

func (q *heapQueue) Push(x any) { q.evs = append(q.evs, x.(simEvent)) }

func (q *heapQueue) Pop() any {
	old := q.evs
	n := len(old)
	e := old[n-1]
	q.evs = old[:n-1]
	return e
}

func (q *heapQueue) push(e simEvent) { heap.Push(q, e) }

func (q *heapQueue) pop() simEvent { return heap.Pop(q).(simEvent) }

func (q *heapQueue) peek() simEvent { return q.evs[0] }

func (q *heapQueue) empty() bool { return len(q.evs) == 0 }

// newArrivalQueue seeds a queue with one arrival per trace VM.
// Departure events are scheduled by the engine when (and only when) a
// VM is admitted, and the first sample event is scheduled by the run
// loop. useHeap selects the reference heap implementation instead of
// the calendar queue.
func newArrivalQueue(tr *trace.AzureTrace, useHeap bool) eventQueue {
	if useHeap {
		q := &heapQueue{evs: make([]simEvent, 0, len(tr.VMs))}
		for i, vm := range tr.VMs {
			q.evs = append(q.evs, simEvent{at: vm.Start, kind: evArrival, vm: vm, seq: i})
		}
		heap.Init(q)
		return q
	}
	q := newCalendarQueue(len(tr.VMs), tr.Duration())
	for i, vm := range tr.VMs {
		q.push(simEvent{at: vm.Start, kind: evArrival, vm: vm, seq: i})
	}
	return q
}

// event is a flattened arrival/departure pair, used by the feasibility
// replays (BaselineServerCount) that scan the same trace many times and
// therefore want one sorted slice rather than a consumable queue.
type event struct {
	at      float64
	arrival bool
	vm      *trace.VMRecord
}

// buildEvents materialises and sorts the full arrival/departure
// sequence. Simulation runs use an eventQueue instead; this remains for
// the multi-pass feasibility bound and the partition planner on eager
// traces (streamed runs use streamGeometry's merge walk, which replays
// this exact order without materialising the event slice).
func buildEvents(tr *trace.AzureTrace) []event {
	evs := make([]event, 0, 2*len(tr.VMs))
	for _, vm := range tr.VMs {
		evs = append(evs, event{at: vm.Start, arrival: true, vm: vm})
		evs = append(evs, event{at: vm.End, arrival: false, vm: vm})
	}
	// slices.SortStableFunc instantiates for the concrete element type —
	// no reflect-based swapper — which matters at 1M VMs where this sort
	// covers 2M events. Same comparator, same stable order as before.
	slices.SortStableFunc(evs, func(a, b event) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		// Departures before arrivals at the same instant free capacity
		// for the newcomers.
		case !a.arrival && b.arrival:
			return -1
		case a.arrival && !b.arrival:
			return 1
		default:
			return 0
		}
	})
	return evs
}
