// Package clustersim is the trace-driven discrete-event cluster
// simulator of Section 7.1.2 (the paper's ~2,000-line Python framework),
// re-implemented as a proper simulation engine on top of the full
// substrate.
//
// # Architecture
//
// The package is layered as three cooperating pieces:
//
//   - events.go — the event core: a container/heap-backed pending-event
//     queue with typed sample/departure/arrival events and a stable
//     (time, kind, trace-index) total order. Departures are scheduled
//     lazily when a VM is admitted and sample events reschedule
//     themselves, so a run never materialises and sorts the whole
//     trace's event list up front.
//   - engine.go — the Engine: one self-contained run. It owns every
//     piece of mutable state (cluster manager, running set, queue,
//     metric accumulators), which makes independent runs share-nothing
//     and therefore safe to execute concurrently. Placements flow
//     through the manager's incremental capacity index
//     (internal/cluster/capindex), and runs of same-timestamp
//     departures are coalesced into one batched removal so each
//     affected server reinflates once per instant instead of once per
//     departing VM.
//   - sweep.go — the sweep layer: a worker pool that fans strategy ×
//     overcommitment grid points (and independently seeded scenario
//     replicates) out across GOMAXPROCS cores, producing bit-for-bit
//     the same results as a sequential sweep because each point runs in
//     its own Engine and all randomness is seeded per run.
//
// # Sharded single runs
//
// The sweep layer parallelises across runs; Config.Shards parallelises
// within one run, for the single giant traces (100k-1M VMs) a sweep
// cannot split. Servers and their resident VMs are partitioned across
// shards per timestamp batch with an event-time barrier: at one event
// time, the sample metering pass fans the running set out across shards
// (each VM's meters are touched by exactly one shard), and a
// same-instant departure batch reinflates its affected servers on up to
// Shards workers (each server's policy pass runs on exactly one worker,
// against only that server's state). Determinism holds at any shard
// count because no floating-point accumulation crosses shards: per-VM
// and per-server results are computed in isolation and merged in a
// canonical order — demand/loss integrals per VM then summed in
// departure (time, trace-index) order, notification events published in
// (time, first-touched server, VM name) order — so sharded == sequential
// == reference placement bit for bit, proven by the differential suite.
//
// # Partitioned arrival placement
//
// Arrival placement — where each decision reads the capacity state
// every previous decision wrote — cannot shard the same way; it
// parallelises through Config.PlacementPartitions instead. The engine
// coalesces same-timestamp arrival runs (beside the existing departure
// batches) and hands each batch to the cluster manager's
// propose/commit engine: every placement partition proposes its best
// candidates for every VM of the batch in parallel and
// side-effect-free, and a serial commit pass walks the VMs in trace
// order, validating each winning bid against what earlier commits
// consumed and re-proposing only on conflict (see
// internal/cluster/partition.go). Commit order equals trace order, so
// partitioned == sequential == reference placement bit for bit at any
// partition count — also proven by the differential suite.
//
// VM records from an Azure-like trace (or one of the synthetic
// scenario generators in internal/trace: diurnal, bursty/flash-crowd,
// heavy-tail) arrive and depart on their trace timestamps, are placed
// by the cluster manager (cosine-fitness placement, Section 5.2),
// deflated by the configured server-level policy and mechanism, and
// reinflate as capacity frees. The simulator measures the three
// cluster-level outcomes of Section 7.4:
//
//   - failure probability (Figure 20): for deflation policies, the
//     probability that a reclamation attempt cannot free enough
//     resources; for the preemption baseline, the probability that a
//     low-priority VM is preempted;
//   - throughput loss (Figure 21): demand above the deflated allocation
//     integrated over time (the Figure 4 area), relative to total demand;
//   - revenue from deflatable VMs (Figure 22) under the three pricing
//     schemes of Section 5.2.2.
//
// Per the paper, interactive VMs are deflatable and batch/unknown VMs
// are on-demand, which makes roughly half the VMs deflatable; priorities
// come from the 95th-percentile CPU utilisation quantised to four
// levels.
package clustersim

import (
	"fmt"
	"math"
	"time"

	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/notify"
	"vmdeflate/internal/perfmodel"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/pricing"
	"vmdeflate/internal/resources"
	"vmdeflate/internal/trace"
)

// SLOConfig enables request-latency SLO metering. At every 5-minute
// sample the engine maps each deflatable VM's offered load (from its
// utilisation trace) and current allocation to a request-slowdown ratio
// through the closed-form processor-sharing model
// (queueing.PSSlowdownRatio) composed with the application's
// deflation-response curve — the same model the latency-aware policy
// plans against — and accumulates violation time, a slowdown histogram
// and per-priority violation seconds into the Result. The engine also
// publishes each VM's sampled load to its domain
// (Domain.SetOfferedLoad), which is what makes the latency-aware policy
// load-sensitive; without an SLOConfig loads stay zero and runs are
// bit-for-bit identical to pre-SLO builds.
type SLOConfig struct {
	// Curve maps deflation to retained performance for the effective
	// service rate. The zero value means the worst-case linear curve.
	Curve perfmodel.Curve
	// MaxSlowdown is the violation threshold: a sample violates the SLO
	// when its modelled sojourn-time ratio versus the undeflated VM
	// exceeds this. Values below 1 select policy.DefaultMaxSlowdown.
	MaxSlowdown float64
}

// ServerType describes one slice of a portfolio fleet (Config.Portfolio):
// a transient-server market segment with its own price, size and
// revocation behaviour. Zero-valued numeric fields default to 1, so the
// zero ServerType is an ordinary on-demand-priced, base-capacity,
// base-hazard server; use a small positive ShockRateScale (not 0) for a
// near-revocation-immune type.
type ServerType struct {
	// Name labels the type in reports.
	Name string
	// Fraction is the type's relative weight in the fleet mix. Weights
	// are normalised across the portfolio; servers are apportioned by
	// largest-remainder rounding, so counts are exact to ±1.
	Fraction float64
	// CapacityScale multiplies Config.ServerCapacity for this type.
	CapacityScale float64
	// PriceFactor multiplies the per-core-hour fleet cost rate
	// (Result.FleetCost) — cheap transient capacity has PriceFactor < 1.
	PriceFactor float64
	// ShockRateScale multiplies the type's revocation rate in the
	// generated shock schedule (trace.ShockConfig.RateScale) and,
	// through the same parameter, in the analytic hazard model.
	ShockRateScale float64
}

// RiskOptions configures revocation-risk forecasting (Config.Risk).
type RiskOptions struct {
	// HighPriority is the priority threshold at or above which VMs get
	// hazard-banded placement (cluster.RiskConfig.HighPriority);
	// non-positive selects the cluster default (0.75).
	HighPriority float64
	// Bands is the number of hazard bands (cluster.RiskConfig.MaxBands);
	// non-positive selects the cluster default (4).
	Bands int
	// HeadroomScale multiplies each server's forecast outage fraction to
	// set its admission-headroom reserve; 0 defaults to 1, and the
	// product is clamped to 1. Larger values trade admitted revenue for
	// fewer shock kills.
	HeadroomScale float64
}

// Mode selects the resource-reclamation strategy under test.
type Mode int

const (
	// ModeDeflation reclaims resources with the configured policy.
	ModeDeflation Mode = iota
	// ModePreemption is the baseline: no deflation; low-priority VMs are
	// killed to make room under pressure (today's transient servers).
	ModePreemption
)

// PhaseTimings breaks one run's wall time down by engine phase. All
// fields are cumulative across the run. Timings live here — reached
// through Config.Timings — rather than in Result, because Result is
// compared with reflect.DeepEqual by the differential suites and wall
// times are the one legitimately nondeterministic output.
type PhaseTimings struct {
	// Propose and Commit split the arrival-placement batches: the
	// parallel side-effect-free proposal phase versus the serial
	// trace-order commit (with a single partition, all placement time
	// counts as Commit).
	Propose time.Duration
	Commit  time.Duration
	// Sample is the per-interval metering pass over the running set.
	Sample time.Duration
	// Reinflate is the departure/evacuation-driven reinflation passes.
	Reinflate time.Duration
	// Surplus and Pressure further attribute the serial placement work
	// inside Commit: the live surplus-index lookups and the
	// under-pressure candidate scans. Both are subsets of Commit (and,
	// with a single partition, of the whole placement time booked
	// there), not additional wall time.
	Surplus  time.Duration
	Pressure time.Duration
}

// Config parameterises one simulation run.
type Config struct {
	// Trace supplies VM arrivals, sizes, classes and utilisation. The
	// trace is treated as immutable: concurrent engines may share one.
	// Exactly one of Trace and Stream must be set.
	Trace *trace.AzureTrace
	// Stream supplies the same trace lazily: per-VM parameters are
	// generated when the simulation reaches each arrival and
	// utilisation samples are synthesized on demand through per-VM
	// cursors, so resident memory is O(live VMs) instead of O(trace).
	// Results are bit-for-bit identical to running the materialised
	// form of the same stream through Trace (guarded by the streamed
	// differential suite). A Stream is immutable: concurrent engines
	// may share one. Streamed runs support deflation mode only; the
	// preemption baseline needs whole-trace lookahead and keeps the
	// eager API.
	Stream *trace.Stream
	// Mode selects deflation or the preemption baseline.
	Mode Mode
	// Policy and Mechanism configure deflation (ignored for preemption).
	Policy    policy.Policy
	Mechanism mechanism.Mechanism
	// Partitioned enables priority-partitioned pools (Section 5.2.1).
	Partitioned bool
	// PriorityLevels quantises p95-derived priorities (4 in the paper).
	PriorityLevels int
	// Overcommit is the target cluster overcommitment fraction: the
	// cluster is sized to BaselineServers/(1+Overcommit).
	Overcommit float64
	// BaselineServers overrides the no-overcommitment cluster size; when
	// zero it is derived from the trace's peak committed demand.
	BaselineServers int
	// ServerCapacity is each server's size (48 CPUs / 128 GB in the
	// paper).
	ServerCapacity resources.Vector
	// PricingSchemes to meter (all three when nil).
	PricingSchemes []pricing.Scheme
	// Notify, when set, receives an event for every allocation change
	// the cluster manager makes during the run. The bus is safe to
	// share between concurrently running engines.
	Notify *notify.Bus
	// ReferencePlacement runs the cluster manager's retained brute-force
	// placement path instead of its capacity index. Results are
	// bit-for-bit identical (guarded by the differential test suite);
	// the flag exists for that comparison and for benchmarks.
	ReferencePlacement bool
	// FullPressureScan keeps the indexed surplus path but replaces the
	// bound-pruned under-pressure descent with the retained linear scan
	// over every pool server. Results are bit-for-bit identical up to
	// the pressure-scan meters (guarded by the differential suite); the
	// flag exists for that comparison and for the bench-pressure gate.
	FullPressureScan bool
	// Shards parallelises one run across up to this many goroutines:
	// the per-VM sample metering pass is partitioned across shards, and
	// the per-server reinflation passes of a same-instant departure
	// batch fan out through the cluster manager's ReinflateShards. Both
	// kinds of work are per-VM / per-server isolated and merge their
	// side effects in a canonical order (see package comment), so the
	// Result is bit-for-bit identical at any shard count — guarded by
	// the differential suite. 0 or 1 means fully sequential. Shards
	// multiply under the sweep layer's worker pool; use them for one
	// giant run, not inside a saturated sweep.
	Shards int
	// PlacementPartitions parallelises the one path Shards cannot: the
	// arrival placement decisions. The cluster manager splits its
	// servers across this many placement partitions; same-timestamp
	// arrival batches are placed through the manager's propose/commit
	// engine, where every partition proposes its best candidate for
	// every VM in parallel and a serial commit walks the batch in trace
	// order, re-proposing only on conflict. The Result is bit-for-bit
	// identical at any partition count (guarded by the differential
	// suite). 0 or 1 keeps the sequential placement engine.
	PlacementPartitions int
	// Shocks is an explicit capacity-shock schedule: revocations,
	// restorations and resizes of specific servers by provisioning
	// index. Shocks addressing servers beyond the run's provisioned
	// count are ignored, so one schedule can be replayed against
	// clusters of different sizes. In deflation mode a revoked or shrunk
	// server's VMs are deflation-first evacuated through the batch
	// placement engine; in preemption mode they die — today's transient
	// servers.
	Shocks []trace.CapacityShock
	// ShockConfig, when set and Shocks is nil, generates the schedule
	// for the run's own server count (trace.GenerateShocks) — the form
	// sweeps use, since every grid point provisions a different cluster
	// size. A zero Duration defaults to the trace horizon.
	ShockConfig *trace.ShockConfig
	// EvacuationDowntime is the modelled downtime in seconds charged to
	// each successfully evacuated VM (Result.DisplacedDowntime). It is
	// accounting only — it does not feed back into placement — and
	// defaults to 30 s.
	EvacuationDowntime float64
	// SLO, when set, meters request-latency SLO violations every sample
	// (deflation mode only) and feeds each VM's offered load to its
	// domain so latency-aware policies can read it. Nil disables both:
	// non-SLO runs carry zero loads and unchanged results.
	SLO *SLOConfig
	// Portfolio provisions the fleet as a mix of server types instead of
	// a homogeneous one (deflation mode only): each type takes its
	// largest-remainder share of the servers as a contiguous run of
	// provisioning indexes, scales ServerCapacity and the per-core fleet
	// cost by its factors, and shapes the generated shock schedule
	// through ShockConfig.RateScale. Nil keeps the homogeneous fleet and
	// bit-identical legacy runs.
	Portfolio []ServerType
	// Risk enables revocation-risk forecasting (deflation mode only):
	// the run derives an analytic hazard model from its effective shock
	// configuration (internal/risk), provisions every server with its
	// hazard band and forecast-headroom reserve fraction, and turns on
	// the cluster manager's shock-aware admission gate and hazard-banded
	// candidate order. Requires ShockConfig for the model (an explicit
	// Shocks list carries no rate parameters, so bands and reserves stay
	// zero). Nil keeps risk-blind placement.
	Risk *RiskOptions
	// Timings, when set, receives the run's per-phase wall times
	// (propose/commit/sample/reinflate). Collection adds two clock
	// reads per timed section and is off when nil; it never influences
	// any simulated outcome.
	Timings *PhaseTimings
	// useHeapQueue forces the reference container/heap event queue
	// instead of the calendar queue. Results are identical either way
	// (the queues implement one total order); the knob exists so the
	// differential tests can prove exactly that through full runs.
	useHeapQueue bool
}

// DefaultServerCapacity is the paper's server: 48 CPUs, 128 GB RAM.
func DefaultServerCapacity() resources.Vector {
	return resources.CPUMem(48, 131072)
}

func (c *Config) applyDefaults() error {
	switch {
	case c.Stream != nil && c.Trace != nil:
		return fmt.Errorf("clustersim: set Trace or Stream, not both")
	case c.Stream != nil:
		if c.Stream.Len() == 0 {
			return fmt.Errorf("clustersim: empty trace")
		}
		if c.Mode == ModePreemption {
			return fmt.Errorf("clustersim: preemption mode requires an eager Trace (whole-trace lookahead)")
		}
	case c.Trace == nil || len(c.Trace.VMs) == 0:
		return fmt.Errorf("clustersim: empty trace")
	}
	if c.Policy == nil {
		c.Policy = policy.Proportional{}
	}
	if c.Mechanism == nil {
		c.Mechanism = mechanism.Transparent{}
	}
	if c.PriorityLevels <= 0 {
		c.PriorityLevels = 4
	}
	if c.ServerCapacity.IsZero() {
		c.ServerCapacity = DefaultServerCapacity()
	}
	if c.PricingSchemes == nil {
		c.PricingSchemes = []pricing.Scheme{
			pricing.Static{Discount: 0.2},
			pricing.Priority{},
			pricing.Allocation{Discount: 0.2},
		}
	}
	if c.Overcommit < 0 {
		return fmt.Errorf("clustersim: negative overcommit")
	}
	if c.EvacuationDowntime <= 0 {
		c.EvacuationDowntime = 30
	}
	if c.SLO != nil {
		// Copy before defaulting so a caller-shared SLOConfig (sweeps
		// reuse one across grid points) is never mutated.
		slo := *c.SLO
		if slo.Curve == (perfmodel.Curve{}) {
			slo.Curve = perfmodel.WorstCaseLinear
		}
		if slo.MaxSlowdown < 1 {
			slo.MaxSlowdown = policy.DefaultMaxSlowdown
		}
		c.SLO = &slo
	}
	for _, t := range c.Portfolio {
		if t.Fraction < 0 || t.CapacityScale < 0 || t.PriceFactor < 0 || t.ShockRateScale < 0 {
			return fmt.Errorf("clustersim: negative ServerType field in portfolio (%q)", t.Name)
		}
	}
	return nil
}

// Result summarises one run.
type Result struct {
	// Servers actually provisioned.
	Servers int
	// Arrivals is the number of VM start events processed.
	Arrivals int
	// Admitted counts VMs that were placed.
	Admitted int
	// Rejected counts admission failures (deflation mode) or rejected
	// low-priority launches (preemption mode).
	Rejected int
	// ReclamationAttempts counts placements that required reclaiming
	// resources (deflation) or preempting (preemption).
	ReclamationAttempts int
	// ReclamationFailures counts attempts that could not free enough.
	ReclamationFailures int
	// Pressure-scan accounting (deflation mode). PressuredArrivals
	// counts placements that fell through to the under-pressure scan
	// (identical in every placement mode). PressureScored counts servers
	// whose exact fitness was computed across those scans and
	// PressurePruned counts indexed servers the bound-pruned descent
	// excluded without scoring — by the fitness bound, the feasibility
	// pre-filter, or an earlier candidate succeeding. The full-scan
	// modes (ReferencePlacement, FullPressureScan) score every pool
	// server and prune none, so differential suites comparing across
	// modes zero Scored/Pruned before reflect.DeepEqual.
	PressuredArrivals int
	PressureScored    int
	PressurePruned    int
	// Preemptions counts killed low-priority VMs (preemption mode).
	Preemptions int
	// DeflatableAdmitted counts admitted low-priority VMs.
	DeflatableAdmitted int
	// FailureProbability is the Figure 20 metric (see package comment).
	FailureProbability float64
	// ThroughputLoss is the Figure 21 metric: lost demand / total demand
	// across deflatable VMs.
	ThroughputLoss float64
	// Revenue maps pricing-scheme name to total revenue from deflatable
	// VMs (on-demand-core-hours).
	Revenue map[string]float64

	// Capacity-shock outcomes. Revocations/Restorations/Resizes count
	// processed shock events; Evacuations counts displaced VMs
	// successfully relocated (deflation mode only); ShockKills counts
	// displaced VMs that died — relocation failed (deflation) or the
	// server was simply taken away (preemption). DisplacedDowntime is
	// the summed modelled downtime (seconds) across evacuated VMs.
	Revocations       int
	Restorations      int
	Resizes           int
	Evacuations       int
	ShockKills        int
	DisplacedDowntime float64

	// Risk / portfolio accounting (deflation mode). RiskRejections is
	// the subset of Rejected withheld by the shock-aware admission gate
	// (forecast evacuation headroom; zero without Config.Risk).
	// FleetCost is the provider's spend: per-core in-service hours
	// weighted by each server type's PriceFactor, with revoked intervals
	// not billed — metered on every deflation run so risk-blind and
	// risk-aware runs are cost-comparable.
	RiskRejections int
	FleetCost      float64

	// Pricing accounting (deflation mode). OnDemandRevenue is what the
	// run's deflatable VMs would have billed as on-demand instances
	// (core-hours at rate 1); CostSavings maps each pricing scheme to
	// the paper's customer cost-savings fraction,
	// 1 - Revenue[scheme]/OnDemandRevenue. RevenueByPriority splits the
	// "priority" scheme's revenue by quantised priority level.
	OnDemandRevenue   float64
	CostSavings       map[string]float64
	RevenueByPriority map[int]float64

	// SLO accounting (deflation mode, only when Config.SLO is set; all
	// zero/nil otherwise). SLOViolationSeconds is the total VM-time spent
	// above the slowdown threshold; SLOSampleSeconds is the total metered
	// VM-time (deflatable VMs only), so SLOViolationRate =
	// SLOViolationSeconds/SLOSampleSeconds. SLOLatencyP99 is the
	// histogram-derived 99th-percentile slowdown proxy (bucket upper
	// edge, resolution 0.05, saturating at the top bucket).
	// SLOViolationsByPriority splits violation seconds by quantised
	// priority level, with every level present.
	SLOViolationSeconds     float64
	SLOSampleSeconds        float64
	SLOViolationRate        float64
	SLOLatencyP99           float64
	SLOViolationsByPriority map[int]float64
}

// BaselineServerCount returns the paper's "minimum cluster size capable
// of running all VMs without any preemptions or admission-controlled
// rejections": starting from the peak-aggregate-demand lower bound, the
// count grows until a full-allocation bin-packing replay of the trace
// admits every VM (fragmentation can push the answer above the
// aggregate bound). It fails if any single VM exceeds a server.
func BaselineServerCount(tr *trace.AzureTrace, serverCap resources.Vector) (int, error) {
	evs := buildEvents(tr)
	lb, err := peakLowerBound(evs, serverCap)
	if err != nil {
		return 0, err
	}
	// Fragmentation can exceed the aggregate bound, but not without
	// limit; 4x is a generous safety margin that turns a logic error
	// into a diagnosable failure instead of an unbounded search.
	for n := lb; n <= 4*lb+4; n++ {
		if fullAllocationFeasible(evs, n, serverCap) {
			return n, nil
		}
	}
	return 0, fmt.Errorf("clustersim: no feasible packing within %d servers", 4*lb+4)
}

// PeakServerLowerBound returns the aggregate-demand lower bound on the
// cluster size: the peak concurrent committed demand divided by the
// server capacity, per dimension. It is the cheap O(N log N) part of
// BaselineServerCount — without the bin-packing feasibility replay that
// the full bound runs — and is the right cluster-sizing knob for
// 100k-VM-scale benchmarks, where the packing replay would dwarf the
// simulation being measured.
func PeakServerLowerBound(tr *trace.AzureTrace, serverCap resources.Vector) (int, error) {
	return peakLowerBound(buildEvents(tr), serverCap)
}

// peakLowerBound is the shared core of the two bounds above, taking a
// prebuilt event list so BaselineServerCount sorts the trace only once.
func peakLowerBound(evs []event, serverCap resources.Vector) (int, error) {
	var cur, peak resources.Vector
	for _, e := range evs {
		size := vmSize(e.vm)
		if e.arrival {
			if !size.FitsIn(serverCap) {
				return 0, fmt.Errorf("clustersim: VM %s (%v) exceeds server capacity %v",
					e.vm.ID, size, serverCap)
			}
			cur = cur.Add(size)
			peak = peak.Max(cur)
		} else {
			cur = cur.Sub(size)
		}
	}
	return serversForPeak(peak, serverCap), nil
}

// serversForPeak converts a peak committed-demand vector into the
// per-dimension server-count lower bound. Shared by the eager and
// streamed bounds so both round identically.
func serversForPeak(peak, serverCap resources.Vector) int {
	lb := 1
	for _, k := range resources.Kinds {
		if serverCap.Get(k) <= 0 {
			continue
		}
		need := int(math.Ceil(peak.Get(k) / serverCap.Get(k)))
		if need > lb {
			lb = need
		}
	}
	return lb
}

// fullAllocationFeasible replays the trace at full allocations on n
// servers with tightest-fit placement (minimise the chosen server's
// leftover dominant share) and reports whether every VM fits. Tightest
// fit keeps large servers whole so big VMs stay placeable — the right
// objective for a feasibility bound, as opposed to the load-balancing
// objective used for live deflation-aware placement.
func fullAllocationFeasible(evs []event, n int, serverCap resources.Vector) bool {
	free := make([]resources.Vector, n)
	for i := range free {
		free[i] = serverCap
	}
	where := make(map[string]int, len(evs)/2)
	for _, e := range evs {
		size := vmSize(e.vm)
		if !e.arrival {
			if s, ok := where[e.vm.ID]; ok {
				free[s] = free[s].Add(size)
				delete(where, e.vm.ID)
			}
			continue
		}
		best := tightestFit(free, size, serverCap)
		if best < 0 {
			return false
		}
		free[best] = free[best].Sub(size)
		where[e.vm.ID] = best
	}
	return true
}

// tightestFit returns the index of the fitting server whose leftover
// dominant share would be smallest, or -1 if none fits.
func tightestFit(free []resources.Vector, size, serverCap resources.Vector) int {
	best, bestLeft := -1, math.Inf(1)
	for i := range free {
		if !size.FitsIn(free[i]) {
			continue
		}
		left := free[i].Sub(size).DominantShare(serverCap)
		if left < bestLeft {
			best, bestLeft = i, left
		}
	}
	return best
}

func vmSize(vm *trace.VMRecord) resources.Vector {
	return resources.CPUMem(float64(vm.Cores), vm.MemoryMB)
}

// Run executes one simulation: it is shorthand for NewEngine followed
// by Engine.Run.
func Run(cfg Config) (*Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

// partitionPlan assigns servers to priority pools proportionally to the
// trace's committed demand per pool ("the size of the different pools
// can be based on the typical workload mix", Section 5.2.1).
func partitionPlan(cfg Config, nServers int) []int {
	out := make([]int, nServers)
	if !cfg.Partitioned {
		return out // all zeros; ignored when partitioning is off
	}
	levels := cfg.PriorityLevels
	// Size pools by *peak concurrent* demand per level, not total
	// VM-hours: pools sized on averages run out of room at their own
	// peaks and deflate even when the cluster as a whole has slack.
	demand := make([]float64, levels)
	current := make([]float64, levels)
	levelOf := func(vm *trace.VMRecord) int {
		lvl := levels - 1 // on-demand pool
		if vm.Class == trace.Interactive {
			p := policy.PriorityFromP95(vm.P95(), levels)
			lvl = int(p*float64(levels)) - 1
			if lvl < 0 {
				lvl = 0
			}
			if lvl >= levels {
				lvl = levels - 1
			}
		}
		return lvl
	}
	for _, e := range buildEvents(cfg.Trace) {
		lvl := levelOf(e.vm)
		if e.arrival {
			current[lvl] += float64(e.vm.Cores)
			if current[lvl] > demand[lvl] {
				demand[lvl] = current[lvl]
			}
		} else {
			current[lvl] -= float64(e.vm.Cores)
		}
	}
	return allocatePools(out, demand, nServers, levels)
}

// allocatePools fills out with per-server pool assignments sized
// proportionally to the per-level peak demand: largest-remainder
// allocation with at least one server per non-empty pool. Shared by the
// eager and streamed partition planners.
func allocatePools(out []int, demand []float64, nServers, levels int) []int {
	var total float64
	for _, d := range demand {
		total += d
	}
	if total == 0 {
		return out
	}
	counts := make([]int, levels)
	assigned := 0
	for l := 0; l < levels; l++ {
		counts[l] = int(float64(nServers) * demand[l] / total)
		if demand[l] > 0 && counts[l] == 0 {
			counts[l] = 1
		}
		assigned += counts[l]
	}
	for assigned > nServers {
		// Trim from the largest pool.
		maxL := 0
		for l := 1; l < levels; l++ {
			if counts[l] > counts[maxL] {
				maxL = l
			}
		}
		if counts[maxL] <= 1 {
			break
		}
		counts[maxL]--
		assigned--
	}
	for assigned < nServers {
		// Grow the pool with the largest demand per server.
		bestL, bestV := 0, -1.0
		for l := 0; l < levels; l++ {
			v := demand[l] / float64(counts[l]+1)
			if v > bestV {
				bestL, bestV = l, v
			}
		}
		counts[bestL]++
		assigned++
	}
	i := 0
	for l := 0; l < levels; l++ {
		for k := 0; k < counts[l] && i < nServers; k++ {
			out[i] = l
			i++
		}
	}
	return out
}

// orOne is the ServerType field default: zero means "base" (factor 1).
func orOne(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}

// portfolioAssign maps each provisioning index to its portfolio type:
// largest-remainder apportionment of the normalised fractions, each
// type taking a contiguous run of indexes in declaration order. Racks
// are contiguous index groups in the shock generator, so contiguous
// runs keep most racks single-typed; and being a pure function of
// (portfolio, n), every engine derives the identical fleet. Returns nil
// for an empty portfolio (homogeneous fleet).
func portfolioAssign(types []ServerType, n int) []int {
	if len(types) == 0 || n <= 0 {
		return nil
	}
	var total float64
	for _, t := range types {
		total += orOne(t.Fraction)
	}
	exact := make([]float64, len(types))
	counts := make([]int, len(types))
	assigned := 0
	for i, t := range types {
		exact[i] = float64(n) * orOne(t.Fraction) / total
		counts[i] = int(exact[i])
		assigned += counts[i]
	}
	for ; assigned < n; assigned++ {
		// Largest fractional remainder; ties to the earliest type.
		best, bestFrac := 0, -1.0
		for i := range types {
			if frac := exact[i] - float64(counts[i]); frac > bestFrac {
				best, bestFrac = i, frac
			}
		}
		counts[best]++
	}
	out := make([]int, 0, n)
	for i, c := range counts {
		for k := 0; k < c; k++ {
			out = append(out, i)
		}
	}
	return out
}
