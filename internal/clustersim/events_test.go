package clustersim

import (
	"testing"

	"vmdeflate/internal/trace"
)

// popAll drains the queue.
func popAll(q eventQueue) []simEvent {
	var out []simEvent
	for !q.empty() {
		out = append(out, q.pop())
	}
	return out
}

// queueImpls enumerates the interchangeable eventQueue implementations;
// every ordering test runs against each.
func queueImpls() map[string]func() eventQueue {
	return map[string]func() eventQueue{
		"heap":     func() eventQueue { return &heapQueue{} },
		"calendar": func() eventQueue { return newCalendarQueue(4, 1000) },
	}
}

func TestEventQueueOrdering(t *testing.T) {
	vm := func(id string) *trace.VMRecord { return &trace.VMRecord{ID: id} }
	cases := []struct {
		name string
		push []simEvent
		want []simEvent
	}{
		{
			name: "time ordering regardless of push order",
			push: []simEvent{
				{at: 300, kind: evArrival, vm: vm("c"), seq: 2},
				{at: 100, kind: evArrival, vm: vm("a"), seq: 0},
				{at: 200, kind: evDeparture, vm: vm("a"), seq: 0},
				{at: 150, kind: evSample},
			},
			want: []simEvent{
				{at: 100, kind: evArrival, vm: vm("a"), seq: 0},
				{at: 150, kind: evSample},
				{at: 200, kind: evDeparture, vm: vm("a"), seq: 0},
				{at: 300, kind: evArrival, vm: vm("c"), seq: 2},
			},
		},
		{
			name: "departure before arrival at equal timestamps",
			push: []simEvent{
				{at: 500, kind: evArrival, vm: vm("new"), seq: 7},
				{at: 500, kind: evDeparture, vm: vm("old"), seq: 3},
			},
			want: []simEvent{
				{at: 500, kind: evDeparture, vm: vm("old"), seq: 3},
				{at: 500, kind: evArrival, vm: vm("new"), seq: 7},
			},
		},
		{
			name: "sample precedes departure and arrival at equal timestamps",
			push: []simEvent{
				{at: 600, kind: evArrival, vm: vm("n"), seq: 4},
				{at: 600, kind: evSample},
				{at: 600, kind: evDeparture, vm: vm("o"), seq: 1},
			},
			want: []simEvent{
				{at: 600, kind: evSample},
				{at: 600, kind: evDeparture, vm: vm("o"), seq: 1},
				{at: 600, kind: evArrival, vm: vm("n"), seq: 4},
			},
		},
		{
			name: "trace-index tie-break within one kind",
			push: []simEvent{
				{at: 900, kind: evArrival, vm: vm("later"), seq: 9},
				{at: 900, kind: evArrival, vm: vm("earlier"), seq: 2},
				{at: 900, kind: evArrival, vm: vm("middle"), seq: 5},
			},
			want: []simEvent{
				{at: 900, kind: evArrival, vm: vm("earlier"), seq: 2},
				{at: 900, kind: evArrival, vm: vm("middle"), seq: 5},
				{at: 900, kind: evArrival, vm: vm("later"), seq: 9},
			},
		},
		{
			name: "sample interleaving across event times",
			push: []simEvent{
				{at: 300, kind: evSample},
				{at: 250, kind: evArrival, vm: vm("a"), seq: 0},
				{at: 350, kind: evDeparture, vm: vm("a"), seq: 0},
				{at: 600, kind: evSample},
				{at: 600, kind: evArrival, vm: vm("b"), seq: 1},
			},
			want: []simEvent{
				{at: 250, kind: evArrival, vm: vm("a"), seq: 0},
				{at: 300, kind: evSample},
				{at: 350, kind: evDeparture, vm: vm("a"), seq: 0},
				{at: 600, kind: evSample},
				{at: 600, kind: evArrival, vm: vm("b"), seq: 1},
			},
		},
	}
	for implName, mk := range queueImpls() {
		for _, tc := range cases {
			t.Run(implName+"/"+tc.name, func(t *testing.T) {
				q := mk()
				for _, e := range tc.push {
					q.push(e)
				}
				got := popAll(q)
				if len(got) != len(tc.want) {
					t.Fatalf("popped %d events, want %d", len(got), len(tc.want))
				}
				for i, g := range got {
					w := tc.want[i]
					if g.at != w.at || g.kind != w.kind || g.seq != w.seq {
						t.Errorf("event[%d] = (t=%g %v seq=%d), want (t=%g %v seq=%d)",
							i, g.at, g.kind, g.seq, w.at, w.kind, w.seq)
					}
					if (g.vm == nil) != (w.vm == nil) || (g.vm != nil && g.vm.ID != w.vm.ID) {
						t.Errorf("event[%d] vm mismatch", i)
					}
				}
			})
		}
	}
}

func TestNewArrivalQueue(t *testing.T) {
	tr := &trace.AzureTrace{VMs: []*trace.VMRecord{
		{ID: "late", Start: 500, End: 600},
		{ID: "tied-b", Start: 100, End: 300},
		{ID: "tied-c", Start: 100, End: 300},
		{ID: "early", Start: 0, End: 200},
	}}
	for _, useHeap := range []bool{false, true} {
		got := popAll(newArrivalQueue(tr, useHeap))
		wantIDs := []string{"early", "tied-b", "tied-c", "late"}
		if len(got) != len(wantIDs) {
			t.Fatalf("useHeap=%v: events = %d, want %d", useHeap, len(got), len(wantIDs))
		}
		for i, e := range got {
			if e.kind != evArrival {
				t.Errorf("useHeap=%v: event[%d] kind = %v, want arrival", useHeap, i, e.kind)
			}
			if e.vm.ID != wantIDs[i] {
				t.Errorf("useHeap=%v: event[%d] = %s, want %s", useHeap, i, e.vm.ID, wantIDs[i])
			}
		}
		// seq must be the trace index so equal-time events replay in trace
		// order: tied-b (index 1) before tied-c (index 2).
		if got[1].seq != 1 || got[2].seq != 2 {
			t.Errorf("useHeap=%v: tie seqs = %d,%d, want 1,2", useHeap, got[1].seq, got[2].seq)
		}
	}
}

// TestEngineMatchesLegacySliceReplay replays a trace through the heap
// engine and through a reference slice-based loop (the pre-refactor
// algorithm, reconstructed from buildEvents) and requires identical
// admission bookkeeping — the engine refactor must not change what the
// simulator computes.
func TestEngineMatchesLegacySliceReplay(t *testing.T) {
	tr := testTrace(250)
	got, err := Run(Config{Trace: tr, Overcommit: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	// The legacy loop's observable ordering: all events sorted by
	// (time, departures-first), samples drained before each event.
	// The heap delivers exactly that order, so bookkeeping totals
	// must line up with a straight recount from buildEvents.
	arrivals := 0
	for _, e := range buildEvents(tr) {
		if e.arrival {
			arrivals++
		}
	}
	if got.Arrivals != arrivals {
		t.Errorf("engine processed %d arrivals, trace has %d", got.Arrivals, arrivals)
	}
	if got.Admitted+got.Rejected != got.Arrivals {
		t.Errorf("admission bookkeeping: %d + %d != %d", got.Admitted, got.Rejected, got.Arrivals)
	}
}
