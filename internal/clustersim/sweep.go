package clustersim

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/notify"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/trace"
)

// SweepPoint is one overcommitment level's outcome for one strategy.
type SweepPoint struct {
	OvercommitPct      float64
	FailureProbability float64
	ThroughputLossPct  float64
	Revenue            map[string]float64
	Servers            int
	// Admitted counts placed VMs — the denominator that makes SLO
	// comparisons across strategies meaningful (equal admitted load).
	Admitted int
	// Capacity-shock outcomes (zero when the sweep runs without a shock
	// schedule): revocation events processed, displaced VMs relocated,
	// displaced VMs killed, and summed modelled downtime seconds across
	// evacuated VMs.
	Revocations       int
	Evacuations       int
	ShockKills        int
	DisplacedDowntime float64
	// Risk / portfolio outcomes (see Result): admissions withheld for
	// forecast headroom, the deflatable VMs' on-demand-equivalent bill,
	// and the provider's PriceFactor-weighted in-service core-hours.
	RiskRejections  int
	OnDemandRevenue float64
	FleetCost       float64
	// SLO outcomes (zero when the sweep runs without Options.SLO): total
	// violation seconds, the violation fraction of metered VM-time, and
	// the histogram p99 slowdown proxy.
	SLOViolationSeconds float64
	SLOViolationRate    float64
	SLOLatencyP99       float64
}

// SweepResult holds a full overcommitment sweep for one strategy.
type SweepResult struct {
	Strategy string
	Points   []SweepPoint
}

// Strategy names used by the Figure 20/21 sweeps.
const (
	StrategyProportional  = "proportional"
	StrategyPriority      = "priority"
	StrategyDeterministic = "deterministic"
	StrategyLatency       = "latency"
	StrategyPartitioned   = "priority+partitioned"
	StrategyPreemption    = "preemption"
)

// Strategies lists all sweep strategies in canonical order.
var Strategies = []string{
	StrategyProportional,
	StrategyPriority,
	StrategyDeterministic,
	StrategyLatency,
	StrategyPartitioned,
	StrategyPreemption,
}

// validateStrategies rejects unknown strategy names up front: before
// this check an unrecognised name fell through strategyConfig's switch
// and silently simulated proportional deflation.
func validateStrategies(strategies []string) error {
	for _, s := range strategies {
		ok := false
		for _, known := range Strategies {
			if s == known {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("clustersim: unknown strategy %q (want %s)", s, strings.Join(Strategies, ", "))
		}
	}
	return nil
}

// strategyConfig builds the Config for one named strategy.
func strategyConfig(tr *trace.AzureTrace, strategy string, baseline int, oc float64) Config {
	cfg := Config{
		Trace:           tr,
		Mechanism:       mechanism.Transparent{},
		Overcommit:      oc,
		BaselineServers: baseline,
	}
	switch strategy {
	case StrategyProportional:
		cfg.Policy = policy.Proportional{}
	case StrategyPriority:
		cfg.Policy = policy.Priority{}
	case StrategyDeterministic:
		cfg.Policy = policy.Deterministic{}
	case StrategyLatency:
		cfg.Policy = policy.LatencyAware{}
	case StrategyPartitioned:
		cfg.Policy = policy.Priority{}
		cfg.Partitioned = true
	case StrategyPreemption:
		cfg.Mode = ModePreemption
	}
	return cfg
}

// Options tunes how a sweep executes. The zero value runs on all cores
// with everything derived from the trace.
type Options struct {
	// Workers bounds worker-pool concurrency: 0 means GOMAXPROCS, 1
	// forces a strictly sequential sweep. Because every grid point runs
	// in its own share-nothing Engine and results land in
	// position-indexed slots, the worker count never changes the
	// output — only the wall clock.
	Workers int
	// BaselineServers pins the no-overcommitment cluster size; when 0
	// it is computed once from the trace so that every grid point sees
	// an identically sized cluster.
	BaselineServers int
	// Notify, when set, is attached to every run's cluster manager. The
	// bus fans out concurrently from all workers; subscribers must be
	// thread-safe.
	Notify *notify.Bus
	// Shards is passed through to every run's Config.Shards: intra-run
	// parallelism on top of the pool's across-run parallelism. Results
	// are shard-count-invariant, so this only trades scheduling overhead
	// against wall clock; leave it 0 (sequential runs) unless the grid
	// has fewer points than cores.
	Shards int
	// PlacementPartitions is passed through to every run's
	// Config.PlacementPartitions: the arrival-placement propose/commit
	// parallelism. Results are partition-count-invariant; like Shards,
	// leave it 0 unless the grid has fewer points than cores.
	PlacementPartitions int
	// ShockConfig, when set, is passed through to every run's
	// Config.ShockConfig: each grid point replays the capacity-shock
	// schedule generated for its own cluster size, so the deflation
	// strategies and the preemption baseline face identical transiency.
	ShockConfig *trace.ShockConfig
	// SLO, when set, turns on SLO metering for every deflation-mode grid
	// point and is additionally synced into any latency-aware policy's
	// curve and threshold, so the policy plans against exactly the model
	// the metrics judge it by. The "latency" strategy is meaningful only
	// with this set (without it every VM's load reads zero).
	SLO *SLOConfig
	// Portfolio provisions every grid point's fleet as this server-type
	// mix (Config.Portfolio); nil keeps homogeneous fleets.
	Portfolio []ServerType
	// Risk turns on revocation-risk forecasting for every deflation-mode
	// grid point (Config.Risk); the preemption baseline ignores it.
	Risk *RiskOptions
}

func (o Options) workers(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runJobs executes job(0..n-1) on a pool of workers. Each job must
// write only to its own result slot; with that discipline the schedule
// cannot influence the output.
func runJobs(n, workers int, job func(i int)) {
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}

// applySLO attaches the sweep's SLO config to one grid point's Config
// and keeps a latency-aware policy's planning model in lockstep with
// the metering model.
func applySLO(cfg *Config, slo *SLOConfig) {
	if slo == nil {
		return
	}
	cfg.SLO = slo
	if la, ok := cfg.Policy.(policy.LatencyAware); ok {
		la.Curve = slo.Curve
		la.MaxSlowdown = slo.MaxSlowdown
		cfg.Policy = la
	}
}

// sweepPoint projects one run's Result onto its grid point.
func sweepPoint(pct float64, res *Result) SweepPoint {
	return SweepPoint{
		OvercommitPct:       pct,
		FailureProbability:  res.FailureProbability,
		ThroughputLossPct:   res.ThroughputLoss * 100,
		Revenue:             res.Revenue,
		Servers:             res.Servers,
		Admitted:            res.Admitted,
		Revocations:         res.Revocations,
		Evacuations:         res.Evacuations,
		ShockKills:          res.ShockKills,
		DisplacedDowntime:   res.DisplacedDowntime,
		RiskRejections:      res.RiskRejections,
		OnDemandRevenue:     res.OnDemandRevenue,
		FleetCost:           res.FleetCost,
		SLOViolationSeconds: res.SLOViolationSeconds,
		SLOViolationRate:    res.SLOViolationRate,
		SLOLatencyP99:       res.SLOLatencyP99,
	}
}

// firstError returns the lowest-indexed non-nil error, so the reported
// failure is independent of worker scheduling.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SweepGrid runs every strategy × overcommitment point of the grid on a
// worker pool and returns one SweepResult per strategy, in input order.
// The baseline cluster size is computed once from the trace so all
// points see identical clusters, each point runs in its own Engine, and
// results are written into position-indexed slots — so the output is
// bit-for-bit identical whether Workers is 1 or GOMAXPROCS.
func SweepGrid(tr *trace.AzureTrace, strategies []string, overcommitPcts []float64, opts Options) ([]*SweepResult, error) {
	return sweepGrid(tr, nil, strategies, overcommitPcts, opts)
}

// SweepGridStream is SweepGrid over a streaming trace: every grid point
// runs with Config.Stream set, so the sweep never materialises the
// trace — each concurrent engine synthesises its own arrivals from the
// shared read-only stream. Results are bit-for-bit those of SweepGrid
// over s.Materialize() (the streamed differential suite's guarantee).
// The preemption baseline needs whole-trace lookahead and is rejected.
func SweepGridStream(s *trace.Stream, strategies []string, overcommitPcts []float64, opts Options) ([]*SweepResult, error) {
	return sweepGrid(nil, s, strategies, overcommitPcts, opts)
}

func sweepGrid(tr *trace.AzureTrace, s *trace.Stream, strategies []string, overcommitPcts []float64, opts Options) ([]*SweepResult, error) {
	if len(strategies) == 0 || len(overcommitPcts) == 0 {
		return nil, fmt.Errorf("clustersim: empty sweep grid")
	}
	if err := validateStrategies(strategies); err != nil {
		return nil, err
	}
	baseline := opts.BaselineServers
	if baseline <= 0 {
		var err error
		if s != nil {
			baseline, err = BaselineServerCountStream(s, DefaultServerCapacity())
		} else {
			baseline, err = BaselineServerCount(tr, DefaultServerCapacity())
		}
		if err != nil {
			return nil, err
		}
	}

	nOC := len(overcommitPcts)
	jobs := len(strategies) * nOC
	points := make([]SweepPoint, jobs)
	errs := make([]error, jobs)
	runJobs(jobs, opts.workers(jobs), func(i int) {
		strategy, pct := strategies[i/nOC], overcommitPcts[i%nOC]
		cfg := strategyConfig(tr, strategy, baseline, pct/100)
		cfg.Stream = s
		cfg.Notify = opts.Notify
		cfg.Shards = opts.Shards
		cfg.PlacementPartitions = opts.PlacementPartitions
		cfg.ShockConfig = opts.ShockConfig
		cfg.Portfolio = opts.Portfolio
		cfg.Risk = opts.Risk
		applySLO(&cfg, opts.SLO)
		res, err := Run(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("clustersim: %s @ %g%% OC: %w", strategy, pct, err)
			return
		}
		points[i] = sweepPoint(pct, res)
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}

	out := make([]*SweepResult, len(strategies))
	for si, strategy := range strategies {
		// Full slice expression: capping capacity keeps a caller's
		// append from bleeding into the next strategy's points.
		out[si] = &SweepResult{Strategy: strategy, Points: points[si*nOC : (si+1)*nOC : (si+1)*nOC]}
	}
	return out, nil
}

// Sweep runs one strategy across the given overcommitment percentages
// (Figure 20/21/22 x-axis, e.g. 0-70%) strictly sequentially. It is the
// single-strategy, Workers=1 special case of SweepGrid.
func Sweep(tr *trace.AzureTrace, strategy string, overcommitPcts []float64) (*SweepResult, error) {
	out, err := SweepGrid(tr, []string{strategy}, overcommitPcts, Options{Workers: 1})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// ReplicatedSweep fans a strategy × overcommitment grid out over
// independently generated traces, one per seed: each replicate's trace
// is synthesised inside the worker with its own seeded RNG (gen must be
// a pure function of the seed, e.g. a trace.Scenario generator), its
// baseline cluster size is derived from its own trace, and then all
// replicate × strategy × overcommitment points run on the pool. The
// result is indexed [replicate][strategy] and is bit-for-bit
// reproducible for a given seed list regardless of worker count.
func ReplicatedSweep(gen func(seed int64) *trace.AzureTrace, seeds []int64, strategies []string, overcommitPcts []float64, opts Options) ([][]*SweepResult, error) {
	if gen == nil || len(seeds) == 0 {
		return nil, fmt.Errorf("clustersim: replicated sweep needs a generator and seeds")
	}
	if len(strategies) == 0 || len(overcommitPcts) == 0 {
		return nil, fmt.Errorf("clustersim: empty sweep grid")
	}
	if err := validateStrategies(strategies); err != nil {
		return nil, err
	}

	// Phase 1 (parallel over replicates): per-run RNG trace generation
	// plus the expensive baseline bound, both deterministic per seed.
	traces := make([]*trace.AzureTrace, len(seeds))
	baselines := make([]int, len(seeds))
	errs := make([]error, len(seeds))
	runJobs(len(seeds), opts.workers(len(seeds)), func(r int) {
		traces[r] = gen(seeds[r])
		base, err := BaselineServerCount(traces[r], DefaultServerCapacity())
		if err != nil {
			errs[r] = fmt.Errorf("clustersim: replicate seed %d: %w", seeds[r], err)
			return
		}
		baselines[r] = base
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}

	// Phase 2 (parallel over everything): the full point grid.
	nOC := len(overcommitPcts)
	perRep := len(strategies) * nOC
	jobs := len(seeds) * perRep
	points := make([]SweepPoint, jobs)
	errs = make([]error, jobs)
	runJobs(jobs, opts.workers(jobs), func(i int) {
		r, rest := i/perRep, i%perRep
		strategy, pct := strategies[rest/nOC], overcommitPcts[rest%nOC]
		cfg := strategyConfig(traces[r], strategy, baselines[r], pct/100)
		cfg.Notify = opts.Notify
		cfg.Shards = opts.Shards
		cfg.PlacementPartitions = opts.PlacementPartitions
		cfg.ShockConfig = opts.ShockConfig
		cfg.Portfolio = opts.Portfolio
		cfg.Risk = opts.Risk
		applySLO(&cfg, opts.SLO)
		res, err := Run(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("clustersim: seed %d %s @ %g%% OC: %w", seeds[r], strategy, pct, err)
			return
		}
		points[i] = sweepPoint(pct, res)
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}

	out := make([][]*SweepResult, len(seeds))
	for r := range seeds {
		out[r] = make([]*SweepResult, len(strategies))
		for si, strategy := range strategies {
			lo := r*perRep + si*nOC
			out[r][si] = &SweepResult{Strategy: strategy, Points: points[lo : lo+nOC : lo+nOC]}
		}
	}
	return out, nil
}

// AverageSweeps reduces per-replicate sweeps (as returned by
// ReplicatedSweep) to their pointwise mean, for plotting a scenario's
// expected curve with seed noise averaged out. Server counts are
// rounded to the nearest integer.
func AverageSweeps(reps [][]*SweepResult) []*SweepResult {
	if len(reps) == 0 {
		return nil
	}
	n := float64(len(reps))
	out := make([]*SweepResult, len(reps[0]))
	for si, first := range reps[0] {
		avg := &SweepResult{Strategy: first.Strategy, Points: make([]SweepPoint, len(first.Points))}
		for pi, p := range first.Points {
			acc := SweepPoint{OvercommitPct: p.OvercommitPct, Revenue: map[string]float64{}}
			var servers, admitted, revocations, evacuations, kills, riskRej float64
			for _, rep := range reps {
				q := rep[si].Points[pi]
				acc.FailureProbability += q.FailureProbability / n
				acc.ThroughputLossPct += q.ThroughputLossPct / n
				acc.DisplacedDowntime += q.DisplacedDowntime / n
				acc.OnDemandRevenue += q.OnDemandRevenue / n
				acc.FleetCost += q.FleetCost / n
				acc.SLOViolationSeconds += q.SLOViolationSeconds / n
				acc.SLOViolationRate += q.SLOViolationRate / n
				acc.SLOLatencyP99 += q.SLOLatencyP99 / n
				servers += float64(q.Servers) / n
				admitted += float64(q.Admitted) / n
				revocations += float64(q.Revocations) / n
				evacuations += float64(q.Evacuations) / n
				kills += float64(q.ShockKills) / n
				riskRej += float64(q.RiskRejections) / n
				for name, v := range q.Revenue {
					acc.Revenue[name] += v / n
				}
			}
			acc.Servers = int(servers + 0.5)
			acc.Admitted = int(admitted + 0.5)
			acc.Revocations = int(revocations + 0.5)
			acc.Evacuations = int(evacuations + 0.5)
			acc.ShockKills = int(kills + 0.5)
			acc.RiskRejections = int(riskRej + 0.5)
			avg.Points[pi] = acc
		}
		out[si] = avg
	}
	return out
}

// RevenueIncrease converts a sweep's revenue series into Figure 22's
// "increase in revenue %": revenue from deflatable VMs *per server*
// relative to the same scheme at the sweep's first point (nominally 0%
// overcommitment). Per-server normalisation is the paper's framing —
// "priority-based pricing increases the revenue per server by 2x" —
// since overcommitting means serving the same low-priority demand on
// fewer machines.
func RevenueIncrease(sr *SweepResult, scheme string) []float64 {
	if len(sr.Points) == 0 {
		return nil
	}
	first := sr.Points[0]
	if first.Servers == 0 {
		return make([]float64, len(sr.Points))
	}
	base := first.Revenue[scheme] / float64(first.Servers)
	out := make([]float64, len(sr.Points))
	for i, p := range sr.Points {
		if base > 0 && p.Servers > 0 {
			out[i] = (p.Revenue[scheme]/float64(p.Servers)/base - 1) * 100
		}
	}
	return out
}
