package clustersim

import (
	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/trace"
)

// SweepPoint is one overcommitment level's outcome for one strategy.
type SweepPoint struct {
	OvercommitPct      float64
	FailureProbability float64
	ThroughputLossPct  float64
	Revenue            map[string]float64
	Servers            int
}

// SweepResult holds a full overcommitment sweep for one strategy.
type SweepResult struct {
	Strategy string
	Points   []SweepPoint
}

// Strategy names used by the Figure 20/21 sweeps.
const (
	StrategyProportional  = "proportional"
	StrategyPriority      = "priority"
	StrategyDeterministic = "deterministic"
	StrategyPartitioned   = "priority+partitioned"
	StrategyPreemption    = "preemption"
)

// strategyConfig builds the Config for one named strategy.
func strategyConfig(tr *trace.AzureTrace, strategy string, baseline int, oc float64) Config {
	cfg := Config{
		Trace:           tr,
		Mechanism:       mechanism.Transparent{},
		Overcommit:      oc,
		BaselineServers: baseline,
	}
	switch strategy {
	case StrategyProportional:
		cfg.Policy = policy.Proportional{}
	case StrategyPriority:
		cfg.Policy = policy.Priority{}
	case StrategyDeterministic:
		cfg.Policy = policy.Deterministic{}
	case StrategyPartitioned:
		cfg.Policy = policy.Priority{}
		cfg.Partitioned = true
	case StrategyPreemption:
		cfg.Mode = ModePreemption
	}
	return cfg
}

// Sweep runs one strategy across the given overcommitment percentages
// (Figure 20/21/22 x-axis, e.g. 0-70%). The baseline cluster size is
// computed once from the trace so all strategies see identical clusters.
func Sweep(tr *trace.AzureTrace, strategy string, overcommitPcts []float64) (*SweepResult, error) {
	baseline, err := BaselineServerCount(tr, DefaultServerCapacity())
	if err != nil {
		return nil, err
	}
	out := &SweepResult{Strategy: strategy}
	for _, pct := range overcommitPcts {
		cfg := strategyConfig(tr, strategy, baseline, pct/100)
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, SweepPoint{
			OvercommitPct:      pct,
			FailureProbability: res.FailureProbability,
			ThroughputLossPct:  res.ThroughputLoss * 100,
			Revenue:            res.Revenue,
			Servers:            res.Servers,
		})
	}
	return out, nil
}

// RevenueIncrease converts a sweep's revenue series into Figure 22's
// "increase in revenue %": revenue from deflatable VMs *per server*
// relative to the same scheme at the sweep's first point (nominally 0%
// overcommitment). Per-server normalisation is the paper's framing —
// "priority-based pricing increases the revenue per server by 2x" —
// since overcommitting means serving the same low-priority demand on
// fewer machines.
func RevenueIncrease(sr *SweepResult, scheme string) []float64 {
	if len(sr.Points) == 0 {
		return nil
	}
	first := sr.Points[0]
	if first.Servers == 0 {
		return make([]float64, len(sr.Points))
	}
	base := first.Revenue[scheme] / float64(first.Servers)
	out := make([]float64, len(sr.Points))
	for i, p := range sr.Points {
		if base > 0 && p.Servers > 0 {
			out[i] = (p.Revenue[scheme]/float64(p.Servers)/base - 1) * 100
		}
	}
	return out
}
