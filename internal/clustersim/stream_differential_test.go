package clustersim

import (
	"fmt"
	"reflect"
	"testing"

	"vmdeflate/internal/policy"
	"vmdeflate/internal/trace"
)

// TestStreamedEngineMatchesEager is the streaming tentpole's end-to-end
// guarantee: a run driven by a trace.Stream — parameters generated at
// arrival, utilisation synthesized through cursors, arrivals never
// materialised into the queue — produces a Result bit-for-bit identical
// to running the materialised form of the same stream, across all four
// scenarios, seeds, and shard/partition parallelism.
func TestStreamedEngineMatchesEager(t *testing.T) {
	combos := []struct{ shards, parts int }{{1, 1}, {4, 3}}
	for _, kind := range trace.Scenarios() {
		for _, seed := range []int64{1, 2} {
			scfg := trace.ScenarioConfig{Kind: kind, NumVMs: 400, Duration: 86400, Seed: seed}
			s, err := trace.NewStream(scfg)
			if err != nil {
				t.Fatal(err)
			}
			tr := s.Materialize()
			for _, c := range combos {
				name := fmt.Sprintf("%v/seed=%d/shards=%d/parts=%d", kind, seed, c.shards, c.parts)
				t.Run(name, func(t *testing.T) {
					base := Config{
						Policy:              policy.Priority{},
						Overcommit:          0.5,
						Shards:              c.shards,
						PlacementPartitions: c.parts,
					}
					eagerCfg := base
					eagerCfg.Trace = tr
					eager, err := Run(eagerCfg)
					if err != nil {
						t.Fatal(err)
					}
					streamCfg := base
					streamCfg.Stream = s
					streamed, err := Run(streamCfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(streamed, eager) {
						t.Fatalf("streamed run diverged from eager:\nstreamed %+v\neager    %+v", *streamed, *eager)
					}
				})
			}
		}
	}
}

// TestStreamedEngineMatchesEagerFullFeatures drives the whole surface
// at once — priority partitioning, SLO metering, Poisson capacity
// shocks (revocations force evacuation and remaining-demand kills),
// sharded sampling and partitioned placement — and still requires
// bit-for-bit Result equality between the streamed and eager forms.
func TestStreamedEngineMatchesEagerFullFeatures(t *testing.T) {
	s, err := trace.NewStream(trace.ScenarioConfig{
		Kind: trace.ScenarioBursty, NumVMs: 500, Duration: 2 * 86400, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Materialize()
	base := Config{
		Policy:              policy.Priority{},
		Partitioned:         true,
		Overcommit:          0.4,
		Shards:              4,
		PlacementPartitions: 2,
		SLO:                 &SLOConfig{},
		ShockConfig:         testShockConfig(11),
	}
	eagerCfg := base
	eagerCfg.Trace = tr
	eager, err := Run(eagerCfg)
	if err != nil {
		t.Fatal(err)
	}
	if eager.Revocations == 0 || eager.SLOSampleSeconds == 0 {
		t.Fatalf("test premise broken: want shocks and SLO samples, got %+v", *eager)
	}
	streamCfg := base
	streamCfg.Stream = s
	streamed, err := Run(streamCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, eager) {
		t.Fatalf("streamed full-feature run diverged:\nstreamed %+v\neager    %+v", *streamed, *eager)
	}
}

// TestStreamedBaselineSizingMatchesEager: with BaselineServers unset,
// the streamed engine derives the cluster size through the geometry
// merge walk (streamBaselineServerCount) and must land on the same
// count — and the same Result — as the eager bound.
func TestStreamedBaselineSizingMatchesEager(t *testing.T) {
	s, err := trace.NewStream(trace.ScenarioConfig{
		Kind: trace.ScenarioHeavyTail, NumVMs: 300, Duration: 86400, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Materialize()
	eager, err := Run(Config{Trace: tr, Overcommit: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := Run(Config{Stream: s, Overcommit: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, eager) {
		t.Fatalf("self-sized streamed run diverged:\nstreamed %+v\neager    %+v", *streamed, *eager)
	}
}

// TestCalendarQueueMatchesHeapFullRuns closes the loop on the calendar
// queue at the engine level: full runs (eager and streamed) with the
// heap forced must equal the calendar-backed default bit for bit.
func TestCalendarQueueMatchesHeapFullRuns(t *testing.T) {
	s, err := trace.NewStream(trace.ScenarioConfig{
		Kind: trace.ScenarioDiurnal, NumVMs: 400, Duration: 86400, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Materialize()
	for _, mode := range []string{"eager", "streamed"} {
		cfg := Config{Policy: policy.Priority{}, Overcommit: 0.5, ShockConfig: testShockConfig(7)}
		if mode == "eager" {
			cfg.Trace = tr
		} else {
			cfg.Stream = s
		}
		cal, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.useHeapQueue = true
		hp, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cal, hp) {
			t.Fatalf("%s: calendar run diverged from heap:\ncalendar %+v\nheap     %+v", mode, *cal, *hp)
		}
	}
}

// TestSweepGridStreamMatchesEager: the sweep layer over a stream — the
// deflationsim -stream path — equals SweepGrid over the materialised
// trace at every strategy × overcommitment point, including the
// self-derived baseline cluster size.
func TestSweepGridStreamMatchesEager(t *testing.T) {
	s, err := trace.NewStream(trace.ScenarioConfig{
		Kind: trace.ScenarioAzure, NumVMs: 300, Duration: 86400, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	strategies := []string{StrategyProportional, StrategyLatency}
	ocs := []float64{0, 30, 50}
	eager, err := SweepGrid(s.Materialize(), strategies, ocs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := SweepGridStream(s, strategies, ocs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, eager) {
		t.Fatalf("streamed sweep diverged:\nstreamed %+v\neager    %+v", streamed, eager)
	}
	if _, err := SweepGridStream(s, []string{StrategyPreemption}, ocs, Options{}); err == nil {
		t.Error("preemption over a streamed sweep: want error")
	}
}

// TestStreamConfigValidation pins the Config surface: Trace and Stream
// are mutually exclusive, a stream is required to be non-empty, and the
// preemption baseline rejects streams (it needs whole-trace lookahead).
func TestStreamConfigValidation(t *testing.T) {
	s, err := trace.NewStream(trace.ScenarioConfig{
		Kind: trace.ScenarioAzure, NumVMs: 10, Duration: 86400, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Stream: s, Trace: s.Materialize()}); err == nil {
		t.Error("Trace+Stream together: want error")
	}
	if _, err := Run(Config{Stream: s, Mode: ModePreemption}); err == nil {
		t.Error("preemption over a stream: want error")
	}
	if _, err := Run(Config{}); err == nil {
		t.Error("neither Trace nor Stream: want error")
	}
}

// TestStreamedTimingsPopulated: a streamed run with Timings wired
// reports nonzero phase wall time without perturbing the Result.
func TestStreamedTimingsPopulated(t *testing.T) {
	s, err := trace.NewStream(trace.ScenarioConfig{
		Kind: trace.ScenarioAzure, NumVMs: 300, Duration: 86400, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(Config{Stream: s, Overcommit: 0.5, PlacementPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	var pt PhaseTimings
	timed, err := Run(Config{Stream: s, Overcommit: 0.5, PlacementPartitions: 2, Timings: &pt})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, timed) {
		t.Fatalf("timing collection changed the Result:\nplain %+v\ntimed %+v", *plain, *timed)
	}
	if pt.Propose <= 0 || pt.Commit <= 0 || pt.Sample <= 0 {
		t.Fatalf("expected nonzero propose/commit/sample timings, got %+v", pt)
	}
}
