package clustersim

import (
	"fmt"
	"reflect"
	"testing"

	"vmdeflate/internal/policy"
	"vmdeflate/internal/trace"
)

// normalizeScanMeters returns a copy of r with the two pressure-scan
// meters that legitimately differ across placement modes zeroed:
// the full-scan modes (ReferencePlacement, FullPressureScan) score
// every pool server and prune none, while the bound-pruned descent
// scores only what the bounds cannot exclude. Every other field —
// including PressuredArrivals, which is mode-invariant — must still
// match bit-for-bit, so cross-mode comparisons go through this helper
// and same-mode comparisons (shards, partitions, streaming) stay raw.
func normalizeScanMeters(r *Result) *Result {
	c := *r
	c.PressureScored = 0
	c.PressurePruned = 0
	return &c
}

// TestIndexedEngineMatchesReference is the end-to-end differential
// guarantee of the capacity-index refactor: full simulation runs through
// the indexed manager must produce Results — every admission count,
// failure probability, throughput-loss integral and revenue float — that
// are bit-for-bit identical to the retained brute-force reference path,
// across all synthetic scenarios, multiple seeds and overcommitment
// levels.
func TestIndexedEngineMatchesReference(t *testing.T) {
	scenarios := []trace.Scenario{
		trace.ScenarioDiurnal, trace.ScenarioBursty, trace.ScenarioHeavyTail,
	}
	for _, kind := range scenarios {
		for _, seed := range []int64{1, 2} {
			for _, oc := range []float64{0.3, 0.6} {
				name := fmt.Sprintf("%v/seed=%d/oc=%v", kind, seed, oc)
				t.Run(name, func(t *testing.T) {
					tr, err := trace.GenerateScenario(trace.ScenarioConfig{
						Kind: kind, NumVMs: 400, Duration: 86400, Seed: seed,
					})
					if err != nil {
						t.Fatal(err)
					}
					cfg := Config{Trace: tr, Policy: policy.Proportional{}, Overcommit: oc}
					idx, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					cfg.ReferencePlacement = true
					ref, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(normalizeScanMeters(idx), normalizeScanMeters(ref)) {
						t.Fatalf("indexed run diverged from reference:\nindexed   %+v\nreference %+v", *idx, *ref)
					}
				})
			}
		}
	}
}

// TestShardedEngineMatchesSequentialAndReference is the sharded-engine
// determinism guarantee: one run partitioned across any number of
// shards must produce a Result — every admission count, failure
// probability, throughput-loss integral and revenue float — bit-for-bit
// identical to the fully sequential engine AND to the brute-force
// reference placement path, across scenarios, seeds and shard counts
// (including shards exceeding GOMAXPROCS).
func TestShardedEngineMatchesSequentialAndReference(t *testing.T) {
	scenarios := []trace.Scenario{
		trace.ScenarioDiurnal, trace.ScenarioBursty, trace.ScenarioHeavyTail,
	}
	shardCounts := []int{2, 4, 16}
	for _, kind := range scenarios {
		for _, seed := range []int64{1, 2} {
			tr, err := trace.GenerateScenario(trace.ScenarioConfig{
				Kind: kind, NumVMs: 400, Duration: 86400, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			base := Config{Trace: tr, Policy: policy.Priority{}, Overcommit: 0.5}
			seq, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			refCfg := base
			refCfg.ReferencePlacement = true
			ref, err := Run(refCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalizeScanMeters(seq), normalizeScanMeters(ref)) {
				t.Fatalf("%v/seed=%d: sequential diverged from reference:\nseq %+v\nref %+v", kind, seed, *seq, *ref)
			}
			for _, shards := range shardCounts {
				name := fmt.Sprintf("%v/seed=%d/shards=%d", kind, seed, shards)
				t.Run(name, func(t *testing.T) {
					cfg := base
					cfg.Shards = shards
					got, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, seq) {
						t.Fatalf("sharded run diverged from sequential:\nsharded    %+v\nsequential %+v", *got, *seq)
					}
				})
			}
		}
	}
}

// TestPartitionedEngineMatchesSequentialAndReference is the
// propose/commit determinism guarantee: a run whose arrival placements
// go through the partitioned engine — parallel per-partition proposals,
// serial commits in trace order, re-proposal on conflict — must produce
// a Result bit-for-bit identical to the sequential indexed engine AND
// to the brute-force reference path, across scenarios, seeds and
// partition counts (including partitions=1 and counts exceeding the
// server count).
func TestPartitionedEngineMatchesSequentialAndReference(t *testing.T) {
	scenarios := []trace.Scenario{
		trace.ScenarioDiurnal, trace.ScenarioBursty, trace.ScenarioHeavyTail,
	}
	partitionCounts := []int{1, 2, 3, 8, 64}
	for _, kind := range scenarios {
		for _, seed := range []int64{1, 2} {
			tr, err := trace.GenerateScenario(trace.ScenarioConfig{
				Kind: kind, NumVMs: 400, Duration: 86400, Seed: seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			base := Config{Trace: tr, Policy: policy.Priority{}, Overcommit: 0.5}
			seq, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			refCfg := base
			refCfg.ReferencePlacement = true
			ref, err := Run(refCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalizeScanMeters(seq), normalizeScanMeters(ref)) {
				t.Fatalf("%v/seed=%d: sequential diverged from reference:\nseq %+v\nref %+v", kind, seed, *seq, *ref)
			}
			for _, parts := range partitionCounts {
				name := fmt.Sprintf("%v/seed=%d/partitions=%d", kind, seed, parts)
				t.Run(name, func(t *testing.T) {
					cfg := base
					cfg.PlacementPartitions = parts
					got, err := Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, seq) {
						t.Fatalf("partitioned run diverged from sequential:\npartitioned %+v\nsequential  %+v", *got, *seq)
					}
				})
			}
		}
	}
}

// TestPartitionedEngineMatchesSequentialShardedPools covers the full
// parallel stack at once: placement partitions on top of intra-run
// shards (sample pass + departure-batch reinflation) with
// priority-partitioned pools, against the plain sequential engine.
func TestPartitionedEngineMatchesSequentialShardedPools(t *testing.T) {
	tr := testTrace(400)
	base := Config{Trace: tr, Policy: policy.Priority{}, Partitioned: true, Overcommit: 0.5}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{2, 5} {
		cfg := base
		cfg.Shards = 4
		cfg.PlacementPartitions = parts
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, seq) {
			t.Fatalf("partitions=%d: sharded+partitioned run diverged:\ngot %+v\nseq %+v", parts, *got, *seq)
		}
	}
}

// TestShardedEngineMatchesSequentialPartitioned covers sharding with
// priority-partitioned pools and the deterministic policy — the
// combination where per-server passes differ most between servers.
func TestShardedEngineMatchesSequentialPartitioned(t *testing.T) {
	tr := testTrace(400)
	base := Config{Trace: tr, Policy: policy.Deterministic{}, Partitioned: true, Overcommit: 0.5}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 8} {
		cfg := base
		cfg.Shards = shards
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, seq) {
			t.Fatalf("shards=%d: partitioned sharded run diverged:\nsharded    %+v\nsequential %+v", shards, *got, *seq)
		}
	}
}

// TestIndexedEngineMatchesReferencePartitioned covers the
// priority-partitioned pools, where the index is split per partition.
func TestIndexedEngineMatchesReferencePartitioned(t *testing.T) {
	tr := testTrace(400)
	cfg := Config{Trace: tr, Policy: policy.Priority{}, Partitioned: true, Overcommit: 0.5}
	idx, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ReferencePlacement = true
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeScanMeters(idx), normalizeScanMeters(ref)) {
		t.Fatalf("partitioned indexed run diverged:\nindexed   %+v\nreference %+v", *idx, *ref)
	}
}

// TestPressurePruningDifferential is the acceptance guarantee of the
// pressure-index tentpole: the bound-pruned under-pressure descent must
// produce Results bit-for-bit identical to the retained full linear
// scan (FullPressureScan) and to the brute-force reference path, across
// every synthetic scenario plus shocked and risk/portfolio workloads,
// and across shard counts {1,4} × placement-partition counts {1,3,8} in
// BOTH scan modes. The workloads must actually exercise the machinery —
// pressured arrivals AND a nonzero prune count — or the suite is
// vacuous.
func TestPressurePruningDifferential(t *testing.T) {
	workloads := []struct {
		name string
		cfg  func() Config
	}{
		{"diurnal", func() Config {
			return Config{Trace: testTrace(400), Policy: policy.Priority{}, Overcommit: 0.5}
		}},
		{"bursty", func() Config {
			tr, err := trace.GenerateScenario(trace.ScenarioConfig{
				Kind: trace.ScenarioBursty, NumVMs: 400, Duration: 86400, Seed: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			return Config{Trace: tr, Policy: policy.Proportional{}, Overcommit: 0.6}
		}},
		{"heavytail-pooled", func() Config {
			// Seed 8: heavy-tail clusters are tiny (3-5 servers), and this
			// seed is one where the per-pool bound indexes actually prune.
			tr, err := trace.GenerateScenario(trace.ScenarioConfig{
				Kind: trace.ScenarioHeavyTail, NumVMs: 400, Duration: 86400, Seed: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			return Config{Trace: tr, Policy: policy.Priority{}, Partitioned: true, Overcommit: 0.5}
		}},
		{"shocked", func() Config {
			sc := testShockConfig(7)
			sc.Kind = trace.ShockPoisson
			return Config{Trace: testTrace(400), Policy: policy.Priority{}, Overcommit: 0.5, ShockConfig: sc}
		}},
		{"risk-portfolio", func() Config {
			return riskConfig(testTrace(400))
		}},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			base := w.cfg()
			pruned, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			if pruned.PressuredArrivals == 0 {
				t.Fatal("no pressured arrivals — the differential is vacuous")
			}
			if pruned.PressurePruned == 0 {
				t.Fatal("bound pruning never fired — the differential is vacuous")
			}
			fullCfg := base
			fullCfg.FullPressureScan = true
			full, err := Run(fullCfg)
			if err != nil {
				t.Fatal(err)
			}
			refCfg := base
			refCfg.ReferencePlacement = true
			ref, err := Run(refCfg)
			if err != nil {
				t.Fatal(err)
			}
			if full.PressurePruned != 0 {
				t.Fatalf("full scan pruned %d servers, want 0", full.PressurePruned)
			}
			if full.PressureScored <= pruned.PressureScored {
				t.Fatalf("full scan scored %d <= pruned descent's %d — pruning saved nothing",
					full.PressureScored, pruned.PressureScored)
			}
			if !reflect.DeepEqual(normalizeScanMeters(pruned), normalizeScanMeters(full)) {
				t.Fatalf("pruned run diverged from full scan:\npruned %+v\nfull   %+v", *pruned, *full)
			}
			if !reflect.DeepEqual(normalizeScanMeters(full), normalizeScanMeters(ref)) {
				t.Fatalf("full scan diverged from reference:\nfull %+v\nref  %+v", *full, *ref)
			}
			for _, shards := range []int{1, 4} {
				for _, parts := range []int{1, 3, 8} {
					name := fmt.Sprintf("shards=%d/partitions=%d", shards, parts)
					t.Run(name, func(t *testing.T) {
						cfg := base
						cfg.Shards = shards
						cfg.PlacementPartitions = parts
						got, err := Run(cfg)
						if err != nil {
							t.Fatal(err)
						}
						// Raw comparison: the pruned meters themselves are
						// partition- and shard-invariant.
						if !reflect.DeepEqual(got, pruned) {
							t.Fatalf("pruned run diverged from sequential:\ngot %+v\nseq %+v", *got, *pruned)
						}
						cfg.FullPressureScan = true
						gotFull, err := Run(cfg)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(gotFull, full) {
							t.Fatalf("full-scan run diverged from sequential full scan:\ngot %+v\nseq %+v", *gotFull, *full)
						}
					})
				}
			}
		})
	}
}

// TestIndexedSweepMatchesReferenceAtAnyWorkerCount closes the loop with
// the sweep layer: a parallel indexed sweep must equal a sequential
// reference sweep — the index must not introduce any worker-count or
// scheduling sensitivity.
func TestIndexedSweepMatchesReferenceAtAnyWorkerCount(t *testing.T) {
	tr := testTrace(250)
	strategies := []string{StrategyProportional, StrategyPriority}
	ocs := []float64{0, 40}

	runSweep := func(workers int, reference bool) []*SweepResult {
		t.Helper()
		baseline, err := BaselineServerCount(tr, DefaultServerCapacity())
		if err != nil {
			t.Fatal(err)
		}
		nOC := len(ocs)
		points := make([]SweepPoint, len(strategies)*nOC)
		errs := make([]error, len(points))
		runJobs(len(points), Options{Workers: workers}.workers(len(points)), func(i int) {
			cfg := strategyConfig(tr, strategies[i/nOC], baseline, ocs[i%nOC]/100)
			cfg.ReferencePlacement = reference
			res, err := Run(cfg)
			if err != nil {
				errs[i] = err
				return
			}
			points[i] = SweepPoint{
				OvercommitPct:      ocs[i%nOC],
				FailureProbability: res.FailureProbability,
				ThroughputLossPct:  res.ThroughputLoss * 100,
				Revenue:            res.Revenue,
				Servers:            res.Servers,
			}
		})
		if err := firstError(errs); err != nil {
			t.Fatal(err)
		}
		out := make([]*SweepResult, len(strategies))
		for si, s := range strategies {
			out[si] = &SweepResult{Strategy: s, Points: points[si*nOC : (si+1)*nOC : (si+1)*nOC]}
		}
		return out
	}

	indexedPar := runSweep(8, false)
	referenceSeq := runSweep(1, true)
	if !reflect.DeepEqual(indexedPar, referenceSeq) {
		t.Fatalf("parallel indexed sweep diverged from sequential reference sweep:\n%+v\n%+v",
			dump(indexedPar), dump(referenceSeq))
	}
}
