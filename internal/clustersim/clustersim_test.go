package clustersim

import (
	"testing"

	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
	"vmdeflate/internal/trace"
)

// testTrace builds a small but non-trivial Azure-like trace.
func testTrace(nVMs int) *trace.AzureTrace {
	cfg := trace.DefaultAzureConfig()
	cfg.NumVMs = nVMs
	cfg.Duration = 2 * 86400
	return trace.GenerateAzure(cfg)
}

// TestZeroLifetimeVMFreesCapacityForSameInstantArrivals pins the
// departures-before-arrivals invariant through the arrival batching: a
// zero-lifetime VM (End == Start, possible only in hand-written CSV
// traces) must free its capacity before later arrivals at the same
// instant are placed — the one-at-a-time engine's behavior, which the
// batch coalescing must split to preserve — and the outcome must not
// depend on the partition count.
func TestZeroLifetimeVMFreesCapacityForSameInstantArrivals(t *testing.T) {
	util := []float64{50, 50}
	tr := &trace.AzureTrace{VMs: []*trace.VMRecord{
		{ID: "vm-a", Class: trace.Unknown, Cores: 48, MemoryMB: 131072, Start: 0, End: 0, CPUUtil: util},
		{ID: "vm-b", Class: trace.Unknown, Cores: 48, MemoryMB: 131072, Start: 0, End: 3600, CPUUtil: util},
	}}
	for _, partitions := range []int{0, 3} {
		res, err := Run(Config{Trace: tr, BaselineServers: 1, PlacementPartitions: partitions})
		if err != nil {
			t.Fatal(err)
		}
		if res.Admitted != 2 || res.Rejected != 0 {
			t.Fatalf("partitions=%d: admitted %d rejected %d; want the zero-lifetime VM's capacity freed for the same-instant arrival (2 admitted)",
				partitions, res.Admitted, res.Rejected)
		}
	}
}

func TestBaselineServerCount(t *testing.T) {
	tr := testTrace(300)
	n, err := BaselineServerCount(tr, DefaultServerCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("baseline servers = %d", n)
	}
	// Running at that size with no overcommitment must yield zero
	// failures for every deflation policy.
	res, err := Run(Config{Trace: tr, Policy: policy.Proportional{}, BaselineServers: n})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 0 {
		t.Errorf("baseline cluster rejected %d VMs", res.Rejected)
	}
	if res.FailureProbability != 0 {
		t.Errorf("baseline failure probability = %v", res.FailureProbability)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty trace should fail")
	}
	if _, err := Run(Config{Trace: testTrace(10), Overcommit: -0.5}); err == nil {
		t.Error("negative overcommit should fail")
	}
}

func TestDeflationAbsorbsOvercommit(t *testing.T) {
	tr := testTrace(400)
	res, err := Run(Config{Trace: tr, Policy: policy.Proportional{}, Overcommit: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals != 400 {
		t.Errorf("arrivals = %d", res.Arrivals)
	}
	if res.Admitted+res.Rejected != res.Arrivals {
		t.Errorf("admission bookkeeping: %d + %d != %d", res.Admitted, res.Rejected, res.Arrivals)
	}
	// The headline: at 50% overcommitment deflation keeps failure
	// probability very low and throughput loss around or below 1%.
	if res.FailureProbability > 0.05 {
		t.Errorf("failure probability at 50%% OC = %v, want < 0.05 (paper <0.01)", res.FailureProbability)
	}
	if res.ThroughputLoss > 0.05 {
		t.Errorf("throughput loss at 50%% OC = %v, want small (paper ~1%%)", res.ThroughputLoss)
	}
	if res.Revenue["static"] <= 0 {
		t.Error("static revenue should be positive")
	}
}

func TestPreemptionBaselineWorse(t *testing.T) {
	tr := testTrace(400)
	defl, err := Run(Config{Trace: tr, Policy: policy.Proportional{}, Overcommit: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := Run(Config{Trace: tr, Mode: ModePreemption, Overcommit: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if pre.FailureProbability <= defl.FailureProbability {
		t.Errorf("preemption failure prob %v should exceed deflation %v",
			pre.FailureProbability, defl.FailureProbability)
	}
	if pre.Preemptions == 0 {
		t.Error("expected preemptions at 50% overcommitment")
	}
}

func TestFailureProbabilityGrowsWithOvercommit(t *testing.T) {
	tr := testTrace(400)
	var prev float64 = -1
	for _, oc := range []float64{0, 0.4, 0.8} {
		res, err := Run(Config{Trace: tr, Policy: policy.Proportional{}, Overcommit: oc})
		if err != nil {
			t.Fatal(err)
		}
		if res.FailureProbability < prev-0.02 {
			t.Errorf("failure probability should not materially decrease with OC: %v after %v", res.FailureProbability, prev)
		}
		prev = res.FailureProbability
	}
}

func TestThroughputLossOrdering(t *testing.T) {
	tr := testTrace(400)
	// Priority-aware policies protect high-utilisation VMs, so their
	// throughput loss should not exceed plain proportional's by much;
	// deterministic should be the lowest (Section 7.4.2).
	prop, err := Run(Config{Trace: tr, Policy: policy.Proportional{}, Overcommit: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	det, err := Run(Config{Trace: tr, Policy: policy.Deterministic{}, Overcommit: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if det.ThroughputLoss > prop.ThroughputLoss*1.5+0.01 {
		t.Errorf("deterministic loss %v should not dwarf proportional %v",
			det.ThroughputLoss, prop.ThroughputLoss)
	}
}

func TestPartitionedRuns(t *testing.T) {
	tr := testTrace(300)
	res, err := Run(Config{
		Trace:       tr,
		Policy:      policy.Priority{},
		Partitioned: true,
		Overcommit:  0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted == 0 {
		t.Error("partitioned cluster admitted nothing")
	}
}

func TestRevenueSchemes(t *testing.T) {
	tr := testTrace(300)
	res, err := Run(Config{Trace: tr, Policy: policy.Priority{}, Overcommit: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	st, pr, al := res.Revenue["static"], res.Revenue["priority"], res.Revenue["allocation"]
	if st <= 0 || pr <= 0 || al <= 0 {
		t.Fatalf("revenues = %v", res.Revenue)
	}
	// Priority pricing charges more than the 0.2x static discount on
	// average (priority levels are 0.25..1.0).
	if pr <= st {
		t.Errorf("priority revenue %v should exceed static %v", pr, st)
	}
	// Allocation-based never exceeds static (same discount, allocation
	// <= nominal size).
	if al > st*1.0001 {
		t.Errorf("allocation revenue %v should not exceed static %v", al, st)
	}
}

func TestSweepAndRevenueIncrease(t *testing.T) {
	tr := testTrace(250)
	sr, err := Sweep(tr, StrategyProportional, []float64{0, 40})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Strategy != StrategyProportional || len(sr.Points) != 2 {
		t.Fatalf("sweep = %+v", sr)
	}
	inc := RevenueIncrease(sr, "static")
	if len(inc) != 2 || inc[0] != 0 {
		t.Errorf("revenue increase = %v (first point must be 0)", inc)
	}
	// More overcommitment packs more deflatable VMs onto fewer servers:
	// static revenue (per admitted VM-hour) should not decrease.
	if inc[1] < -1 {
		t.Errorf("static revenue increase at 40%% OC = %v, want >= 0", inc[1])
	}
	if RevenueIncrease(&SweepResult{}, "static") != nil {
		t.Error("empty sweep increase should be nil")
	}
}

func TestSweepStrategies(t *testing.T) {
	tr := testTrace(150)
	for _, s := range []string{StrategyPriority, StrategyDeterministic, StrategyPartitioned, StrategyPreemption} {
		sr, err := Sweep(tr, s, []float64{30})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if len(sr.Points) != 1 {
			t.Fatalf("%s: points = %d", s, len(sr.Points))
		}
	}
}

func TestServersNeverOverAllocated(t *testing.T) {
	tr := testTrace(300)
	cfg := Config{Trace: tr, Policy: policy.Priority{}, Mechanism: mechanism.Hybrid{}, Overcommit: 0.7}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestVMSizeVector(t *testing.T) {
	vm := &trace.VMRecord{Cores: 4, MemoryMB: 8192}
	if got := vmSize(vm); got != resources.CPUMem(4, 8192) {
		t.Errorf("vmSize = %v", got)
	}
}

func TestBuildEventsOrdering(t *testing.T) {
	tr := &trace.AzureTrace{VMs: []*trace.VMRecord{
		{ID: "a", Cores: 1, MemoryMB: 1024, Start: 0, End: 100},
		{ID: "b", Cores: 1, MemoryMB: 1024, Start: 100, End: 200},
	}}
	evs := buildEvents(tr)
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	// At t=100, a's departure precedes b's arrival.
	if evs[1].arrival || evs[1].vm.ID != "a" {
		t.Errorf("event[1] = %+v, want a's departure", evs[1])
	}
	if !evs[2].arrival || evs[2].vm.ID != "b" {
		t.Errorf("event[2] = %+v, want b's arrival", evs[2])
	}
}
