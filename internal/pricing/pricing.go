// Package pricing implements the deflatable-VM pricing schemes of
// Section 5.2.2 and the revenue accounting behind Figure 22: fixed
// discounted (static) pricing, priority-based differentiated pricing,
// and variable allocation-based pricing that bills the resources
// actually allocated over time.
package pricing

import (
	"fmt"

	"vmdeflate/internal/resources"
	"vmdeflate/internal/stats"
)

// Scheme computes the instantaneous billing rate of a deflatable VM.
// Rates are in on-demand-core-hours per hour: an on-demand VM of c cores
// bills at rate c.
type Scheme interface {
	// Name identifies the scheme ("static", "priority", "allocation").
	Name() string
	// Rate returns the billing rate for a VM with the given nominal
	// size, priority, and current allocation.
	Rate(size resources.Vector, priority float64, alloc resources.Vector) float64
}

// billingCores extracts the billing unit (CPU cores, the standard cloud
// billing dimension).
func billingCores(v resources.Vector) float64 { return v.Get(resources.CPU) }

// Static bills a fixed fraction of the on-demand price regardless of
// deflation — "a cloud provider may choose to offer deflatable VMs at
// fixed discounted prices". The paper's evaluation uses 0.2x, matching
// current transient offerings (Section 7.4.3).
type Static struct {
	// Discount is the fraction of the on-demand price (0.2 in the paper).
	Discount float64
}

// Name implements Scheme.
func (Static) Name() string { return "static" }

// Rate implements Scheme.
func (s Static) Rate(size resources.Vector, _ float64, _ resources.Vector) float64 {
	return s.Discount * billingCores(size)
}

// Priority bills proportionally to the VM's priority level: "we set
// their price equal to the priority — i.e., priority-level 0.5 has price
// 0.5x the on-demand price" (Section 7.4.3).
type Priority struct{}

// Name implements Scheme.
func (Priority) Name() string { return "priority" }

// Rate implements Scheme.
func (Priority) Rate(size resources.Vector, priority float64, _ resources.Vector) float64 {
	if priority < 0 {
		priority = 0
	}
	return priority * billingCores(size)
}

// Allocation bills the actual allocation over time, linearly: "VMs pay
// half price when at 50% allocation". The undeflated rate matches
// Static's discounted price so the two schemes coincide when there is no
// deflation.
type Allocation struct {
	// Discount is the fraction of the on-demand price at full allocation.
	Discount float64
}

// Name implements Scheme.
func (Allocation) Name() string { return "allocation" }

// Rate implements Scheme.
func (a Allocation) Rate(size resources.Vector, _ float64, alloc resources.Vector) float64 {
	return a.Discount * billingCores(alloc)
}

// ByName returns a scheme with the paper's default parameters.
func ByName(name string) (Scheme, error) {
	switch name {
	case "static":
		return Static{Discount: 0.2}, nil
	case "priority":
		return Priority{}, nil
	case "allocation":
		return Allocation{Discount: 0.2}, nil
	}
	return nil, fmt.Errorf("pricing: unknown scheme %q", name)
}

// Meter integrates one VM's revenue over time. Observe the rate at every
// change point; Close at departure.
type Meter struct {
	tw     stats.TimeWeighted
	closed bool
	total  float64
}

// Observe records that the VM bills at rate from time t onward.
func (m *Meter) Observe(t, rate float64) {
	if m.closed {
		return
	}
	m.tw.Observe(t, rate)
}

// Close finalises the meter at departure time t and returns accumulated
// revenue (rate integrated over time).
func (m *Meter) Close(t float64) float64 {
	if !m.closed {
		m.tw.Finish(t)
		m.total = m.tw.Area()
		m.closed = true
	}
	return m.total
}

// Total returns accumulated revenue so far (final after Close).
func (m *Meter) Total() float64 {
	if m.closed {
		return m.total
	}
	return m.tw.Area()
}
