package pricing

import (
	"math"
	"testing"

	"vmdeflate/internal/resources"
)

func vmSize() resources.Vector { return resources.CPUMem(8, 16384) }

func TestStaticRate(t *testing.T) {
	s := Static{Discount: 0.2}
	// 8 cores at 0.2x: rate 1.6 regardless of allocation or priority.
	if got := s.Rate(vmSize(), 0.5, vmSize()); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("rate = %v, want 1.6", got)
	}
	if got := s.Rate(vmSize(), 0.9, vmSize().Scale(0.25)); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("rate should ignore deflation: %v", got)
	}
}

func TestPriorityRate(t *testing.T) {
	p := Priority{}
	if got := p.Rate(vmSize(), 0.5, vmSize()); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("priority 0.5 on 8 cores = %v, want 4.0", got)
	}
	if got := p.Rate(vmSize(), 1.0, vmSize()); math.Abs(got-8.0) > 1e-12 {
		t.Errorf("priority 1.0 = %v, want on-demand price 8.0", got)
	}
	if got := p.Rate(vmSize(), -1, vmSize()); got != 0 {
		t.Errorf("negative priority clamps to 0: %v", got)
	}
}

func TestAllocationRate(t *testing.T) {
	a := Allocation{Discount: 0.2}
	full := a.Rate(vmSize(), 0.5, vmSize())
	half := a.Rate(vmSize(), 0.5, vmSize().Scale(0.5))
	if math.Abs(full-1.6) > 1e-12 {
		t.Errorf("undeflated allocation rate = %v, want 1.6 (matches static)", full)
	}
	if math.Abs(half-0.8) > 1e-12 {
		t.Errorf("half allocation = %v, want half price 0.8", half)
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"static", "priority", "allocation"} {
		s, err := ByName(n)
		if err != nil || s.Name() != n {
			t.Errorf("ByName(%q) = %v, %v", n, s, err)
		}
	}
	if _, err := ByName("surge"); err == nil {
		t.Error("unknown scheme should fail")
	}
}

func TestMeterIntegration(t *testing.T) {
	var m Meter
	m.Observe(0, 2.0)  // 2.0/hr for 10h
	m.Observe(10, 1.0) // 1.0/hr for 5h
	got := m.Close(15)
	if math.Abs(got-25) > 1e-9 {
		t.Errorf("revenue = %v, want 25", got)
	}
	if m.Total() != got {
		t.Errorf("Total after close = %v", m.Total())
	}
	// Close is idempotent; further observes are ignored.
	m.Observe(20, 100)
	if math.Abs(m.Close(30)-25) > 1e-9 {
		t.Errorf("meter mutated after close: %v", m.Total())
	}
}

func TestMeterPartialTotal(t *testing.T) {
	var m Meter
	m.Observe(0, 1.0)
	m.Observe(5, 3.0)
	if got := m.Total(); math.Abs(got-5) > 1e-9 {
		t.Errorf("running total = %v, want 5 (second segment not yet closed)", got)
	}
}
