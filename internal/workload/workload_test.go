package workload

import (
	"math"
	"testing"

	"vmdeflate/internal/sim"
)

func TestConstantSourceTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	var times []float64
	src := NewConstantSource(eng, 10, func(now float64, seq int) {
		times = append(times, now)
	})
	src.SetLimit(5)
	src.Start()
	eng.Run()
	if len(times) != 5 {
		t.Fatalf("got %d requests, want 5", len(times))
	}
	for i, at := range times {
		want := 0.1 * float64(i+1)
		if math.Abs(at-want) > 1e-9 {
			t.Errorf("request %d at %v, want %v", i, at, want)
		}
	}
	if src.Sent() != 5 {
		t.Errorf("Sent = %d", src.Sent())
	}
}

func TestPoissonSourceRate(t *testing.T) {
	eng := sim.NewEngine(1)
	count := 0
	src := NewPoissonSource(eng, 100, 42, func(now float64, seq int) { count++ })
	src.Start()
	eng.At(100, func(float64) { src.Stop() })
	eng.RunUntil(100)
	src.Stop()
	// ~100 req/s for 100 s => ~10000 requests; allow 5% tolerance.
	if count < 9500 || count > 10500 {
		t.Errorf("Poisson source generated %d requests, want ~10000", count)
	}
}

func TestPoissonDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []float64 {
		eng := sim.NewEngine(1)
		var times []float64
		src := NewPoissonSource(eng, 50, seed, func(now float64, _ int) { times = append(times, now) })
		src.SetLimit(100)
		src.Start()
		eng.Run()
		return times
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce arrivals")
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestSourceStop(t *testing.T) {
	eng := sim.NewEngine(1)
	count := 0
	var src *Source
	src = NewConstantSource(eng, 10, func(now float64, _ int) {
		count++
		if count == 3 {
			src.Stop()
		}
	})
	src.Start()
	eng.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestZeroRateSource(t *testing.T) {
	eng := sim.NewEngine(1)
	src := NewConstantSource(eng, 0, func(float64, int) { t.Error("should never fire") })
	src.Start()
	eng.Run()
}

func TestPageMixStatistics(t *testing.T) {
	mix := NewPageMix(1)
	var sum float64
	const n = 200000
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		c := mix.Draw()
		sum += c
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	mean := sum / n
	want := mix.MeanCost()
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("empirical mean %v, analytic %v", mean, want)
	}
	if min <= 0 {
		t.Errorf("draws must be positive: min=%v", min)
	}
	// Heavy tail: misses cost much more than hits.
	if max < 10*mean {
		t.Errorf("expected heavy tail: max=%v mean=%v", max, mean)
	}
}

func TestPageMixMeanCost(t *testing.T) {
	mix := NewPageMix(1)
	want := 0.88*0.003 + 0.12*0.056
	if math.Abs(mix.MeanCost()-want) > 1e-12 {
		t.Errorf("MeanCost = %v, want %v", mix.MeanCost(), want)
	}
}
