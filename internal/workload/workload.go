// Package workload provides the open-loop request generators used by the
// web experiments of Section 7: a Poisson arrival source (the Wikipedia
// workload generator "randomly selects from the top 500 largest pages")
// and a wrk2-style constant-throughput source (used for the
// DeathStarBench social network).
package workload

import (
	"math/rand"

	"vmdeflate/internal/sim"
)

// Handler receives one generated request at virtual time now; seq is the
// request's sequence number.
type Handler func(now float64, seq int)

// Source drives requests into a handler until stopped.
type Source struct {
	eng     *sim.Engine
	rate    float64
	poisson bool
	rng     *rand.Rand
	handler Handler
	seq     int
	limit   int
	stopped bool
}

// NewPoissonSource creates an open-loop Poisson source with the given
// mean rate (requests/second). The source draws from its own seeded RNG
// so request timing is independent of other simulation randomness.
func NewPoissonSource(eng *sim.Engine, rate float64, seed int64, h Handler) *Source {
	return &Source{eng: eng, rate: rate, poisson: true, rng: rand.New(rand.NewSource(seed)), handler: h}
}

// NewConstantSource creates a wrk2-style constant-throughput source: one
// request exactly every 1/rate seconds.
func NewConstantSource(eng *sim.Engine, rate float64, h Handler) *Source {
	return &Source{eng: eng, rate: rate, handler: h}
}

// SetLimit stops the source after n requests (0 = unlimited).
func (s *Source) SetLimit(n int) { s.limit = n }

// Sent returns how many requests have been generated so far.
func (s *Source) Sent() int { return s.seq }

// Start schedules the first arrival.
func (s *Source) Start() {
	if s.rate <= 0 {
		return
	}
	s.eng.After(s.nextGap(), s.tick)
}

// Stop halts the source after the current arrival.
func (s *Source) Stop() { s.stopped = true }

func (s *Source) nextGap() float64 {
	if s.poisson {
		return s.rng.ExpFloat64() / s.rate
	}
	return 1 / s.rate
}

func (s *Source) tick(now float64) {
	if s.stopped {
		return
	}
	if s.limit > 0 && s.seq >= s.limit {
		return
	}
	seq := s.seq
	s.seq++
	s.handler(now, seq)
	if s.limit > 0 && s.seq >= s.limit {
		return
	}
	s.eng.After(s.nextGap(), s.tick)
}

// PageMix models the Wikipedia page-size distribution of Section 7.1.1:
// requests select among the 500 largest pages (0.5-2.2 MB). Page size
// scales the CPU cost of rendering.
type PageMix struct {
	rng *rand.Rand
	// HitRatio is the fraction of requests served from memcached (cheap);
	// misses render through MediaWiki+MySQL (expensive).
	HitRatio float64
	// HitCost and MissCost are mean CPU seconds for each path.
	HitCost, MissCost float64
}

// NewPageMix creates the default calibrated mix: 88% cache hits at 3 ms
// and 12% misses at 56 ms of CPU (mean ~9.4 ms/request, matching the
// paper's setup where a 30-core VM saturates near 70-80% CPU deflation
// at 800 req/s — Figures 16-17).
func NewPageMix(seed int64) *PageMix {
	return &PageMix{
		rng:      rand.New(rand.NewSource(seed)),
		HitRatio: 0.88,
		HitCost:  0.003,
		MissCost: 0.056,
	}
}

// Draw returns one request's CPU demand in core-seconds. Costs are
// lognormal-ish around the path mean, scaled by a page-size factor in
// [0.5/1.35, 2.2/1.35] (the 0.5-2.2 MB page range).
func (p *PageMix) Draw() float64 {
	var mean float64
	if p.rng.Float64() < p.HitRatio {
		mean = p.HitCost
	} else {
		mean = p.MissCost
	}
	sizeFactor := (0.5 + p.rng.Float64()*1.7) / 1.35
	jitter := 0.7 + 0.6*p.rng.Float64()
	return mean * sizeFactor * jitter
}

// MeanCost returns the analytic mean CPU demand of the mix.
func (p *PageMix) MeanCost() float64 {
	return p.HitRatio*p.HitCost + (1-p.HitRatio)*p.MissCost
}
