// Package resources defines the multi-dimensional resource vectors used
// throughout the deflation system.
//
// A VM, a server, and a deflation target are all described by the same
// four-dimensional vector: CPU cores, memory (MB), disk bandwidth (MB/s),
// and network bandwidth (Mbit/s). The paper's cluster policies (Section 5)
// treat each dimension independently, while the placement policy (Section
// 5.2) compares whole vectors using cosine similarity.
package resources

import (
	"errors"
	"fmt"
	"math"
)

// Kind identifies one resource dimension.
type Kind int

const (
	// CPU is measured in (fractional) cores.
	CPU Kind = iota
	// Memory is measured in megabytes.
	Memory
	// DiskBW is local disk bandwidth in MB/s.
	DiskBW
	// NetBW is network bandwidth in Mbit/s.
	NetBW
	// NumKinds is the number of resource dimensions.
	NumKinds
)

// Kinds lists every resource dimension in canonical order.
var Kinds = [NumKinds]Kind{CPU, Memory, DiskBW, NetBW}

// String returns the conventional short name of the resource kind.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case Memory:
		return "memory"
	case DiskBW:
		return "diskbw"
	case NetBW:
		return "netbw"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a short name ("cpu", "memory", "diskbw", "netbw")
// into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "cpu":
		return CPU, nil
	case "memory", "mem":
		return Memory, nil
	case "diskbw", "disk":
		return DiskBW, nil
	case "netbw", "net":
		return NetBW, nil
	}
	return 0, fmt.Errorf("resources: unknown kind %q", s)
}

// Vector is a point in resource space. The zero value is the empty
// allocation and is ready to use.
type Vector [NumKinds]float64

// ErrNegative reports an operation that would produce a negative allocation.
var ErrNegative = errors.New("resources: negative allocation")

// New builds a vector from explicit components.
func New(cpu, memMB, diskMBps, netMbps float64) Vector {
	return Vector{cpu, memMB, diskMBps, netMbps}
}

// CPUMem builds a vector with only CPU and memory set; disk and network
// are zero. The paper's cluster simulation (Section 7.1.2) bin-packs on
// cores and memory only.
func CPUMem(cpu, memMB float64) Vector {
	return Vector{cpu, memMB, 0, 0}
}

// Uniform returns a vector with the same value in every dimension.
func Uniform(v float64) Vector {
	var out Vector
	for i := range out {
		out[i] = v
	}
	return out
}

// Get returns the component for kind k.
func (v Vector) Get(k Kind) float64 { return v[k] }

// With returns a copy of v with dimension k replaced by value.
func (v Vector) With(k Kind, value float64) Vector {
	v[k] = value
	return v
}

// Add returns v + o.
func (v Vector) Add(o Vector) Vector {
	for i := range v {
		v[i] += o[i]
	}
	return v
}

// Sub returns v - o. Components may go negative; use Clamp or CheckNonNegative
// if the caller requires a valid allocation.
func (v Vector) Sub(o Vector) Vector {
	for i := range v {
		v[i] -= o[i]
	}
	return v
}

// Scale returns v with every component multiplied by f.
func (v Vector) Scale(f float64) Vector {
	for i := range v {
		v[i] *= f
	}
	return v
}

// Mul returns the component-wise product of v and o.
func (v Vector) Mul(o Vector) Vector {
	for i := range v {
		v[i] *= o[i]
	}
	return v
}

// Div returns the component-wise quotient v/o. Components of o that are
// zero yield zero (not Inf) so that unused dimensions are neutral.
func (v Vector) Div(o Vector) Vector {
	for i := range v {
		if o[i] == 0 {
			v[i] = 0
			continue
		}
		v[i] /= o[i]
	}
	return v
}

// Min returns the component-wise minimum.
func (v Vector) Min(o Vector) Vector {
	for i := range v {
		if o[i] < v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// Max returns the component-wise maximum.
func (v Vector) Max(o Vector) Vector {
	for i := range v {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// Clamp limits every component of v into [lo, hi] component-wise.
func (v Vector) Clamp(lo, hi Vector) Vector {
	return v.Max(lo).Min(hi)
}

// ClampNonNegative replaces negative components with zero.
func (v Vector) ClampNonNegative() Vector {
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
	}
	return v
}

// CheckNonNegative returns ErrNegative if any component is negative.
func (v Vector) CheckNonNegative() error {
	for i := range v {
		if v[i] < 0 {
			return fmt.Errorf("%w: %s=%g", ErrNegative, Kind(i), v[i])
		}
	}
	return nil
}

// IsZero reports whether every component is zero.
func (v Vector) IsZero() bool {
	for i := range v {
		if v[i] != 0 {
			return false
		}
	}
	return true
}

// FitsIn reports whether v <= o in every dimension (with a small epsilon
// so that floating-point round-off from repeated deflate/reinflate cycles
// does not spuriously reject a placement).
func (v Vector) FitsIn(o Vector) bool {
	const eps = 1e-9
	for i := range v {
		if v[i] > o[i]+eps {
			return false
		}
	}
	return true
}

// Dot returns the inner product of v and o.
func (v Vector) Dot(o Vector) float64 {
	var s float64
	for i := range v {
		s += v[i] * o[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Sum returns the sum of the components of v.
func (v Vector) Sum() float64 {
	var s float64
	for i := range v {
		s += v[i]
	}
	return s
}

// MaxComponent returns the largest component value.
func (v Vector) MaxComponent() float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// DominantShare returns the maximum of v[i]/total[i] over all dimensions
// where total[i] > 0. It is the classic dominant-resource share used for
// utilisation accounting.
func (v Vector) DominantShare(total Vector) float64 {
	var m float64
	for i := range v {
		if total[i] <= 0 {
			continue
		}
		if s := v[i] / total[i]; s > m {
			m = s
		}
	}
	return m
}

// CosineFitness computes the placement fitness of Section 5.2:
//
//	fitness(D, A) = (A · D) / (|A| |D|)
//
// where D is the demand vector of a new VM and A is the availability
// vector of a candidate server. If either vector has zero norm, a small
// epsilon is added (per the paper) to avoid division by zero; the
// resulting fitness is ~0, deprioritising the server.
func CosineFitness(demand, avail Vector) float64 {
	const eps = 1e-9
	na, nd := avail.Norm(), demand.Norm()
	if na < eps {
		na = eps
	}
	if nd < eps {
		nd = eps
	}
	return avail.Dot(demand) / (na * nd)
}

// String renders the vector as "cpu=…, mem=…MB, disk=…MB/s, net=…Mb/s".
func (v Vector) String() string {
	return fmt.Sprintf("cpu=%.2f mem=%.0fMB disk=%.1fMB/s net=%.1fMb/s",
		v[CPU], v[Memory], v[DiskBW], v[NetBW])
}

// DeflationFraction returns 1 - v/base averaged over the dimensions where
// base is non-zero: the overall fraction by which v is deflated relative
// to base. Returns 0 for an all-zero base.
func (v Vector) DeflationFraction(base Vector) float64 {
	var sum float64
	var n int
	for i := range v {
		if base[i] <= 0 {
			continue
		}
		sum += 1 - v[i]/base[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
