package resources

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestKindString(t *testing.T) {
	cases := map[Kind]string{CPU: "cpu", Memory: "memory", DiskBW: "diskbw", NetBW: "netbw"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown kind should include numeric value, got %q", got)
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	for in, want := range map[string]Kind{"mem": Memory, "disk": DiskBW, "net": NetBW} {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("gpu"); err == nil {
		t.Error("ParseKind(gpu) should fail")
	}
}

func TestNewAndAccessors(t *testing.T) {
	v := New(4, 8192, 100, 1000)
	if v.Get(CPU) != 4 || v.Get(Memory) != 8192 || v.Get(DiskBW) != 100 || v.Get(NetBW) != 1000 {
		t.Fatalf("accessors wrong: %v", v)
	}
	w := v.With(CPU, 2)
	if w.Get(CPU) != 2 || v.Get(CPU) != 4 {
		t.Error("With must not mutate the receiver")
	}
}

func TestCPUMem(t *testing.T) {
	v := CPUMem(2, 4096)
	if v[CPU] != 2 || v[Memory] != 4096 || v[DiskBW] != 0 || v[NetBW] != 0 {
		t.Errorf("CPUMem = %v", v)
	}
}

func TestArithmetic(t *testing.T) {
	a := New(4, 8192, 100, 1000)
	b := New(1, 1024, 50, 500)
	if got := a.Add(b); got != New(5, 9216, 150, 1500) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != New(3, 7168, 50, 500) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(0.5); got != New(2, 4096, 50, 500) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Mul(Uniform(2)); got != New(8, 16384, 200, 2000) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Div(b); got != New(4, 8, 2, 2) {
		t.Errorf("Div = %v", got)
	}
}

func TestDivByZeroGivesZero(t *testing.T) {
	a := New(4, 8192, 100, 1000)
	got := a.Div(Vector{})
	if !got.IsZero() {
		t.Errorf("Div by zero vector = %v, want zero", got)
	}
}

func TestMinMaxClamp(t *testing.T) {
	a := New(4, 1000, 10, 10)
	b := New(2, 2000, 10, 20)
	if got := a.Min(b); got != New(2, 1000, 10, 10) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != New(4, 2000, 10, 20) {
		t.Errorf("Max = %v", got)
	}
	lo, hi := Uniform(5), Uniform(15)
	if got := New(1, 10, 20, 7).Clamp(lo, hi); got != New(5, 10, 15, 7) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestClampNonNegative(t *testing.T) {
	v := New(-1, 5, -0.5, 0)
	got := v.ClampNonNegative()
	if got != New(0, 5, 0, 0) {
		t.Errorf("ClampNonNegative = %v", got)
	}
}

func TestCheckNonNegative(t *testing.T) {
	if err := New(1, 2, 3, 4).CheckNonNegative(); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	err := New(1, -2, 3, 4).CheckNonNegative()
	if err == nil {
		t.Fatal("want error for negative memory")
	}
	if !strings.Contains(err.Error(), "memory") {
		t.Errorf("error should identify dimension: %v", err)
	}
}

func TestFitsIn(t *testing.T) {
	a := New(2, 1024, 10, 10)
	b := New(4, 2048, 20, 20)
	if !a.FitsIn(b) {
		t.Error("a should fit in b")
	}
	if b.FitsIn(a) {
		t.Error("b should not fit in a")
	}
	// Epsilon tolerance: tiny floating point excess must not reject.
	c := b.Add(Uniform(1e-12))
	if !c.FitsIn(b) {
		t.Error("epsilon excess should still fit")
	}
}

func TestDotNormSum(t *testing.T) {
	a := New(1, 2, 3, 4)
	b := New(4, 3, 2, 1)
	if got := a.Dot(b); got != 4+6+6+4 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Norm(); !almostEqual(got, math.Sqrt(30)) {
		t.Errorf("Norm = %v", got)
	}
	if got := a.Sum(); got != 10 {
		t.Errorf("Sum = %v", got)
	}
	if got := a.MaxComponent(); got != 4 {
		t.Errorf("MaxComponent = %v", got)
	}
}

func TestDominantShare(t *testing.T) {
	use := New(24, 64000, 0, 0)
	total := New(48, 128000, 0, 0)
	if got := use.DominantShare(total); !almostEqual(got, 0.5) {
		t.Errorf("DominantShare = %v", got)
	}
	// CPU dominates.
	use2 := New(36, 32000, 0, 0)
	if got := use2.DominantShare(total); !almostEqual(got, 0.75) {
		t.Errorf("DominantShare = %v", got)
	}
	if got := use.DominantShare(Vector{}); got != 0 {
		t.Errorf("zero total should give 0, got %v", got)
	}
}

func TestCosineFitness(t *testing.T) {
	d := New(2, 4096, 0, 0)
	// Parallel availability = perfect fitness 1.
	if got := CosineFitness(d, d.Scale(10)); !almostEqual(got, 1) {
		t.Errorf("parallel fitness = %v, want 1", got)
	}
	// Orthogonal availability = 0 fitness.
	if got := CosineFitness(New(1, 0, 0, 0), New(0, 1, 0, 0)); !almostEqual(got, 0) {
		t.Errorf("orthogonal fitness = %v, want 0", got)
	}
	// Zero availability must not panic or return NaN (paper's epsilon rule).
	got := CosineFitness(d, Vector{})
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("zero availability fitness = %v", got)
	}
}

func TestCosineFitnessPrefersBalanced(t *testing.T) {
	d := New(2, 4096, 0, 0)
	aligned := New(20, 40960, 0, 0) // same shape
	skewed := New(40, 2048, 0, 0)   // lots of CPU, little memory
	if CosineFitness(d, aligned) <= CosineFitness(d, skewed) {
		t.Error("aligned availability should have higher fitness than skewed")
	}
}

func TestDeflationFraction(t *testing.T) {
	base := New(4, 8192, 100, 1000)
	half := base.Scale(0.5)
	if got := half.DeflationFraction(base); !almostEqual(got, 0.5) {
		t.Errorf("DeflationFraction = %v, want 0.5", got)
	}
	if got := base.DeflationFraction(base); !almostEqual(got, 0) {
		t.Errorf("undeflated fraction = %v, want 0", got)
	}
	if got := base.DeflationFraction(Vector{}); got != 0 {
		t.Errorf("zero base fraction = %v, want 0", got)
	}
}

func TestString(t *testing.T) {
	s := New(2, 4096, 10, 100).String()
	for _, want := range []string{"cpu=2.00", "mem=4096MB", "disk=10.0MB/s", "net=100.0Mb/s"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestIsZero(t *testing.T) {
	if !(Vector{}).IsZero() {
		t.Error("zero vector should be zero")
	}
	if New(0, 0, 0, 1).IsZero() {
		t.Error("non-zero vector should not be zero")
	}
}

// Property: Add and Sub are inverse operations.
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b Vector) bool {
		got := a.Add(b).Sub(b)
		for i := range got {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true // skip degenerate inputs
			}
			if math.Abs(got[i]-a[i]) > 1e-6*(1+math.Abs(a[i])+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cosine fitness is scale-invariant in both arguments and bounded.
func TestQuickCosineFitnessProperties(t *testing.T) {
	f := func(d, a Vector) bool {
		for i := range d {
			d[i] = math.Abs(math.Mod(d[i], 1e6))
			a[i] = math.Abs(math.Mod(a[i], 1e6))
			if math.IsNaN(d[i]) || math.IsNaN(a[i]) {
				return true
			}
		}
		fit := CosineFitness(d, a)
		if math.IsNaN(fit) || fit < -1e-9 || fit > 1+1e-9 {
			return false
		}
		// Scale invariance (only meaningful when both norms are well away from
		// the epsilon floor).
		if d.Norm() > 1e-3 && a.Norm() > 1e-3 {
			fit2 := CosineFitness(d.Scale(3), a.Scale(7))
			if math.Abs(fit-fit2) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: v.Clamp(lo,hi) is within [lo,hi] whenever lo<=hi.
func TestQuickClampBounds(t *testing.T) {
	f := func(v, lo Vector) bool {
		for i := range lo {
			lo[i] = math.Mod(lo[i], 1e6)
			v[i] = math.Mod(v[i], 1e6)
			if math.IsNaN(lo[i]) || math.IsNaN(v[i]) {
				return true
			}
		}
		hi := lo.Add(Uniform(100))
		c := v.Clamp(lo, hi)
		for i := range c {
			if c[i] < lo[i]-1e-9 || c[i] > hi[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
