package policy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"vmdeflate/internal/resources"
)

func vm(name string, cores, memMB float64, prio float64) VMState {
	max := resources.New(cores, memMB, 0, 0)
	return VMState{Name: name, Max: max, Current: max, Priority: prio}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestByName(t *testing.T) {
	for _, n := range []string{"proportional", "priority", "deterministic", "latency"} {
		p, err := ByName(n)
		if err != nil || p.Name() != n {
			t.Errorf("ByName(%q) = %v, %v", n, p, err)
		}
	}
	if _, err := ByName("x"); err == nil {
		t.Error("unknown policy should fail")
	}
}

// Equation 1: two equal VMs, reclaim R -> each gives R/2; allocations
// shrink proportionally to size.
func TestProportionalEquation1(t *testing.T) {
	vms := []VMState{vm("a", 8, 8192, 0.5), vm("b", 4, 4096, 0.5)}
	need := resources.New(6, 6144, 0, 0)
	res, err := Proportional{}.Targets(vms, need)
	if err != nil {
		t.Fatal(err)
	}
	// alpha1 = 1 - R/sum(Mi) = 1 - 6/12 = 0.5 -> a: 4 cores, b: 2 cores.
	if got := res.Targets["a"].Get(resources.CPU); !almost(got, 4) {
		t.Errorf("a cpu = %v, want 4", got)
	}
	if got := res.Targets["b"].Get(resources.CPU); !almost(got, 2) {
		t.Errorf("b cpu = %v, want 2", got)
	}
	if got := res.Targets["a"].Get(resources.Memory); !almost(got, 4096) {
		t.Errorf("a mem = %v, want 4096", got)
	}
	if !almost(res.Freed.Get(resources.CPU), 6) {
		t.Errorf("freed cpu = %v", res.Freed.Get(resources.CPU))
	}
}

// Equation 2: minimum allocations are honoured and reclaim happens in
// the deflatable range only.
func TestProportionalEquation2Minimums(t *testing.T) {
	a := vm("a", 8, 8192, 0.5)
	a.Min = resources.New(4, 4096, 0, 0)
	b := vm("b", 8, 8192, 0.5)
	b.Min = resources.New(2, 2048, 0, 0)
	vms := []VMState{a, b}
	// Deflatable range: a: 4, b: 6 => total 10. Reclaim 5 -> alpha2 = 0.5.
	res, err := Proportional{}.Targets(vms, resources.New(5, 5120, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Targets["a"].Get(resources.CPU); !almost(got, 4+0.5*4) {
		t.Errorf("a cpu = %v, want 6", got)
	}
	if got := res.Targets["b"].Get(resources.CPU); !almost(got, 2+0.5*6) {
		t.Errorf("b cpu = %v, want 5", got)
	}
	// Floors never violated.
	for _, v := range vms {
		tgt := res.Targets[v.Name]
		if !v.Min.FitsIn(tgt) {
			t.Errorf("%s target %v below min %v", v.Name, tgt, v.Min)
		}
	}
}

func TestProportionalInsufficient(t *testing.T) {
	a := vm("a", 4, 4096, 0.5)
	a.Min = resources.New(2, 2048, 0, 0)
	res, err := Proportional{}.Targets([]VMState{a}, resources.New(3, 0, 0, 0))
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
	// Best effort: a is at its floor.
	if got := res.Targets["a"].Get(resources.CPU); !almost(got, 2) {
		t.Errorf("best effort = %v, want floor 2", got)
	}
	if !almost(res.Freed.Get(resources.CPU), 2) {
		t.Errorf("freed = %v, want 2", res.Freed.Get(resources.CPU))
	}
}

func TestProportionalReinflation(t *testing.T) {
	a := vm("a", 8, 8192, 0.5)
	a.Current = resources.New(4, 4096, 0, 0)
	b := vm("b", 4, 4096, 0.5)
	b.Current = resources.New(2, 2048, 0, 0)
	// Free resources appeared: R = -Rfree (Section 5.1.3).
	res, err := Proportional{}.Targets([]VMState{a, b}, resources.New(-3, -3072, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Total current 6 cores, desired 9, max 12 -> alpha = 9/12 = 0.75.
	if got := res.Targets["a"].Get(resources.CPU); !almost(got, 6) {
		t.Errorf("a cpu = %v, want 6", got)
	}
	if got := res.Targets["b"].Get(resources.CPU); !almost(got, 3) {
		t.Errorf("b cpu = %v, want 3", got)
	}
	if !almost(res.Freed.Get(resources.CPU), -3) {
		t.Errorf("freed = %v, want -3", res.Freed.Get(resources.CPU))
	}
}

func TestProportionalFullReinflationCapsAtMax(t *testing.T) {
	a := vm("a", 8, 8192, 0.5)
	a.Current = resources.New(4, 4096, 0, 0)
	res, err := Proportional{}.Targets([]VMState{a}, resources.New(-100, -100000, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Targets["a"] != a.Max {
		t.Errorf("target = %v, want max %v", res.Targets["a"], a.Max)
	}
}

// Equation 3: lower priority -> more deflation.
func TestPriorityWeighting(t *testing.T) {
	vms := []VMState{vm("low", 8, 8192, 0.25), vm("high", 8, 8192, 0.75)}
	res, err := Priority{}.Targets(vms, resources.New(8, 8192, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	low := res.Targets["low"].Get(resources.CPU)
	high := res.Targets["high"].Get(resources.CPU)
	if low >= high {
		t.Errorf("low-priority VM should be deflated more: low=%v high=%v", low, high)
	}
	if !almost(low+high, 8) {
		t.Errorf("total = %v, want 8", low+high)
	}
	// Check against closed form: alpha3 = (sum(Mi)-R)/sum(pi*Mi) = (16-8)/(0.25*8+0.75*8) = 1.
	if !almost(low, 0.25*8) || !almost(high, 0.75*8) {
		t.Errorf("closed form mismatch: low=%v high=%v", low, high)
	}
}

func TestPriorityClampAtMax(t *testing.T) {
	// Tiny reclaim: naive alpha would push the high-priority VM above its
	// max; water-filling must clamp and shift the burden.
	vms := []VMState{vm("low", 8, 8192, 0.1), vm("high", 8, 8192, 0.9)}
	res, err := Priority{}.Targets(vms, resources.New(1, 1024, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vms {
		tgt := res.Targets[v.Name]
		if !tgt.FitsIn(v.Max) {
			t.Errorf("%s target %v exceeds max", v.Name, tgt)
		}
	}
	if !almost(res.Freed.Get(resources.CPU), 1) {
		t.Errorf("freed = %v, want 1", res.Freed.Get(resources.CPU))
	}
}

func TestPriorityZeroPriorityVM(t *testing.T) {
	vms := []VMState{vm("z", 4, 4096, 0)}
	if _, err := (Priority{}).Targets(vms, resources.New(1, 0, 0, 0)); err != nil {
		t.Errorf("zero priority should not break the formula: %v", err)
	}
}

func TestDeterministicBinary(t *testing.T) {
	vms := []VMState{
		vm("a", 8, 8192, 0.25),
		vm("b", 8, 8192, 0.50),
		vm("c", 8, 8192, 0.75),
	}
	// Need 6 cores: deflating "a" (lowest priority) to 0.25*8=2 frees 6.
	res, err := Deterministic{}.Targets(vms, resources.New(6, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Targets["a"].Get(resources.CPU); !almost(got, 2) {
		t.Errorf("a = %v, want deflated 2", got)
	}
	// b and c stay full.
	if got := res.Targets["b"].Get(resources.CPU); !almost(got, 8) {
		t.Errorf("b = %v, want full 8", got)
	}
	if got := res.Targets["c"].Get(resources.CPU); !almost(got, 8) {
		t.Errorf("c = %v, want full 8", got)
	}
}

func TestDeterministicCascades(t *testing.T) {
	vms := []VMState{
		vm("a", 8, 8192, 0.25),
		vm("b", 8, 8192, 0.50),
		vm("c", 8, 8192, 0.75),
	}
	// Need 9 cores: a frees 6, b frees 4 -> both deflated, c full.
	res, err := Deterministic{}.Targets(vms, resources.New(9, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Targets["a"].Get(resources.CPU); !almost(got, 2) {
		t.Errorf("a = %v", got)
	}
	if got := res.Targets["b"].Get(resources.CPU); !almost(got, 4) {
		t.Errorf("b = %v", got)
	}
	if got := res.Targets["c"].Get(resources.CPU); !almost(got, 8) {
		t.Errorf("c = %v", got)
	}
	if res.Freed.Get(resources.CPU) < 9 {
		t.Errorf("freed = %v", res.Freed.Get(resources.CPU))
	}
}

func TestDeterministicReinflation(t *testing.T) {
	vms := []VMState{
		vm("a", 8, 8192, 0.25),
		vm("b", 8, 8192, 0.50),
	}
	vms[0].Current = resources.New(2, 2048, 0, 0) // deflated
	vms[1].Current = resources.New(4, 4096, 0, 0) // deflated
	// Pressure mostly gone: only 2 CPU still needed below full. The
	// higher-priority VM (b) reinflates fully first; a absorbs the rest.
	res, err := Deterministic{}.Targets(vms, resources.New(-8, -8192, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Targets["b"].Get(resources.CPU); !almost(got, 8) {
		t.Errorf("b should reinflate first: %v", got)
	}
	if got := res.Targets["a"].Get(resources.CPU); !almost(got, 2) {
		t.Errorf("a stays deflated: %v", got)
	}
}

func TestDeterministicInsufficient(t *testing.T) {
	vms := []VMState{vm("a", 4, 4096, 0.5)}
	_, err := Deterministic{}.Targets(vms, resources.New(3, 0, 0, 0))
	if !errors.Is(err, ErrInsufficient) {
		t.Errorf("want ErrInsufficient, got %v", err)
	}
}

func TestDeterministicRespectsMin(t *testing.T) {
	a := vm("a", 8, 8192, 0.1)
	a.Min = resources.New(4, 4096, 0, 0)
	res, _ := Deterministic{}.Targets([]VMState{a}, resources.New(10, 0, 0, 0))
	if got := res.Targets["a"].Get(resources.CPU); !almost(got, 4) {
		t.Errorf("deflated below floor: %v", got)
	}
}

func TestEmptyVMList(t *testing.T) {
	for _, p := range []Policy{Proportional{}, Priority{}, Deterministic{}} {
		res, err := p.Targets(nil, resources.New(1, 0, 0, 0))
		if !errors.Is(err, ErrInsufficient) {
			t.Errorf("%s: empty list should be insufficient, got %v", p.Name(), err)
		}
		if len(res.Targets) != 0 {
			t.Errorf("%s: targets should be empty", p.Name())
		}
	}
}

func TestZeroNeedIsNoOpOrReinflate(t *testing.T) {
	// VMs already deflated + zero need => proportional redistributes back
	// to full (desired total = current total... but range allows more).
	a := vm("a", 8, 8192, 0.5)
	for _, p := range []Policy{Proportional{}, Priority{}, Deterministic{}} {
		res, err := p.Targets([]VMState{a}, resources.Vector{})
		if err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
		if got := res.Targets["a"]; !got.FitsIn(a.Max) {
			t.Errorf("%s: target %v exceeds max", p.Name(), got)
		}
	}
}

func TestPriorityFromP95(t *testing.T) {
	cases := []struct {
		p95  float64
		want float64
	}{
		{0, 0.25}, {10, 0.25}, {24.9, 0.25},
		{25, 0.50}, {49, 0.50},
		{50, 0.75}, {74, 0.75},
		{75, 1.0}, {100, 1.0}, {150, 1.0}, {-5, 0.25},
	}
	for _, c := range cases {
		if got := PriorityFromP95(c.p95, 4); !almost(got, c.want) {
			t.Errorf("PriorityFromP95(%v, 4) = %v, want %v", c.p95, got, c.want)
		}
	}
	if got := PriorityFromP95(50, 0); got != 1 {
		t.Errorf("degenerate levels: %v", got)
	}
}

// Property: for any need and any policy, targets stay within [Min, Max]
// and, when no error is returned, the freed amount covers the need.
func TestQuickPolicyInvariants(t *testing.T) {
	policies := []Policy{Proportional{}, Priority{}, Deterministic{}}
	f := func(sizes []uint8, needRaw uint16, pi uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		vms := make([]VMState, len(sizes))
		var totalCPU float64
		for i, s := range sizes {
			cores := float64(s%16) + 1
			prio := float64(s%4+1) / 4
			v := vm(string(rune('a'+i)), cores, cores*1024, prio)
			v.Min = v.Max.Scale(float64(s%3) * 0.2) // 0, 20% or 40% floor
			vms[i] = v
			totalCPU += cores
		}
		need := resources.New(float64(needRaw%64), float64(needRaw%64)*512, 0, 0)
		p := policies[int(pi)%len(policies)]
		res, err := p.Targets(vms, need)
		for _, v := range vms {
			tgt, ok := res.Targets[v.Name]
			if !ok {
				return false
			}
			if !tgt.FitsIn(v.Max) {
				return false
			}
			if !v.Min.Scale(1 - 1e-9).FitsIn(tgt) {
				return false
			}
		}
		if err == nil {
			for _, k := range resources.Kinds {
				if res.Freed.Get(k)+1e-6 < need.Get(k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: proportional deflation preserves ordering — a VM with a
// strictly larger deflatable range never ends with a smaller allocation
// than an identical-floor smaller VM.
func TestQuickProportionalMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint8, needRaw uint8) bool {
		a := float64(aRaw%16) + 2
		b := float64(bRaw%16) + 2
		if a == b {
			return true
		}
		vms := []VMState{vm("a", a, a*1024, 0.5), vm("b", b, b*1024, 0.5)}
		need := resources.New(float64(needRaw)/255*(a+b-1), 0, 0, 0)
		res, err := Proportional{}.Targets(vms, need)
		if err != nil {
			return true
		}
		ta := res.Targets["a"].Get(resources.CPU)
		tb := res.Targets["b"].Get(resources.CPU)
		if a > b {
			return ta >= tb-1e-9
		}
		return tb >= ta-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
