// Package policy implements the server-level deflation policies of
// Section 5.1: proportional deflation (Equations 1-2), priority-weighted
// proportional deflation (Equations 3-4), and deterministic deflation,
// plus reinflation for all three ("run the proportional deflation
// backwards", Section 5.1.3).
//
// A policy is a pure function: given the deflatable VMs on a server and
// the amount of each resource that must be freed relative to the current
// allocations, it returns a new target allocation per VM. Mechanisms
// (package mechanism) then apply the targets. Policies never choose to
// preempt; if even maximal deflation cannot satisfy the need they report
// ErrInsufficient and the caller (cluster manager) rejects the request —
// that is the "failure probability" measured in Figure 20.
//
// # Hot-path API
//
// Policies expose two forms of the same decision. TargetsInto is the hot
// path: it writes position-indexed targets (Targets[i] belongs to vms[i])
// into buffers owned by a caller-provided Scratch, so a steady-state
// policy pass performs zero heap allocations — the cluster manager keeps
// one Scratch per server and runs millions of passes without GC churn.
// Targets is the convenience wrapper that builds the familiar
// name-indexed map (and a detailed error) on top of TargetsInto.
package policy

import (
	"errors"
	"fmt"
	"sort"

	"vmdeflate/internal/perfmodel"
	"vmdeflate/internal/queueing"
	"vmdeflate/internal/resources"
)

// ErrInsufficient reports that even deflating every VM to its floor
// cannot free the requested amount. TargetsInto returns the bare
// sentinel (so the hot path never formats); Targets wraps it with the
// dimension and amounts.
var ErrInsufficient = errors.New("policy: insufficient deflatable resources")

// feasEps is the tolerance used when comparing freed amounts to needs.
const feasEps = 1e-6

// VMState is a policy's view of one deflatable VM.
type VMState struct {
	// Name identifies the VM.
	Name string
	// Max is the nominal undeflated allocation M_i.
	Max resources.Vector
	// Min is the QoS floor m_i (zero vector when the VM has no floor).
	Min resources.Vector
	// Priority is pi in (0,1]; larger values deflate less. Policies that
	// ignore priority (plain proportional) do not read it.
	Priority float64
	// Current is the VM's present allocation.
	Current resources.Vector
	// Load is the VM's offered request load in cores (core-seconds of
	// CPU demand per second), as last observed by the hypervisor. Only
	// latency-aware policies read it; it is zero unless the simulation
	// meters SLOs.
	Load float64
}

// Result is a policy decision in map form.
type Result struct {
	// Targets maps VM name to its new target allocation.
	Targets map[string]resources.Vector
	// Freed is the decrease of total allocation relative to Current
	// (negative components mean the policy reinflated).
	Freed resources.Vector
}

// SliceResult is a policy decision in position-indexed form: Targets[i]
// is the new target allocation for vms[i] of the corresponding
// TargetsInto call. The slice is backed by the Scratch passed in and is
// valid only until that Scratch's next use.
type SliceResult struct {
	Targets []resources.Vector
	Freed   resources.Vector
}

// Scratch holds the reusable buffers a policy pass needs. The zero value
// is ready to use; after a few passes the buffers reach steady-state
// capacity and TargetsInto stops allocating entirely. A Scratch must not
// be shared between concurrent passes — the cluster manager owns one per
// server.
type Scratch struct {
	targets []resources.Vector
	entries []wfEntry
	order   []int
	keys    []float64
	sorter  detSorter
	lsort   latSorter
}

// grow returns s.targets resized to n, reusing capacity.
func (s *Scratch) grow(n int) []resources.Vector {
	if cap(s.targets) < n {
		s.targets = make([]resources.Vector, n)
	} else {
		s.targets = s.targets[:n]
	}
	return s.targets
}

// Policy computes target allocations.
type Policy interface {
	// Name identifies the policy ("proportional", "priority", "deterministic").
	Name() string
	// Targets returns new allocations for vms that free need (per
	// resource, relative to current allocations). Negative need
	// components request reinflation. If the need cannot be fully met the
	// result holds best-effort targets alongside ErrInsufficient.
	Targets(vms []VMState, need resources.Vector) (Result, error)
	// TargetsInto is the allocation-free form of Targets: the same
	// decision, written into buffers owned by s (which may be nil for a
	// one-shot call). On ErrInsufficient the returned targets are still
	// the best-effort decision, exactly as with Targets.
	TargetsInto(vms []VMState, need resources.Vector, s *Scratch) (SliceResult, error)
}

// totals sums Max, Min and Current across vms.
func totals(vms []VMState) (max, min, cur resources.Vector) {
	for _, vm := range vms {
		max = max.Add(vm.Max)
		min = min.Add(vm.Min)
		cur = cur.Add(vm.Current)
	}
	return
}

// finishSlice computes Freed (in input order, so the float summation is
// deterministic) and checks feasibility, returning the bare
// ErrInsufficient sentinel where the need cannot be met.
func finishSlice(vms []VMState, targets []resources.Vector, need resources.Vector) (SliceResult, error) {
	var freed resources.Vector
	for i := range vms {
		freed = freed.Add(vms[i].Current).Sub(targets[i])
	}
	res := SliceResult{Targets: targets, Freed: freed}
	for _, k := range resources.Kinds {
		if freed.Get(k)+feasEps < need.Get(k) {
			return res, ErrInsufficient
		}
	}
	return res, nil
}

// mapTargets adapts a TargetsInto decision to the map form, restoring
// the detailed insufficiency error the slice path elides.
func mapTargets(p Policy, vms []VMState, need resources.Vector) (Result, error) {
	var s Scratch
	sr, err := p.TargetsInto(vms, need, &s)
	targets := make(map[string]resources.Vector, len(vms))
	for i := range vms {
		targets[vms[i].Name] = sr.Targets[i]
	}
	if errors.Is(err, ErrInsufficient) {
		err = describeInsufficient(sr.Freed, need)
	}
	return Result{Targets: targets, Freed: sr.Freed}, err
}

// describeInsufficient formats the first dimension whose need cannot be
// met — the detailed error of the map API.
func describeInsufficient(freed, need resources.Vector) error {
	for _, k := range resources.Kinds {
		if freed.Get(k)+feasEps < need.Get(k) {
			return fmt.Errorf("%w: %s freed %.3f of %.3f needed",
				ErrInsufficient, k, freed.Get(k), need.Get(k))
		}
	}
	return ErrInsufficient
}

// Proportional implements Equations 1 and 2: each VM is deflated in
// proportion to its deflatable range (M_i - m_i), independently per
// resource. With all m_i = 0 this reduces to Equation 1.
type Proportional struct{}

// Name implements Policy.
func (Proportional) Name() string { return "proportional" }

// Targets implements Policy.
func (p Proportional) Targets(vms []VMState, need resources.Vector) (Result, error) {
	return mapTargets(p, vms, need)
}

// TargetsInto implements Policy.
func (Proportional) TargetsInto(vms []VMState, need resources.Vector, s *Scratch) (SliceResult, error) {
	return weightedTargetsInto(vms, need, unitWeight, s)
}

// Priority implements Equations 3 and 4: the deflatable range of VM i is
// weighted by its priority pi, so low-priority VMs absorb more of the
// reclamation. With m_i = pi*M_i this is exactly Equation 4.
type Priority struct{}

// Name implements Policy.
func (Priority) Name() string { return "priority" }

// Targets implements Policy.
func (p Priority) Targets(vms []VMState, need resources.Vector) (Result, error) {
	return mapTargets(p, vms, need)
}

// TargetsInto implements Policy.
func (Priority) TargetsInto(vms []VMState, need resources.Vector, s *Scratch) (SliceResult, error) {
	return weightedTargetsInto(vms, need, priorityWeight, s)
}

// unitWeight and priorityWeight are package-level functions (not
// closures) so passing them down the hot path allocates nothing.
func unitWeight(VMState) float64 { return 1 }

func priorityWeight(vm VMState) float64 {
	p := vm.Priority
	if p <= 0 {
		p = 1e-3 // avoid a zero weight freezing the formula
	}
	return p
}

// weightedTargetsInto computes, per resource k, allocations of the form
//
//	new_i = clamp(m_i + alpha * w_i * (M_i - m_i), m_i, M_i)
//
// with alpha chosen so that the total allocation drops by need[k]
// relative to the current total. VMs that clamp at M_i are frozen and
// alpha is recomputed over the rest (water-filling); this degenerates to
// the paper's closed-form alpha when no clamp binds, and handles
// reinflation (negative need) with the same code path.
func weightedTargetsInto(vms []VMState, need resources.Vector, weight func(VMState) float64, s *Scratch) (SliceResult, error) {
	if s == nil {
		s = &Scratch{}
	}
	targets := s.grow(len(vms))
	for i := range vms {
		targets[i] = vms[i].Min // start from floors, fill below
	}
	_, _, curTotal := totals(vms)

	for _, k := range resources.Kinds {
		// Desired total allocation after this decision.
		desired := curTotal.Get(k) - need.Get(k)
		solveDimension(vms, k, desired, weight, targets, s)
	}
	return finishSlice(vms, targets, need)
}

// wfEntry is one VM's water-filling state for a single dimension.
type wfEntry struct {
	idx     int
	w       float64
	rangeK  float64
	clamped bool
}

// solveDimension performs the per-resource water-filling described on
// weightedTargetsInto, writing new_i into targets[i][k]. All working
// state lives in s.entries, reused across dimensions and passes.
func solveDimension(vms []VMState, k resources.Kind, desired float64, weight func(VMState) float64, targets []resources.Vector, s *Scratch) {
	entries := s.entries[:0]
	floorSum := 0.0
	for i := range vms {
		vm := &vms[i]
		r := vm.Max.Get(k) - vm.Min.Get(k)
		if r < 0 {
			r = 0
		}
		entries = append(entries, wfEntry{idx: i, w: weight(*vm), rangeK: r})
		floorSum += vm.Min.Get(k)
	}
	s.entries = entries

	// Clamp the desired total into the feasible band.
	maxSum := floorSum
	for _, e := range entries {
		maxSum += e.rangeK
	}
	if desired < floorSum {
		desired = floorSum
	}
	if desired > maxSum {
		desired = maxSum
	}

	// Water-filling iterations: at most len(entries) rounds, since each
	// round clamps at least one VM or terminates.
	for round := 0; round <= len(entries); round++ {
		var wSum, clampedSum, freeFloor float64
		for _, e := range entries {
			if e.clamped {
				clampedSum += vms[e.idx].Max.Get(k)
				continue
			}
			wSum += e.w * e.rangeK
			freeFloor += vms[e.idx].Min.Get(k)
		}
		if wSum <= 0 {
			// No deflatable range left: everyone at floor or clamped.
			for i := range entries {
				e := &entries[i]
				v := vms[e.idx].Min.Get(k)
				if e.clamped {
					v = vms[e.idx].Max.Get(k)
				}
				targets[e.idx][k] = v
			}
			return
		}
		alpha := (desired - clampedSum - freeFloor) / wSum
		if alpha < 0 {
			alpha = 0
		}
		newClamp := false
		for i := range entries {
			e := &entries[i]
			if e.clamped {
				continue
			}
			v := vms[e.idx].Min.Get(k) + alpha*e.w*e.rangeK
			if v >= vms[e.idx].Max.Get(k) {
				e.clamped = true
				newClamp = true
			}
		}
		if !newClamp {
			for i := range entries {
				e := &entries[i]
				v := vms[e.idx].Max.Get(k)
				if !e.clamped {
					v = vms[e.idx].Min.Get(k) + alpha*e.w*e.rangeK
				}
				targets[e.idx][k] = v
			}
			return
		}
	}
}

// Deterministic implements Section 5.1.3: deflation is binary — a VM is
// either at its full allocation M_i or at its pre-specified deflated
// level pi*M_i. VMs are deflated lowest-priority first until the need is
// met, and conversely the highest-priority deflated VM is reinflated
// first when resources free up. (The paper's prose says "decreasing
// order of pi"; we deflate in increasing pi order, which is the ordering
// consistent with the paper's reinflation rule — "the highest priority
// VMs are reinflated first" — and with Figure 21's observation that
// deterministic deflation penalises low-priority VMs most.)
type Deterministic struct{}

// Name implements Policy.
func (Deterministic) Name() string { return "deterministic" }

// Targets implements Policy.
func (p Deterministic) Targets(vms []VMState, need resources.Vector) (Result, error) {
	return mapTargets(p, vms, need)
}

// detSorter orders VM indices by (priority, name) ascending. It lives in
// the Scratch so sort.Sort receives a pointer that is already on the
// heap — no per-pass interface or closure allocation (sort.Slice's
// reflect-based swapper is what this avoids).
type detSorter struct {
	vms   []VMState
	order []int
}

func (d *detSorter) Len() int      { return len(d.order) }
func (d *detSorter) Swap(i, j int) { d.order[i], d.order[j] = d.order[j], d.order[i] }
func (d *detSorter) Less(i, j int) bool {
	a, b := &d.vms[d.order[i]], &d.vms[d.order[j]]
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.Name < b.Name
}

// TargetsInto implements Policy.
func (Deterministic) TargetsInto(vms []VMState, need resources.Vector, s *Scratch) (SliceResult, error) {
	if s == nil {
		s = &Scratch{}
	}
	targets := s.grow(len(vms))
	if cap(s.order) < len(vms) {
		s.order = make([]int, len(vms))
	} else {
		s.order = s.order[:len(vms)]
	}
	for i := range s.order {
		s.order[i] = i
	}
	s.sorter.vms, s.sorter.order = vms, s.order
	sort.Sort(&s.sorter)
	s.sorter.vms = nil // do not retain the caller's slice

	// Recompute the deflation set from scratch: walk VMs lowest priority
	// first, deflating until the total allocation is at or below the
	// desired level in every dimension. VMs not needed stay (or return)
	// at full size — this single pass implements both deflation and
	// reinflation deterministically.
	_, _, curTotal := totals(vms)
	desired := curTotal.Sub(need)

	var total resources.Vector
	for _, i := range s.order {
		targets[i] = vms[i].Max
		total = total.Add(vms[i].Max)
	}
	for _, i := range s.order {
		if total.FitsIn(desired) {
			break
		}
		deflated := vms[i].Max.Scale(vms[i].Priority).Max(vms[i].Min)
		total = total.Sub(vms[i].Max).Add(deflated)
		targets[i] = deflated
	}
	return finishSlice(vms, targets, need)
}

// DefaultMaxSlowdown is the SLO threshold a zero-configured LatencyAware
// policy protects: request sojourn times may stretch at most 3x relative
// to the undeflated VM.
const DefaultMaxSlowdown = 3.0

// LatencyAware deflates the VMs with the most latency headroom first.
// For each VM it combines the closed-form processor-sharing model with
// the application's deflation-response curve to answer "how far can this
// VM deflate before its offered load pushes request slowdown past the
// SLO threshold?", then reclaims capacity greedily from the VMs whose
// answer is deepest. Like Deterministic it recomputes the deflation set
// from scratch on every pass, so reinflation falls out of the same code
// path; unlike the proportional family it is load-sensitive — an idle VM
// absorbs reclamation before a loaded one regardless of priority.
//
// The decision is two-phase: first every selected VM is deflated only to
// its latency-safe allocation (the SLO holds for all residents); only if
// the need still cannot be met does a second pass push VMs on down to
// their QoS floors, again most-headroom-first, accepting SLO violations
// on as few VMs as possible. Both walks follow the same strict total
// order (safe fraction ascending, then name), so the decision is
// bit-for-bit reproducible.
type LatencyAware struct {
	// Curve maps deflation to retained performance. The zero value means
	// the conservative worst-case linear assumption of Section 5.
	Curve perfmodel.Curve
	// MaxSlowdown is the SLO threshold: the largest tolerable sojourn
	// ratio versus the undeflated VM. Values below 1 (including zero)
	// select DefaultMaxSlowdown.
	MaxSlowdown float64
}

// Name implements Policy.
func (LatencyAware) Name() string { return "latency" }

// Targets implements Policy.
func (p LatencyAware) Targets(vms []VMState, need resources.Vector) (Result, error) {
	return mapTargets(p, vms, need)
}

// latSorter orders VM indices by (safe fraction, name) ascending: the
// VMs that can deflate deepest without violating their SLO come first.
// It lives in the Scratch for the same reason as detSorter — sort.Sort
// gets an already-heap-allocated pointer, so the pass allocates nothing.
type latSorter struct {
	vms   []VMState
	keys  []float64
	order []int
}

func (l *latSorter) Len() int      { return len(l.order) }
func (l *latSorter) Swap(i, j int) { l.order[i], l.order[j] = l.order[j], l.order[i] }
func (l *latSorter) Less(i, j int) bool {
	a, b := l.order[i], l.order[j]
	if l.keys[a] != l.keys[b] {
		return l.keys[a] < l.keys[b]
	}
	return l.vms[a].Name < l.vms[b].Name
}

// safeFraction returns the smallest fraction of its nominal size the VM
// can shrink to while keeping request slowdown within maxSlowdown: the
// PS model gives the minimal effective capacity the load needs, and the
// curve inversion converts that into an allocation (effective capacity
// and allocation differ whenever the curve has slack).
func safeFraction(vm *VMState, curve perfmodel.Curve, maxSlowdown float64) float64 {
	fullCap := vm.Max.Get(resources.CPU)
	if fullCap <= 0 {
		return 0
	}
	needCap := queueing.PSCapacityForSlowdown(vm.Load, fullCap, maxSlowdown)
	return 1 - curve.DeflationFor(needCap/fullCap)
}

// TargetsInto implements Policy.
func (p LatencyAware) TargetsInto(vms []VMState, need resources.Vector, s *Scratch) (SliceResult, error) {
	if s == nil {
		s = &Scratch{}
	}
	curve := p.Curve
	if curve == (perfmodel.Curve{}) {
		curve = perfmodel.WorstCaseLinear
	}
	maxS := p.MaxSlowdown
	if maxS < 1 {
		maxS = DefaultMaxSlowdown
	}

	targets := s.grow(len(vms))
	if cap(s.order) < len(vms) {
		s.order = make([]int, len(vms))
	} else {
		s.order = s.order[:len(vms)]
	}
	if cap(s.keys) < len(vms) {
		s.keys = make([]float64, len(vms))
	} else {
		s.keys = s.keys[:len(vms)]
	}
	for i := range vms {
		s.order[i] = i
		s.keys[i] = safeFraction(&vms[i], curve, maxS)
	}
	s.lsort.vms, s.lsort.keys, s.lsort.order = vms, s.keys, s.order
	sort.Sort(&s.lsort)
	s.lsort.vms = nil // do not retain the caller's slice

	_, _, curTotal := totals(vms)
	desired := curTotal.Sub(need)

	var total resources.Vector
	for i := range vms {
		targets[i] = vms[i].Max
		total = total.Add(vms[i].Max)
	}
	// Phase 1: deflate to latency-safe allocations, most headroom first.
	for _, i := range s.order {
		if total.FitsIn(desired) {
			break
		}
		safe := vms[i].Max.Scale(s.keys[i]).Max(vms[i].Min)
		total = total.Sub(targets[i]).Add(safe)
		targets[i] = safe
	}
	// Phase 2: the SLO budget is exhausted — push on to the QoS floors in
	// the same order, so violations land on the fewest VMs possible.
	for _, i := range s.order {
		if total.FitsIn(desired) {
			break
		}
		total = total.Sub(targets[i]).Add(vms[i].Min)
		targets[i] = vms[i].Min
	}
	return finishSlice(vms, targets, need)
}

// ByName returns the policy with the given name.
func ByName(name string) (Policy, error) {
	switch name {
	case "proportional":
		return Proportional{}, nil
	case "priority":
		return Priority{}, nil
	case "deterministic":
		return Deterministic{}, nil
	case "latency":
		return LatencyAware{}, nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q", name)
}

// PriorityFromP95 derives a VM's deflation priority from the 95th
// percentile of its CPU utilisation, quantised into nlevels levels in
// (0, 1], as done by the paper's cluster simulation (Section 7.1.2):
// high-utilisation VMs get high priority and are deflated less.
func PriorityFromP95(p95 float64, nlevels int) float64 {
	if nlevels < 1 {
		nlevels = 1
	}
	if p95 < 0 {
		p95 = 0
	}
	if p95 > 100 {
		p95 = 100
	}
	level := int(p95 / (100.0 / float64(nlevels)))
	if level >= nlevels {
		level = nlevels - 1
	}
	return float64(level+1) / float64(nlevels)
}
