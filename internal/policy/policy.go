// Package policy implements the server-level deflation policies of
// Section 5.1: proportional deflation (Equations 1-2), priority-weighted
// proportional deflation (Equations 3-4), and deterministic deflation,
// plus reinflation for all three ("run the proportional deflation
// backwards", Section 5.1.3).
//
// A policy is a pure function: given the deflatable VMs on a server and
// the amount of each resource that must be freed relative to the current
// allocations, it returns a new target allocation per VM. Mechanisms
// (package mechanism) then apply the targets. Policies never choose to
// preempt; if even maximal deflation cannot satisfy the need they report
// ErrInsufficient and the caller (cluster manager) rejects the request —
// that is the "failure probability" measured in Figure 20.
package policy

import (
	"errors"
	"fmt"
	"sort"

	"vmdeflate/internal/resources"
)

// ErrInsufficient reports that even deflating every VM to its floor
// cannot free the requested amount.
var ErrInsufficient = errors.New("policy: insufficient deflatable resources")

// VMState is a policy's view of one deflatable VM.
type VMState struct {
	// Name identifies the VM.
	Name string
	// Max is the nominal undeflated allocation M_i.
	Max resources.Vector
	// Min is the QoS floor m_i (zero vector when the VM has no floor).
	Min resources.Vector
	// Priority is pi in (0,1]; larger values deflate less. Policies that
	// ignore priority (plain proportional) do not read it.
	Priority float64
	// Current is the VM's present allocation.
	Current resources.Vector
}

// Result is a policy decision.
type Result struct {
	// Targets maps VM name to its new target allocation.
	Targets map[string]resources.Vector
	// Freed is the decrease of total allocation relative to Current
	// (negative components mean the policy reinflated).
	Freed resources.Vector
}

// Policy computes target allocations.
type Policy interface {
	// Name identifies the policy ("proportional", "priority", "deterministic").
	Name() string
	// Targets returns new allocations for vms that free need (per
	// resource, relative to current allocations). Negative need
	// components request reinflation. If the need cannot be fully met the
	// result holds best-effort targets alongside ErrInsufficient.
	Targets(vms []VMState, need resources.Vector) (Result, error)
}

// totals sums Max, Min and Current across vms.
func totals(vms []VMState) (max, min, cur resources.Vector) {
	for _, vm := range vms {
		max = max.Add(vm.Max)
		min = min.Add(vm.Min)
		cur = cur.Add(vm.Current)
	}
	return
}

func buildResult(vms []VMState, targets map[string]resources.Vector) Result {
	var freed resources.Vector
	for _, vm := range vms {
		freed = freed.Add(vm.Current).Sub(targets[vm.Name])
	}
	return Result{Targets: targets, Freed: freed}
}

// checkFeasible compares the achievable reclaim against need and wraps
// res with ErrInsufficient where the need cannot be met.
func checkFeasible(res Result, need resources.Vector) (Result, error) {
	const eps = 1e-6
	for _, k := range resources.Kinds {
		if res.Freed.Get(k)+eps < need.Get(k) {
			return res, fmt.Errorf("%w: %s freed %.3f of %.3f needed",
				ErrInsufficient, k, res.Freed.Get(k), need.Get(k))
		}
	}
	return res, nil
}

// Proportional implements Equations 1 and 2: each VM is deflated in
// proportion to its deflatable range (M_i - m_i), independently per
// resource. With all m_i = 0 this reduces to Equation 1.
type Proportional struct{}

// Name implements Policy.
func (Proportional) Name() string { return "proportional" }

// Targets implements Policy.
func (Proportional) Targets(vms []VMState, need resources.Vector) (Result, error) {
	return weightedTargets(vms, need, func(VMState) float64 { return 1 })
}

// Priority implements Equations 3 and 4: the deflatable range of VM i is
// weighted by its priority pi, so low-priority VMs absorb more of the
// reclamation. With m_i = pi*M_i this is exactly Equation 4.
type Priority struct{}

// Name implements Policy.
func (Priority) Name() string { return "priority" }

// Targets implements Policy.
func (Priority) Targets(vms []VMState, need resources.Vector) (Result, error) {
	return weightedTargets(vms, need, func(vm VMState) float64 {
		p := vm.Priority
		if p <= 0 {
			p = 1e-3 // avoid a zero weight freezing the formula
		}
		return p
	})
}

// weightedTargets computes, per resource k, allocations of the form
//
//	new_i = clamp(m_i + alpha * w_i * (M_i - m_i), m_i, M_i)
//
// with alpha chosen so that the total allocation drops by need[k]
// relative to the current total. VMs that clamp at M_i are frozen and
// alpha is recomputed over the rest (water-filling); this degenerates to
// the paper's closed-form alpha when no clamp binds, and handles
// reinflation (negative need) with the same code path.
func weightedTargets(vms []VMState, need resources.Vector, weight func(VMState) float64) (Result, error) {
	targets := make(map[string]resources.Vector, len(vms))
	for _, vm := range vms {
		targets[vm.Name] = vm.Min // start from floors, fill below
	}
	_, _, curTotal := totals(vms)

	for _, k := range resources.Kinds {
		// Desired total allocation after this decision.
		desired := curTotal.Get(k) - need.Get(k)
		solveDimension(vms, k, desired, weight, targets)
	}
	res := buildResult(vms, targets)
	return checkFeasible(res, need)
}

// solveDimension performs the per-resource water-filling described on
// weightedTargets, writing new_i into targets[name][k].
func solveDimension(vms []VMState, k resources.Kind, desired float64, weight func(VMState) float64, targets map[string]resources.Vector) {
	type entry struct {
		vm      *VMState
		w       float64
		rangeK  float64
		clamped bool
	}
	entries := make([]entry, 0, len(vms))
	floorSum := 0.0
	for i := range vms {
		vm := &vms[i]
		r := vm.Max.Get(k) - vm.Min.Get(k)
		if r < 0 {
			r = 0
		}
		entries = append(entries, entry{vm: vm, w: weight(*vm), rangeK: r})
		floorSum += vm.Min.Get(k)
	}

	// Clamp the desired total into the feasible band.
	maxSum := floorSum
	for _, e := range entries {
		maxSum += e.rangeK
	}
	if desired < floorSum {
		desired = floorSum
	}
	if desired > maxSum {
		desired = maxSum
	}

	// Water-filling iterations: at most len(entries) rounds, since each
	// round clamps at least one VM or terminates.
	for round := 0; round <= len(entries); round++ {
		var wSum, clampedSum, freeFloor float64
		for _, e := range entries {
			if e.clamped {
				clampedSum += e.vm.Max.Get(k)
				continue
			}
			wSum += e.w * e.rangeK
			freeFloor += e.vm.Min.Get(k)
		}
		if wSum <= 0 {
			// No deflatable range left: everyone at floor or clamped.
			for i := range entries {
				e := &entries[i]
				v := e.vm.Min.Get(k)
				if e.clamped {
					v = e.vm.Max.Get(k)
				}
				targets[e.vm.Name] = targets[e.vm.Name].With(k, v)
			}
			return
		}
		alpha := (desired - clampedSum - freeFloor) / wSum
		if alpha < 0 {
			alpha = 0
		}
		newClamp := false
		for i := range entries {
			e := &entries[i]
			if e.clamped {
				continue
			}
			v := e.vm.Min.Get(k) + alpha*e.w*e.rangeK
			if v >= e.vm.Max.Get(k) {
				e.clamped = true
				newClamp = true
			}
		}
		if !newClamp {
			for i := range entries {
				e := &entries[i]
				v := e.vm.Max.Get(k)
				if !e.clamped {
					v = e.vm.Min.Get(k) + alpha*e.w*e.rangeK
				}
				targets[e.vm.Name] = targets[e.vm.Name].With(k, v)
			}
			return
		}
	}
}

// Deterministic implements Section 5.1.3: deflation is binary — a VM is
// either at its full allocation M_i or at its pre-specified deflated
// level pi*M_i. VMs are deflated lowest-priority first until the need is
// met, and conversely the highest-priority deflated VM is reinflated
// first when resources free up. (The paper's prose says "decreasing
// order of pi"; we deflate in increasing pi order, which is the ordering
// consistent with the paper's reinflation rule — "the highest priority
// VMs are reinflated first" — and with Figure 21's observation that
// deterministic deflation penalises low-priority VMs most.)
type Deterministic struct{}

// Name implements Policy.
func (Deterministic) Name() string { return "deterministic" }

// Targets implements Policy.
func (Deterministic) Targets(vms []VMState, need resources.Vector) (Result, error) {
	order := make([]*VMState, len(vms))
	for i := range vms {
		order[i] = &vms[i]
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Priority != order[j].Priority {
			return order[i].Priority < order[j].Priority
		}
		return order[i].Name < order[j].Name
	})

	// Recompute the deflation set from scratch: walk VMs lowest priority
	// first, deflating until the total allocation is at or below the
	// desired level in every dimension. VMs not needed stay (or return)
	// at full size — this single pass implements both deflation and
	// reinflation deterministically.
	_, _, curTotal := totals(vms)
	desired := curTotal.Sub(need)

	targets := make(map[string]resources.Vector, len(vms))
	var total resources.Vector
	for _, vm := range order {
		targets[vm.Name] = vm.Max
		total = total.Add(vm.Max)
	}
	for _, vm := range order {
		if total.FitsIn(desired) {
			break
		}
		deflated := vm.Max.Scale(vm.Priority).Max(vm.Min)
		total = total.Sub(vm.Max).Add(deflated)
		targets[vm.Name] = deflated
	}
	res := buildResult(vms, targets)
	return checkFeasible(res, need)
}

// ByName returns the policy with the given name.
func ByName(name string) (Policy, error) {
	switch name {
	case "proportional":
		return Proportional{}, nil
	case "priority":
		return Priority{}, nil
	case "deterministic":
		return Deterministic{}, nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q", name)
}

// PriorityFromP95 derives a VM's deflation priority from the 95th
// percentile of its CPU utilisation, quantised into nlevels levels in
// (0, 1], as done by the paper's cluster simulation (Section 7.1.2):
// high-utilisation VMs get high priority and are deflated less.
func PriorityFromP95(p95 float64, nlevels int) float64 {
	if nlevels < 1 {
		nlevels = 1
	}
	if p95 < 0 {
		p95 = 0
	}
	if p95 > 100 {
		p95 = 100
	}
	level := int(p95 / (100.0 / float64(nlevels)))
	if level >= nlevels {
		level = nlevels - 1
	}
	return float64(level+1) / float64(nlevels)
}
