package policy

import (
	"testing"

	"vmdeflate/internal/perfmodel"
	"vmdeflate/internal/queueing"
	"vmdeflate/internal/resources"
)

func loadedVM(name string, cores, load float64) VMState {
	v := vm(name, cores, 1024, 0.5)
	v.Load = load
	return v
}

// TestLatencyAwareSparesLoadedVMs: with enough idle headroom, the loaded
// VMs are never touched — the idle VM absorbs the whole reclamation.
func TestLatencyAwareSparesLoadedVMs(t *testing.T) {
	vms := []VMState{
		loadedVM("hot", 8, 7),
		loadedVM("idle", 8, 0),
		loadedVM("warm", 8, 4),
	}
	res, err := LatencyAware{}.Targets(vms, resources.New(3, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Targets["idle"].Get(resources.CPU); got != 0 {
		t.Errorf("idle VM deflated to %g cores, want 0 (no floor, no load)", got)
	}
	for _, n := range []string{"hot", "warm"} {
		if got := res.Targets[n].Get(resources.CPU); got != 8 {
			t.Errorf("%s deflated to %g cores, want untouched at 8", n, got)
		}
	}
}

// TestLatencyAwareSafeTarget pins the safe allocation to the closed-form
// model: a VM deflated in phase 1 lands exactly at the capacity its load
// needs to stay within MaxSlowdown (worst-case curve: allocation ==
// effective capacity).
func TestLatencyAwareSafeTarget(t *testing.T) {
	vms := []VMState{loadedVM("a", 8, 4), loadedVM("b", 8, 6)}
	// Need 3 cores: both VMs must give up some, but their safe targets
	// (5.333 and 6.667 -> 4 cores freed) cover it within phase 1.
	res, err := LatencyAware{MaxSlowdown: 3}.Targets(vms, resources.New(3, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	wantA := queueing.PSCapacityForSlowdown(4, 8, 3)
	if got := res.Targets["a"].Get(resources.CPU); !almost(got, wantA) {
		t.Errorf("a deflated to %g cores, want safe target %g", got, wantA)
	}
	// b (less headroom) is only deflated because a alone cannot cover the
	// need; it too stops at its safe target.
	wantB := queueing.PSCapacityForSlowdown(6, 8, 3)
	if got := res.Targets["b"].Get(resources.CPU); !almost(got, wantB) {
		t.Errorf("b deflated to %g cores, want safe target %g", got, wantB)
	}
}

// TestLatencyAwareTwoPhase: when the need exceeds what latency-safe
// deflation can free, phase 2 pushes VMs to their floors — most headroom
// first, so the violation lands on as few VMs as possible.
func TestLatencyAwareTwoPhase(t *testing.T) {
	a, b := loadedVM("a", 8, 4), loadedVM("b", 8, 6)
	a.Min = resources.New(1, 0, 0, 0)
	b.Min = resources.New(1, 0, 0, 0)
	res, err := LatencyAware{MaxSlowdown: 3}.Targets([]VMState{a, b}, resources.New(6, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Targets["a"].Get(resources.CPU); !almost(got, 1) {
		t.Errorf("a should hit its floor in phase 2: got %g cores, want 1", got)
	}
	wantB := queueing.PSCapacityForSlowdown(6, 8, 3)
	if got := res.Targets["b"].Get(resources.CPU); !almost(got, wantB) {
		t.Errorf("b should stay at its safe target %g, got %g", wantB, got)
	}
	if res.Freed.Get(resources.CPU)+feasEps < 6 {
		t.Errorf("freed %g cores, need 6", res.Freed.Get(resources.CPU))
	}
}

// TestLatencyAwareReinflation: like Deterministic, the set is recomputed
// from scratch, so a negative need simply restores everyone to Max.
func TestLatencyAwareReinflation(t *testing.T) {
	vms := []VMState{loadedVM("a", 8, 4), loadedVM("b", 8, 0)}
	vms[0].Current = resources.New(5, 1024, 0, 0)
	vms[1].Current = resources.New(1, 1024, 0, 0)
	res, err := LatencyAware{}.Targets(vms, resources.New(-10, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b"} {
		if got := res.Targets[n].Get(resources.CPU); got != 8 {
			t.Errorf("%s reinflated to %g cores, want 8", n, got)
		}
	}
}

// TestLatencyAwareSlackCurve: an application curve with slack lets the
// policy deflate far below the load while still delivering the needed
// effective capacity — the curve composition the worst-case assumption
// leaves on the table.
func TestLatencyAwareSlackCurve(t *testing.T) {
	run := func(c perfmodel.Curve) float64 {
		vms := []VMState{loadedVM("a", 8, 4)}
		res, err := LatencyAware{Curve: c, MaxSlowdown: 3}.Targets(vms, resources.New(2, 0, 0, 0))
		if err != nil {
			t.Fatal(err)
		}
		return res.Targets["a"].Get(resources.CPU)
	}
	worst := run(perfmodel.WorstCaseLinear)
	mem := run(perfmodel.Memcached)
	if mem >= worst {
		t.Fatalf("memcached target %g cores should be below worst-case %g", mem, worst)
	}
	needCap := queueing.PSCapacityForSlowdown(4, 8, 3)
	if got := perfmodel.Memcached.EffectiveCapacity(8, mem); got+1e-9 < needCap {
		t.Errorf("memcached target %g delivers %g effective cores, need %g", mem, got, needCap)
	}
}

// TestLatencyAwareOrderIndependent: the decision is a function of the VM
// set, not of slice order — the (safe fraction, name) sort is a strict
// total order even among identical VMs.
func TestLatencyAwareOrderIndependent(t *testing.T) {
	mk := func(names ...string) []VMState {
		out := make([]VMState, len(names))
		for i, n := range names {
			out[i] = loadedVM(n, 8, 4)
		}
		return out
	}
	need := resources.New(2, 0, 0, 0) // one VM's safe deflation covers it
	for _, perm := range [][]string{{"a", "b", "c"}, {"c", "a", "b"}, {"b", "c", "a"}} {
		res, err := LatencyAware{}.Targets(mk(perm...), need)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Targets["a"].Get(resources.CPU); got == 8 {
			t.Errorf("perm %v: tie-break should deflate a first, but a is untouched", perm)
		}
		for _, n := range []string{"b", "c"} {
			if got := res.Targets[n].Get(resources.CPU); got != 8 {
				t.Errorf("perm %v: %s deflated to %g, want untouched", perm, n, got)
			}
		}
	}
}

// TestLatencyAwareInsufficient: floors bound the policy exactly like
// every other policy, so admission decisions (and hence admitted load)
// cannot differ between latency-aware and proportional.
func TestLatencyAwareInsufficient(t *testing.T) {
	a := loadedVM("a", 4, 0)
	a.Min = resources.New(2, 512, 0, 0)
	res, err := LatencyAware{}.Targets([]VMState{a}, resources.New(3, 0, 0, 0))
	if err == nil {
		t.Fatal("need beyond floors should fail")
	}
	if got := res.Targets["a"].Get(resources.CPU); !almost(got, 2) {
		t.Errorf("best-effort target %g cores, want floor 2", got)
	}
}
