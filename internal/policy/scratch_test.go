package policy

import (
	"errors"
	"testing"
	"testing/quick"

	"vmdeflate/internal/resources"
)

// TestTargetsIntoMatchesTargets is the scratch-API differential: for
// randomized fleets and needs, the slice-backed TargetsInto and the
// map-backed Targets must produce bit-for-bit identical targets and
// Freed vectors, and agree on feasibility, for every policy.
func TestTargetsIntoMatchesTargets(t *testing.T) {
	policies := []Policy{Proportional{}, Priority{}, Deterministic{}}
	var scratch Scratch // deliberately reused across iterations
	f := func(sizes []uint8, needRaw uint16, pi uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		vms := make([]VMState, len(sizes))
		for i, s := range sizes {
			cores := float64(s%16) + 1
			prio := float64(s%4+1) / 4
			v := vm(string(rune('a'+i)), cores, cores*1024, prio)
			v.Min = v.Max.Scale(float64(s%3) * 0.2)
			if s%5 == 0 {
				v.Current = v.Max.Scale(0.5) // some already deflated
			}
			vms[i] = v
		}
		need := resources.New(float64(needRaw%64)-8, (float64(needRaw%64)-8)*512, 0, 0)
		p := policies[int(pi)%len(policies)]

		mapRes, mapErr := p.Targets(vms, need)
		sliceRes, sliceErr := p.TargetsInto(vms, need, &scratch)

		if errors.Is(mapErr, ErrInsufficient) != errors.Is(sliceErr, ErrInsufficient) {
			t.Logf("feasibility disagreement: map=%v slice=%v", mapErr, sliceErr)
			return false
		}
		if mapRes.Freed != sliceRes.Freed {
			t.Logf("freed: map=%v slice=%v", mapRes.Freed, sliceRes.Freed)
			return false
		}
		if len(sliceRes.Targets) != len(vms) || len(mapRes.Targets) != len(vms) {
			return false
		}
		for i := range vms {
			if mapRes.Targets[vms[i].Name] != sliceRes.Targets[i] {
				t.Logf("%s: map=%v slice=%v", vms[i].Name, mapRes.Targets[vms[i].Name], sliceRes.Targets[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}

// TestTargetsIntoZeroAllocs asserts the scratch API's reason to exist:
// once the Scratch buffers are warm, a policy pass performs zero heap
// allocations — for all three policies, both deflation and reinflation.
func TestTargetsIntoZeroAllocs(t *testing.T) {
	vms := []VMState{
		vm("a", 8, 8192, 0.25),
		vm("b", 8, 8192, 0.50),
		vm("c", 4, 4096, 0.75),
		vm("d", 16, 16384, 1.0),
	}
	deflate := resources.New(10, 10240, 0, 0)
	reinflate := resources.New(-10, -10240, 0, 0)
	for _, p := range []Policy{Proportional{}, Priority{}, Deterministic{}} {
		var s Scratch
		for _, need := range []resources.Vector{deflate, reinflate} {
			need := need
			got := testing.AllocsPerRun(200, func() {
				if _, err := p.TargetsInto(vms, need, &s); err != nil {
					t.Fatal(err)
				}
			})
			if got != 0 {
				t.Errorf("%s: TargetsInto(need=%v) allocates %.1f allocs/op, want 0", p.Name(), need, got)
			}
		}
	}
}

// TestTargetsIntoNilScratch keeps the one-shot form working: a nil
// Scratch must behave exactly like a fresh one.
func TestTargetsIntoNilScratch(t *testing.T) {
	vms := []VMState{vm("a", 8, 8192, 0.5), vm("b", 4, 4096, 0.5)}
	need := resources.New(6, 6144, 0, 0)
	for _, p := range []Policy{Proportional{}, Priority{}, Deterministic{}} {
		var s Scratch
		withScratch, err1 := p.TargetsInto(vms, need, &s)
		nilScratch, err2 := p.TargetsInto(vms, need, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: err mismatch: %v vs %v", p.Name(), err1, err2)
		}
		if withScratch.Freed != nilScratch.Freed {
			t.Errorf("%s: freed mismatch", p.Name())
		}
		for i := range vms {
			if withScratch.Targets[i] != nilScratch.Targets[i] {
				t.Errorf("%s: target %d mismatch", p.Name(), i)
			}
		}
	}
}
