package perfmodel

import (
	"math"
	"testing"
)

// TestDeflationForInvertsPerformance checks the analytic inverse on a
// dense grid over every calibrated curve: the returned deflation must
// achieve at least the asked-for performance, and deflating any
// materially further must drop below it (largest-d semantics).
func TestDeflationForInvertsPerformance(t *testing.T) {
	curves := map[string]Curve{
		"worst-case": WorstCaseLinear,
		"specjbb":    SpecJBB,
		"kcompile":   Kcompile,
		"memcached":  Memcached,
	}
	for name, c := range curves {
		for p := 0.05; p < 1.0; p += 0.05 {
			d := c.DeflationFor(p)
			if d < 0 || d > 1 {
				t.Fatalf("%s: DeflationFor(%g) = %g outside [0,1]", name, p, d)
			}
			if got := c.Performance(d); got+1e-9 < p {
				t.Errorf("%s: DeflationFor(%g) = %g but Performance there is %g", name, p, d, got)
			}
			if d+0.01 < 1 {
				if got := c.Performance(d + 0.01); got > p+1e-9 {
					t.Errorf("%s: DeflationFor(%g) = %g not maximal: d+0.01 still yields %g", name, p, d, got)
				}
			}
		}
		if got := c.DeflationFor(1); math.Abs(got-c.Slack) > 1e-12 {
			t.Errorf("%s: DeflationFor(1) = %g, want slack %g", name, got, c.Slack)
		}
		if got := c.DeflationFor(0); got != 1 {
			t.Errorf("%s: DeflationFor(0) = %g, want 1", name, got)
		}
	}
}

// TestEffectiveCapacity pins the allocation -> service-rate map for the
// worst-case linear curve (rate == allocation) and a slack curve (rate
// stays nominal through the slack region).
func TestEffectiveCapacity(t *testing.T) {
	if got := WorstCaseLinear.EffectiveCapacity(8, 6); math.Abs(got-6) > 1e-12 {
		t.Errorf("worst-case EffectiveCapacity(8, 6) = %g, want 6", got)
	}
	// Memcached has 0.35 slack: deflating 8 cores to 6 (d=0.25) costs
	// nothing.
	if got := Memcached.EffectiveCapacity(8, 6); math.Abs(got-8) > 1e-12 {
		t.Errorf("memcached EffectiveCapacity(8, 6) = %g, want 8", got)
	}
	if got := WorstCaseLinear.EffectiveCapacity(0, 0); got != 0 {
		t.Errorf("EffectiveCapacity(0, 0) = %g, want 0", got)
	}
}
