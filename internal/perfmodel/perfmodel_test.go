package perfmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCurveRegions(t *testing.T) {
	c := Curve{Slack: 0.3, Knee: 0.7, LossAtKnee: 0.4, CollapseExp: 2}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Slack region: flat at 1.
	for _, d := range []float64{0, 0.1, 0.3} {
		if got := c.Performance(d); got != 1 {
			t.Errorf("Performance(%v) = %v, want 1", d, got)
		}
	}
	// Linear region: midpoint has half the knee loss.
	if got := c.Performance(0.5); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("Performance(0.5) = %v, want 0.8", got)
	}
	if got := c.Performance(0.7); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("Performance(knee) = %v, want 0.6", got)
	}
	// Collapse region: below linear extrapolation, reaching 0 at 1.
	if got := c.Performance(0.9); got >= 0.6 || got <= 0 {
		t.Errorf("Performance(0.9) = %v, want in (0, 0.6)", got)
	}
	if got := c.Performance(1); got != 0 {
		t.Errorf("Performance(1) = %v, want 0", got)
	}
	if got := c.Performance(1.5); got != 0 {
		t.Errorf("clamp above 1: %v", got)
	}
	if got := c.Performance(-0.5); got != 1 {
		t.Errorf("clamp below 0: %v", got)
	}
}

func TestDegenerateKneeEqualsSlack(t *testing.T) {
	c := Curve{Slack: 0.5, Knee: 0.5, LossAtKnee: 0.2, CollapseExp: 1}
	// At the boundary the slack region wins (performance 1); just past it
	// the collapse region starts from 1-LossAtKnee.
	if got := c.Performance(0.5); got != 1 {
		t.Errorf("Performance at slack boundary = %v, want 1", got)
	}
	if got := c.Performance(0.500001); got > 0.8+1e-6 {
		t.Errorf("Performance just past degenerate knee = %v, want <= 0.8", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Curve{
		{Slack: -0.1, Knee: 0.5},
		{Slack: 0.6, Knee: 0.5},
		{Slack: 0.1, Knee: 1.1},
		{Slack: 0.1, Knee: 0.5, LossAtKnee: 1.5},
		{Slack: 0.1, Knee: 0.5, LossAtKnee: 0.5, CollapseExp: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, c)
		}
	}
	for name, c := range Profiles {
		if err := c.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
	if err := WorstCaseLinear.Validate(); err != nil {
		t.Errorf("worst-case linear invalid: %v", err)
	}
}

func TestWorstCaseLinear(t *testing.T) {
	for _, d := range []float64{0, 0.25, 0.5, 0.75} {
		if got := WorstCaseLinear.Performance(d); math.Abs(got-(1-d)) > 1e-9 {
			t.Errorf("worst case at %v = %v, want %v", d, got, 1-d)
		}
	}
}

func TestSlowdown(t *testing.T) {
	c := WorstCaseLinear
	if got := c.Slowdown(0.5, 100); math.Abs(got-2) > 1e-9 {
		t.Errorf("Slowdown(0.5) = %v, want 2", got)
	}
	if got := c.Slowdown(0.999, 10); got != 10 {
		t.Errorf("Slowdown should saturate: %v", got)
	}
	if got := c.Slowdown(1, 10); got != 10 {
		t.Errorf("Slowdown at zero perf: %v", got)
	}
}

// Figure 3's qualitative content: SpecJBB has no slack, memcached has the
// most; at moderate deflation memcached > kcompile > specjbb.
func TestFigure3Ordering(t *testing.T) {
	if SpecJBB.Performance(0.05) >= 1 {
		t.Error("SpecJBB should degrade immediately (no slack)")
	}
	if Memcached.Performance(0.3) != 1 {
		t.Error("Memcached should still be unaffected at 30% deflation")
	}
	d := 0.5
	sj, kc, mc := SpecJBB.Performance(d), Kcompile.Performance(d), Memcached.Performance(d)
	if !(mc > kc && kc > sj) {
		t.Errorf("at 50%% deflation want memcached > kcompile > specjbb, got %v, %v, %v", mc, kc, sj)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("specjbb"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown profile should fail")
	}
}

func TestThroughputLoss(t *testing.T) {
	util := []float64{20, 40, 60, 80}
	// alloc 50: excess = 10+30 = 40 of demand 200 -> 0.2.
	if got := ThroughputLoss(util, 50); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("ThroughputLoss = %v, want 0.2", got)
	}
	if got := ThroughputLoss(util, 100); got != 0 {
		t.Errorf("no loss expected: %v", got)
	}
	if got := ThroughputLoss(nil, 50); got != 0 {
		t.Errorf("empty trace loss = %v", got)
	}
	if got := ThroughputLoss([]float64{0, 0}, 50); got != 0 {
		t.Errorf("zero demand loss = %v", got)
	}
}

// Property: every valid curve is monotone non-increasing in deflation and
// bounded in [0,1].
func TestQuickCurveMonotone(t *testing.T) {
	f := func(sRaw, kRaw, lRaw, eRaw uint8, d1Raw, d2Raw uint8) bool {
		s := float64(sRaw) / 255 * 0.8
		k := s + float64(kRaw)/255*(1-s)
		c := Curve{
			Slack: s, Knee: k,
			LossAtKnee:  float64(lRaw) / 255,
			CollapseExp: 0.5 + float64(eRaw)/64,
		}
		if c.Validate() != nil {
			return true
		}
		d1 := float64(d1Raw) / 255
		d2 := float64(d2Raw) / 255
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		p1, p2 := c.Performance(d1), c.Performance(d2)
		return p1 >= p2-1e-9 && p1 <= 1 && p2 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
