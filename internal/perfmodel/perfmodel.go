// Package perfmodel captures the abstract application-behaviour model of
// Section 3.1 (Figure 2): performance under deflation has a slack region
// (no impact), a linear degradation region, and a knee beyond which
// performance collapses. Calibrated per-application curves reproduce
// Figure 3, and the worst-case linear assumption used by the cluster
// policies ("our policies assume the worst-case linear correlation
// between deflation and performance", Section 5) is available as
// WorstCaseLinear.
package perfmodel

import (
	"fmt"
	"math"
)

// Curve is a slack/linear/knee deflation-response curve. Deflation d and
// performance are normalised to [0, 1]; Performance(0) = 1.
type Curve struct {
	// Slack is the deflation fraction that can be reclaimed with no
	// performance impact (the flat region of Figure 2).
	Slack float64
	// Knee is the deflation fraction where collapse begins.
	Knee float64
	// LossAtKnee is the performance lost by the time deflation reaches
	// the knee (the linear region's total drop).
	LossAtKnee float64
	// CollapseExp shapes the post-knee region: performance falls like
	// ((1-d)/(1-knee))^CollapseExp toward zero at d=1. Values > 1 give
	// the precipitous drop of Figure 2.
	CollapseExp float64
}

// Validate reports configuration errors.
func (c Curve) Validate() error {
	if c.Slack < 0 || c.Slack > 1 {
		return fmt.Errorf("perfmodel: slack %g outside [0,1]", c.Slack)
	}
	if c.Knee < c.Slack || c.Knee > 1 {
		return fmt.Errorf("perfmodel: knee %g outside [slack,1]", c.Knee)
	}
	if c.LossAtKnee < 0 || c.LossAtKnee > 1 {
		return fmt.Errorf("perfmodel: loss at knee %g outside [0,1]", c.LossAtKnee)
	}
	if c.CollapseExp < 0 {
		return fmt.Errorf("perfmodel: negative collapse exponent")
	}
	return nil
}

// Performance returns normalised performance (0..1] at deflation d. d is
// clamped into [0,1].
func (c Curve) Performance(d float64) float64 {
	if d <= 0 {
		return 1
	}
	if d >= 1 {
		return 0
	}
	switch {
	case d <= c.Slack:
		return 1
	case d <= c.Knee:
		if c.Knee == c.Slack {
			return 1 - c.LossAtKnee
		}
		return 1 - c.LossAtKnee*(d-c.Slack)/(c.Knee-c.Slack)
	default:
		atKnee := 1 - c.LossAtKnee
		frac := (1 - d) / (1 - c.Knee)
		return atKnee * math.Pow(frac, c.CollapseExp)
	}
}

// Slowdown returns the response-time multiplier 1/Performance(d),
// saturating at maxSlowdown to keep overload regions finite.
func (c Curve) Slowdown(d, maxSlowdown float64) float64 {
	p := c.Performance(d)
	if p <= 0 || 1/p > maxSlowdown {
		return maxSlowdown
	}
	return 1 / p
}

// DeflationFor inverts Performance analytically: the largest deflation
// d in [0,1] whose performance is still at least perf. It is the
// latency-aware policy's question — "how far can this VM deflate before
// its service rate drops below what its load needs?" — answered per
// region of the curve, so the hot path never searches. perf >= 1 means
// only the slack region qualifies; perf <= 0 means any deflation does.
func (c Curve) DeflationFor(perf float64) float64 {
	if perf >= 1 {
		return c.Slack
	}
	if perf <= 0 {
		return 1
	}
	atKnee := 1 - c.LossAtKnee
	if perf >= atKnee {
		// Linear region: perf = 1 - loss*(d-slack)/(knee-slack).
		if c.LossAtKnee <= 0 {
			return c.Knee
		}
		return c.Slack + (1-perf)*(c.Knee-c.Slack)/c.LossAtKnee
	}
	// Post-knee collapse: perf = atKnee * ((1-d)/(1-knee))^E.
	if atKnee <= 0 || c.Knee >= 1 {
		return c.Knee
	}
	if c.CollapseExp <= 0 {
		// Flat post-knee region at atKnee performance: every d < 1
		// keeps it, and d = 1 is zero performance by definition.
		return 1
	}
	d := 1 - (1-c.Knee)*math.Pow(perf/atKnee, 1/c.CollapseExp)
	if d > 1 {
		d = 1
	}
	if d < c.Knee {
		d = c.Knee
	}
	return d
}

// EffectiveCapacity scales a nominal capacity (cores) by the curve's
// performance at the allocation's deflation level: the service rate a
// VM deflated from fullCap to alloc actually delivers. This is the
// allocation -> service-rate map the SLO metrics are built on.
func (c Curve) EffectiveCapacity(fullCap, alloc float64) float64 {
	if fullCap <= 0 {
		return 0
	}
	return fullCap * c.Performance(1-alloc/fullCap)
}

// WorstCaseLinear is the conservative model the cluster-level policies
// assume (Section 5): no slack, performance = 1 - d.
var WorstCaseLinear = Curve{Slack: 0, Knee: 1, LossAtKnee: 1, CollapseExp: 1}

// Calibrated per-application curves reproducing Figure 3 ("application
// performance when all resources are deflated in the same proportion").
var (
	// SpecJBB exhibits no slack at all (Section 3.1) and degrades
	// steadily before collapsing.
	SpecJBB = Curve{Slack: 0, Knee: 0.60, LossAtKnee: 0.50, CollapseExp: 2.0}
	// Kcompile (kernel compile) is CPU-bound: a small slack from I/O
	// phases, then roughly proportional slowdown.
	Kcompile = Curve{Slack: 0.12, Knee: 0.75, LossAtKnee: 0.45, CollapseExp: 1.5}
	// Memcached has large slack (over-provisioned memory, tiny CPU needs)
	// and tolerates deep deflation (Section 3.2.2, Figure 3).
	Memcached = Curve{Slack: 0.35, Knee: 0.80, LossAtKnee: 0.20, CollapseExp: 2.5}
)

// Profiles names the Figure 3 curves.
var Profiles = map[string]Curve{
	"specjbb":   SpecJBB,
	"kcompile":  Kcompile,
	"memcached": Memcached,
}

// ByName returns a named profile.
func ByName(name string) (Curve, error) {
	c, ok := Profiles[name]
	if !ok {
		return Curve{}, fmt.Errorf("perfmodel: unknown profile %q", name)
	}
	return c, nil
}

// ThroughputLoss converts a utilisation trace and a deflated allocation
// into the throughput decrease of Section 7.4.2: the loss is the area of
// the utilisation curve above the deflated allocation (Figure 4),
// normalised by total demand. util and alloc are percentages of the
// nominal allocation.
func ThroughputLoss(util []float64, allocPct float64) float64 {
	var demand, lost float64
	for _, u := range util {
		demand += u
		if u > allocPct {
			lost += u - allocPct
		}
	}
	if demand == 0 {
		return 0
	}
	return lost / demand
}
