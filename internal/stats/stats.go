// Package stats provides the small statistical toolkit used by the
// feasibility analysis (Section 3) and the experimental harness (Section 7):
// percentiles, five-number box-plot summaries, CDFs, histograms, and
// streaming moments.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by summaries of empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. xs need not be sorted; it is not
// modified. An empty sample returns NaN.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return PercentileSorted(s, p)
}

// PercentileSorted is Percentile for an already ascending-sorted sample.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator), or NaN
// for samples of fewer than two points.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Min returns the minimum, or NaN for an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or NaN for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// BoxPlot is the five-number summary (plus mean) that backs every box plot
// in the paper's feasibility figures (Figures 5-12).
type BoxPlot struct {
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	N      int
}

// NewBoxPlot summarises xs. It returns ErrEmpty for an empty sample.
func NewBoxPlot(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, ErrEmpty
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return BoxPlot{
		Min:    s[0],
		Q1:     PercentileSorted(s, 25),
		Median: PercentileSorted(s, 50),
		Q3:     PercentileSorted(s, 75),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
		N:      len(s),
	}, nil
}

// String renders the summary as a single table row.
func (b BoxPlot) String() string {
	return fmt.Sprintf("n=%d min=%.4f q1=%.4f med=%.4f q3=%.4f max=%.4f mean=%.4f",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.Mean)
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied, then sorted).
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// P returns the empirical P(X <= x).
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// Move past duplicates equal to x.
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]).
func (c *CDF) Quantile(q float64) float64 {
	return PercentileSorted(c.sorted, q*100)
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// Histogram counts samples into uniform-width bins over [lo, hi).
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	N       int
	OutLow  int // samples below Lo
	OutHigh int // samples at or above Hi
}

// NewHistogram creates a histogram with nbins uniform bins spanning [lo, hi).
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		nbins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.N++
	if x < h.Lo {
		h.OutLow++
		return
	}
	if x >= h.Hi {
		h.OutHigh++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Fraction returns the fraction of all samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// BinCenter returns the centre value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Welford implements numerically stable streaming mean/variance.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN if empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Var returns the running sample variance (NaN if n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (NaN if empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation (NaN if empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// TimeWeighted accumulates a time-weighted average of a piecewise-constant
// signal, e.g. a VM's allocation over time. Call Observe(t, v) at every
// change point in non-decreasing time order; the value v is held until the
// next observation.
type TimeWeighted struct {
	started  bool
	lastT    float64
	lastV    float64
	area     float64
	duration float64
}

// Observe records that the signal has value v from time t onward.
func (tw *TimeWeighted) Observe(t, v float64) {
	if tw.started && t > tw.lastT {
		dt := t - tw.lastT
		tw.area += tw.lastV * dt
		tw.duration += dt
	}
	tw.started = true
	tw.lastT = t
	tw.lastV = v
}

// Finish closes the signal at time t and returns the time-weighted mean.
func (tw *TimeWeighted) Finish(t float64) float64 {
	tw.Observe(t, tw.lastV)
	return tw.Mean()
}

// Mean returns the time-weighted mean so far (NaN if no interval elapsed).
func (tw *TimeWeighted) Mean() float64 {
	if tw.duration == 0 {
		return math.NaN()
	}
	return tw.area / tw.duration
}

// Area returns the accumulated integral so far.
func (tw *TimeWeighted) Area() float64 { return tw.area }

// Duration returns the total observed time span.
func (tw *TimeWeighted) Duration() float64 { return tw.duration }

// FractionAbove returns the fraction of samples xs strictly greater than
// threshold. It backs the paper's core feasibility metric: "fraction of
// time the usage is higher than the deflated allocation".
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var n int
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// AreaAbove returns the mean excess of xs over threshold (zero where
// xs <= threshold). Per Section 3.2 / Figure 4 this "total
// under-allocation" is proportional to the throughput loss.
func AreaAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var a float64
	for _, x := range xs {
		if x > threshold {
			a += x - threshold
		}
	}
	return a / float64(len(xs))
}
