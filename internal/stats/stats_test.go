package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {150, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("interpolated median = %v, want 5", got)
	}
	if got := Percentile(xs, 95); math.Abs(got-9.5) > 1e-12 {
		t.Errorf("p95 = %v, want 9.5", got)
	}
}

func TestPercentileEdge(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty sample should give NaN")
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single sample = %v, want 7", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138089935) > 1e-6 {
		t.Errorf("StdDev = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev([]float64{1})) {
		t.Error("degenerate samples should give NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty Min/Max should be NaN")
	}
}

func TestBoxPlot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if b.Min != 1 || b.Max != 9 || b.Median != 5 || b.N != 9 {
		t.Errorf("BoxPlot = %+v", b)
	}
	if b.Q1 != 3 || b.Q3 != 7 {
		t.Errorf("quartiles = %v/%v, want 3/7", b.Q1, b.Q3)
	}
	if _, err := NewBoxPlot(nil); err != ErrEmpty {
		t.Errorf("empty BoxPlot error = %v", err)
	}
	if s := b.String(); len(s) == 0 {
		t.Error("String should be non-empty")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.P(tc.x); got != tc.want {
			t.Errorf("P(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	if !math.IsNaN(NewCDF(nil).P(1)) {
		t.Error("empty CDF P should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.N != 8 {
		t.Errorf("N = %d", h.N)
	}
	if h.OutLow != 1 || h.OutHigh != 2 {
		t.Errorf("out of range = %d/%d", h.OutLow, h.OutHigh)
	}
	// bins: [0,2) has {0, 1.9}; [2,4) has {2}; [4,6) has {5}; [8,10) has {9.99}
	want := []int{2, 1, 1, 0, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if got := h.Fraction(0); got != 0.25 {
		t.Errorf("Fraction(0) = %v", got)
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v", got)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram(5, 5, 0) // invalid params are repaired
	h.Add(5)
	if h.N != 1 || len(h.Counts) != 1 {
		t.Errorf("degenerate histogram: %+v", h)
	}
	if (&Histogram{Counts: make([]int, 1)}).Fraction(0) != 0 {
		t.Error("empty histogram Fraction should be 0")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	if math.Abs(w.Mean()-Mean(xs)) > 1e-9 {
		t.Errorf("Welford mean %v != batch %v", w.Mean(), Mean(xs))
	}
	if math.Abs(w.StdDev()-StdDev(xs)) > 1e-9 {
		t.Errorf("Welford stddev %v != batch %v", w.StdDev(), StdDev(xs))
	}
	if w.Min() != Min(xs) || w.Max() != Max(xs) {
		t.Error("Welford min/max mismatch")
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Var()) || !math.IsNaN(w.Min()) || !math.IsNaN(w.Max()) {
		t.Error("empty Welford should return NaN")
	}
}

func TestTimeWeighted(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 10) // 10 for t in [0,5)
	tw.Observe(5, 20) // 20 for t in [5,10)
	got := tw.Finish(10)
	if got != 15 {
		t.Errorf("time-weighted mean = %v, want 15", got)
	}
	if tw.Area() != 150 {
		t.Errorf("area = %v, want 150", tw.Area())
	}
	if tw.Duration() != 10 {
		t.Errorf("duration = %v, want 10", tw.Duration())
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var tw TimeWeighted
	if !math.IsNaN(tw.Mean()) {
		t.Error("no observations should give NaN")
	}
}

func TestFractionAbove(t *testing.T) {
	xs := []float64{0.1, 0.5, 0.9, 0.95}
	if got := FractionAbove(xs, 0.5); got != 0.5 {
		t.Errorf("FractionAbove = %v", got)
	}
	if got := FractionAbove(xs, 1); got != 0 {
		t.Errorf("FractionAbove(1) = %v", got)
	}
	if !math.IsNaN(FractionAbove(nil, 0)) {
		t.Error("empty should give NaN")
	}
}

func TestAreaAbove(t *testing.T) {
	xs := []float64{0.2, 0.6, 1.0}
	// excesses over 0.5: 0, 0.1, 0.5 -> mean 0.2
	if got := AreaAbove(xs, 0.5); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("AreaAbove = %v", got)
	}
	if !math.IsNaN(AreaAbove(nil, 0)) {
		t.Error("empty should give NaN")
	}
}

// Property: for any sample, percentiles are monotone in p and bounded by
// min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pa := math.Mod(math.Abs(a), 100)
		pb := math.Mod(math.Abs(b), 100)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, vb := Percentile(xs, pa), Percentile(xs, pb)
		return va <= vb+1e-9 && va >= Min(xs)-1e-9 && vb <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CDF.P is monotone non-decreasing.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64, x, y float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 || math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		c := NewCDF(xs)
		return c.P(x) <= c.P(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: BoxPlot ordering min <= q1 <= median <= q3 <= max.
func TestQuickBoxPlotOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		b, err := NewBoxPlot(xs)
		if err != nil {
			return false
		}
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileSortedAgainstSortSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	sort.Float64s(xs)
	// p50 of a sorted odd-length sample is the middle element.
	if got := PercentileSorted(xs, 50); got != xs[128] {
		t.Errorf("median = %v, want %v", got, xs[128])
	}
}
