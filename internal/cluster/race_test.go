package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"vmdeflate/internal/notify"
)

// TestManagerConcurrentPlaceRemove hammers one Manager from many
// goroutines placing, inspecting and removing disjoint VM sets, with a
// shared notification bus attached. It exists for the race detector
// (`go test -race`): the manager's placement map, counters and bus
// fan-out must all be safe under concurrent cluster churn, which is how
// the parallel sweep engine and the REST daemons drive it.
func TestManagerConcurrentPlaceRemove(t *testing.T) {
	bus := &notify.Bus{}
	var delivered sync.Map
	defer bus.Subscribe(func(ev notify.Event) { delivered.Store(ev.VM, true) })()

	m := newTestManager(t, 8, Config{Notify: bus})

	const (
		workers   = 8
		perWorker = 24
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("vm-%d-%d", w, i)
				dc := deflatableVM(name, 4, 8192, 0.5)
				if i%4 == 0 {
					dc = onDemandVM(name, 2, 4096)
				}
				_, _, err := m.PlaceVM(dc)
				if errors.Is(err, ErrNoCapacity) {
					continue // admission control under pressure is fine
				}
				if err != nil {
					t.Errorf("place %s: %v", name, err)
					return
				}
				if _, _, err := m.LookupVM(name); err != nil {
					t.Errorf("lookup %s: %v", name, err)
					return
				}
				// Interleave cluster-wide reads with the churn.
				_ = m.Stats()
				_ = m.Servers()
				if i%2 == 1 {
					if err := m.RemoveVM(name); err != nil {
						t.Errorf("remove %s: %v", name, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := m.Stats()
	if st.Servers != 8 {
		t.Errorf("servers = %d", st.Servers)
	}
	// Counters must be coherent after the dust settles: every placement
	// either stuck, was removed, or was rejected.
	if st.VMs < 0 || st.VMs > workers*perWorker {
		t.Errorf("placed VMs = %d", st.VMs)
	}
	if m.Rejections() < 0 || m.DeflationEvents() < 0 {
		t.Errorf("counters = %d rejections, %d deflations", m.Rejections(), m.DeflationEvents())
	}
}
