package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
)

// batchManagers builds one manager per placement-partition count (the
// first entry, partitions=1, is the sequential engine the others must
// match) plus a brute-force reference manager, all over an identical
// small cluster. Small cluster + large batches saturate capacity fast,
// so commits constantly conflict with proposals — surplus bids consumed
// by earlier commits, pressure walks weaving touched servers, VMs that
// lose their surplus mid-batch — which is exactly the machinery under
// test.
func batchManagers(t *testing.T, cfg Config, nServers int, partitionCounts []int) []*Manager {
	t.Helper()
	var ms []*Manager
	for _, pc := range partitionCounts {
		c := cfg
		c.PlacementPartitions = pc
		ms = append(ms, NewManager(c))
	}
	refCfg := cfg
	refCfg.ReferencePlacement = true
	ms = append(ms, NewManager(refCfg))
	for i := 0; i < nServers; i++ {
		for _, m := range ms {
			part := i % max(1, m.Config().PriorityLevels)
			if _, err := m.AddServer(fmt.Sprintf("node-%03d", i), serverCap(), part); err != nil {
				t.Fatal(err)
			}
		}
	}
	return ms
}

// describePlacements renders a batch result comparably.
func describePlacements(pls []Placement) string {
	out := ""
	for _, pl := range pls {
		switch {
		case pl.Err != nil && errors.Is(pl.Err, ErrNoCapacity):
			out += "[rejected]"
		case pl.Err != nil && errors.Is(pl.Err, ErrExists):
			out += "[dup]"
		case pl.Err != nil:
			out += "[err " + pl.Err.Error() + "]"
		default:
			out += fmt.Sprintf("[%s reclaim=%v init=%v]", pl.Server.Host.Name(), pl.NeedsReclaim, pl.Initial)
		}
	}
	return out
}

// TestPlaceVMsMatchesSequentialAcrossPartitionCounts drives identical
// randomized batch-place / batch-remove churn through partitioned
// managers, the sequential engine and the brute-force reference, and
// fails on the first divergence in placements, per-VM outcomes,
// counters or stats. Batches of up to 16 VMs against 6 servers force
// every commit conflict path.
func TestPlaceVMsMatchesSequentialAcrossPartitionCounts(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ms := batchManagers(t, Config{Policy: policy.Priority{}}, 6, []int{1, 2, 3, 8})
			for _, m := range ms {
				defer m.Close()
			}
			rng := rand.New(rand.NewSource(seed))
			var placed []string
			next := 0
			for op := 0; op < 120; op++ {
				if len(placed) > 0 && rng.Intn(10) < 3 {
					k := 1 + rng.Intn(min(4, len(placed)))
					names := make([]string, 0, k)
					for j := 0; j < k; j++ {
						i := rng.Intn(len(placed))
						names = append(names, placed[i])
						placed = append(placed[:i], placed[i+1:]...)
					}
					for _, m := range ms {
						if err := m.RemoveVMs(names...); err != nil {
							t.Fatalf("op %d: remove: %v", op, err)
						}
					}
					continue
				}
				b := 1 + rng.Intn(16)
				dcs := make([]hypervisor.DomainConfig, 0, b)
				for j := 0; j < b; j++ {
					name := fmt.Sprintf("vm-%05d", next)
					next++
					dc := hypervisor.DomainConfig{
						Name:       name,
						Size:       resources.CPUMem(float64(1+rng.Intn(24)), float64(2048*(1+rng.Intn(24)))),
						Deflatable: rng.Intn(3) != 0,
						Priority:   0.25 * float64(1+rng.Intn(4)),
					}
					if !dc.Deflatable {
						dc.Priority = 0
					}
					dcs = append(dcs, dc)
				}
				var want string
				for mi, m := range ms {
					got := describePlacements(m.PlaceVMs(dcs, nil))
					if mi == 0 {
						want = got
						continue
					}
					if got != want {
						t.Fatalf("op %d: manager %d diverged:\n got %s\nwant %s", op, mi, got, want)
					}
				}
				// Record admissions from the sequential manager's view.
				for _, dc := range dcs {
					if _, _, err := ms[0].LookupVM(dc.Name); err == nil {
						placed = append(placed, dc.Name)
					}
				}
				for mi := 1; mi < len(ms); mi++ {
					compareManagers(t, op, ms[0], ms[mi])
				}
			}
		})
	}
}

// TestPlaceVMsDuplicateNames pins the in-batch duplicate semantics: the
// second occurrence fails with ErrExists at its commit, exactly as two
// sequential PlaceVM calls would.
func TestPlaceVMsDuplicateNames(t *testing.T) {
	for _, pc := range []int{1, 3} {
		m := NewManager(Config{PlacementPartitions: pc})
		defer m.Close()
		if _, err := m.AddServer("node-000", serverCap(), 0); err != nil {
			t.Fatal(err)
		}
		dc := hypervisor.DomainConfig{Name: "vm-dup", Size: resources.CPUMem(2, 4096)}
		pls := m.PlaceVMs([]hypervisor.DomainConfig{dc, dc}, nil)
		if pls[0].Err != nil {
			t.Fatalf("partitions=%d: first placement failed: %v", pc, pls[0].Err)
		}
		if !errors.Is(pls[1].Err, ErrExists) {
			t.Fatalf("partitions=%d: duplicate err = %v, want ErrExists", pc, pls[1].Err)
		}
	}
}

// TestPlaceVMsEmptyBatch pins the trivial cases.
func TestPlaceVMsEmptyBatch(t *testing.T) {
	m := NewManager(Config{PlacementPartitions: 4})
	defer m.Close()
	if got := m.PlaceVMs(nil, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}

// proposeSteadyState builds a partitioned manager at steady state: a
// cluster of residents, warm arenas, and a batch of probe VMs whose
// proposals exercise the surplus phase — both hits and the miss that
// defers to the commit-time pressure descent — without committing
// anything.
func proposeSteadyState(tb testing.TB, partitions int) (*Manager, []hypervisor.DomainConfig) {
	tb.Helper()
	m := NewManager(Config{Policy: policy.Proportional{}, PlacementPartitions: partitions})
	for i := 0; i < 8; i++ {
		if _, err := m.AddServer(fmt.Sprintf("node-%03d", i), resources.CPUMem(48, 131072), 0); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < 24; i++ {
		dc := hypervisor.DomainConfig{
			Name:       fmt.Sprintf("resident-%02d", i),
			Size:       resources.CPUMem(12, 24576),
			Deflatable: true,
			Priority:   []float64{0.25, 0.5, 0.75, 1.0}[i%4],
		}
		if _, _, err := m.PlaceVM(dc); err != nil {
			tb.Fatal(err)
		}
	}
	// Probe batch: small VMs that still fit (surplus bids) and a giant
	// one nothing can surplus-host (a propose-phase miss — the pressure
	// work itself happens at commit, under the bound-pruned descent).
	dcs := []hypervisor.DomainConfig{
		{Name: "probe-a", Size: resources.CPUMem(4, 8192)},
		{Name: "probe-b", Size: resources.CPUMem(8, 16384), Deflatable: true, Priority: 0.5},
		{Name: "probe-c", Size: resources.CPUMem(47, 122880)},
	}
	return m, dcs
}

// proposeOnce runs the parallel propose phases for one batch without
// committing — the steady-state hot path the allocation gate watches.
func proposeOnce(m *Manager, dcs []hypervisor.DomainConfig) {
	m.mu.Lock()
	m.syncDirtyLocked()
	m.proposeLocked(dcs)
	m.batchDCs = nil
	m.mu.Unlock()
}

// TestProposeSteadyStateZeroAllocs is the allocation-regression guard
// for the partitioned propose pass: once the partition arenas are warm,
// proposing a batch — surplus bids across every partition, including
// the worker-pool barrier — must perform zero heap allocations.
func TestProposeSteadyStateZeroAllocs(t *testing.T) {
	for _, partitions := range []int{1, 4} {
		t.Run(fmt.Sprintf("partitions=%d", partitions), func(t *testing.T) {
			m, dcs := proposeSteadyState(t, partitions)
			defer m.Close()
			proposeOnce(m, dcs) // warm the arenas and spawn the workers
			got := testing.AllocsPerRun(200, func() {
				proposeOnce(m, dcs)
			})
			if got != 0 {
				t.Errorf("steady-state propose pass allocates %.1f allocs/op, want 0", got)
			}
		})
	}
}

// BenchmarkProposeSteadyState is the propose-pass benchmark the
// Makefile's bench-allocs gate watches: `-benchmem` must report
// 0 allocs/op or the build fails. ns/op here is the per-batch propose
// latency every arrival instant pays in a partitioned 1M-VM run.
func BenchmarkProposeSteadyState(b *testing.B) {
	m, dcs := proposeSteadyState(b, 4)
	defer m.Close()
	proposeOnce(m, dcs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proposeOnce(m, dcs)
	}
}
