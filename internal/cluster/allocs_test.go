package cluster

import (
	"fmt"
	"testing"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
)

// steadyStateServer builds a standalone server (the noded shape: no
// manager) filled to capacity with deflatable residents, so that every
// deflateFor/Reinflate cycle exercises a full policy pass.
func steadyStateServer(tb testing.TB, pol policy.Policy) (*Server, Config) {
	tb.Helper()
	h, err := hypervisor.NewHost(hypervisor.HostConfig{
		Name:     "node-0",
		Capacity: resources.CPUMem(48, 131072),
	})
	if err != nil {
		tb.Fatal(err)
	}
	s := &Server{Host: h, Partition: -1}
	cfg := Config{Policy: pol, Mechanism: mechanism.Transparent{}}.WithDefaults()
	for i := 0; i < 6; i++ {
		dc := hypervisor.DomainConfig{
			Name:       fmt.Sprintf("resident-%d", i),
			Size:       resources.CPUMem(8, 16384),
			Deflatable: true,
			Priority:   []float64{0.25, 0.5, 0.75, 1.0}[i%4],
			// Mixed offered loads so a latency-aware pass computes real
			// per-VM safe fractions (ignored by the other policies).
			Load: []float64{0, 2, 5, 7}[i%4],
		}
		if _, _, err := PlaceOn(s, cfg, dc); err != nil {
			tb.Fatal(err)
		}
	}
	return s, cfg
}

// policyPassCycle is one steady-state hot-path iteration: the deflation
// policy pass that would make room for a 16-core on-demand arrival
// (deflateFor — everything PlaceOn does except defining the domain,
// which inherently allocates), followed by the reinflation pass a
// departure would trigger. The server returns to its initial state, so
// the cycle can repeat indefinitely.
func policyPassCycle(tb testing.TB, s *Server, cfg Config) {
	od := hypervisor.DomainConfig{Name: "od", Size: resources.CPUMem(16, 32768)}
	if _, _, err := deflateFor(s, cfg, od); err != nil {
		tb.Fatal(err)
	}
	if err := Reinflate(s, cfg); err != nil {
		tb.Fatal(err)
	}
}

// TestPolicyPassSteadyStateZeroAllocs is the allocation-regression
// guard for the placement hot path: once the per-server scratch arena
// and the host's cached VM-state view are warm, the PlaceOn deflation
// pass and Reinflate must perform zero heap allocations, for every
// policy. (Full PlaceOn additionally defines and starts a domain, which
// allocates by nature; the policy pass is the part that runs once per
// pressured arrival and departure at cloud scale.)
func TestPolicyPassSteadyStateZeroAllocs(t *testing.T) {
	for _, pol := range []policy.Policy{policy.Proportional{}, policy.Priority{}, policy.Deterministic{}, policy.LatencyAware{}} {
		t.Run(pol.Name(), func(t *testing.T) {
			s, cfg := steadyStateServer(t, pol)
			policyPassCycle(t, s, cfg) // warm the arenas
			got := testing.AllocsPerRun(200, func() {
				policyPassCycle(t, s, cfg)
			})
			if got != 0 {
				t.Errorf("steady-state PlaceOn/Reinflate policy pass allocates %.1f allocs/op, want 0", got)
			}
		})
	}
}

// TestReinflateAloneZeroAllocs pins the departure path by itself: with
// residents deflated, a single Reinflate (including its early-exit
// aggregate read) must not allocate.
func TestReinflateAloneZeroAllocs(t *testing.T) {
	s, cfg := steadyStateServer(t, policy.Proportional{})
	od := hypervisor.DomainConfig{Name: "od", Size: resources.CPUMem(16, 32768)}
	if _, _, err := deflateFor(s, cfg, od); err != nil {
		t.Fatal(err)
	}
	// First reinflation returns everyone to full; subsequent calls hit
	// the Deflated==0 early exit. Both must be allocation-free.
	if got := testing.AllocsPerRun(1, func() {
		if err := Reinflate(s, cfg); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("full reinflation pass allocates %.1f allocs/op, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		if err := Reinflate(s, cfg); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("no-op reinflation allocates %.1f allocs/op, want 0", got)
	}
}

// BenchmarkPolicyPassSteadyState is the placement benchmark CI's alloc
// smoke watches: `-benchmem` must report 0 allocs/op or the make target
// fails the build. It measures the same deflate+reinflate cycle as the
// AllocsPerRun tests, so ns/op here is the per-pass latency the 1M-VM
// runs pay on every pressured arrival and departure.
func BenchmarkPolicyPassSteadyState(b *testing.B) {
	s, cfg := steadyStateServer(b, policy.Proportional{})
	policyPassCycle(b, s, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		policyPassCycle(b, s, cfg)
	}
}
