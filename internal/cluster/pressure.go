// The under-pressure placement scan: who hosts a VM when no server has
// surplus capacity for it.
//
// The paper's §5.2 ranking scores EVERY pool server by the
// deflation-aware cosine fitness of its availability vector against the
// demand — O(servers) per pressured arrival, and at cloud scale the
// whole runtime (the 10M-VM run spent ~90% of its wall clock here).
// This file makes the selection sub-linear while staying bit-for-bit
// identical to that full scan.
//
// # The bound index
//
// Each placement partition maintains, beside its surplus index, a
// pressure index per (priority pool, hazard band): the same treap keyed
// by boundKey(avail) = |avail|·(1+slack). For non-negative vectors the
// Cauchy–Schwarz inequality gives
//
//	Fitness(D, A) = A·D / max(|D|, 1e-9) <= |A|·|D|/|D| = |A|
//
// so the key upper-bounds any demand's achievable fitness on that
// server — demand-independent, which is what lets one incrementally
// maintained index (refreshed beside the surplus keys under the same
// dirty-flag discipline) serve every arrival. The slack factor absorbs
// float round-off: the computed fitness and the stored |A| each carry
// relative error of a few ulps (~1e-15), so padding the key by 1e-12
// makes "computed fitness never exceeds the stored bound" hold in
// float arithmetic, not just in the reals.
//
// # Best-first branch-and-bound
//
// The scan walks the group's bound indexes in descending (key, name)
// order — loosest bound first — through reusable iterators, one per
// (partition, band-key) index. Each expanded server is first checked
// against the shared feasibility pre-filter (cannotReclaim — the exact
// expressions tryPlaceLocked uses, so skipping is provably safe), then
// scored exactly and pushed on a min-heap ordered by candBefore. A
// heaped candidate is yielded only while its fitness STRICTLY exceeds
// the largest bound among unexpanded servers: any unexplored u has
// fitness_u <= bound_u <= maxRemaining < top.fitness, so the top
// precedes u under candBefore — and on fitness ties the strictness
// forces expansion first, preserving the add-index-ascending tie-break.
// By induction the yield sequence is exactly the full scan's sorted
// candidate order, truncated at the first successful placement.
//
// Expansion always picks the iterator whose head is the maximum
// (key, name) across the group — the order a single merged index would
// produce — so the number of servers scored (and therefore the
// scored/pruned counters) is identical at any partition count.
//
// Banded VMs exhaust band groups in ascending band order (candBefore
// ranks band first, so band b's worst candidate precedes band b+1's
// best); band-blind VMs merge all the pool's band indexes into one
// group with every candidate carrying band 0, exactly like the full
// scan does.
package cluster

import (
	"sort"
	"time"

	"vmdeflate/internal/cluster/capindex"
	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/resources"
)

// boundSlack pads the pressure-index keys so the stored bound dominates
// the computed fitness despite float round-off on both sides; see the
// package comment above. Orders of magnitude above the ~1e-15 relative
// error of a 4-dimensional dot product, and orders below any fitness
// difference the workload can produce.
const boundSlack = 1e-12

// boundKey is the pressure-index key: a demand-independent upper bound
// on any VM's achievable fitness on a server with this availability.
func boundKey(avail resources.Vector) float64 {
	return avail.Norm() * (1 + boundSlack)
}

// pressureLiveLocked is the live under-pressure placement: rank the
// pool's servers by the §5.2 deflation-aware fitness and deflate
// residents on the best server that can absorb the newcomer. best,
// when non-nil, is the surplus candidate that already failed and is
// skipped. Routes to the bound-pruned descent, or to the linear scan
// under Config.ReferencePlacement / Config.FullPressureScan — all
// realizing the identical strict candidate order. Also the one place
// the pressured-arrival counter and pressure sub-phase timer live, so
// every mode meters identically.
func (m *Manager) pressureLiveLocked(dc hypervisor.DomainConfig, best *Server) (*hypervisor.Domain, *Server, bool) {
	m.pressuredArrivals++
	var t0 time.Time
	if m.cfg.CollectTimings {
		t0 = time.Now()
	}
	var (
		d  *hypervisor.Domain
		s  *Server
		ok bool
	)
	if m.cfg.ReferencePlacement || m.cfg.FullPressureScan {
		d, s, ok = m.pressureFullLocked(dc, best)
	} else {
		d, s, ok = m.pressurePrunedLocked(dc, best)
	}
	if m.cfg.CollectTimings {
		m.pressureTime += time.Since(t0)
	}
	return d, s, ok
}

// pressureFullLocked is the retained linear ranking: score every pool
// server (from cached availability, or fresh reads under
// ReferencePlacement), argmax-first with the sort deferred until the
// argmax cannot absorb the VM. The differential oracle the pruned
// descent is proven against.
func (m *Manager) pressureFullLocked(dc hypervisor.DomainConfig, best *Server) (*hypervisor.Domain, *Server, bool) {
	pool := m.PartitionOf(dc)
	banded := m.banded(dc)
	cands := m.cands[:0]
	for _, s := range m.servers {
		if s.revoked || (pool >= 0 && s.Partition != pool) {
			continue
		}
		avail := s.avail
		if m.cfg.ReferencePlacement {
			avail = Availability(s)
		}
		b := 0
		if banded {
			b = s.band
		}
		cands = append(cands, cand{s, Fitness(dc.Size, avail), s.gidx, b})
	}
	m.cands = cands
	m.pressureScored += len(cands) // the full scan scores everyone, prunes none

	ncRange := newcomerRange(dc)
	first := -1
	for i := range cands {
		if first < 0 || candBefore(cands[i], cands[first]) {
			first = i
		}
	}
	if first >= 0 && cands[first].s != best {
		if d, s, ok := m.tryPlaceLocked(cands[first].s, dc, ncRange); ok {
			return d, s, true
		}
	}
	if first >= 0 {
		sort.Sort(&m.cands)
		for rank, c := range m.cands {
			if c.s == best || rank == 0 {
				continue // already tried above (argmax == rank 0)
			}
			if d, s, ok := m.tryPlaceLocked(c.s, dc, ncRange); ok {
				return d, s, true
			}
		}
	}
	return nil, nil, false
}

// pressurePrunedLocked is the bound-pruned descent: band groups in
// ascending band order for banded VMs, one merged group otherwise, each
// scanned best-first until a candidate absorbs the newcomer or the
// group is exhausted.
func (m *Manager) pressurePrunedLocked(dc hypervisor.DomainConfig, best *Server) (*hypervisor.Domain, *Server, bool) {
	pool := m.PartitionOf(dc)
	ncRange := newcomerRange(dc)
	if m.banded(dc) {
		for band := 0; band < m.nBands; band++ {
			keys := append(m.pressKeys[:0], m.poolKey(pool, band))
			m.pressKeys = keys
			if d, s, ok := m.pressureScanGroupLocked(dc, best, ncRange, keys, band); ok {
				return d, s, true
			}
		}
		return nil, nil, false
	}
	// Band-blind: all of the pool's band indexes join one group and
	// every candidate carries band 0, so candBefore degenerates to the
	// historical (fitness desc, add-index asc) pair.
	keys := m.pressKeys[:0]
	for band := 0; band < m.nBands; band++ {
		keys = append(keys, m.poolKey(pool, band))
	}
	m.pressKeys = keys
	return m.pressureScanGroupLocked(dc, best, ncRange, keys, 0)
}

// pressureScanGroupLocked runs one group's best-first descent, trying
// placement on each yielded candidate in exact candBefore order. The
// group is every (partition × key) bound index for the given keys; all
// its candidates carry candBand. Also settles the group's metering:
// every indexed server that never had its fitness computed — excluded
// by the bound, the feasibility pre-filter, or an earlier candidate
// succeeding — counts as pruned.
func (m *Manager) pressureScanGroupLocked(dc hypervisor.DomainConfig, best *Server, ncRange resources.Vector, keys []int, candBand int) (*hypervisor.Domain, *Server, bool) {
	// Point one reusable iterator at each non-empty index of the group.
	// Indexing (not re-slicing through grow) preserves the iterators'
	// inner stacks, so steady-state scans never allocate.
	n := 0
	eligible := 0
	for _, key := range keys {
		for _, p := range m.parts {
			ix := p.bounds[key]
			if ix == nil || ix.Len() == 0 {
				continue
			}
			if n == len(m.pressIters) {
				m.pressIters = append(m.pressIters, capindex.DescIter{})
			}
			m.pressIters[n].Reset(ix)
			eligible += ix.Len()
			n++
		}
	}
	iters := m.pressIters[:n]
	scored0 := m.pressureScored

	heap := m.pressHeap[:0]
	var (
		rd  *hypervisor.Domain
		rs  *Server
		hit bool
	)
	for {
		// The loosest remaining bound — and, on bound ties, the largest
		// name: the (key, name)-descending head a single merged index
		// would expose next, which keeps the expansion sequence (and the
		// scored count) invariant across partition counts.
		expand := -1
		var maxKey float64
		var maxName string
		for i := range iters {
			name, key, ok := iters[i].Peek()
			if !ok {
				continue
			}
			if expand < 0 || key > maxKey || (key == maxKey && name > maxName) {
				expand, maxKey, maxName = i, key, name
			}
		}
		// Yield while the heap top STRICTLY beats every unexpanded bound:
		// strictness preserves the gidx tie-break on fitness ties (an
		// unexplored server could tie the top's fitness with a smaller
		// add-index, so ties force expansion first).
		for len(heap) > 0 && (expand < 0 || heap[0].fitness > maxKey) {
			c := heapPopCand(&heap)
			if c.s == best {
				continue // the failed surplus candidate is skipped
			}
			if d, s, ok := m.tryPlaceLocked(c.s, dc, ncRange); ok {
				rd, rs, hit = d, s, true
				break
			}
		}
		if hit || expand < 0 {
			break
		}
		iters[expand].Next()
		s := m.byName[maxName]
		if cannotReclaim(s, dc, ncRange) {
			continue // fit-skip: counted as pruned, never scored
		}
		m.pressureScored++
		heapPushCand(&heap, cand{s, Fitness(dc.Size, s.avail), s.gidx, candBand})
	}
	m.pressHeap = heap[:0]
	m.pressurePruned += eligible - (m.pressureScored - scored0)
	return rd, rs, hit
}

// heapPushCand pushes c onto the candBefore-ordered min-heap (the heap
// top is the candidate that precedes all others). Manual sift — the
// container/heap interface would force an allocation per push through
// its interface{} boundary.
func heapPushCand(h *candList, c cand) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !candBefore((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

// heapPopCand removes and returns the heap top.
func heapPopCand(h *candList) cand {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(s) && candBefore(s[l], s[least]) {
			least = l
		}
		if r < len(s) && candBefore(s[r], s[least]) {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	*h = s
	return top
}
