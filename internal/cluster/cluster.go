// Package cluster implements the centralized cluster manager of Sections
// 5.2 and 6: deflation-aware VM placement using cosine-similarity
// fitness, optional priority-partitioned server pools, the three-step
// placement protocol (choose best server → compute required deflation →
// deflate and launch), reinflation on VM departure, and admission
// control when even maximal deflation cannot make room.
//
// # Placement at scale
//
// The manager keeps an incremental capacity index (capindex) per
// priority partition: an ordered index of servers keyed by dominant free
// share, plus a cached availability vector per server. Hypervisor
// aggregate-change callbacks mark servers dirty; each query first
// refreshes only the dirty servers, so the surplus-first pass is
// O(log servers) and the under-pressure fitness ranking never re-walks a
// clean server's domains. Config.ReferencePlacement retains the
// brute-force linear-scan path, which implements the identical selection
// rule — the differential test suite asserts both paths place bit-for-bit
// identically.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"vmdeflate/internal/cluster/capindex"
	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/notify"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
)

// applyAndNotify applies target to d via cfg.Mechanism and publishes an
// allocation-change event when a bus is configured. When buf is non-nil
// the event is appended there instead of published — the parallel
// reinflation path buffers per-server events and publishes them merged
// in deterministic server order after its barrier.
func applyAndNotify(s *Server, cfg Config, d *hypervisor.Domain, target resources.Vector, buf *[]notify.Event) error {
	old := d.Allocation()
	got, err := cfg.Mechanism.Apply(d, target)
	if err != nil {
		return err
	}
	if cfg.Notify != nil && got != old {
		ev := notify.Event{
			VM:                d.Name(),
			Server:            s.Host.Name(),
			Kind:              notify.Classify(old, got),
			Old:               old,
			New:               got,
			DeflationFraction: d.DeflationFraction(),
			Mechanism:         d.DeflatedBy(),
		}
		if buf != nil {
			*buf = append(*buf, ev)
		} else {
			cfg.Notify.Publish(ev)
		}
	}
	return nil
}

// Errors returned by the manager.
var (
	// ErrNoCapacity is an admission-control rejection: no server can host
	// the VM even after deflating every deflatable VM to its floor. In
	// Figure 20's terms this is a "failure to reclaim sufficient
	// resources".
	ErrNoCapacity = errors.New("cluster: no server can host the VM")
	// ErrNotFound reports an unknown VM or server.
	ErrNotFound = errors.New("cluster: not found")
	// ErrExists reports a duplicate name.
	ErrExists = errors.New("cluster: already exists")
)

// Config parameterises a Manager.
type Config struct {
	// Policy is the server-level deflation policy.
	Policy policy.Policy
	// Mechanism applies deflation targets to domains.
	Mechanism mechanism.Mechanism
	// PartitionByPriority places VMs only on servers of their priority
	// pool (Section 5.2.1). Non-deflatable VMs use pool 0.
	PartitionByPriority bool
	// PriorityLevels is the number of discrete priority levels (4 in the
	// paper's simulation).
	PriorityLevels int
	// Notify, when set, receives an event for every allocation change
	// (Figure 1's notification to the application manager / load
	// balancer).
	Notify *notify.Bus
	// ReferencePlacement selects the retained brute-force placement path
	// — linear scans over every server — instead of the capacity index.
	// Both paths implement the identical selection rule and produce
	// bit-for-bit identical placements; the flag exists for differential
	// testing and for measuring what the index buys.
	ReferencePlacement bool
	// ReinflateShards caps how many goroutines a RemoveVMs batch may use
	// to reinflate its affected servers. 0 or 1 keeps reinflation
	// strictly sequential. Per-server reinflation reads and writes only
	// that server's host state, so the results are bit-for-bit identical
	// at any shard count; notification events are buffered per server
	// and published in the same deterministic first-touched server order
	// the sequential path uses.
	ReinflateShards int
}

func (c *Config) applyDefaults() {
	if c.Policy == nil {
		c.Policy = policy.Proportional{}
	}
	if c.Mechanism == nil {
		c.Mechanism = mechanism.Transparent{}
	}
	if c.PriorityLevels <= 0 {
		c.PriorityLevels = 4
	}
}

// WithDefaults returns a copy of c with unset fields filled in
// (proportional policy, transparent mechanism, 4 priority levels).
func (c Config) WithDefaults() Config {
	c.applyDefaults()
	return c
}

// Server is one managed physical server.
type Server struct {
	Host *hypervisor.Host
	// Partition is the server's priority pool (0-based); -1 when
	// partitioning is disabled.
	Partition int

	// Cached placement state, refreshed by the owning Manager's dirty
	// sync (syncDirtyLocked) and read only under the Manager's lock.
	// Servers constructed standalone (e.g. the per-node daemon wrapping
	// one Server for PlaceOn/Reinflate) never populate these.
	agg       hypervisor.Aggregates // aggregates at last sync, for delta totals
	free      resources.Vector      // capacity - allocated
	freeShare float64               // free.DominantShare(capacity): the index key
	avail     resources.Vector      // the Section 5.2 availability vector

	// scratch is the server's policy-pass arena: the VM-state/domain
	// buffers PlaceOn and Reinflate fill from the host's cached view,
	// plus the policy.Scratch the water-filling solvers run in. One
	// arena per server means concurrent passes on distinct servers
	// (parallel reinflation shards) never contend, and steady-state
	// passes never allocate. Guarded by whatever serialises passes on
	// this server: the Manager's lock, or the shard assignment that
	// gives each server to exactly one worker.
	scratch serverScratch
}

// serverScratch holds the reusable buffers for one server's policy
// passes.
type serverScratch struct {
	vms    []policy.VMState
	doms   []*hypervisor.Domain
	ps     policy.Scratch
	events []notify.Event // parallel-reinflation event buffer
}

// Manager is the centralized cluster manager. All methods are safe for
// concurrent use: every mutation and counter read happens under mu
// (per-Host state is additionally guarded by the Host's own lock).
type Manager struct {
	mu         sync.Mutex
	cfg        Config
	servers    []*Server
	byName     map[string]*Server
	placements map[string]*Server

	// Incremental capacity index: one ordered index per partition keyed
	// by dominant free share, a per-partition component-wise max capacity
	// (the safe lower bound for index scans), and the dirty set fed by
	// the hosts' aggregate-change callbacks.
	indexes    map[int]*capindex.Index
	partMaxCap map[int]resources.Vector
	dirty      *capindex.DirtySet

	// Cluster-wide totals for O(1) Stats: capacity is exact (updated on
	// AddServer); committed and allocated are delta-maintained from the
	// per-server aggregate refreshes, applied in the dirty set's sorted
	// drain order so they stay deterministic.
	totCapacity  resources.Vector
	totCommitted resources.Vector
	totAllocated resources.Vector

	// deflationEvents counts how many times an existing VM's allocation
	// was reduced to admit another VM; rejections counts
	// admission-control failures. Both are read through the locked
	// accessors below — they used to be exported fields, which let
	// callers race against PlaceVM.
	deflationEvents int
	rejections      int

	// cands is the reusable under-pressure candidate buffer; affected
	// and reinflateErrs are the RemoveVMs batch buffers. All are used
	// only under mu, so reusing them keeps the hot paths allocation-free
	// in steady state.
	cands         candList
	affected      []*Server
	reinflateErrs []error
}

// DeflationEvents returns how many times an existing VM's allocation
// was reduced to admit another VM.
func (m *Manager) DeflationEvents() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deflationEvents
}

// Rejections returns the number of admission-control failures.
func (m *Manager) Rejections() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejections
}

// NewManager creates a manager with the given configuration.
func NewManager(cfg Config) *Manager {
	cfg.applyDefaults()
	return &Manager{
		cfg:        cfg,
		byName:     make(map[string]*Server),
		placements: make(map[string]*Server),
		indexes:    make(map[int]*capindex.Index),
		partMaxCap: make(map[int]resources.Vector),
		dirty:      capindex.NewDirtySet(),
	}
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// AddServer registers a new physical server. When partitioning is
// enabled, partition assigns its pool; pass 0..PriorityLevels-1.
func (m *Manager) AddServer(name string, capacity resources.Vector, partition int) (*Server, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.servers {
		if s.Host.Name() == name {
			return nil, fmt.Errorf("%w: server %s", ErrExists, name)
		}
	}
	h, err := hypervisor.NewHost(hypervisor.HostConfig{Name: name, Capacity: capacity})
	if err != nil {
		return nil, err
	}
	if !m.cfg.PartitionByPriority {
		partition = -1
	}
	s := &Server{Host: h, Partition: partition}
	m.servers = append(m.servers, s)
	m.byName[name] = s
	if m.indexes[partition] == nil {
		m.indexes[partition] = capindex.New()
	}
	m.partMaxCap[partition] = m.partMaxCap[partition].Max(capacity)
	m.totCapacity = m.totCapacity.Add(capacity)
	// The callback only records dirtiness; the next query refreshes the
	// server's index key, cached availability and the cluster totals.
	h.OnAggregateChange(func() { m.dirty.Mark(name) })
	m.dirty.Mark(name)
	return s, nil
}

// syncDirtyLocked refreshes cached placement state for every server the
// hosts marked dirty since the last query, in sorted name order. Called
// with m.mu held at the top of every query; between bursts of churn it
// is a no-op.
func (m *Manager) syncDirtyLocked() {
	for _, name := range m.dirty.Drain() {
		s := m.byName[name]
		if s == nil {
			continue
		}
		agg := s.Host.Aggregates()
		m.totCommitted = m.totCommitted.Add(agg.Committed.Sub(s.agg.Committed))
		m.totAllocated = m.totAllocated.Add(agg.Allocated.Sub(s.agg.Allocated))
		s.agg = agg
		total := s.Host.Capacity()
		s.free = total.Sub(agg.Allocated)
		s.freeShare = s.free.DominantShare(total)
		s.avail = availabilityFrom(total, agg)
		m.indexes[s.Partition].Upsert(name, s.freeShare)
	}
}

// Servers returns the managed servers.
func (m *Manager) Servers() []*Server {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Server, len(m.servers))
	copy(out, m.servers)
	return out
}

// PartitionOf maps a VM to its priority pool index.
func (m *Manager) PartitionOf(dc hypervisor.DomainConfig) int {
	if !m.cfg.PartitionByPriority {
		return -1
	}
	if !dc.Deflatable {
		return m.cfg.PriorityLevels - 1 // on-demand VMs share the highest pool
	}
	level := int(dc.Priority * float64(m.cfg.PriorityLevels))
	if level >= m.cfg.PriorityLevels {
		level = m.cfg.PriorityLevels - 1
	}
	if level < 0 {
		level = 0
	}
	return level
}

// Fitness scores a server's availability A for a demand D. Section 5.2
// writes the score as the cosine similarity A·D/(|A||D|), following the
// multi-resource packing of Tetris [19]; Tetris's alignment score keeps
// the magnitude of A (it is a projection, not a pure angle), and the
// paper's own availability vector discounts overcommitted servers
// precisely so that "this approach prefers servers with lower
// overcommitment" — which only has an effect if |A| matters. We
// therefore normalise by |D| only: fitness = A·D/|D|, the length of A's
// projection onto the demand direction.
func Fitness(demand, avail resources.Vector) float64 {
	nd := demand.Norm()
	if nd < 1e-9 {
		nd = 1e-9
	}
	return avail.Dot(demand) / nd
}

// Availability computes the paper's placement availability vector:
// A_j = Total_j - Used_j + deflatable_j/(1 + overcommit_j), where
// deflatable_j is the total resource reclaimable from deflatable VMs and
// overcommit_j discounts servers that are already squeezed. It reads the
// host's cached aggregates, so between allocation changes it is O(1).
func Availability(s *Server) resources.Vector {
	return availabilityFrom(s.Host.Capacity(), s.Host.Aggregates())
}

// availabilityFrom is the availability formula over an aggregate
// snapshot — the one definition shared by the cached per-server vector
// and the fresh reads of the reference path, so the two are bit-equal.
func availabilityFrom(total resources.Vector, agg hypervisor.Aggregates) resources.Vector {
	oc := 0.0
	if c := agg.Committed.DominantShare(total); c > 1 {
		oc = c - 1
	}
	avail := total.Sub(agg.Allocated).Add(agg.DeflatableReserve.Scale(1 / (1 + oc)))
	return avail.ClampNonNegative()
}

// fitMargin pads index lower-bound scans so a server that fits only
// thanks to resources.Vector's FitsIn epsilon is never pruned: any such
// server's free share is below the exact demand share by at most
// eps/capacity, far less than this margin.
const fitMargin = 1e-7

// PlaceVM runs the three-step placement of Section 6: pick the fittest
// server, have it compute the deflation required to make room (possibly
// deflating the newcomer itself), then perform the deflation and launch.
// It returns the running domain and its server, or ErrNoCapacity.
func (m *Manager) PlaceVM(dc hypervisor.DomainConfig) (*hypervisor.Domain, *Server, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.placements[dc.Name]; ok {
		return nil, nil, fmt.Errorf("%w: VM %s", ErrExists, dc.Name)
	}
	m.syncDirtyLocked()
	part := m.PartitionOf(dc)

	// Surplus-first: "when there is surplus capacity in the cluster, the
	// cloud manager allocates these resources ... without deflating"
	// (Section 5). Among servers that can host the VM with no deflation,
	// tightest fit (smallest dominant free share, name-tiebroken)
	// preserves large contiguous capacity for future big VMs; spreading
	// every VM across all servers would leave a little unreclaimable
	// (non-deflatable) allocation everywhere and strand large on-demand
	// arrivals.
	best := m.surplusCandidateLocked(part, dc.Size)
	if best != nil {
		d, deflations, err := PlaceOn(best, m.cfg, dc)
		if err == nil {
			m.deflationEvents += deflations
			m.placements[dc.Name] = best
			return d, best, nil
		}
	}

	// Under pressure: rank by the deflation-aware availability fitness
	// of Section 5.2 and deflate residents on the best server that can
	// absorb the newcomer. The fitness inputs are the cached
	// availability vectors (refreshed above for dirty servers only); the
	// reference path recomputes them from the host aggregates, which is
	// bit-equal.
	cands := m.cands[:0]
	for _, s := range m.servers {
		if part >= 0 && s.Partition != part {
			continue
		}
		avail := s.avail
		if m.cfg.ReferencePlacement {
			avail = Availability(s)
		}
		cands = append(cands, cand{s, Fitness(dc.Size, avail), len(cands)})
	}
	m.cands = cands

	// The newcomer's own deflatable range joins every server's maximum
	// reclaim for the feasibility pre-filter below.
	var ncRange resources.Vector
	if dc.Deflatable {
		ncRange = dc.Size.Sub(dc.Floor()).ClampNonNegative()
	}

	// The visit order is (fitness desc, idx asc) — but the top-ranked
	// server absorbs the newcomer in the overwhelmingly common case, so
	// the full O(S log S) sort is deferred: try the argmax first (one
	// linear scan; ascending scan with strict > keeps the idx asc
	// tie-break), and only if that server cannot make room sort the
	// whole list and continue from rank 1. The sequence of servers
	// tried is exactly the sorted order either way.
	first := -1
	for i := range cands {
		if first < 0 || cands[i].fitness > cands[first].fitness {
			first = i
		}
	}
	if first >= 0 && cands[first].s != best {
		if d, s, ok := m.tryPlaceLocked(cands[first].s, dc, ncRange); ok {
			return d, s, nil
		}
	}
	if first >= 0 {
		sort.Sort(&m.cands)
		for rank, c := range m.cands {
			if c.s == best || rank == 0 {
				continue // already tried above (argmax == rank 0)
			}
			if d, s, ok := m.tryPlaceLocked(c.s, dc, ncRange); ok {
				return d, s, nil
			}
		}
	}
	m.rejections++
	return nil, nil, fmt.Errorf("%w: %s (size %v)", ErrNoCapacity, dc.Name, dc.Size)
}

// reserveMargin pads the feasibility pre-filter so it can only skip
// servers the policy pass would certainly refuse: the pass accepts when
// it frees need within 1e-6, and its freed amount can differ from the
// cached reserve bound only by accumulated float round-off, orders of
// magnitude below this margin.
const reserveMargin = 1e-3

// tryPlaceLocked attempts one under-pressure placement, recording the
// bookkeeping on success. Infeasible servers — where even deflating
// every resident to its floor plus the newcomer's own range cannot
// cover the shortfall — are skipped from the cached aggregates without
// running the policy pass, which turns an admission-control rejection
// from O(servers × policy pass) into O(servers) vector compares.
// Called with m.mu held; the cached free/reserve vectors are valid
// because failed placement attempts never mutate host state.
func (m *Manager) tryPlaceLocked(s *Server, dc hypervisor.DomainConfig, ncRange resources.Vector) (*hypervisor.Domain, *Server, bool) {
	limit := s.agg.DeflatableReserve.Add(ncRange)
	for _, k := range resources.Kinds {
		if dc.Size.Get(k)-s.free.Get(k) > limit.Get(k)+reserveMargin {
			return nil, nil, false
		}
	}
	d, deflations, err := PlaceOn(s, m.cfg, dc)
	if err != nil {
		return nil, nil, false
	}
	m.deflationEvents += deflations
	m.placements[dc.Name] = s
	return d, s, true
}

// cand is one under-pressure placement candidate. idx is the pool
// position, which makes the (fitness desc, idx asc) order a strict
// total order: sorting with any algorithm yields the stable-descending
// ranking, without the reflection-based swapper sort.SliceStable costs
// on a struct slice (it showed up at ~20% of a 100k-VM run's profile).
type cand struct {
	s       *Server
	fitness float64
	idx     int
}

type candList []cand

func (c candList) Len() int      { return len(c) }
func (c candList) Swap(i, j int) { c[i], c[j] = c[j], c[i] }
func (c candList) Less(i, j int) bool {
	if c[i].fitness != c[j].fitness {
		return c[i].fitness > c[j].fitness
	}
	return c[i].idx < c[j].idx
}

// surplusCandidateLocked returns the tightest-fit server that can host
// size without any deflation — the server with the smallest (dominant
// free share, name) among those whose free vector fits size — or nil.
// The indexed path scans the partition's ordered index ascending from a
// demand-share lower bound, so it inspects O(log S) plus however many
// near-full servers fit on the dominant dimension but not the others;
// the reference path scans every server and applies the identical
// minimisation.
func (m *Manager) surplusCandidateLocked(part int, size resources.Vector) *Server {
	if m.cfg.ReferencePlacement {
		var best *Server
		bestKey := 0.0
		for _, s := range m.servers {
			if part >= 0 && s.Partition != part {
				continue
			}
			total := s.Host.Capacity()
			free := total.Sub(s.Host.Aggregates().Allocated)
			if !size.FitsIn(free) {
				continue
			}
			key := free.DominantShare(total)
			if best == nil || key < bestKey || (key == bestKey && s.Host.Name() < best.Host.Name()) {
				best, bestKey = s, key
			}
		}
		return best
	}
	ix := m.indexes[part]
	if ix == nil {
		return nil
	}
	// Any fitting server's free share is at least the demand's dominant
	// share of the partition's largest capacity (minus float fuzz), so
	// everything below that bound can be pruned.
	lower := size.DominantShare(m.partMaxCap[part]) - fitMargin
	var found *Server
	ix.AscendFrom(lower, func(name string, _ float64) bool {
		s := m.byName[name]
		if size.FitsIn(s.free) {
			found = s
			return false
		}
		return true
	})
	return found
}

// FitsWithoutDeflation reports whether any server in the cluster
// (regardless of partition) can host size with no deflation. The
// simulation engine uses it to count reclamation attempts; with the
// capacity index the check is O(partitions × log S) instead of a full
// scan.
func (m *Manager) FitsWithoutDeflation(size resources.Vector) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncDirtyLocked()
	if m.cfg.ReferencePlacement {
		for _, s := range m.servers {
			if size.FitsIn(s.Host.Capacity().Sub(s.Host.Aggregates().Allocated)) {
				return true
			}
		}
		return false
	}
	for part := range m.indexes {
		if m.surplusCandidateLocked(part, size) != nil {
			return true
		}
	}
	return false
}

// PlaceOn attempts placement on one server, implementing steps 2 and 3
// of the placement protocol: the server computes the deflation needed to
// host dc and, if feasible, applies it and launches the VM. It returns
// the new domain and how many resident VMs were deflated. PlaceOn is
// used both by the in-process Manager and by the per-server local
// controller daemon (cmd/noded).
func PlaceOn(s *Server, cfg Config, dc hypervisor.DomainConfig) (*hypervisor.Domain, int, error) {
	cfg.applyDefaults()
	initial, deflations, err := deflateFor(s, cfg, dc)
	if err != nil {
		return nil, deflations, err // insufficient: caller tries the next server
	}
	d, err := launch(s, cfg, dc, initial)
	return d, deflations, err
}

// newcomerName is the placeholder under which a deflatable newcomer
// joins its own admission's policy pass. The NUL prefix cannot collide
// with a real domain name.
const newcomerName = "\x00newcomer"

// deflateFor is PlaceOn's policy pass: it computes and applies the
// deflation that makes room for dc on s, and returns the newcomer's
// initial allocation. The pass reads the host's cached VM-state view
// and runs the policy through the server's scratch arena, then applies
// targets in the view's name order — so steady-state calls perform zero
// heap allocations and notification delivery is deterministic.
func deflateFor(s *Server, cfg Config, dc hypervisor.DomainConfig) (resources.Vector, int, error) {
	free := s.Host.Capacity().Sub(s.Host.Allocated())
	need := dc.Size.Sub(free).ClampNonNegative()
	if need.IsZero() {
		// Room available without any deflation.
		return dc.Size, 0, nil
	}

	// Collect deflatable VMs from the host's cached view; the newcomer
	// joins the pool if it is itself deflatable ("a new incoming VM ...
	// can thus start its execution in a deflated mode", Section 5.1.1).
	sc := &s.scratch
	sc.vms, sc.doms = sc.vms[:0], sc.doms[:0]
	sc.vms, sc.doms = s.Host.AppendDeflatableView(sc.vms, sc.doms)
	nResident := len(sc.vms)
	if dc.Deflatable {
		sc.vms = append(sc.vms, policy.VMState{
			Name:     newcomerName,
			Max:      dc.Size,
			Min:      dc.Floor(),
			Priority: dc.Priority,
			Current:  dc.Size, // joins at full size; policy shrinks it
		})
	}

	res, err := cfg.Policy.TargetsInto(sc.vms, need, &sc.ps)
	if err != nil {
		return resources.Vector{}, 0, err
	}

	// Apply deflation to resident VMs, in the view's name order.
	deflations := 0
	for i := 0; i < nResident; i++ {
		d := sc.doms[i]
		if res.Targets[i].DeflationFraction(d.Allocation()) > 1e-9 {
			deflations++
		}
		if err := applyAndNotify(s, cfg, d, res.Targets[i], nil); err != nil {
			return resources.Vector{}, deflations, err
		}
	}
	initial := dc.Size
	if dc.Deflatable {
		initial = res.Targets[nResident]
	}
	return initial, deflations, nil
}

// launch defines, starts and initially sizes the new domain.
func launch(s *Server, cfg Config, dc hypervisor.DomainConfig, initial resources.Vector) (*hypervisor.Domain, error) {
	d, err := s.Host.Define(dc)
	if err != nil {
		return nil, err
	}
	if err := d.Start(); err != nil {
		s.Host.Undefine(dc.Name)
		return nil, err
	}
	if initial != dc.Size {
		if _, err := cfg.Mechanism.Apply(d, initial); err != nil {
			d.Shutdown()
			s.Host.Undefine(dc.Name)
			return nil, err
		}
	}
	return d, nil
}

// LookupVM finds a placed VM's domain and server.
func (m *Manager) LookupVM(name string) (*hypervisor.Domain, *Server, error) {
	m.mu.Lock()
	s, ok := m.placements[name]
	m.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: VM %s", ErrNotFound, name)
	}
	d, err := s.Host.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	return d, s, nil
}

// RemoveVM stops and removes a VM, then reinflates the survivors on its
// server with the freed resources (R = -R_free, Section 5.1.3).
func (m *Manager) RemoveVM(name string) error {
	return m.RemoveVMs(name)
}

// RemoveVMs removes a batch of VMs and then reinflates each affected
// server exactly once — the batched form the simulation engine uses to
// coalesce simultaneous departures, which turns k same-instant
// departures from one server into one policy pass instead of k. Servers
// reinflate in the order they are first touched by names, so the result
// is deterministic for a deterministic name order; with
// Config.ReinflateShards > 1 the per-server passes run in parallel (see
// reinflateAffected), which changes only the wall clock.
func (m *Manager) RemoveVMs(names ...string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	affected := m.affected[:0]
	seen := map[*Server]bool{}
	remove := func(name string) error {
		s, ok := m.placements[name]
		if !ok {
			return fmt.Errorf("%w: VM %s", ErrNotFound, name)
		}
		d, err := s.Host.Lookup(name)
		if err != nil {
			return err
		}
		if d.State() == hypervisor.Running {
			if err := d.Shutdown(); err != nil {
				return err
			}
		}
		if err := s.Host.Undefine(name); err != nil {
			return err
		}
		delete(m.placements, name)
		if !seen[s] {
			seen[s] = true
			affected = append(affected, s)
		}
		return nil
	}
	var firstErr error
	for _, name := range names {
		if err := remove(name); err != nil {
			// Stop removing, but fall through to reinflation: servers
			// whose VMs already left must not keep their survivors
			// deflated just because a later name in the batch was bad.
			firstErr = err
			break
		}
	}
	m.affected = affected
	if err := m.reinflateAffected(affected); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// reinflateAffected runs one reinflation pass per affected server.
// Sequentially the servers are processed in first-touched order; with
// ReinflateShards > 1 server i goes to worker i % shards, every worker
// joins a barrier, and buffered notification events are then published
// in the same first-touched server order (events within one server are
// already in name order). Per-server passes touch only their own host
// and scratch arena, so the resulting allocations — and the error
// reported, always the first in server order — are bit-for-bit
// identical at any shard count.
func (m *Manager) reinflateAffected(affected []*Server) error {
	shards := m.cfg.ReinflateShards
	if shards > len(affected) {
		shards = len(affected)
	}
	if shards <= 1 {
		var firstErr error
		for _, s := range affected {
			if err := Reinflate(s, m.cfg); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := m.reinflateErrs[:0]
	for range affected {
		errs = append(errs, nil)
	}
	m.reinflateErrs = errs
	buffer := m.cfg.Notify != nil
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(affected); i += shards {
				s := affected[i]
				if buffer {
					s.scratch.events = s.scratch.events[:0]
					errs[i] = reinflate(s, m.cfg, &s.scratch.events)
				} else {
					errs[i] = reinflate(s, m.cfg, nil)
				}
			}
		}(w)
	}
	wg.Wait()
	if buffer {
		for _, s := range affected {
			for _, ev := range s.scratch.events {
				m.cfg.Notify.Publish(ev)
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Reinflate redistributes free capacity to deflated VMs on s ("run the
// proportional deflation backwards", Section 5.1.3). Like PlaceOn it is
// shared between the in-process Manager and the local controller daemon.
// The host's cached Deflated count short-circuits the common case where
// nothing on the server is deflated, without walking its domains.
func Reinflate(s *Server, cfg Config) error {
	cfg.applyDefaults()
	return reinflate(s, cfg, nil)
}

// reinflate is the reinflation policy pass. Like deflateFor it consumes
// the host's cached VM-state view through the server's scratch arena
// and applies targets in name order, so steady-state calls are
// allocation-free. A non-nil events buffer receives the notification
// events instead of the bus (the parallel batch path).
func reinflate(s *Server, cfg Config, events *[]notify.Event) error {
	agg := s.Host.Aggregates()
	if agg.Deflated == 0 {
		return nil
	}
	free := s.Host.Capacity().Sub(agg.Allocated).ClampNonNegative()
	if free.IsZero() {
		return nil
	}
	sc := &s.scratch
	sc.vms, sc.doms = sc.vms[:0], sc.doms[:0]
	sc.vms, sc.doms = s.Host.AppendDeflatableView(sc.vms, sc.doms)
	if len(sc.vms) == 0 {
		return nil
	}
	res, err := cfg.Policy.TargetsInto(sc.vms, free.Scale(-1), &sc.ps)
	if err != nil && !errors.Is(err, policy.ErrInsufficient) {
		return err
	}
	for i := range sc.doms {
		if err := applyAndNotify(s, cfg, sc.doms[i], res.Targets[i], events); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarises the cluster's resource state.
type Stats struct {
	Servers   int
	VMs       int
	Capacity  resources.Vector
	Committed resources.Vector
	Allocated resources.Vector
	// Overcommit is committed/capacity - 1 on the dominant dimension
	// (0 when under-committed).
	Overcommit float64
}

// Stats returns the current cluster-wide statistics. The vectors come
// from the delta-maintained totals, so the call is O(dirty servers)
// amortised — effectively O(1) between churn — instead of a walk over
// every domain in the cluster. Committed/Allocated can differ from a
// from-scratch summation by accumulated float round-off on the order of
// 1e-12 relative; the per-server aggregates themselves are always exact.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncDirtyLocked()
	st := Stats{
		Servers:   len(m.servers),
		VMs:       len(m.placements),
		Capacity:  m.totCapacity,
		Committed: m.totCommitted,
		Allocated: m.totAllocated,
	}
	oc := st.Committed.DominantShare(st.Capacity)
	if oc > 1 {
		st.Overcommit = oc - 1
	}
	return st
}
