// Package cluster implements the centralized cluster manager of Sections
// 5.2 and 6: deflation-aware VM placement using cosine-similarity
// fitness, optional priority-partitioned server pools, the three-step
// placement protocol (choose best server → compute required deflation →
// deflate and launch), reinflation on VM departure, and admission
// control when even maximal deflation cannot make room.
//
// # Placement at scale
//
// The manager keeps two incremental indexes (capindex) per priority
// partition, maintained together under one dirty-flag discipline:
//
//   - the surplus index, keyed by dominant free share, answering the
//     tightest-fit "who can host this with no deflation" query in
//     O(log servers);
//   - the pressure index, keyed by |availability| — a demand-independent
//     upper bound on any VM's achievable cosine fitness (Cauchy–
//     Schwarz: A·D/|D| <= |A| for non-negative vectors) — answering the
//     under-pressure ranking by a best-first branch-and-bound descent
//     (pressure.go) that computes exact fitness only until the running
//     best provably beats the bound of every unexplored server.
//
// Hypervisor aggregate-change callbacks mark servers dirty; each query
// first refreshes only the dirty servers, so neither pass ever re-walks
// a clean server's domains. Config.ReferencePlacement retains the
// brute-force linear-scan path, and Config.FullPressureScan the linear
// indexed pressure scan; all paths implement the identical selection
// rule and the differential test suite asserts they place bit-for-bit
// identically.
//
// With Config.PlacementPartitions > 1 the servers are split across
// placement partitions, each owning its own indexes, dirty set and
// scratch arenas, and batch placements (PlaceVMs) run a parallel
// propose / serial commit protocol whose results are bit-for-bit
// identical at any partition count — see partition.go for the protocol
// and its invariants.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"vmdeflate/internal/cluster/capindex"
	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/notify"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
)

// applyAndNotify applies target to d via cfg.Mechanism and publishes an
// allocation-change event when a bus is configured. When buf is non-nil
// the event is appended there instead of published — the parallel
// reinflation path buffers per-server events and publishes them merged
// in deterministic server order after its barrier.
func applyAndNotify(s *Server, cfg Config, d *hypervisor.Domain, target resources.Vector, buf *[]notify.Event) error {
	old := d.Allocation()
	got, err := cfg.Mechanism.Apply(d, target)
	if err != nil {
		return err
	}
	if cfg.Notify != nil && got != old {
		ev := notify.Event{
			VM:                d.Name(),
			Server:            s.Host.Name(),
			Kind:              notify.Classify(old, got),
			Old:               old,
			New:               got,
			DeflationFraction: d.DeflationFraction(),
			Mechanism:         d.DeflatedBy(),
		}
		if buf != nil {
			*buf = append(*buf, ev)
		} else {
			cfg.Notify.Publish(ev)
		}
	}
	return nil
}

// Errors returned by the manager.
var (
	// ErrNoCapacity is an admission-control rejection: no server can host
	// the VM even after deflating every deflatable VM to its floor. In
	// Figure 20's terms this is a "failure to reclaim sufficient
	// resources".
	ErrNoCapacity = errors.New("cluster: no server can host the VM")
	// ErrNotFound reports an unknown VM or server.
	ErrNotFound = errors.New("cluster: not found")
	// ErrExists reports a duplicate name.
	ErrExists = errors.New("cluster: already exists")
	// ErrHeadroom is a shock-aware admission rejection: the cluster has
	// room for the VM, but placing it would eat into the evacuation
	// headroom reserved against forecast revocation mass (Config.Risk).
	// Headroom rejections also satisfy errors.Is(err, ErrNoCapacity) —
	// they ARE admission-control rejections, and callers that only
	// classify accept/reject must not need to know about risk — while
	// ErrHeadroom lets callers attribute the cause.
	ErrHeadroom = errors.New("cluster: admission withheld for forecast evacuation headroom")
)

// Config parameterises a Manager.
type Config struct {
	// Policy is the server-level deflation policy.
	Policy policy.Policy
	// Mechanism applies deflation targets to domains.
	Mechanism mechanism.Mechanism
	// PartitionByPriority places VMs only on servers of their priority
	// pool (Section 5.2.1). Non-deflatable VMs use pool 0.
	PartitionByPriority bool
	// PriorityLevels is the number of discrete priority levels (4 in the
	// paper's simulation).
	PriorityLevels int
	// Notify, when set, receives an event for every allocation change
	// (Figure 1's notification to the application manager / load
	// balancer).
	Notify *notify.Bus
	// ReferencePlacement selects the retained brute-force placement path
	// — linear scans over every server — instead of the capacity index.
	// Both paths implement the identical selection rule and produce
	// bit-for-bit identical placements; the flag exists for differential
	// testing and for measuring what the index buys.
	ReferencePlacement bool
	// FullPressureScan keeps the linear indexed under-pressure scan —
	// every pool server scored from its cached availability vector —
	// instead of the bound-pruned best-first descent over the pressure
	// index. Both paths realize the identical strict candidate order
	// (band asc, fitness desc, add-index asc) and place bit-for-bit
	// identically; the flag exists for differential testing and for
	// measuring what the pruning buys (make bench-pressure).
	FullPressureScan bool
	// ReinflateShards caps how many goroutines a RemoveVMs batch may use
	// to reinflate its affected servers. 0 or 1 keeps reinflation
	// strictly sequential. Per-server reinflation reads and writes only
	// that server's host state, so the results are bit-for-bit identical
	// at any shard count; notification events are buffered per server
	// and published in the same deterministic first-touched server order
	// the sequential path uses.
	ReinflateShards int
	// PlacementPartitions splits the servers across this many placement
	// partitions (round-robin by add order), each owning its own
	// capacity-index treaps, dirty set and propose arenas. Batch
	// placements (PlaceVMs) then propose in parallel across partitions
	// and commit serially in input order — see partition.go. 0 or 1
	// keeps the fully sequential engine. Placement results, counters and
	// notifications are bit-for-bit identical at any partition count
	// (guarded by the differential suites); the knob trades propose
	// parallelism against per-batch barrier overhead. Forced to 1 when
	// ReferencePlacement is set.
	PlacementPartitions int
	// CollectTimings accumulates per-phase wall times
	// (propose/commit/reinflate), readable through
	// Manager.PhaseTimings. Off by default: the clock reads sit on the
	// per-batch paths, and benchmarks should not pay for them unasked.
	// Timing collection never influences any placement outcome.
	CollectTimings bool
	// Risk, when set, turns on the revocation-risk machinery: servers
	// carry a hazard band and a headroom reserve fraction
	// (AddServerSpec), admission withholds capacity that forecast
	// evacuations will need (ErrHeadroom), and high-priority VMs prefer
	// low-hazard servers through the banded candidate order. Nil keeps
	// every placement path bit-identical to the risk-unaware manager.
	Risk *RiskConfig
}

// RiskConfig parameterises shock-aware admission and placement.
type RiskConfig struct {
	// HighPriority is the priority at or above which a deflatable VM
	// gets the hazard-aware candidate order — and, like non-deflatable
	// VMs, bypasses the headroom admission gate (it is the revenue the
	// reserve protects). Default 0.75.
	HighPriority float64
	// MaxBands is how many hazard bands servers quantise into; the
	// banded candidate order prefers lower bands. Default 4.
	MaxBands int
}

func (c *Config) applyDefaults() {
	if c.Policy == nil {
		c.Policy = policy.Proportional{}
	}
	if c.Mechanism == nil {
		c.Mechanism = mechanism.Transparent{}
	}
	if c.PriorityLevels <= 0 {
		c.PriorityLevels = 4
	}
	// Clone Risk only when a default is actually missing: applyDefaults
	// runs on every PlaceOn call, and a normalised config (NewManager
	// normalises once) must not allocate on the placement hot path.
	if c.Risk != nil && (c.Risk.HighPriority <= 0 || c.Risk.MaxBands <= 0) {
		r := *c.Risk
		if r.HighPriority <= 0 {
			r.HighPriority = 0.75
		}
		if r.MaxBands <= 0 {
			r.MaxBands = 4
		}
		c.Risk = &r
	}
}

// WithDefaults returns a copy of c with unset fields filled in
// (proportional policy, transparent mechanism, 4 priority levels).
func (c Config) WithDefaults() Config {
	c.applyDefaults()
	return c
}

// Server is one managed physical server.
type Server struct {
	Host *hypervisor.Host
	// Partition is the server's priority pool (0-based); -1 when
	// partitioning is disabled.
	Partition int
	// gidx is the server's add order within its Manager — the canonical
	// tie-break for equal-fitness candidates, stable across placement
	// partition counts. Zero for standalone servers.
	gidx int
	// revoked marks a server the provider took away (RevokeServers): it
	// stays registered — keeping gidx and partition membership stable —
	// but leaves the capacity indexes and is skipped by every candidate
	// scan until RestoreServer clears the flag. Guarded by the Manager's
	// lock like the cached fields below.
	revoked bool
	// band is the server's hazard band (0 = lowest revocation hazard),
	// set at AddServerSpec from the risk model and immutable after: the
	// banded candidate order must be a pure function of configuration,
	// never of anything a run computes. Always 0 without Config.Risk.
	band int
	// reserveFrac/reserve is the server's contribution to the cluster's
	// evacuation-headroom reserve: reserveFrac of its capacity,
	// recomputed on resize, subtracted while the server is revoked (its
	// risk is then realised, not forecast). Guarded by the Manager's
	// lock.
	reserveFrac float64
	reserve     resources.Vector

	// Cached placement state, refreshed by the owning Manager's dirty
	// sync (syncDirtyLocked) and read only under the Manager's lock.
	// Servers constructed standalone (e.g. the per-node daemon wrapping
	// one Server for PlaceOn/Reinflate) never populate these.
	agg       hypervisor.Aggregates // aggregates at last sync, for delta totals
	free      resources.Vector      // capacity - allocated
	freeShare float64               // free.DominantShare(capacity): the index key
	avail     resources.Vector      // the Section 5.2 availability vector

	// scratch is the server's policy-pass arena: the VM-state/domain
	// buffers PlaceOn and Reinflate fill from the host's cached view,
	// plus the policy.Scratch the water-filling solvers run in. One
	// arena per server means concurrent passes on distinct servers
	// (parallel reinflation shards) never contend, and steady-state
	// passes never allocate. Guarded by whatever serialises passes on
	// this server: the Manager's lock, or the shard assignment that
	// gives each server to exactly one worker.
	scratch serverScratch
}

// serverScratch holds the reusable buffers for one server's policy
// passes.
type serverScratch struct {
	vms    []policy.VMState
	doms   []*hypervisor.Domain
	ps     policy.Scratch
	events []notify.Event // parallel-reinflation event buffer
}

// Manager is the centralized cluster manager. All methods are safe for
// concurrent use: every mutation and counter read happens under mu
// (per-Host state is additionally guarded by the Host's own lock).
type Manager struct {
	mu         sync.Mutex
	cfg        Config
	servers    []*Server
	byName     map[string]*Server
	placements map[string]*Server

	// Placement partitions: each owns, for its round-robin share of the
	// servers, the per-priority-pool capacity indexes, the dirty set fed
	// by its hosts' aggregate-change callbacks, and the propose/sync
	// arenas of the parallel batch engine (partition.go). Always at
	// least one.
	parts []*placePartition

	// Cluster-wide totals for O(1) Stats: capacity is exact (updated on
	// AddServer); committed and allocated are delta-maintained from the
	// per-server aggregate refreshes, applied in the dirty set's sorted
	// drain order so they stay deterministic.
	totCapacity  resources.Vector
	totCommitted resources.Vector
	totAllocated resources.Vector

	// deflationEvents counts how many times an existing VM's allocation
	// was reduced to admit another VM; rejections counts
	// admission-control failures. Both are read through the locked
	// accessors below — they used to be exported fields, which let
	// callers race against PlaceVM.
	deflationEvents int
	rejections      int

	// Revocation-risk state (Config.Risk): nBands is the hazard-band
	// count the (pool, band) index keys are laid out for — 1 without a
	// risk config, so the keys degenerate to the historical pure-pool
	// keys. reserve is the cluster evacuation-headroom reserve (the sum
	// of in-service servers' contributions, maintained incrementally in
	// event order so every engine configuration folds the identical
	// float sequence), and riskRejections counts admissions the
	// headroom gate refused (a subset of rejections).
	nBands         int
	reserve        resources.Vector
	riskRejections int

	// Capacity-shock state (revoke.go): how many servers are currently
	// revoked, whether the placement engine is running a relocation
	// batch (whose failures must not count as admission rejections), and
	// the reusable displaced-VM batch buffer.
	revokedCount int
	evacuating   bool
	evacDCs      []hypervisor.DomainConfig

	// cands is the reusable under-pressure candidate buffer of the
	// full-scan path; affected and reinflateErrs are the RemoveVMs batch
	// buffers. All are used only under mu, so reusing them keeps the hot
	// paths allocation-free in steady state.
	cands         candList
	affected      []*Server
	reinflateErrs []error

	// Pruned pressure-scan arenas (pressure.go), used only under mu:
	// the descending bound-index iterators (one per group index, inner
	// stacks reused across scans), the candBefore-ordered min-heap of
	// exactly-scored candidates, and the group key scratch.
	pressIters []capindex.DescIter
	pressHeap  candList
	pressKeys  []int

	// Pressure-scan observability, maintained on every placement path:
	// how many arrivals fell through to the under-pressure ranking, how
	// many servers had their exact fitness computed, and how many the
	// bound/fit pruning skipped. pressuredArrivals is invariant across
	// scan modes and partition/shard counts; scored and pruned are
	// partition-invariant but differ between the pruned and full-scan
	// modes by construction.
	pressuredArrivals int
	pressureScored    int
	pressurePruned    int

	// Batch-placement state, reused across PlaceVMs calls and touched
	// only under mu (the propose arenas live on the partitions). The
	// touched set tracks servers mutated by earlier commits of the
	// current batch — the conflict signal for proposal validation.
	one         [1]hypervisor.DomainConfig
	results     []Placement
	batchDCs    []hypervisor.DomainConfig
	batchPools  []int
	batchBanded []bool
	touched     map[*Server]bool
	touchedList []*Server
	foldHeads   []int
	mfIdx       []*capindex.Index
	mfLow       []float64

	// Phase worker pool (partition.go): lazily spawned when there is
	// more than one partition, stopped by Close. phase is the
	// dispatcher-to-worker argument, ordered by the work channel.
	phase  int
	workCh chan int
	wg     sync.WaitGroup
	closed bool

	// Per-phase wall-time accumulators (Config.CollectTimings), written
	// under mu by the placement/reinflation paths. surplusTime and
	// pressureTime are serial sub-phases included within commitTime —
	// the surplus candidate queries and under-pressure scans of the
	// sequential and commit paths (the parallel propose phase's surplus
	// work is measured as proposeTime and never double-booked here).
	proposeTime   time.Duration
	commitTime    time.Duration
	surplusTime   time.Duration
	pressureTime  time.Duration
	reinflateTime time.Duration
}

// PhaseTimings is the per-phase wall-time breakdown a manager
// accumulates when Config.CollectTimings is set: the parallel propose
// phase, the serial commit walk (all serial placement time, on the
// single-partition path as much as the batch engine), and the
// reinflation passes. Surplus and Pressure attribute the commit time
// further — the surplus candidate queries and the under-pressure scans
// — and are included within Commit, not additional to it, so artifacts
// compare like with like across partition counts.
type PhaseTimings struct {
	Propose   time.Duration
	Commit    time.Duration
	Surplus   time.Duration
	Pressure  time.Duration
	Reinflate time.Duration
}

// PhaseTimings returns the accumulated phase timings (zero unless
// Config.CollectTimings is set).
func (m *Manager) PhaseTimings() PhaseTimings {
	m.mu.Lock()
	defer m.mu.Unlock()
	return PhaseTimings{
		Propose:   m.proposeTime,
		Commit:    m.commitTime,
		Surplus:   m.surplusTime,
		Pressure:  m.pressureTime,
		Reinflate: m.reinflateTime,
	}
}

// PressureStats returns the under-pressure scan counters: how many
// placements fell through to the pressure ranking, how many servers had
// their exact fitness computed, and how many the bound/fit pruning
// skipped without scoring. Arrivals is invariant across scan modes and
// partition/shard counts; scored and pruned are partition-invariant but
// differ between the pruned descent and the full-scan/reference modes
// (a full scan scores every pool server and prunes none).
func (m *Manager) PressureStats() (arrivals, scored, pruned int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pressuredArrivals, m.pressureScored, m.pressurePruned
}

// DeflationEvents returns how many times an existing VM's allocation
// was reduced to admit another VM.
func (m *Manager) DeflationEvents() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deflationEvents
}

// Rejections returns the number of admission-control failures.
func (m *Manager) Rejections() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejections
}

// RiskRejections returns how many arrivals the shock-aware admission
// gate refused to protect forecast evacuation headroom — a subset of
// Rejections. Always zero without Config.Risk.
func (m *Manager) RiskRejections() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.riskRejections
}

// HeadroomReserve returns the current evacuation-headroom reserve: the
// sum of the in-service servers' reserve contributions.
func (m *Manager) HeadroomReserve() resources.Vector {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reserve
}

// NewManager creates a manager with the given configuration.
func NewManager(cfg Config) *Manager {
	cfg.applyDefaults()
	nParts := cfg.PlacementPartitions
	if nParts < 1 || cfg.ReferencePlacement {
		nParts = 1
	}
	nBands := 1
	if cfg.Risk != nil {
		nBands = cfg.Risk.MaxBands
	}
	m := &Manager{
		cfg:        cfg,
		byName:     make(map[string]*Server),
		placements: make(map[string]*Server),
		parts:      make([]*placePartition, nParts),
		nBands:     nBands,
	}
	for i := range m.parts {
		m.parts[i] = &placePartition{
			id:      i,
			indexes: make(map[int]*capindex.Index),
			bounds:  make(map[int]*capindex.Index),
			maxCap:  make(map[int]resources.Vector),
			dirty:   capindex.NewDirtySet(),
		}
	}
	return m
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// AddServer registers a new physical server. When partitioning is
// enabled, partition assigns its pool; pass 0..PriorityLevels-1.
func (m *Manager) AddServer(name string, capacity resources.Vector, partition int) (*Server, error) {
	return m.AddServerSpec(ServerSpec{Name: name, Capacity: capacity, Partition: partition})
}

// ServerSpec describes one server for AddServerSpec: name, capacity and
// priority pool, plus the server's revocation-risk attributes.
type ServerSpec struct {
	Name     string
	Capacity resources.Vector
	// Partition is the priority pool (0..PriorityLevels-1); ignored
	// unless Config.PartitionByPriority.
	Partition int
	// Band is the server's hazard band, 0 = lowest revocation hazard
	// (typically risk.Model.Band). Clamped to [0, Risk.MaxBands); only
	// meaningful with Config.Risk.
	Band int
	// ReserveFraction is the fraction of this server's capacity the
	// admission gate holds back as forecast evacuation headroom
	// (typically the risk model's OutageFraction). Zero contributes no
	// reserve.
	ReserveFraction float64
}

// AddServerSpec registers a new physical server with explicit risk
// attributes. AddServer is the spec with zero band and reserve.
func (m *Manager) AddServerSpec(spec ServerSpec) (*Server, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name, capacity := spec.Name, spec.Capacity
	for _, s := range m.servers {
		if s.Host.Name() == name {
			return nil, fmt.Errorf("%w: server %s", ErrExists, name)
		}
	}
	h, err := hypervisor.NewHost(hypervisor.HostConfig{Name: name, Capacity: capacity})
	if err != nil {
		return nil, err
	}
	partition := spec.Partition
	if !m.cfg.PartitionByPriority {
		partition = -1
	}
	band := spec.Band
	if band < 0 {
		band = 0
	}
	if band >= m.nBands {
		band = m.nBands - 1
	}
	// Round-robin placement-partition assignment by add order: balanced,
	// stable, and independent of anything the run computes.
	pp := m.parts[len(m.servers)%len(m.parts)]
	s := &Server{Host: h, Partition: partition, gidx: len(m.servers), band: band, reserveFrac: spec.ReserveFraction}
	m.servers = append(m.servers, s)
	m.byName[name] = s
	pp.servers = append(pp.servers, s)
	key := m.poolKey(partition, band)
	if pp.indexes[key] == nil {
		pp.indexes[key] = capindex.New()
		pp.bounds[key] = capindex.New()
	}
	pp.maxCap[key] = pp.maxCap[key].Max(capacity)
	m.totCapacity = m.totCapacity.Add(capacity)
	if s.reserveFrac > 0 {
		s.reserve = capacity.Scale(s.reserveFrac)
		m.reserve = m.reserve.Add(s.reserve)
	}
	// The callback only records dirtiness; the next query refreshes the
	// server's index key, cached availability and the cluster totals.
	h.OnAggregateChange(func() { pp.dirty.Mark(name) })
	pp.dirty.Mark(name)
	return s, nil
}

// Band returns the server's hazard band (0 without Config.Risk).
func (s *Server) Band() int { return s.band }

// poolKey maps a (priority pool, hazard band) pair onto one capacity
// index key. Without Config.Risk nBands is 1 and the key equals the
// pool — the historical keying, so risk-off managers exercise exactly
// the legacy index layout. Pools are -1 or 0..PriorityLevels-1 and
// bands 0..nBands-1, so keys never collide across pools.
func (m *Manager) poolKey(pool, band int) int {
	return pool*m.nBands + band
}

// banded reports whether dc gets the hazard-aware candidate order:
// with Config.Risk set, non-deflatable VMs and deflatable VMs at or
// above the HighPriority threshold prefer low-hazard servers.
func (m *Manager) banded(dc hypervisor.DomainConfig) bool {
	if m.cfg.Risk == nil || m.nBands <= 1 {
		return false
	}
	return !dc.Deflatable || dc.Priority >= m.cfg.Risk.HighPriority
}

// riskRejectLocked is the shock-aware admission gate: reject an arrival
// when placing it would eat into the evacuation headroom the forecast
// revocation mass reserves (cluster free capacity after the placement
// would drop below the reserve on some dimension). Evacuation batches
// bypass the gate — the reserve exists precisely so they can land —
// and so do the high-priority and non-deflatable VMs the reserve
// protects. Reads only the canonical delta-maintained totals, so the
// decision is bit-identical at any shard or partition count.
func (m *Manager) riskRejectLocked(dc hypervisor.DomainConfig) bool {
	if m.cfg.Risk == nil || m.evacuating || m.reserve.IsZero() {
		return false
	}
	if !dc.Deflatable || dc.Priority >= m.cfg.Risk.HighPriority {
		return false
	}
	free := m.totCapacity.Sub(m.totAllocated)
	return !dc.Size.Add(m.reserve).FitsIn(free)
}

// Servers returns the managed servers.
func (m *Manager) Servers() []*Server {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Server, len(m.servers))
	copy(out, m.servers)
	return out
}

// PartitionOf maps a VM to its priority pool index.
func (m *Manager) PartitionOf(dc hypervisor.DomainConfig) int {
	if !m.cfg.PartitionByPriority {
		return -1
	}
	if !dc.Deflatable {
		return m.cfg.PriorityLevels - 1 // on-demand VMs share the highest pool
	}
	level := int(dc.Priority * float64(m.cfg.PriorityLevels))
	if level >= m.cfg.PriorityLevels {
		level = m.cfg.PriorityLevels - 1
	}
	if level < 0 {
		level = 0
	}
	return level
}

// Fitness scores a server's availability A for a demand D. Section 5.2
// writes the score as the cosine similarity A·D/(|A||D|), following the
// multi-resource packing of Tetris [19]; Tetris's alignment score keeps
// the magnitude of A (it is a projection, not a pure angle), and the
// paper's own availability vector discounts overcommitted servers
// precisely so that "this approach prefers servers with lower
// overcommitment" — which only has an effect if |A| matters. We
// therefore normalise by |D| only: fitness = A·D/|D|, the length of A's
// projection onto the demand direction.
func Fitness(demand, avail resources.Vector) float64 {
	nd := demand.Norm()
	if nd < 1e-9 {
		nd = 1e-9
	}
	return avail.Dot(demand) / nd
}

// Availability computes the paper's placement availability vector:
// A_j = Total_j - Used_j + deflatable_j/(1 + overcommit_j), where
// deflatable_j is the total resource reclaimable from deflatable VMs and
// overcommit_j discounts servers that are already squeezed. It reads the
// host's cached aggregates, so between allocation changes it is O(1).
func Availability(s *Server) resources.Vector {
	return availabilityFrom(s.Host.Capacity(), s.Host.Aggregates())
}

// availabilityFrom is the availability formula over an aggregate
// snapshot — the one definition shared by the cached per-server vector
// and the fresh reads of the reference path, so the two are bit-equal.
func availabilityFrom(total resources.Vector, agg hypervisor.Aggregates) resources.Vector {
	oc := 0.0
	if c := agg.Committed.DominantShare(total); c > 1 {
		oc = c - 1
	}
	avail := total.Sub(agg.Allocated).Add(agg.DeflatableReserve.Scale(1 / (1 + oc)))
	return avail.ClampNonNegative()
}

// fitMargin pads index lower-bound scans so a server that fits only
// thanks to resources.Vector's FitsIn epsilon is never pruned: any such
// server's free share is below the exact demand share by at most
// eps/capacity, far less than this margin.
const fitMargin = 1e-7

// errExists and errNoCapacity build the placement error values; one
// definition keeps the sequential and batch paths' errors identical.
func errExists(name string) error {
	return fmt.Errorf("%w: VM %s", ErrExists, name)
}

func errNoCapacity(dc hypervisor.DomainConfig) error {
	return fmt.Errorf("%w: %s (size %v)", ErrNoCapacity, dc.Name, dc.Size)
}

func errHeadroom(dc hypervisor.DomainConfig) error {
	return fmt.Errorf("%w: %w: %s (size %v)", ErrNoCapacity, ErrHeadroom, dc.Name, dc.Size)
}

// Placement is one VM's outcome in a PlaceVMs batch.
type Placement struct {
	Domain *hypervisor.Domain
	Server *Server
	Err    error
	// Initial is the domain's allocation right after its own launch,
	// before any later commit of the same batch could deflate it — what
	// a caller placing VMs one at a time would have read back
	// immediately. Zero when Err is set.
	Initial resources.Vector
	// NeedsReclaim records whether, at the moment this VM's placement
	// was decided (after every earlier commit of its batch), no server
	// could host it without deflation — the signal the simulation engine
	// counts as a reclamation attempt.
	NeedsReclaim bool
}

// PlaceVM runs the three-step placement of Section 6: pick the fittest
// server, have it compute the deflation required to make room (possibly
// deflating the newcomer itself), then perform the deflation and launch.
// It returns the running domain and its server, or ErrNoCapacity.
//
// Surplus-first: "when there is surplus capacity in the cluster, the
// cloud manager allocates these resources ... without deflating"
// (Section 5). Among servers that can host the VM with no deflation,
// tightest fit (smallest dominant free share, name-tiebroken) preserves
// large contiguous capacity for future big VMs. Under pressure, servers
// are ranked by the deflation-aware availability fitness of Section 5.2
// and residents are deflated on the best server that can absorb the
// newcomer.
func (m *Manager) PlaceVM(dc hypervisor.DomainConfig) (*hypervisor.Domain, *Server, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.one[0] = dc
	m.placeAllLocked(m.one[:1])
	out := m.results[0]
	return out.Domain, out.Server, out.Err
}

// PlaceVMs places a batch of VMs exactly as if PlaceVM had been called
// for each in order — placements, counters, errors and notifications
// are bit-for-bit identical at any Config.PlacementPartitions — but
// with the proposal work fanned out across the placement partitions:
// every partition proposes, side-effect-free and in parallel, its
// surplus bid (and, for VMs with no surplus anywhere, its
// under-pressure fitness ranking) for every VM of the batch; a serial
// commit pass then walks the VMs in input order, validates each winning
// bid against what earlier commits of the batch consumed, and
// re-proposes only on conflict. The simulation engine feeds it the
// same-timestamp arrival batches of a trace.
//
// Results are appended to out (which may be nil) and the extended slice
// is returned, so a caller owns its results — the Manager stays safe
// for concurrent use — while a loop reusing its buffer
// (`buf = m.PlaceVMs(dcs, buf[:0])`) stays allocation-free in steady
// state.
func (m *Manager) PlaceVMs(dcs []hypervisor.DomainConfig, out []Placement) []Placement {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.placeAllLocked(dcs)
	return append(out, m.results...)
}

// reserveMargin pads the feasibility pre-filter so it can only skip
// servers the policy pass would certainly refuse: the pass accepts when
// it frees need within 1e-6, and its freed amount can differ from the
// cached reserve bound only by accumulated float round-off, orders of
// magnitude below this margin.
const reserveMargin = 1e-3

// cannotReclaim is the feasibility pre-filter shared by tryPlaceLocked
// and the bound-pruned pressure descent: it reports that s certainly
// cannot host dc even after deflating every resident to its floor plus
// the newcomer's own deflatable range. One definition — the identical
// float expressions — is what guarantees the pruned scan's fit-skip set
// equals exactly the set of servers tryPlaceLocked would refuse, so
// skipping them before scoring can never change a placement. Reads only
// cached per-server state; called with the manager's lock held.
func cannotReclaim(s *Server, dc hypervisor.DomainConfig, ncRange resources.Vector) bool {
	limit := s.agg.DeflatableReserve.Add(ncRange)
	for _, k := range resources.Kinds {
		if dc.Size.Get(k)-s.free.Get(k) > limit.Get(k)+reserveMargin {
			return true
		}
	}
	return false
}

// tryPlaceLocked attempts one under-pressure placement, recording the
// bookkeeping on success. Infeasible servers — where even deflating
// every resident to its floor plus the newcomer's own range cannot
// cover the shortfall — are skipped from the cached aggregates without
// running the policy pass, which turns an admission-control rejection
// from O(servers × policy pass) into O(servers) vector compares.
// Called with m.mu held; the cached free/reserve vectors are valid
// because failed placement attempts never mutate host state.
func (m *Manager) tryPlaceLocked(s *Server, dc hypervisor.DomainConfig, ncRange resources.Vector) (*hypervisor.Domain, *Server, bool) {
	if cannotReclaim(s, dc, ncRange) {
		return nil, nil, false
	}
	d, deflations, err := PlaceOn(s, m.cfg, dc)
	if err != nil {
		return nil, nil, false
	}
	m.deflationEvents += deflations
	m.placements[dc.Name] = s
	return d, s, true
}

// cand is one under-pressure placement candidate. idx is the server's
// manager-wide add order (Server.gidx) — a partition-independent total
// order, which is what lets commitPressureLocked merge per-partition
// rankings into exactly the sequential (fitness desc, idx asc) visit
// order; do not replace it with a positional index. The strict total
// order also means sorting with any algorithm yields the
// stable-descending ranking, without the reflection-based swapper
// sort.SliceStable costs on a struct slice (it showed up at ~20% of a
// 100k-VM run's profile).
type cand struct {
	s       *Server
	fitness float64
	idx     int
	// band is the hazard band the candidate order ranks first — the
	// server's band for hazard-aware (banded) VMs, always 0 otherwise,
	// so the legacy (fitness, idx) order is the band-0 special case.
	band int
}

type candList []cand

func (c candList) Len() int      { return len(c) }
func (c candList) Swap(i, j int) { c[i], c[j] = c[j], c[i] }

// Less delegates to candBefore so the sort order and the partitioned
// engine's merge order share one definition — they must stay
// bit-identical or partitioned placement diverges from sequential.
func (c candList) Less(i, j int) bool { return candBefore(c[i], c[j]) }

// surplusCandidateLocked returns the tightest-fit server that can host
// size without any deflation — the server with the smallest (dominant
// free share, name) among those whose free vector fits size, or the
// smallest (hazard band, free share, name) for banded VMs — or nil.
// The indexed path asks every placement partition's ordered index for
// its first fitting entry (ascending from a partition-local
// demand-share lower bound, so each scan inspects O(log S) plus however
// many near-full servers fit on the dominant dimension but not the
// others) and takes the minimum across partitions; the reference path
// scans every server and applies the identical minimisation.
// surplusCandidateTimedLocked is surplusCandidateLocked under the
// surplus sub-phase timer: the serial placement paths (sequential and
// commit) call through it so BENCH artifacts can attribute commit time
// to the surplus query vs the pressure scan. Timing never changes the
// candidate returned.
func (m *Manager) surplusCandidateTimedLocked(pool int, size resources.Vector, banded bool) *Server {
	if !m.cfg.CollectTimings {
		return m.surplusCandidateLocked(pool, size, banded)
	}
	t0 := time.Now()
	s := m.surplusCandidateLocked(pool, size, banded)
	m.surplusTime += time.Since(t0)
	return s
}

func (m *Manager) surplusCandidateLocked(pool int, size resources.Vector, banded bool) *Server {
	if m.cfg.ReferencePlacement {
		var best *Server
		bestKey := 0.0
		bestBand := 0
		for _, s := range m.servers {
			if s.revoked || (pool >= 0 && s.Partition != pool) {
				continue
			}
			total := s.Host.Capacity()
			free := total.Sub(s.Host.Aggregates().Allocated)
			if !size.FitsIn(free) {
				continue
			}
			key := free.DominantShare(total)
			b := 0
			if banded {
				b = s.band
			}
			better := best == nil || b < bestBand ||
				(b == bestBand && (key < bestKey || (key == bestKey && s.Host.Name() < best.Host.Name())))
			if better {
				best, bestKey, bestBand = s, key, b
			}
		}
		return best
	}
	fits := func(n string) bool {
		return size.FitsIn(m.byName[n].free)
	}
	if banded {
		// Bands ascending, first band with any fit wins: the global
		// (band, free share, name) minimum, since each band's MinFitting
		// is that band's (free share, name) minimum across partitions.
		for band := 0; band < m.nBands; band++ {
			key := m.poolKey(pool, band)
			ixs, lows := m.mfIdx[:0], m.mfLow[:0]
			for _, p := range m.parts {
				ix := p.indexes[key]
				var lower float64
				if ix != nil {
					lower = size.DominantShare(p.maxCap[key]) - fitMargin
				}
				ixs, lows = append(ixs, ix), append(lows, lower)
			}
			m.mfIdx, m.mfLow = ixs, lows
			if name, _, ok := capindex.MinFitting(ixs, lows, fits); ok {
				return m.byName[name]
			}
		}
		return nil
	}
	// Any fitting server's free share is at least the demand's dominant
	// share of its index's largest capacity (minus float fuzz), so each
	// index prunes everything below its own bound. All of the pool's
	// band indexes join one MinFitting: band-blind (free share, name).
	ixs, lows := m.mfIdx[:0], m.mfLow[:0]
	for _, p := range m.parts {
		for band := 0; band < m.nBands; band++ {
			key := m.poolKey(pool, band)
			ix := p.indexes[key]
			var lower float64
			if ix != nil {
				lower = size.DominantShare(p.maxCap[key]) - fitMargin
			}
			ixs, lows = append(ixs, ix), append(lows, lower)
		}
	}
	m.mfIdx, m.mfLow = ixs, lows
	name, _, ok := capindex.MinFitting(ixs, lows, fits)
	if !ok {
		return nil
	}
	return m.byName[name]
}

// anyFitsLocked reports whether any server in the cluster (regardless
// of priority pool or hazard band) can host size with no deflation,
// from the live partition indexes. Order-independent: it is an
// existence check, so the random map iteration is fine.
func (m *Manager) anyFitsLocked(size resources.Vector) bool {
	if m.cfg.ReferencePlacement {
		for _, s := range m.servers {
			if s.revoked {
				continue
			}
			if size.FitsIn(s.Host.Capacity().Sub(s.Host.Aggregates().Allocated)) {
				return true
			}
		}
		return false
	}
	for _, p := range m.parts {
		for key, ix := range p.indexes {
			lower := size.DominantShare(p.maxCap[key]) - fitMargin
			if _, _, ok := ix.FirstFitting(lower, func(n string) bool {
				return size.FitsIn(m.byName[n].free)
			}); ok {
				return true
			}
		}
	}
	return false
}

// FitsWithoutDeflation reports whether any server in the cluster
// (regardless of priority pool) can host size with no deflation. With
// the capacity indexes the check is O(partitions × pools × log S)
// instead of a full scan. Batch placements report the same signal
// per VM through Placement.NeedsReclaim.
func (m *Manager) FitsWithoutDeflation(size resources.Vector) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncDirtyLocked()
	return m.anyFitsLocked(size)
}

// PlaceOn attempts placement on one server, implementing steps 2 and 3
// of the placement protocol: the server computes the deflation needed to
// host dc and, if feasible, applies it and launches the VM. It returns
// the new domain and how many resident VMs were deflated. PlaceOn is
// used both by the in-process Manager and by the per-server local
// controller daemon (cmd/noded).
func PlaceOn(s *Server, cfg Config, dc hypervisor.DomainConfig) (*hypervisor.Domain, int, error) {
	cfg.applyDefaults()
	initial, deflations, err := deflateFor(s, cfg, dc)
	if err != nil {
		return nil, deflations, err // insufficient: caller tries the next server
	}
	d, err := launch(s, cfg, dc, initial)
	return d, deflations, err
}

// newcomerName is the placeholder under which a deflatable newcomer
// joins its own admission's policy pass. The NUL prefix cannot collide
// with a real domain name.
const newcomerName = "\x00newcomer"

// deflateFor is PlaceOn's policy pass: it computes and applies the
// deflation that makes room for dc on s, and returns the newcomer's
// initial allocation. The pass reads the host's cached VM-state view
// and runs the policy through the server's scratch arena, then applies
// targets in the view's name order — so steady-state calls perform zero
// heap allocations and notification delivery is deterministic.
func deflateFor(s *Server, cfg Config, dc hypervisor.DomainConfig) (resources.Vector, int, error) {
	free := s.Host.Capacity().Sub(s.Host.Allocated())
	need := dc.Size.Sub(free).ClampNonNegative()
	if need.IsZero() {
		// Room available without any deflation.
		return dc.Size, 0, nil
	}

	// Collect deflatable VMs from the host's cached view; the newcomer
	// joins the pool if it is itself deflatable ("a new incoming VM ...
	// can thus start its execution in a deflated mode", Section 5.1.1).
	sc := &s.scratch
	sc.vms, sc.doms = sc.vms[:0], sc.doms[:0]
	sc.vms, sc.doms = s.Host.AppendDeflatableView(sc.vms, sc.doms)
	nResident := len(sc.vms)
	if dc.Deflatable {
		sc.vms = append(sc.vms, policy.VMState{
			Name:     newcomerName,
			Max:      dc.Size,
			Min:      dc.Floor(),
			Priority: dc.Priority,
			Current:  dc.Size, // joins at full size; policy shrinks it
			Load:     dc.Load,
		})
	}

	res, err := cfg.Policy.TargetsInto(sc.vms, need, &sc.ps)
	if err != nil {
		return resources.Vector{}, 0, err
	}

	// Apply deflation to resident VMs, in the view's name order.
	deflations := 0
	for i := 0; i < nResident; i++ {
		d := sc.doms[i]
		if res.Targets[i].DeflationFraction(d.Allocation()) > 1e-9 {
			deflations++
		}
		if err := applyAndNotify(s, cfg, d, res.Targets[i], nil); err != nil {
			return resources.Vector{}, deflations, err
		}
	}
	initial := dc.Size
	if dc.Deflatable {
		initial = res.Targets[nResident]
	}
	return initial, deflations, nil
}

// launch defines, starts and initially sizes the new domain.
func launch(s *Server, cfg Config, dc hypervisor.DomainConfig, initial resources.Vector) (*hypervisor.Domain, error) {
	d, err := s.Host.Define(dc)
	if err != nil {
		return nil, err
	}
	if err := d.Start(); err != nil {
		s.Host.Undefine(dc.Name)
		return nil, err
	}
	if initial != dc.Size {
		if _, err := cfg.Mechanism.Apply(d, initial); err != nil {
			d.Shutdown()
			s.Host.Undefine(dc.Name)
			return nil, err
		}
	}
	return d, nil
}

// LookupVM finds a placed VM's domain and server.
func (m *Manager) LookupVM(name string) (*hypervisor.Domain, *Server, error) {
	m.mu.Lock()
	s, ok := m.placements[name]
	m.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: VM %s", ErrNotFound, name)
	}
	d, err := s.Host.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	return d, s, nil
}

// RemoveVM stops and removes a VM, then reinflates the survivors on its
// server with the freed resources (R = -R_free, Section 5.1.3).
func (m *Manager) RemoveVM(name string) error {
	return m.RemoveVMs(name)
}

// RemoveVMs removes a batch of VMs and then reinflates each affected
// server exactly once — the batched form the simulation engine uses to
// coalesce simultaneous departures, which turns k same-instant
// departures from one server into one policy pass instead of k. Servers
// reinflate in the order they are first touched by names, so the result
// is deterministic for a deterministic name order; with
// Config.ReinflateShards > 1 the per-server passes run in parallel (see
// reinflateAffected), which changes only the wall clock.
func (m *Manager) RemoveVMs(names ...string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	affected := m.affected[:0]
	seen := map[*Server]bool{}
	remove := func(name string) error {
		s, ok := m.placements[name]
		if !ok {
			return fmt.Errorf("%w: VM %s", ErrNotFound, name)
		}
		d, err := s.Host.Lookup(name)
		if err != nil {
			return err
		}
		if d.State() == hypervisor.Running {
			if err := d.Shutdown(); err != nil {
				return err
			}
		}
		if err := s.Host.Undefine(name); err != nil {
			return err
		}
		delete(m.placements, name)
		if !seen[s] {
			seen[s] = true
			affected = append(affected, s)
		}
		return nil
	}
	var firstErr error
	for _, name := range names {
		if err := remove(name); err != nil {
			// Stop removing, but fall through to reinflation: servers
			// whose VMs already left must not keep their survivors
			// deflated just because a later name in the batch was bad.
			firstErr = err
			break
		}
	}
	m.affected = affected
	if err := m.reinflateAffected(affected); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// reinflateAffected runs one reinflation pass per affected server.
// Sequentially the servers are processed in first-touched order; with
// ReinflateShards > 1 server i goes to worker i % shards, every worker
// joins a barrier, and buffered notification events are then published
// in the same first-touched server order (events within one server are
// already in name order). Per-server passes touch only their own host
// and scratch arena, so the resulting allocations — and the error
// reported, always the first in server order — are bit-for-bit
// identical at any shard count.
func (m *Manager) reinflateAffected(affected []*Server) error {
	if m.cfg.CollectTimings && len(affected) > 0 {
		t0 := time.Now()
		defer func() { m.reinflateTime += time.Since(t0) }()
	}
	shards := m.cfg.ReinflateShards
	if shards > len(affected) {
		shards = len(affected)
	}
	if shards <= 1 {
		var firstErr error
		for _, s := range affected {
			if err := Reinflate(s, m.cfg); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	errs := m.reinflateErrs[:0]
	for range affected {
		errs = append(errs, nil)
	}
	m.reinflateErrs = errs
	buffer := m.cfg.Notify != nil
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(affected); i += shards {
				s := affected[i]
				if buffer {
					s.scratch.events = s.scratch.events[:0]
					errs[i] = reinflate(s, m.cfg, &s.scratch.events)
				} else {
					errs[i] = reinflate(s, m.cfg, nil)
				}
			}
		}(w)
	}
	wg.Wait()
	if buffer {
		for _, s := range affected {
			for _, ev := range s.scratch.events {
				m.cfg.Notify.Publish(ev)
			}
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Reinflate redistributes free capacity to deflated VMs on s ("run the
// proportional deflation backwards", Section 5.1.3). Like PlaceOn it is
// shared between the in-process Manager and the local controller daemon.
// The host's cached Deflated count short-circuits the common case where
// nothing on the server is deflated, without walking its domains.
func Reinflate(s *Server, cfg Config) error {
	cfg.applyDefaults()
	return reinflate(s, cfg, nil)
}

// reinflate is the reinflation policy pass. Like deflateFor it consumes
// the host's cached VM-state view through the server's scratch arena
// and applies targets in name order, so steady-state calls are
// allocation-free. A non-nil events buffer receives the notification
// events instead of the bus (the parallel batch path).
func reinflate(s *Server, cfg Config, events *[]notify.Event) error {
	agg := s.Host.Aggregates()
	if agg.Deflated == 0 {
		return nil
	}
	free := s.Host.Capacity().Sub(agg.Allocated).ClampNonNegative()
	if free.IsZero() {
		return nil
	}
	sc := &s.scratch
	sc.vms, sc.doms = sc.vms[:0], sc.doms[:0]
	sc.vms, sc.doms = s.Host.AppendDeflatableView(sc.vms, sc.doms)
	if len(sc.vms) == 0 {
		return nil
	}
	res, err := cfg.Policy.TargetsInto(sc.vms, free.Scale(-1), &sc.ps)
	if err != nil && !errors.Is(err, policy.ErrInsufficient) {
		return err
	}
	for i := range sc.doms {
		if err := applyAndNotify(s, cfg, sc.doms[i], res.Targets[i], events); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarises the cluster's resource state.
type Stats struct {
	Servers int
	// Revoked counts registered servers currently out of service;
	// Capacity covers only the in-service remainder.
	Revoked   int
	VMs       int
	Capacity  resources.Vector
	Committed resources.Vector
	Allocated resources.Vector
	// Overcommit is committed/capacity - 1 on the dominant dimension
	// (0 when under-committed).
	Overcommit float64
}

// Stats returns the current cluster-wide statistics. The vectors come
// from the delta-maintained totals, so the call is O(dirty servers)
// amortised — effectively O(1) between churn — instead of a walk over
// every domain in the cluster. Committed/Allocated can differ from a
// from-scratch summation by accumulated float round-off on the order of
// 1e-12 relative; the per-server aggregates themselves are always exact.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncDirtyLocked()
	st := Stats{
		Servers:   len(m.servers),
		Revoked:   m.revokedCount,
		VMs:       len(m.placements),
		Capacity:  m.totCapacity,
		Committed: m.totCommitted,
		Allocated: m.totAllocated,
	}
	oc := st.Committed.DominantShare(st.Capacity)
	if oc > 1 {
		st.Overcommit = oc - 1
	}
	return st
}
