// Package cluster implements the centralized cluster manager of Sections
// 5.2 and 6: deflation-aware VM placement using cosine-similarity
// fitness, optional priority-partitioned server pools, the three-step
// placement protocol (choose best server → compute required deflation →
// deflate and launch), reinflation on VM departure, and admission
// control when even maximal deflation cannot make room.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/notify"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
)

// applyAndNotify applies target to d via cfg.Mechanism and publishes an
// allocation-change event when a bus is configured.
func applyAndNotify(s *Server, cfg Config, d *hypervisor.Domain, target resources.Vector) error {
	old := d.Allocation()
	got, err := cfg.Mechanism.Apply(d, target)
	if err != nil {
		return err
	}
	if cfg.Notify != nil && got != old {
		cfg.Notify.Publish(notify.Event{
			VM:                d.Name(),
			Server:            s.Host.Name(),
			Kind:              notify.Classify(old, got),
			Old:               old,
			New:               got,
			DeflationFraction: d.DeflationFraction(),
			Mechanism:         d.DeflatedBy(),
		})
	}
	return nil
}

// Errors returned by the manager.
var (
	// ErrNoCapacity is an admission-control rejection: no server can host
	// the VM even after deflating every deflatable VM to its floor. In
	// Figure 20's terms this is a "failure to reclaim sufficient
	// resources".
	ErrNoCapacity = errors.New("cluster: no server can host the VM")
	// ErrNotFound reports an unknown VM or server.
	ErrNotFound = errors.New("cluster: not found")
	// ErrExists reports a duplicate name.
	ErrExists = errors.New("cluster: already exists")
)

// Config parameterises a Manager.
type Config struct {
	// Policy is the server-level deflation policy.
	Policy policy.Policy
	// Mechanism applies deflation targets to domains.
	Mechanism mechanism.Mechanism
	// PartitionByPriority places VMs only on servers of their priority
	// pool (Section 5.2.1). Non-deflatable VMs use pool 0.
	PartitionByPriority bool
	// PriorityLevels is the number of discrete priority levels (4 in the
	// paper's simulation).
	PriorityLevels int
	// Notify, when set, receives an event for every allocation change
	// (Figure 1's notification to the application manager / load
	// balancer).
	Notify *notify.Bus
}

func (c *Config) applyDefaults() {
	if c.Policy == nil {
		c.Policy = policy.Proportional{}
	}
	if c.Mechanism == nil {
		c.Mechanism = mechanism.Transparent{}
	}
	if c.PriorityLevels <= 0 {
		c.PriorityLevels = 4
	}
}

// WithDefaults returns a copy of c with unset fields filled in
// (proportional policy, transparent mechanism, 4 priority levels).
func (c Config) WithDefaults() Config {
	c.applyDefaults()
	return c
}

// Server is one managed physical server.
type Server struct {
	Host *hypervisor.Host
	// Partition is the server's priority pool (0-based); -1 when
	// partitioning is disabled.
	Partition int
}

// Manager is the centralized cluster manager. All methods are safe for
// concurrent use: every mutation and counter read happens under mu
// (per-Host state is additionally guarded by the Host's own lock).
type Manager struct {
	mu         sync.Mutex
	cfg        Config
	servers    []*Server
	placements map[string]*Server

	// deflationEvents counts how many times an existing VM's allocation
	// was reduced to admit another VM; rejections counts
	// admission-control failures. Both are read through the locked
	// accessors below — they used to be exported fields, which let
	// callers race against PlaceVM.
	deflationEvents int
	rejections      int
}

// DeflationEvents returns how many times an existing VM's allocation
// was reduced to admit another VM.
func (m *Manager) DeflationEvents() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deflationEvents
}

// Rejections returns the number of admission-control failures.
func (m *Manager) Rejections() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejections
}

// NewManager creates a manager with the given configuration.
func NewManager(cfg Config) *Manager {
	cfg.applyDefaults()
	return &Manager{cfg: cfg, placements: make(map[string]*Server)}
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// AddServer registers a new physical server. When partitioning is
// enabled, partition assigns its pool; pass 0..PriorityLevels-1.
func (m *Manager) AddServer(name string, capacity resources.Vector, partition int) (*Server, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, s := range m.servers {
		if s.Host.Name() == name {
			return nil, fmt.Errorf("%w: server %s", ErrExists, name)
		}
	}
	h, err := hypervisor.NewHost(hypervisor.HostConfig{Name: name, Capacity: capacity})
	if err != nil {
		return nil, err
	}
	if !m.cfg.PartitionByPriority {
		partition = -1
	}
	s := &Server{Host: h, Partition: partition}
	m.servers = append(m.servers, s)
	return s, nil
}

// Servers returns the managed servers.
func (m *Manager) Servers() []*Server {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Server, len(m.servers))
	copy(out, m.servers)
	return out
}

// PartitionOf maps a VM to its priority pool index.
func (m *Manager) PartitionOf(dc hypervisor.DomainConfig) int {
	if !m.cfg.PartitionByPriority {
		return -1
	}
	if !dc.Deflatable {
		return m.cfg.PriorityLevels - 1 // on-demand VMs share the highest pool
	}
	level := int(dc.Priority * float64(m.cfg.PriorityLevels))
	if level >= m.cfg.PriorityLevels {
		level = m.cfg.PriorityLevels - 1
	}
	if level < 0 {
		level = 0
	}
	return level
}

// Fitness scores a server's availability A for a demand D. Section 5.2
// writes the score as the cosine similarity A·D/(|A||D|), following the
// multi-resource packing of Tetris [19]; Tetris's alignment score keeps
// the magnitude of A (it is a projection, not a pure angle), and the
// paper's own availability vector discounts overcommitted servers
// precisely so that "this approach prefers servers with lower
// overcommitment" — which only has an effect if |A| matters. We
// therefore normalise by |D| only: fitness = A·D/|D|, the length of A's
// projection onto the demand direction.
func Fitness(demand, avail resources.Vector) float64 {
	nd := demand.Norm()
	if nd < 1e-9 {
		nd = 1e-9
	}
	return avail.Dot(demand) / nd
}

// Availability computes the paper's placement availability vector:
// A_j = Total_j - Used_j + deflatable_j/(1 + overcommit_j), where
// deflatable_j is the total resource reclaimable from deflatable VMs and
// overcommit_j discounts servers that are already squeezed.
func Availability(s *Server) resources.Vector {
	total := s.Host.Capacity()
	used := s.Host.Allocated()
	var deflatable resources.Vector
	for _, d := range s.Host.Domains() {
		if d.State() != hypervisor.Running || !d.Deflatable() {
			continue
		}
		deflatable = deflatable.Add(d.Allocation().Sub(floorOf(d)).ClampNonNegative())
	}
	oc := s.Host.Overcommit()
	avail := total.Sub(used).Add(deflatable.Scale(1 / (1 + oc)))
	return avail.ClampNonNegative()
}

// floorOf returns a domain's deflation floor: its configured minimum
// allocation, or the mechanism floor when none is set.
func floorOf(d *hypervisor.Domain) resources.Vector {
	min := d.MinAllocation()
	if min.IsZero() {
		min = resources.New(0.05, 64, 0, 0).Min(d.MaxSize())
	}
	return min
}

// PlaceVM runs the three-step placement of Section 6: pick the fittest
// server, have it compute the deflation required to make room (possibly
// deflating the newcomer itself), then perform the deflation and launch.
// It returns the running domain and its server, or ErrNoCapacity.
func (m *Manager) PlaceVM(dc hypervisor.DomainConfig) (*hypervisor.Domain, *Server, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.placements[dc.Name]; ok {
		return nil, nil, fmt.Errorf("%w: VM %s", ErrExists, dc.Name)
	}

	part := m.PartitionOf(dc)
	var pool []*Server
	for _, s := range m.servers {
		if part >= 0 && s.Partition != part {
			continue
		}
		pool = append(pool, s)
	}

	// Surplus-first: "when there is surplus capacity in the cluster, the
	// cloud manager allocates these resources ... without deflating"
	// (Section 5). Among servers that can host the VM with no deflation,
	// tightest fit preserves large contiguous capacity for future big
	// VMs; spreading every VM across all servers would leave a little
	// unreclaimable (non-deflatable) allocation everywhere and strand
	// large on-demand arrivals.
	best, bestLeft := (*Server)(nil), 0.0
	for _, s := range pool {
		freeCap := s.Host.Capacity().Sub(s.Host.Allocated())
		if !dc.Size.FitsIn(freeCap) {
			continue
		}
		left := freeCap.Sub(dc.Size).DominantShare(s.Host.Capacity())
		if best == nil || left < bestLeft {
			best, bestLeft = s, left
		}
	}
	if best != nil {
		d, deflations, err := PlaceOn(best, m.cfg, dc)
		if err == nil {
			m.deflationEvents += deflations
			m.placements[dc.Name] = best
			return d, best, nil
		}
	}

	// Under pressure: rank by the deflation-aware availability fitness
	// of Section 5.2 and deflate residents on the best server that can
	// absorb the newcomer.
	type cand struct {
		s       *Server
		fitness float64
	}
	var cands []cand
	for _, s := range pool {
		cands = append(cands, cand{s, Fitness(dc.Size, Availability(s))})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].fitness > cands[j].fitness })

	for _, c := range cands {
		if c.s == best {
			continue // already tried above
		}
		d, deflations, err := PlaceOn(c.s, m.cfg, dc)
		if err == nil {
			m.deflationEvents += deflations
			m.placements[dc.Name] = c.s
			return d, c.s, nil
		}
	}
	m.rejections++
	return nil, nil, fmt.Errorf("%w: %s (size %v)", ErrNoCapacity, dc.Name, dc.Size)
}

// PlaceOn attempts placement on one server, implementing steps 2 and 3
// of the placement protocol: the server computes the deflation needed to
// host dc and, if feasible, applies it and launches the VM. It returns
// the new domain and how many resident VMs were deflated. PlaceOn is
// used both by the in-process Manager and by the per-server local
// controller daemon (cmd/noded).
func PlaceOn(s *Server, cfg Config, dc hypervisor.DomainConfig) (*hypervisor.Domain, int, error) {
	cfg.applyDefaults()
	free := s.Host.Capacity().Sub(s.Host.Allocated())
	need := dc.Size.Sub(free).ClampNonNegative()

	if need.IsZero() {
		// Room available without any deflation.
		d, err := launch(s, cfg, dc, dc.Size)
		return d, 0, err
	}

	// Collect deflatable VMs; the newcomer joins the pool if it is
	// itself deflatable ("a new incoming VM ... can thus start its
	// execution in a deflated mode", Section 5.1.1).
	var vms []policy.VMState
	domains := map[string]*hypervisor.Domain{}
	for _, d := range s.Host.Domains() {
		if d.State() != hypervisor.Running || !d.Deflatable() {
			continue
		}
		vms = append(vms, policy.VMState{
			Name:     d.Name(),
			Max:      d.MaxSize(),
			Min:      floorOf(d),
			Priority: d.Priority(),
			Current:  d.Allocation(),
		})
		domains[d.Name()] = d
	}
	const newcomer = "\x00newcomer"
	if dc.Deflatable {
		min := dc.MinAllocation
		if min.IsZero() {
			min = resources.New(0.05, 64, 0, 0).Min(dc.Size)
		}
		vms = append(vms, policy.VMState{
			Name:     newcomer,
			Max:      dc.Size,
			Min:      min,
			Priority: dc.Priority,
			Current:  dc.Size, // joins at full size; policy shrinks it
		})
	}

	res, err := cfg.Policy.Targets(vms, need)
	if err != nil {
		return nil, 0, err // insufficient: caller tries the next server
	}

	// Apply deflation to resident VMs.
	deflations := 0
	for name, target := range res.Targets {
		if name == newcomer {
			continue
		}
		d := domains[name]
		if target.DeflationFraction(d.Allocation()) > 1e-9 {
			deflations++
		}
		if err := applyAndNotify(s, cfg, d, target); err != nil {
			return nil, deflations, err
		}
	}
	initial := dc.Size
	if t, ok := res.Targets[newcomer]; ok {
		initial = t
	}
	d, err := launch(s, cfg, dc, initial)
	return d, deflations, err
}

// launch defines, starts and initially sizes the new domain.
func launch(s *Server, cfg Config, dc hypervisor.DomainConfig, initial resources.Vector) (*hypervisor.Domain, error) {
	d, err := s.Host.Define(dc)
	if err != nil {
		return nil, err
	}
	if err := d.Start(); err != nil {
		s.Host.Undefine(dc.Name)
		return nil, err
	}
	if !initial.FitsIn(dc.Size) || initial != dc.Size {
		if _, err := cfg.Mechanism.Apply(d, initial); err != nil {
			d.Shutdown()
			s.Host.Undefine(dc.Name)
			return nil, err
		}
	}
	return d, nil
}

// LookupVM finds a placed VM's domain and server.
func (m *Manager) LookupVM(name string) (*hypervisor.Domain, *Server, error) {
	m.mu.Lock()
	s, ok := m.placements[name]
	m.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: VM %s", ErrNotFound, name)
	}
	d, err := s.Host.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	return d, s, nil
}

// RemoveVM stops and removes a VM, then reinflates the survivors on its
// server with the freed resources (R = -R_free, Section 5.1.3).
func (m *Manager) RemoveVM(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.placements[name]
	if !ok {
		return fmt.Errorf("%w: VM %s", ErrNotFound, name)
	}
	d, err := s.Host.Lookup(name)
	if err != nil {
		return err
	}
	if d.State() == hypervisor.Running {
		if err := d.Shutdown(); err != nil {
			return err
		}
	}
	if err := s.Host.Undefine(name); err != nil {
		return err
	}
	delete(m.placements, name)
	return Reinflate(s, m.cfg)
}

// Reinflate redistributes free capacity to deflated VMs on s ("run the
// proportional deflation backwards", Section 5.1.3). Like PlaceOn it is
// shared between the in-process Manager and the local controller daemon.
func Reinflate(s *Server, cfg Config) error {
	cfg.applyDefaults()
	free := s.Host.Capacity().Sub(s.Host.Allocated()).ClampNonNegative()
	if free.IsZero() {
		return nil
	}
	var vms []policy.VMState
	domains := map[string]*hypervisor.Domain{}
	anyDeflated := false
	for _, d := range s.Host.Domains() {
		if d.State() != hypervisor.Running || !d.Deflatable() {
			continue
		}
		cur := d.Allocation()
		if cur.Sub(d.MaxSize()).ClampNonNegative().IsZero() && cur != d.MaxSize() {
			anyDeflated = true
		}
		vms = append(vms, policy.VMState{
			Name:     d.Name(),
			Max:      d.MaxSize(),
			Min:      floorOf(d),
			Priority: d.Priority(),
			Current:  cur,
		})
		domains[d.Name()] = d
	}
	if len(vms) == 0 || !anyDeflated {
		return nil
	}
	res, err := cfg.Policy.Targets(vms, free.Scale(-1))
	if err != nil && !errors.Is(err, policy.ErrInsufficient) {
		return err
	}
	for name, target := range res.Targets {
		if err := applyAndNotify(s, cfg, domains[name], target); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarises the cluster's resource state.
type Stats struct {
	Servers   int
	VMs       int
	Capacity  resources.Vector
	Committed resources.Vector
	Allocated resources.Vector
	// Overcommit is committed/capacity - 1 on the dominant dimension
	// (0 when under-committed).
	Overcommit float64
}

// Stats returns the current cluster-wide statistics.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var st Stats
	st.Servers = len(m.servers)
	st.VMs = len(m.placements)
	for _, s := range m.servers {
		st.Capacity = st.Capacity.Add(s.Host.Capacity())
		st.Committed = st.Committed.Add(s.Host.Committed())
		st.Allocated = st.Allocated.Add(s.Host.Allocated())
	}
	oc := st.Committed.DominantShare(st.Capacity)
	if oc > 1 {
		st.Overcommit = oc - 1
	}
	return st
}
