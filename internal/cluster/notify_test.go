package cluster

import (
	"testing"

	"vmdeflate/internal/notify"
	"vmdeflate/internal/resources"
)

// The Figure 1 notification path: placing a VM that forces deflation
// publishes Deflated events; departures publish Reinflated events.
func TestManagerPublishesDeflationEvents(t *testing.T) {
	var bus notify.Bus
	var events []notify.Event
	bus.Subscribe(func(ev notify.Event) { events = append(events, ev) })

	m := NewManager(Config{Notify: &bus})
	if _, err := m.AddServer("n0", serverCap(), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.PlaceVM(deflatableVM("low", 40, 65536, 0.5)); err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("surplus placement should not notify: %v", events)
	}
	if _, _, err := m.PlaceVM(onDemandVM("od", 16, 32768)); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("deflating placement should notify")
	}
	ev := events[0]
	if ev.VM != "low" || ev.Server != "n0" || ev.Kind != notify.Deflated {
		t.Errorf("event = %+v", ev)
	}
	if ev.DeflationFraction <= 0 {
		t.Errorf("deflation fraction = %v", ev.DeflationFraction)
	}
	if ev.New.Get(resources.CPU) >= ev.Old.Get(resources.CPU) {
		t.Errorf("allocation should shrink: %v -> %v", ev.Old, ev.New)
	}

	// Departure reinflates and notifies.
	before := len(events)
	if err := m.RemoveVM("od"); err != nil {
		t.Fatal(err)
	}
	if len(events) <= before {
		t.Fatal("reinflation should notify")
	}
	last := events[len(events)-1]
	if last.Kind != notify.Reinflated {
		t.Errorf("last event kind = %v", last.Kind)
	}
}

// Deflation and reinflation passes must deliver their notifications in
// sorted VM-name order — the slice-backed policy results apply targets
// in the host view's name order, replacing the old map-range apply whose
// delivery order varied run to run.
func TestNotifyOrderIsSortedByName(t *testing.T) {
	var bus notify.Bus
	var order []string
	bus.Subscribe(func(ev notify.Event) { order = append(order, ev.VM) })

	m := NewManager(Config{Notify: &bus})
	if _, err := m.AddServer("n0", serverCap(), 0); err != nil {
		t.Fatal(err)
	}
	// Insertion order deliberately unsorted; all three deflate together.
	for _, name := range []string{"web-c", "web-a", "web-b"} {
		if _, _, err := m.PlaceVM(deflatableVM(name, 16, 32768, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := m.PlaceVM(onDemandVM("od", 12, 16384)); err != nil {
		t.Fatal(err)
	}
	want := []string{"web-a", "web-b", "web-c"}
	if len(order) != len(want) {
		t.Fatalf("deflation events = %v, want one per resident", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("deflation event order = %v, want %v", order, want)
		}
	}

	// The reinflation pass after a departure is name-ordered too.
	order = order[:0]
	if err := m.RemoveVM("od"); err != nil {
		t.Fatal(err)
	}
	if len(order) != len(want) {
		t.Fatalf("reinflation events = %v, want one per resident", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("reinflation event order = %v, want %v", order, want)
		}
	}
}

// A deflation-aware load balancer can drive its weights straight from
// the bus — the end-to-end wiring of Figure 1.
func TestBusDrivesWeights(t *testing.T) {
	var bus notify.Bus
	weights := map[string]float64{}
	bus.Subscribe(func(ev notify.Event) {
		weights[ev.VM] = ev.New.Get(resources.CPU)
	})
	m := NewManager(Config{Notify: &bus})
	m.AddServer("n0", serverCap(), 0)
	m.PlaceVM(deflatableVM("web-1", 48, 98304, 0.5))
	m.PlaceVM(onDemandVM("db", 24, 16384))
	if w, ok := weights["web-1"]; !ok || w > 24.001 {
		t.Errorf("weights = %v, want web-1 <= 24", weights)
	}
}
