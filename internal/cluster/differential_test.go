package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
)

// churnStep drives both managers with one identical operation and
// returns a comparable description of what happened.
type churnStep func(m *Manager) string

// runDifferentialChurn feeds the same randomized place/remove/query
// sequence to an indexed and a reference manager and fails on the first
// divergence: server choice, error class, counters or stats. This is
// the bit-for-bit placement-identity guarantee of the capacity index.
func runDifferentialChurn(t *testing.T, seed int64, cfg Config, nServers, nOps int) {
	t.Helper()
	runDifferentialChurnSpecs(t, seed, cfg, nServers, nOps, nil)
}

// runDifferentialChurnSpecs is runDifferentialChurn with custom server
// provisioning: specFor(i) supplies server i's full ServerSpec (bands,
// reserve fractions), so the risk suites can churn heterogeneous
// fleets. A nil specFor provisions the legacy homogeneous fleet.
func runDifferentialChurnSpecs(t *testing.T, seed int64, cfg Config, nServers, nOps int, specFor func(i int, m *Manager) ServerSpec) {
	t.Helper()
	refCfg := cfg
	refCfg.ReferencePlacement = true
	idxCfg := cfg
	idxCfg.ReferencePlacement = false

	managers := []*Manager{NewManager(idxCfg), NewManager(refCfg)}
	for i := 0; i < nServers; i++ {
		for _, m := range managers {
			spec := ServerSpec{
				Name:      fmt.Sprintf("node-%03d", i),
				Capacity:  serverCap(),
				Partition: i % max(1, m.Config().PriorityLevels),
			}
			if specFor != nil {
				spec = specFor(i, m)
			}
			if _, err := m.AddServerSpec(spec); err != nil {
				t.Fatal(err)
			}
		}
	}

	rng := rand.New(rand.NewSource(seed))
	var placed []string
	next := 0
	for op := 0; op < nOps; op++ {
		var step churnStep
		switch {
		case len(placed) > 0 && rng.Intn(10) < 3: // removal (sometimes batched)
			k := 1 + rng.Intn(min(3, len(placed)))
			names := make([]string, 0, k)
			for j := 0; j < k; j++ {
				i := rng.Intn(len(placed))
				names = append(names, placed[i])
				placed = append(placed[:i], placed[i+1:]...)
			}
			step = func(m *Manager) string {
				if err := m.RemoveVMs(names...); err != nil {
					return fmt.Sprintf("remove err %v", err)
				}
				return fmt.Sprintf("removed %v", names)
			}
		case rng.Intn(10) == 0: // reclaim probe
			size := resources.CPUMem(float64(1+rng.Intn(48)), float64(1024*(1+rng.Intn(96))))
			step = func(m *Manager) string {
				return fmt.Sprintf("fits=%v", m.FitsWithoutDeflation(size))
			}
		default: // placement
			name := fmt.Sprintf("vm-%05d", next)
			next++
			dc := hypervisor.DomainConfig{
				Name:       name,
				Size:       resources.CPUMem(float64(1+rng.Intn(24)), float64(2048*(1+rng.Intn(24)))),
				Deflatable: rng.Intn(3) != 0,
				Priority:   0.25 * float64(1+rng.Intn(4)),
			}
			if !dc.Deflatable {
				dc.Priority = 0
			}
			admitted := false
			step = func(m *Manager) string {
				_, s, err := m.PlaceVM(dc)
				if err != nil {
					if !errors.Is(err, ErrNoCapacity) {
						t.Fatalf("op %d: unexpected error %v", op, err)
					}
					return "rejected"
				}
				admitted = true
				return "on " + s.Host.Name()
			}
			got := []string{step(managers[0]), step(managers[1])}
			if got[0] != got[1] {
				t.Fatalf("op %d (place %s): indexed %q != reference %q", op, name, got[0], got[1])
			}
			if admitted {
				placed = append(placed, name)
			}
			compareManagers(t, op, managers[0], managers[1])
			continue
		}
		got := []string{step(managers[0]), step(managers[1])}
		if got[0] != got[1] {
			t.Fatalf("op %d: indexed %q != reference %q", op, got[0], got[1])
		}
		compareManagers(t, op, managers[0], managers[1])
	}

	// The cached per-server aggregates must equal a fresh name-order
	// recompute at the end of the churn (the Manager relies on the
	// hypervisor cache-coherence property; spot-check it end to end).
	for _, m := range managers {
		for _, s := range m.Servers() {
			agg := s.Host.Aggregates()
			var alloc resources.Vector
			for _, d := range s.Host.Domains() {
				if d.State() == hypervisor.Running {
					alloc = alloc.Add(d.Allocation())
				}
			}
			if agg.Allocated != alloc {
				t.Fatalf("server %s: cached allocated %v != fresh %v", s.Host.Name(), agg.Allocated, alloc)
			}
		}
	}
}

// compareManagers asserts the externally observable state of the two
// managers is identical.
func compareManagers(t *testing.T, op int, a, b *Manager) {
	t.Helper()
	if a.DeflationEvents() != b.DeflationEvents() || a.Rejections() != b.Rejections() {
		t.Fatalf("op %d: counters diverged: indexed (%d defl, %d rej) vs reference (%d defl, %d rej)",
			op, a.DeflationEvents(), a.Rejections(), b.DeflationEvents(), b.Rejections())
	}
	if a.RiskRejections() != b.RiskRejections() {
		t.Fatalf("op %d: risk rejections diverged: indexed %d vs reference %d",
			op, a.RiskRejections(), b.RiskRejections())
	}
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Fatalf("op %d: stats diverged:\nindexed   %+v\nreference %+v", op, sa, sb)
	}
}

func TestIndexedPlacementMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runDifferentialChurn(t, seed, Config{Policy: policy.Proportional{}}, 12, 400)
		})
	}
}

func TestIndexedPlacementMatchesReferencePriorityPolicy(t *testing.T) {
	runDifferentialChurn(t, 11, Config{Policy: policy.Priority{}}, 8, 300)
}

func TestIndexedPlacementMatchesReferencePartitioned(t *testing.T) {
	runDifferentialChurn(t, 21, Config{
		Policy:              policy.Priority{},
		PartitionByPriority: true,
		PriorityLevels:      4,
	}, 12, 400)
}

// TestPlacementPartitionsMatchReference drives the one-VM-at-a-time
// churn through the propose/commit engine (PlaceVM routes through a
// single-VM batch when PlacementPartitions > 1): every placement is a
// parallel propose across partitions plus one commit, and must still
// match the brute-force reference bit for bit.
func TestPlacementPartitionsMatchReference(t *testing.T) {
	for _, partitions := range []int{2, 5} {
		t.Run(fmt.Sprintf("partitions=%d", partitions), func(t *testing.T) {
			runDifferentialChurn(t, 31, Config{
				Policy:              policy.Proportional{},
				PlacementPartitions: partitions,
			}, 12, 400)
		})
	}
}

// TestPlacementPartitionsMatchReferencePriorityPools combines placement
// partitions with priority-partitioned pools, so every propose/commit
// round filters candidates by pool across partition boundaries.
func TestPlacementPartitionsMatchReferencePriorityPools(t *testing.T) {
	runDifferentialChurn(t, 41, Config{
		Policy:              policy.Priority{},
		PartitionByPriority: true,
		PriorityLevels:      4,
		PlacementPartitions: 3,
	}, 12, 400)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
