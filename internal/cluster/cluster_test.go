package cluster

import (
	"errors"
	"fmt"
	"testing"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/notify"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
)

func serverCap() resources.Vector { return resources.New(48, 131072, 0, 0) }

func newTestManager(t *testing.T, nServers int, cfg Config) *Manager {
	t.Helper()
	m := NewManager(cfg)
	for i := 0; i < nServers; i++ {
		if _, err := m.AddServer(fmt.Sprintf("node-%d", i), serverCap(), i%max(1, cfg.PriorityLevels)); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func deflatableVM(name string, cores, memMB, prio float64) hypervisor.DomainConfig {
	return hypervisor.DomainConfig{
		Name:       name,
		Size:       resources.CPUMem(cores, memMB),
		Deflatable: true,
		Priority:   prio,
	}
}

func onDemandVM(name string, cores, memMB float64) hypervisor.DomainConfig {
	return hypervisor.DomainConfig{Name: name, Size: resources.CPUMem(cores, memMB)}
}

func TestAddServerDuplicate(t *testing.T) {
	m := NewManager(Config{})
	if _, err := m.AddServer("a", serverCap(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddServer("a", serverCap(), 0); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate server err = %v", err)
	}
	if len(m.Servers()) != 1 {
		t.Errorf("servers = %d", len(m.Servers()))
	}
}

func TestPlaceWithoutDeflation(t *testing.T) {
	m := newTestManager(t, 2, Config{})
	d, s, err := m.PlaceVM(deflatableVM("vm-1", 8, 16384, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if d.State() != hypervisor.Running {
		t.Errorf("state = %v", d.State())
	}
	if d.Allocation() != d.MaxSize() {
		t.Errorf("undeflated placement should give full size: %v", d.Allocation())
	}
	if s == nil {
		t.Fatal("nil server")
	}
	if m.DeflationEvents() != 0 {
		t.Errorf("deflation events = %d", m.DeflationEvents())
	}
}

func TestPlaceDuplicateVM(t *testing.T) {
	m := newTestManager(t, 1, Config{})
	if _, _, err := m.PlaceVM(deflatableVM("vm", 2, 4096, 0.5)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.PlaceVM(deflatableVM("vm", 2, 4096, 0.5)); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate VM err = %v", err)
	}
}

func TestPlacementPacksSurplusTightly(t *testing.T) {
	m := newTestManager(t, 4, Config{})
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		_, s, err := m.PlaceVM(deflatableVM(fmt.Sprintf("vm-%d", i), 12, 32768, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		counts[s.Host.Name()]++
	}
	// Surplus-first placement is tightest-fit: 8 x 12-core VMs fill two
	// 48-core servers completely before touching the others, keeping the
	// remaining servers whole for large future arrivals.
	used := 0
	for _, c := range counts {
		used++
		if c != 4 {
			t.Errorf("expected full packing (4 VMs/server), got %v", counts)
			break
		}
	}
	if used != 2 {
		t.Errorf("expected exactly 2 servers used, got %v", counts)
	}
}

func TestPlacementPrefersDeflationOverRejection(t *testing.T) {
	m := newTestManager(t, 2, Config{})
	// Fill both servers with deflatable load.
	for i := 0; i < 2; i++ {
		if _, _, err := m.PlaceVM(deflatableVM(fmt.Sprintf("low-%d", i), 48, 98304, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	// A new on-demand VM must still be admitted by deflating residents.
	d, _, err := m.PlaceVM(onDemandVM("od", 16, 16384))
	if err != nil {
		t.Fatal(err)
	}
	if d.Allocation() != d.MaxSize() {
		t.Errorf("on-demand allocation = %v", d.Allocation())
	}
}

func TestPlaceTriggersDeflation(t *testing.T) {
	m := newTestManager(t, 1, Config{Policy: policy.Proportional{}, Mechanism: mechanism.Transparent{}})
	// Fill the server: 40 cores of deflatable + on-demand needing 16.
	if _, _, err := m.PlaceVM(deflatableVM("low-1", 40, 65536, 0.5)); err != nil {
		t.Fatal(err)
	}
	d, _, err := m.PlaceVM(onDemandVM("od-1", 16, 32768))
	if err != nil {
		t.Fatal(err)
	}
	if d.Allocation() != d.MaxSize() {
		t.Errorf("on-demand VM must get full size: %v", d.Allocation())
	}
	low, _, err := m.LookupVM("low-1")
	if err != nil {
		t.Fatal(err)
	}
	// low-1 must have been deflated to 48-16=32 cores.
	if got := low.Allocation().Get(resources.CPU); got > 32.001 {
		t.Errorf("deflatable VM allocation = %v, want <= 32", got)
	}
	if m.DeflationEvents() == 0 {
		t.Error("expected a deflation event")
	}
	// Server never over-allocated.
	srv := m.Servers()[0]
	if !srv.Host.Allocated().FitsIn(srv.Host.Capacity()) {
		t.Errorf("allocated %v exceeds capacity", srv.Host.Allocated())
	}
}

func TestNewcomerStartsDeflated(t *testing.T) {
	m := newTestManager(t, 1, Config{})
	if _, _, err := m.PlaceVM(deflatableVM("a", 40, 65536, 0.5)); err != nil {
		t.Fatal(err)
	}
	// Another deflatable 40-core VM: total 80 > 48 -> both deflate.
	d, _, err := m.PlaceVM(deflatableVM("b", 40, 65536, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Allocation().Get(resources.CPU); got >= 40 {
		t.Errorf("newcomer should start deflated: %v", got)
	}
	srv := m.Servers()[0]
	if !srv.Host.Allocated().FitsIn(srv.Host.Capacity()) {
		t.Errorf("allocated %v exceeds capacity", srv.Host.Allocated())
	}
}

func TestAdmissionControlRejects(t *testing.T) {
	m := newTestManager(t, 1, Config{})
	if _, _, err := m.PlaceVM(onDemandVM("od-1", 40, 65536)); err != nil {
		t.Fatal(err)
	}
	// A 16-core on-demand VM cannot fit: nothing is deflatable.
	_, _, err := m.PlaceVM(onDemandVM("od-2", 16, 32768))
	if !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("want ErrNoCapacity, got %v", err)
	}
	if m.Rejections() != 1 {
		t.Errorf("rejections = %d", m.Rejections())
	}
}

func TestRemoveVMReinflates(t *testing.T) {
	m := newTestManager(t, 1, Config{})
	if _, _, err := m.PlaceVM(deflatableVM("low", 40, 65536, 0.5)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.PlaceVM(onDemandVM("od", 16, 32768)); err != nil {
		t.Fatal(err)
	}
	low, _, _ := m.LookupVM("low")
	if got := low.Allocation().Get(resources.CPU); got > 32.001 {
		t.Fatalf("setup: low = %v", got)
	}
	if err := m.RemoveVM("od"); err != nil {
		t.Fatal(err)
	}
	// Freed capacity flows back: low reinflates to full.
	if got := low.Allocation().Get(resources.CPU); got < 39.999 {
		t.Errorf("after departure low = %v, want reinflated to 40", got)
	}
}

// A bad name mid-batch must not leave earlier removals' servers with
// their survivors stuck deflated: reinflation runs for every server
// already touched before the error is reported.
func TestRemoveVMsPartialBatchStillReinflates(t *testing.T) {
	m := newTestManager(t, 1, Config{})
	if _, _, err := m.PlaceVM(deflatableVM("low", 40, 65536, 0.5)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.PlaceVM(onDemandVM("od", 16, 32768)); err != nil {
		t.Fatal(err)
	}
	low, _, _ := m.LookupVM("low")
	if got := low.Allocation().Get(resources.CPU); got > 32.001 {
		t.Fatalf("setup: low = %v", got)
	}
	if err := m.RemoveVMs("od", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if got := low.Allocation().Get(resources.CPU); got < 39.999 {
		t.Errorf("low = %v cores after partial batch, want reinflated to 40", got)
	}
	if _, _, err := m.LookupVM("od"); !errors.Is(err, ErrNotFound) {
		t.Error("od should have been removed despite the batch error")
	}
}

func TestRemoveVMErrors(t *testing.T) {
	m := newTestManager(t, 1, Config{})
	if err := m.RemoveVM("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
	if _, _, err := m.LookupVM("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup err = %v", err)
	}
}

func TestPartitionedPlacement(t *testing.T) {
	cfg := Config{PartitionByPriority: true, PriorityLevels: 4}
	m := NewManager(cfg)
	for i := 0; i < 4; i++ {
		if _, err := m.AddServer(fmt.Sprintf("node-%d", i), serverCap(), i); err != nil {
			t.Fatal(err)
		}
	}
	// Priority 0.9 -> level 3; 0.1 -> level 0.
	_, sHigh, err := m.PlaceVM(deflatableVM("high", 4, 8192, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if sHigh.Partition != 3 {
		t.Errorf("high-priority VM on partition %d, want 3", sHigh.Partition)
	}
	_, sLow, err := m.PlaceVM(deflatableVM("low", 4, 8192, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if sLow.Partition != 0 {
		t.Errorf("low-priority VM on partition %d, want 0", sLow.Partition)
	}
	// On-demand VMs land in the highest pool.
	_, sOD, err := m.PlaceVM(onDemandVM("od", 4, 8192))
	if err != nil {
		t.Fatal(err)
	}
	if sOD.Partition != 3 {
		t.Errorf("on-demand VM on partition %d, want 3", sOD.Partition)
	}
}

func TestPartitionFullRejects(t *testing.T) {
	cfg := Config{PartitionByPriority: true, PriorityLevels: 2}
	m := NewManager(cfg)
	m.AddServer("p0", serverCap(), 0)
	m.AddServer("p1", serverCap(), 1)
	// Fill partition 1 with on-demand-style load... (deflatable at floor).
	if _, _, err := m.PlaceVM(onDemandVM("od-a", 48, 131072)); err != nil {
		t.Fatal(err)
	}
	// Partition 0 is now full of od-a; a second on-demand VM cannot go to
	// partition 1 even though it is empty.
	_, _, err := m.PlaceVM(onDemandVM("od-b", 8, 8192))
	if !errors.Is(err, ErrNoCapacity) {
		t.Errorf("want partition-full rejection, got %v", err)
	}
}

func TestAvailabilityVector(t *testing.T) {
	m := newTestManager(t, 1, Config{})
	s := m.Servers()[0]
	// Empty server: availability = capacity.
	if got := Availability(s); got != serverCap() {
		t.Errorf("empty availability = %v", got)
	}
	if _, _, err := m.PlaceVM(deflatableVM("a", 24, 65536, 0.5)); err != nil {
		t.Fatal(err)
	}
	got := Availability(s)
	// free = 24 cores; deflatable adds back most of a's 24 cores.
	if got.Get(resources.CPU) < 24 {
		t.Errorf("availability should include deflatable resources: %v", got)
	}
	if got.Get(resources.CPU) > 48 {
		t.Errorf("availability cannot exceed capacity here: %v", got)
	}
}

func TestStats(t *testing.T) {
	m := newTestManager(t, 2, Config{})
	m.PlaceVM(deflatableVM("a", 40, 65536, 0.5))
	m.PlaceVM(deflatableVM("b", 40, 65536, 0.5))
	m.PlaceVM(deflatableVM("c", 40, 65536, 0.5)) // forces deflation somewhere
	st := m.Stats()
	if st.Servers != 2 || st.VMs != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.Committed.Get(resources.CPU) != 120 {
		t.Errorf("committed = %v", st.Committed)
	}
	if st.Overcommit < 0.24 || st.Overcommit > 0.26 {
		t.Errorf("overcommit = %v, want 0.25", st.Overcommit)
	}
	if !st.Allocated.FitsIn(st.Capacity) {
		t.Errorf("allocated %v exceeds capacity %v", st.Allocated, st.Capacity)
	}
}

func TestDeterministicPolicyIntegration(t *testing.T) {
	m := newTestManager(t, 1, Config{Policy: policy.Deterministic{}, Mechanism: mechanism.Hybrid{}})
	if _, _, err := m.PlaceVM(deflatableVM("low", 40, 65536, 0.25)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.PlaceVM(onDemandVM("od", 20, 32768)); err != nil {
		t.Fatal(err)
	}
	low, _, _ := m.LookupVM("low")
	// Deterministic: low deflated to priority*max = 10 cores.
	if got := low.Allocation().Get(resources.CPU); got > 10.001 {
		t.Errorf("deterministic deflation = %v, want 10", got)
	}
}

// Parallel reinflation (ReinflateShards > 1) must be invisible in the
// results: after an identical placement/batched-removal history, every
// surviving VM's allocation matches the sequential manager bit for bit,
// and the notification stream arrives in the identical order.
func TestParallelReinflationMatchesSequential(t *testing.T) {
	run := func(shards int) (map[string]resources.Vector, []string) {
		var bus notify.Bus
		var events []string
		bus.Subscribe(func(ev notify.Event) { events = append(events, ev.VM) })
		m := NewManager(Config{Policy: policy.Priority{}, ReinflateShards: shards, Notify: &bus})
		for i := 0; i < 4; i++ {
			if _, err := m.AddServer(fmt.Sprintf("node-%d", i), serverCap(), 0); err != nil {
				t.Fatal(err)
			}
		}
		var placed []string
		for i := 0; i < 32; i++ {
			name := fmt.Sprintf("vm-%02d", i)
			prio := []float64{0.25, 0.5, 0.75, 1.0}[i%4]
			if _, _, err := m.PlaceVM(deflatableVM(name, float64(8+(i%3)*8), 16384, prio)); err == nil {
				placed = append(placed, name)
			}
		}
		// Batched removal touching many servers at once — the shape the
		// sharded engine's same-instant departure batches produce.
		batch := placed[:len(placed)/2]
		if err := m.RemoveVMs(batch...); err != nil {
			t.Fatal(err)
		}
		allocs := map[string]resources.Vector{}
		for _, name := range placed[len(placed)/2:] {
			d, _, err := m.LookupVM(name)
			if err != nil {
				t.Fatal(err)
			}
			allocs[name] = d.Allocation()
		}
		return allocs, events
	}

	seqAllocs, seqEvents := run(1)
	for _, shards := range []int{2, 4, 8} {
		parAllocs, parEvents := run(shards)
		if len(parAllocs) != len(seqAllocs) {
			t.Fatalf("shards=%d: %d survivors vs %d", shards, len(parAllocs), len(seqAllocs))
		}
		for name, want := range seqAllocs {
			if got := parAllocs[name]; got != want {
				t.Errorf("shards=%d: %s allocation %v, want %v", shards, name, got, want)
			}
		}
		if len(parEvents) != len(seqEvents) {
			t.Fatalf("shards=%d: %d events vs %d", shards, len(parEvents), len(seqEvents))
		}
		for i := range seqEvents {
			if parEvents[i] != seqEvents[i] {
				t.Fatalf("shards=%d: event order diverged at %d: %v vs %v", shards, i, parEvents, seqEvents)
			}
		}
	}
}

// Invariant: however many VMs are placed and removed, no server is ever
// allocated beyond its capacity.
func TestChurnNeverOverAllocates(t *testing.T) {
	m := newTestManager(t, 3, Config{Policy: policy.Priority{}})
	placed := []string{}
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("vm-%d", i)
		prio := []float64{0.25, 0.5, 0.75, 1.0}[i%4]
		cfg := deflatableVM(name, float64(4+(i%5)*8), float64(8192+(i%4)*16384), prio)
		if i%5 == 4 {
			cfg = onDemandVM(name, float64(4+(i%3)*4), 16384)
		}
		if _, _, err := m.PlaceVM(cfg); err == nil {
			placed = append(placed, name)
		}
		if i%3 == 2 && len(placed) > 0 {
			if err := m.RemoveVM(placed[0]); err != nil {
				t.Fatal(err)
			}
			placed = placed[1:]
		}
		for _, s := range m.Servers() {
			if !s.Host.Allocated().FitsIn(s.Host.Capacity()) {
				t.Fatalf("iteration %d: server %s over-allocated: %v > %v",
					i, s.Host.Name(), s.Host.Allocated(), s.Host.Capacity())
			}
		}
	}
	if m.Stats().VMs != len(placed) {
		t.Errorf("placement bookkeeping drifted: %d vs %d", m.Stats().VMs, len(placed))
	}
}
