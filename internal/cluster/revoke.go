// Transient-server capacity dynamics: revocation, restoration and
// in-place resize of managed servers, with deflation-first evacuation.
//
// The paper's premise is that the fleet itself is transient — the
// provider can unilaterally take a server away or shrink it. The
// manager reacts in the order the paper argues for:
//
//  1. Deflate first. A shrunk server deflates its own residents toward
//     their floors before anything is displaced; a revoked server's
//     residents are relocated onto survivors, deflating those survivors
//     through the ordinary placement policy passes.
//  2. Evacuate what deflation cannot hold. Displaced VMs form one
//     relocation batch that flows through the same propose/commit
//     PlaceVMs machinery as trace arrivals — so evacuation scales with
//     the placement partitions and is bit-for-bit identical at any
//     partition count.
//  3. Kill only as a last resort. A displaced VM whose relocation fails
//     (no server can host it even after maximal deflation) is reported
//     in the Evacuation outcome; deciding what that means (a shock
//     kill, a queued retry) is the caller's policy.
//
// Determinism invariants:
//
//   - Evacuation batch ordering: displaced VMs enter the relocation
//     batch in (input server order, then domain name order) for
//     revocations, and in (priority ascending, name ascending) victim
//     order for resize displacement. The batch commits in that order —
//     the same strict order at any shard or partition count.
//   - A revoked server keeps its Server identity, its add-order gidx
//     and its partition membership; it is only removed from the
//     capacity indexes and skipped by every candidate scan, so the
//     (fitness, add-index) and (free share, name) total orders over the
//     remaining servers are unchanged.
//   - Resize-under-dirty-flag: Host.SetCapacity invalidates the host's
//     aggregate cache like any other mutation, so the server's index
//     key, cached free/availability vectors and the cluster totals are
//     re-derived by the ordinary dirty sync — no bespoke refresh path.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
)

// ErrRevoked reports an operation on a server in the wrong revocation
// state: revoking or resizing an already-revoked server, or restoring
// one that is in service.
var ErrRevoked = errors.New("cluster: server revocation state")

// Evacuation reports the outcome of a capacity shock: which VMs were
// displaced and where each one landed. Placements[i] is VMs[i]'s
// relocation outcome — a non-nil Err means no server could host the VM
// even after maximal deflation, and the VM is gone.
type Evacuation struct {
	// VMs holds the displaced VMs' configurations (nominal size,
	// priority, floor) in evacuation order.
	VMs []hypervisor.DomainConfig
	// Placements is the relocation outcome per displaced VM, in the
	// same order.
	Placements []Placement
	// Evacuated counts successful relocations; Killed counts displaced
	// VMs that could not be placed anywhere.
	Evacuated, Killed int
}

// Revoked reports whether the server is currently revoked. Like every
// other Server field it is maintained under its Manager's lock;
// standalone servers are never revoked.
func (s *Server) Revoked() bool { return s.revoked }

// partitionFor returns the placement partition that owns s — the
// round-robin-by-add-order assignment AddServer made.
func (m *Manager) partitionFor(s *Server) *placePartition {
	return m.parts[s.gidx%len(m.parts)]
}

// RevokeServer revokes one server; see RevokeServers.
func (m *Manager) RevokeServer(name string) (Evacuation, error) {
	return m.RevokeServers(name)
}

// RevokeServers removes a batch of servers from service at one instant —
// the provider revoked them — and relocates every resident VM through
// the batch placement engine. Residents are displaced in (input server
// order, domain name order), torn down from their revoked hosts, and
// then placed as one relocation batch exactly as if they were
// simultaneous arrivals: survivors deflate to make room, and VMs that
// cannot be placed anywhere are reported as killed. The revoked servers
// stay registered (retaining their add-order identity for the
// placement total orders) but leave the capacity indexes and every
// candidate scan until RestoreServer returns them.
//
// Relocation failures do not count as admission-control rejections —
// Rejections() keeps measuring arrival admission only.
func (m *Manager) RevokeServers(names ...string) (Evacuation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, name := range names {
		s, ok := m.byName[name]
		if !ok {
			return Evacuation{}, fmt.Errorf("%w: server %s", ErrNotFound, name)
		}
		if s.revoked {
			return Evacuation{}, fmt.Errorf("%w: %s already revoked", ErrRevoked, name)
		}
		for _, prev := range names[:i] {
			if prev == name {
				return Evacuation{}, fmt.Errorf("%w: server %s listed twice", ErrExists, name)
			}
		}
	}
	m.evacDCs = m.evacDCs[:0]
	for _, name := range names {
		s := m.byName[name]
		for _, d := range s.Host.Domains() { // name order
			dc := d.Config()
			// Carry the live offered load (DomainConfig holds only the
			// admission-time seed) so the VM re-lands under its current
			// load, visible to latency-aware policies at the new server.
			dc.Load = d.OfferedLoad()
			if err := m.displaceLocked(s, d, dc); err != nil {
				return Evacuation{}, err
			}
		}
		s.revoked = true
		m.revokedCount++
		pp, key := m.partitionFor(s), m.poolKey(s.Partition, s.band)
		pp.indexes[key].Delete(name)
		pp.bounds[key].Delete(name)
		m.totCapacity = m.totCapacity.Sub(s.Host.Capacity())
		// An out-of-service server's risk is realised, not forecast: its
		// headroom contribution leaves the reserve with its capacity.
		m.reserve = m.reserve.Sub(s.reserve)
	}
	return m.evacuateLocked(), nil
}

// RestoreServer returns a revoked server to service at its current
// capacity. The server re-enters its partition's capacity index on the
// next dirty sync, making its capacity visible to subsequent
// placements; nothing is migrated back proactively.
func (m *Manager) RestoreServer(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("%w: server %s", ErrNotFound, name)
	}
	if !s.revoked {
		return fmt.Errorf("%w: %s not revoked", ErrRevoked, name)
	}
	s.revoked = false
	m.revokedCount--
	m.totCapacity = m.totCapacity.Add(s.Host.Capacity())
	m.reserve = m.reserve.Add(s.reserve)
	m.partitionFor(s).dirty.Mark(name)
	return nil
}

// ResizeServer changes a server's physical capacity in place. Growing
// (or restoring) capacity hands the slack straight back to deflated
// residents via a reinflation pass. Shrinking applies the
// deflation-first discipline: residents deflate toward their floors,
// and only when even maximal deflation cannot fit under the new
// capacity are victims displaced — lowest priority first, name
// tie-broken — and relocated through the batch placement engine like a
// revocation's evacuees.
func (m *Manager) ResizeServer(name string, capacity resources.Vector) (Evacuation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.byName[name]
	if !ok {
		return Evacuation{}, fmt.Errorf("%w: server %s", ErrNotFound, name)
	}
	if s.revoked {
		return Evacuation{}, fmt.Errorf("%w: %s is revoked", ErrRevoked, name)
	}
	old := s.Host.Capacity()
	if capacity == old {
		return Evacuation{}, nil
	}
	if err := s.Host.SetCapacity(capacity); err != nil {
		return Evacuation{}, err
	}
	m.totCapacity = m.totCapacity.Add(capacity.Sub(old))
	// The server's headroom contribution tracks its capacity: swap the
	// old reserve vector out and the recomputed one in, in event order,
	// so every engine configuration folds the identical float sequence.
	if s.reserveFrac > 0 {
		m.reserve = m.reserve.Sub(s.reserve)
		s.reserve = capacity.Scale(s.reserveFrac)
		m.reserve = m.reserve.Add(s.reserve)
	}
	// maxCap stays a component-wise upper bound over every capacity the
	// partition's pool has seen: after a shrink it over-estimates, which
	// only loosens the index scans' lower bound (more entries inspected,
	// same answer) — correctness never depends on it being tight.
	pp := m.partitionFor(s)
	key := m.poolKey(s.Partition, s.band)
	pp.maxCap[key] = pp.maxCap[key].Max(capacity)

	if s.Host.Allocated().FitsIn(capacity) {
		// Grow / slack restore: run the freed capacity back into the
		// residents ("run the proportional deflation backwards").
		return Evacuation{}, reinflate(s, m.cfg, nil)
	}
	m.evacDCs = m.evacDCs[:0]
	if err := m.displaceForShrinkLocked(s, capacity); err != nil {
		return Evacuation{}, err
	}
	if err := m.deflateToCapacityLocked(s, capacity); err != nil {
		return Evacuation{}, err
	}
	return m.evacuateLocked(), nil
}

// displaceLocked tears one resident down from its (about to be revoked
// or shrunk) server and queues it for the relocation batch.
func (m *Manager) displaceLocked(s *Server, d *hypervisor.Domain, dc hypervisor.DomainConfig) error {
	if d.State() == hypervisor.Running {
		if err := d.Shutdown(); err != nil {
			return err
		}
	}
	if err := s.Host.Undefine(dc.Name); err != nil {
		return err
	}
	delete(m.placements, dc.Name)
	m.evacDCs = append(m.evacDCs, dc)
	return nil
}

// shrinkVictim is one displacement candidate of a resize: minNeed is
// the least capacity the VM can be squeezed to in place (its floor when
// deflatable, its full allocation otherwise).
type shrinkVictim struct {
	d       *hypervisor.Domain
	minNeed resources.Vector
	prio    float64
	name    string
}

// displaceForShrinkLocked displaces just enough residents that the
// remainder fits the shrunk capacity at maximal deflation. Victims go
// lowest priority first (name tie-broken) — the same order the
// preemption literature reclaims in — so the displaced set is a
// deterministic function of the server's population.
func (m *Manager) displaceForShrinkLocked(s *Server, capacity resources.Vector) error {
	var total resources.Vector
	var victims []shrinkVictim
	for _, d := range s.Host.Domains() { // name order: deterministic sum
		if d.State() != hypervisor.Running {
			continue
		}
		minNeed := d.Allocation()
		if d.Deflatable() {
			minNeed = d.Floor()
		}
		total = total.Add(minNeed)
		victims = append(victims, shrinkVictim{d: d, minNeed: minNeed, prio: d.Priority(), name: d.Name()})
	}
	if total.FitsIn(capacity) {
		return nil
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].prio != victims[j].prio {
			return victims[i].prio < victims[j].prio
		}
		return victims[i].name < victims[j].name
	})
	for _, v := range victims {
		if total.FitsIn(capacity) {
			break
		}
		dc := v.d.Config()
		dc.Load = v.d.OfferedLoad() // re-land under the live load
		if err := m.displaceLocked(s, v.d, dc); err != nil {
			return err
		}
		total = total.Sub(v.minNeed)
	}
	return nil
}

// deflateToCapacityLocked deflates the server's surviving residents so
// the allocation fits the shrunk capacity: the ordinary policy pass
// frees (allocated - capacity), and when even its best effort falls
// short (quantised policies) every deflatable resident is pinned to its
// floor — which the displacement pass guaranteed to fit.
func (m *Manager) deflateToCapacityLocked(s *Server, capacity resources.Vector) error {
	need := s.Host.Allocated().Sub(capacity).ClampNonNegative()
	if need.IsZero() {
		return nil
	}
	sc := &s.scratch
	sc.vms, sc.doms = sc.vms[:0], sc.doms[:0]
	sc.vms, sc.doms = s.Host.AppendDeflatableView(sc.vms, sc.doms)
	res, err := m.cfg.Policy.TargetsInto(sc.vms, need, &sc.ps)
	if err != nil && !errors.Is(err, policy.ErrInsufficient) {
		return err
	}
	for i := range sc.doms {
		target := res.Targets[i]
		if err != nil {
			target = sc.doms[i].Floor()
		}
		if aerr := applyAndNotify(s, m.cfg, sc.doms[i], target, nil); aerr != nil {
			return aerr
		}
	}
	return nil
}

// evacuateLocked relocates the queued displaced VMs as one batch
// through the propose/commit placement engine and assembles the
// Evacuation outcome. The batch commits in evacuation order, so the
// result is bit-for-bit identical at any placement-partition count;
// rejections inside the batch are not counted as admission failures.
func (m *Manager) evacuateLocked() Evacuation {
	var out Evacuation
	if len(m.evacDCs) == 0 {
		return out
	}
	out.VMs = append([]hypervisor.DomainConfig(nil), m.evacDCs...)
	m.evacuating = true
	m.placeAllLocked(m.evacDCs)
	m.evacuating = false
	out.Placements = append([]Placement(nil), m.results[:len(out.VMs)]...)
	for _, pl := range out.Placements {
		if pl.Err != nil {
			out.Killed++
		} else {
			out.Evacuated++
		}
	}
	return out
}
