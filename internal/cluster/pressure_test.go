package cluster

import (
	"fmt"
	"testing"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
)

// pressureScanSteadyState builds a manager whose every server is
// CPU-full with deflatable residents, plus a probe engineered to drive
// the under-pressure scan through its worst case without mutating
// anything: the demand exceeds what deflation can actually free by less
// than reserveMargin, so every server passes the cannotReclaim
// pre-filter (nothing is pruned by fit), gets scored and heaped, and
// then fails the real policy pass — the scan visits the entire cluster
// in exact candBefore order and returns empty-handed, leaving the
// cluster byte-identical for the next iteration.
func pressureScanSteadyState(tb testing.TB, partitions int) (*Manager, hypervisor.DomainConfig) {
	tb.Helper()
	m := NewManager(Config{Policy: policy.Proportional{}, PlacementPartitions: partitions})
	for i := 0; i < 8; i++ {
		if _, err := m.AddServer(fmt.Sprintf("node-%03d", i), resources.CPUMem(48, 131072), 0); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		dc := hypervisor.DomainConfig{
			Name:       fmt.Sprintf("resident-%02d", i),
			Size:       resources.CPUMem(12, 24576),
			Deflatable: true,
			Priority:   []float64{0.25, 0.5, 0.75, 1.0}[i%4],
		}
		if _, _, err := m.PlaceVM(dc); err != nil {
			tb.Fatal(err)
		}
	}
	// Refresh the cached aggregates and bound keys, then derive the
	// probe from live server state (every server is identically loaded):
	// demand = free + reclaimable + 5e-4 sits inside the pre-filter's
	// reserveMargin (1e-3) yet past what deflation to the floors frees.
	m.mu.Lock()
	m.syncDirtyLocked()
	m.mu.Unlock()
	s := m.Servers()[0]
	agg := s.Host.Aggregates()
	free := s.Host.Capacity().Sub(agg.Allocated)
	probe := hypervisor.DomainConfig{
		Name: "probe",
		Size: free.Add(agg.DeflatableReserve).Add(resources.CPUMem(5e-4, 5e-4)),
	}
	return m, probe
}

// pressureScanOnce is one steady-state scan: the dirty sync a commit
// would run (a no-op here) plus the full bound-pruned descent.
func pressureScanOnce(tb testing.TB, m *Manager, probe hypervisor.DomainConfig) {
	m.mu.Lock()
	m.syncDirtyLocked()
	_, _, ok := m.pressureLiveLocked(probe, nil)
	m.mu.Unlock()
	if ok {
		tb.Fatal("probe was placed — the scan mutated state and is not steady-state")
	}
}

// TestPressureScanZeroAllocs is the allocation-regression guard for the
// bound-pruned under-pressure scan: once the iterator stacks and the
// candidate heap are warm, a full-cluster descent — every server
// expanded, scored and tried — must perform zero heap allocations, at
// one partition and several.
func TestPressureScanZeroAllocs(t *testing.T) {
	for _, partitions := range []int{1, 4} {
		t.Run(fmt.Sprintf("partitions=%d", partitions), func(t *testing.T) {
			m, probe := pressureScanSteadyState(t, partitions)
			defer m.Close()
			pressureScanOnce(t, m, probe) // warm the iterator and heap arenas
			arr0, scored0, _ := m.PressureStats()
			if arr0 == 0 || scored0 != len(m.Servers()) {
				t.Fatalf("warmup scored %d servers over %d scans, want a full %d-server descent",
					scored0, arr0, len(m.Servers()))
			}
			got := testing.AllocsPerRun(200, func() {
				pressureScanOnce(t, m, probe)
			})
			if got != 0 {
				t.Errorf("steady-state pressure scan allocates %.1f allocs/op, want 0", got)
			}
		})
	}
}

// BenchmarkPressureScan is the pressure-scan benchmark the Makefile's
// bench-allocs gate watches: `-benchmem` must report 0 allocs/op or the
// build fails. ns/op is the worst-case full-cluster descent — every
// bound admitted, every server scored and tried — which is the cost a
// pressured arrival pays when the cluster truly has no room.
func BenchmarkPressureScan(b *testing.B) {
	m, probe := pressureScanSteadyState(b, 4)
	defer m.Close()
	pressureScanOnce(b, m, probe)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pressureScanOnce(b, m, probe)
	}
}
