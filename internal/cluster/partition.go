// Placement partitions: the parallel propose / serial commit arrival
// engine.
//
// The manager splits its servers round-robin across
// Config.PlacementPartitions placement partitions (orthogonal to the
// paper's priority pools, which remain a property of each server). Each
// partition owns, for its servers only: one capacity-index treap per
// priority pool, the dirty set fed by its hosts' aggregate-change
// callbacks, and the scratch arenas the propose phases write into — so
// partitions never share mutable state and a batch's propose work fans
// out across a small pool of phase workers without locks.
//
// A batch placement (PlaceVMs) runs in two steps:
//
//   - Propose (parallel, side-effect-free): against the batch-start
//     state, every partition computes for every VM its surplus bid (the
//     partition's tightest-fit server with free capacity).
//   - Commit (serial, batch order): VMs commit in input order — the
//     canonical trace order, so results cannot depend on the partition
//     count. Each commit first drains the dirty servers (exactly the
//     ones earlier commits touched), then validates the merged surplus
//     proposal: if no server in the VM's priority pool was touched by
//     an earlier commit, the proposals are still exact and are used
//     directly; otherwise the commit re-proposes surplus from the live
//     indexes. VMs with no surplus anywhere fall through to the live
//     under-pressure scan (pressure.go): a best-first branch-and-bound
//     descent over the bound-keyed pressure indexes that computes exact
//     fitness for only as many servers as the bounds cannot exclude —
//     cheap enough that commits run it directly at live state, with no
//     batch-start pressure proposals to validate or weave.
//
// Determinism: propose never mutates, commits happen one at a time in
// batch order, and every merged selection uses the same strict total
// orders as the sequential path — (free share, name) for surplus,
// (band, fitness desc, server add-index asc) for pressure — so the
// outcome is bit-for-bit identical to the sequential indexed path and
// to the brute-force reference at any partition count, which the
// differential suites assert.
package cluster

import (
	"runtime"
	"time"

	"vmdeflate/internal/cluster/capindex"
	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/resources"
)

// placePartition is one placement partition: a slice of the cluster's
// servers plus everything the partition owns for them — per-pool
// capacity indexes, the dirty set, and the propose/sync arenas. All
// fields are touched only under the manager's lock or by the single
// phase worker the dispatcher hands this partition to.
type placePartition struct {
	id      int
	servers []*Server // in AddServer order (ascending Server.gidx)

	indexes map[int]*capindex.Index  // per priority pool, this partition's servers only
	bounds  map[int]*capindex.Index  // fitness-bound twin of indexes (pressure.go)
	maxCap  map[int]resources.Vector // per-pool component-wise max capacity
	dirty   *capindex.DirtySet       // fed by this partition's hosts' callbacks

	// Propose arena, valid for the current batch.
	surplus []*Server // per-VM surplus bid (nil: none in this partition)

	// Band-blind surplus scratch: the pool's per-band indexes and lower
	// bounds joined into one MinFitting (only with Config.Risk, where a
	// pool spans several band indexes).
	bandIdx []*capindex.Index
	bandLow []float64

	// Sync arenas: the drained dirty names (sorted) and the per-server
	// aggregate deltas the serial fold applies to the cluster totals.
	names  []string
	deltaC []resources.Vector
	deltaA []resources.Vector
}

// Worker phases. The dispatcher writes the phase before the channel
// sends that release the workers, so the reads in runPhase are ordered
// by the channel.
const (
	phaseSync = iota
	phaseSurplus
)

// parallelSyncMin is the dirty-server count below which the refresh
// stays on the calling goroutine: draining a handful of servers is
// cheaper than a worker round trip.
const parallelSyncMin = 64

// grow returns s with length n, reusing its backing array when large
// enough. Contents of reused elements are unspecified; callers
// overwrite every slot they read.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// candBefore is the strict total pressure order: hazard band ascending,
// then fitness descending, then server add-index ascending. Candidates
// for non-banded VMs always carry band 0, so for them the order is the
// historical (fitness, idx) pair. It is candList.Less on two loose
// values.
func candBefore(a, b cand) bool {
	if a.band != b.band {
		return a.band < b.band
	}
	if a.fitness != b.fitness {
		return a.fitness > b.fitness
	}
	return a.idx < b.idx
}

// surplusBefore is the strict total surplus order over cached server
// state: (hazard band when banded, free share, name) ascending — the
// cross-partition merge twin of the per-index scans.
func surplusBefore(a, b *Server, banded bool) bool {
	if banded && a.band != b.band {
		return a.band < b.band
	}
	if a.freeShare != b.freeShare {
		return a.freeShare < b.freeShare
	}
	return a.Host.Name() < b.Host.Name()
}

// newcomerRange is the newcomer's own deflatable range, which joins
// every server's maximum reclaim in the feasibility pre-filter.
func newcomerRange(dc hypervisor.DomainConfig) resources.Vector {
	if !dc.Deflatable {
		return resources.Vector{}
	}
	return dc.Size.Sub(dc.Floor()).ClampNonNegative()
}

// startWorkersLocked lazily spawns the phase workers: one per
// partition, capped at GOMAXPROCS but always at least two so the
// propose/commit concurrency is real (and race-checked) even on a
// single-core machine. After Close the manager stays usable with
// phases running inline.
func (m *Manager) startWorkersLocked() {
	if m.workCh != nil || m.closed || len(m.parts) <= 1 {
		return
	}
	w := runtime.GOMAXPROCS(0)
	if w > len(m.parts) {
		w = len(m.parts)
	}
	if w < 2 {
		w = 2
	}
	m.workCh = make(chan int, len(m.parts))
	for i := 0; i < w; i++ {
		go m.phaseWorker(m.workCh)
	}
}

// phaseWorker receives the channel as an argument (rather than reading
// the field) so Close can nil the field under the manager lock without
// racing a worker that is still starting up.
func (m *Manager) phaseWorker(ch chan int) {
	for id := range ch {
		m.runPhase(m.parts[id], m.phase)
		m.wg.Done()
	}
}

// dispatchLocked runs one phase over every partition and waits for the
// barrier. The phase (and m.sortVM for phaseSort) must be set before
// the call; the channel sends order those writes before the workers'
// reads, and wg.Wait orders the workers' writes before the dispatcher
// continues.
func (m *Manager) dispatchLocked(phase int) {
	m.startWorkersLocked()
	if m.workCh == nil {
		for _, p := range m.parts {
			m.runPhase(p, phase)
		}
		return
	}
	m.phase = phase
	m.wg.Add(len(m.parts))
	for id := range m.parts {
		m.workCh <- id
	}
	m.wg.Wait()
}

func (m *Manager) runPhase(p *placePartition, phase int) {
	switch phase {
	case phaseSync:
		p.refresh(m)
	case phaseSurplus:
		p.proposeSurplus(m)
	}
}

// Close stops the phase workers. The manager remains fully usable —
// subsequent batches run their phases inline on the calling goroutine.
// Engines close their manager when a run ends so that sweeps spinning
// up thousands of managers do not accumulate idle goroutines.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.workCh != nil {
		close(m.workCh)
		m.workCh = nil
	}
	m.closed = true
	m.mu.Unlock()
}

// syncDirtyLocked refreshes cached placement state (per-server
// aggregates, free/availability vectors, index keys) for every server
// the hosts marked dirty since the last query. Each partition refreshes
// its own servers — fanned out across the phase workers when the dirty
// set is large — and the cluster-total deltas are then folded serially
// in globally sorted name order, so the totals' float accumulation
// order is identical at any partition and worker count (and to the
// pre-partitioned engine, which drained one global set in sorted
// order). Between bursts of churn it is a no-op.
func (m *Manager) syncDirtyLocked() {
	total := 0
	for _, p := range m.parts {
		p.names = p.dirty.Drain()
		total += len(p.names)
	}
	if total == 0 {
		return
	}
	if total >= parallelSyncMin && len(m.parts) > 1 {
		m.dispatchLocked(phaseSync)
	} else {
		for _, p := range m.parts {
			p.refresh(m)
		}
	}
	m.foldDeltasLocked()
}

// refresh re-derives the cached state of this partition's dirty
// servers. It writes only per-server fields and the partition's own
// index, so refreshes of distinct partitions are safe in parallel; the
// cluster-total deltas are recorded for the serial fold instead of
// being applied here.
func (p *placePartition) refresh(m *Manager) {
	p.deltaC = p.deltaC[:0]
	p.deltaA = p.deltaA[:0]
	for _, name := range p.names {
		s := m.byName[name]
		agg := s.Host.Aggregates()
		p.deltaC = append(p.deltaC, agg.Committed.Sub(s.agg.Committed))
		p.deltaA = append(p.deltaA, agg.Allocated.Sub(s.agg.Allocated))
		s.agg = agg
		total := s.Host.Capacity()
		s.free = total.Sub(agg.Allocated)
		s.freeShare = s.free.DominantShare(total)
		s.avail = availabilityFrom(total, agg)
		key := m.poolKey(s.Partition, s.band)
		if s.revoked {
			// A revoked server stays out of the indexes no matter who
			// marked it dirty; its cached state is still refreshed so
			// the delta fold keeps the cluster totals exact.
			p.indexes[key].Delete(name)
			p.bounds[key].Delete(name)
		} else {
			p.indexes[key].Upsert(name, s.freeShare)
			p.bounds[key].Upsert(name, boundKey(s.avail))
		}
	}
}

// foldDeltasLocked applies the partitions' recorded aggregate deltas to
// the cluster totals in globally sorted server-name order: each
// partition's drained list is already sorted and the partitions' name
// sets are disjoint, so a k-way head merge visits names in exactly the
// order one global sorted drain would have.
func (m *Manager) foldDeltasLocked() {
	heads := grow(m.foldHeads, len(m.parts))
	for i := range heads {
		heads[i] = 0
	}
	m.foldHeads = heads
	for {
		best := -1
		for pi, p := range m.parts {
			if heads[pi] >= len(p.names) {
				continue
			}
			if best < 0 || p.names[heads[pi]] < m.parts[best].names[heads[best]] {
				best = pi
			}
		}
		if best < 0 {
			return
		}
		p := m.parts[best]
		j := heads[best]
		m.totCommitted = m.totCommitted.Add(p.deltaC[j])
		m.totAllocated = m.totAllocated.Add(p.deltaA[j])
		heads[best]++
	}
}

// surplusKey answers one (pool, band) index's tightest-fit query: the
// fitting server with the smallest (free share, name) in that index.
// Side-effect-free.
func (p *placePartition) surplusKey(m *Manager, key int, size resources.Vector) *Server {
	ix := p.indexes[key]
	if ix == nil {
		return nil
	}
	lower := size.DominantShare(p.maxCap[key]) - fitMargin
	name, _, ok := ix.FirstFitting(lower, func(n string) bool {
		return size.FitsIn(m.byName[n].free)
	})
	if !ok {
		return nil
	}
	return m.byName[name]
}

// surplusLocal answers the partition's tightest-fit surplus query for a
// priority pool: the fitting server with the smallest (free share,
// name) among this partition's pool servers — or, for banded VMs, the
// smallest (hazard band, free share, name), by probing bands ascending
// and taking the first band with any fit. Side-effect-free.
func (p *placePartition) surplusLocal(m *Manager, pool int, size resources.Vector, banded bool) *Server {
	if banded {
		for band := 0; band < m.nBands; band++ {
			if s := p.surplusKey(m, m.poolKey(pool, band), size); s != nil {
				return s
			}
		}
		return nil
	}
	if m.nBands == 1 {
		return p.surplusKey(m, pool, size)
	}
	// Band-blind with several band indexes per pool: one MinFitting over
	// the pool's bands gives the (free share, name) minimum.
	ixs, lows := p.bandIdx[:0], p.bandLow[:0]
	for band := 0; band < m.nBands; band++ {
		key := m.poolKey(pool, band)
		ix := p.indexes[key]
		var lower float64
		if ix != nil {
			lower = size.DominantShare(p.maxCap[key]) - fitMargin
		}
		ixs, lows = append(ixs, ix), append(lows, lower)
	}
	p.bandIdx, p.bandLow = ixs, lows
	name, _, ok := capindex.MinFitting(ixs, lows, func(n string) bool {
		return size.FitsIn(m.byName[n].free)
	})
	if !ok {
		return nil
	}
	return m.byName[name]
}

// proposeSurplus records, for every VM of the batch, this partition's
// surplus bid against the batch-start state.
func (p *placePartition) proposeSurplus(m *Manager) {
	p.surplus = grow(p.surplus, len(m.batchDCs))
	for i := range m.batchDCs {
		p.surplus[i] = p.surplusLocal(m, m.batchPools[i], m.batchDCs[i].Size, m.batchBanded[i])
	}
}

// placeAllLocked fills m.results for dcs: the sequential per-VM path
// when there is a single partition (or the brute-force reference is
// selected), the propose/commit engine otherwise.
func (m *Manager) placeAllLocked(dcs []hypervisor.DomainConfig) {
	m.results = grow(m.results, len(dcs))
	if len(dcs) == 0 {
		return
	}
	if len(m.parts) == 1 {
		var t0 time.Time
		if m.cfg.CollectTimings {
			t0 = time.Now()
		}
		for i := range dcs {
			m.results[i] = m.placeSequentialLocked(dcs[i])
		}
		if m.cfg.CollectTimings {
			// With no propose phase, commit is the whole placement time;
			// the surplus/pressure sub-timers (accumulated inside
			// placeSequentialLocked) attribute it further, so artifacts
			// compare like with like against the batch engine.
			m.commitTime += time.Since(t0)
		}
		return
	}
	m.placeBatchLocked(dcs)
}

// placeSequentialLocked is the one-VM-at-a-time placement decision —
// the three-step protocol exactly as PlaceVM has always run it. The
// propose/commit engine must match it bit for bit.
func (m *Manager) placeSequentialLocked(dc hypervisor.DomainConfig) Placement {
	m.syncDirtyLocked()
	if m.riskRejectLocked(dc) {
		m.rejections++
		m.riskRejections++
		return Placement{Err: errHeadroom(dc)}
	}
	best := m.surplusCandidateTimedLocked(m.PartitionOf(dc), dc.Size, m.banded(dc))
	// A surplus candidate in the VM's own pool already proves some
	// server fits without deflation; only its absence needs the
	// cross-pool existence scan.
	out := Placement{NeedsReclaim: best == nil && !m.anyFitsLocked(dc.Size)}
	if _, ok := m.placements[dc.Name]; ok {
		out.Err = errExists(dc.Name)
		return out
	}
	if best != nil {
		d, deflations, err := PlaceOn(best, m.cfg, dc)
		if err == nil {
			m.deflationEvents += deflations
			m.placements[dc.Name] = best
			out.Domain, out.Server = d, best
			out.Initial = d.Allocation()
			return out
		}
	}
	if d, s, ok := m.pressureLiveLocked(dc, best); ok {
		out.Domain, out.Server = d, s
		out.Initial = d.Allocation()
		return out
	}
	if !m.evacuating { // relocation failures are not admission rejections
		m.rejections++
	}
	out.Err = errNoCapacity(dc)
	return out
}

// placeBatchLocked is the partitioned engine: parallel propose against
// the batch-start state, then a serial commit walk in batch order.
func (m *Manager) placeBatchLocked(dcs []hypervisor.DomainConfig) {
	var t0 time.Time
	timed := m.cfg.CollectTimings
	m.syncDirtyLocked()
	if timed {
		t0 = time.Now()
	}
	m.proposeLocked(dcs)
	if timed {
		now := time.Now()
		m.proposeTime += now.Sub(t0)
		t0 = now
	}
	if m.touched == nil {
		m.touched = make(map[*Server]bool)
	}
	clear(m.touched)
	m.touchedList = m.touchedList[:0]
	for i := range dcs {
		m.syncDirtyLocked() // drains exactly what the previous commit touched
		m.results[i] = m.commitOneLocked(i, dcs[i])
	}
	if timed {
		m.commitTime += time.Since(t0)
	}
	m.batchDCs = nil // do not retain the caller's slice
}

// proposeLocked runs the parallel surplus propose phase. Under-pressure
// placement needs no propose phase: commits run the bound-pruned
// descent (pressure.go) directly at live state, which is both exact by
// construction and cheap enough not to want batch-start proposals.
func (m *Manager) proposeLocked(dcs []hypervisor.DomainConfig) {
	m.batchDCs = dcs
	m.batchPools = grow(m.batchPools, len(dcs))
	m.batchBanded = grow(m.batchBanded, len(dcs))
	for i := range dcs {
		m.batchPools[i] = m.PartitionOf(dcs[i])
		m.batchBanded[i] = m.banded(dcs[i])
	}
	m.dispatchLocked(phaseSurplus)
}

// markTouchedLocked records a server mutated by a commit of the current
// batch; proposals naming it are stale from here on.
func (m *Manager) markTouchedLocked(s *Server) {
	if !m.touched[s] {
		m.touched[s] = true
		m.touchedList = append(m.touchedList, s)
	}
}

// touchedInPoolLocked reports whether any earlier commit of this batch
// mutated a server of the given priority pool.
func (m *Manager) touchedInPoolLocked(pool int) bool {
	if pool < 0 {
		return len(m.touchedList) > 0
	}
	for _, s := range m.touchedList {
		if s.Partition == pool {
			return true
		}
	}
	return false
}

// commitOneLocked commits VM i: the same decision placeSequentialLocked
// makes, resolved from the batch proposals when they are still exact
// and re-proposed live on conflict. Called with the dirty set drained.
func (m *Manager) commitOneLocked(i int, dc hypervisor.DomainConfig) Placement {
	if m.riskRejectLocked(dc) { // same gate, same live totals, as the sequential path
		m.rejections++
		m.riskRejections++
		return Placement{Err: errHeadroom(dc)}
	}
	pool := m.batchPools[i]
	var best *Server
	if m.cfg.CollectTimings {
		t0 := time.Now()
		best = m.commitSurplusLocked(i, pool, dc.Size)
		m.surplusTime += time.Since(t0)
	} else {
		best = m.commitSurplusLocked(i, pool, dc.Size)
	}
	// As in placeSequentialLocked: a pool surplus winner implies the
	// cross-pool existence check is true, so it is skipped.
	out := Placement{NeedsReclaim: best == nil && !m.anyFitsLocked(dc.Size)}
	if _, ok := m.placements[dc.Name]; ok {
		out.Err = errExists(dc.Name)
		return out
	}
	if best != nil {
		d, deflations, err := PlaceOn(best, m.cfg, dc)
		if err == nil {
			m.deflationEvents += deflations
			m.placements[dc.Name] = best
			m.markTouchedLocked(best)
			out.Domain, out.Server = d, best
			out.Initial = d.Allocation()
			return out
		}
	}
	// Under pressure the commit runs the live bound-pruned descent
	// directly: the commit loop's dirty sync has already refreshed
	// exactly what earlier commits touched, so the scan is bit-identical
	// to the sequential path's at this state — no batch-start pressure
	// proposal to validate.
	if d, s, ok := m.pressureLiveLocked(dc, best); ok {
		m.markTouchedLocked(s)
		out.Domain, out.Server = d, s
		out.Initial = d.Allocation()
		return out
	}
	if !m.evacuating { // relocation failures are not admission rejections
		m.rejections++
	}
	out.Err = errNoCapacity(dc)
	return out
}

// commitSurplusLocked resolves VM i's surplus winner. With no touched
// server in the VM's pool the proposals are exact (propose is
// side-effect-free and untouched servers' cached state is unchanged
// since the batch-start sync), so the winner is the minimum
// (free share, name) over the partitions' bids; otherwise the batch
// conflicted and the winner is re-proposed from the live indexes, which
// the commit loop's dirty sync keeps current.
func (m *Manager) commitSurplusLocked(i, pool int, size resources.Vector) *Server {
	banded := m.batchBanded[i]
	if m.touchedInPoolLocked(pool) {
		return m.surplusCandidateLocked(pool, size, banded)
	}
	// Each partition's bid is its local (band when banded, free share,
	// name) minimum, so the minimum over bids is the global one.
	var best *Server
	for _, p := range m.parts {
		s := p.surplus[i]
		if s == nil {
			continue
		}
		if best == nil || surplusBefore(s, best, banded) {
			best = s
		}
	}
	return best
}
