package cluster

import (
	"errors"
	"fmt"
	"testing"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
)

// riskSpec provisions a deliberately heterogeneous risky fleet: bands
// cycle through all four levels and every third server carries a
// headroom reserve, so the churn exercises band-keyed indexes, the
// banded candidate order and the admission gate together.
func riskSpec(i int, m *Manager) ServerSpec {
	return ServerSpec{
		Name:            fmt.Sprintf("node-%03d", i),
		Capacity:        serverCap(),
		Partition:       i % max(1, m.Config().PriorityLevels),
		Band:            i % 4,
		ReserveFraction: 0.05 * float64(i%3),
	}
}

// TestRiskChurnMatchesReference is the differential guarantee for the
// risk-aware paths: with hazard bands, headroom reserves and the
// shock-aware admission gate all active, the indexed engine must match
// the brute-force reference bit for bit — server choices, rejection
// classes and every counter — across placement-partition counts and
// priority-partitioned pools.
func TestRiskChurnMatchesReference(t *testing.T) {
	risk := &RiskConfig{HighPriority: 0.75, MaxBands: 4}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"sequential", Config{Policy: policy.Priority{}, Risk: risk}},
		{"partitions=2", Config{Policy: policy.Priority{}, Risk: risk, PlacementPartitions: 2}},
		{"partitions=5", Config{Policy: policy.Priority{}, Risk: risk, PlacementPartitions: 5}},
		{"pools+partitions=3", Config{
			Policy:              policy.Priority{},
			Risk:                risk,
			PartitionByPriority: true,
			PriorityLevels:      4,
			PlacementPartitions: 3,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{5, 17} {
				runDifferentialChurnSpecs(t, seed, tc.cfg, 12, 400, riskSpec)
			}
		})
	}
}

// TestBandedOrderPrefersLowHazard: a high-priority VM walks the hazard
// bands upward and lands on the safe server even though the risky one
// is the tighter fit, while a low-priority VM keeps the legacy
// tightest-fit order and packs onto the risky server.
func TestBandedOrderPrefersLowHazard(t *testing.T) {
	m := NewManager(Config{Risk: &RiskConfig{}})
	if _, err := m.AddServerSpec(ServerSpec{Name: "a-risky", Capacity: serverCap(), Band: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddServerSpec(ServerSpec{Name: "b-safe", Capacity: serverCap(), Band: 0}); err != nil {
		t.Fatal(err)
	}
	// Tie on free share: low priority takes the name order, onto a-risky,
	// which from then on is the tighter fit.
	_, s, err := m.PlaceVM(deflatableVM("low-0", 8, 16384, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if s.Host.Name() != "a-risky" {
		t.Fatalf("low-priority tie broke to %s, want a-risky (legacy name order)", s.Host.Name())
	}
	_, s, err = m.PlaceVM(deflatableVM("high-0", 8, 16384, 0.8))
	if err != nil {
		t.Fatal(err)
	}
	if s.Host.Name() != "b-safe" {
		t.Fatalf("high-priority VM placed on %s, want b-safe (band 0 before band 3)", s.Host.Name())
	}
	_, s, err = m.PlaceVM(deflatableVM("low-1", 8, 16384, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if s.Host.Name() != "a-risky" {
		t.Fatalf("low-priority VM placed on %s, want a-risky (tightest fit, band-blind)", s.Host.Name())
	}
	// A non-deflatable VM is banded too: the reserve protects exactly
	// this class, and it must avoid hazard like high priority does.
	_, s, err = m.PlaceVM(onDemandVM("ondemand-0", 8, 16384))
	if err != nil {
		t.Fatal(err)
	}
	if s.Host.Name() != "b-safe" {
		t.Fatalf("on-demand VM placed on %s, want b-safe", s.Host.Name())
	}
}

// TestHeadroomGateWithholdsLowPriority pins the admission gate's
// arithmetic and its accounting: two servers reserving half their
// capacity stop admitting low-priority VMs once free capacity dips to
// the reserve, the rejection carries both ErrHeadroom and
// ErrNoCapacity, high-priority and on-demand VMs bypass the gate, and
// the whole trajectory is identical on the sequential, batch and
// reference engines.
func TestHeadroomGateWithholdsLowPriority(t *testing.T) {
	variants := []struct {
		name string
		cfg  Config
	}{
		{"sequential", Config{Risk: &RiskConfig{}}},
		{"partitions=3", Config{Risk: &RiskConfig{}, PlacementPartitions: 3}},
		{"reference", Config{Risk: &RiskConfig{}, ReferencePlacement: true}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			m := NewManager(v.cfg)
			for i := 0; i < 2; i++ {
				spec := ServerSpec{
					Name:            fmt.Sprintf("node-%d", i),
					Capacity:        serverCap(),
					ReserveFraction: 0.5,
				}
				if _, err := m.AddServerSpec(spec); err != nil {
					t.Fatal(err)
				}
			}
			if got := m.HeadroomReserve(); got != serverCap() {
				t.Fatalf("reserve = %v, want one server's worth %v", got, serverCap())
			}
			// Free capacity starts at 96 cores against a 48-core reserve:
			// 8-core VMs pass the gate while 8 + 48 <= 96 - 8k, so exactly
			// six are admitted and the seventh is withheld — with 40 cores
			// still free, so this is headroom, not capacity.
			admitted := 0
			var rejErr error
			for i := 0; i < 7; i++ {
				_, _, err := m.PlaceVM(deflatableVM(fmt.Sprintf("low-%d", i), 8, 1024, 0.25))
				if err == nil {
					admitted++
					continue
				}
				rejErr = err
				break
			}
			if admitted != 6 {
				t.Fatalf("admitted %d low-priority VMs before the gate, want 6", admitted)
			}
			if !errors.Is(rejErr, ErrHeadroom) || !errors.Is(rejErr, ErrNoCapacity) {
				t.Fatalf("gate rejection = %v, want ErrHeadroom wrapping ErrNoCapacity", rejErr)
			}
			if m.RiskRejections() != 1 || m.Rejections() != 1 {
				t.Fatalf("counters = (%d risk, %d total), want (1, 1)", m.RiskRejections(), m.Rejections())
			}
			// The classes the reserve protects sail through the gate.
			if _, _, err := m.PlaceVM(deflatableVM("high", 8, 1024, 0.9)); err != nil {
				t.Fatalf("high-priority VM gated: %v", err)
			}
			if _, _, err := m.PlaceVM(onDemandVM("ondemand", 8, 1024)); err != nil {
				t.Fatalf("on-demand VM gated: %v", err)
			}
			if m.RiskRejections() != 1 {
				t.Fatalf("bypass classes bumped RiskRejections to %d", m.RiskRejections())
			}
		})
	}
}

// TestHeadroomGateLiftsDuringEvacuation: the gate must never fight an
// evacuation — displaced low-priority VMs relocate even into reserved
// headroom (the reserve exists precisely to absorb them).
func TestHeadroomGateLiftsDuringEvacuation(t *testing.T) {
	m := NewManager(Config{Risk: &RiskConfig{}})
	for i := 0; i < 2; i++ {
		spec := ServerSpec{
			Name:            fmt.Sprintf("node-%d", i),
			Capacity:        serverCap(),
			ReserveFraction: 0.5,
		}
		if _, err := m.AddServerSpec(spec); err != nil {
			t.Fatal(err)
		}
	}
	// Six 8-core VMs saturate the gate (see the arithmetic above); all
	// land somewhere across the two servers.
	for i := 0; i < 6; i++ {
		if _, _, err := m.PlaceVM(deflatableVM(fmt.Sprintf("low-%d", i), 8, 1024, 0.25)); err != nil {
			t.Fatal(err)
		}
	}
	// Revoking node-0 displaces its residents; relocation onto node-1
	// must succeed even though a fresh arrival would be gated there.
	out, err := m.RevokeServers("node-0")
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range out.Placements {
		if pl.Err != nil {
			t.Fatalf("evacuation gated or failed: %v", pl.Err)
		}
	}
	if m.RiskRejections() != 0 {
		t.Fatalf("evacuation counted %d risk rejections", m.RiskRejections())
	}
}

// riskProposeSteadyState is proposeSteadyState on a risk-on manager:
// bands cycle across the fleet, every server reserves headroom, and the
// probe batch hits the banded surplus scan (high-priority), the legacy
// surplus scan (low-priority) and the banded pressure ranking
// (on-demand giant) every round.
func riskProposeSteadyState(tb testing.TB, partitions int) (*Manager, []hypervisor.DomainConfig) {
	tb.Helper()
	m := NewManager(Config{
		Policy:              policy.Proportional{},
		PlacementPartitions: partitions,
		Risk:                &RiskConfig{},
	})
	for i := 0; i < 8; i++ {
		spec := ServerSpec{
			Name:            fmt.Sprintf("node-%03d", i),
			Capacity:        resources.CPUMem(48, 131072),
			Band:            i % 4,
			ReserveFraction: 0.1,
		}
		if _, err := m.AddServerSpec(spec); err != nil {
			tb.Fatal(err)
		}
	}
	for i := 0; i < 24; i++ {
		dc := hypervisor.DomainConfig{
			Name:       fmt.Sprintf("resident-%02d", i),
			Size:       resources.CPUMem(12, 24576),
			Deflatable: true,
			Priority:   []float64{0.25, 0.5, 0.75, 1.0}[i%4],
		}
		if _, _, err := m.PlaceVM(dc); err != nil {
			tb.Fatal(err)
		}
	}
	dcs := []hypervisor.DomainConfig{
		{Name: "probe-high", Size: resources.CPUMem(8, 16384), Deflatable: true, Priority: 0.9},
		{Name: "probe-low", Size: resources.CPUMem(4, 8192), Deflatable: true, Priority: 0.25},
		{Name: "probe-od", Size: resources.CPUMem(47, 122880)},
	}
	return m, dcs
}

// TestRiskProposeSteadyStateZeroAllocs extends the propose-pass
// allocation gate to the hazard-aware candidate scan: with bands and
// reserves active, the banded surplus walk (first fitting band across
// partitions) and the banded pressure ranking must stay allocation-free
// once the arenas are warm.
func TestRiskProposeSteadyStateZeroAllocs(t *testing.T) {
	for _, partitions := range []int{1, 4} {
		t.Run(fmt.Sprintf("partitions=%d", partitions), func(t *testing.T) {
			m, dcs := riskProposeSteadyState(t, partitions)
			defer m.Close()
			proposeOnce(m, dcs) // warm the arenas and spawn the workers
			got := testing.AllocsPerRun(200, func() {
				proposeOnce(m, dcs)
			})
			if got != 0 {
				t.Errorf("risk-on steady-state propose pass allocates %.1f allocs/op, want 0", got)
			}
		})
	}
}

// BenchmarkRiskProposeSteadyState is the hazard-aware scan's entry in
// the Makefile's bench-allocs gate: `-benchmem` must report 0 allocs/op
// or the build fails. ns/op is the per-batch propose latency a
// risk-aware partitioned run pays at every arrival instant; compare
// against BenchmarkProposeSteadyState for the cost of banding.
func BenchmarkRiskProposeSteadyState(b *testing.B) {
	m, dcs := riskProposeSteadyState(b, 4)
	defer m.Close()
	proposeOnce(m, dcs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proposeOnce(m, dcs)
	}
}

// TestReserveTracksCapacityEvents: the cluster-wide reserve follows
// revocations (risk realised leaves the forecast), restorations and
// resizes, staying exactly the sum of in-service reserves.
func TestReserveTracksCapacityEvents(t *testing.T) {
	m := NewManager(Config{Risk: &RiskConfig{}})
	for i := 0; i < 3; i++ {
		spec := ServerSpec{
			Name:            fmt.Sprintf("node-%d", i),
			Capacity:        serverCap(),
			ReserveFraction: 0.25,
		}
		if _, err := m.AddServerSpec(spec); err != nil {
			t.Fatal(err)
		}
	}
	one := serverCap().Scale(0.25)
	if got, want := m.HeadroomReserve(), one.Scale(3); got != want {
		t.Fatalf("reserve = %v, want %v", got, want)
	}
	if _, err := m.RevokeServers("node-1"); err != nil {
		t.Fatal(err)
	}
	if got, want := m.HeadroomReserve(), one.Scale(2); got != want {
		t.Fatalf("reserve after revoke = %v, want %v", got, want)
	}
	if err := m.RestoreServer("node-1"); err != nil {
		t.Fatal(err)
	}
	if got, want := m.HeadroomReserve(), one.Scale(3); got != want {
		t.Fatalf("reserve after restore = %v, want %v", got, want)
	}
	if _, err := m.ResizeServer("node-2", serverCap().Scale(0.5)); err != nil {
		t.Fatal(err)
	}
	want := one.Scale(2).Add(serverCap().Scale(0.5).Scale(0.25))
	if got := m.HeadroomReserve(); got != want {
		t.Fatalf("reserve after resize = %v, want %v", got, want)
	}
}
