package capindex

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// refEntry mirrors one index entry in the flat reference model.
type refEntry struct {
	name string
	key  float64
}

// refModel is the brute-force oracle: a map kept in sync with the same
// upserts/deletes, queried by sorting.
type refModel map[string]float64

func (m refModel) sorted() []refEntry {
	out := make([]refEntry, 0, len(m))
	for n, k := range m {
		out = append(out, refEntry{n, k})
	}
	sort.Slice(out, func(i, j int) bool {
		return less(out[i].key, out[i].name, out[j].key, out[j].name)
	})
	return out
}

func collectFrom(ix *Index, lower float64) []refEntry {
	var out []refEntry
	ix.AscendFrom(lower, func(name string, key float64) bool {
		out = append(out, refEntry{name, key})
		return true
	})
	return out
}

func TestIndexBasics(t *testing.T) {
	ix := New()
	if ix.Len() != 0 {
		t.Fatalf("empty Len = %d", ix.Len())
	}
	if _, _, ok := ix.Min(); ok {
		t.Fatal("Min on empty index")
	}
	ix.Upsert("b", 0.5)
	ix.Upsert("a", 0.5)
	ix.Upsert("c", 0.2)
	if n, k, ok := ix.Min(); !ok || n != "c" || k != 0.2 {
		t.Fatalf("Min = %q %v %v", n, k, ok)
	}
	// Equal keys order by name.
	got := collectFrom(ix, 0)
	want := []refEntry{{"c", 0.2}, {"a", 0.5}, {"b", 0.5}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("ascend = %v, want %v", got, want)
	}
	// Upsert moves a key; Delete removes.
	ix.Upsert("c", 0.9)
	if k, ok := ix.Key("c"); !ok || k != 0.9 {
		t.Fatalf("Key(c) = %v %v", k, ok)
	}
	ix.Delete("a")
	ix.Delete("ghost") // no-op
	got = collectFrom(ix, 0)
	want = []refEntry{{"b", 0.5}, {"c", 0.9}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after move/delete = %v, want %v", got, want)
	}
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestAscendFromLowerBound(t *testing.T) {
	ix := New()
	for i := 0; i < 100; i++ {
		ix.Upsert(fmt.Sprintf("s%03d", i), float64(i)/100)
	}
	got := collectFrom(ix, 0.95)
	if len(got) != 5 {
		t.Fatalf("entries >= 0.95: %d, want 5", len(got))
	}
	for i, e := range got {
		if e.name != fmt.Sprintf("s%03d", 95+i) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	// Early stop.
	var visited int
	ix.AscendFrom(0.5, func(string, float64) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("visited = %d, want 3", visited)
	}
}

// TestIndexMatchesReferenceModel drives the treap with a seeded random
// op sequence and checks every query against the flat sorted oracle —
// the determinism contract the cluster differential suite builds on.
func TestIndexMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ix := New()
	ref := refModel{}
	for op := 0; op < 5000; op++ {
		name := fmt.Sprintf("node-%03d", rng.Intn(200))
		switch rng.Intn(10) {
		case 0: // delete
			ix.Delete(name)
			delete(ref, name)
		default: // upsert, with deliberate key collisions
			key := float64(rng.Intn(50)) / 50
			ix.Upsert(name, key)
			ref[name] = key
		}
		if ix.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, ref %d", op, ix.Len(), len(ref))
		}
		if op%50 != 0 {
			continue
		}
		lower := rng.Float64()
		got := collectFrom(ix, lower)
		var want []refEntry
		for _, e := range ref.sorted() {
			if e.key >= lower {
				want = append(want, e)
			}
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("op %d bound %v:\n got %v\nwant %v", op, lower, got, want)
		}
	}
}

// TestFirstFitting pins the per-index tightest-fit query: first entry
// in (key, name) order at or above the bound that passes the filter.
func TestFirstFitting(t *testing.T) {
	ix := New()
	ix.Upsert("a", 0.2)
	ix.Upsert("b", 0.4)
	ix.Upsert("c", 0.4)
	ix.Upsert("d", 0.9)
	fits := func(allowed ...string) func(string) bool {
		return func(n string) bool {
			for _, a := range allowed {
				if n == a {
					return true
				}
			}
			return false
		}
	}
	if n, k, ok := ix.FirstFitting(0, fits("b", "c", "d")); !ok || n != "b" || k != 0.4 {
		t.Fatalf("FirstFitting = %q %v %v, want b 0.4 true", n, k, ok)
	}
	// The bound prunes below; name breaks the 0.4 tie.
	if n, _, ok := ix.FirstFitting(0.41, fits("a", "b", "c", "d")); !ok || n != "d" {
		t.Fatalf("FirstFitting above bound = %q %v, want d", n, ok)
	}
	if _, _, ok := ix.FirstFitting(0, fits()); ok {
		t.Fatal("FirstFitting with nothing fitting should miss")
	}
}

// TestMinFitting pins the merged best-of-partitions query: the global
// (key, name) minimum across per-partition answers, each with its own
// lower bound, equal to what one combined index would return.
func TestMinFitting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const parts = 3
	ixs := make([]*Index, parts)
	lowers := make([]float64, parts)
	for i := range ixs {
		ixs[i] = New()
	}
	combined := New()
	keyOf := map[string]float64{}
	for i := 0; i < 90; i++ {
		name := fmt.Sprintf("node-%03d", i)
		key := float64(rng.Intn(20)) / 20 // deliberate cross-partition ties
		ixs[i%parts].Upsert(name, key)
		combined.Upsert(name, key)
		keyOf[name] = key
	}
	fits := func(n string) bool { return keyOf[n] >= 0.3 }
	for trial := 0; trial < 50; trial++ {
		lower := rng.Float64()
		for i := range lowers {
			lowers[i] = lower
		}
		gn, gk, gok := MinFitting(ixs, lowers, fits)
		wn, wk, wok := combined.FirstFitting(lower, fits)
		if gok != wok || gn != wn || gk != wk {
			t.Fatalf("bound %v: MinFitting = %q %v %v, combined = %q %v %v",
				lower, gn, gk, gok, wn, wk, wok)
		}
	}
	// Nil indexes (a pool absent from a partition) are skipped.
	if _, _, ok := MinFitting([]*Index{nil, nil}, []float64{0, 0}, fits); ok {
		t.Fatal("MinFitting over nil indexes should miss")
	}
}

// TestDescIterMatchesReference drives the descending iterator against
// the sorted oracle under churn — the bound-pruned pressure scan leans
// on Peek/Next realizing exactly the reverse (key, name) order.
func TestDescIterMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ix := New()
	ref := refModel{}
	var it DescIter
	for op := 0; op < 3000; op++ {
		name := fmt.Sprintf("node-%03d", rng.Intn(150))
		switch rng.Intn(8) {
		case 0: // delete
			ix.Delete(name)
			delete(ref, name)
		default: // upsert with deliberate key collisions
			key := float64(rng.Intn(40)) / 40
			ix.Upsert(name, key)
			ref[name] = key
		}
		if op%37 != 0 {
			continue
		}
		it.Reset(ix)
		sorted := ref.sorted()
		for i := len(sorted) - 1; i >= 0; i-- {
			n, k, ok := it.Peek()
			if !ok || n != sorted[i].name || k != sorted[i].key {
				t.Fatalf("op %d pos %d: Peek = %q %v %v, want %q %v",
					op, len(sorted)-1-i, n, k, ok, sorted[i].name, sorted[i].key)
			}
			it.Next()
		}
		if _, _, ok := it.Peek(); ok {
			t.Fatalf("op %d: iterator not exhausted after %d entries", op, len(sorted))
		}
		it.Next() // Next past the end is a no-op, not a panic.
	}
}

// TestDescIterEmpty pins the empty-index edge.
func TestDescIterEmpty(t *testing.T) {
	var it DescIter
	it.Reset(New())
	if _, _, ok := it.Peek(); ok {
		t.Fatal("Peek on empty index should miss")
	}
	it.Next()
	if _, _, ok := it.Peek(); ok {
		t.Fatal("Peek after Next on empty index should miss")
	}
}

func TestDirtySet(t *testing.T) {
	s := NewDirtySet()
	if got := s.Drain(); got != nil {
		t.Fatalf("drain of empty set = %v", got)
	}
	s.Mark("b")
	s.Mark("a")
	s.Mark("b") // dedup
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Drain(); fmt.Sprint(got) != "[a b]" {
		t.Fatalf("drain = %v, want sorted [a b]", got)
	}
	if s.Len() != 0 {
		t.Fatal("drain should empty the set")
	}
}

// structEqual compares two treaps node by node — shape included.
func structEqual(a, b *node) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.key == b.key && a.name == b.name && a.prio == b.prio &&
		structEqual(a.left, b.left) && structEqual(a.right, b.right)
}

// TestDeleteReinsertMatchesRebuilt is the canonical-shape property the
// revocation path leans on: because heap priorities derive from names
// and the BST order is (key, name), the treap's SHAPE — not just its
// in-order contents — is a pure function of the entry set. Any
// delete/reinsert history (a server revoked and restored arbitrarily
// many times) must therefore leave the index structurally identical to
// one rebuilt from scratch, so iteration cost and visit order can never
// drift with churn.
func TestDeleteReinsertMatchesRebuilt(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ix := New()
	model := refModel{}
	for op := 0; op < 3000; op++ {
		name := fmt.Sprintf("node-%03d", rng.Intn(120))
		switch rng.Intn(5) {
		case 0, 1: // delete (revocation)
			ix.Delete(name)
			delete(model, name)
		default: // upsert (restore / key move), with key collisions
			key := float64(rng.Intn(40)) / 40
			ix.Upsert(name, key)
			model[name] = key
		}
		if op%97 != 0 {
			continue
		}
		rebuilt := New()
		// Insert in sorted order — any order must yield the same tree.
		for _, e := range model.sorted() {
			rebuilt.Upsert(e.name, e.key)
		}
		if !structEqual(ix.root, rebuilt.root) {
			t.Fatalf("op %d: churned treap shape diverged from rebuilt-from-scratch", op)
		}
	}
	// And once more with a reversed insertion order, to pin that the
	// shape is insertion-order independent.
	entries := model.sorted()
	rev := New()
	for i := len(entries) - 1; i >= 0; i-- {
		rev.Upsert(entries[i].name, entries[i].key)
	}
	if !structEqual(ix.root, rev.root) {
		t.Fatal("reverse-order rebuild diverged: treap shape depends on insertion order")
	}
}
