// Package capindex is the cluster manager's incremental capacity index:
// the data structures that turn per-arrival O(servers × domains) scans
// into O(log servers) ordered-index queries.
//
// # Architecture
//
// The package provides two pieces, both deliberately ignorant of the
// cluster types that use them:
//
//   - Index — an ordered set of servers keyed by (key, name), where key
//     is the server's dominant free share (max over dimensions of
//     free/capacity). It is a treap whose heap priorities are derived
//     deterministically from the server name (FNV-1a), so the tree shape
//     — and therefore iteration cost — depends only on the inserted set,
//     never on insertion order or a random source. AscendFrom iterates
//     entries in ascending (key, name) order starting at a key lower
//     bound, pruning whole subtrees below the bound; a tightest-fit
//     surplus query visits the fitting server with the smallest free
//     share first.
//   - DirtySet — a mutex-guarded set of server names whose cached state
//     is stale. Host aggregate-change callbacks only Mark (a leaf lock,
//     safe to take while hypervisor locks are held); the manager Drains
//     the set — in sorted name order, so downstream float arithmetic
//     stays deterministic — and refreshes index keys and cached
//     availability vectors for exactly the dirty servers.
//
// # Determinism invariants
//
// Ties on key are broken by name everywhere (Less, AscendFrom, Min), so
// an index query returns the same server as a brute-force linear scan
// that applies the same (key, name) minimisation — the property the
// cluster package's differential suite asserts bit-for-bit. Drain
// returns names sorted so that delta updates to cluster-wide totals are
// applied in one fixed order regardless of callback arrival order.
package capindex

import (
	"hash/fnv"
	"sort"
	"sync"
)

// node is one treap node: BST-ordered by (key, name), heap-ordered by
// prio.
type node struct {
	key         float64
	name        string
	prio        uint64
	left, right *node
}

// less orders entries by (key, name) ascending — the tightest-fit scan
// order, with the name tie-break that keeps equal-key selections
// deterministic.
func less(aKey float64, aName string, bKey float64, bName string) bool {
	if aKey != bKey {
		return aKey < bKey
	}
	return aName < bName
}

// priorityOf derives a node's deterministic heap priority from its name.
func priorityOf(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Index is an ordered set of (name, key) entries supporting O(log n)
// upsert and ordered iteration from a key lower bound. Not safe for
// concurrent use; the cluster manager serialises access under its own
// lock.
type Index struct {
	root *node
	keys map[string]float64
}

// New returns an empty index.
func New() *Index {
	return &Index{keys: make(map[string]float64)}
}

// Len returns the number of entries.
func (ix *Index) Len() int { return len(ix.keys) }

// Key returns the entry's current key and whether it is present.
func (ix *Index) Key(name string) (float64, bool) {
	k, ok := ix.keys[name]
	return k, ok
}

// Upsert inserts the entry or moves it to a new key. A same-key upsert
// is a no-op.
func (ix *Index) Upsert(name string, key float64) {
	if old, ok := ix.keys[name]; ok {
		if old == key {
			return
		}
		ix.root = remove(ix.root, old, name)
	}
	ix.keys[name] = key
	ix.root = insert(ix.root, &node{key: key, name: name, prio: priorityOf(name)})
}

// Delete removes the entry if present.
func (ix *Index) Delete(name string) {
	old, ok := ix.keys[name]
	if !ok {
		return
	}
	delete(ix.keys, name)
	ix.root = remove(ix.root, old, name)
}

// AscendFrom visits entries with key >= lower in ascending (key, name)
// order until visit returns false. Subtrees entirely below the bound are
// pruned, so a query that stops after k visits costs O(log n + k).
func (ix *Index) AscendFrom(lower float64, visit func(name string, key float64) bool) {
	ascend(ix.root, lower, visit)
}

// FirstFitting returns the first entry in ascending (key, name) order
// with key >= lower that satisfies fits — the tightest-fit query one
// index answers for its own servers. The partitioned placement engine
// gives each placement partition its own Index; MinFitting merges their
// answers.
func (ix *Index) FirstFitting(lower float64, fits func(name string) bool) (name string, key float64, ok bool) {
	ix.AscendFrom(lower, func(n string, k float64) bool {
		if fits(n) {
			name, key, ok = n, k, true
			return false
		}
		return true
	})
	return name, key, ok
}

// MinFitting is the merged best-of-partitions query: each index answers
// FirstFitting for its own entries (with its own lower bound, so every
// partition prunes by its own largest capacity), and the global winner
// is the minimum (key, name) across partitions — exactly the entry a
// single combined index would have returned, because each partition's
// first fitting entry is its minimum fitting entry and the (key, name)
// order is a total order over disjoint name sets.
func MinFitting(indexes []*Index, lowers []float64, fits func(name string) bool) (string, float64, bool) {
	var (
		bestName string
		bestKey  float64
		found    bool
	)
	for i, ix := range indexes {
		if ix == nil {
			continue
		}
		n, k, ok := ix.FirstFitting(lowers[i], fits)
		if !ok {
			continue
		}
		if !found || less(k, n, bestKey, bestName) {
			bestName, bestKey, found = n, k, true
		}
	}
	return bestName, bestKey, found
}

// DescIter iterates an Index in descending (key, name) order — the
// best-first order of a bound-keyed pressure index, where key is an
// upper bound on any demand's achievable fitness and the scan wants the
// loosest bound first. The iterator owns a reusable explicit stack (the
// right spine of the subtrees still to visit), so steady-state scans
// are allocation-free once the stack has grown to the tree height.
//
// The iterator reads the treap in place: it is valid only while the
// index is not mutated (Upsert/Delete invalidate it). The cluster
// manager guarantees this by syncing dirty servers before a scan and
// never mutating index keys mid-scan — failed placement probes leave
// host state untouched.
type DescIter struct {
	stack []*node
}

// Reset points the iterator at ix's maximum (key, name) entry.
func (it *DescIter) Reset(ix *Index) {
	it.stack = it.stack[:0]
	for n := ix.root; n != nil; n = n.right {
		it.stack = append(it.stack, n)
	}
}

// Peek returns the current entry without advancing.
func (it *DescIter) Peek() (name string, key float64, ok bool) {
	if len(it.stack) == 0 {
		return "", 0, false
	}
	n := it.stack[len(it.stack)-1]
	return n.name, n.key, true
}

// Next advances past the current entry. Popping a node exposes its
// in-order predecessor: the maximum of its left subtree (that subtree's
// right spine is pushed), or the node below it on the stack.
func (it *DescIter) Next() {
	if len(it.stack) == 0 {
		return
	}
	n := it.stack[len(it.stack)-1]
	it.stack = it.stack[:len(it.stack)-1]
	for c := n.left; c != nil; c = c.right {
		it.stack = append(it.stack, c)
	}
}

// Min returns the smallest (key, name) entry.
func (ix *Index) Min() (name string, key float64, ok bool) {
	n := ix.root
	if n == nil {
		return "", 0, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.name, n.key, true
}

// insert adds nd below root, rotating to restore the heap property.
func insert(root, nd *node) *node {
	if root == nil {
		return nd
	}
	if less(nd.key, nd.name, root.key, root.name) {
		root.left = insert(root.left, nd)
		if root.left.prio > root.prio {
			root = rotateRight(root)
		}
	} else {
		root.right = insert(root.right, nd)
		if root.right.prio > root.prio {
			root = rotateLeft(root)
		}
	}
	return root
}

// remove deletes the (key, name) node by rotating it down to a leaf.
func remove(root *node, key float64, name string) *node {
	if root == nil {
		return nil
	}
	switch {
	case key == root.key && name == root.name:
		switch {
		case root.left == nil:
			return root.right
		case root.right == nil:
			return root.left
		case root.left.prio > root.right.prio:
			root = rotateRight(root)
			root.right = remove(root.right, key, name)
		default:
			root = rotateLeft(root)
			root.left = remove(root.left, key, name)
		}
	case less(key, name, root.key, root.name):
		root.left = remove(root.left, key, name)
	default:
		root.right = remove(root.right, key, name)
	}
	return root
}

func rotateRight(n *node) *node {
	l := n.left
	n.left = l.right
	l.right = n
	return l
}

func rotateLeft(n *node) *node {
	r := n.right
	n.right = r.left
	r.left = n
	return r
}

// ascend reports false once visit asked to stop.
func ascend(n *node, lower float64, visit func(string, float64) bool) bool {
	if n == nil {
		return true
	}
	if n.key >= lower {
		// The left subtree may straddle the bound; the node itself is in
		// range.
		if !ascend(n.left, lower, visit) {
			return false
		}
		if !visit(n.name, n.key) {
			return false
		}
	}
	// Everything in the left subtree is <= this node, so when the node is
	// below the bound only the right subtree can still qualify.
	return ascend(n.right, lower, visit)
}

// DirtySet collects the names of servers whose cached aggregates are
// stale. Mark is safe to call from hypervisor aggregate-change callbacks
// (it takes only the set's own mutex, a leaf in the lock order); Drain
// empties the set and returns the names sorted, so refresh work — and
// any float arithmetic it performs — happens in one deterministic order.
type DirtySet struct {
	mu    sync.Mutex
	names map[string]struct{}
	// buf is the reusable drain buffer: the set has a single consumer
	// (the cluster manager, under its own lock), so Drain can hand back
	// the same backing array every time and the per-query refresh stays
	// allocation-free between bursts of churn.
	buf []string
}

// NewDirtySet returns an empty set.
func NewDirtySet() *DirtySet {
	return &DirtySet{names: make(map[string]struct{})}
}

// Mark adds name to the set.
func (s *DirtySet) Mark(name string) {
	s.mu.Lock()
	s.names[name] = struct{}{}
	s.mu.Unlock()
}

// Len returns the number of marked names.
func (s *DirtySet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.names)
}

// Drain removes and returns all marked names in sorted order. It returns
// nil when nothing is dirty, so hot paths can skip refresh work without
// allocating. The returned slice is backed by the set's reusable buffer
// and is valid only until the next Drain.
func (s *DirtySet) Drain() []string {
	s.mu.Lock()
	if len(s.names) == 0 {
		s.mu.Unlock()
		return nil
	}
	out := s.buf[:0]
	for n := range s.names {
		out = append(out, n)
	}
	s.buf = out
	clear(s.names)
	s.mu.Unlock()
	sort.Strings(out)
	return out
}
