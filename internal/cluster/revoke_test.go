package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
)

func TestRevokeServerEvacuatesVMs(t *testing.T) {
	m := newTestManager(t, 3, Config{})
	defer m.Close()
	var placedOn *Server
	for i := 0; i < 4; i++ {
		_, s, err := m.PlaceVM(deflatableVM(fmt.Sprintf("vm-%d", i), 8, 16384, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			placedOn = s
		}
	}
	before := m.Stats()
	out, err := m.RevokeServer(placedOn.Host.Name())
	if err != nil {
		t.Fatal(err)
	}
	if out.Killed != 0 {
		t.Fatalf("evacuation killed %d VMs with two empty servers available", out.Killed)
	}
	if out.Evacuated != len(out.VMs) || len(out.VMs) == 0 {
		t.Fatalf("evacuated %d of %d displaced VMs", out.Evacuated, len(out.VMs))
	}
	for i, pl := range out.Placements {
		if pl.Err != nil {
			t.Fatalf("VM %s: relocation error %v", out.VMs[i].Name, pl.Err)
		}
		if pl.Server == placedOn {
			t.Fatalf("VM %s relocated onto the revoked server", out.VMs[i].Name)
		}
		d, s, err := m.LookupVM(out.VMs[i].Name)
		if err != nil || d == nil || s != pl.Server {
			t.Fatalf("VM %s: lookup after evacuation = (%v, %v, %v)", out.VMs[i].Name, d, s, err)
		}
	}
	st := m.Stats()
	if st.Revoked != 1 {
		t.Fatalf("Stats.Revoked = %d", st.Revoked)
	}
	if st.VMs != before.VMs {
		t.Fatalf("VM count changed across lossless evacuation: %d -> %d", before.VMs, st.VMs)
	}
	wantCap := before.Capacity.Sub(serverCap())
	if st.Capacity != wantCap {
		t.Fatalf("Stats.Capacity = %v after revocation, want %v", st.Capacity, wantCap)
	}
	if m.Rejections() != 0 {
		t.Fatalf("evacuation counted %d admission rejections", m.Rejections())
	}

	// A revoked server must never receive placements.
	for i := 0; i < 8; i++ {
		_, s, err := m.PlaceVM(deflatableVM(fmt.Sprintf("post-%d", i), 4, 8192, 0.5))
		if err != nil {
			break // cluster full: fine, the check is about the target
		}
		if s == placedOn {
			t.Fatal("placement landed on a revoked server")
		}
	}

	// Restoration brings the capacity back and the server becomes a
	// candidate again.
	if err := m.RestoreServer(placedOn.Host.Name()); err != nil {
		t.Fatal(err)
	}
	st = m.Stats()
	if st.Revoked != 0 || st.Capacity != before.Capacity {
		t.Fatalf("after restore: revoked=%d capacity=%v, want 0 / %v", st.Revoked, st.Capacity, before.Capacity)
	}
	if !m.FitsWithoutDeflation(serverCap()) {
		t.Fatal("restored server's full capacity not visible to placement")
	}
}

func TestRevokeRestoreLifecycleErrors(t *testing.T) {
	m := newTestManager(t, 2, Config{})
	defer m.Close()
	if _, err := m.RevokeServer("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("revoke unknown server err = %v", err)
	}
	if err := m.RestoreServer("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("restore unknown server err = %v", err)
	}
	if err := m.RestoreServer("node-0"); !errors.Is(err, ErrRevoked) {
		t.Errorf("restore in-service server err = %v", err)
	}
	if _, err := m.RevokeServers("node-0", "node-0"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate revoke batch err = %v", err)
	}
	if _, err := m.RevokeServer("node-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RevokeServer("node-0"); !errors.Is(err, ErrRevoked) {
		t.Errorf("double revoke err = %v", err)
	}
	if _, err := m.ResizeServer("node-0", serverCap().Scale(0.5)); !errors.Is(err, ErrRevoked) {
		t.Errorf("resize of revoked server err = %v", err)
	}
	if err := m.RestoreServer("node-0"); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreServer("node-0"); !errors.Is(err, ErrRevoked) {
		t.Errorf("double restore err = %v", err)
	}
}

func TestRevokeKillsWhenNoCapacity(t *testing.T) {
	// Two servers, both filled with on-demand VMs that cannot deflate:
	// revoking one leaves nowhere for its residents to go.
	m := newTestManager(t, 2, Config{})
	defer m.Close()
	for i := 0; i < 2; i++ {
		if _, _, err := m.PlaceVM(onDemandVM(fmt.Sprintf("od-%d", i), 48, 131072)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := m.RevokeServer("node-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.VMs) != 1 || out.Killed != 1 || out.Evacuated != 0 {
		t.Fatalf("outcome = %d displaced / %d evacuated / %d killed, want 1/0/1",
			len(out.VMs), out.Evacuated, out.Killed)
	}
	if !errors.Is(out.Placements[0].Err, ErrNoCapacity) {
		t.Fatalf("kill error = %v", out.Placements[0].Err)
	}
	if _, _, err := m.LookupVM(out.VMs[0].Name); !errors.Is(err, ErrNotFound) {
		t.Fatalf("killed VM still placed: %v", err)
	}
	if m.Rejections() != 0 {
		t.Fatalf("shock kill counted as admission rejection (%d)", m.Rejections())
	}
	if m.Stats().VMs != 1 {
		t.Fatalf("VMs = %d after kill, want 1", m.Stats().VMs)
	}
}

func TestResizeServerShrinkDeflates(t *testing.T) {
	// One server, deflatable residents filling most of it: a moderate
	// shrink must be absorbed purely by deflation — nothing displaced.
	m := newTestManager(t, 1, Config{})
	defer m.Close()
	for i := 0; i < 3; i++ {
		if _, _, err := m.PlaceVM(deflatableVM(fmt.Sprintf("vm-%d", i), 12, 32768, 0.5)); err != nil {
			t.Fatal(err)
		}
	}
	newCap := serverCap().Scale(0.5)
	out, err := m.ResizeServer("node-0", newCap)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.VMs) != 0 {
		t.Fatalf("moderate shrink displaced %d VMs", len(out.VMs))
	}
	s := m.Servers()[0]
	if alloc := s.Host.Allocated(); !alloc.FitsIn(newCap) {
		t.Fatalf("allocated %v exceeds shrunk capacity %v", alloc, newCap)
	}
	if m.Stats().VMs != 3 {
		t.Fatalf("VMs = %d, want 3", m.Stats().VMs)
	}

	// Growing back reinflates the residents to full size.
	if _, err := m.ResizeServer("node-0", serverCap()); err != nil {
		t.Fatal(err)
	}
	for _, d := range s.Host.Domains() {
		if d.Allocation() != d.MaxSize() {
			t.Fatalf("VM %s not reinflated after grow: %v of %v", d.Name(), d.Allocation(), d.MaxSize())
		}
	}
}

func TestResizeServerShrinkDisplaces(t *testing.T) {
	// Shrinking below the residents' floors forces displacement; the
	// displaced VMs must land on the second server, lowest priority
	// first.
	m := newTestManager(t, 2, Config{})
	defer m.Close()
	// Two residents with explicit QoS floors of 8 cores each: the shrunk
	// capacity (10 cores) can hold one floor but not both, so exactly
	// one VM must be displaced even at maximal deflation.
	var target *Server
	for i := 0; i < 2; i++ {
		dc := deflatableVM(fmt.Sprintf("vm-%d", i), 20, 49152, 0.25*float64(i+1))
		dc.MinAllocation = resources.CPUMem(8, 20480)
		_, s, err := m.PlaceVM(dc)
		if err != nil {
			t.Fatal(err)
		}
		if target == nil {
			target = s
		} else if s != target {
			t.Fatalf("setup: VMs spread across servers")
		}
	}
	out, err := m.ResizeServer(target.Host.Name(), resources.CPUMem(10, 24576))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.VMs) == 0 {
		t.Fatal("deep shrink displaced nothing")
	}
	if out.VMs[0].Priority != 0.25 {
		t.Fatalf("displacement order: first victim priority %g, want the lowest (0.25)", out.VMs[0].Priority)
	}
	if out.Killed != 0 {
		t.Fatalf("displaced VMs killed (%d) with an empty server available", out.Killed)
	}
	if alloc := target.Host.Allocated(); !alloc.FitsIn(resources.CPUMem(10, 24576)) {
		t.Fatalf("allocated %v exceeds shrunk capacity", alloc)
	}
}

// TestRevocationChurnMatchesAcrossEngines is the cluster-level
// differential guarantee under capacity shocks: an identical randomized
// sequence of placements, removals, revocations, restorations and
// resizes must produce identical placements, evacuation outcomes,
// counters and stats on the reference manager and on indexed managers
// at several placement-partition counts.
func TestRevocationChurnMatchesAcrossEngines(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRevocationChurn(t, seed, Config{Policy: policy.Priority{}}, 12, 160)
		})
	}
}

// TestPressureShockChurnDifferential saturates the revocation churn so
// revokes and resizes interleave with under-pressure placements — the
// adversarial case for the pressure index, whose bound keys must track
// servers leaving, returning and changing size mid-stream. The longer
// sequence keeps the cluster full enough that arrivals routinely fall
// through to the pressure scan right after shock events, and the
// outcome checks reject a run where the new machinery never fired.
func TestPressureShockChurnDifferential(t *testing.T) {
	for _, seed := range []int64{7, 19} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			out := runRevocationChurn(t, seed, Config{Policy: policy.Priority{}}, 10, 500)
			if out.revokes == 0 || out.resizes == 0 {
				t.Fatalf("churn produced %d revokes / %d resizes — the interleaving is vacuous",
					out.revokes, out.resizes)
			}
			if out.arrivals == 0 {
				t.Fatal("no pressured arrivals — the churn never saturated")
			}
			if out.pruned == 0 {
				t.Fatal("bound pruning never fired under shock churn")
			}
		})
	}
}

// churnEngine pairs one manager configuration with its label for the
// multi-engine differential churn.
type churnEngine struct {
	label string
	m     *Manager
}

// churnOutcome summarizes one runRevocationChurn for vacuity checks:
// how much shock churn the sequence produced and the pruned engines'
// pressure-scan meters.
type churnOutcome struct {
	revokes, resizes         int
	arrivals, scored, pruned int
}

func runRevocationChurn(t *testing.T, seed int64, cfg Config, nServers, nOps int) churnOutcome {
	t.Helper()
	var engines []churnEngine
	refCfg := cfg
	refCfg.ReferencePlacement = true
	engines = append(engines, churnEngine{"reference", NewManager(refCfg)})
	// Both scan modes at every partition count: pruned descent (default)
	// and the retained full linear scan, all against the reference.
	for _, parts := range []int{1, 3, 8} {
		pcfg := cfg
		pcfg.PlacementPartitions = parts
		engines = append(engines, churnEngine{fmt.Sprintf("pruned/partitions=%d", parts), NewManager(pcfg)})
		fcfg := pcfg
		fcfg.FullPressureScan = true
		engines = append(engines, churnEngine{fmt.Sprintf("fullscan/partitions=%d", parts), NewManager(fcfg)})
	}
	for i := 0; i < nServers; i++ {
		for _, e := range engines {
			if _, err := e.m.AddServer(fmt.Sprintf("node-%03d", i), serverCap(), 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	defer func() {
		for _, e := range engines {
			e.m.Close()
		}
	}()

	evacString := func(out Evacuation, err error) string {
		if err != nil {
			return fmt.Sprintf("err=%v", err)
		}
		s := fmt.Sprintf("evac=%d killed=%d:", out.Evacuated, out.Killed)
		for i, pl := range out.Placements {
			if pl.Err != nil {
				s += fmt.Sprintf(" %s->killed", out.VMs[i].Name)
			} else {
				s += fmt.Sprintf(" %s->%s", out.VMs[i].Name, pl.Server.Host.Name())
			}
		}
		return s
	}

	rng := rand.New(rand.NewSource(seed))
	revoked := make([]bool, nServers)
	nRevoked := 0
	placed := map[string]bool{}
	next := 0
	var out churnOutcome
	for op := 0; op < nOps; op++ {
		var step func(m *Manager) string
		r := rng.Intn(20)
		switch {
		case r < 2 && nRevoked < nServers/2: // revoke 1-2 servers
			k := 1 + rng.Intn(2)
			var names []string
			for j := 0; j < k && nRevoked < nServers/2; j++ {
				i := rng.Intn(nServers)
				for revoked[i] {
					i = (i + 1) % nServers
				}
				revoked[i] = true
				nRevoked++
				out.revokes++
				names = append(names, fmt.Sprintf("node-%03d", i))
			}
			step = func(m *Manager) string {
				out, err := m.RevokeServers(names...)
				if err == nil {
					for i, pl := range out.Placements {
						if pl.Err != nil {
							delete(placed, out.VMs[i].Name)
						}
					}
				}
				return "revoke " + evacString(out, err)
			}
		case r < 4 && nRevoked > 0: // restore one
			i := rng.Intn(nServers)
			for !revoked[i] {
				i = (i + 1) % nServers
			}
			revoked[i] = false
			nRevoked--
			name := fmt.Sprintf("node-%03d", i)
			step = func(m *Manager) string {
				if err := m.RestoreServer(name); err != nil {
					return fmt.Sprintf("restore err %v", err)
				}
				return "restored " + name
			}
		case r < 6: // resize an in-service server
			i := rng.Intn(nServers)
			for revoked[i] {
				i = (i + 1) % nServers
			}
			name := fmt.Sprintf("node-%03d", i)
			scale := 0.4 + 0.6*rng.Float64() // 40%..100%
			capv := serverCap().Scale(scale)
			out.resizes++
			step = func(m *Manager) string {
				out, err := m.ResizeServer(name, capv)
				if err == nil {
					for i, pl := range out.Placements {
						if pl.Err != nil {
							delete(placed, out.VMs[i].Name)
						}
					}
				}
				return fmt.Sprintf("resize %s %.2f ", name, scale) + evacString(out, err)
			}
		case r < 9 && len(placed) > 0: // departure batch
			k := 1 + rng.Intn(3)
			var names []string
			for name := range placed {
				names = append(names, name)
				if len(names) == k {
					break
				}
			}
			// map range order is random but the same list is fed to all
			// engines, so determinism across engines holds; sort for a
			// reproducible failure message only.
			for _, n := range names {
				delete(placed, n)
			}
			step = func(m *Manager) string {
				if err := m.RemoveVMs(names...); err != nil {
					return fmt.Sprintf("remove err %v", err)
				}
				return "removed"
			}
		default: // arrival
			name := fmt.Sprintf("vm-%05d", next)
			next++
			dc := hypervisor.DomainConfig{
				Name:       name,
				Size:       resources.CPUMem(float64(1+rng.Intn(24)), float64(2048*(1+rng.Intn(24)))),
				Deflatable: rng.Intn(3) != 0,
				Priority:   0.25 * float64(1+rng.Intn(4)),
			}
			if !dc.Deflatable {
				dc.Priority = 0
			}
			admitted := false
			step = func(m *Manager) string {
				_, s, err := m.PlaceVM(dc)
				if err != nil {
					if !errors.Is(err, ErrNoCapacity) {
						t.Fatalf("op %d: unexpected error %v", op, err)
					}
					return "rejected"
				}
				admitted = true
				return "on " + s.Host.Name()
			}
			got := make([]string, len(engines))
			for i, e := range engines {
				got[i] = step(e.m)
			}
			for i := 1; i < len(engines); i++ {
				if got[i] != got[0] {
					t.Fatalf("op %d (place %s): %s %q != %s %q",
						op, name, engines[i].label, got[i], engines[0].label, got[0])
				}
			}
			if admitted {
				placed[name] = true
			}
			compareEngineStats(t, op, engines[0].m, engines[1:])
			continue
		}
		got := make([]string, len(engines))
		for i, e := range engines {
			got[i] = step(e.m)
		}
		for i := 1; i < len(engines); i++ {
			if got[i] != got[0] {
				t.Fatalf("op %d: %s %q != %s %q", op, engines[i].label, got[i], engines[0].label, got[0])
			}
		}
		compareEngineStats(t, op, engines[0].m, engines[1:])
	}

	// Pressure-scan meter invariants across the whole churn: arrivals
	// are mode-invariant; scored/pruned are partition-invariant within
	// each scan mode; the full-scan engines score exactly what the
	// reference scores and prune nothing.
	refArr, refScored, refPruned := engines[0].m.PressureStats()
	if refPruned != 0 {
		t.Fatalf("reference pruned %d servers, want 0", refPruned)
	}
	out.arrivals = refArr
	for _, e := range engines[1:] {
		arr, scored, pruned := e.m.PressureStats()
		if arr != refArr {
			t.Fatalf("%s: %d pressured arrivals, reference %d", e.label, arr, refArr)
		}
		if strings.HasPrefix(e.label, "fullscan") {
			if scored != refScored || pruned != 0 {
				t.Fatalf("%s: scored/pruned = %d/%d, reference full scan %d/0",
					e.label, scored, pruned, refScored)
			}
			continue
		}
		if out.scored == 0 && out.pruned == 0 {
			out.scored, out.pruned = scored, pruned
		} else if scored != out.scored || pruned != out.pruned {
			t.Fatalf("%s: scored/pruned = %d/%d, other pruned engines %d/%d",
				e.label, scored, pruned, out.scored, out.pruned)
		}
		if scored+pruned != refScored {
			t.Fatalf("%s: scored+pruned = %d, want the reference's eligible total %d",
				e.label, scored+pruned, refScored)
		}
	}
	return out
}

func compareEngineStats(t *testing.T, op int, ref *Manager, others []churnEngine) {
	t.Helper()
	sr := ref.Stats()
	for _, o := range others {
		so := o.m.Stats()
		if so != sr {
			t.Fatalf("op %d: stats diverged (%s):\nref   %+v\ngot   %+v", op, o.label, sr, so)
		}
		if o.m.DeflationEvents() != ref.DeflationEvents() || o.m.Rejections() != ref.Rejections() {
			t.Fatalf("op %d: counters diverged (%s)", op, o.label)
		}
	}
}

// TestManagerCloseIdempotent: Close must be safe to call repeatedly and
// must leave the manager fully usable (phases run inline) — revocation
// teardown paths call it more than once.
func TestManagerCloseIdempotent(t *testing.T) {
	m := newTestManager(t, 4, Config{PlacementPartitions: 4})
	// Force the worker pool to spin up, then close it twice.
	if _, _, err := m.PlaceVM(deflatableVM("vm-0", 4, 8192, 0.5)); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close() // must not panic (double channel close) or deadlock
	// Still fully usable after Close: batches run inline.
	pls := m.PlaceVMs([]hypervisor.DomainConfig{
		deflatableVM("vm-1", 4, 8192, 0.5),
		deflatableVM("vm-2", 4, 8192, 0.5),
	}, nil)
	for _, pl := range pls {
		if pl.Err != nil {
			t.Fatalf("placement after Close failed: %v", pl.Err)
		}
	}
	if _, err := m.RevokeServer("node-0"); err != nil {
		t.Fatalf("revocation after Close failed: %v", err)
	}
	m.Close() // and Close again after more work
}
