// Package risk turns a capacity-shock configuration into an analytic
// per-server revocation-hazard model — the forecasting layer of the
// portfolio-driven transient-server literature ("Portfolio-driven
// Resource Management for Transient Cloud Servers", Sharma et al.;
// "Modeling The Temporally Constrained Preemptions of Transient Cloud
// VMs", Kadupitiya et al.).
//
// The model is derived from exactly the trace.ShockConfig parameters
// the schedule generators run with, so it is a pure function of config:
// deterministic, free of any fitted state, and differential-testable
// against the empirical revocation mass of trace.GenerateShocks. The
// cluster manager reads it for two decisions — how much evacuation
// headroom to reserve at admission (expected simultaneously-revoked
// capacity), and which servers high-priority VMs should avoid (hazard
// bands).
//
// Derivation. Every generator draws candidate revocations for a server
// only while the server is up, then holds it out for an outage with
// dead-time E[out]; the long-run revocation rate is therefore the
// renewal rate
//
//	steady_s = 1 / (1/raw_s + E[out])
//
// where raw_s is the up-time candidate rate (RatePerDay·scale_s per day
// for poisson; the rack-weighted share of the cluster shock rate for
// rack shocks) and E[out] is the floored-exponential outage mean,
// MinOutage + OutageMean·exp(-MinOutage/OutageMean). Diurnal shocks
// renew in *window time* — candidates only accept inside the daily
// window, and an outage consumes window seconds only where it overlaps
// the window — so the window-time renewal cycle is gm + E[W], with gm
// the candidate gap mean and E[W] the expected window overlap of one
// outage (start uniform over the window, exponential length μ:
// E[W] = μ − (μ²/L)(1−e^{−L/μ})). Diurnal hazard is zero outside the
// window and concentrates inside it, so forecast mass integrates the
// window overlap. The model deliberately ignores the MaxOutFraction
// admission cap: when the cap binds, forecasts are upper bounds — the
// conservative direction for headroom reservation.
package risk

import (
	"math"

	"vmdeflate/internal/trace"
)

// Model is the analytic revocation-hazard model for one fleet.
type Model struct {
	cfg    trace.ShockConfig
	n      int
	steady []float64 // per-server long-run revocation rate (1/s)
	minH   float64   // fleet min/max steady hazards, for banding
	maxH   float64
	eOut   float64 // expected outage duration (s)
	burst  int     // correlated revocation group size
}

// New builds the model for a fleet of nServers under cfg. A nil-kind
// or ShockNone config yields the zero-hazard model.
func New(cfg trace.ShockConfig, nServers int) *Model {
	cfg = cfg.WithDefaults()
	m := &Model{cfg: cfg, n: nServers, burst: 1}
	if nServers <= 0 {
		return m
	}
	m.steady = make([]float64, nServers)
	if cfg.Kind == "" || cfg.Kind == trace.ShockNone {
		return m
	}
	m.eOut = expectedOutage(cfg.OutageMean)
	if cfg.Kind == trace.ShockRack {
		m.burst = cfg.EffectiveRackSize(nServers)
	}
	for s := 0; s < nServers; s++ {
		if cfg.Kind == trace.ShockDiurnal {
			// Window-time renewal: candidates accept at gap mean gm inside
			// the window, and each outage burns its expected window overlap
			// of window time. Day-averaged hazard spreads the per-window
			// rate over the whole day.
			sc := m.scale(s)
			if sc > 0 {
				gm := trace.DiurnalWindowLen / (cfg.RatePerDay * sc)
				m.steady[s] = trace.DiurnalWindowLen / (86400 * (gm + m.windowDeadTime()))
			}
			continue
		}
		raw := m.rawRate(s)
		if raw > 0 {
			m.steady[s] = 1 / (1/raw + m.eOut)
		}
	}
	m.minH, m.maxH = m.steady[0], m.steady[0]
	for _, h := range m.steady[1:] {
		m.minH = math.Min(m.minH, h)
		m.maxH = math.Max(m.maxH, h)
	}
	return m
}

// expectedOutage is E[max(MinOutage, Exp(mean))] — the mean of the
// floored-exponential outage drawOutage samples.
func expectedOutage(mean float64) float64 {
	return trace.MinOutageSeconds + mean*math.Exp(-trace.MinOutageSeconds/mean)
}

// scale mirrors ShockConfig's per-server rate multiplier.
func (m *Model) scale(s int) float64 {
	if s >= len(m.cfg.RateScale) {
		return 1
	}
	return m.cfg.RateScale[s]
}

// windowDeadTime is E[W], the expected window-time one outage consumes:
// the outage starts uniformly inside the window (memoryless candidate
// arrival) with exponential length μ, so the overlap with the remaining
// window is E[min(out, L−u)] averaged over u — μ − (μ²/L)(1−e^{−L/μ}).
// Overlap with later days' windows is negligible at realistic outage
// means (it would need an outage spanning the ~20 h inter-window gap).
func (m *Model) windowDeadTime() float64 {
	μ, L := m.eOut, trace.DiurnalWindowLen
	return μ - μ*μ/L*(1-math.Exp(-L/μ))
}

// rawRate is server s's candidate revocation rate while up, per second.
func (m *Model) rawRate(s int) float64 {
	perSec := m.cfg.RatePerDay / 86400
	switch m.cfg.Kind {
	case trace.ShockPoisson, trace.ShockDiurnal:
		return perSec * m.scale(s)
	case trace.ShockRack:
		// A rack shock revokes the whole group; server s revokes at the
		// rack's share of the cluster shock rate — RatePerDay times the
		// rack's mean scale per server per day.
		rack := m.burst
		g := s / rack
		var w float64
		for i := g * rack; i < (g+1)*rack && i < m.n; i++ {
			w += m.scale(i)
		}
		return perSec * w / float64(rack)
	}
	return 0
}

// SteadyHazard returns server s's long-run revocation rate in
// revocations per second, outage dead time included. Day-averaged for
// diurnal shocks; use HazardRate for the time-of-day profile.
func (m *Model) SteadyHazard(s int) float64 {
	if s < 0 || s >= len(m.steady) {
		return 0
	}
	return m.steady[s]
}

// HazardRate returns server s's instantaneous revocation hazard at
// simulation time t (seconds from trace start), in revocations per
// second. For diurnal shocks the hazard concentrates inside the daily
// revocation window and is zero outside it.
func (m *Model) HazardRate(s int, t float64) float64 {
	h := m.SteadyHazard(s)
	if m.cfg.Kind != trace.ShockDiurnal || h == 0 {
		return h
	}
	day := math.Mod(t, 86400)
	if day < trace.DiurnalWindowStart || day >= trace.DiurnalWindowStart+trace.DiurnalWindowLen {
		return 0
	}
	return h * 86400 / trace.DiurnalWindowLen
}

// ServerMass returns the expected number of revocations of server s in
// [t, t+window) — the integral of HazardRate over the window.
func (m *Model) ServerMass(s int, t, window float64) float64 {
	h := m.SteadyHazard(s)
	if h == 0 || window <= 0 {
		return 0
	}
	if m.cfg.Kind == trace.ShockDiurnal {
		return h * 86400 / trace.DiurnalWindowLen * windowOverlap(t, window)
	}
	return h * window
}

// ForecastMass returns the expected number of revocations fleet-wide in
// [t, t+window): the sum of ServerMass over servers in index order.
func (m *Model) ForecastMass(t, window float64) float64 {
	var mass float64
	for s := 0; s < len(m.steady); s++ {
		mass += m.ServerMass(s, t, window)
	}
	return mass
}

// RevokeProbability returns the probability server s is revoked at
// least once in [t, t+window), under the model's Poisson approximation.
func (m *Model) RevokeProbability(s int, t, window float64) float64 {
	return 1 - math.Exp(-m.ServerMass(s, t, window))
}

// OutageFraction returns the long-run fraction of time server s spends
// revoked — steady hazard times expected outage. Summed against server
// capacities this is the expected simultaneously-revoked capacity, the
// quantity admission headroom reserves for.
func (m *Model) OutageFraction(s int) float64 {
	return m.SteadyHazard(s) * m.eOut
}

// BurstSize returns the correlated revocation group size: the effective
// rack size for rack shocks, 1 otherwise. Headroom sized below
// BurstSize servers' capacity cannot absorb even a single shock.
func (m *Model) BurstSize() int {
	return m.burst
}

// ExpectedOutageSeconds returns the mean outage duration the model (and
// the generator) uses.
func (m *Model) ExpectedOutageSeconds() float64 {
	return m.eOut
}

// Band quantises server s's steady hazard into one of nBands bands,
// 0 = lowest hazard. Bands interpolate linearly between the fleet's
// min and max hazards; a homogeneous fleet (or zero hazard) is all
// band 0, so hazard-aware candidate orders degenerate to the legacy
// order exactly. Pure function of (config, s) — every engine
// configuration computes identical bands.
func (m *Model) Band(s int, nBands int) int {
	if nBands <= 1 || m.maxH <= m.minH {
		return 0
	}
	h := m.SteadyHazard(s)
	b := int((h - m.minH) / (m.maxH - m.minH) * float64(nBands))
	if b >= nBands {
		b = nBands - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// windowOverlap returns the number of seconds of [t, t+window) that
// fall inside the daily diurnal revocation window.
func windowOverlap(t, window float64) float64 {
	end := t + window
	var total float64
	// Walk day by day; horizons are tens of days, so the loop is cheap.
	for day := math.Floor(t / 86400); day*86400 < end; day++ {
		ws := day*86400 + trace.DiurnalWindowStart
		we := ws + trace.DiurnalWindowLen
		lo := math.Max(t, ws)
		hi := math.Min(end, we)
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}
