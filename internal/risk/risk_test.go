package risk

import (
	"math"
	"testing"

	"vmdeflate/internal/trace"
)

// TestForecastMassMatchesEmpiricalShockMass is the model's contract:
// the analytic forecast mass converges to the empirical revocation
// count of trace.GenerateShocks over a long horizon, for all three
// scenarios across multiple seeds. MaxOutFraction is 1 so the
// admission cap (which the model deliberately ignores) does not thin
// the schedule.
func TestForecastMassMatchesEmpiricalShockMass(t *testing.T) {
	const (
		n       = 200
		horizon = 60 * 86400.0
		tol     = 0.10
	)
	scenarios := []struct {
		kind trace.ShockScenario
		rate float64
	}{
		{trace.ShockPoisson, 1},
		{trace.ShockPoisson, 4},
		{trace.ShockDiurnal, 1},
		{trace.ShockRack, 1},
	}
	for _, sc := range scenarios {
		for _, seed := range []int64{1, 7, 42} {
			cfg := trace.ShockConfig{
				Kind: sc.kind, Duration: horizon, RatePerDay: sc.rate,
				OutageMean: 2 * 3600, MaxOutFraction: 1, Seed: seed,
			}
			model := New(cfg, n)
			want := model.ForecastMass(0, horizon)
			var got float64
			for _, sh := range trace.GenerateShocks(cfg, n) {
				if sh.Kind == trace.ShockRevoke {
					got++
				}
			}
			if got == 0 || want == 0 {
				t.Fatalf("%s rate %g seed %d: empty mass (analytic %.1f, empirical %.0f)", sc.kind, sc.rate, seed, want, got)
			}
			if rel := math.Abs(got-want) / want; rel > tol {
				t.Errorf("%s rate %g seed %d: analytic mass %.1f vs empirical %.0f (%.1f%% off, tolerance %.0f%%)",
					sc.kind, sc.rate, seed, want, got, rel*100, tol*100)
			}
		}
	}
}

// TestForecastMassHeterogeneous: with a portfolio RateScale, per-server
// forecast mass follows the scales — summed per scale group it still
// matches the empirical counts.
func TestForecastMassHeterogeneous(t *testing.T) {
	const (
		n       = 200
		horizon = 60 * 86400.0
	)
	scales := make([]float64, n)
	for s := range scales {
		if s < n/2 {
			scales[s] = 0.25
		} else {
			scales[s] = 1.5
		}
	}
	for _, kind := range []trace.ShockScenario{trace.ShockPoisson, trace.ShockDiurnal, trace.ShockRack} {
		cfg := trace.ShockConfig{
			Kind: kind, Duration: horizon, RatePerDay: 1, OutageMean: 2 * 3600,
			MaxOutFraction: 1, RackSize: 8, RateScale: scales, Seed: 11,
		}
		model := New(cfg, n)
		var wantLo, wantHi, gotLo, gotHi float64
		for s := 0; s < n; s++ {
			if s < n/2 {
				wantLo += model.ServerMass(s, 0, horizon)
			} else {
				wantHi += model.ServerMass(s, 0, horizon)
			}
		}
		for _, sh := range trace.GenerateShocks(cfg, n) {
			if sh.Kind != trace.ShockRevoke {
				continue
			}
			if sh.Server < n/2 {
				gotLo++
			} else {
				gotHi++
			}
		}
		for _, c := range []struct {
			name      string
			want, got float64
		}{{"low-rate half", wantLo, gotLo}, {"high-rate half", wantHi, gotHi}} {
			if c.want == 0 || c.got == 0 {
				t.Fatalf("%s %s: empty mass (analytic %.1f, empirical %.0f)", kind, c.name, c.want, c.got)
			}
			if rel := math.Abs(c.got-c.want) / c.want; rel > 0.12 {
				t.Errorf("%s %s: analytic %.1f vs empirical %.0f (%.1f%% off)", kind, c.name, c.want, c.got, rel*100)
			}
		}
		if wantHi < 3*wantLo {
			t.Errorf("%s: analytic mass does not follow the 6x rate-scale split: %.1f vs %.1f", kind, wantLo, wantHi)
		}
	}
}

// TestDiurnalHazardProfile: diurnal hazard is zero outside the daily
// window, concentrated inside it, and integrates to the steady mass.
func TestDiurnalHazardProfile(t *testing.T) {
	cfg := trace.ShockConfig{Kind: trace.ShockDiurnal, Duration: 86400, RatePerDay: 1, OutageMean: 3600}
	m := New(cfg, 4)
	if got := m.HazardRate(0, trace.DiurnalWindowStart-1); got != 0 {
		t.Fatalf("hazard outside the window = %g, want 0", got)
	}
	in := m.HazardRate(0, trace.DiurnalWindowStart+1)
	if in <= m.SteadyHazard(0) {
		t.Fatalf("in-window hazard %g not concentrated above the day-averaged %g", in, m.SteadyHazard(0))
	}
	// One full day's mass equals the steady daily mass, window or not.
	day := m.ServerMass(0, 0, 86400)
	if want := m.SteadyHazard(0) * 86400; math.Abs(day-want) > 1e-9*want {
		t.Fatalf("one-day diurnal mass %g != steady daily mass %g", day, want)
	}
	// A window fully outside the revocation hours carries zero mass.
	if got := m.ServerMass(0, 0, trace.DiurnalWindowStart); got != 0 {
		t.Fatalf("pre-window forecast mass = %g, want 0", got)
	}
}

// TestBands: banding is a pure function of config — homogeneous fleets
// collapse to band 0 (the legacy candidate order), heterogeneous fleets
// separate by hazard with low hazard in low bands.
func TestBands(t *testing.T) {
	homog := New(trace.ShockConfig{Kind: trace.ShockPoisson, Duration: 86400, RatePerDay: 1}, 16)
	for s := 0; s < 16; s++ {
		if b := homog.Band(s, 4); b != 0 {
			t.Fatalf("homogeneous fleet server %d in band %d, want 0", s, b)
		}
	}
	none := New(trace.ShockConfig{}, 16)
	if b := none.Band(3, 4); b != 0 || none.SteadyHazard(3) != 0 {
		t.Fatalf("no-shock model: band %d hazard %g, want zeros", b, none.SteadyHazard(3))
	}
	scales := make([]float64, 16)
	for s := range scales {
		scales[s] = 0.1 + float64(s)*0.2
	}
	het := New(trace.ShockConfig{Kind: trace.ShockPoisson, Duration: 86400, RatePerDay: 2, RateScale: scales}, 16)
	if b0, b15 := het.Band(0, 4), het.Band(15, 4); b0 != 0 || b15 != 3 {
		t.Fatalf("heterogeneous fleet: band(min)=%d band(max)=%d, want 0 and 3", b0, b15)
	}
	prev := 0
	for s := 1; s < 16; s++ {
		b := het.Band(s, 4)
		if b < prev {
			t.Fatalf("bands not monotone in hazard: server %d band %d after band %d", s, b, prev)
		}
		prev = b
	}
}

// TestBurstSizeAndOutage: rack models report the effective correlated
// group; the outage expectation matches the floored exponential.
func TestBurstSizeAndOutage(t *testing.T) {
	m := New(trace.ShockConfig{Kind: trace.ShockRack, Duration: 86400, RackSize: 8, MaxOutFraction: 0.25}, 16)
	if got := m.BurstSize(); got != 4 {
		t.Fatalf("BurstSize = %d, want the cap-clamped 4", got)
	}
	if got := New(trace.ShockConfig{Kind: trace.ShockPoisson, Duration: 86400}, 16).BurstSize(); got != 1 {
		t.Fatalf("poisson BurstSize = %d, want 1", got)
	}
	mean := 2 * 3600.0
	want := trace.MinOutageSeconds + mean*math.Exp(-trace.MinOutageSeconds/mean)
	if got := m.ExpectedOutageSeconds(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExpectedOutageSeconds = %g, want %g", got, want)
	}
	// OutageFraction sums to the expected simultaneously-out share.
	frac := m.OutageFraction(0)
	if frac <= 0 || frac >= 1 {
		t.Fatalf("OutageFraction = %g, want in (0,1)", frac)
	}
}
