package hypervisor

import (
	"fmt"
	"math/rand"
	"testing"

	"vmdeflate/internal/resources"
)

// freshAggregates recomputes the host's aggregates from scratch, walking
// domains in name order — the oracle the cached value must match
// bit-for-bit after any operation sequence.
func freshAggregates(h *Host) Aggregates {
	var a Aggregates
	for _, d := range h.Domains() { // Domains() is sorted by name
		a.Committed = a.Committed.Add(d.Config().Size)
		if d.State() != Running {
			continue
		}
		a.Running++
		alloc := d.Allocation()
		a.Allocated = a.Allocated.Add(alloc)
		if !d.Deflatable() {
			continue
		}
		a.DeflatableReserve = a.DeflatableReserve.Add(alloc.Sub(d.Floor()).ClampNonNegative())
		if alloc.DeflationFraction(d.Config().Size) > 0 {
			a.Deflated++
		}
	}
	return a
}

func checkAggregates(t *testing.T, h *Host, op string) {
	t.Helper()
	got, want := h.Aggregates(), freshAggregates(h)
	if got != want {
		t.Fatalf("after %s: cached aggregates diverged from fresh recompute:\n got %+v\nwant %+v", op, got, want)
	}
}

// TestAggregatesMatchFreshRecompute is the cache-coherence property
// test: after every operation of a long randomized define / start /
// limit / hotplug / clear / shutdown / undefine sequence, the cached
// aggregates must equal a fresh name-order recomputation exactly — the
// invariant that lets the cluster layer treat cached reads and fresh
// walks as interchangeable, bit for bit.
func TestAggregatesMatchFreshRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := testHost(t)
	var live []string
	next := 0

	for op := 0; op < 3000; op++ {
		var opName string
		switch k := rng.Intn(10); {
		case k <= 2 || len(live) == 0: // define + maybe start
			name := fmt.Sprintf("vm-%04d", next)
			next++
			cfg := DomainConfig{
				Name:       name,
				Size:       resources.New(float64(1+rng.Intn(16)), float64(1024*(1+rng.Intn(16))), 0, 0),
				Deflatable: rng.Intn(3) != 0,
				Priority:   0.25 * float64(1+rng.Intn(4)),
			}
			if rng.Intn(4) == 0 {
				cfg.MinAllocation = cfg.Size.Scale(0.25)
			}
			d, err := h.Define(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(5) != 0 {
				if err := d.Start(); err != nil {
					t.Fatal(err)
				}
			}
			live = append(live, name)
			opName = "define " + name
		case k <= 5: // transparent limit change / clear
			name := live[rng.Intn(len(live))]
			d, err := h.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(5) == 0 {
				d.ClearTransparentLimits()
				opName = "clear " + name
			} else {
				frac := 0.3 + 0.7*rng.Float64()
				d.SetCPUShares(d.MaxSize().Get(resources.CPU) * frac)
				d.SetMemoryLimit(d.MaxSize().Get(resources.Memory) * frac)
				opName = "limit " + name
			}
		case k <= 7: // hotplug churn (only running domains accept it)
			name := live[rng.Intn(len(live))]
			d, err := h.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				d.HotUnplugVCPUs(1 + rng.Intn(4))
				d.HotUnplugMemory(float64(512 * (1 + rng.Intn(4))))
			} else {
				d.HotPlugVCPUs(1 + rng.Intn(4))
				d.HotPlugMemory(float64(512 * (1 + rng.Intn(4))))
			}
			opName = "hotplug " + name
		case k == 8: // lifecycle flip
			name := live[rng.Intn(len(live))]
			d, err := h.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if d.State() == Running {
				d.Shutdown()
			} else {
				d.Start()
			}
			opName = "flip " + name
		default: // undefine (stopping first if needed)
			i := rng.Intn(len(live))
			name := live[i]
			d, err := h.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if d.State() == Running {
				d.Shutdown()
			}
			if err := h.Undefine(name); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
			opName = "undefine " + name
		}
		checkAggregates(t, h, opName)
	}
}

// TestAggregatesConvenienceAccessors keeps Committed/Allocated/Available
// consistent with the aggregate snapshot they are served from.
func TestAggregatesConvenienceAccessors(t *testing.T) {
	h := testHost(t)
	defineRunning(t, h, "a", 8, 16384)
	d := defineRunning(t, h, "b", 4, 8192)
	d.SetCPUShares(2)

	agg := h.Aggregates()
	if h.Committed() != agg.Committed || h.Allocated() != agg.Allocated {
		t.Error("accessors disagree with Aggregates()")
	}
	if agg.Running != 2 || agg.Deflated != 1 {
		t.Errorf("running/deflated = %d/%d, want 2/1", agg.Running, agg.Deflated)
	}
	if got := h.Available(); got != h.Capacity().Sub(agg.Allocated).ClampNonNegative() {
		t.Errorf("Available = %v", got)
	}
}

// TestOnAggregateChange checks the callback fires for every mutation
// class the cluster layer relies on for dirty tracking. Notifications
// are edge-triggered — one per clean-to-stale transition — so the test
// re-arms the edge with an Aggregates() read before every mutation.
func TestOnAggregateChange(t *testing.T) {
	h := testHost(t)
	fires := 0
	h.OnAggregateChange(func() { fires++ })

	d, err := h.Define(DomainConfig{Name: "vm", Size: resources.New(4, 8192, 0, 0), Deflatable: true, Priority: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		name string
		op   func()
	}{
		{"start", func() { d.Start() }},
		{"setlimit", func() { d.SetCPUShares(2) }},
		{"clear", func() { d.ClearTransparentLimits() }},
		{"unplug", func() { d.HotUnplugVCPUs(1) }},
		{"plug", func() { d.HotPlugVCPUs(1) }},
		{"unplugmem", func() { d.HotUnplugMemory(1024) }},
		{"plugmem", func() { d.HotPlugMemory(1024) }},
		{"shutdown", func() { d.Shutdown() }},
		{"undefine", func() { h.Undefine("vm") }},
	}
	if fires == 0 {
		t.Error("define did not fire the callback")
	}
	for _, s := range steps {
		h.Aggregates() // refresh the cache, re-arming the edge
		before := fires
		s.op()
		if fires == before {
			t.Errorf("%s did not fire the callback", s.name)
		}
	}

	// While the cache is already stale, further mutations coalesce into
	// the pending notification.
	h.Aggregates()
	d2, err := h.Define(DomainConfig{Name: "vm2", Size: resources.New(4, 8192, 0, 0), Deflatable: true, Priority: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	before := fires
	if err := d2.Start(); err != nil { // cache still stale from Define
		t.Fatal(err)
	}
	d2.SetCPUShares(2)
	if fires != before {
		t.Errorf("stale-cache mutations should coalesce: %d extra fires", fires-before)
	}

	// Unregistering stops delivery.
	h.Aggregates()
	h.OnAggregateChange(nil)
	before = fires
	if _, err := h.Define(DomainConfig{Name: "vm3", Size: resources.New(1, 1024, 0, 0)}); err != nil {
		t.Fatal(err)
	}
	if fires != before {
		t.Error("callback fired after unregistering")
	}
}

// TestFloorHelpers pins the floor definitions the cluster policies and
// host reserve aggregate share.
func TestFloorHelpers(t *testing.T) {
	if DefaultFloor() != resources.New(0.05, 64, 0, 0) {
		t.Errorf("DefaultFloor = %v", DefaultFloor())
	}
	small := DomainConfig{Name: "s", Size: resources.New(0.01, 32, 0, 0)}
	if got := small.Floor(); got != resources.New(0.01, 32, 0, 0) {
		t.Errorf("floor capped by size = %v", got)
	}
	withMin := DomainConfig{
		Name:          "m",
		Size:          resources.New(8, 16384, 0, 0),
		MinAllocation: resources.New(2, 4096, 0, 0),
	}
	if got := withMin.Floor(); got != withMin.MinAllocation {
		t.Errorf("explicit min floor = %v", got)
	}
	h := testHost(t)
	d := defineRunning(t, h, "d", 8, 16384)
	if d.Floor() != d.Config().Floor() {
		t.Error("Domain.Floor disagrees with DomainConfig.Floor")
	}
}
