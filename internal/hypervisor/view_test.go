package hypervisor

import (
	"fmt"
	"math/rand"
	"testing"

	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
)

// freshView rebuilds the deflatable VM-state view from scratch through
// the public Domains() walk — the oracle the cached view must match
// bit-for-bit after any operation sequence.
func freshView(h *Host) ([]policy.VMState, []*Domain) {
	var states []policy.VMState
	var doms []*Domain
	for _, d := range h.Domains() { // Domains() is sorted by name
		if !d.Deflatable() || d.State() != Running {
			continue
		}
		states = append(states, policy.VMState{
			Name:     d.Name(),
			Max:      d.MaxSize(),
			Min:      d.Floor(),
			Priority: d.Priority(),
			Current:  d.Allocation(),
		})
		doms = append(doms, d)
	}
	return states, doms
}

func checkView(t *testing.T, h *Host, op string) {
	t.Helper()
	gotStates, gotDoms := h.AppendDeflatableView(nil, nil)
	wantStates, wantDoms := freshView(h)
	if len(gotStates) != len(wantStates) || len(gotDoms) != len(wantDoms) {
		t.Fatalf("after %s: view sizes diverged: got %d/%d domains, want %d/%d",
			op, len(gotStates), len(gotDoms), len(wantStates), len(wantDoms))
	}
	for i := range wantStates {
		if gotStates[i] != wantStates[i] {
			t.Fatalf("after %s: cached view[%d] diverged:\n got %+v\nwant %+v",
				op, i, gotStates[i], wantStates[i])
		}
		if gotDoms[i] != wantDoms[i] {
			t.Fatalf("after %s: domain pointer %d diverged", op, i)
		}
	}
}

// TestDeflatableViewMatchesFreshWalk is the view-cache coherence
// property test: after every operation of a long randomized define /
// start / limit / hotplug / clear / shutdown / undefine sequence, the
// cached per-host VM-state view must equal a fresh Domains() walk
// exactly — the invariant that lets PlaceOn and Reinflate consume the
// cache instead of rebuilding policy.VMState slices per pass.
func TestDeflatableViewMatchesFreshWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := testHost(t)
	var live []string
	next := 0

	for op := 0; op < 3000; op++ {
		var opName string
		switch k := rng.Intn(10); {
		case k <= 2 || len(live) == 0: // define + maybe start
			name := fmt.Sprintf("vm-%04d", next)
			next++
			cfg := DomainConfig{
				Name:       name,
				Size:       resources.New(float64(1+rng.Intn(16)), float64(1024*(1+rng.Intn(16))), 0, 0),
				Deflatable: rng.Intn(3) != 0,
				Priority:   0.25 * float64(1+rng.Intn(4)),
			}
			if rng.Intn(4) == 0 {
				cfg.MinAllocation = cfg.Size.Scale(0.25)
			}
			d, err := h.Define(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(5) != 0 {
				if err := d.Start(); err != nil {
					t.Fatal(err)
				}
			}
			live = append(live, name)
			opName = "define " + name
		case k <= 5: // transparent limit change / clear
			name := live[rng.Intn(len(live))]
			d, err := h.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(5) == 0 {
				d.ClearTransparentLimits()
				opName = "clear " + name
			} else {
				frac := 0.3 + 0.7*rng.Float64()
				d.SetCPUShares(d.MaxSize().Get(resources.CPU) * frac)
				d.SetMemoryLimit(d.MaxSize().Get(resources.Memory) * frac)
				opName = "limit " + name
			}
		case k <= 7: // hotplug churn (only running domains accept it)
			name := live[rng.Intn(len(live))]
			d, err := h.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				d.HotUnplugVCPUs(1 + rng.Intn(4))
				d.HotUnplugMemory(float64(512 * (1 + rng.Intn(4))))
			} else {
				d.HotPlugVCPUs(1 + rng.Intn(4))
				d.HotPlugMemory(float64(512 * (1 + rng.Intn(4))))
			}
			opName = "hotplug " + name
		case k == 8: // lifecycle flip
			name := live[rng.Intn(len(live))]
			d, err := h.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if d.State() == Running {
				d.Shutdown()
			} else {
				d.Start()
			}
			opName = "flip " + name
		default: // undefine (stopping first if needed)
			i := rng.Intn(len(live))
			name := live[i]
			d, err := h.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if d.State() == Running {
				d.Shutdown()
			}
			if err := h.Undefine(name); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
			opName = "undefine " + name
		}
		checkView(t, h, opName)
	}
}

// TestDeflatableViewAppendSemantics checks the append contract: the
// destination buffers are extended, not overwritten, and reusing a
// buffer across reads does not allocate once its capacity is warm.
func TestDeflatableViewAppendSemantics(t *testing.T) {
	h := testHost(t)
	defineRunning(t, h, "a", 4, 8192)
	d, err := h.Define(DomainConfig{
		Name: "b", Size: resources.New(4, 8192, 0, 0), Deflatable: true, Priority: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}

	sentinel := policy.VMState{Name: "sentinel"}
	states, doms := h.AppendDeflatableView([]policy.VMState{sentinel}, nil)
	if len(states) < 2 || states[0].Name != "sentinel" {
		t.Fatalf("append must extend the destination: %+v", states)
	}
	if len(doms) != len(states)-1 {
		t.Fatalf("domains not parallel to appended states: %d vs %d", len(doms), len(states)-1)
	}

	// Steady state: repeated reads into a reused buffer, with a limit
	// change in between forcing a cache rebuild, must not allocate.
	var sbuf []policy.VMState
	var dbuf []*Domain
	sbuf, dbuf = h.AppendDeflatableView(sbuf[:0], dbuf[:0])
	got := testing.AllocsPerRun(100, func() {
		d.SetCPUShares(2 + float64(len(sbuf)%2)) // invalidate
		sbuf, dbuf = h.AppendDeflatableView(sbuf[:0], dbuf[:0])
	})
	if got != 0 {
		t.Errorf("steady-state view read allocates %.1f allocs/op, want 0", got)
	}
}
