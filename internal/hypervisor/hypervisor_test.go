package hypervisor

import (
	"errors"
	"testing"

	"vmdeflate/internal/resources"
)

func testHost(t *testing.T) *Host {
	t.Helper()
	h, err := NewHost(HostConfig{
		Name:     "node-0",
		Capacity: resources.New(48, 131072, 1000, 10000),
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func defineRunning(t *testing.T, h *Host, name string, cores, memMB float64) *Domain {
	t.Helper()
	d, err := h.Define(DomainConfig{
		Name:       name,
		Size:       resources.New(cores, memMB, 100, 1000),
		Deflatable: true,
		Priority:   0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewHostValidation(t *testing.T) {
	if _, err := NewHost(HostConfig{Name: "", Capacity: resources.New(1, 1, 1, 1)}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewHost(HostConfig{Name: "h"}); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := NewHost(HostConfig{Name: "h", Capacity: resources.New(-1, 1, 1, 1)}); err == nil {
		t.Error("negative capacity should fail")
	}
}

func TestDefineValidation(t *testing.T) {
	h := testHost(t)
	cases := []DomainConfig{
		{Name: "", Size: resources.New(1, 1024, 0, 0)},
		{Name: "v", Size: resources.New(0, 1024, 0, 0)},
		{Name: "v", Size: resources.New(1, 0, 0, 0)},
		{Name: "v", Size: resources.New(1, 1024, -1, 0)},
		{Name: "v", Size: resources.New(1, 1024, 0, 0), Deflatable: true, Priority: 2},
		{Name: "v", Size: resources.New(1, 1024, 0, 0), MinAllocation: resources.New(2, 0, 0, 0)},
	}
	for i, cfg := range cases {
		if _, err := h.Define(cfg); err == nil {
			t.Errorf("case %d should fail: %+v", i, cfg)
		}
	}
}

func TestLifecycle(t *testing.T) {
	h := testHost(t)
	d, err := h.Define(DomainConfig{Name: "vm-1", Size: resources.New(4, 8192, 100, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	if d.State() != Defined {
		t.Errorf("state = %v", d.State())
	}
	if _, err := h.Define(DomainConfig{Name: "vm-1", Size: resources.New(1, 1024, 0, 0)}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate define = %v", err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if d.State() != Running {
		t.Errorf("state = %v", d.State())
	}
	if err := d.Start(); !errors.Is(err, ErrState) {
		t.Errorf("double start = %v", err)
	}
	if err := h.Undefine("vm-1"); !errors.Is(err, ErrState) {
		t.Errorf("undefine running = %v", err)
	}
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if d.State() != Shutoff {
		t.Errorf("state = %v", d.State())
	}
	if err := d.Shutdown(); !errors.Is(err, ErrState) {
		t.Errorf("double shutdown = %v", err)
	}
	if err := h.Undefine("vm-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Lookup("vm-1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup after undefine = %v", err)
	}
	if err := h.Undefine("vm-1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double undefine = %v", err)
	}
}

func TestStateString(t *testing.T) {
	if Defined.String() != "defined" || Running.String() != "running" || Shutoff.String() != "shut off" {
		t.Error("state names wrong")
	}
}

func TestDomainsSorted(t *testing.T) {
	h := testHost(t)
	for _, n := range []string{"c", "a", "b"} {
		if _, err := h.Define(DomainConfig{Name: n, Size: resources.New(1, 1024, 0, 0)}); err != nil {
			t.Fatal(err)
		}
	}
	ds := h.Domains()
	if len(ds) != 3 || ds[0].Name() != "a" || ds[1].Name() != "b" || ds[2].Name() != "c" {
		t.Errorf("Domains order wrong: %v", ds)
	}
}

func TestAccountingAndOvercommit(t *testing.T) {
	h := testHost(t)
	// Capacity 48 cores. Define 40+20 cores = 60 committed -> 25% overcommit.
	a := defineRunning(t, h, "a", 40, 65536)
	_ = a
	defineRunning(t, h, "b", 20, 32768)
	c := h.Committed()
	if c.Get(resources.CPU) != 60 {
		t.Errorf("committed CPU = %v", c.Get(resources.CPU))
	}
	if oc := h.Overcommit(); oc < 0.249 || oc > 0.251 {
		t.Errorf("overcommit = %v, want 0.25", oc)
	}
	alloc := h.Allocated()
	if alloc.Get(resources.CPU) != 60 {
		t.Errorf("allocated CPU = %v", alloc.Get(resources.CPU))
	}
	// Available clamps at zero.
	if h.Available().Get(resources.CPU) != 0 {
		t.Errorf("available CPU = %v", h.Available().Get(resources.CPU))
	}
}

func TestOvercommitUnderpacked(t *testing.T) {
	h := testHost(t)
	defineRunning(t, h, "a", 10, 8192)
	if oc := h.Overcommit(); oc != 0 {
		t.Errorf("underpacked overcommit = %v, want 0", oc)
	}
}

func TestTransparentDeflation(t *testing.T) {
	h := testHost(t)
	d := defineRunning(t, h, "vm", 8, 16384)
	if err := d.SetCPUShares(4); err != nil {
		t.Fatal(err)
	}
	if err := d.SetMemoryLimit(8192); err != nil {
		t.Fatal(err)
	}
	if err := d.SetDiskLimit(50); err != nil {
		t.Fatal(err)
	}
	if err := d.SetNetLimit(500); err != nil {
		t.Fatal(err)
	}
	got := d.Effective()
	want := resources.New(4, 8192, 50, 500)
	if got != want {
		t.Errorf("effective = %v, want %v", got, want)
	}
	// Guest still sees all 8 vCPUs — deflation is transparent.
	if d.Guest().OnlineVCPUs() != 8 {
		t.Errorf("guest sees %d vCPUs, want 8", d.Guest().OnlineVCPUs())
	}
	if f := d.DeflationFraction(); f < 0.49 || f > 0.51 {
		t.Errorf("deflation fraction = %v, want 0.5", f)
	}
	d.ClearTransparentLimits()
	if d.Effective() != d.MaxSize() {
		t.Errorf("after clear, effective = %v", d.Effective())
	}
}

func TestExplicitDeflation(t *testing.T) {
	h := testHost(t)
	d := defineRunning(t, h, "vm", 8, 16384)
	d.Guest().SetWorkload(4000, 2000)

	n, err := d.HotUnplugVCPUs(3)
	if err != nil || n != 3 {
		t.Fatalf("HotUnplugVCPUs = %d, %v", n, err)
	}
	if got := d.Effective().Get(resources.CPU); got != 5 {
		t.Errorf("effective CPU = %v, want 5", got)
	}
	mb, err := d.HotUnplugMemory(4096)
	if err != nil || mb != 4096 {
		t.Fatalf("HotUnplugMemory = %v, %v", mb, err)
	}
	if got := d.Effective().Get(resources.Memory); got != 16384-4096 {
		t.Errorf("effective memory = %v", got)
	}
	// Reinflate.
	n, err = d.HotPlugVCPUs(3)
	if err != nil || n != 3 {
		t.Fatalf("HotPlugVCPUs = %d, %v", n, err)
	}
	mb, err = d.HotPlugMemory(4096)
	if err != nil || mb != 4096 {
		t.Fatalf("HotPlugMemory = %v, %v", mb, err)
	}
	if d.Effective() != d.MaxSize() {
		t.Errorf("after reinflate, effective = %v", d.Effective())
	}
}

func TestHotplugRequiresRunning(t *testing.T) {
	h := testHost(t)
	d, _ := h.Define(DomainConfig{Name: "vm", Size: resources.New(4, 8192, 0, 0)})
	if _, err := d.HotUnplugVCPUs(1); !errors.Is(err, ErrState) {
		t.Errorf("unplug on defined domain = %v", err)
	}
	if _, err := d.HotPlugVCPUs(1); !errors.Is(err, ErrState) {
		t.Errorf("plug on defined domain = %v", err)
	}
	if _, err := d.HotUnplugMemory(128); !errors.Is(err, ErrState) {
		t.Errorf("mem unplug on defined domain = %v", err)
	}
	if _, err := d.HotPlugMemory(128); !errors.Is(err, ErrState) {
		t.Errorf("mem plug on defined domain = %v", err)
	}
}

func TestCombinedTransparentAndExplicit(t *testing.T) {
	h := testHost(t)
	d := defineRunning(t, h, "vm", 8, 16384)
	// Hotplug away 4 vCPUs, then cap the remaining 4 at 2.5 cores.
	d.HotUnplugVCPUs(4)
	d.SetCPUShares(2.5)
	if got := d.Effective().Get(resources.CPU); got != 2.5 {
		t.Errorf("effective CPU = %v, want 2.5", got)
	}
	// Raising the cgroup limit above plugged does not inflate.
	d.SetCPUShares(6)
	if got := d.Effective().Get(resources.CPU); got != 4 {
		t.Errorf("effective CPU = %v, want 4 (plugged)", got)
	}
}

func TestSwapPressureAndCacheLoss(t *testing.T) {
	h := testHost(t)
	d := defineRunning(t, h, "vm", 4, 8192)
	d.Guest().SetWorkload(4000, 2000) // RSS 4256, cache 2000
	if got := d.SwapPressure(); got != 0 {
		t.Errorf("no limit: swap pressure = %v", got)
	}
	d.SetMemoryLimit(2128) // half of RSS
	if got := d.SwapPressure(); got < 0.49 || got > 0.51 {
		t.Errorf("swap pressure = %v, want ~0.5", got)
	}
	d.SetMemoryLimit(5256) // RSS + half cache
	if got := d.CacheLoss(); got < 0.49 || got > 0.51 {
		t.Errorf("cache loss = %v, want ~0.5", got)
	}
}

func TestDeflatedByLabel(t *testing.T) {
	h := testHost(t)
	d := defineRunning(t, h, "vm", 4, 8192)
	if d.DeflatedBy() != "" {
		t.Error("fresh domain should have empty label")
	}
	d.SetDeflatedBy("hybrid")
	if d.DeflatedBy() != "hybrid" {
		t.Errorf("label = %q", d.DeflatedBy())
	}
}

func TestConfigAccessors(t *testing.T) {
	h := testHost(t)
	min := resources.New(1, 2048, 0, 0)
	d, err := h.Define(DomainConfig{
		Name: "vm", Size: resources.New(4, 8192, 100, 1000),
		Deflatable: true, Priority: 0.75, MinAllocation: min,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Deflatable() || d.Priority() != 0.75 {
		t.Error("deflatable/priority accessors wrong")
	}
	if d.MinAllocation() != min {
		t.Errorf("MinAllocation = %v", d.MinAllocation())
	}
	if d.Host() != h {
		t.Error("Host accessor wrong")
	}
	if d.Config().Name != "vm" {
		t.Error("Config accessor wrong")
	}
	if h.Capacity() != resources.New(48, 131072, 1000, 10000) {
		t.Error("Capacity accessor wrong")
	}
	if h.Name() != "node-0" {
		t.Error("Name accessor wrong")
	}
}
