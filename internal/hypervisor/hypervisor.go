// Package hypervisor simulates the KVM/libvirt substrate the paper's
// prototype is built on (Section 6): domains (VMs) with lifecycle
// management, vCPU-to-pCPU multiplexing through cgroup CPU bandwidth
// control, dynamic memory limits, disk and network throttles, and
// QEMU-agent-style CPU/memory hotplug that is forwarded to the guest OS.
//
// The exported API mirrors the slice of libvirt the paper uses:
// define/start/shutdown/undefine, SetCPUShares / SetMemoryLimit /
// SetDiskLimit / SetNetLimit for transparent deflation, and
// HotplugVCPUs / HotplugMemory for explicit deflation. A Domain's
// Effective() vector — the resources the applications inside actually
// get — is the single point of truth consumed by the performance models.
package hypervisor

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"vmdeflate/internal/cgroups"
	"vmdeflate/internal/guestos"
	"vmdeflate/internal/policy"
	"vmdeflate/internal/resources"
)

// Errors returned by the hypervisor.
var (
	ErrExists   = errors.New("hypervisor: domain already exists")
	ErrNotFound = errors.New("hypervisor: domain not found")
	ErrState    = errors.New("hypervisor: invalid domain state")
	ErrInvalid  = errors.New("hypervisor: invalid configuration")
)

// DomainState is the lifecycle state of a domain.
type DomainState int

const (
	// Defined means the domain exists but is not running.
	Defined DomainState = iota
	// Running means the domain is executing.
	Running
	// Shutoff means the domain was stopped but remains defined.
	Shutoff
)

// String names the state like `virsh list` would.
func (s DomainState) String() string {
	switch s {
	case Defined:
		return "defined"
	case Running:
		return "running"
	case Shutoff:
		return "shut off"
	default:
		return fmt.Sprintf("DomainState(%d)", int(s))
	}
}

// HostConfig describes a physical server.
type HostConfig struct {
	// Name identifies the host.
	Name string
	// Capacity is the host's physical resources.
	Capacity resources.Vector
}

// DefaultFloor is the mechanism-level minimum viable allocation: 1/20th
// of a core and 64 MB, per the paper's observation that even a 0.05-CPU
// microservice container keeps running. It is the deflation floor for
// domains that configure no explicit MinAllocation, and the per-dimension
// safety floor the mechanisms enforce on any target.
func DefaultFloor() resources.Vector {
	return resources.New(0.05, 64, 0, 0)
}

// DomainConfig describes a VM to be defined.
type DomainConfig struct {
	// Name identifies the domain on its host.
	Name string
	// Size is the nominal (undeflated) allocation M_i.
	Size resources.Vector
	// Deflatable marks low-priority VMs whose resources may be reclaimed.
	Deflatable bool
	// Priority pi in (0,1] — higher priority means lower deflation
	// tolerance (Section 5.1.2). Ignored for non-deflatable VMs.
	Priority float64
	// MinAllocation m_i is an optional QoS floor per Section 5.1.1
	// equation (2). Zero means no floor.
	MinAllocation resources.Vector
	// Load is the domain's initial offered request load in cores
	// (core-seconds of CPU demand per second). It seeds the live value
	// maintained by SetOfferedLoad, so a VM admitted — or evacuated to a
	// new server — under load is visible to latency-aware policies from
	// its first policy pass.
	Load float64
}

func (c *DomainConfig) validate() error {
	if c.Name == "" {
		return fmt.Errorf("%w: empty domain name", ErrInvalid)
	}
	if c.Size.Get(resources.CPU) < 1 || c.Size.Get(resources.Memory) <= 0 {
		return fmt.Errorf("%w: domain %s needs at least 1 CPU and some memory", ErrInvalid, c.Name)
	}
	if err := c.Size.CheckNonNegative(); err != nil {
		return err
	}
	if err := c.MinAllocation.CheckNonNegative(); err != nil {
		return err
	}
	if !c.MinAllocation.FitsIn(c.Size) {
		return fmt.Errorf("%w: domain %s min allocation exceeds size", ErrInvalid, c.Name)
	}
	if c.Deflatable && (c.Priority < 0 || c.Priority > 1) {
		return fmt.Errorf("%w: domain %s priority %g outside (0,1]", ErrInvalid, c.Name, c.Priority)
	}
	if c.Load < 0 {
		return fmt.Errorf("%w: domain %s negative offered load %g", ErrInvalid, c.Name, c.Load)
	}
	return nil
}

// Floor returns the configuration's deflation floor: the configured
// MinAllocation (the QoS floor m_i of equation (2)), or DefaultFloor
// capped by the nominal size when none is set.
func (c DomainConfig) Floor() resources.Vector {
	if !c.MinAllocation.IsZero() {
		return c.MinAllocation
	}
	return DefaultFloor().Min(c.Size)
}

// Aggregates is the host's resource accounting, maintained as a cache so
// that reading it is O(1) between mutations instead of a walk over every
// domain. The cached value is always bit-for-bit identical to a fresh
// name-order recomputation (the recompute itself iterates domains sorted
// by name), so consumers that depend on PR 1's float-summation
// determinism invariant can use it freely.
type Aggregates struct {
	// Committed is the sum of nominal sizes of all defined domains: the
	// numerator of the cluster overcommitment ratio (Section 1).
	Committed resources.Vector
	// Allocated is the sum of current (possibly deflated) allocations of
	// running domains: physical resources actually promised right now.
	Allocated resources.Vector
	// DeflatableReserve is the total resource reclaimable from running
	// deflatable domains: sum of (allocation - floor), clamped at zero —
	// the deflatable_j term of the paper's availability vector.
	DeflatableReserve resources.Vector
	// Running counts running domains; Deflated counts running deflatable
	// domains currently below their nominal size (DeflationFraction > 0).
	Running  int
	Deflated int
}

// Host is one simulated physical server running a KVM hypervisor.
type Host struct {
	cfg     HostConfig
	cgroups *cgroups.Hierarchy
	// capacity is the host's current physical capacity. It starts at
	// cfg.Capacity and moves only through SetCapacity (the transient
	// server shrank or was restored); an atomic pointer to an immutable
	// vector keeps the hot-path Capacity() reads lock-free.
	capacity atomic.Pointer[resources.Vector]
	mu       sync.Mutex
	domains  map[string]*Domain
	// order holds the domains sorted by name. Keeping it materialised
	// (rather than sorting in Domains()) makes the aggregate recompute
	// below iterate in a fixed order, which keeps float summations like
	// Allocated() bit-for-bit reproducible — map iteration order would
	// perturb the low bits run to run and break the simulator's
	// determinism guarantee.
	order []*Domain

	// Derived-state cache: the aggregates plus the deflatable VM-state
	// view (the policy-shaped picture of the host's running deflatable
	// domains, in name order, that the cluster layer's PlaceOn/Reinflate
	// policy passes consume). Both are stale-flagged together by every
	// mutation that can move an allocation or lifecycle state, and both
	// are rebuilt by ONE name-order walk that reads each domain through
	// a single lock acquisition — so a reinflation pass that needs the
	// aggregates and then the view costs one walk, not two. cacheMu
	// orders rebuilds and guards the cached values; the lock order is
	// cacheMu -> mu -> Domain.mu, and invalidation takes none of them
	// (atomic flag + leaf callback), so mutators that already hold mu or
	// a Domain lock can invalidate without deadlock.
	cacheMu      sync.Mutex
	cacheValid   bool
	cacheDirty   atomic.Bool
	agg          Aggregates
	viewStates   []policy.VMState
	viewDoms     []*Domain
	cacheScratch []*Domain // reusable order snapshot for the rebuild walk

	// onChange, when set, is called after every aggregate invalidation.
	// It may run while host or domain locks are held: implementations
	// must only record dirtiness (e.g. add the host to a dirty set) and
	// never call back into Host or Domain methods.
	cbMu     sync.Mutex
	onChange func()
}

// NewHost boots a hypervisor on a server with the given capacity.
func NewHost(cfg HostConfig) (*Host, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("%w: empty host name", ErrInvalid)
	}
	if err := cfg.Capacity.CheckNonNegative(); err != nil {
		return nil, err
	}
	if cfg.Capacity.IsZero() {
		return nil, fmt.Errorf("%w: host %s has no capacity", ErrInvalid, cfg.Name)
	}
	h := &Host{
		cfg:     cfg,
		cgroups: cgroups.NewHierarchy(),
		domains: make(map[string]*Domain),
	}
	c := cfg.Capacity
	h.capacity.Store(&c)
	return h, nil
}

// Name returns the host's name.
func (h *Host) Name() string { return h.cfg.Name }

// Capacity returns the host's current physical resources (the base
// capacity, unless SetCapacity resized the server).
func (h *Host) Capacity() resources.Vector { return *h.capacity.Load() }

// BaseCapacity returns the capacity the host was provisioned with,
// independent of any SetCapacity resize since.
func (h *Host) BaseCapacity() resources.Vector { return h.cfg.Capacity }

// SetCapacity resizes the host's physical capacity in place — the
// transient-server shrink/restore of a provider reclaiming (or
// returning) part of the machine. It follows the same dirty-flag
// discipline as every other mutation: the aggregate cache is
// invalidated and the registered aggregate-change callback fires, so a
// cluster manager's capacity index re-keys the server on its next
// query. The hypervisor itself does not shrink domains; fitting the
// residents into the new capacity is the cluster layer's job
// (deflation-first, then evacuation).
func (h *Host) SetCapacity(v resources.Vector) error {
	if err := v.CheckNonNegative(); err != nil {
		return err
	}
	if v.IsZero() {
		return fmt.Errorf("%w: host %s resized to zero capacity", ErrInvalid, h.cfg.Name)
	}
	h.capacity.Store(&v)
	h.invalidateAggregates()
	return nil
}

// OnAggregateChange registers fn to be called when a mutation (any
// define/undefine, lifecycle transition, limit change or hotplug)
// invalidates the host's clean aggregate cache. Notifications are
// edge-triggered: while the cache is already stale further mutations
// are coalesced into the pending notification, and the next
// Aggregates()/AppendDeflatableView() read re-arms the edge — exactly
// the contract a dirty-set consumer needs, at one callback per dirty
// episode instead of one per mutation. The callback may fire while host
// or domain locks are held, so it must only record dirtiness —
// typically marking the host in a cluster-level dirty set — and must
// not call back into Host or Domain methods. Passing nil unregisters.
func (h *Host) OnAggregateChange(fn func()) {
	h.cbMu.Lock()
	h.onChange = fn
	h.cbMu.Unlock()
}

// invalidateAggregates flags the derived-state cache stale and, on the
// clean-to-stale edge, notifies the registered callback. It takes no
// host or domain locks, so any mutator may call it regardless of what
// it already holds. The edge trigger is sound for dirty-set consumers:
// a skipped notification means the cache has been continuously stale
// since the last notification, so the consumer's dirty mark is still
// pending (the mark is only consumed together with the cache refresh
// that re-arms the edge).
func (h *Host) invalidateAggregates() {
	if h.cacheDirty.Swap(true) {
		return // already stale: notification still pending downstream
	}
	h.cbMu.Lock()
	fn := h.onChange
	h.cbMu.Unlock()
	if fn != nil {
		fn()
	}
}

// Aggregates returns the host's cached resource aggregates, recomputing
// them (one name-order walk) only if a mutation happened since the last
// read. Between mutations this is O(1), which is what makes per-arrival
// cluster scans affordable at scale.
func (h *Host) Aggregates() Aggregates {
	h.cacheMu.Lock()
	defer h.cacheMu.Unlock()
	h.refreshCacheLocked()
	return h.agg
}

// refreshCacheLocked rebuilds the aggregates and the deflatable VM-state
// view in one name-order walk — the fixed iteration order that keeps the
// float summations reproducible — if a mutation happened since the last
// read. Each domain is read through a single snapshot (one lock
// acquisition) shared by both derivations. Called with cacheMu held.
func (h *Host) refreshCacheLocked() {
	if !h.cacheDirty.Swap(false) && h.cacheValid {
		return
	}
	h.mu.Lock()
	h.cacheScratch = append(h.cacheScratch[:0], h.order...)
	h.mu.Unlock()
	var a Aggregates
	h.viewStates = h.viewStates[:0]
	h.viewDoms = h.viewDoms[:0]
	for _, d := range h.cacheScratch {
		a.Committed = a.Committed.Add(d.cfg.Size)
		state, alloc, load := d.snapshot()
		if state != Running {
			continue
		}
		a.Running++
		a.Allocated = a.Allocated.Add(alloc)
		if !d.cfg.Deflatable {
			continue
		}
		floor := d.Floor()
		a.DeflatableReserve = a.DeflatableReserve.Add(alloc.Sub(floor).ClampNonNegative())
		if alloc.DeflationFraction(d.cfg.Size) > 0 {
			a.Deflated++
		}
		h.viewStates = append(h.viewStates, policy.VMState{
			Name:     d.cfg.Name,
			Max:      d.cfg.Size,
			Min:      floor,
			Priority: d.cfg.Priority,
			Current:  alloc,
			Load:     load,
		})
		h.viewDoms = append(h.viewDoms, d)
	}
	h.agg = a
	h.cacheValid = true
}

// AppendDeflatableView appends the host's cached policy view of its
// running deflatable domains — one policy.VMState plus the matching
// *Domain per VM, in name order — to states and domains, and returns the
// extended slices. The cache is rebuilt (one name-order walk into reused
// buffers) only if a mutation happened since the last read, so a
// steady-state policy pass costs one memcpy instead of a Domains() walk
// that re-takes every domain lock and re-derives every floor. Callers
// own the destination slices; passing buffers they reuse across passes
// makes the whole read allocation-free.
//
// The appended states are a snapshot: a subsequent allocation or
// lifecycle mutation invalidates the cache but not slices already handed
// out, exactly like Aggregates().
func (h *Host) AppendDeflatableView(states []policy.VMState, domains []*Domain) ([]policy.VMState, []*Domain) {
	h.cacheMu.Lock()
	h.refreshCacheLocked()
	states = append(states, h.viewStates...)
	domains = append(domains, h.viewDoms...)
	h.cacheMu.Unlock()
	return states, domains
}

// Define creates a domain. Defining does not reserve physical resources:
// like a real IaaS hypervisor, the host permits overcommitment, which is
// exactly what deflation exists to manage.
func (h *Host) Define(cfg DomainConfig) (*Domain, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.domains[cfg.Name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, cfg.Name)
	}
	cg, err := h.cgroups.Create("machine/" + cfg.Name)
	if err != nil {
		return nil, err
	}
	guest, err := guestos.New(guestos.Config{
		VCPUs:    int(math.Round(cfg.Size.Get(resources.CPU))),
		MemoryMB: cfg.Size.Get(resources.Memory),
	})
	if err != nil {
		h.cgroups.Remove(cg.Name())
		return nil, err
	}
	d := &Domain{
		host:  h,
		cfg:   cfg,
		state: Defined,
		guest: guest,
		cg:    cg,
		load:  cfg.Load,
	}
	h.domains[cfg.Name] = d
	i := sort.Search(len(h.order), func(i int) bool { return h.order[i].cfg.Name >= cfg.Name })
	h.order = append(h.order, nil)
	copy(h.order[i+1:], h.order[i:])
	h.order[i] = d
	h.invalidateAggregates()
	return d, nil
}

// Lookup finds a domain by name.
func (h *Host) Lookup(name string) (*Domain, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.domains[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return d, nil
}

// Domains lists domains sorted by name.
func (h *Host) Domains() []*Domain {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Domain, len(h.order))
	copy(out, h.order)
	return out
}

// Undefine removes a stopped domain from the host.
func (h *Host) Undefine(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.domains[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	d.mu.Lock()
	st := d.state
	d.mu.Unlock()
	if st == Running {
		return fmt.Errorf("%w: cannot undefine running domain %s", ErrState, name)
	}
	h.cgroups.Remove(d.cg.Name())
	delete(h.domains, name)
	i := sort.Search(len(h.order), func(i int) bool { return h.order[i].cfg.Name >= name })
	h.order = append(h.order[:i], h.order[i+1:]...)
	h.invalidateAggregates()
	return nil
}

// Committed returns the sum of the nominal sizes of all defined domains:
// the numerator of the cluster overcommitment ratio (Section 1). Served
// from the aggregate cache.
func (h *Host) Committed() resources.Vector {
	return h.Aggregates().Committed
}

// Allocated returns the sum of the current (possibly deflated) allocations
// of running domains: physical resources actually promised right now.
// Served from the aggregate cache; the underlying summation is always in
// name order so the low bits are reproducible.
func (h *Host) Allocated() resources.Vector {
	return h.Aggregates().Allocated
}

// Available returns Capacity - Allocated, clamped at zero.
func (h *Host) Available() resources.Vector {
	return h.Capacity().Sub(h.Allocated()).ClampNonNegative()
}

// Overcommit returns Committed/Capacity - 1 as the dominant-share
// overcommitment fraction (0 = fully packed, 0.5 = 50% overcommitted).
func (h *Host) Overcommit() float64 {
	oc := h.Committed().DominantShare(h.Capacity())
	if oc < 1 {
		return 0
	}
	return oc - 1
}

// Domain is one VM resident on a Host.
type Domain struct {
	host *Host
	cfg  DomainConfig

	mu    sync.Mutex
	state DomainState
	guest *guestos.GuestOS
	cg    *cgroups.Group

	// allocValid/allocCache memoise the derived allocation vector, which
	// every aggregation walk, policy pass and sample read re-reads many
	// times between mutations. Every mutation that can move the
	// allocation — cgroup limit changes and hotplug — clears the flag
	// (all such mutations route through Domain methods; the cgroup and
	// guest are never driven directly). Guarded by mu.
	allocValid bool
	allocCache resources.Vector

	// load is the offered request load (cores) last reported through
	// SetOfferedLoad, seeded from DomainConfig.Load. Guarded by mu.
	load float64

	// deflatedBy records the most recent mechanism label ("transparent",
	// "explicit", "hybrid") for observability.
	deflatedBy string
}

// Name returns the domain name.
func (d *Domain) Name() string { return d.cfg.Name }

// Config returns the domain's configuration.
func (d *Domain) Config() DomainConfig { return d.cfg }

// Host returns the host the domain resides on.
func (d *Domain) Host() *Host { return d.host }

// Guest exposes the simulated guest OS (used by mechanisms and by the
// application models to install memory footprints).
func (d *Domain) Guest() *guestos.GuestOS { return d.guest }

// Cgroup exposes the domain's control group.
func (d *Domain) Cgroup() *cgroups.Group { return d.cg }

// State returns the domain's lifecycle state.
func (d *Domain) State() DomainState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Start transitions Defined/Shutoff -> Running.
func (d *Domain) Start() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state == Running {
		return fmt.Errorf("%w: %s already running", ErrState, d.cfg.Name)
	}
	d.state = Running
	d.host.invalidateAggregates()
	return nil
}

// Shutdown transitions Running -> Shutoff.
func (d *Domain) Shutdown() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Running {
		return fmt.Errorf("%w: %s not running", ErrState, d.cfg.Name)
	}
	d.state = Shutoff
	d.host.invalidateAggregates()
	return nil
}

// MaxSize returns the nominal undeflated allocation M_i.
func (d *Domain) MaxSize() resources.Vector { return d.cfg.Size }

// MinAllocation returns the QoS floor m_i (zero vector if none).
func (d *Domain) MinAllocation() resources.Vector { return d.cfg.MinAllocation }

// Floor returns the domain's deflation floor: its configured minimum
// allocation, or DefaultFloor capped by the nominal size when none is
// set. This is the single definition shared by the cluster policies and
// the host's deflatable-reserve aggregate.
func (d *Domain) Floor() resources.Vector { return d.cfg.Floor() }

// Deflatable reports whether the domain may be deflated.
func (d *Domain) Deflatable() bool { return d.cfg.Deflatable }

// Priority returns pi (0 for non-deflatable domains).
func (d *Domain) Priority() float64 { return d.cfg.Priority }

// Allocation returns the domain's current allocation: the nominal size
// capped by both explicit hotplug state and transparent cgroup limits.
// This is the vector the cluster policies account against.
func (d *Domain) Allocation() resources.Vector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocationLocked()
}

// snapshot returns the domain's lifecycle state, current allocation and
// offered load through one lock acquisition — the combined read the
// host's cache rebuild walk uses so it pays one domain lock per domain
// instead of one per accessor.
func (d *Domain) snapshot() (DomainState, resources.Vector, float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state, d.allocationLocked(), d.load
}

// OfferedLoad returns the domain's current offered request load (cores).
func (d *Domain) OfferedLoad() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.load
}

// SetOfferedLoad reports the domain's current offered request load in
// cores (core-seconds of demand per second), as metered by whatever is
// watching the VM's request stream. Latency-aware policies read it from
// the host's deflatable view. Negative values clamp to zero. The
// aggregate cache is invalidated only when the value actually changes,
// so re-reporting a steady load between policy passes stays O(1) and
// keeps the host's clean-cache fast path intact.
func (d *Domain) SetOfferedLoad(v float64) {
	if v < 0 {
		v = 0
	}
	d.mu.Lock()
	changed := d.load != v
	d.load = v
	d.mu.Unlock()
	if changed {
		d.host.invalidateAggregates()
	}
}

func (d *Domain) allocationLocked() resources.Vector {
	if !d.allocValid {
		plugged := d.cfg.Size.
			With(resources.CPU, float64(d.guest.OnlineVCPUs())).
			With(resources.Memory, d.guest.PluggedMemoryMB())
		d.allocCache = d.cg.Effective(plugged)
		d.allocValid = true
	}
	return d.allocCache
}

// Effective is an alias of Allocation emphasising that this is what the
// guest's applications can actually consume.
func (d *Domain) Effective() resources.Vector { return d.Allocation() }

// DeflationFraction returns how deflated the domain currently is,
// averaged over the dimensions of its nominal size.
func (d *Domain) DeflationFraction() float64 {
	return d.Allocation().DeflationFraction(d.cfg.Size)
}

// --- Transparent deflation knobs (cgroup-backed, Section 4.2) ---

// setLimit engages one cgroup controller and invalidates the domain's
// allocation memo and the host's aggregate cache (a limit change can
// move the effective allocation).
func (d *Domain) setLimit(k resources.Kind, v float64) error {
	if err := d.cg.SetLimit(k, v); err != nil {
		return err
	}
	d.mu.Lock()
	d.allocValid = false
	d.mu.Unlock()
	d.host.invalidateAggregates()
	return nil
}

// SetCPUShares caps the domain's CPU consumption at cores physical cores
// by adjusting its cgroup CPU bandwidth. The guest still sees all its
// vCPUs; they just run slower.
func (d *Domain) SetCPUShares(cores float64) error {
	return d.setLimit(resources.CPU, cores)
}

// SetMemoryLimit caps the domain's physical memory at mb via the memory
// cgroup (mem.limit_in_bytes). If the limit is below the guest's resident
// set, the hypervisor swaps: the guest is unaware and performance
// suffers (see SwapPressure).
func (d *Domain) SetMemoryLimit(mb float64) error {
	return d.setLimit(resources.Memory, mb)
}

// SetDiskLimit throttles disk bandwidth (blkio cgroup).
func (d *Domain) SetDiskLimit(mbps float64) error {
	return d.setLimit(resources.DiskBW, mbps)
}

// SetNetLimit throttles network bandwidth.
func (d *Domain) SetNetLimit(mbps float64) error {
	return d.setLimit(resources.NetBW, mbps)
}

// ClearTransparentLimits removes all cgroup caps (full reinflation of the
// transparent dimension).
func (d *Domain) ClearTransparentLimits() {
	for _, k := range resources.Kinds {
		d.cg.ClearLimit(k)
	}
	d.mu.Lock()
	d.allocValid = false
	d.mu.Unlock()
	d.host.invalidateAggregates()
}

// --- Explicit deflation knobs (agent-based hotplug, Section 4.3) ---

// HotUnplugVCPUs asks the guest to offline n vCPUs. Partial success is
// normal; the returned count is what the guest actually released.
func (d *Domain) HotUnplugVCPUs(n int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Running {
		return 0, fmt.Errorf("%w: %s not running", ErrState, d.cfg.Name)
	}
	n, err := d.guest.UnplugVCPUs(n)
	d.allocValid = false
	d.host.invalidateAggregates()
	return n, err
}

// HotPlugVCPUs asks the guest to online n vCPUs (bounded by the domain's
// configured vCPU count).
func (d *Domain) HotPlugVCPUs(n int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Running {
		return 0, fmt.Errorf("%w: %s not running", ErrState, d.cfg.Name)
	}
	n, err := d.guest.PlugVCPUs(n)
	d.allocValid = false
	d.host.invalidateAggregates()
	return n, err
}

// HotUnplugMemory asks the guest to release up to mb of memory. The guest
// enforces its safety threshold (never below RSS) and block granularity;
// the returned amount is what was actually unplugged.
func (d *Domain) HotUnplugMemory(mb float64) (float64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Running {
		return 0, fmt.Errorf("%w: %s not running", ErrState, d.cfg.Name)
	}
	mb, err := d.guest.UnplugMemory(mb)
	d.allocValid = false
	d.host.invalidateAggregates()
	return mb, err
}

// HotPlugMemory returns memory to the guest (bounded by the domain's
// configured size).
func (d *Domain) HotPlugMemory(mb float64) (float64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != Running {
		return 0, fmt.Errorf("%w: %s not running", ErrState, d.cfg.Name)
	}
	mb, err := d.guest.PlugMemory(mb)
	d.allocValid = false
	d.host.invalidateAggregates()
	return mb, err
}

// --- Performance-relevant introspection ---

// SwapPressure returns the fraction of the guest's resident set that the
// current *transparent* memory limit pushes out to hypervisor swap. This
// is the penalty transparent deflation pays that explicit deflation
// avoids (Section 4.4, Figure 14).
func (d *Domain) SwapPressure() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	limit, ok := d.cg.Limit(resources.Memory)
	if !ok {
		return 0
	}
	return d.guest.SwapPressure(limit)
}

// CacheLoss returns the fraction of guest page cache sacrificed to the
// current effective memory allocation.
func (d *Domain) CacheLoss() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	eff := d.allocationLocked()
	return d.guest.CacheLoss(eff.Get(resources.Memory))
}

// SetDeflatedBy records which mechanism last acted on the domain.
func (d *Domain) SetDeflatedBy(mechanism string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.deflatedBy = mechanism
}

// DeflatedBy returns the mechanism label recorded by SetDeflatedBy.
func (d *Domain) DeflatedBy() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.deflatedBy
}
