package hypervisor

import (
	"testing"

	"vmdeflate/internal/resources"
)

// TestSetCapacityResize: capacity moves, the base stays, and the
// mutation follows the dirty-flag discipline (aggregate-change callback
// fires, derived reads see the new capacity).
func TestSetCapacityResize(t *testing.T) {
	h := testHost(t)
	base := h.Capacity()
	if h.BaseCapacity() != base {
		t.Fatalf("BaseCapacity %v != initial Capacity %v", h.BaseCapacity(), base)
	}
	defineRunning(t, h, "vm1", 4, 8192)

	fires := 0
	h.OnAggregateChange(func() { fires++ })
	h.Aggregates() // clean cache, arm the edge

	shrunk := base.Scale(0.5)
	if err := h.SetCapacity(shrunk); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("SetCapacity fired %d callbacks, want 1", fires)
	}
	if h.Capacity() != shrunk {
		t.Fatalf("Capacity = %v after shrink, want %v", h.Capacity(), shrunk)
	}
	if h.BaseCapacity() != base {
		t.Fatalf("BaseCapacity changed to %v on resize", h.BaseCapacity())
	}
	// Available derives from the new capacity.
	wantAvail := shrunk.Sub(h.Allocated()).ClampNonNegative()
	if got := h.Available(); got != wantAvail {
		t.Fatalf("Available = %v, want %v", got, wantAvail)
	}

	// Restore to base.
	if err := h.SetCapacity(base); err != nil {
		t.Fatal(err)
	}
	if h.Capacity() != base {
		t.Fatalf("Capacity = %v after restore, want %v", h.Capacity(), base)
	}
}

// TestSetCapacityValidation rejects degenerate capacities without
// disturbing the current one.
func TestSetCapacityValidation(t *testing.T) {
	h := testHost(t)
	before := h.Capacity()
	if err := h.SetCapacity(resources.Vector{}); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if err := h.SetCapacity(resources.New(-1, 1024, 0, 0)); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if h.Capacity() != before {
		t.Fatalf("failed resize moved capacity to %v", h.Capacity())
	}
}
