// Package sim is a small deterministic discrete-event simulation kernel.
//
// It backs both the hypervisor substrate (which simulates KVM + cgroups
// behaviour over virtual time) and the trace-driven cluster simulator that
// reproduces the paper's Section 7.4 experiments. Events are ordered by
// virtual time with FIFO tie-breaking, so runs are reproducible given a
// seed.
package sim

import (
	"container/heap"
	"errors"
	"math/rand"
)

// Event is a callback scheduled at a virtual time.
type Event func(now float64)

type item struct {
	at   float64
	seq  uint64
	fn   Event
	dead bool
}

type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*item)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Handle allows a scheduled event to be cancelled.
type Handle struct{ it *item }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.it != nil {
		h.it.dead = true
	}
}

// ErrPast is returned when scheduling an event before the current time.
var ErrPast = errors.New("sim: event scheduled in the past")

// Engine drives a simulation. The zero value is not usable; call NewEngine.
type Engine struct {
	now   float64
	seq   uint64
	queue eventQueue
	rng   *rand.Rand
}

// NewEngine creates an engine whose random streams derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute virtual time t.
func (e *Engine) At(t float64, fn Event) (Handle, error) {
	if t < e.now {
		return Handle{}, ErrPast
	}
	it := &item{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, it)
	return Handle{it}, nil
}

// After schedules fn to run d time units from now.
func (e *Engine) After(d float64, fn Event) (Handle, error) {
	if d < 0 {
		return Handle{}, ErrPast
	}
	return e.At(e.now+d, fn)
}

// Pending returns the number of events still queued (including cancelled
// events not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// Step runs the single earliest event. It returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		it := heap.Pop(&e.queue).(*item)
		if it.dead {
			continue
		}
		e.now = it.at
		it.fn(e.now)
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
// Events scheduled after t remain queued.
func (e *Engine) RunUntil(t float64) {
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.dead {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Ticker invokes fn every interval until cancelled, starting at now+interval.
type Ticker struct {
	e        *Engine
	interval float64
	fn       Event
	stopped  bool
	handle   Handle
}

// NewTicker creates and starts a ticker on e.
func (e *Engine) NewTicker(interval float64, fn Event) *Ticker {
	t := &Ticker{e: e, interval: interval, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	h, err := t.e.After(t.interval, func(now float64) {
		if t.stopped {
			return
		}
		t.fn(now)
		if !t.stopped {
			t.schedule()
		}
	})
	if err == nil {
		t.handle = h
	}
}

// Stop cancels the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	t.handle.Cancel()
}
