package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i, at := range []float64{5, 1, 3, 2, 4} {
		i := i
		if _, err := e.At(at, func(float64) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	want := []int{1, 3, 2, 4, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 5 {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func(float64) { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestSchedulingInPast(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func(float64) {})
	e.Run()
	if _, err := e.At(5, func(float64) {}); err != ErrPast {
		t.Errorf("want ErrPast, got %v", err)
	}
	if _, err := e.After(-1, func(float64) {}); err != ErrPast {
		t.Errorf("After(-1) want ErrPast, got %v", err)
	}
}

func TestAfter(t *testing.T) {
	e := NewEngine(1)
	var at float64
	e.At(3, func(now float64) {
		e.After(4, func(now2 float64) { at = now2 })
	})
	e.Run()
	if at != 7 {
		t.Errorf("After fired at %v, want 7", at)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h, _ := e.At(1, func(float64) { fired = true })
	h.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	// Double-cancel and zero-handle cancel are no-ops.
	h.Cancel()
	(Handle{}).Cancel()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		e.At(at, func(now float64) { fired = append(fired, now) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(10)
	if len(fired) != 5 || e.Now() != 10 {
		t.Errorf("after second RunUntil: fired=%d now=%v", len(fired), e.Now())
	}
}

func TestRunUntilSkipsCancelled(t *testing.T) {
	e := NewEngine(1)
	h, _ := e.At(1, func(float64) { t.Error("cancelled fired") })
	h.Cancel()
	var ok bool
	e.At(2, func(float64) { ok = true })
	e.RunUntil(5)
	if !ok {
		t.Error("live event did not fire")
	}
}

func TestStepEmpty(t *testing.T) {
	e := NewEngine(1)
	if e.Step() {
		t.Error("Step on empty queue should return false")
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	var ticks []float64
	tk := e.NewTicker(2, func(now float64) {
		ticks = append(ticks, now)
		if now >= 6 {
			// Stop from inside the callback.
			return
		}
	})
	e.At(7, func(float64) { tk.Stop() })
	e.Run()
	want := []float64{2, 4, 6}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tk *Ticker
	tk = e.NewTicker(1, func(now float64) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine(42)
		var out []float64
		var spawn func(now float64)
		spawn = func(now float64) {
			out = append(out, now)
			if now < 100 {
				e.After(e.Rand().Float64()*10, spawn)
			}
		}
		e.At(0, spawn)
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: any multiset of event times is executed in sorted order.
func TestQuickSortedExecution(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine(1)
		var fired []float64
		for _, r := range raw {
			at := float64(r)
			e.At(at, func(now float64) { fired = append(fired, now) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
