package cgroups

import (
	"errors"
	"sync"
	"testing"

	"vmdeflate/internal/resources"
)

func TestHierarchyCreateLookupRemove(t *testing.T) {
	h := NewHierarchy()
	g, err := h.Create("machine/vm-1")
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "machine/vm-1" {
		t.Errorf("Name = %q", g.Name())
	}
	if _, err := h.Create("machine/vm-1"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create err = %v", err)
	}
	got, err := h.Lookup("machine/vm-1")
	if err != nil || got != g {
		t.Errorf("Lookup = %v, %v", got, err)
	}
	if _, err := h.Lookup("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing lookup err = %v", err)
	}
	if err := h.Remove("machine/vm-1"); err != nil {
		t.Fatal(err)
	}
	if err := h.Remove("machine/vm-1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove err = %v", err)
	}
}

func TestHierarchyNames(t *testing.T) {
	h := NewHierarchy()
	h.Create("b")
	h.Create("a")
	h.Create("c")
	names := h.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Errorf("Names = %v", names)
	}
	if h.Len() != 3 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestLimits(t *testing.T) {
	g := &Group{name: "vm"}
	if _, ok := g.Limit(resources.CPU); ok {
		t.Error("no limit should be engaged initially")
	}
	if err := g.SetLimit(resources.CPU, 2.5); err != nil {
		t.Fatal(err)
	}
	v, ok := g.Limit(resources.CPU)
	if !ok || v != 2.5 {
		t.Errorf("Limit = %v, %v", v, ok)
	}
	if err := g.SetLimit(resources.Memory, 0); !errors.Is(err, ErrInvalid) {
		t.Errorf("zero limit err = %v", err)
	}
	if err := g.SetLimit(resources.Memory, -1); !errors.Is(err, ErrInvalid) {
		t.Errorf("negative limit err = %v", err)
	}
	g.ClearLimit(resources.CPU)
	if _, ok := g.Limit(resources.CPU); ok {
		t.Error("ClearLimit did not disengage")
	}
}

func TestLimitsVector(t *testing.T) {
	g := &Group{name: "vm"}
	g.SetLimit(resources.CPU, 2)
	l := g.Limits()
	if l[resources.CPU] != 2 {
		t.Errorf("cpu limit = %v", l[resources.CPU])
	}
	for _, k := range []resources.Kind{resources.Memory, resources.DiskBW, resources.NetBW} {
		if l[k] != Unlimited {
			t.Errorf("%v should be Unlimited, got %v", k, l[k])
		}
	}
}

func TestEffective(t *testing.T) {
	g := &Group{name: "vm"}
	nominal := resources.New(8, 16384, 100, 1000)
	if got := g.Effective(nominal); got != nominal {
		t.Errorf("unengaged effective = %v", got)
	}
	g.SetLimit(resources.CPU, 4)
	g.SetLimit(resources.Memory, 8192)
	got := g.Effective(nominal)
	want := resources.New(4, 8192, 100, 1000)
	if got != want {
		t.Errorf("effective = %v, want %v", got, want)
	}
	// Limit above nominal does not inflate.
	g.SetLimit(resources.CPU, 100)
	if got := g.Effective(nominal); got.Get(resources.CPU) != 8 {
		t.Errorf("limit above nominal should not inflate: %v", got)
	}
}

func TestUsageAndThrottled(t *testing.T) {
	g := &Group{name: "vm"}
	g.SetLimit(resources.CPU, 4)
	g.ReportUsage(resources.New(3.96, 1000, 0, 0))
	th := g.Throttled()
	if !th[resources.CPU] {
		t.Error("usage at 99% of limit should be throttled")
	}
	if th[resources.Memory] {
		t.Error("memory has no engaged limit")
	}
	if got := g.Usage(); got.Get(resources.CPU) != 3.96 {
		t.Errorf("Usage = %v", got)
	}
	g.ReportUsage(resources.New(1, 1000, 0, 0))
	if g.Throttled()[resources.CPU] {
		t.Error("low usage should not be throttled")
	}
}

func TestConcurrentAccess(t *testing.T) {
	h := NewHierarchy()
	g, _ := h.Create("vm")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				g.SetLimit(resources.CPU, float64(i+1))
				g.Effective(resources.New(8, 8192, 0, 0))
				g.ReportUsage(resources.New(float64(j), 0, 0, 0))
				g.Limits()
				h.Names()
			}
		}(i)
	}
	wg.Wait()
	if v, ok := g.Limit(resources.CPU); !ok || v < 1 || v > 8 {
		t.Errorf("final limit = %v, %v", v, ok)
	}
}
