// Package cgroups models the Linux control-group controllers the paper's
// transparent deflation mechanisms are built on (Sections 4.2 and 6): CPU
// bandwidth control (cpu.shares / CFS quota), memory limits
// (memory.limit_in_bytes), block-I/O throttling, and network bandwidth
// limits. Each KVM domain runs inside one cgroup; setting a limit below
// the domain's nominal allocation is exactly "transparent deflation".
package cgroups

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"vmdeflate/internal/resources"
)

// Errors returned by the hierarchy.
var (
	ErrExists   = errors.New("cgroups: group already exists")
	ErrNotFound = errors.New("cgroups: group not found")
	ErrInvalid  = errors.New("cgroups: invalid limit")
)

// Unlimited marks a controller with no limit set.
const Unlimited = -1.0

// Group is one cgroup holding a single VM. Limits use the same units as
// resources.Vector: cores, MB, MB/s, Mbit/s. A negative limit means
// unlimited (the controller is not engaged).
type Group struct {
	name string

	mu     sync.Mutex
	limits resources.Vector
	set    [resources.NumKinds]bool

	// usage is the most recently reported consumption, for accounting.
	usage resources.Vector
}

// Name returns the group's path-like name.
func (g *Group) Name() string { return g.name }

// SetLimit engages the controller for kind k at the given value.
// A zero CPU or memory limit is rejected: freezing a VM entirely is
// preemption, not deflation.
func (g *Group) SetLimit(k resources.Kind, v float64) error {
	if v <= 0 {
		return fmt.Errorf("%w: %s=%g", ErrInvalid, k, v)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.limits[k] = v
	g.set[k] = true
	return nil
}

// ClearLimit disengages the controller for kind k.
func (g *Group) ClearLimit(k resources.Kind) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.limits[k] = 0
	g.set[k] = false
}

// Limit returns the limit for kind k and whether one is engaged.
func (g *Group) Limit(k resources.Kind) (float64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.limits[k], g.set[k]
}

// Limits returns the full limit vector with Unlimited for disengaged
// controllers.
func (g *Group) Limits() resources.Vector {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out resources.Vector
	for i := range out {
		if g.set[i] {
			out[i] = g.limits[i]
		} else {
			out[i] = Unlimited
		}
	}
	return out
}

// Effective caps nominal by every engaged limit: the resources actually
// available to the VM in the group.
func (g *Group) Effective(nominal resources.Vector) resources.Vector {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := nominal
	for i := range out {
		if g.set[i] && g.limits[i] < out[i] {
			out[i] = g.limits[i]
		}
	}
	return out
}

// ReportUsage records observed consumption for accounting.
func (g *Group) ReportUsage(u resources.Vector) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.usage = u
}

// Usage returns the last reported consumption.
func (g *Group) Usage() resources.Vector {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.usage
}

// Throttled reports, per resource, whether the last reported usage was
// clipped by an engaged limit (within 1%), i.e. the VM is actually
// feeling the deflation.
func (g *Group) Throttled() [resources.NumKinds]bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out [resources.NumKinds]bool
	for i := range out {
		out[i] = g.set[i] && g.usage[i] >= g.limits[i]*0.99
	}
	return out
}

// Hierarchy is a flat namespace of groups, one per VM, owned by a host.
type Hierarchy struct {
	mu     sync.Mutex
	groups map[string]*Group
}

// NewHierarchy creates an empty hierarchy.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{groups: make(map[string]*Group)}
}

// Create adds a group.
func (h *Hierarchy) Create(name string) (*Group, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.groups[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	g := &Group{name: name}
	h.groups[name] = g
	return g, nil
}

// Lookup finds a group by name.
func (h *Hierarchy) Lookup(name string) (*Group, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	g, ok := h.groups[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return g, nil
}

// Remove deletes a group.
func (h *Hierarchy) Remove(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.groups[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(h.groups, name)
	return nil
}

// Names returns all group names in sorted order.
func (h *Hierarchy) Names() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.groups))
	for n := range h.groups {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of groups.
func (h *Hierarchy) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.groups)
}
