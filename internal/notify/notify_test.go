package notify

import (
	"sync"
	"testing"

	"vmdeflate/internal/resources"
)

func TestSubscribePublishUnsubscribe(t *testing.T) {
	var b Bus
	var got []Event
	cancel := b.Subscribe(func(ev Event) { got = append(got, ev) })
	if b.Subscribers() != 1 {
		t.Errorf("subscribers = %d", b.Subscribers())
	}
	ev := Event{VM: "vm-1", Server: "n0", Kind: Deflated}
	b.Publish(ev)
	if len(got) != 1 || got[0].VM != "vm-1" {
		t.Fatalf("got = %v", got)
	}
	cancel()
	b.Publish(ev)
	if len(got) != 1 {
		t.Error("unsubscribed subscriber still received events")
	}
	if b.Delivered() != 1 {
		t.Errorf("delivered = %d", b.Delivered())
	}
	cancel() // double-cancel is a no-op
}

func TestMultipleSubscribers(t *testing.T) {
	var b Bus
	count := 0
	for i := 0; i < 3; i++ {
		b.Subscribe(func(Event) { count++ })
	}
	b.Publish(Event{})
	if count != 3 {
		t.Errorf("count = %d", count)
	}
	if b.Delivered() != 3 {
		t.Errorf("delivered = %d", b.Delivered())
	}
}

func TestClassify(t *testing.T) {
	full := resources.CPUMem(8, 16384)
	half := full.Scale(0.5)
	if Classify(full, half) != Deflated {
		t.Error("shrink should classify as Deflated")
	}
	if Classify(half, full) != Reinflated {
		t.Error("growth should classify as Reinflated")
	}
	// Mixed change (one dim down) counts as deflation.
	mixed := resources.CPUMem(16, 8192)
	if Classify(full, mixed) != Deflated {
		t.Error("mixed change with any shrink is Deflated")
	}
	if Deflated.String() != "deflated" || Reinflated.String() != "reinflated" {
		t.Error("kind names wrong")
	}
}

func TestConcurrentPublish(t *testing.T) {
	var b Bus
	var mu sync.Mutex
	n := 0
	b.Subscribe(func(Event) { mu.Lock(); n++; mu.Unlock() })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Publish(Event{})
			}
		}()
	}
	wg.Wait()
	if n != 800 {
		t.Errorf("n = %d", n)
	}
}
