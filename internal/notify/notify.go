// Package notify implements the deflation-notification channel of
// Figure 1: "the hypervisor also sends notifications to the application
// manager (such as a load balancer), which can help applications respond
// to deflation." Subscribers (a deflation-aware load balancer, an
// application autoscaler, a metrics pipeline) receive an event whenever
// a VM's allocation changes.
package notify

import (
	"sync"

	"vmdeflate/internal/resources"
)

// EventKind distinguishes deflation from reinflation.
type EventKind int

const (
	// Deflated means the VM's allocation decreased.
	Deflated EventKind = iota
	// Reinflated means the VM's allocation increased.
	Reinflated
)

// String names the event kind.
func (k EventKind) String() string {
	if k == Deflated {
		return "deflated"
	}
	return "reinflated"
}

// Event describes one allocation change.
type Event struct {
	// VM is the domain name; Server the hosting server.
	VM, Server string
	Kind       EventKind
	// Old and New are the allocations before and after.
	Old, New resources.Vector
	// DeflationFraction is the VM's overall deflation after the change
	// (0 = full size).
	DeflationFraction float64
	// Mechanism is the mechanism label ("transparent", "hybrid", ...).
	Mechanism string
}

// Subscriber receives events. Implementations must not block for long;
// the bus delivers synchronously in subscription order.
type Subscriber func(Event)

// Bus fans events out to subscribers. The zero value is ready to use.
type Bus struct {
	mu   sync.RWMutex
	subs map[int]Subscriber
	next int

	// Delivered counts events fanned out (for tests/metrics).
	delivered int
}

// Subscribe registers fn and returns an unsubscribe function.
func (b *Bus) Subscribe(fn Subscriber) (cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.subs == nil {
		b.subs = make(map[int]Subscriber)
	}
	id := b.next
	b.next++
	b.subs[id] = fn
	return func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		delete(b.subs, id)
	}
}

// Publish fans ev out to all subscribers.
func (b *Bus) Publish(ev Event) {
	b.mu.RLock()
	subs := make([]Subscriber, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.mu.RUnlock()
	for _, s := range subs {
		s(ev)
	}
	b.mu.Lock()
	b.delivered += len(subs)
	b.mu.Unlock()
}

// Delivered returns the number of subscriber deliveries so far.
func (b *Bus) Delivered() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.delivered
}

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}

// Classify derives the event kind from an allocation change: any
// dimension shrinking means Deflated; otherwise Reinflated.
func Classify(old, new resources.Vector) EventKind {
	for _, k := range resources.Kinds {
		if new.Get(k) < old.Get(k)-1e-9 {
			return Deflated
		}
	}
	return Reinflated
}
