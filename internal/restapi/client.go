package restapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// NodeClient talks to one noded instance.
type NodeClient struct {
	// BaseURL is the node's address, e.g. "http://10.0.0.5:8700".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *NodeClient) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError converts a non-2xx response into an error.
type apiError struct {
	Status  int
	Message string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("restapi: HTTP %d: %s", e.Status, e.Message)
}

// IsConflict reports whether err is a 409 (insufficient resources).
func IsConflict(err error) bool {
	ae, ok := err.(*apiError)
	return ok && ae.Status == http.StatusConflict
}

func (c *NodeClient) do(method, path string, in, out any) error {
	var body *bytes.Buffer = bytes.NewBuffer(nil)
	if in != nil {
		if err := json.NewEncoder(body).Encode(in); err != nil {
			return err
		}
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var er ErrorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		return &apiError{Status: resp.StatusCode, Message: er.Error}
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Status fetches the node's resource state.
func (c *NodeClient) Status() (NodeStatus, error) {
	var st NodeStatus
	err := c.do(http.MethodGet, "/v1/status", nil, &st)
	return st, err
}

// ListVMs fetches all VMs on the node.
func (c *NodeClient) ListVMs() ([]VMStatus, error) {
	var out []VMStatus
	err := c.do(http.MethodGet, "/v1/vms", nil, &out)
	return out, err
}

// PlaceVM asks the node to host spec.
func (c *NodeClient) PlaceVM(spec VMSpec) (PlaceResponse, error) {
	var out PlaceResponse
	err := c.do(http.MethodPost, "/v1/vms", spec, &out)
	return out, err
}

// GetVM fetches one VM.
func (c *NodeClient) GetVM(name string) (VMStatus, error) {
	var out VMStatus
	err := c.do(http.MethodGet, "/v1/vms/"+name, nil, &out)
	return out, err
}

// RemoveVM deletes one VM (the node reinflates survivors).
func (c *NodeClient) RemoveVM(name string) error {
	return c.do(http.MethodDelete, "/v1/vms/"+name, nil, nil)
}

// DeflateVM retargets one VM's allocation.
func (c *NodeClient) DeflateVM(name string, req DeflateRequest) (VMStatus, error) {
	var out VMStatus
	err := c.do(http.MethodPost, "/v1/vms/"+name+"/deflate", req, &out)
	return out, err
}

// CentralManager is the distributed counterpart of cluster.Manager: it
// ranks remote nodes by placement fitness from their reported status and
// delegates the placement decision to the chosen node's local
// controller, trying the next-best node on rejection.
type CentralManager struct {
	mu         sync.Mutex
	nodes      map[string]*NodeClient
	placements map[string]string // vm -> node name

	// Rejections counts placements no node could satisfy.
	Rejections int
}

// NewCentralManager creates an empty manager.
func NewCentralManager() *CentralManager {
	return &CentralManager{
		nodes:      make(map[string]*NodeClient),
		placements: make(map[string]string),
	}
}

// AddNode registers a node by name and base URL.
func (m *CentralManager) AddNode(name, baseURL string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[name] = &NodeClient{BaseURL: baseURL}
}

// Nodes returns the registered node names, sorted.
func (m *CentralManager) Nodes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.nodes))
	for n := range m.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PlaceVM runs distributed three-step placement.
func (m *CentralManager) PlaceVM(spec VMSpec) (PlaceResponse, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.placements[spec.Name]; ok {
		return PlaceResponse{}, fmt.Errorf("restapi: VM %s already placed", spec.Name)
	}

	// Mirror cluster.Manager's two-phase placement: surplus-first
	// (tightest fit among nodes with free room, no deflation), then
	// deflation-aware availability ranking under pressure.
	type cand struct {
		name    string
		client  *NodeClient
		fitness float64
		surplus bool
		left    float64
	}
	var cands []cand
	for name, nc := range m.nodes {
		st, err := nc.Status()
		if err != nil {
			continue // unreachable node: skip
		}
		free := st.Capacity.Sub(st.Allocated).ClampNonNegative()
		c := cand{name: name, client: nc}
		if spec.Size.FitsIn(free) {
			c.surplus = true
			c.left = free.Sub(spec.Size).DominantShare(st.Capacity)
		}
		avail := st.Availability()
		nd := spec.Size.Norm()
		if nd < 1e-9 {
			nd = 1e-9
		}
		c.fitness = avail.Dot(spec.Size) / nd
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.surplus != b.surplus {
			return a.surplus
		}
		if a.surplus {
			if a.left != b.left {
				return a.left < b.left // tightest fit first
			}
		} else if a.fitness != b.fitness {
			return a.fitness > b.fitness
		}
		return a.name < b.name
	})

	for _, c := range cands {
		resp, err := c.client.PlaceVM(spec)
		if err == nil {
			m.placements[spec.Name] = c.name
			return resp, nil
		}
		if !IsConflict(err) {
			return PlaceResponse{}, err
		}
	}
	m.Rejections++
	return PlaceResponse{}, fmt.Errorf("restapi: no node can host VM %s", spec.Name)
}

// RemoveVM removes a VM from whichever node hosts it.
func (m *CentralManager) RemoveVM(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	node, ok := m.placements[name]
	if !ok {
		return fmt.Errorf("restapi: VM %s not placed", name)
	}
	if err := m.nodes[node].RemoveVM(name); err != nil {
		return err
	}
	delete(m.placements, name)
	return nil
}

// LookupVM returns the status of a placed VM.
func (m *CentralManager) LookupVM(name string) (VMStatus, error) {
	m.mu.Lock()
	node, ok := m.placements[name]
	nc := m.nodes[node]
	m.mu.Unlock()
	if !ok {
		return VMStatus{}, fmt.Errorf("restapi: VM %s not placed", name)
	}
	return nc.GetVM(name)
}
