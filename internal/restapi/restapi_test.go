package restapi

import (
	"net/http/httptest"
	"strings"
	"testing"

	"vmdeflate/internal/cluster"
	"vmdeflate/internal/resources"
)

func newTestNode(t *testing.T, name string) (*NodeServer, *httptest.Server) {
	t.Helper()
	ns, err := NewNodeServer(name, resources.New(48, 131072, 1000, 10000), cluster.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ns)
	t.Cleanup(srv.Close)
	return ns, srv
}

func spec(name string, cores, memMB float64, deflatable bool) VMSpec {
	return VMSpec{
		Name:       name,
		Size:       resources.CPUMem(cores, memMB),
		Deflatable: deflatable,
		Priority:   0.5,
	}
}

func TestNodeStatusEmpty(t *testing.T) {
	_, srv := newTestNode(t, "n0")
	nc := &NodeClient{BaseURL: srv.URL}
	st, err := nc.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "n0" || st.VMs != 0 {
		t.Errorf("status = %+v", st)
	}
	if st.Capacity.Get(resources.CPU) != 48 {
		t.Errorf("capacity = %v", st.Capacity)
	}
	if st.Availability() != st.Capacity {
		t.Errorf("availability = %v", st.Availability())
	}
}

func TestPlaceGetListRemove(t *testing.T) {
	_, srv := newTestNode(t, "n0")
	nc := &NodeClient{BaseURL: srv.URL}

	resp, err := nc.PlaceVM(spec("vm-1", 8, 16384, true))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Node != "n0" || resp.VM.Name != "vm-1" || resp.Deflations != 0 {
		t.Errorf("place response = %+v", resp)
	}
	if resp.VM.State != "running" {
		t.Errorf("state = %q", resp.VM.State)
	}

	got, err := nc.GetVM("vm-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Allocation != resources.CPUMem(8, 16384) {
		t.Errorf("allocation = %v", got.Allocation)
	}

	vms, err := nc.ListVMs()
	if err != nil || len(vms) != 1 {
		t.Fatalf("list = %v, %v", vms, err)
	}

	if err := nc.RemoveVM("vm-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := nc.GetVM("vm-1"); err == nil {
		t.Error("removed VM should 404")
	}
	if err := nc.RemoveVM("vm-1"); err == nil {
		t.Error("double remove should fail")
	}
}

func TestPlaceDeflatesResidents(t *testing.T) {
	_, srv := newTestNode(t, "n0")
	nc := &NodeClient{BaseURL: srv.URL}
	if _, err := nc.PlaceVM(spec("low", 40, 65536, true)); err != nil {
		t.Fatal(err)
	}
	resp, err := nc.PlaceVM(spec("od", 16, 32768, false))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Deflations != 1 {
		t.Errorf("deflations = %d, want 1", resp.Deflations)
	}
	low, err := nc.GetVM("low")
	if err != nil {
		t.Fatal(err)
	}
	if low.Allocation.Get(resources.CPU) > 32.001 {
		t.Errorf("low allocation = %v, want <= 32", low.Allocation)
	}
	// Removing the on-demand VM reinflates low.
	if err := nc.RemoveVM("od"); err != nil {
		t.Fatal(err)
	}
	low, _ = nc.GetVM("low")
	if low.Allocation.Get(resources.CPU) < 39.999 {
		t.Errorf("low should reinflate: %v", low.Allocation)
	}
}

func TestPlaceConflict(t *testing.T) {
	_, srv := newTestNode(t, "n0")
	nc := &NodeClient{BaseURL: srv.URL}
	if _, err := nc.PlaceVM(spec("od-1", 48, 131072, false)); err != nil {
		t.Fatal(err)
	}
	_, err := nc.PlaceVM(spec("od-2", 8, 8192, false))
	if err == nil || !IsConflict(err) {
		t.Errorf("want conflict, got %v", err)
	}
	// Bad spec -> 400, not conflict.
	_, err = nc.PlaceVM(VMSpec{Name: "bad", Size: resources.CPUMem(0, 0)})
	if err == nil || IsConflict(err) {
		t.Errorf("want bad request, got %v", err)
	}
}

func TestExplicitDeflateEndpoint(t *testing.T) {
	_, srv := newTestNode(t, "n0")
	nc := &NodeClient{BaseURL: srv.URL}
	if _, err := nc.PlaceVM(spec("vm", 8, 16384, true)); err != nil {
		t.Fatal(err)
	}
	got, err := nc.DeflateVM("vm", DeflateRequest{Target: resources.CPUMem(4, 8192)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Allocation.Get(resources.CPU) != 4 {
		t.Errorf("allocation = %v", got.Allocation)
	}
	if got.DeflatedBy == "" {
		t.Error("deflated_by should be set")
	}
	if _, err := nc.DeflateVM("ghost", DeflateRequest{Target: resources.CPUMem(1, 1024)}); err == nil {
		t.Error("deflating unknown VM should fail")
	}
}

func TestBadRoutes(t *testing.T) {
	_, srv := newTestNode(t, "n0")
	nc := &NodeClient{BaseURL: srv.URL}
	if err := nc.do("GET", "/v1/bogus", nil, nil); err == nil {
		t.Error("bogus route should 404")
	}
	if err := nc.do("PUT", "/v1/vms/x", nil, nil); err == nil {
		t.Error("bad method should fail")
	}
}

func TestCentralManagerDistributedPlacement(t *testing.T) {
	cm := NewCentralManager()
	for _, n := range []string{"n0", "n1"} {
		_, srv := newTestNode(t, n)
		cm.AddNode(n, srv.URL)
	}
	if len(cm.Nodes()) != 2 {
		t.Fatalf("nodes = %v", cm.Nodes())
	}
	// Two large VMs spread across the two nodes.
	r1, err := cm.PlaceVM(spec("vm-1", 40, 65536, true))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cm.PlaceVM(spec("vm-2", 40, 65536, true))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Node == r2.Node {
		t.Errorf("expected spread, both on %s", r1.Node)
	}
	// Duplicate placement rejected centrally.
	if _, err := cm.PlaceVM(spec("vm-1", 1, 1024, true)); err == nil {
		t.Error("duplicate placement should fail")
	}
	// Lookup routes through the right node.
	st, err := cm.LookupVM("vm-1")
	if err != nil || st.Name != "vm-1" {
		t.Errorf("lookup = %+v, %v", st, err)
	}
	if err := cm.RemoveVM("vm-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := cm.LookupVM("vm-1"); err == nil {
		t.Error("lookup after remove should fail")
	}
	if err := cm.RemoveVM("ghost"); err == nil {
		t.Error("removing unplaced VM should fail")
	}
}

func TestCentralManagerFailover(t *testing.T) {
	cm := NewCentralManager()
	ns0, srv0 := newTestNode(t, "n0")
	_, srv1 := newTestNode(t, "n1")
	cm.AddNode("n0", srv0.URL)
	cm.AddNode("n1", srv1.URL)
	// Fill n0 completely with a non-deflatable VM placed directly.
	nc0 := &NodeClient{BaseURL: srv0.URL}
	if _, err := nc0.PlaceVM(spec("filler", 48, 131072, false)); err != nil {
		t.Fatal(err)
	}
	_ = ns0
	// Central placement must fail over to n1.
	resp, err := cm.PlaceVM(spec("vm", 40, 65536, false))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Node != "n1" {
		t.Errorf("placed on %s, want n1", resp.Node)
	}
	// A second huge on-demand VM fits nowhere.
	if _, err := cm.PlaceVM(spec("vm-2", 40, 65536, false)); err == nil {
		t.Error("cluster-full placement should fail")
	}
	if cm.Rejections != 1 {
		t.Errorf("rejections = %d", cm.Rejections)
	}
}

func TestCentralManagerSkipsDeadNodes(t *testing.T) {
	cm := NewCentralManager()
	_, srv := newTestNode(t, "live")
	cm.AddNode("live", srv.URL)
	cm.AddNode("dead", "http://127.0.0.1:1") // nothing listens here
	resp, err := cm.PlaceVM(spec("vm", 4, 8192, true))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Node != "live" {
		t.Errorf("placed on %s", resp.Node)
	}
}

func TestAvailabilityDiscountsOvercommit(t *testing.T) {
	st := NodeStatus{
		Capacity:   resources.CPUMem(48, 131072),
		Allocated:  resources.CPUMem(48, 131072),
		Deflatable: resources.CPUMem(24, 65536),
		Overcommit: 1.0,
	}
	got := st.Availability()
	// free = 0, deflatable discounted by 1/(1+1) = half.
	if got.Get(resources.CPU) != 12 {
		t.Errorf("availability cpu = %v, want 12", got.Get(resources.CPU))
	}
}

func TestErrorStringsAreInformative(t *testing.T) {
	err := &apiError{Status: 409, Message: "insufficient"}
	if !strings.Contains(err.Error(), "409") || !strings.Contains(err.Error(), "insufficient") {
		t.Errorf("error = %q", err.Error())
	}
}
