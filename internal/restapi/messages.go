// Package restapi is the JSON-over-HTTP control plane of Section 6: a
// centralized cluster manager (cmd/clusterd) speaks to per-server local
// deflation controllers (cmd/noded). The wire protocol carries the
// three-step placement: the manager ranks servers by fitness from their
// reported status, asks the best server to host the VM, and the server
// either deflates residents to make room or rejects, in which case the
// manager tries the next server.
package restapi

import "vmdeflate/internal/resources"

// VMSpec describes a VM over the wire (mirrors hypervisor.DomainConfig).
type VMSpec struct {
	Name          string           `json:"name"`
	Size          resources.Vector `json:"size"`
	Deflatable    bool             `json:"deflatable"`
	Priority      float64          `json:"priority"`
	MinAllocation resources.Vector `json:"min_allocation"`
}

// VMStatus reports one VM's current state.
type VMStatus struct {
	Name       string           `json:"name"`
	Size       resources.Vector `json:"size"`
	Allocation resources.Vector `json:"allocation"`
	Deflatable bool             `json:"deflatable"`
	Priority   float64          `json:"priority"`
	State      string           `json:"state"`
	DeflatedBy string           `json:"deflated_by,omitempty"`
}

// NodeStatus reports one server's resource state; the manager derives
// placement fitness from it.
type NodeStatus struct {
	Name      string           `json:"name"`
	Capacity  resources.Vector `json:"capacity"`
	Allocated resources.Vector `json:"allocated"`
	Committed resources.Vector `json:"committed"`
	// Deflatable is the total resource reclaimable from deflatable VMs.
	Deflatable resources.Vector `json:"deflatable"`
	// Overcommit is the server's current overcommitment fraction.
	Overcommit float64 `json:"overcommit"`
	VMs        int     `json:"vms"`
}

// Availability computes the placement availability vector from a
// reported status (same formula as cluster.Availability).
func (s NodeStatus) Availability() resources.Vector {
	return s.Capacity.Sub(s.Allocated).
		Add(s.Deflatable.Scale(1 / (1 + s.Overcommit))).
		ClampNonNegative()
}

// PlaceResponse acknowledges a placement.
type PlaceResponse struct {
	VM   VMStatus `json:"vm"`
	Node string   `json:"node"`
	// Deflations is how many resident VMs were deflated to make room.
	Deflations int `json:"deflations"`
}

// DeflateRequest asks a node to retarget one VM's allocation directly
// (used by operators and tests; cluster placement does this internally).
type DeflateRequest struct {
	Target resources.Vector `json:"target"`
}

// ErrorResponse carries an error over the wire.
type ErrorResponse struct {
	Error string `json:"error"`
}
