package restapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"

	"vmdeflate/internal/cluster"
	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/resources"
)

// NodeServer is the per-server local deflation controller (Section 6):
// it owns one hypervisor host, computes local deflation with the
// configured policy, and exposes the control API consumed by the
// central manager.
//
// Routes:
//
//	GET    /v1/status        -> NodeStatus
//	GET    /v1/vms           -> []VMStatus
//	POST   /v1/vms           (VMSpec) -> PlaceResponse | 409
//	GET    /v1/vms/{name}    -> VMStatus
//	DELETE /v1/vms/{name}    -> 204 (reinflates survivors)
//	POST   /v1/vms/{name}/deflate (DeflateRequest) -> VMStatus
type NodeServer struct {
	mu     sync.Mutex
	server *cluster.Server
	cfg    cluster.Config
}

// NewNodeServer creates a local controller for a host with the given
// capacity.
func NewNodeServer(name string, capacity resources.Vector, cfg cluster.Config) (*NodeServer, error) {
	h, err := hypervisor.NewHost(hypervisor.HostConfig{Name: name, Capacity: capacity})
	if err != nil {
		return nil, err
	}
	return &NodeServer{server: &cluster.Server{Host: h, Partition: -1}, cfg: cfg.WithDefaults()}, nil
}

// Host exposes the underlying hypervisor host (for tests).
func (n *NodeServer) Host() *hypervisor.Host { return n.server.Host }

// Status snapshots the node.
func (n *NodeServer) Status() NodeStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	h := n.server.Host
	var deflatable resources.Vector
	vms := 0
	for _, d := range h.Domains() {
		if d.State() != hypervisor.Running {
			continue
		}
		vms++
		if d.Deflatable() {
			deflatable = deflatable.Add(d.Allocation().Sub(d.MinAllocation()).ClampNonNegative())
		}
	}
	return NodeStatus{
		Name:       h.Name(),
		Capacity:   h.Capacity(),
		Allocated:  h.Allocated(),
		Committed:  h.Committed(),
		Deflatable: deflatable,
		Overcommit: h.Overcommit(),
		VMs:        vms,
	}
}

func vmStatusOf(d *hypervisor.Domain) VMStatus {
	return VMStatus{
		Name:       d.Name(),
		Size:       d.MaxSize(),
		Allocation: d.Allocation(),
		Deflatable: d.Deflatable(),
		Priority:   d.Priority(),
		State:      d.State().String(),
		DeflatedBy: d.DeflatedBy(),
	}
}

// ServeHTTP implements http.Handler.
func (n *NodeServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/v1/")
	switch {
	case path == "status" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, n.Status())
	case path == "vms" && r.Method == http.MethodGet:
		n.handleList(w)
	case path == "vms" && r.Method == http.MethodPost:
		n.handlePlace(w, r)
	case strings.HasPrefix(path, "vms/"):
		rest := strings.TrimPrefix(path, "vms/")
		if strings.HasSuffix(rest, "/deflate") && r.Method == http.MethodPost {
			n.handleDeflate(w, r, strings.TrimSuffix(rest, "/deflate"))
			return
		}
		switch r.Method {
		case http.MethodGet:
			n.handleGet(w, rest)
		case http.MethodDelete:
			n.handleDelete(w, rest)
		default:
			writeError(w, http.StatusMethodNotAllowed, errors.New("method not allowed"))
		}
	default:
		writeError(w, http.StatusNotFound, errors.New("no such route"))
	}
}

func (n *NodeServer) handleList(w http.ResponseWriter) {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []VMStatus
	for _, d := range n.server.Host.Domains() {
		out = append(out, vmStatusOf(d))
	}
	writeJSON(w, http.StatusOK, out)
}

func (n *NodeServer) handlePlace(w http.ResponseWriter, r *http.Request) {
	var spec VMSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	d, deflations, err := cluster.PlaceOn(n.server, n.cfg, hypervisor.DomainConfig{
		Name:          spec.Name,
		Size:          spec.Size,
		Deflatable:    spec.Deflatable,
		Priority:      spec.Priority,
		MinAllocation: spec.MinAllocation,
	})
	if err != nil {
		status := http.StatusConflict // insufficient resources
		if errors.Is(err, hypervisor.ErrExists) || errors.Is(err, hypervisor.ErrInvalid) {
			status = http.StatusBadRequest
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, PlaceResponse{
		VM:         vmStatusOf(d),
		Node:       n.server.Host.Name(),
		Deflations: deflations,
	})
}

func (n *NodeServer) handleGet(w http.ResponseWriter, name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	d, err := n.server.Host.Lookup(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, vmStatusOf(d))
}

func (n *NodeServer) handleDelete(w http.ResponseWriter, name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h := n.server.Host
	d, err := h.Lookup(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if d.State() == hypervisor.Running {
		if err := d.Shutdown(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	if err := h.Undefine(name); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if err := cluster.Reinflate(n.server, n.cfg); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (n *NodeServer) handleDeflate(w http.ResponseWriter, r *http.Request, name string) {
	var req DeflateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	d, err := n.server.Host.Lookup(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if _, err := n.cfg.Mechanism.Apply(d, req.Target); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, vmStatusOf(d))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
