package queueing

import (
	"math"
	"testing"

	"vmdeflate/internal/sim"
	"vmdeflate/internal/stats"
)

func TestSingleJobRunsAtPerJobCap(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewPSStation(eng, 8)
	var doneAt float64
	eng.At(0, func(float64) {
		s.Submit(2.0, func(now float64) { doneAt = now })
	})
	eng.Run()
	// One job capped at 1 core: 2 core-seconds takes 2 seconds.
	if math.Abs(doneAt-2) > 1e-9 {
		t.Errorf("doneAt = %v, want 2", doneAt)
	}
	if s.Completed != 1 {
		t.Errorf("Completed = %d", s.Completed)
	}
}

func TestTwoJobsShareWhenCapacityBinds(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewPSStation(eng, 1) // single core
	var d1, d2 float64
	eng.At(0, func(float64) {
		s.Submit(1.0, func(now float64) { d1 = now })
		s.Submit(1.0, func(now float64) { d2 = now })
	})
	eng.Run()
	// Equal sharing of 1 core: both finish at t=2.
	if math.Abs(d1-2) > 1e-9 || math.Abs(d2-2) > 1e-9 {
		t.Errorf("departures = %v, %v; want 2, 2", d1, d2)
	}
}

func TestUnequalJobsDepartInWorkOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewPSStation(eng, 1)
	var dShort, dLong float64
	eng.At(0, func(float64) {
		s.Submit(1.0, func(now float64) { dShort = now })
		s.Submit(3.0, func(now float64) { dLong = now })
	})
	eng.Run()
	// Shared until short departs: short gets 1 unit of service at rate
	// 1/2 -> departs at t=2. Long then has 2 units left at rate 1 ->
	// departs at t=4.
	if math.Abs(dShort-2) > 1e-9 {
		t.Errorf("short departed at %v, want 2", dShort)
	}
	if math.Abs(dLong-4) > 1e-9 {
		t.Errorf("long departed at %v, want 4", dLong)
	}
}

func TestAmpleCapacityNoQueueing(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewPSStation(eng, 100)
	times := make([]float64, 0, 3)
	eng.At(0, func(float64) {
		for i := 0; i < 3; i++ {
			s.Submit(1.5, func(now float64) { times = append(times, now) })
		}
	})
	eng.Run()
	for _, d := range times {
		if math.Abs(d-1.5) > 1e-9 {
			t.Errorf("with ample capacity every job takes its own work time: %v", times)
		}
	}
}

func TestLateArrival(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewPSStation(eng, 1)
	var d1, d2 float64
	eng.At(0, func(float64) {
		s.Submit(2.0, func(now float64) { d1 = now })
	})
	eng.At(1, func(float64) {
		s.Submit(0.5, func(now float64) { d2 = now })
	})
	eng.Run()
	// Job1 alone until t=1 (1 unit done). Then shared: job2 needs 0.5 at
	// rate 0.5 -> departs t=2; job1 has 0.5 left after sharing (0.5 done
	// in [1,2]), runs alone at rate 1 -> departs t=2.5.
	if math.Abs(d2-2) > 1e-9 {
		t.Errorf("d2 = %v, want 2", d2)
	}
	if math.Abs(d1-2.5) > 1e-9 {
		t.Errorf("d1 = %v, want 2.5", d1)
	}
}

func TestCancel(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewPSStation(eng, 1)
	var d1 float64
	fired := false
	eng.At(0, func(float64) {
		s.Submit(2.0, func(now float64) { d1 = now })
		j2 := s.Submit(2.0, func(now float64) { fired = true })
		eng.At(1, func(float64) {
			if !s.Cancel(j2) {
				t.Error("cancel should succeed")
			}
		})
	})
	eng.Run()
	if fired {
		t.Error("cancelled job must not complete")
	}
	// Job1: rate 1/2 in [0,1] (0.5 done), rate 1 after -> departs 2.5.
	if math.Abs(d1-2.5) > 1e-9 {
		t.Errorf("d1 = %v, want 2.5", d1)
	}
	if s.Cancelled != 1 || s.Completed != 1 {
		t.Errorf("counters = %d cancelled, %d completed", s.Cancelled, s.Completed)
	}
}

func TestCancelCompletedIsNoOp(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewPSStation(eng, 1)
	var j *Job
	eng.At(0, func(float64) { j = s.Submit(1, nil) })
	eng.Run()
	if s.Cancel(j) {
		t.Error("cancelling a completed job should return false")
	}
	if s.Cancel(nil) {
		t.Error("cancelling nil should return false")
	}
}

func TestSetCapacityMidService(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewPSStation(eng, 2)
	var d1, d2 float64
	eng.At(0, func(float64) {
		s.Submit(2.0, func(now float64) { d1 = now })
		s.Submit(2.0, func(now float64) { d2 = now })
	})
	// Deflate to half capacity at t=1.
	eng.At(1, func(float64) { s.SetCapacity(1) })
	eng.Run()
	// [0,1]: each at rate 1 (capacity 2, 2 jobs): 1 unit done each.
	// After: each at rate 0.5, 1 unit left -> 2 more seconds -> t=3.
	if math.Abs(d1-3) > 1e-9 || math.Abs(d2-3) > 1e-9 {
		t.Errorf("departures = %v, %v; want 3, 3", d1, d2)
	}
}

func TestZeroCapacityStarves(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewPSStation(eng, 1)
	done := false
	eng.At(0, func(float64) {
		s.Submit(1.0, func(now float64) { done = true })
	})
	eng.At(0.5, func(float64) { s.SetCapacity(0) })
	eng.At(10, func(float64) { s.SetCapacity(1) })
	eng.Run()
	if !done {
		t.Fatal("job should complete after capacity returns")
	}
	// 0.5 done before starvation, 0.5 after t=10 -> departs 10.5.
	if eng.Now() < 10.5-1e-9 {
		t.Errorf("final time = %v, want >= 10.5", eng.Now())
	}
}

func TestPerJobCap(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewPSStation(eng, 8)
	if err := s.SetPerJobCap(2); err != nil { // multi-threaded handler can use 2 cores
		t.Fatal(err)
	}
	var d float64
	eng.At(0, func(float64) {
		s.Submit(4.0, func(now float64) { d = now })
	})
	eng.Run()
	if math.Abs(d-2) > 1e-9 {
		t.Errorf("departed at %v, want 2 (4 core-sec at 2 cores)", d)
	}
}

func TestInFlightAndUtilization(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewPSStation(eng, 4)
	eng.At(0, func(float64) {
		for i := 0; i < 2; i++ {
			s.Submit(10, nil)
		}
		if s.InFlight() != 2 {
			t.Errorf("InFlight = %d", s.InFlight())
		}
		if got := s.Utilization(); math.Abs(got-0.5) > 1e-9 {
			t.Errorf("Utilization = %v, want 0.5", got)
		}
	})
	eng.RunUntil(1)
	s2 := NewPSStation(eng, 0)
	if s2.Utilization() != 0 {
		t.Error("empty zero-capacity station utilization should be 0")
	}
}

// M/M/1-PS sanity: mean sojourn time should match S/(1-rho) within
// simulation noise.
func TestMM1PSMeanSojourn(t *testing.T) {
	eng := sim.NewEngine(42)
	s := NewPSStation(eng, 1)
	const (
		lambda = 0.7
		meanS  = 1.0
	)
	var sojourns []float64
	var arrive func(now float64)
	n := 0
	arrive = func(now float64) {
		if n >= 100000 {
			return
		}
		n++
		start := now
		work := eng.Rand().ExpFloat64() * meanS
		s.Submit(work, func(done float64) {
			sojourns = append(sojourns, done-start)
		})
		eng.After(eng.Rand().ExpFloat64()/lambda, arrive)
	}
	eng.At(0, arrive)
	eng.Run()
	mean := stats.Mean(sojourns)
	want := meanS / (1 - lambda) // PS: insensitive to service distribution
	if math.Abs(mean-want)/want > 0.08 {
		t.Errorf("M/M/1-PS mean sojourn = %v, want %v (±8%%)", mean, want)
	}
}

// Work conservation: total work submitted equals capacity integrated
// over busy time for a single saturated station.
func TestWorkConservation(t *testing.T) {
	eng := sim.NewEngine(7)
	s := NewPSStation(eng, 2)
	if err := s.SetPerJobCap(2); err != nil {
		t.Fatal(err)
	}
	totalWork := 0.0
	eng.At(0, func(float64) {
		for i := 0; i < 50; i++ {
			w := 0.1 + eng.Rand().Float64()
			totalWork += w
			s.Submit(w, nil)
		}
	})
	eng.Run()
	// Saturated the whole run at capacity 2: finish time = work/2.
	want := totalWork / 2
	if math.Abs(eng.Now()-want)/want > 1e-6 {
		t.Errorf("makespan = %v, want %v", eng.Now(), want)
	}
	if s.Completed != 50 {
		t.Errorf("Completed = %d", s.Completed)
	}
}
