// Package queueing provides the processor-sharing queueing station that
// the testbed application models (Wikipedia, DeathStarBench social
// network, HAProxy replicas) are built from. A PSStation models a
// (possibly deflated) VM or container CPU: in-flight requests share the
// station's capacity equally, each capped at one core (a web request is
// single-threaded), which is exactly how cgroup CPU bandwidth control
// degrades a deflated VM.
//
// The implementation uses the classic virtual-time construction for
// egalitarian processor sharing, so arrivals, departures, cancellations
// (request timeouts) and capacity changes (deflation events) are all
// O(log n) without per-tick scanning.
package queueing

import (
	"fmt"
	"math"

	"container/heap"

	"vmdeflate/internal/sim"
)

// Job is one request in service at a station.
type Job struct {
	id      uint64
	work    float64 // seconds of CPU demand at rate 1
	vFinish float64 // virtual time at which service completes
	arrived float64
	onDone  func(now float64)
	dead    bool
	index   int // heap index, -1 when not queued
}

// Arrived returns the job's arrival time.
func (j *Job) Arrived() float64 { return j.arrived }

// Work returns the job's total service demand in core-seconds.
func (j *Job) Work() float64 { return j.work }

type jobHeap []*Job

func (h jobHeap) Len() int           { return len(h) }
func (h jobHeap) Less(i, j int) bool { return h[i].vFinish < h[j].vFinish }
func (h jobHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *jobHeap) Push(x any)        { j := x.(*Job); j.index = len(*h); *h = append(*h, j) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}

// PSStation is an egalitarian processor-sharing server with total
// capacity C (cores) and a per-job rate cap (default 1 core).
type PSStation struct {
	eng       *sim.Engine
	capacity  float64
	perJobCap float64

	jobs    jobHeap
	live    int     // number of non-dead jobs
	vclock  float64 // accumulated per-job attained service
	lastT   float64
	nextID  uint64
	departH sim.Handle

	// Completed counts jobs that finished service; Cancelled counts jobs
	// removed before completion (timeouts).
	Completed uint64
	Cancelled uint64
}

// NewPSStation creates a station on engine eng with the given capacity in
// cores. The per-job rate cap defaults to 1 core.
func NewPSStation(eng *sim.Engine, capacity float64) *PSStation {
	return &PSStation{eng: eng, capacity: capacity, perJobCap: 1, lastT: eng.Now()}
}

// SetPerJobCap overrides the per-job service rate cap (cores). Useful
// for modelling multi-threaded request handlers. A cap must be
// positive: zero or negative caps are configuration errors (the old
// behaviour silently pinned them to 1e-9, which starved the station
// while looking healthy).
func (s *PSStation) SetPerJobCap(c float64) error {
	if c <= 0 {
		return fmt.Errorf("queueing: per-job cap %g must be positive", c)
	}
	s.advance(s.eng.Now())
	s.perJobCap = c
	s.reschedule()
	return nil
}

// Capacity returns the station's current capacity.
func (s *PSStation) Capacity() float64 { return s.capacity }

// SetCapacity changes the station's capacity (a deflation or reinflation
// event) effective immediately.
func (s *PSStation) SetCapacity(c float64) {
	s.advance(s.eng.Now())
	if c < 0 {
		c = 0
	}
	s.capacity = c
	s.reschedule()
}

// InFlight returns the number of jobs currently in service.
func (s *PSStation) InFlight() int { return s.live }

// rate returns the current per-job service rate.
func (s *PSStation) rate() float64 {
	if s.live == 0 {
		return 0
	}
	r := s.capacity / float64(s.live)
	if r > s.perJobCap {
		r = s.perJobCap
	}
	return r
}

// advance progresses the virtual clock to wall time now. Time is
// clamped monotonically: a stale now must not move lastT backward, or
// the next advance would re-credit the interval and double-count
// service.
func (s *PSStation) advance(now float64) {
	if now > s.lastT {
		s.vclock += (now - s.lastT) * s.rate()
		s.lastT = now
	}
}

// Submit enters a job with the given CPU demand (core-seconds); onDone
// fires when service completes. It returns a handle usable to cancel the
// job (e.g. on request timeout).
func (s *PSStation) Submit(work float64, onDone func(now float64)) *Job {
	now := s.eng.Now()
	s.advance(now)
	if work < 0 {
		work = 0
	}
	j := &Job{
		id:      s.nextID,
		work:    work,
		vFinish: s.vclock + work,
		arrived: now,
		onDone:  onDone,
		index:   -1,
	}
	s.nextID++
	heap.Push(&s.jobs, j)
	s.live++
	s.reschedule()
	return j
}

// Cancel removes a job before completion. It reports whether the job was
// still in service.
func (s *PSStation) Cancel(j *Job) bool {
	if j == nil || j.dead || j.index < 0 {
		return false
	}
	now := s.eng.Now()
	s.advance(now)
	j.dead = true
	heap.Remove(&s.jobs, j.index)
	s.live--
	s.Cancelled++
	s.reschedule()
	return true
}

// reschedule (re)arms the next-departure event.
func (s *PSStation) reschedule() {
	s.departH.Cancel()
	if s.live == 0 || len(s.jobs) == 0 {
		return
	}
	r := s.rate()
	if r <= 0 {
		return // starved: no progress until capacity returns
	}
	next := s.jobs[0]
	dt := (next.vFinish - s.vclock) / r
	if dt < 0 {
		dt = 0
	}
	h, err := s.eng.After(dt, s.depart)
	if err == nil {
		s.departH = h
	}
}

// tol is the virtual-clock comparison tolerance. It must be relative:
// once vclock grows large, an absolute epsilon falls below one ULP and a
// due departure could chase its own rounding error forever.
func (s *PSStation) tol() float64 {
	return 1e-9 * (1 + math.Abs(s.vclock))
}

// depart completes every job whose virtual finish time has been reached.
func (s *PSStation) depart(now float64) {
	s.advance(now)
	// Progress guarantee: this event was scheduled for the head job's
	// finish; if rounding left the virtual clock a hair short, snap it
	// forward (ages every in-flight job equally by < tol service units).
	if len(s.jobs) > 0 && s.jobs[0].vFinish > s.vclock && s.jobs[0].vFinish-s.vclock <= s.tol() {
		s.vclock = s.jobs[0].vFinish
	}
	for len(s.jobs) > 0 && s.jobs[0].vFinish <= s.vclock {
		j := heap.Pop(&s.jobs).(*Job)
		s.live--
		s.Completed++
		if j.onDone != nil {
			j.onDone(now)
		}
	}
	s.reschedule()
}

// Utilization returns the instantaneous fraction of capacity in use.
func (s *PSStation) Utilization() float64 {
	if s.capacity <= 0 {
		if s.live > 0 {
			return 1
		}
		return 0
	}
	used := float64(s.live) * s.perJobCap
	return math.Min(1, used/s.capacity)
}
