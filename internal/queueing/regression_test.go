package queueing

import (
	"math"
	"math/rand"
	"testing"

	"vmdeflate/internal/sim"
)

// TestAdvanceIsMonotone is the regression test for the lastT rollback
// bug: a stale (non-monotone) now used to move lastT backward, so the
// next advance re-credited the interval and double-counted service.
// The clock must clamp: a stale advance is a no-op, and subsequent
// progress is credited exactly once.
func TestAdvanceIsMonotone(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewPSStation(eng, 1)
	s.jobs = append(s.jobs, &Job{work: 100, vFinish: 100})
	s.live = 1

	s.advance(10)
	if s.lastT != 10 || math.Abs(s.vclock-10) > 1e-12 {
		t.Fatalf("after advance(10): lastT=%v vclock=%v, want 10, 10", s.lastT, s.vclock)
	}
	// Stale time: must not rewind the clock or credit service.
	s.advance(5)
	if s.lastT != 10 || math.Abs(s.vclock-10) > 1e-12 {
		t.Fatalf("after stale advance(5): lastT=%v vclock=%v, want 10, 10", s.lastT, s.vclock)
	}
	// Resumed progress is credited once: 10 -> 15 is 5 more units, not
	// the 10 the rolled-back clock used to hand out.
	s.advance(15)
	if s.lastT != 15 || math.Abs(s.vclock-15) > 1e-12 {
		t.Fatalf("after advance(15): lastT=%v vclock=%v, want 15, 15 (double-counted service?)", s.lastT, s.vclock)
	}
}

// TestSetPerJobCapRejectsInvalid pins the new error contract: zero and
// negative caps are rejected instead of being silently pinned to 1e-9,
// and the previous cap stays in force.
func TestSetPerJobCapRejectsInvalid(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewPSStation(eng, 4)
	for _, c := range []float64{0, -1} {
		if err := s.SetPerJobCap(c); err == nil {
			t.Errorf("SetPerJobCap(%g) should fail", c)
		}
	}
	if s.perJobCap != 1 {
		t.Errorf("rejected cap mutated state: perJobCap = %v, want 1", s.perJobCap)
	}
	var d float64
	eng.At(0, func(float64) { s.Submit(2, func(now float64) { d = now }) })
	eng.Run()
	if math.Abs(d-2) > 1e-9 {
		t.Errorf("station broken after rejected cap: departed %v, want 2", d)
	}
}

// TestWorkConservationUnderChurn is the property test of the
// virtual-time construction: under random submits, cancellations and
// capacity changes, the work completed can never exceed the capacity
// integrated over elapsed time (within the departure-snapping
// tolerance). A rolled-back clock breaks exactly this bound by crediting
// the same interval twice.
func TestWorkConservationUnderChurn(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.NewEngine(seed)
		s := NewPSStation(eng, 2)

		var completedWork, capIntegral float64
		lastCapT, curCap := 0.0, 2.0
		var live []*Job

		var step func(now float64)
		n := 0
		step = func(now float64) {
			capIntegral += (now - lastCapT) * curCap
			lastCapT = now
			if n >= 400 {
				return
			}
			n++
			switch rng.Intn(4) {
			case 0, 1: // submit
				w := 0.2 + 2*rng.Float64()
				var j *Job
				j = s.Submit(w, func(float64) { completedWork += j.Work() })
				live = append(live, j)
			case 2: // cancel a random outstanding job
				if len(live) > 0 {
					i := rng.Intn(len(live))
					s.Cancel(live[i])
					live = append(live[:i], live[i+1:]...)
				}
			case 3: // deflate or reinflate
				curCap = 0.5 + 3*rng.Float64()
				s.SetCapacity(curCap)
			}
			eng.After(0.1+rng.Float64(), step)
		}
		eng.At(0, step)
		eng.Run()
		capIntegral += (eng.Now() - lastCapT) * curCap

		// tol: each of the up-to-400 departures may snap the virtual
		// clock forward by < 1e-9*(1+vclock) service units per job.
		tol := 1e-6 * (1 + capIntegral)
		if completedWork > capIntegral+tol {
			t.Errorf("seed %d: completed %v core-seconds of work with only %v capacity-time available",
				seed, completedWork, capIntegral)
		}
		if s.Completed == 0 {
			t.Errorf("seed %d: degenerate run, nothing completed", seed)
		}
	}
}

// TestClosedFormMatchesStation ties the hot-path closed form to the
// discrete-event station it approximates: for a persistent Poisson
// stream, the measured sojourn ratio between a deflated and an
// undeflated station must match PSSlowdownRatio within simulation
// noise.
func TestClosedFormMatchesStation(t *testing.T) {
	const (
		fullCap = 4.0
		effCap  = 2.0
		lambda  = 6.0 // jobs/sec
		meanW   = 0.2 // core-seconds each -> load 1.2 cores
	)
	load := lambda * meanW
	meanSojourn := func(cap float64) float64 {
		eng := sim.NewEngine(11)
		s := NewPSStation(eng, cap)
		if err := s.SetPerJobCap(cap); err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		var arrive func(now float64)
		submitted := 0
		arrive = func(now float64) {
			if submitted >= 60000 {
				return
			}
			submitted++
			start := now
			s.Submit(eng.Rand().ExpFloat64()*meanW, func(done float64) {
				sum += done - start
				n++
			})
			eng.After(eng.Rand().ExpFloat64()/lambda, arrive)
		}
		eng.At(0, arrive)
		eng.Run()
		return sum / float64(n)
	}
	got := meanSojourn(effCap) / meanSojourn(fullCap)
	want := PSSlowdownRatio(load, fullCap, effCap, 100)
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("measured slowdown ratio %v, closed form %v (±10%%)", got, want)
	}
}

// TestPSCapacityForSlowdownInverts checks the policy-side inverse
// against the metric-side forward map on a grid: deflating exactly to
// the returned capacity never violates the threshold, and any
// materially smaller capacity does.
func TestPSCapacityForSlowdownInverts(t *testing.T) {
	for _, load := range []float64{0, 0.5, 2, 3.9} {
		for _, s := range []float64{1, 1.5, 3, 10} {
			const fullCap = 4.0
			c := PSCapacityForSlowdown(load, fullCap, s)
			if got := PSSlowdownRatio(load, fullCap, c, 1e9); got > s+1e-9 {
				t.Errorf("load=%g s=%g: capacity %g still violates (ratio %g)", load, s, c, got)
			}
			if load > 0 && c > load+1e-6 && s > 1 {
				if got := PSSlowdownRatio(load, fullCap, c*0.95, 1e9); got <= s {
					t.Errorf("load=%g s=%g: capacity %g not minimal (0.95x ratio %g <= %g)", load, s, c, got, s)
				}
			}
		}
	}
}
