package queueing

// Closed-form processor-sharing latency model. The cluster simulator's
// sharded sample pass needs per-VM latency at every 5-minute boundary
// for up to a million VMs; simulating a PSStation per VM there would
// blow both the wall clock and the zero-allocation gate, so the hot
// path uses the steady-state M/G/1-PS sojourn formula the station
// converges to instead (see TestClosedFormMatchesStation).
//
// For an egalitarian PS server with service capacity C (cores) and
// offered load λw̄ (core-seconds of demand per second), the expected
// sojourn of a job with work w is w/(C - load): the virtual-time
// construction's long-run average. The deflation slowdown the SLO
// metrics meter is therefore the sojourn ratio between the deflated
// and the undeflated server — (fullCap - load)/(effCap - load) — which
// is exactly 1 for an undeflated VM, so SLO violations isolate
// deflation's effect rather than re-counting plain overload.

// PSSlowdownRatio returns the relative response-time multiplier a VM
// deflated from fullCap to effective capacity effCap imposes on its
// offered load (all in cores): the M/G/1-PS sojourn ratio
// (fullCap-load)/(effCap-load), clamped into [1, maxSlowdown]. A VM at
// full capacity (effCap >= fullCap) or with no load reports 1; an
// effective capacity at or below the offered load saturates at
// maxSlowdown.
func PSSlowdownRatio(load, fullCap, effCap, maxSlowdown float64) float64 {
	if maxSlowdown < 1 {
		maxSlowdown = 1
	}
	if load <= 0 || effCap >= fullCap {
		return 1
	}
	if effCap <= load {
		return maxSlowdown
	}
	r := (fullCap - load) / (effCap - load)
	if r > maxSlowdown {
		return maxSlowdown
	}
	if r < 1 {
		return 1
	}
	return r
}

// PSCapacityForSlowdown inverts PSSlowdownRatio: the minimum effective
// capacity (cores) that keeps the relative slowdown at or below s for
// the given offered load. With no load any capacity is latency-safe
// (the metric reports 1), so the answer is 0; a load at or above the
// full capacity is overloaded even undeflated, so no deflation is safe
// and the answer is fullCap.
func PSCapacityForSlowdown(load, fullCap, s float64) float64 {
	if s < 1 {
		s = 1
	}
	if load <= 0 {
		return 0
	}
	if load >= fullCap {
		return fullCap
	}
	return load + (fullCap-load)/s
}
