// Package mechanism implements the paper's three VM deflation mechanisms
// (Section 4): transparent deflation through hypervisor multiplexing
// (cgroup limits), explicit deflation through guest-visible hotplug, and
// the hybrid mechanism of Figure 13 that hot-unplugs down to the guest's
// safety threshold and multiplexes the rest of the way.
//
// A mechanism turns a *target allocation vector* into hypervisor/guest
// actions and reports what allocation was actually achieved. Targets are
// absolute allocations (not deltas); deflating and reinflating are the
// same operation with different targets, which is how the paper's
// policies "run proportional deflation backwards" for reinflation.
package mechanism

import (
	"errors"
	"fmt"
	"math"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/resources"
)

// ErrTarget reports an unachievable or invalid target.
var ErrTarget = errors.New("mechanism: invalid deflation target")

// Mechanism applies absolute allocation targets to a domain.
type Mechanism interface {
	// Name identifies the mechanism ("transparent", "explicit", "hybrid").
	Name() string
	// Apply drives the domain's allocation toward target and returns the
	// allocation actually achieved. Implementations clamp the target into
	// [domain minimum, domain nominal size]; they never power off the VM.
	Apply(d *hypervisor.Domain, target resources.Vector) (resources.Vector, error)
}

// clampTarget bounds target into the domain's feasible range and keeps at
// least a sliver of CPU and memory so the VM never fully stalls
// (deflation, not preemption). It returns an error for negative targets.
func clampTarget(d *hypervisor.Domain, target resources.Vector) (resources.Vector, error) {
	if err := target.CheckNonNegative(); err != nil {
		return resources.Vector{}, fmt.Errorf("%w: %v", ErrTarget, err)
	}
	t := target.Clamp(d.MinAllocation(), d.MaxSize())
	// Per-dimension safety floor (hypervisor.DefaultFloor): even a
	// 0.05-CPU / 64 MB microservice container keeps running.
	floor := hypervisor.DefaultFloor()
	if cpu := floor.Get(resources.CPU); t.Get(resources.CPU) < cpu {
		t = t.With(resources.CPU, cpu)
	}
	if mem := floor.Get(resources.Memory); t.Get(resources.Memory) < mem {
		t = t.With(resources.Memory, mem)
	}
	return t.Min(d.MaxSize()), nil
}

// Transparent implements Section 4.2: all deflation happens through the
// hypervisor's cgroup knobs. The guest OS is unaware; it simply runs
// "slower". Fine-grained and unbounded below, but pays swap penalties
// when memory drops under the guest's resident set.
type Transparent struct{}

// Name implements Mechanism.
func (Transparent) Name() string { return "transparent" }

// Apply implements Mechanism.
func (Transparent) Apply(d *hypervisor.Domain, target resources.Vector) (resources.Vector, error) {
	t, err := clampTarget(d, target)
	if err != nil {
		return resources.Vector{}, err
	}
	if err := d.SetCPUShares(t.Get(resources.CPU)); err != nil {
		return resources.Vector{}, err
	}
	if err := d.SetMemoryLimit(t.Get(resources.Memory)); err != nil {
		return resources.Vector{}, err
	}
	if v := t.Get(resources.DiskBW); v > 0 {
		if err := d.SetDiskLimit(v); err != nil {
			return resources.Vector{}, err
		}
	}
	if v := t.Get(resources.NetBW); v > 0 {
		if err := d.SetNetLimit(v); err != nil {
			return resources.Vector{}, err
		}
	}
	d.SetDeflatedBy("transparent")
	return d.Effective(), nil
}

// Explicit implements Section 4.3: deflation via guest-visible hot
// unplug only. CPU moves in whole vCPUs and memory in guest blocks, both
// bounded by guest safety (>=1 vCPU, never below RSS), so the achieved
// allocation may be above the target — the caller must check. NIC and
// disk unplugging is unsafe (Section 4.3), so I/O dimensions fall back to
// the transparent throttles.
type Explicit struct{}

// Name implements Mechanism.
func (Explicit) Name() string { return "explicit" }

// Apply implements Mechanism.
func (Explicit) Apply(d *hypervisor.Domain, target resources.Vector) (resources.Vector, error) {
	t, err := clampTarget(d, target)
	if err != nil {
		return resources.Vector{}, err
	}
	if err := applyCPUHotplug(d, t.Get(resources.CPU)); err != nil {
		return resources.Vector{}, err
	}
	if err := applyMemoryHotplug(d, t.Get(resources.Memory)); err != nil {
		return resources.Vector{}, err
	}
	// I/O: transparent throttling (explicit unplug is unsafe).
	if v := t.Get(resources.DiskBW); v > 0 {
		if err := d.SetDiskLimit(v); err != nil {
			return resources.Vector{}, err
		}
	}
	if v := t.Get(resources.NetBW); v > 0 {
		if err := d.SetNetLimit(v); err != nil {
			return resources.Vector{}, err
		}
	}
	d.SetDeflatedBy("explicit")
	return d.Effective(), nil
}

// applyCPUHotplug moves the online vCPU count toward ceil(targetCores).
// Hotplug cannot remove fractional vCPUs ("it is not possible to unplug
// 1.5 vCPUs"), so the target is rounded up: explicit deflation never
// over-deflates.
func applyCPUHotplug(d *hypervisor.Domain, targetCores float64) error {
	want := int(math.Ceil(targetCores - 1e-9))
	if want < 1 {
		want = 1
	}
	online := d.Guest().OnlineVCPUs()
	switch {
	case online > want:
		if _, err := d.HotUnplugVCPUs(online - want); err != nil {
			return err
		}
	case online < want:
		if _, err := d.HotPlugVCPUs(want - online); err != nil {
			return err
		}
	}
	return nil
}

// applyMemoryHotplug moves plugged memory toward targetMB, respecting
// the guest's RSS safety threshold on the way down.
func applyMemoryHotplug(d *hypervisor.Domain, targetMB float64) error {
	plugged := d.Guest().PluggedMemoryMB()
	switch {
	case plugged > targetMB:
		if _, err := d.HotUnplugMemory(plugged - targetMB); err != nil {
			return err
		}
	case plugged < targetMB:
		if _, err := d.HotPlugMemory(targetMB - plugged); err != nil {
			return err
		}
	}
	return nil
}

// Hybrid implements Figure 13:
//
//	def deflate_hybrid(target):
//	    hotplug_val = max(get_hp_threshold(), round_up(target))
//	    deflate_hotplug(hotplug_val)
//	    deflate_multiplexing(target)
//
// Explicit hotplug reclaims what the guest can safely release (letting it
// drop caches and rebalance), then transparent multiplexing takes the
// allocation the rest of the way to the fine-grained target.
type Hybrid struct{}

// Name implements Mechanism.
func (Hybrid) Name() string { return "hybrid" }

// Apply implements Mechanism.
func (Hybrid) Apply(d *hypervisor.Domain, target resources.Vector) (resources.Vector, error) {
	t, err := clampTarget(d, target)
	if err != nil {
		return resources.Vector{}, err
	}

	// CPU: hotplug toward ceil(target); the cgroup trims the fraction.
	if err := applyCPUHotplug(d, t.Get(resources.CPU)); err != nil {
		return resources.Vector{}, err
	}
	if err := d.SetCPUShares(t.Get(resources.CPU)); err != nil {
		return resources.Vector{}, err
	}

	// Memory: hotplug down to max(RSS threshold, target); the memory
	// cgroup covers any remaining distance (possibly into swap, but only
	// for the portion hotplug could not reach).
	targetMB := t.Get(resources.Memory)
	hpThreshold := d.Guest().RSSMB()
	hotplugVal := math.Max(hpThreshold, targetMB)
	if err := applyMemoryHotplug(d, hotplugVal); err != nil {
		return resources.Vector{}, err
	}
	if err := d.SetMemoryLimit(targetMB); err != nil {
		return resources.Vector{}, err
	}

	// I/O is transparent in all mechanisms.
	if v := t.Get(resources.DiskBW); v > 0 {
		if err := d.SetDiskLimit(v); err != nil {
			return resources.Vector{}, err
		}
	}
	if v := t.Get(resources.NetBW); v > 0 {
		if err := d.SetNetLimit(v); err != nil {
			return resources.Vector{}, err
		}
	}
	d.SetDeflatedBy("hybrid")
	return d.Effective(), nil
}

// ByName returns the mechanism with the given name.
func ByName(name string) (Mechanism, error) {
	switch name {
	case "transparent":
		return Transparent{}, nil
	case "explicit":
		return Explicit{}, nil
	case "hybrid":
		return Hybrid{}, nil
	}
	return nil, fmt.Errorf("mechanism: unknown mechanism %q", name)
}

// DeflateByFraction is a convenience that deflates every dimension of the
// domain's nominal size by frac (0 = undeflated, 0.5 = half) using m.
func DeflateByFraction(m Mechanism, d *hypervisor.Domain, frac float64) (resources.Vector, error) {
	if frac < 0 || frac >= 1 {
		return resources.Vector{}, fmt.Errorf("%w: fraction %g outside [0,1)", ErrTarget, frac)
	}
	return m.Apply(d, d.MaxSize().Scale(1-frac))
}
