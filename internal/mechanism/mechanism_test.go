package mechanism

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/resources"
)

func newDomain(t *testing.T, cores, memMB float64) *hypervisor.Domain {
	t.Helper()
	h, err := hypervisor.NewHost(hypervisor.HostConfig{
		Name:     "node",
		Capacity: resources.New(64, 262144, 2000, 20000),
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := h.Define(hypervisor.DomainConfig{
		Name:       "vm",
		Size:       resources.New(cores, memMB, 100, 1000),
		Deflatable: true,
		Priority:   0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestByName(t *testing.T) {
	for _, name := range []string{"transparent", "explicit", "hybrid"} {
		m, err := ByName(name)
		if err != nil || m.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ByName("magic"); err == nil {
		t.Error("unknown mechanism should fail")
	}
}

func TestTransparentDeflate(t *testing.T) {
	d := newDomain(t, 8, 16384)
	got, err := Transparent{}.Apply(d, resources.New(4, 8192, 50, 500))
	if err != nil {
		t.Fatal(err)
	}
	want := resources.New(4, 8192, 50, 500)
	if got != want {
		t.Errorf("achieved = %v, want %v", got, want)
	}
	// Guest remains oblivious.
	if d.Guest().OnlineVCPUs() != 8 || d.Guest().PluggedMemoryMB() != 16384 {
		t.Error("transparent deflation must not touch the guest")
	}
	if d.DeflatedBy() != "transparent" {
		t.Errorf("label = %q", d.DeflatedBy())
	}
}

func TestTransparentFractional(t *testing.T) {
	d := newDomain(t, 8, 16384)
	got, err := Transparent{}.Apply(d, resources.New(2.5, 5000, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(resources.CPU) != 2.5 {
		t.Errorf("transparent CPU should be fine-grained: %v", got.Get(resources.CPU))
	}
}

func TestExplicitDeflateRoundsUp(t *testing.T) {
	d := newDomain(t, 8, 16384)
	d.Guest().SetWorkload(2000, 1000)
	got, err := Explicit{}.Apply(d, resources.New(2.5, 8192, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// 2.5 cores rounds up to 3 whole vCPUs.
	if got.Get(resources.CPU) != 3 {
		t.Errorf("explicit CPU = %v, want 3 (round up)", got.Get(resources.CPU))
	}
	if d.Guest().OnlineVCPUs() != 3 {
		t.Errorf("guest online = %d", d.Guest().OnlineVCPUs())
	}
	// Memory moves in 128 MB blocks: 16384 -> 8192 is block-aligned.
	if got.Get(resources.Memory) != 8192 {
		t.Errorf("explicit memory = %v", got.Get(resources.Memory))
	}
}

func TestExplicitRespectsRSS(t *testing.T) {
	d := newDomain(t, 8, 16384)
	d.Guest().SetWorkload(10000, 1000) // RSS 10256
	got, err := Explicit{}.Apply(d, resources.New(8, 4096, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Cannot unplug below RSS: achieved memory stays near RSS, well above
	// the 4096 target.
	if got.Get(resources.Memory) < 10256-128 {
		t.Errorf("explicit went below RSS: %v", got.Get(resources.Memory))
	}
	if d.Guest().SwappedMB() != 0 {
		t.Error("explicit deflation must never swap")
	}
}

func TestExplicitReinflate(t *testing.T) {
	d := newDomain(t, 8, 16384)
	d.Guest().SetWorkload(2000, 0)
	if _, err := (Explicit{}).Apply(d, resources.New(2, 4096, 0, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := Explicit{}.Apply(d, d.MaxSize())
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(resources.CPU) != 8 || got.Get(resources.Memory) != 16384 {
		t.Errorf("reinflated = %v", got)
	}
}

func TestHybridFigure13(t *testing.T) {
	d := newDomain(t, 8, 16384)
	d.Guest().SetWorkload(6000, 2000) // RSS 6256

	got, err := Hybrid{}.Apply(d, resources.New(2.5, 4096, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// CPU: hotplug to ceil(2.5)=3 vCPUs, cgroup takes it to 2.5.
	if d.Guest().OnlineVCPUs() != 3 {
		t.Errorf("guest online vCPUs = %d, want 3", d.Guest().OnlineVCPUs())
	}
	if got.Get(resources.CPU) != 2.5 {
		t.Errorf("effective CPU = %v, want 2.5", got.Get(resources.CPU))
	}
	// Memory: hotplug stops at max(RSS, target) = 6256 (block-rounded),
	// cgroup limit carries allocation to 4096.
	if plugged := d.Guest().PluggedMemoryMB(); plugged < 6256-128 || plugged > 6256+256 {
		t.Errorf("plugged = %v, want ~RSS 6256", plugged)
	}
	if got.Get(resources.Memory) != 4096 {
		t.Errorf("effective memory = %v, want 4096", got.Get(resources.Memory))
	}
	// The portion below RSS is transparent -> swap pressure is non-zero
	// but bounded by the cgroup gap, not the hotplug gap.
	if d.SwapPressure() <= 0 {
		t.Error("hybrid below RSS should show swap pressure")
	}
	if d.DeflatedBy() != "hybrid" {
		t.Errorf("label = %q", d.DeflatedBy())
	}
}

func TestHybridAboveRSSNeverSwaps(t *testing.T) {
	d := newDomain(t, 8, 16384)
	d.Guest().SetWorkload(4000, 2000) // RSS 4256
	got, err := Hybrid{}.Apply(d, resources.New(4, 8192, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(resources.Memory) != 8192 {
		t.Errorf("effective memory = %v", got.Get(resources.Memory))
	}
	if d.SwapPressure() != 0 {
		t.Errorf("target above RSS should not swap: pressure=%v", d.SwapPressure())
	}
	// Guest actually released memory (graceful cache handling).
	if d.Guest().PluggedMemoryMB() >= 16384 {
		t.Error("hybrid should hot-unplug memory above the threshold")
	}
}

func TestHybridReinflate(t *testing.T) {
	d := newDomain(t, 8, 16384)
	d.Guest().SetWorkload(4000, 1000)
	if _, err := (Hybrid{}).Apply(d, resources.New(2, 6144, 50, 500)); err != nil {
		t.Fatal(err)
	}
	got, err := Hybrid{}.Apply(d, d.MaxSize())
	if err != nil {
		t.Fatal(err)
	}
	if got != d.MaxSize() {
		t.Errorf("reinflated = %v, want %v", got, d.MaxSize())
	}
}

func TestClampToMinAllocation(t *testing.T) {
	h, _ := hypervisor.NewHost(hypervisor.HostConfig{
		Name: "n", Capacity: resources.New(64, 262144, 2000, 20000),
	})
	d, err := h.Define(hypervisor.DomainConfig{
		Name: "vm", Size: resources.New(8, 16384, 100, 1000),
		Deflatable: true, Priority: 0.5,
		MinAllocation: resources.New(2, 4096, 10, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	got, err := Transparent{}.Apply(d, resources.New(0.5, 128, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := resources.New(2, 4096, 10, 100)
	if got != want {
		t.Errorf("clamped = %v, want %v", got, want)
	}
}

func TestTargetValidation(t *testing.T) {
	d := newDomain(t, 4, 8192)
	for _, m := range []Mechanism{Transparent{}, Explicit{}, Hybrid{}} {
		if _, err := m.Apply(d, resources.New(-1, 1024, 0, 0)); !errors.Is(err, ErrTarget) {
			t.Errorf("%s: negative target err = %v", m.Name(), err)
		}
	}
}

func TestTargetAboveSizeClamps(t *testing.T) {
	d := newDomain(t, 4, 8192)
	got, err := Transparent{}.Apply(d, resources.New(100, 1<<20, 1e6, 1e6))
	if err != nil {
		t.Fatal(err)
	}
	if got != d.MaxSize() {
		t.Errorf("oversized target should clamp to MaxSize: %v", got)
	}
}

func TestDeflateByFraction(t *testing.T) {
	d := newDomain(t, 8, 16384)
	got, err := DeflateByFraction(Transparent{}, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Get(resources.CPU) != 4 || got.Get(resources.Memory) != 8192 {
		t.Errorf("half deflation = %v", got)
	}
	if _, err := DeflateByFraction(Transparent{}, d, 1.0); !errors.Is(err, ErrTarget) {
		t.Errorf("full deflation should be rejected: %v", err)
	}
	if _, err := DeflateByFraction(Transparent{}, d, -0.1); !errors.Is(err, ErrTarget) {
		t.Errorf("negative fraction should be rejected: %v", err)
	}
}

func TestTinyTargetKeepsVMAlive(t *testing.T) {
	d := newDomain(t, 8, 16384)
	for _, m := range []Mechanism{Transparent{}, Explicit{}, Hybrid{}} {
		got, err := m.Apply(d, resources.Vector{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if got.Get(resources.CPU) <= 0 || got.Get(resources.Memory) <= 0 {
			t.Errorf("%s: zero target must leave a floor, got %v", m.Name(), got)
		}
		// Reset for next mechanism.
		if _, err := m.Apply(d, d.MaxSize()); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: for any target fraction, every mechanism achieves an
// allocation between the floor and the nominal size, and explicit never
// goes below the target on CPU (round-up semantics).
func TestQuickMechanismBounds(t *testing.T) {
	mechs := []Mechanism{Transparent{}, Explicit{}, Hybrid{}}
	f := func(fracRaw uint8, mi uint8) bool {
		frac := float64(fracRaw%95) / 100
		m := mechs[int(mi)%len(mechs)]
		h, err := hypervisor.NewHost(hypervisor.HostConfig{
			Name: "n", Capacity: resources.New(64, 262144, 2000, 20000),
		})
		if err != nil {
			return false
		}
		d, err := h.Define(hypervisor.DomainConfig{
			Name: "vm", Size: resources.New(8, 16384, 100, 1000),
			Deflatable: true, Priority: 0.5,
		})
		if err != nil {
			return false
		}
		if err := d.Start(); err != nil {
			return false
		}
		d.Guest().SetWorkload(2000, 1000)
		target := d.MaxSize().Scale(1 - frac)
		got, err := m.Apply(d, target)
		if err != nil {
			return false
		}
		if !got.FitsIn(d.MaxSize()) {
			return false
		}
		if got.Get(resources.CPU) < 0.05-1e-9 || got.Get(resources.Memory) < 64-1e-9 {
			return false
		}
		if m.Name() == "explicit" {
			// Explicit CPU never over-deflates.
			if got.Get(resources.CPU) < math.Ceil(target.Get(resources.CPU)-1e-9)-1e-9 &&
				got.Get(resources.CPU) < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
