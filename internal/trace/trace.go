// Package trace models the two public cloud datasets the paper's
// feasibility study (Section 3) and cluster simulation (Section 7.4) are
// driven by: the Azure 2017 VM dataset (2M VMs, 5-minute CPU utilisation,
// workload-class labels, VM sizes and lifetimes) and the Alibaba 2018
// container dataset (CPU, memory, memory-bandwidth, disk and network
// utilisation for interactive services).
//
// The original datasets are not redistributable here, so the package
// provides statistically faithful synthetic generators (see azure.go and
// alibaba.go) whose marginal distributions match the published
// characteristics that the paper's analysis depends on, plus CSV
// round-tripping so experiments can also run on the real datasets if the
// user has them.
package trace

import (
	"fmt"
	"sync"

	"vmdeflate/internal/stats"
)

// SampleInterval is the trace sampling granularity in seconds (5 minutes,
// matching the Azure dataset).
const SampleInterval = 300.0

// VMClass labels the workload hosted in a VM, per the Azure dataset.
type VMClass int

const (
	// Interactive VMs host latency-sensitive services (web workloads).
	Interactive VMClass = iota
	// DelayInsensitive VMs host batch / data-processing jobs.
	DelayInsensitive
	// Unknown VMs carry no label.
	Unknown
	numClasses
)

// Classes lists all workload classes in canonical order.
var Classes = [...]VMClass{Interactive, DelayInsensitive, Unknown}

// String returns the dataset's label for the class.
func (c VMClass) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case DelayInsensitive:
		return "delay-insensitive"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("VMClass(%d)", int(c))
	}
}

// ParseVMClass parses the label emitted by String.
func ParseVMClass(s string) (VMClass, error) {
	switch s {
	case "interactive":
		return Interactive, nil
	case "delay-insensitive":
		return DelayInsensitive, nil
	case "unknown":
		return Unknown, nil
	}
	return 0, fmt.Errorf("trace: unknown VM class %q", s)
}

// VMRecord is one VM's row in an Azure-style trace: metadata plus a CPU
// utilisation time series. Utilisation is the maximum CPU usage in each
// 5-minute interval, as a percentage of the VM's allocation (0-100).
type VMRecord struct {
	ID       string
	Class    VMClass
	Cores    int
	MemoryMB float64
	// Start and End are the VM's lifetime in seconds from trace start.
	Start, End float64
	// CPUUtil holds one sample per SampleInterval across [Start, End).
	CPUUtil []float64
}

// Lifetime returns the VM's lifetime in seconds.
func (r *VMRecord) Lifetime() float64 { return r.End - r.Start }

// MeanUtil returns the mean CPU utilisation percentage.
func (r *VMRecord) MeanUtil() float64 { return stats.Mean(r.CPUUtil) }

// P95 returns the 95th-percentile CPU utilisation, the statistic the
// paper uses to derive deflation priorities (Sections 3.2 and 7.1.2).
func (r *VMRecord) P95() float64 { return stats.Percentile(r.CPUUtil, 95) }

// UtilAt returns the utilisation sample covering absolute time t, or 0
// outside the VM's lifetime.
func (r *VMRecord) UtilAt(t float64) float64 {
	if t < r.Start || t >= r.End || len(r.CPUUtil) == 0 {
		return 0
	}
	i := int((t - r.Start) / SampleInterval)
	if i >= len(r.CPUUtil) {
		i = len(r.CPUUtil) - 1
	}
	return r.CPUUtil[i]
}

// FractionAboveDeflation returns the fraction of the VM's lifetime during
// which its CPU utilisation exceeds the allocation remaining after
// deflating by deflatePct percent — the core feasibility metric of
// Figures 5-8 ("fraction of time spent above the deflated allocation").
func (r *VMRecord) FractionAboveDeflation(deflatePct float64) float64 {
	return stats.FractionAbove(r.CPUUtil, 100-deflatePct)
}

// SizeClass buckets a VM by memory, matching Figure 7's breakdown.
type SizeClass int

const (
	// SmallVM has at most 2 GB of memory.
	SmallVM SizeClass = iota
	// MediumVM has more than 2 GB and up to 8 GB.
	MediumVM
	// LargeVM has more than 8 GB.
	LargeVM
)

// String names the bucket as in Figure 7.
func (s SizeClass) String() string {
	switch s {
	case SmallVM:
		return "small(<=2GB)"
	case MediumVM:
		return "medium(<=8GB)"
	case LargeVM:
		return "large(>8GB)"
	default:
		return fmt.Sprintf("SizeClass(%d)", int(s))
	}
}

// Size returns the VM's size class.
func (r *VMRecord) Size() SizeClass {
	switch {
	case r.MemoryMB <= 2048:
		return SmallVM
	case r.MemoryMB <= 8192:
		return MediumVM
	default:
		return LargeVM
	}
}

// PeakClass buckets a VM by 95th-percentile CPU utilisation, matching
// Figure 8's breakdown.
type PeakClass int

const (
	// PeakLow is p95 < 33%.
	PeakLow PeakClass = iota
	// PeakModerate is 33% <= p95 < 66%.
	PeakModerate
	// PeakHigher is 66% <= p95 < 80%.
	PeakHigher
	// PeakHigh is p95 >= 80%.
	PeakHigh
)

// String names the bucket as in Figure 8.
func (p PeakClass) String() string {
	switch p {
	case PeakLow:
		return "p95<33"
	case PeakModerate:
		return "33<=p95<66"
	case PeakHigher:
		return "66<=p95<80"
	case PeakHigh:
		return "p95>=80"
	default:
		return fmt.Sprintf("PeakClass(%d)", int(p))
	}
}

// Peak classifies p95 into the paper's four peak-utilisation buckets.
func Peak(p95 float64) PeakClass {
	switch {
	case p95 < 33:
		return PeakLow
	case p95 < 66:
		return PeakModerate
	case p95 < 80:
		return PeakHigher
	default:
		return PeakHigh
	}
}

// AzureTrace is a collection of VM records. Traces are treated as
// immutable once built; callers that mutate VMs after the first
// Duration call get stale cached values.
type AzureTrace struct {
	VMs []*VMRecord

	durOnce sync.Once
	dur     float64
}

// ByClass partitions the trace's VMs by workload class.
func (t *AzureTrace) ByClass() map[VMClass][]*VMRecord {
	m := make(map[VMClass][]*VMRecord)
	for _, vm := range t.VMs {
		m[vm.Class] = append(m[vm.Class], vm)
	}
	return m
}

// BySize partitions the trace's VMs by size class.
func (t *AzureTrace) BySize() map[SizeClass][]*VMRecord {
	m := make(map[SizeClass][]*VMRecord)
	for _, vm := range t.VMs {
		m[vm.Size()] = append(m[vm.Size()], vm)
	}
	return m
}

// ByPeak partitions the trace's VMs by p95 utilisation bucket.
func (t *AzureTrace) ByPeak() map[PeakClass][]*VMRecord {
	m := make(map[PeakClass][]*VMRecord)
	for _, vm := range t.VMs {
		m[Peak(vm.P95())] = append(m[Peak(vm.P95())], vm)
	}
	return m
}

// Duration returns the time at which the last VM in the trace ends.
// The scan runs once and is cached — simulation setup consults the
// horizon repeatedly (event seeding, shock scheduling, sweep headers)
// and at millions of VMs a per-call rescan is a measurable cost.
func (t *AzureTrace) Duration() float64 {
	t.durOnce.Do(func() {
		for _, vm := range t.VMs {
			if vm.End > t.dur {
				t.dur = vm.End
			}
		}
	})
	return t.dur
}

// ContainerRecord is one container's row in an Alibaba-style trace. All
// series are utilisation percentages of the container's allocation and
// share the 5-minute sampling interval. MemBWUtil is the fraction of the
// machine memory-bus bandwidth consumed (Section 3.2.2 uses it as a proxy
// for true memory activity).
type ContainerRecord struct {
	ID        string
	CPUUtil   []float64
	MemUtil   []float64
	MemBWUtil []float64
	DiskUtil  []float64
	NetUtil   []float64 // normalised in+out traffic
}

// AlibabaTrace is a collection of container records.
type AlibabaTrace struct {
	Containers []*ContainerRecord
}
