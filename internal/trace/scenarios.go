package trace

import (
	"fmt"
	"math"
)

// Scenario names a synthetic workload shape for the cluster simulator.
// The Azure-like default reproduces the paper's trace statistics; the
// other scenarios stress the engine with workload diversity the paper's
// single trace cannot: pronounced day/night swings, flash crowds, and
// heavy-tailed lifetimes.
type Scenario string

const (
	// ScenarioAzure is the calibrated Azure-2017-like default.
	ScenarioAzure Scenario = "azure"
	// ScenarioDiurnal exaggerates day/night seasonality: arrivals and
	// utilisation both swing hard with the time of day, so the cluster
	// oscillates between deep surplus and deflation pressure.
	ScenarioDiurnal Scenario = "diurnal"
	// ScenarioBursty layers flash crowds over a calm Poisson background:
	// short-lived, hot interactive VMs arrive in tight windows,
	// hammering admission control and reclamation simultaneously.
	ScenarioBursty Scenario = "bursty"
	// ScenarioHeavyTail draws VM lifetimes from a Pareto distribution:
	// most VMs are ephemeral but a fat tail runs for days, so capacity
	// slowly silts up with long-lived residents.
	ScenarioHeavyTail Scenario = "heavytail"
)

// Scenarios lists all scenario kinds in canonical order.
func Scenarios() []Scenario {
	return []Scenario{ScenarioAzure, ScenarioDiurnal, ScenarioBursty, ScenarioHeavyTail}
}

// ParseScenario validates a scenario name.
func ParseScenario(s string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if string(sc) == s {
			return sc, nil
		}
	}
	return "", fmt.Errorf("trace: unknown scenario %q (want azure, diurnal, bursty or heavytail)", s)
}

// GenerateNamed parses a scenario name and generates its trace in one
// step — the name → generator lookup shared by the simulation CLIs
// (deflationsim, benchreport), which used to duplicate it.
func GenerateNamed(name string, numVMs int, duration float64, seed int64) (*AzureTrace, error) {
	kind, err := ParseScenario(name)
	if err != nil {
		return nil, err
	}
	return GenerateScenario(ScenarioConfig{Kind: kind, NumVMs: numVMs, Duration: duration, Seed: seed})
}

// ScenarioGenerator validates a scenario name once and returns the pure
// seed → trace generator replicated sweeps fan out over (each worker
// synthesises its own independently seeded replicate).
func ScenarioGenerator(name string, numVMs int, duration float64) (func(seed int64) *AzureTrace, error) {
	kind, err := ParseScenario(name)
	if err != nil {
		return nil, err
	}
	return func(seed int64) *AzureTrace {
		// The kind is pre-validated and GenerateScenario has no other
		// error path, so the error is statically nil here.
		tr, _ := GenerateScenario(ScenarioConfig{Kind: kind, NumVMs: numVMs, Duration: duration, Seed: seed})
		return tr
	}, nil
}

// ScenarioConfig parameterises GenerateScenario. Generation is a pure
// function of the config: the same config always yields the same trace,
// which is what lets sweep workers generate traces concurrently and
// still produce bit-for-bit reproducible results.
type ScenarioConfig struct {
	Kind     Scenario
	NumVMs   int
	Duration float64 // horizon in seconds
	Seed     int64
}

// DefaultScenarioConfig returns kind with the generator defaults (1000
// VMs over three days, seed 1).
func DefaultScenarioConfig(kind Scenario) ScenarioConfig {
	return ScenarioConfig{Kind: kind, NumVMs: 1000, Duration: 3 * 86400, Seed: 1}
}

// GenerateScenario builds the synthetic trace for cfg: the eagerly
// materialised form of NewStream(cfg), bit-for-bit identical to reading
// the same VMs through the stream.
func GenerateScenario(cfg ScenarioConfig) (*AzureTrace, error) {
	if cfg.NumVMs <= 0 {
		return &AzureTrace{}, nil
	}
	s, err := NewStream(cfg)
	if err != nil {
		return nil, err
	}
	return s.Materialize(), nil
}

// clipLifetime bounds a lifetime into [SampleInterval, horizon] and the
// start/end window into the trace horizon, mirroring GenerateAzure's
// clipping so every scenario yields well-formed records.
func clipWindow(start0, life, horizon float64) (start, end float64) {
	if life > horizon {
		life = horizon
	}
	if life < SampleInterval {
		life = SampleInterval
	}
	start = math.Max(0, start0)
	end = math.Min(horizon, start0+life)
	if end-start < SampleInterval {
		end = start + SampleInterval
		if end > horizon {
			start = horizon - SampleInterval
			end = horizon
		}
	}
	return start, end
}
