package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Scenario names a synthetic workload shape for the cluster simulator.
// The Azure-like default reproduces the paper's trace statistics; the
// other scenarios stress the engine with workload diversity the paper's
// single trace cannot: pronounced day/night swings, flash crowds, and
// heavy-tailed lifetimes.
type Scenario string

const (
	// ScenarioAzure is the calibrated Azure-2017-like default.
	ScenarioAzure Scenario = "azure"
	// ScenarioDiurnal exaggerates day/night seasonality: arrivals and
	// utilisation both swing hard with the time of day, so the cluster
	// oscillates between deep surplus and deflation pressure.
	ScenarioDiurnal Scenario = "diurnal"
	// ScenarioBursty layers flash crowds over a calm Poisson background:
	// short-lived, hot interactive VMs arrive in tight windows,
	// hammering admission control and reclamation simultaneously.
	ScenarioBursty Scenario = "bursty"
	// ScenarioHeavyTail draws VM lifetimes from a Pareto distribution:
	// most VMs are ephemeral but a fat tail runs for days, so capacity
	// slowly silts up with long-lived residents.
	ScenarioHeavyTail Scenario = "heavytail"
)

// Scenarios lists all scenario kinds in canonical order.
func Scenarios() []Scenario {
	return []Scenario{ScenarioAzure, ScenarioDiurnal, ScenarioBursty, ScenarioHeavyTail}
}

// ParseScenario validates a scenario name.
func ParseScenario(s string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if string(sc) == s {
			return sc, nil
		}
	}
	return "", fmt.Errorf("trace: unknown scenario %q (want azure, diurnal, bursty or heavytail)", s)
}

// GenerateNamed parses a scenario name and generates its trace in one
// step — the name → generator lookup shared by the simulation CLIs
// (deflationsim, benchreport), which used to duplicate it.
func GenerateNamed(name string, numVMs int, duration float64, seed int64) (*AzureTrace, error) {
	kind, err := ParseScenario(name)
	if err != nil {
		return nil, err
	}
	return GenerateScenario(ScenarioConfig{Kind: kind, NumVMs: numVMs, Duration: duration, Seed: seed})
}

// ScenarioGenerator validates a scenario name once and returns the pure
// seed → trace generator replicated sweeps fan out over (each worker
// synthesises its own independently seeded replicate).
func ScenarioGenerator(name string, numVMs int, duration float64) (func(seed int64) *AzureTrace, error) {
	kind, err := ParseScenario(name)
	if err != nil {
		return nil, err
	}
	return func(seed int64) *AzureTrace {
		// The kind is pre-validated and GenerateScenario has no other
		// error path, so the error is statically nil here.
		tr, _ := GenerateScenario(ScenarioConfig{Kind: kind, NumVMs: numVMs, Duration: duration, Seed: seed})
		return tr
	}, nil
}

// ScenarioConfig parameterises GenerateScenario. Generation is a pure
// function of the config: the same config always yields the same trace,
// which is what lets sweep workers generate traces concurrently and
// still produce bit-for-bit reproducible results.
type ScenarioConfig struct {
	Kind     Scenario
	NumVMs   int
	Duration float64 // horizon in seconds
	Seed     int64
}

// DefaultScenarioConfig returns kind with the generator defaults (1000
// VMs over three days, seed 1).
func DefaultScenarioConfig(kind Scenario) ScenarioConfig {
	return ScenarioConfig{Kind: kind, NumVMs: 1000, Duration: 3 * 86400, Seed: 1}
}

// GenerateScenario builds the synthetic trace for cfg.
func GenerateScenario(cfg ScenarioConfig) (*AzureTrace, error) {
	if cfg.NumVMs <= 0 {
		return &AzureTrace{}, nil
	}
	if cfg.Duration < SampleInterval {
		cfg.Duration = SampleInterval
	}
	switch cfg.Kind {
	case "", ScenarioAzure:
		az := DefaultAzureConfig()
		az.NumVMs = cfg.NumVMs
		az.Duration = cfg.Duration
		az.Seed = cfg.Seed
		return GenerateAzure(az), nil
	case ScenarioDiurnal:
		return generateDiurnal(cfg), nil
	case ScenarioBursty:
		return generateBursty(cfg), nil
	case ScenarioHeavyTail:
		return generateHeavyTail(cfg), nil
	}
	return nil, fmt.Errorf("trace: unknown scenario %q", cfg.Kind)
}

// clipLifetime bounds a lifetime into [SampleInterval, horizon] and the
// start/end window into the trace horizon, mirroring GenerateAzure's
// clipping so every scenario yields well-formed records.
func clipWindow(start0, life, horizon float64) (start, end float64) {
	if life > horizon {
		life = horizon
	}
	if life < SampleInterval {
		life = SampleInterval
	}
	start = math.Max(0, start0)
	end = math.Min(horizon, start0+life)
	if end-start < SampleInterval {
		end = start + SampleInterval
		if end > horizon {
			start = horizon - SampleInterval
			end = horizon
		}
	}
	return start, end
}

// makeVM assembles one record, synthesising its utilisation series from
// the class parameters.
func makeVM(rng *rand.Rand, id int, class VMClass, p ClassParams, start, end float64) *VMRecord {
	cores := pickWeightedCores(rng)
	memMB := float64(cores) * pickWeightedMemPerCore(rng) * 1024
	if memMB > 98304 {
		memMB = 98304
	}
	vm := &VMRecord{
		ID:       fmt.Sprintf("vm-%06d", id),
		Class:    class,
		Cores:    cores,
		MemoryMB: memMB,
		Start:    start,
		End:      end,
	}
	vm.CPUUtil = synthesizeUtil(rng, p, start, end-start)
	return vm
}

// generateDiurnal produces a trace whose arrival density and per-VM
// utilisation both follow a strong 24h cycle: arrival times are drawn
// by accept-reject against 1 + A*sin with A close to 1, and the class
// parameters carry wide diurnal amplitude bands.
func generateDiurnal(cfg ScenarioConfig) *AzureTrace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := DefaultAzureConfig()
	params := base.Params
	for c := range params {
		params[c].DiurnalAmpMin = 0.6
		params[c].DiurnalAmpMax = 1.0
	}
	const arrivalAmp = 0.95
	t := &AzureTrace{VMs: make([]*VMRecord, 0, cfg.NumVMs)}
	for i := 0; i < cfg.NumVMs; i++ {
		class := pickClass(rng, base.ClassMix)
		life := pickLifetime(rng, cfg.Duration)
		start0 := -life + rng.Float64()*(cfg.Duration+life)
		for rng.Float64() > (1+arrivalAmp*math.Sin(2*math.Pi*start0/86400))/(1+arrivalAmp) {
			start0 = -life + rng.Float64()*(cfg.Duration+life)
		}
		start, end := clipWindow(start0, life, cfg.Duration)
		t.VMs = append(t.VMs, makeVM(rng, i, class, params[class], start, end))
	}
	return t
}

// generateBursty produces a calm Poisson background with a handful of
// flash-crowd windows: roughly a third of all VMs are short-lived, hot
// interactive instances launched within ~30-minute windows (one window
// per trace day), the arrival pattern of an autoscaler chasing a viral
// event.
func generateBursty(cfg ScenarioConfig) *AzureTrace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := DefaultAzureConfig()
	// Flash-crowd VMs run hot from launch: high floor, frequent bursts.
	crowd := ClassParams{
		BaseLogMean: math.Log(45), BaseLogStd: 0.3,
		DiurnalAmpMin: 0, DiurnalAmpMax: 0.1,
		NoiseStd: 6, NoiseCorr: 0.5,
		BurstProb: 0.15, BurstMeanLen: 4,
		BurstLevelMin: 70, BurstLevelMax: 100,
	}
	days := int(cfg.Duration/86400) + 1
	windows := make([]float64, 0, days)
	for d := 0; d < days; d++ {
		// One crowd per day at a random daytime hour.
		at := float64(d)*86400 + 8*3600 + rng.Float64()*10*3600
		if at < cfg.Duration {
			windows = append(windows, at)
		}
	}
	nCrowd := cfg.NumVMs / 3
	if len(windows) == 0 {
		nCrowd = 0
	}
	t := &AzureTrace{VMs: make([]*VMRecord, 0, cfg.NumVMs)}
	for i := 0; i < cfg.NumVMs; i++ {
		if i < nCrowd {
			// Flash-crowd member: arrives inside a window, lives 15-90 min.
			w := windows[i%len(windows)]
			start0 := w + rng.Float64()*1800
			life := 900 + rng.Float64()*4500
			start, end := clipWindow(start0, life, cfg.Duration)
			t.VMs = append(t.VMs, makeVM(rng, i, Interactive, crowd, start, end))
			continue
		}
		// Background: uniform (Poisson-like) arrivals, standard mix.
		class := pickClass(rng, base.ClassMix)
		life := pickLifetime(rng, cfg.Duration)
		start0 := -life + rng.Float64()*(cfg.Duration+life)
		start, end := clipWindow(start0, life, cfg.Duration)
		t.VMs = append(t.VMs, makeVM(rng, i, class, base.Params[class], start, end))
	}
	return t
}

// generateHeavyTail draws lifetimes from a Pareto distribution with
// shape alpha=1.2 and scale of 15 minutes — most VMs die within the
// hour, a fat tail survives for days — and gives the long-lived tail
// spikier utilisation so reclamation keeps meeting entrenched
// residents.
func generateHeavyTail(cfg ScenarioConfig) *AzureTrace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := DefaultAzureConfig()
	const (
		alpha = 1.2
		scale = 900.0
	)
	t := &AzureTrace{VMs: make([]*VMRecord, 0, cfg.NumVMs)}
	for i := 0; i < cfg.NumVMs; i++ {
		class := pickClass(rng, base.ClassMix)
		life := scale * math.Pow(1-rng.Float64(), -1/alpha)
		if life > cfg.Duration {
			life = cfg.Duration
		}
		start0 := -life + rng.Float64()*(cfg.Duration+life)
		start, end := clipWindow(start0, life, cfg.Duration)
		p := base.Params[class]
		if life > 86400 {
			// The entrenched tail bursts harder and longer.
			p.BurstProb *= 2
			p.BurstMeanLen *= 2
		}
		t.VMs = append(t.VMs, makeVM(rng, i, class, p, start, end))
	}
	return t
}
