package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// This file implements the streaming trace generator: every VM of a
// synthetic trace is a pure function of (config, index). A Stream hands
// out compact per-VM parameter records (VMParams) on demand and
// synthesizes utilisation samples lazily from a per-VM RNG seed, so a
// 10M-VM simulation holds O(live VMs) of trace state instead of
// materialising ~10^9 float64 samples up front. The eager generators
// (GenerateAzure, GenerateScenario) are thin wrappers over
// Stream.Materialize, which is what makes streamed and eager runs
// bit-for-bit identical by construction — and lets the differential
// suite prove it end-to-end through full simulation results.

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64,
// used both to derive independent per-VM seeds and as the vmSource step
// function.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Seed-derivation channels: each VM draws its placement parameters and
// its utilisation series from independent streams, so the number of
// parameter draws (which varies with accept-reject arrival sampling)
// can never shift the utilisation bits.
const (
	chParams uint64 = iota
	chUtil
	chShape // trace-level shape state (e.g. bursty crowd windows)
)

// streamSeed derives the per-(trace seed, VM index, channel) RNG seed.
func streamSeed(seed int64, index int, channel uint64) uint64 {
	h := mix64(uint64(seed))
	h = mix64(h ^ mix64(channel))
	return mix64(h ^ mix64(uint64(index)))
}

// vmSource is a compact splitmix64 rand.Source64: 8 bytes of state
// instead of math/rand's ~4.9 KB default source, which matters when a
// cursor per live VM carries one. It satisfies rand.Source64, so
// rand.Rand's NormFloat64/ExpFloat64 run their standard algorithms over
// it.
type vmSource struct{ state uint64 }

func (s *vmSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *vmSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *vmSource) Seed(seed int64) { s.state = uint64(seed) }

// Float64 mirrors math/rand's Int63-based algorithm (including the
// rounding retry) so parameter draws need no rand.Rand allocation.
func (s *vmSource) Float64() float64 {
	for {
		f := float64(s.Int63()) / (1 << 63)
		if f < 1 {
			return f
		}
	}
}

// floatSource is the single-method surface the weighted-pick helpers
// need; both *rand.Rand and *vmSource provide it.
type floatSource interface{ Float64() float64 }

// VMParams is the compact per-VM record a Stream generates: everything
// needed to materialise the VM — metadata plus the utilisation-series
// seed and class parameters — in a few hundred bytes, with the samples
// themselves left unsynthesized.
type VMParams struct {
	Index    int
	Class    VMClass
	Cores    int
	MemoryMB float64
	// Start and End are the clipped lifetime window, exactly as a
	// materialised VMRecord would carry.
	Start, End float64
	// UtilSeed seeds the utilisation synthesis stream (channel chUtil).
	UtilSeed uint64
	// P is the utilisation process configuration for this VM (already
	// including any per-VM adjustments, e.g. the heavy-tail burst boost).
	P ClassParams
}

// ID returns the VM's trace identifier, identical to the eager
// generators' naming.
func (p VMParams) ID() string { return fmt.Sprintf("vm-%06d", p.Index) }

// Samples returns the utilisation series length.
func (p VMParams) Samples() int {
	n := int(math.Ceil((p.End - p.Start) / SampleInterval))
	if n < 1 {
		n = 1
	}
	return n
}

// utilState is the four-component utilisation process (lognormal base,
// diurnal modulation, AR(1) noise, burst sojourns) factored into an
// explicit per-sample state machine, shared by eager series synthesis
// and the incremental UtilCursor so both produce identical bits.
type utilState struct {
	p          ClassParams
	start      float64
	n          int
	base       float64
	amp        float64
	phase      float64
	burstProb  float64
	noise      float64
	burstLeft  int
	burstLevel float64
}

// init performs the per-VM header draws. The draw order (base, amp,
// phase, burst scale) is the generator's historical order and must not
// change: it defines the utilisation stream.
func (u *utilState) init(rng *rand.Rand, p ClassParams, start, life float64) {
	n := int(math.Ceil(life / SampleInterval))
	if n < 1 {
		n = 1
	}
	u.p, u.start, u.n = p, start, n
	base := math.Exp(p.BaseLogMean + p.BaseLogStd*rng.NormFloat64())
	if base > 90 {
		base = 90
	}
	u.base = base
	u.amp = p.DiurnalAmpMin + rng.Float64()*(p.DiurnalAmpMax-p.DiurnalAmpMin)
	u.phase = rng.Float64() * 86400
	// Per-VM burst propensity: scale the class burst probability by a
	// random factor so some VMs are consistently calm and others spiky,
	// producing the p95 spread of Figure 8.
	burstScale := math.Exp(0.8 * rng.NormFloat64())
	bp := p.BurstProb * burstScale
	if bp > 0.5 {
		bp = 0.5
	}
	u.burstProb = bp
	u.noise, u.burstLeft, u.burstLevel = 0, 0, 0
}

// next synthesizes sample i. Callers must request samples in order
// (0, 1, 2, ...) — the per-sample draws are a sequential stream.
func (u *utilState) next(rng *rand.Rand, i int) float64 {
	ts := u.start + float64(i)*SampleInterval
	diurnal := 1 + u.amp*math.Sin(2*math.Pi*(ts+u.phase)/86400)
	u.noise = u.p.NoiseCorr*u.noise + rng.NormFloat64()*u.p.NoiseStd
	v := u.base*diurnal + u.noise

	if u.burstLeft > 0 {
		u.burstLeft--
		if u.burstLevel > v {
			v = u.burstLevel
		}
	} else if rng.Float64() < u.burstProb {
		if u.p.BurstMeanLen > 1 {
			u.burstLeft = 1 + int(rng.ExpFloat64()*(u.p.BurstMeanLen-1))
		}
		u.burstLevel = u.p.BurstLevelMin + rng.Float64()*(u.p.BurstLevelMax-u.p.BurstLevelMin)
		if u.burstLevel > v {
			v = u.burstLevel
		}
	}

	if v < 0.5 {
		v = 0.5
	}
	if v > 100 {
		v = 100
	}
	return v
}

// SeriesSynth synthesizes full utilisation series from VMParams,
// reusing one rand.Rand + source across calls so a consumer walking
// many VMs (admission-time P95, eager materialisation) allocates
// nothing per VM beyond the caller's buffer.
type SeriesSynth struct {
	src vmSource
	rng *rand.Rand
}

// NewSeriesSynth returns a reusable synthesizer. (A constructor rather
// than a zero value: the rand.Rand must wrap the struct's own source.)
func NewSeriesSynth() *SeriesSynth {
	s := &SeriesSynth{}
	s.rng = rand.New(&s.src)
	return s
}

// Append appends p's full utilisation series to buf and returns it.
func (sy *SeriesSynth) Append(p VMParams, buf []float64) []float64 {
	sy.src.state = p.UtilSeed
	var u utilState
	u.init(sy.rng, p.P, p.Start, p.End-p.Start)
	for i := 0; i < u.n; i++ {
		buf = append(buf, u.next(sy.rng, i))
	}
	return buf
}

// UtilCursor reads one live VM's utilisation samples incrementally:
// O(1) amortised per forward read, ~200 bytes of state, no memoised
// series. Backward reads replay from the seed (correct but O(n));
// the simulation only ever reads forward. The zero value is unusable —
// construct with NewUtilCursor and (re)bind VMs with Reset, which is
// what lets an engine recycle cursors through a free list.
type UtilCursor struct {
	src        vmSource
	rng        *rand.Rand
	u          utilState
	seed       uint64
	start, end float64
	next       int     // samples [0, next) have been generated
	last       float64 // sample next-1
}

// NewUtilCursor returns an unbound cursor.
func NewUtilCursor() *UtilCursor {
	c := &UtilCursor{}
	c.rng = rand.New(&c.src)
	return c
}

// Reset binds the cursor to p, performing the series header draws.
func (c *UtilCursor) Reset(p VMParams) {
	c.seed = p.UtilSeed
	c.start, c.end = p.Start, p.End
	c.src.state = p.UtilSeed
	c.u.init(c.rng, p.P, p.Start, p.End-p.Start)
	c.next, c.last = 0, 0
}

// At returns the utilisation sample covering absolute time t, with
// exactly VMRecord.UtilAt's semantics: 0 outside [start, end), and the
// final sample covers any trailing partial interval.
func (c *UtilCursor) At(t float64) float64 {
	if t < c.start || t >= c.end {
		return 0
	}
	i := int((t - c.start) / SampleInterval)
	if i >= c.u.n {
		i = c.u.n - 1
	}
	if i < c.next-1 {
		// Backward read: replay the stream from its seed.
		c.src.state = c.seed
		c.u.init(c.rng, c.u.p, c.start, c.end-c.start)
		c.next, c.last = 0, 0
	}
	for c.next <= i {
		c.last = c.u.next(c.rng, c.next)
		c.next++
	}
	return c.last
}

// Stream generates a synthetic trace lazily: Params(i) is a pure
// function of the construction config and i, so any number of engines
// (or goroutines) may share one Stream — it is immutable after
// construction.
type Stream struct {
	kind    Scenario
	n       int
	seed    int64
	horizon float64
	// az drives class mix, size mix, lifetime draws and (for the azure
	// kind) the utilisation class parameters.
	az AzureConfig
	// diurnalParams are the widened-amplitude class parameters of the
	// diurnal scenario.
	diurnalParams [3]ClassParams
	// Bursty-scenario shape: flash-crowd windows and membership count.
	crowd   ClassParams
	windows []float64
	nCrowd  int
}

// NewAzureStream builds the streaming form of GenerateAzure(cfg).
func NewAzureStream(cfg AzureConfig) *Stream {
	if cfg.NumVMs < 0 {
		cfg.NumVMs = 0
	}
	if cfg.Duration < SampleInterval {
		cfg.Duration = SampleInterval
	}
	return &Stream{kind: ScenarioAzure, n: cfg.NumVMs, seed: cfg.Seed, horizon: cfg.Duration, az: cfg}
}

// NewStream builds the streaming form of GenerateScenario(cfg).
func NewStream(cfg ScenarioConfig) (*Stream, error) {
	if cfg.NumVMs < 0 {
		cfg.NumVMs = 0
	}
	if cfg.Duration < SampleInterval {
		cfg.Duration = SampleInterval
	}
	base := DefaultAzureConfig()
	base.NumVMs = cfg.NumVMs
	base.Duration = cfg.Duration
	base.Seed = cfg.Seed
	s := &Stream{n: cfg.NumVMs, seed: cfg.Seed, horizon: cfg.Duration, az: base}
	switch cfg.Kind {
	case "", ScenarioAzure:
		s.kind = ScenarioAzure
	case ScenarioDiurnal:
		s.kind = ScenarioDiurnal
		s.diurnalParams = base.Params
		for c := range s.diurnalParams {
			s.diurnalParams[c].DiurnalAmpMin = 0.6
			s.diurnalParams[c].DiurnalAmpMax = 1.0
		}
	case ScenarioBursty:
		s.kind = ScenarioBursty
		// Flash-crowd VMs run hot from launch: high floor, frequent
		// bursts.
		s.crowd = ClassParams{
			BaseLogMean: math.Log(45), BaseLogStd: 0.3,
			DiurnalAmpMin: 0, DiurnalAmpMax: 0.1,
			NoiseStd: 6, NoiseCorr: 0.5,
			BurstProb: 0.15, BurstMeanLen: 4,
			BurstLevelMin: 70, BurstLevelMax: 100,
		}
		// One crowd window per trace day at a random daytime hour; the
		// window schedule is trace-level shape state drawn from its own
		// seed channel.
		var src vmSource
		src.state = streamSeed(cfg.Seed, 0, chShape)
		days := int(cfg.Duration/86400) + 1
		for d := 0; d < days; d++ {
			at := float64(d)*86400 + 8*3600 + src.Float64()*10*3600
			if at < cfg.Duration {
				s.windows = append(s.windows, at)
			}
		}
		s.nCrowd = cfg.NumVMs / 3
		if len(s.windows) == 0 {
			s.nCrowd = 0
		}
	case ScenarioHeavyTail:
		s.kind = ScenarioHeavyTail
	default:
		return nil, fmt.Errorf("trace: unknown scenario %q", cfg.Kind)
	}
	return s, nil
}

// NewNamedStream parses a scenario name and builds its stream — the
// streaming analogue of GenerateNamed.
func NewNamedStream(name string, numVMs int, duration float64, seed int64) (*Stream, error) {
	kind, err := ParseScenario(name)
	if err != nil {
		return nil, err
	}
	return NewStream(ScenarioConfig{Kind: kind, NumVMs: numVMs, Duration: duration, Seed: seed})
}

// Len returns the number of VMs in the stream.
func (s *Stream) Len() int { return s.n }

// Seed returns the trace seed the stream was built with.
func (s *Stream) Seed() int64 { return s.seed }

// Kind returns the stream's scenario.
func (s *Stream) Kind() Scenario { return s.kind }

// Horizon returns the nominal trace horizon (config duration). The
// actual last departure may precede it; simulation engines derive their
// sampling horizon from the max End over Params.
func (s *Stream) Horizon() float64 { return s.horizon }

// Params generates VM i's parameter record. Pure: same (stream, i) →
// same record, any call order, safe for concurrent use.
func (s *Stream) Params(i int) VMParams {
	var src vmSource
	src.state = streamSeed(s.seed, i, chParams)
	p := VMParams{Index: i, UtilSeed: streamSeed(s.seed, i, chUtil)}
	switch s.kind {
	case ScenarioDiurnal:
		s.diurnalVM(&src, &p)
	case ScenarioBursty:
		s.burstyVM(&src, &p)
	case ScenarioHeavyTail:
		s.heavyTailVM(&src, &p)
	default:
		s.azureVM(&src, &p)
	}
	return p
}

// pickSize draws the VM's core count and memory, shared by every
// scenario (draw order: cores, then memory per core).
func pickSize(src floatSource, p *VMParams) {
	p.Cores = pickWeightedCores(src)
	memMB := float64(p.Cores) * pickWeightedMemPerCore(src) * 1024
	// Cap at 96 GB: the dataset's VM sizes all fit the paper's
	// 48-CPU/128-GB servers with headroom.
	if memMB > 98304 {
		memMB = 98304
	}
	p.MemoryMB = memMB
}

// diurnalArrival draws a near-stationary arrival offset in
// [-life, horizon] accept-rejected against 1 + amp*sin so short- and
// medium-lived VMs concentrate in daytime hours.
func diurnalArrival(src floatSource, life, horizon, amp float64) float64 {
	start0 := -life + src.Float64()*(horizon+life)
	for src.Float64() > (1+amp*math.Sin(2*math.Pi*start0/86400))/(1+amp) {
		start0 = -life + src.Float64()*(horizon+life)
	}
	return start0
}

// azureVM draws the calibrated Azure-like default: class, size,
// lifetime, then a diurnally modulated arrival.
func (s *Stream) azureVM(src *vmSource, p *VMParams) {
	p.Class = pickClass(src, s.az.ClassMix)
	pickSize(src, p)
	life := pickLifetime(src, s.horizon)
	const diurnalArrivalAmp = 0.8
	start0 := diurnalArrival(src, life, s.horizon, diurnalArrivalAmp)
	p.Start, p.End = clipWindow(start0, life, s.horizon)
	p.P = s.az.Params[p.Class]
}

// diurnalVM exaggerates the day/night cycle: arrival amplitude near 1
// and widened per-class diurnal amplitude bands.
func (s *Stream) diurnalVM(src *vmSource, p *VMParams) {
	p.Class = pickClass(src, s.az.ClassMix)
	life := pickLifetime(src, s.horizon)
	const arrivalAmp = 0.95
	start0 := diurnalArrival(src, life, s.horizon, arrivalAmp)
	pickSize(src, p)
	p.Start, p.End = clipWindow(start0, life, s.horizon)
	p.P = s.diurnalParams[p.Class]
}

// burstyVM: the first third of indices are flash-crowd members pinned
// to per-day windows; the rest are calm Poisson-like background.
func (s *Stream) burstyVM(src *vmSource, p *VMParams) {
	if p.Index < s.nCrowd {
		// Flash-crowd member: arrives inside a window, lives 15-90 min.
		w := s.windows[p.Index%len(s.windows)]
		start0 := w + src.Float64()*1800
		life := 900 + src.Float64()*4500
		pickSize(src, p)
		p.Class = Interactive
		p.Start, p.End = clipWindow(start0, life, s.horizon)
		p.P = s.crowd
		return
	}
	p.Class = pickClass(src, s.az.ClassMix)
	life := pickLifetime(src, s.horizon)
	start0 := -life + src.Float64()*(s.horizon+life)
	pickSize(src, p)
	p.Start, p.End = clipWindow(start0, life, s.horizon)
	p.P = s.az.Params[p.Class]
}

// heavyTailVM draws Pareto(alpha=1.2, scale=15min) lifetimes; the
// entrenched tail (>1 day) bursts harder and longer.
func (s *Stream) heavyTailVM(src *vmSource, p *VMParams) {
	const (
		alpha = 1.2
		scale = 900.0
	)
	p.Class = pickClass(src, s.az.ClassMix)
	life := scale * math.Pow(1-src.Float64(), -1/alpha)
	if life > s.horizon {
		life = s.horizon
	}
	start0 := -life + src.Float64()*(s.horizon+life)
	pickSize(src, p)
	p.Start, p.End = clipWindow(start0, life, s.horizon)
	p.P = s.az.Params[p.Class]
	if life > 86400 {
		p.P.BurstProb *= 2
		p.P.BurstMeanLen *= 2
	}
}

// AppendUtil appends VM p's full utilisation series to buf. For bulk
// use, prefer a reusable SeriesSynth (this allocates a synthesizer per
// call).
func (s *Stream) AppendUtil(p VMParams, buf []float64) []float64 {
	return NewSeriesSynth().Append(p, buf)
}

// Record materialises VM i as an eager VMRecord, utilisation included.
func (s *Stream) Record(i int) *VMRecord {
	p := s.Params(i)
	vm := &VMRecord{
		ID:       p.ID(),
		Class:    p.Class,
		Cores:    p.Cores,
		MemoryMB: p.MemoryMB,
		Start:    p.Start,
		End:      p.End,
	}
	vm.CPUUtil = s.AppendUtil(p, make([]float64, 0, p.Samples()))
	return vm
}

// Materialize builds the full eager trace. The eager generators
// delegate here, so eager == streamed bit-for-bit by construction.
func (s *Stream) Materialize() *AzureTrace {
	t := &AzureTrace{VMs: make([]*VMRecord, 0, s.n)}
	sy := NewSeriesSynth()
	for i := 0; i < s.n; i++ {
		p := s.Params(i)
		vm := &VMRecord{
			ID:       p.ID(),
			Class:    p.Class,
			Cores:    p.Cores,
			MemoryMB: p.MemoryMB,
			Start:    p.Start,
			End:      p.End,
		}
		vm.CPUUtil = sy.Append(p, make([]float64, 0, p.Samples()))
		t.VMs = append(t.VMs, vm)
	}
	return t
}

// EagerBytesEstimate returns the approximate resident bytes a fully
// materialised form of this stream would occupy: the utilisation
// samples plus per-record fixed overhead (struct, ID string, slice
// pointer). It is the denominator of the streamed-memory win reported
// by the scale benchmarks.
func (s *Stream) EagerBytesEstimate() uint64 {
	// VMRecord struct 96 B + ID string backing 16 B + *VMRecord slot 8 B.
	const perVM = 120
	var total uint64
	for i := 0; i < s.n; i++ {
		total += perVM + 8*uint64(s.Params(i).Samples())
	}
	return total
}

// MaxEnd returns the latest departure time across the stream — the
// simulation horizon, equal to Materialize().Duration().
func (s *Stream) MaxEnd() float64 {
	var d float64
	for i := 0; i < s.n; i++ {
		if p := s.Params(i); p.End > d {
			d = p.End
		}
	}
	return d
}
