package trace

import (
	"math"
)

// ClassParams control the synthetic utilisation process for one workload
// class. The process is: a per-VM lognormal base level, a diurnal
// modulation, AR(1) noise, and an on/off burst (spike) process with
// geometrically distributed sojourns. These four ingredients reproduce
// the distributional features of the Azure dataset that Section 3's
// analysis depends on: low medians, heavy upper tails, class separation
// between interactive and batch workloads, and meaningful p95 structure.
type ClassParams struct {
	// BaseLogMean and BaseLogStd parameterise the lognormal distribution
	// of a VM's baseline utilisation percentage.
	BaseLogMean, BaseLogStd float64
	// Diurnal amplitude (fraction of base) is drawn uniformly per VM.
	DiurnalAmpMin, DiurnalAmpMax float64
	// AR(1) noise: u += rho*prev + N(0, std).
	NoiseStd, NoiseCorr float64
	// BurstProb is the per-sample probability of entering a burst;
	// BurstMeanLen is the geometric mean sojourn (in samples);
	// burst level is drawn uniformly in [BurstLevelMin, BurstLevelMax].
	BurstProb, BurstMeanLen      float64
	BurstLevelMin, BurstLevelMax float64
}

// AzureConfig configures the synthetic Azure-like trace generator.
type AzureConfig struct {
	// NumVMs is the number of VM records to generate.
	NumVMs int
	// Duration is the trace horizon in seconds.
	Duration float64
	// Seed makes generation reproducible.
	Seed int64
	// ClassMix gives the probability of each class, indexed by VMClass.
	ClassMix [3]float64
	// Params configures the utilisation process per class.
	Params [3]ClassParams
}

// DefaultAzureConfig returns a configuration calibrated against the
// published statistics of the Azure 2017 dataset as used by the paper:
// interactive VMs have low median utilisation with diurnal peaks (impact
// 1-15% for 10-50% deflation, Figure 6), delay-insensitive VMs run hot in
// bursts (impact 1-30%), and roughly half of all VMs are interactive
// (Section 7.1.2 derives ~50% deflatable VMs from the class labels).
func DefaultAzureConfig() AzureConfig {
	return AzureConfig{
		NumVMs:   1000,
		Duration: 3 * 86400, // three days
		Seed:     1,
		ClassMix: [3]float64{0.50, 0.27, 0.23}, // interactive, delay-insensitive, unknown
		Params: [3]ClassParams{
			Interactive: {
				BaseLogMean: math.Log(13), BaseLogStd: 0.72,
				DiurnalAmpMin: 0.3, DiurnalAmpMax: 0.8,
				NoiseStd: 4, NoiseCorr: 0.7,
				BurstProb: 0.008, BurstMeanLen: 3,
				BurstLevelMin: 55, BurstLevelMax: 100,
			},
			DelayInsensitive: {
				BaseLogMean: math.Log(28), BaseLogStd: 0.55,
				DiurnalAmpMin: 0.0, DiurnalAmpMax: 0.2,
				NoiseStd: 6, NoiseCorr: 0.6,
				BurstProb: 0.045, BurstMeanLen: 8,
				BurstLevelMin: 55, BurstLevelMax: 95,
			},
			Unknown: {
				BaseLogMean: math.Log(20), BaseLogStd: 0.7,
				DiurnalAmpMin: 0.1, DiurnalAmpMax: 0.5,
				NoiseStd: 5, NoiseCorr: 0.65,
				BurstProb: 0.025, BurstMeanLen: 5,
				BurstLevelMin: 55, BurstLevelMax: 98,
			},
		},
	}
}

// coreOptions and their sampling weights approximate the Azure VM size
// mix (skewed strongly toward small VMs).
var coreOptions = []struct {
	cores  int
	weight float64
}{
	{1, 0.30}, {2, 0.28}, {4, 0.20}, {8, 0.12}, {16, 0.06}, {24, 0.03}, {32, 0.01},
}

// memPerCoreGB options (Azure families: compute-optimised ~1.75-2 GB/core,
// general purpose ~4, memory-optimised ~8).
var memPerCoreOptions = []struct {
	gb     float64
	weight float64
}{
	{0.75, 0.15}, {1.75, 0.25}, {2, 0.20}, {4, 0.28}, {8, 0.12},
}

func pickWeightedCores(rng floatSource) int {
	r := rng.Float64()
	var c float64
	for _, o := range coreOptions {
		c += o.weight
		if r < c {
			return o.cores
		}
	}
	return coreOptions[len(coreOptions)-1].cores
}

func pickWeightedMemPerCore(rng floatSource) float64 {
	r := rng.Float64()
	var c float64
	for _, o := range memPerCoreOptions {
		c += o.weight
		if r < c {
			return o.gb
		}
	}
	return memPerCoreOptions[len(memPerCoreOptions)-1].gb
}

func pickClass(rng floatSource, mix [3]float64) VMClass {
	total := mix[0] + mix[1] + mix[2]
	if total <= 0 {
		return Unknown
	}
	r := rng.Float64() * total
	if r < mix[0] {
		return Interactive
	}
	if r < mix[0]+mix[1] {
		return DelayInsensitive
	}
	return Unknown
}

// pickLifetime draws a VM lifetime (seconds): a mixture of short-lived,
// day-scale, and trace-long VMs, echoing the Azure lifetime distribution.
func pickLifetime(rng floatSource, horizon float64) float64 {
	r := rng.Float64()
	var lt float64
	switch {
	case r < 0.45: // short: 15 min - 2 h
		lt = 900 + rng.Float64()*(7200-900)
	case r < 0.85: // medium: 2 h - 1 day
		lt = 7200 + rng.Float64()*(86400-7200)
	default: // long: 1 day - horizon
		lt = 86400 + rng.Float64()*(horizon-86400)
	}
	if lt > horizon {
		lt = horizon
	}
	if lt < SampleInterval {
		lt = SampleInterval
	}
	return lt
}

// GenerateAzure builds a synthetic Azure-like trace: the eagerly
// materialised form of NewAzureStream(cfg). The generation is
// deterministic for a given configuration, and bit-for-bit identical to
// reading the same VMs through the stream — the streaming form is the
// generator; this wrapper exists as the differential oracle and for
// consumers that want whole-trace slices (sweeps, CSV export, plots).
func GenerateAzure(cfg AzureConfig) *AzureTrace {
	if cfg.NumVMs <= 0 {
		return &AzureTrace{}
	}
	return NewAzureStream(cfg).Materialize()
}
