// Capacity-shock traces: the transient-server side of the simulation.
//
// The paper's premise is that the servers hosting deflatable VMs are
// themselves transient — the provider can unilaterally revoke a server
// or shrink its capacity, and restore it later. This file provides the
// shock-schedule generators the cluster simulator replays against the
// workload trace, modelled on the revocation processes of the related
// transient-computing literature: memoryless per-server revocations
// ("Portfolio-driven Resource Management for Transient Cloud Servers",
// Sharma et al.), temporally constrained revocation windows ("Modeling
// The Temporally Constrained Preemptions of Transient Cloud VMs",
// Kadupitiya et al.), and spatially correlated rack-sized shocks.
//
// Generation is a pure function of (ShockConfig, nServers): the same
// inputs always yield the same schedule, so differential suites can
// replay one shock trace against every engine configuration and demand
// bit-for-bit identical results.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ShockKind types one capacity-shock event.
type ShockKind int

const (
	// ShockRevoke removes a server from service: its VMs must be
	// evacuated (deflation mode) or die (preemption baseline).
	ShockRevoke ShockKind = iota
	// ShockRestore returns a previously revoked server to service.
	ShockRestore
	// ShockResize shrinks or restores a server's capacity in place to
	// Scale times its base capacity; resident VMs deflate (and, if even
	// maximal deflation cannot fit, are evacuated) rather than die.
	ShockResize
)

// String names the kind for logs and test failure messages.
func (k ShockKind) String() string {
	switch k {
	case ShockRevoke:
		return "revoke"
	case ShockRestore:
		return "restore"
	case ShockResize:
		return "resize"
	default:
		return fmt.Sprintf("ShockKind(%d)", int(k))
	}
}

// CapacityShock is one scheduled capacity event against one server.
type CapacityShock struct {
	// At is the event time in seconds from trace start.
	At float64
	// Kind selects revoke, restore or resize.
	Kind ShockKind
	// Server is the target server's index in provisioning order. Shocks
	// addressing servers beyond a run's provisioned count are ignored.
	Server int
	// Scale is the capacity fraction for ShockResize (e.g. 0.5 shrinks
	// the server to half its base capacity; 1.0 restores it). Unused for
	// revoke/restore.
	Scale float64
}

// ShockScenario names a shock-schedule shape.
type ShockScenario string

const (
	// ShockNone generates no shocks.
	ShockNone ShockScenario = "none"
	// ShockPoisson revokes each server independently by a homogeneous
	// Poisson process with exponential outage durations — the memoryless
	// spot-market model.
	ShockPoisson ShockScenario = "poisson"
	// ShockDiurnal constrains revocations to a daily peak-demand window
	// (10:00-16:00), the temporally constrained preemption pattern:
	// providers reclaim transient capacity when paying demand peaks.
	ShockDiurnal ShockScenario = "diurnal"
	// ShockRack revokes contiguous rack-sized server groups together —
	// the spatially correlated failure/reclamation mode a per-server
	// Poisson model cannot produce.
	ShockRack ShockScenario = "rack"
)

// ShockScenarios lists the scenario kinds in canonical order.
func ShockScenarios() []ShockScenario {
	return []ShockScenario{ShockNone, ShockPoisson, ShockDiurnal, ShockRack}
}

// ParseShockScenario validates a shock-scenario name.
func ParseShockScenario(s string) (ShockScenario, error) {
	for _, k := range ShockScenarios() {
		if string(k) == s {
			return k, nil
		}
	}
	return "", fmt.Errorf("trace: unknown shock scenario %q (want none, poisson, diurnal or rack)", s)
}

// Diurnal revocation window: revocations are admitted only between
// these day-relative offsets (the provider's daily demand peak). The
// constants are exported so the analytic risk model (internal/risk) can
// integrate hazard over exactly the window the generator uses.
const (
	DiurnalWindowStart = 10 * 3600.0
	DiurnalWindowLen   = 6 * 3600.0
)

// ShockConfig parameterises GenerateShocks.
type ShockConfig struct {
	// Kind selects the schedule shape.
	Kind ShockScenario
	// Duration is the horizon in seconds; no revocation starts after it.
	Duration float64
	// RatePerDay is the expected number of revocations per server per
	// day (default 0.5).
	RatePerDay float64
	// OutageMean is the mean outage duration in seconds, drawn
	// exponentially with a 60 s floor (default 2 h).
	OutageMean float64
	// RackSize is the correlated group size for ShockRack (default 8).
	RackSize int
	// MaxOutFraction caps the fraction of servers simultaneously
	// revoked; candidate revocations that would exceed it are dropped
	// (default 0.5, minimum one server).
	MaxOutFraction float64
	// RateScale, when non-nil, multiplies RatePerDay per server: server
	// s revokes at RatePerDay*RateScale[s] per day (servers past the
	// slice length scale by 1). This is the portfolio-fleet hook — cheap
	// server types carry higher revocation rates. For rack shocks the
	// shocked rack is drawn weighted by the rack's summed scale, so
	// per-server expectations still follow the scales. A nil RateScale
	// reproduces the historical schedules bit-for-bit.
	RateScale []float64
	// Seed drives the schedule's RNG.
	Seed int64
}

// WithDefaults returns the config with unset fields replaced by the
// generator defaults — the exact parameters GenerateShocks runs with,
// which is what the analytic risk model must read.
func (c ShockConfig) WithDefaults() ShockConfig {
	c.applyDefaults()
	return c
}

// scale returns server s's rate multiplier.
func (c *ShockConfig) scale(s int) float64 {
	if s >= len(c.RateScale) {
		return 1
	}
	return c.RateScale[s]
}

// MaxOutServers converts MaxOutFraction into the simultaneous-revocation
// cap for a fleet of nServers (minimum one). The epsilon absorbs float
// representation error so an exactly-at-cap fraction admits the full
// count: 0.3 of 10 servers caps at 3, not int(2.999...) = 2.
func (c ShockConfig) MaxOutServers(nServers int) int {
	c.applyDefaults()
	maxOut := int(c.MaxOutFraction*float64(nServers) + 1e-9)
	if maxOut < 1 {
		maxOut = 1
	}
	return maxOut
}

// EffectiveRackSize is the correlated group size rack shocks actually
// use for a fleet of nServers: RackSize clamped to the fleet and to the
// MaxOutServers cap. Without the cap clamp a rack wider than the cap
// starves its tail — the admission sweep visits same-instant candidates
// in server order, so servers past the cap inside an oversized rack
// would never be revoked.
func (c ShockConfig) EffectiveRackSize(nServers int) int {
	c.applyDefaults()
	rack := c.RackSize
	if rack > nServers {
		rack = nServers
	}
	if maxOut := c.MaxOutServers(nServers); rack > maxOut {
		rack = maxOut
	}
	return rack
}

func (c *ShockConfig) applyDefaults() {
	if c.RatePerDay <= 0 {
		c.RatePerDay = 0.5
	}
	if c.OutageMean <= 0 {
		c.OutageMean = 2 * 3600
	}
	if c.RackSize <= 0 {
		c.RackSize = 8
	}
	if c.MaxOutFraction <= 0 || c.MaxOutFraction > 1 {
		c.MaxOutFraction = 0.5
	}
}

// outage is one candidate revoke/restore interval for one server.
type outage struct {
	start, end float64
	server     int
}

// MinOutageSeconds floors every outage duration so a revoke and its
// restore can never collapse onto the same instant. Exported because
// the floor shifts the outage-duration mean, and the analytic risk
// model must account for exactly the distribution drawOutage samples.
const MinOutageSeconds = 60.0

// GenerateShocks builds the deterministic shock schedule for a cluster
// of nServers. The returned slice is sorted by (At, Server, Kind); ties
// between a revocation and a restoration at the same instant are
// resolved by the simulator's event-kind ordering (restorations first,
// so a restore-then-re-revoke pair of back-to-back outages replays
// faithfully and returning capacity is visible to same-instant
// evacuations).
// A chronological admission sweep enforces MaxOutFraction and
// non-overlap per server, so a schedule never revokes a server that is
// already out and never takes out more than the configured fraction of
// the fleet at once.
func GenerateShocks(cfg ShockConfig, nServers int) []CapacityShock {
	cfg.applyDefaults()
	if cfg.Kind == "" || cfg.Kind == ShockNone || nServers <= 0 || cfg.Duration <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var cands []outage
	switch cfg.Kind {
	case ShockPoisson:
		cands = poissonOutages(rng, cfg, nServers)
	case ShockDiurnal:
		cands = diurnalOutages(rng, cfg, nServers)
	case ShockRack:
		cands = rackOutages(rng, cfg, nServers)
	}
	return admitOutages(cands, cfg, nServers)
}

// drawOutage samples one outage duration (exponential, floored).
func drawOutage(rng *rand.Rand, cfg ShockConfig) float64 {
	return math.Max(MinOutageSeconds, rng.ExpFloat64()*cfg.OutageMean)
}

// poissonOutages draws each server's revocation timeline independently:
// exponential gaps at RatePerDay (times the server's RateScale),
// exponential outages. Servers are visited in index order off one
// seeded RNG, so the candidate list is a pure function of the config.
func poissonOutages(rng *rand.Rand, cfg ShockConfig, nServers int) []outage {
	gapMean := 86400 / cfg.RatePerDay
	var out []outage
	for s := 0; s < nServers; s++ {
		sc := cfg.scale(s)
		if sc <= 0 {
			continue
		}
		gm := gapMean / sc
		t := rng.ExpFloat64() * gm
		for t < cfg.Duration {
			end := t + drawOutage(rng, cfg)
			out = append(out, outage{start: t, end: end, server: s})
			t = end + rng.ExpFloat64()*gm
		}
	}
	return out
}

// diurnalOutages is poissonOutages thinned to the daily revocation
// window: candidate times are drawn at the boosted in-window rate and
// kept only when they fall inside [10:00, 16:00) of their day, so the
// per-day expectation still matches RatePerDay.
func diurnalOutages(rng *rand.Rand, cfg ShockConfig, nServers int) []outage {
	gapMean := DiurnalWindowLen / cfg.RatePerDay
	var out []outage
	for s := 0; s < nServers; s++ {
		sc := cfg.scale(s)
		if sc <= 0 {
			continue
		}
		gm := gapMean / sc
		t := rng.ExpFloat64() * gm
		for t < cfg.Duration {
			dayOff := math.Mod(t, 86400)
			if dayOff >= DiurnalWindowStart && dayOff < DiurnalWindowStart+DiurnalWindowLen {
				end := t + drawOutage(rng, cfg)
				out = append(out, outage{start: t, end: end, server: s})
				t = end + rng.ExpFloat64()*gm
				continue
			}
			t += rng.ExpFloat64() * gm
		}
	}
	return out
}

// rackOutages draws cluster-level shock times at the rate that keeps
// each server's individual revocation expectation at RatePerDay, and
// takes out one whole contiguous rack of RackSize servers per shock,
// restored together.
func rackOutages(rng *rand.Rand, cfg ShockConfig, nServers int) []outage {
	// The rack clamps to the MaxOutServers cap as well as the fleet: an
	// oversized rack would otherwise have its tail servers dropped by the
	// admission sweep on every shock (same-instant candidates admit in
	// server order), starving them of revocations entirely.
	rack := cfg.EffectiveRackSize(nServers)
	nRacks := (nServers + rack - 1) / rack
	// Rack weights follow the per-server rate scales: each shock draws
	// its rack proportional to the rack's summed scale, so a rack's
	// revocation rate is RatePerDay * avg(scale in rack) per server per
	// day. With no RateScale the draw degenerates to rng.Intn(nRacks),
	// keeping historical schedules bit-identical.
	var weights []float64
	totW := float64(nServers)
	if len(cfg.RateScale) > 0 {
		weights = make([]float64, nRacks)
		totW = 0
		for g := 0; g < nRacks; g++ {
			for s := g * rack; s < (g+1)*rack && s < nServers; s++ {
				weights[g] += cfg.scale(s)
			}
			totW += weights[g]
		}
		if totW <= 0 {
			return nil
		}
	}
	// Each shock revokes `rack` servers, so the cluster-level rate that
	// keeps the per-server expectation at RatePerDay*scale is
	// RatePerDay*totW/rack per day.
	gapMean := 86400 * float64(rack) / (cfg.RatePerDay * totW)
	var out []outage
	t := rng.ExpFloat64() * gapMean
	for t < cfg.Duration {
		var g int
		if weights == nil {
			g = rng.Intn(nRacks)
		} else {
			u := rng.Float64() * totW
			for g = 0; g < nRacks-1; g++ {
				if u < weights[g] {
					break
				}
				u -= weights[g]
			}
		}
		end := t + drawOutage(rng, cfg)
		for s := g * rack; s < (g+1)*rack && s < nServers; s++ {
			out = append(out, outage{start: t, end: end, server: s})
		}
		t += rng.ExpFloat64() * gapMean
	}
	return out
}

// admitOutages sweeps the candidate intervals chronologically, dropping
// any that would overlap an existing outage of the same server or push
// the simultaneously-revoked count past MaxOutFraction, and emits the
// surviving revoke/restore pairs sorted by (At, Server, Kind).
func admitOutages(cands []outage, cfg ShockConfig, nServers int) []CapacityShock {
	if len(cands) == 0 {
		return nil
	}
	maxOut := cfg.MaxOutServers(nServers)
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].start != cands[j].start {
			return cands[i].start < cands[j].start
		}
		return cands[i].server < cands[j].server
	})
	activeEnd := make(map[int]float64) // server -> restore time
	var shocks []CapacityShock
	for _, c := range cands {
		// Release every outage that ended by this candidate's start.
		for s, end := range activeEnd {
			if end <= c.start {
				delete(activeEnd, s)
			}
		}
		if _, busy := activeEnd[c.server]; busy || len(activeEnd) >= maxOut {
			continue
		}
		activeEnd[c.server] = c.end
		shocks = append(shocks,
			CapacityShock{At: c.start, Kind: ShockRevoke, Server: c.server},
			CapacityShock{At: c.end, Kind: ShockRestore, Server: c.server})
	}
	sort.Slice(shocks, func(i, j int) bool {
		a, b := shocks[i], shocks[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Server != b.Server {
			return a.Server < b.Server
		}
		return a.Kind < b.Kind
	})
	return shocks
}
