package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Azure trace CSV layout: one row per VM,
//
//	id,class,cores,memory_mb,start,end,cpu_util
//
// where cpu_util is a semicolon-joined list of 5-minute samples. A header
// row is written and expected.

var azureHeader = []string{"id", "class", "cores", "memory_mb", "start", "end", "cpu_util"}

// WriteAzureCSV serialises the trace.
func WriteAzureCSV(w io.Writer, t *AzureTrace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(azureHeader); err != nil {
		return err
	}
	for _, vm := range t.VMs {
		row := []string{
			vm.ID,
			vm.Class.String(),
			strconv.Itoa(vm.Cores),
			formatFloat(vm.MemoryMB),
			formatFloat(vm.Start),
			formatFloat(vm.End),
			joinSeries(vm.CPUUtil),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadAzureCSV parses a trace written by WriteAzureCSV.
func ReadAzureCSV(r io.Reader) (*AzureTrace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(azureHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading azure header: %w", err)
	}
	if !sliceEqual(header, azureHeader) {
		return nil, fmt.Errorf("trace: unexpected azure header %v", header)
	}
	t := &AzureTrace{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: azure line %d: %w", line, err)
		}
		class, err := ParseVMClass(row[1])
		if err != nil {
			return nil, fmt.Errorf("trace: azure line %d: %w", line, err)
		}
		cores, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("trace: azure line %d cores: %w", line, err)
		}
		mem, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: azure line %d memory: %w", line, err)
		}
		start, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: azure line %d start: %w", line, err)
		}
		end, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: azure line %d end: %w", line, err)
		}
		util, err := splitSeries(row[6])
		if err != nil {
			return nil, fmt.Errorf("trace: azure line %d util: %w", line, err)
		}
		t.VMs = append(t.VMs, &VMRecord{
			ID: row[0], Class: class, Cores: cores, MemoryMB: mem,
			Start: start, End: end, CPUUtil: util,
		})
	}
	return t, nil
}

// Alibaba trace CSV layout: one row per container,
//
//	id,cpu,mem,membw,disk,net
//
// with each series semicolon-joined.

var alibabaHeader = []string{"id", "cpu", "mem", "membw", "disk", "net"}

// WriteAlibabaCSV serialises the trace.
func WriteAlibabaCSV(w io.Writer, t *AlibabaTrace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(alibabaHeader); err != nil {
		return err
	}
	for _, c := range t.Containers {
		row := []string{
			c.ID,
			joinSeries(c.CPUUtil),
			joinSeries(c.MemUtil),
			joinSeries(c.MemBWUtil),
			joinSeries(c.DiskUtil),
			joinSeries(c.NetUtil),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadAlibabaCSV parses a trace written by WriteAlibabaCSV.
func ReadAlibabaCSV(r io.Reader) (*AlibabaTrace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(alibabaHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading alibaba header: %w", err)
	}
	if !sliceEqual(header, alibabaHeader) {
		return nil, fmt.Errorf("trace: unexpected alibaba header %v", header)
	}
	t := &AlibabaTrace{}
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: alibaba line %d: %w", line, err)
		}
		c := &ContainerRecord{ID: row[0]}
		for i, dst := range []*[]float64{&c.CPUUtil, &c.MemUtil, &c.MemBWUtil, &c.DiskUtil, &c.NetUtil} {
			s, err := splitSeries(row[i+1])
			if err != nil {
				return nil, fmt.Errorf("trace: alibaba line %d col %s: %w", line, alibabaHeader[i+1], err)
			}
			*dst = s
		}
		t.Containers = append(t.Containers, c)
	}
	return t, nil
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func joinSeries(xs []float64) string {
	var b strings.Builder
	for i, x := range xs {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(strconv.FormatFloat(x, 'g', 6, 64))
	}
	return b.String()
}

func splitSeries(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ";")
	out := make([]float64, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		out[i] = f
	}
	return out, nil
}

func sliceEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
