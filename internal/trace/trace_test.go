package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"vmdeflate/internal/stats"
)

func TestVMClassRoundTrip(t *testing.T) {
	for _, c := range Classes {
		got, err := ParseVMClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseVMClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseVMClass("bogus"); err == nil {
		t.Error("bogus class should fail")
	}
	if !strings.Contains(VMClass(9).String(), "9") {
		t.Error("unknown class String should include value")
	}
}

func TestVMRecordBasics(t *testing.T) {
	vm := &VMRecord{
		ID: "vm-1", Class: Interactive, Cores: 4, MemoryMB: 8192,
		Start: 600, End: 600 + 4*SampleInterval,
		CPUUtil: []float64{10, 20, 30, 40},
	}
	if vm.Lifetime() != 1200 {
		t.Errorf("Lifetime = %v", vm.Lifetime())
	}
	if vm.MeanUtil() != 25 {
		t.Errorf("MeanUtil = %v", vm.MeanUtil())
	}
	if got := vm.UtilAt(600); got != 10 {
		t.Errorf("UtilAt(start) = %v", got)
	}
	if got := vm.UtilAt(600 + 3.5*SampleInterval); got != 40 {
		t.Errorf("UtilAt(last) = %v", got)
	}
	if got := vm.UtilAt(0); got != 0 {
		t.Errorf("UtilAt(before start) = %v", got)
	}
	if got := vm.UtilAt(vm.End); got != 0 {
		t.Errorf("UtilAt(end) = %v", got)
	}
}

func TestFractionAboveDeflation(t *testing.T) {
	vm := &VMRecord{CPUUtil: []float64{10, 40, 60, 90}}
	// 50% deflation -> threshold 50 -> 60 and 90 are above -> 0.5.
	if got := vm.FractionAboveDeflation(50); got != 0.5 {
		t.Errorf("FractionAboveDeflation(50) = %v", got)
	}
	// 0% deflation -> threshold 100 -> nothing above.
	if got := vm.FractionAboveDeflation(0); got != 0 {
		t.Errorf("FractionAboveDeflation(0) = %v", got)
	}
}

func TestSizeClassification(t *testing.T) {
	cases := []struct {
		memMB float64
		want  SizeClass
	}{
		{1024, SmallVM}, {2048, SmallVM}, {2049, MediumVM},
		{8192, MediumVM}, {8193, LargeVM}, {65536, LargeVM},
	}
	for _, c := range cases {
		vm := &VMRecord{MemoryMB: c.memMB}
		if got := vm.Size(); got != c.want {
			t.Errorf("Size(%v MB) = %v, want %v", c.memMB, got, c.want)
		}
	}
	for _, s := range []SizeClass{SmallVM, MediumVM, LargeVM} {
		if s.String() == "" || strings.HasPrefix(s.String(), "SizeClass") {
			t.Errorf("SizeClass %d has bad name %q", s, s.String())
		}
	}
}

func TestPeakClassification(t *testing.T) {
	cases := []struct {
		p95  float64
		want PeakClass
	}{
		{10, PeakLow}, {32.9, PeakLow}, {33, PeakModerate},
		{65.9, PeakModerate}, {66, PeakHigher}, {79.9, PeakHigher},
		{80, PeakHigh}, {100, PeakHigh},
	}
	for _, c := range cases {
		if got := Peak(c.p95); got != c.want {
			t.Errorf("Peak(%v) = %v, want %v", c.p95, got, c.want)
		}
	}
}

func TestGenerateAzureShape(t *testing.T) {
	cfg := DefaultAzureConfig()
	cfg.NumVMs = 400
	tr := GenerateAzure(cfg)
	if len(tr.VMs) != 400 {
		t.Fatalf("generated %d VMs", len(tr.VMs))
	}
	for _, vm := range tr.VMs {
		if vm.Start < 0 || vm.End > cfg.Duration+SampleInterval {
			t.Fatalf("VM %s lifetime [%v,%v] outside horizon", vm.ID, vm.Start, vm.End)
		}
		if vm.Cores < 1 || vm.MemoryMB <= 0 {
			t.Fatalf("VM %s bad size", vm.ID)
		}
		wantSamples := int(math.Ceil(vm.Lifetime() / SampleInterval))
		if len(vm.CPUUtil) != wantSamples {
			t.Fatalf("VM %s has %d samples, want %d", vm.ID, len(vm.CPUUtil), wantSamples)
		}
		for _, u := range vm.CPUUtil {
			if u < 0 || u > 100 {
				t.Fatalf("VM %s util %v out of range", vm.ID, u)
			}
		}
	}
}

func TestGenerateAzureDeterministic(t *testing.T) {
	cfg := DefaultAzureConfig()
	cfg.NumVMs = 50
	a, b := GenerateAzure(cfg), GenerateAzure(cfg)
	for i := range a.VMs {
		if a.VMs[i].ID != b.VMs[i].ID || a.VMs[i].MeanUtil() != b.VMs[i].MeanUtil() {
			t.Fatal("generation is not deterministic")
		}
	}
	cfg.Seed = 2
	c := GenerateAzure(cfg)
	same := true
	for i := range a.VMs {
		if a.VMs[i].MeanUtil() != c.VMs[i].MeanUtil() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different traces")
	}
}

// The class-level separation that drives Figure 6: interactive VMs must
// have materially more slack (lower fraction-above) than delay-insensitive
// VMs, and the absolute levels must be in the paper's reported bands
// (interactive ~1-15%, batch up to ~30% over 10-50% deflation).
func TestGenerateAzureClassSeparation(t *testing.T) {
	cfg := DefaultAzureConfig()
	cfg.NumVMs = 1500
	tr := GenerateAzure(cfg)
	byClass := tr.ByClass()
	meanAbove := func(vms []*VMRecord, defl float64) float64 {
		var xs []float64
		for _, vm := range vms {
			xs = append(xs, vm.FractionAboveDeflation(defl))
		}
		return stats.Mean(xs)
	}
	i50 := meanAbove(byClass[Interactive], 50)
	b50 := meanAbove(byClass[DelayInsensitive], 50)
	i10 := meanAbove(byClass[Interactive], 10)
	if i50 >= b50 {
		t.Errorf("interactive impact (%.3f) should be below batch (%.3f) at 50%% deflation", i50, b50)
	}
	if i50 < 0.03 || i50 > 0.25 {
		t.Errorf("interactive fraction-above at 50%% deflation = %.3f, want ~0.15 (band 0.03-0.25)", i50)
	}
	if b50 < 0.15 || b50 > 0.45 {
		t.Errorf("batch fraction-above at 50%% deflation = %.3f, want ~0.30 (band 0.15-0.45)", b50)
	}
	if i10 > 0.05 {
		t.Errorf("interactive fraction-above at 10%% deflation = %.3f, want ~0.01", i10)
	}
}

// Figure 5's headline: even at 50% deflation the median VM spends ~80%
// of its time below the deflated allocation.
func TestGenerateAzureMedianSlack(t *testing.T) {
	cfg := DefaultAzureConfig()
	cfg.NumVMs = 1500
	tr := GenerateAzure(cfg)
	var xs []float64
	for _, vm := range tr.VMs {
		xs = append(xs, vm.FractionAboveDeflation(50))
	}
	med := stats.Percentile(xs, 50)
	if med > 0.30 {
		t.Errorf("median fraction-above at 50%% deflation = %.3f, want <= 0.30 (paper ~0.20)", med)
	}
}

func TestGenerateAzurePartitions(t *testing.T) {
	cfg := DefaultAzureConfig()
	cfg.NumVMs = 800
	tr := GenerateAzure(cfg)
	bySize := tr.BySize()
	if len(bySize[SmallVM]) == 0 || len(bySize[MediumVM]) == 0 || len(bySize[LargeVM]) == 0 {
		t.Errorf("size buckets should all be populated: %d/%d/%d",
			len(bySize[SmallVM]), len(bySize[MediumVM]), len(bySize[LargeVM]))
	}
	byPeak := tr.ByPeak()
	if len(byPeak[PeakLow]) == 0 || len(byPeak[PeakHigh]) == 0 {
		t.Errorf("peak buckets should include low and high: low=%d high=%d",
			len(byPeak[PeakLow]), len(byPeak[PeakHigh]))
	}
	total := 0
	for _, vms := range tr.ByClass() {
		total += len(vms)
	}
	if total != 800 {
		t.Errorf("class partition loses VMs: %d", total)
	}
	if tr.Duration() <= 0 || tr.Duration() > cfg.Duration+SampleInterval {
		t.Errorf("Duration = %v", tr.Duration())
	}
}

func TestGenerateAzureEmpty(t *testing.T) {
	tr := GenerateAzure(AzureConfig{})
	if len(tr.VMs) != 0 {
		t.Error("zero config should generate empty trace")
	}
}

func TestGenerateAlibabaShape(t *testing.T) {
	cfg := DefaultAlibabaConfig()
	cfg.NumContainers = 300
	tr := GenerateAlibaba(cfg)
	if len(tr.Containers) != 300 {
		t.Fatalf("generated %d containers", len(tr.Containers))
	}
	for _, c := range tr.Containers {
		for _, series := range [][]float64{c.CPUUtil, c.MemUtil, c.MemBWUtil, c.DiskUtil, c.NetUtil} {
			if len(series) != cfg.Samples {
				t.Fatalf("container %s series has %d samples", c.ID, len(series))
			}
			for _, u := range series {
				if u < 0 || u > 100 {
					t.Fatalf("container %s util %v out of range", c.ID, u)
				}
			}
		}
	}
}

// Section 3.2.2's characteristics: memory occupancy high, memory
// bandwidth tiny, disk/net low.
func TestGenerateAlibabaCharacteristics(t *testing.T) {
	cfg := DefaultAlibabaConfig()
	cfg.NumContainers = 500
	tr := GenerateAlibaba(cfg)

	var memAbove90, membwMeans, diskAbove50, netAbove30 []float64
	for _, c := range tr.Containers {
		memAbove90 = append(memAbove90, stats.FractionAbove(c.MemUtil, 90))
		membwMeans = append(membwMeans, stats.Mean(c.MemBWUtil))
		diskAbove50 = append(diskAbove50, stats.FractionAbove(c.DiskUtil, 50))
		netAbove30 = append(netAbove30, stats.FractionAbove(c.NetUtil, 30))
	}
	// Figure 9: at 10% memory deflation most containers look badly
	// under-allocated (paper: >70% of time) — mean fraction above 90%
	// occupancy should be high.
	if m := stats.Mean(memAbove90); m < 0.5 {
		t.Errorf("mean fraction of time memory occupancy >90%% = %.3f, want high (>0.5, paper ~0.7)", m)
	}
	// Figure 10: mean memory-bandwidth utilisation < 0.2%, max <= 1%.
	if m := stats.Mean(membwMeans); m > 0.2 {
		t.Errorf("mean memory bandwidth util = %.4f%%, want < 0.2%%", m)
	}
	// Figure 11: at 50% disk deflation under-allocated <1% of time.
	if m := stats.Mean(diskAbove50); m > 0.02 {
		t.Errorf("disk fraction-above at 50%% deflation = %.4f, want < 0.02", m)
	}
	// Figure 12: at 70% net deflation under-allocation ~1% of lifetime.
	if m := stats.Mean(netAbove30); m > 0.03 {
		t.Errorf("net fraction-above at 70%% deflation = %.4f, want <= 0.03", m)
	}
}

func TestAzureCSVRoundTrip(t *testing.T) {
	cfg := DefaultAzureConfig()
	cfg.NumVMs = 25
	orig := GenerateAzure(cfg)
	var buf bytes.Buffer
	if err := WriteAzureCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAzureCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs) != len(orig.VMs) {
		t.Fatalf("round trip lost VMs: %d vs %d", len(got.VMs), len(orig.VMs))
	}
	for i, vm := range orig.VMs {
		g := got.VMs[i]
		if g.ID != vm.ID || g.Class != vm.Class || g.Cores != vm.Cores ||
			g.MemoryMB != vm.MemoryMB || g.Start != vm.Start || g.End != vm.End {
			t.Fatalf("metadata mismatch at %d: %+v vs %+v", i, g, vm)
		}
		if len(g.CPUUtil) != len(vm.CPUUtil) {
			t.Fatalf("series length mismatch at %d", i)
		}
		for j := range g.CPUUtil {
			if math.Abs(g.CPUUtil[j]-vm.CPUUtil[j]) > 1e-4 {
				t.Fatalf("sample mismatch at vm %d sample %d: %v vs %v", i, j, g.CPUUtil[j], vm.CPUUtil[j])
			}
		}
	}
}

func TestAlibabaCSVRoundTrip(t *testing.T) {
	cfg := DefaultAlibabaConfig()
	cfg.NumContainers = 10
	cfg.Samples = 30
	orig := GenerateAlibaba(cfg)
	var buf bytes.Buffer
	if err := WriteAlibabaCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAlibabaCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Containers) != len(orig.Containers) {
		t.Fatalf("round trip lost containers")
	}
	for i := range orig.Containers {
		o, g := orig.Containers[i], got.Containers[i]
		if g.ID != o.ID {
			t.Fatalf("ID mismatch at %d", i)
		}
		if math.Abs(stats.Mean(g.MemUtil)-stats.Mean(o.MemUtil)) > 1e-3 {
			t.Fatalf("memory series corrupted at %d", i)
		}
	}
}

func TestReadAzureCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bad,header\n",
		"id,class,cores,memory_mb,start,end,cpu_util\nvm-1,badclass,1,1024,0,300,10\n",
		"id,class,cores,memory_mb,start,end,cpu_util\nvm-1,interactive,notanint,1024,0,300,10\n",
		"id,class,cores,memory_mb,start,end,cpu_util\nvm-1,interactive,1,1024,0,300,10;x\n",
	}
	for i, in := range cases {
		if _, err := ReadAzureCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestReadAlibabaCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bad\n",
		"id,cpu,mem,membw,disk,net\nc-1,1;2,3,x,5,6\n",
	}
	for i, in := range cases {
		if _, err := ReadAlibabaCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestEmptySeriesRoundTrip(t *testing.T) {
	tr := &AzureTrace{VMs: []*VMRecord{{ID: "vm-0", Class: Unknown, Cores: 1, MemoryMB: 1024}}}
	var buf bytes.Buffer
	if err := WriteAzureCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAzureCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs[0].CPUUtil) != 0 {
		t.Error("empty series should survive round trip")
	}
}
