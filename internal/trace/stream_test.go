package trace

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func testStreams(t *testing.T, n int) map[string]*Stream {
	t.Helper()
	out := make(map[string]*Stream)
	for _, sc := range Scenarios() {
		cfg := DefaultScenarioConfig(sc)
		cfg.NumVMs = n
		s, err := NewStream(cfg)
		if err != nil {
			t.Fatalf("NewStream(%s): %v", sc, err)
		}
		out[string(sc)] = s
	}
	return out
}

// TestMaterializeMatchesEagerGenerators pins the tentpole identity: the
// eager generators delegate to Stream.Materialize, so reading VMs
// through the stream and through the eager API must agree bit for bit —
// metadata and every utilisation sample.
func TestMaterializeMatchesEagerGenerators(t *testing.T) {
	for _, sc := range Scenarios() {
		cfg := DefaultScenarioConfig(sc)
		cfg.NumVMs = 300
		eager, err := GenerateScenario(cfg)
		if err != nil {
			t.Fatalf("GenerateScenario(%s): %v", sc, err)
		}
		s, err := NewStream(cfg)
		if err != nil {
			t.Fatalf("NewStream(%s): %v", sc, err)
		}
		if s.Len() != len(eager.VMs) {
			t.Fatalf("%s: stream Len %d != eager %d", sc, s.Len(), len(eager.VMs))
		}
		for i, want := range eager.VMs {
			got := s.Record(i)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: VM %d differs:\nstream %+v\neager  %+v", sc, i, got, want)
			}
		}
	}
}

// TestParamsPureAndRandomAccess: Params is a pure function of (config,
// index) — repeated and out-of-order reads return identical records.
func TestParamsPureAndRandomAccess(t *testing.T) {
	for name, s := range testStreams(t, 500) {
		// Forward pass.
		fwd := make([]VMParams, s.Len())
		for i := range fwd {
			fwd[i] = s.Params(i)
		}
		// Random-order re-read, interleaved with repeats.
		rng := rand.New(rand.NewSource(7))
		for k := 0; k < 2000; k++ {
			i := rng.Intn(s.Len())
			if got := s.Params(i); got != fwd[i] {
				t.Fatalf("%s: Params(%d) changed on re-read:\n%+v\n%+v", name, i, got, fwd[i])
			}
		}
	}
}

// TestUtilCursorMatchesSeries: a cursor reads, forward or backward, the
// exact sample bits of the materialised series, and UtilAt's semantics
// (zero outside [start, end), index clamp at the tail) carry over.
func TestUtilCursorMatchesSeries(t *testing.T) {
	for name, s := range testStreams(t, 50) {
		cur := NewUtilCursor()
		for i := 0; i < s.Len(); i++ {
			p := s.Params(i)
			rec := s.Record(i)
			cur.Reset(p)
			// Forward sweep over the lifetime, extending past End and
			// before Start to pin the outside-window zeros, plus the exact
			// UtilAt comparison at every probe.
			for ts := p.Start - SampleInterval; ts < p.End+2*SampleInterval; ts += SampleInterval / 2 {
				if got, want := cur.At(ts), rec.UtilAt(ts); got != want {
					t.Fatalf("%s vm %d: cursor At(%g) = %v, want %v", name, i, ts, got, want)
				}
			}
			// Backward reads replay from the seed; same bits required.
			for ts := p.End - SampleInterval; ts >= p.Start; ts -= SampleInterval {
				if got, want := cur.At(ts), rec.UtilAt(ts); got != want {
					t.Fatalf("%s vm %d: backward At(%g) = %v, want %v", name, i, ts, got, want)
				}
			}
		}
	}
}

// TestSeriesSynthReuse: one synthesizer reused across VMs produces the
// same series as a fresh one per VM (the engine reuses a single synth
// for every admission-time P95).
func TestSeriesSynthReuse(t *testing.T) {
	s := testStreams(t, 100)["heavytail"]
	shared := NewSeriesSynth()
	var buf []float64
	for i := 0; i < s.Len(); i++ {
		p := s.Params(i)
		buf = shared.Append(p, buf[:0])
		fresh := NewSeriesSynth().Append(p, nil)
		if !reflect.DeepEqual(buf, fresh) {
			t.Fatalf("vm %d: reused synth diverges from fresh", i)
		}
	}
}

// TestMaxEndMatchesEagerDuration: the streamed horizon equals the eager
// trace's Duration — the engine substitutes one for the other.
func TestMaxEndMatchesEagerDuration(t *testing.T) {
	for name, s := range testStreams(t, 400) {
		if got, want := s.MaxEnd(), s.Materialize().Duration(); got != want {
			t.Fatalf("%s: MaxEnd %v != eager Duration %v", name, got, want)
		}
	}
}

// TestEagerBytesEstimateSane: the estimate is at least the raw sample
// bytes — the floor of what a materialised trace must hold.
func TestEagerBytesEstimateSane(t *testing.T) {
	s := testStreams(t, 200)["azure"]
	var samples uint64
	for i := 0; i < s.Len(); i++ {
		samples += uint64(s.Params(i).Samples())
	}
	if est := s.EagerBytesEstimate(); est < 8*samples {
		t.Fatalf("EagerBytesEstimate %d below raw sample bytes %d", est, 8*samples)
	}
}

// TestDurationMemoised: the cached Duration matches a direct max scan
// and survives repeated calls.
func TestDurationMemoised(t *testing.T) {
	tr := testStreams(t, 300)["diurnal"].Materialize()
	var want float64
	for _, vm := range tr.VMs {
		want = math.Max(want, vm.End)
	}
	if got := tr.Duration(); got != want {
		t.Fatalf("Duration = %v, want %v", got, want)
	}
	if got := tr.Duration(); got != want {
		t.Fatalf("second Duration = %v, want %v", got, want)
	}
}
