package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// AlibabaConfig configures the synthetic Alibaba-like container trace.
// The generator reproduces the characteristics Section 3.2.2 extracts
// from the real dataset:
//
//   - memory occupancy is very high (>90% of containers are JVM services
//     that pre-allocate heap), so naive memory-utilisation analysis makes
//     deflation look infeasible (Figure 9) …
//   - … but memory-bus bandwidth utilisation is tiny (mean < 0.1%, max
//     ~1%), revealing the occupancy to be mostly cold heap/cache pages
//     (Figure 10);
//   - disk-bandwidth utilisation is low: under 50% deflation, containers
//     are under-allocated < 1% of the time (Figure 11);
//   - network utilisation is low: even at 70% deflation, under-allocation
//     happens ~1% of the time (Figure 12).
type AlibabaConfig struct {
	// NumContainers is the number of container records to generate.
	NumContainers int
	// Samples is the number of 5-minute samples per container.
	Samples int
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultAlibabaConfig returns the configuration used by the Figure 9-12
// reproductions: 4,000 containers over one day.
func DefaultAlibabaConfig() AlibabaConfig {
	return AlibabaConfig{NumContainers: 4000, Samples: 288, Seed: 1}
}

// GenerateAlibaba builds a synthetic Alibaba-like container trace.
func GenerateAlibaba(cfg AlibabaConfig) *AlibabaTrace {
	if cfg.NumContainers <= 0 {
		return &AlibabaTrace{}
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 288
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &AlibabaTrace{Containers: make([]*ContainerRecord, 0, cfg.NumContainers)}
	for i := 0; i < cfg.NumContainers; i++ {
		c := &ContainerRecord{ID: fmt.Sprintf("c-%06d", i)}
		c.CPUUtil = alibabaCPU(rng, cfg.Samples)
		c.MemUtil = alibabaMem(rng, cfg.Samples)
		c.MemBWUtil = alibabaMemBW(rng, cfg.Samples)
		c.DiskUtil = alibabaIO(rng, cfg.Samples, 4.0, 10, 0.004, 45, 80)
		c.NetUtil = alibabaIO(rng, cfg.Samples, 5.0, 8, 0.004, 30, 60)
		t.Containers = append(t.Containers, c)
	}
	return t
}

// alibabaCPU: interactive-service CPU with low-to-moderate mean and
// diurnal swings.
func alibabaCPU(rng *rand.Rand, n int) []float64 {
	base := math.Exp(math.Log(15) + 0.6*rng.NormFloat64())
	amp := 0.2 + rng.Float64()*0.5
	phase := rng.Float64() * 86400
	out := make([]float64, n)
	var noise float64
	for i := range out {
		ts := float64(i) * SampleInterval
		noise = 0.7*noise + rng.NormFloat64()*3
		u := base*(1+amp*math.Sin(2*math.Pi*(ts+phase)/86400)) + noise
		out[i] = clampPct(u)
	}
	return out
}

// alibabaMem: JVM-style occupancy — a high plateau (pre-allocated heap)
// with a slow GC sawtooth. Occupancy rarely drops below ~70%.
func alibabaMem(rng *rand.Rand, n int) []float64 {
	plateau := 89 + rng.Float64()*9 // 89-98%
	sawAmp := 1 + rng.Float64()*4
	period := 6 + rng.Intn(18) // GC cycle in samples
	out := make([]float64, n)
	for i := range out {
		cycle := float64(i%period) / float64(period)
		u := plateau - sawAmp*(1-cycle) + rng.NormFloat64()*1.0
		out[i] = clampPct(u)
	}
	return out
}

// alibabaMemBW: memory-bus bandwidth utilisation; mean below 0.1%,
// occasional excursions toward ~1%.
func alibabaMemBW(rng *rand.Rand, n int) []float64 {
	base := 0.02 + rng.Float64()*0.10 // 0.02-0.12%
	out := make([]float64, n)
	for i := range out {
		u := base * math.Exp(0.5*rng.NormFloat64())
		if rng.Float64() < 0.005 {
			u = 0.5 + rng.Float64()*0.5 // rare ~1% excursion
		}
		if u > 1.0 {
			u = 1.0
		}
		if u < 0 {
			u = 0
		}
		out[i] = u
	}
	return out
}

// alibabaIO generates a low-utilisation I/O series: lognormal base around
// baseMean percent, AR noise, and rare spikes in [spikeLo, spikeHi] with
// probability spikeProb per sample.
func alibabaIO(rng *rand.Rand, n int, baseMean, noisePct, spikeProb, spikeLo, spikeHi float64) []float64 {
	base := math.Exp(math.Log(baseMean) + 0.5*rng.NormFloat64())
	out := make([]float64, n)
	var noise float64
	for i := range out {
		noise = 0.5*noise + rng.NormFloat64()*baseMean*noisePct/100
		u := base + noise
		if rng.Float64() < spikeProb {
			u = spikeLo + rng.Float64()*(spikeHi-spikeLo)
		}
		out[i] = clampPct(u)
	}
	return out
}

func clampPct(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 100 {
		return 100
	}
	return u
}
