package trace

import (
	"math"
	"reflect"
	"testing"
)

func shockCfg(kind ShockScenario) ShockConfig {
	return ShockConfig{Kind: kind, Duration: 3 * 86400, RatePerDay: 1, OutageMean: 3600, Seed: 7}
}

// TestGenerateShocksDeterministic: generation is a pure function of
// (config, nServers) — the property the differential suites replay on.
func TestGenerateShocksDeterministic(t *testing.T) {
	for _, kind := range []ShockScenario{ShockPoisson, ShockDiurnal, ShockRack} {
		a := GenerateShocks(shockCfg(kind), 20)
		b := GenerateShocks(shockCfg(kind), 20)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two generations from one config differ", kind)
		}
		if len(a) == 0 {
			t.Fatalf("%s: expected a non-empty schedule at rate 1/server/day over 3 days", kind)
		}
	}
}

// TestGenerateShocksWellFormed checks the structural invariants every
// schedule must satisfy: sorted times, alternating revoke/restore per
// server, no overlapping outages, and the simultaneous-revocation cap.
func TestGenerateShocksWellFormed(t *testing.T) {
	const n = 24
	for _, kind := range []ShockScenario{ShockPoisson, ShockDiurnal, ShockRack} {
		t.Run(string(kind), func(t *testing.T) {
			shocks := GenerateShocks(shockCfg(kind), n)
			out := make([]bool, n)
			outCount, maxSeen := 0, 0
			last := math.Inf(-1)
			for i, sh := range shocks {
				if sh.At < last {
					t.Fatalf("shock %d out of order: %g after %g", i, sh.At, last)
				}
				last = sh.At
				if sh.Server < 0 || sh.Server >= n {
					t.Fatalf("shock %d targets server %d outside [0,%d)", i, sh.Server, n)
				}
				switch sh.Kind {
				case ShockRevoke:
					if out[sh.Server] {
						t.Fatalf("shock %d revokes server %d twice", i, sh.Server)
					}
					out[sh.Server] = true
					outCount++
					if outCount > maxSeen {
						maxSeen = outCount
					}
				case ShockRestore:
					if !out[sh.Server] {
						t.Fatalf("shock %d restores server %d that is not out", i, sh.Server)
					}
					out[sh.Server] = false
					outCount--
				default:
					t.Fatalf("shock %d has unexpected kind %v", i, sh.Kind)
				}
			}
			if maxSeen > n/2 {
				t.Fatalf("%d servers simultaneously out, cap is %d", maxSeen, n/2)
			}
		})
	}
}

// TestDiurnalShocksStayInWindow: the temporally constrained scenario
// only starts revocations inside the daily window.
func TestDiurnalShocksStayInWindow(t *testing.T) {
	shocks := GenerateShocks(shockCfg(ShockDiurnal), 32)
	for _, sh := range shocks {
		if sh.Kind != ShockRevoke {
			continue
		}
		off := math.Mod(sh.At, 86400)
		if off < diurnalWindowStart || off >= diurnalWindowStart+diurnalWindowLen {
			t.Fatalf("revocation at %g (day offset %g) outside the [10h,16h) window", sh.At, off)
		}
	}
}

// TestRackShocksAreCorrelated: rack shocks revoke whole contiguous
// groups at one instant.
func TestRackShocksAreCorrelated(t *testing.T) {
	cfg := shockCfg(ShockRack)
	cfg.RackSize = 4
	cfg.MaxOutFraction = 1
	shocks := GenerateShocks(cfg, 16)
	byTime := map[float64][]int{}
	for _, sh := range shocks {
		if sh.Kind == ShockRevoke {
			byTime[sh.At] = append(byTime[sh.At], sh.Server)
		}
	}
	if len(byTime) == 0 {
		t.Fatal("no rack shocks generated")
	}
	for at, servers := range byTime {
		if len(servers) != 4 {
			// A partial group is only legal when the admission sweep
			// dropped overlapping members; with MaxOutFraction=1 that
			// still happens if the same rack is hit twice mid-outage, so
			// only whole-or-smaller groups are required.
			if len(servers) > 4 {
				t.Fatalf("shock at %g took out %d servers, rack size is 4", at, len(servers))
			}
			continue
		}
		rack := servers[0] / 4
		for _, s := range servers {
			if s/4 != rack {
				t.Fatalf("shock at %g spans racks: servers %v", at, servers)
			}
		}
	}
}

// TestGenerateShocksEmpty: none/zero configs yield no schedule.
func TestGenerateShocksEmpty(t *testing.T) {
	if got := GenerateShocks(ShockConfig{Kind: ShockNone, Duration: 86400}, 10); got != nil {
		t.Fatalf("ShockNone produced %d shocks", len(got))
	}
	if got := GenerateShocks(shockCfg(ShockPoisson), 0); got != nil {
		t.Fatalf("0 servers produced %d shocks", len(got))
	}
}

// TestParseShockScenario round-trips the known names and rejects junk.
func TestParseShockScenario(t *testing.T) {
	for _, k := range ShockScenarios() {
		got, err := ParseShockScenario(string(k))
		if err != nil || got != k {
			t.Fatalf("ParseShockScenario(%q) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseShockScenario("meteor"); err == nil {
		t.Fatal("ParseShockScenario accepted an unknown name")
	}
}
