package trace

import (
	"math"
	"reflect"
	"testing"
)

func shockCfg(kind ShockScenario) ShockConfig {
	return ShockConfig{Kind: kind, Duration: 3 * 86400, RatePerDay: 1, OutageMean: 3600, Seed: 7}
}

// TestGenerateShocksDeterministic: generation is a pure function of
// (config, nServers) — the property the differential suites replay on.
func TestGenerateShocksDeterministic(t *testing.T) {
	for _, kind := range []ShockScenario{ShockPoisson, ShockDiurnal, ShockRack} {
		a := GenerateShocks(shockCfg(kind), 20)
		b := GenerateShocks(shockCfg(kind), 20)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: two generations from one config differ", kind)
		}
		if len(a) == 0 {
			t.Fatalf("%s: expected a non-empty schedule at rate 1/server/day over 3 days", kind)
		}
	}
}

// TestGenerateShocksWellFormed checks the structural invariants every
// schedule must satisfy: sorted times, alternating revoke/restore per
// server, no overlapping outages, and the simultaneous-revocation cap.
func TestGenerateShocksWellFormed(t *testing.T) {
	const n = 24
	for _, kind := range []ShockScenario{ShockPoisson, ShockDiurnal, ShockRack} {
		t.Run(string(kind), func(t *testing.T) {
			shocks := GenerateShocks(shockCfg(kind), n)
			out := make([]bool, n)
			outCount, maxSeen := 0, 0
			last := math.Inf(-1)
			for i, sh := range shocks {
				if sh.At < last {
					t.Fatalf("shock %d out of order: %g after %g", i, sh.At, last)
				}
				last = sh.At
				if sh.Server < 0 || sh.Server >= n {
					t.Fatalf("shock %d targets server %d outside [0,%d)", i, sh.Server, n)
				}
				switch sh.Kind {
				case ShockRevoke:
					if out[sh.Server] {
						t.Fatalf("shock %d revokes server %d twice", i, sh.Server)
					}
					out[sh.Server] = true
					outCount++
					if outCount > maxSeen {
						maxSeen = outCount
					}
				case ShockRestore:
					if !out[sh.Server] {
						t.Fatalf("shock %d restores server %d that is not out", i, sh.Server)
					}
					out[sh.Server] = false
					outCount--
				default:
					t.Fatalf("shock %d has unexpected kind %v", i, sh.Kind)
				}
			}
			if maxSeen > n/2 {
				t.Fatalf("%d servers simultaneously out, cap is %d", maxSeen, n/2)
			}
		})
	}
}

// TestDiurnalShocksStayInWindow: the temporally constrained scenario
// only starts revocations inside the daily window.
func TestDiurnalShocksStayInWindow(t *testing.T) {
	shocks := GenerateShocks(shockCfg(ShockDiurnal), 32)
	for _, sh := range shocks {
		if sh.Kind != ShockRevoke {
			continue
		}
		off := math.Mod(sh.At, 86400)
		if off < DiurnalWindowStart || off >= DiurnalWindowStart+DiurnalWindowLen {
			t.Fatalf("revocation at %g (day offset %g) outside the [10h,16h) window", sh.At, off)
		}
	}
}

// TestRackShocksAreCorrelated: rack shocks revoke whole contiguous
// groups at one instant.
func TestRackShocksAreCorrelated(t *testing.T) {
	cfg := shockCfg(ShockRack)
	cfg.RackSize = 4
	cfg.MaxOutFraction = 1
	shocks := GenerateShocks(cfg, 16)
	byTime := map[float64][]int{}
	for _, sh := range shocks {
		if sh.Kind == ShockRevoke {
			byTime[sh.At] = append(byTime[sh.At], sh.Server)
		}
	}
	if len(byTime) == 0 {
		t.Fatal("no rack shocks generated")
	}
	for at, servers := range byTime {
		if len(servers) != 4 {
			// A partial group is only legal when the admission sweep
			// dropped overlapping members; with MaxOutFraction=1 that
			// still happens if the same rack is hit twice mid-outage, so
			// only whole-or-smaller groups are required.
			if len(servers) > 4 {
				t.Fatalf("shock at %g took out %d servers, rack size is 4", at, len(servers))
			}
			continue
		}
		rack := servers[0] / 4
		for _, s := range servers {
			if s/4 != rack {
				t.Fatalf("shock at %g spans racks: servers %v", at, servers)
			}
		}
	}
}

// TestMaxOutServersBoundary pins the exactly-at-cap admission boundary:
// MaxOutFraction*nServers that is an exact integer mathematically must
// cap at that integer, not at int() of its float-representation
// neighbour (0.3*10 = 2.999...96 used to truncate to 2).
func TestMaxOutServersBoundary(t *testing.T) {
	cases := []struct {
		frac string
		f    float64
		n    int
		want int
	}{
		{"0.3 of 10", 0.3, 10, 3},
		{"0.7 of 10", 0.7, 10, 7},
		{"0.5 of 10", 0.5, 10, 5},
		{"0.5 of 9", 0.5, 9, 4},
		{"0.1 of 3", 0.1, 3, 1}, // floor: never below one server
		{"1.0 of 6", 1.0, 6, 6},
	}
	for _, c := range cases {
		cfg := ShockConfig{MaxOutFraction: c.f}
		if got := cfg.MaxOutServers(c.n); got != c.want {
			t.Errorf("%s: MaxOutServers = %d, want %d", c.frac, got, c.want)
		}
	}
	// End to end: with MaxOutFraction=0.3 over 10 servers, a schedule may
	// hold exactly 3 servers out at once — and a dense-enough candidate
	// stream does reach that cap.
	cfg := shockCfg(ShockPoisson)
	cfg.RatePerDay, cfg.MaxOutFraction, cfg.OutageMean = 16, 0.3, 6*3600
	shocks := GenerateShocks(cfg, 10)
	out, peak := 0, 0
	for _, sh := range shocks {
		switch sh.Kind {
		case ShockRevoke:
			out++
		case ShockRestore:
			out--
		}
		if out > peak {
			peak = out
		}
	}
	if peak != 3 {
		t.Fatalf("peak simultaneous revocations = %d, want the exact cap 3", peak)
	}
}

// TestRackShocksClampedToFleetAndCap pins the RackSize > nServers edge
// (the rack clamps to the fleet) and the RackSize > MaxOutServers edge
// (the rack clamps to the cap, so no server is starved of revocations —
// before the clamp, same-instant candidates admitted in server order
// meant servers past the cap inside an oversized rack never revoked).
func TestRackShocksClampedToFleetAndCap(t *testing.T) {
	cases := []struct {
		name           string
		rackSize, n    int
		maxOutFraction float64
		wantGroup      int // revocations per shock instant
		wantAllRevoked bool
	}{
		{"rack wider than fleet", 64, 6, 1.0, 6, true},
		{"rack wider than cap", 8, 12, 0.25, 3, true},
		{"rack at cap exactly", 4, 16, 0.25, 4, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := shockCfg(ShockRack)
			cfg.RackSize, cfg.MaxOutFraction = c.rackSize, c.maxOutFraction
			cfg.RatePerDay, cfg.Duration = 4, 30*86400
			shocks := GenerateShocks(cfg, c.n)
			if len(shocks) == 0 {
				t.Fatal("no shocks generated")
			}
			byTime := map[float64]int{}
			revoked := make([]bool, c.n)
			for _, sh := range shocks {
				if sh.Kind != ShockRevoke {
					continue
				}
				byTime[sh.At]++
				revoked[sh.Server] = true
			}
			for at, k := range byTime {
				if k > c.wantGroup {
					t.Fatalf("shock at %g revoked %d servers, want <= %d", at, k, c.wantGroup)
				}
			}
			if c.wantAllRevoked {
				for s, ok := range revoked {
					if !ok {
						t.Errorf("server %d never revoked over 30 days at rate 4/day — rack starvation", s)
					}
				}
			}
		})
	}
}

// TestRateScaleShapesPerServerRates: the portfolio hook. A nil
// RateScale reproduces historical schedules bit-for-bit; a set one
// shifts revocation mass toward the scaled-up servers.
func TestRateScaleShapesPerServerRates(t *testing.T) {
	for _, kind := range []ShockScenario{ShockPoisson, ShockDiurnal, ShockRack} {
		t.Run(string(kind), func(t *testing.T) {
			cfg := shockCfg(kind)
			base := GenerateShocks(cfg, 16)
			cfg.RateScale = []float64{}
			if got := GenerateShocks(cfg, 16); !reflect.DeepEqual(base, got) {
				t.Fatal("empty RateScale changed the schedule vs nil")
			}
			// Servers 8..15 revoke 4x as often as 0..7. Over a long
			// horizon the high-rate half must carry the clear majority of
			// revocations.
			cfg = shockCfg(kind)
			cfg.Duration, cfg.MaxOutFraction = 60*86400, 1
			cfg.RateScale = make([]float64, 16)
			for s := range cfg.RateScale {
				if s < 8 {
					cfg.RateScale[s] = 0.25
				} else {
					cfg.RateScale[s] = 1
				}
			}
			if kind == ShockRack {
				cfg.RackSize = 4 // racks align with the scale split
			}
			var lo, hi int
			for _, sh := range GenerateShocks(cfg, 16) {
				if sh.Kind != ShockRevoke {
					continue
				}
				if sh.Server < 8 {
					lo++
				} else {
					hi++
				}
			}
			if lo+hi == 0 {
				t.Fatal("no revocations generated")
			}
			if float64(hi) < 2*float64(lo) {
				t.Fatalf("rate-scaled servers got %d revocations vs %d for the 4x-slower half — scales not applied", hi, lo)
			}
		})
	}
}

// TestGenerateShocksEmpty: none/zero configs yield no schedule.
func TestGenerateShocksEmpty(t *testing.T) {
	if got := GenerateShocks(ShockConfig{Kind: ShockNone, Duration: 86400}, 10); got != nil {
		t.Fatalf("ShockNone produced %d shocks", len(got))
	}
	if got := GenerateShocks(shockCfg(ShockPoisson), 0); got != nil {
		t.Fatalf("0 servers produced %d shocks", len(got))
	}
}

// TestParseShockScenario round-trips the known names and rejects junk.
func TestParseShockScenario(t *testing.T) {
	for _, k := range ShockScenarios() {
		got, err := ParseShockScenario(string(k))
		if err != nil || got != k {
			t.Fatalf("ParseShockScenario(%q) = %v, %v", k, got, err)
		}
	}
	if _, err := ParseShockScenario("meteor"); err == nil {
		t.Fatal("ParseShockScenario accepted an unknown name")
	}
}
