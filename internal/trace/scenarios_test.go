package trace

import (
	"math"
	"reflect"
	"testing"
)

func TestParseScenario(t *testing.T) {
	for _, sc := range Scenarios() {
		got, err := ParseScenario(string(sc))
		if err != nil || got != sc {
			t.Errorf("ParseScenario(%q) = %v, %v", sc, got, err)
		}
	}
	if _, err := ParseScenario("nope"); err == nil {
		t.Error("unknown scenario should fail")
	}
}

// checkWellFormed asserts the invariants every scenario must satisfy for
// the cluster simulator: in-horizon lifetimes, positive sizes that fit
// the paper's servers, and a utilisation sample per interval.
func checkWellFormed(t *testing.T, tr *AzureTrace, cfg ScenarioConfig) {
	t.Helper()
	if len(tr.VMs) != cfg.NumVMs {
		t.Fatalf("VMs = %d, want %d", len(tr.VMs), cfg.NumVMs)
	}
	for _, vm := range tr.VMs {
		if vm.Start < 0 || vm.End > cfg.Duration || vm.End-vm.Start < SampleInterval {
			t.Fatalf("%s lifetime [%g,%g] outside horizon %g", vm.ID, vm.Start, vm.End, cfg.Duration)
		}
		if vm.Cores < 1 || vm.MemoryMB <= 0 || vm.MemoryMB > 98304 {
			t.Fatalf("%s size = %d cores / %g MB", vm.ID, vm.Cores, vm.MemoryMB)
		}
		if len(vm.CPUUtil) == 0 {
			t.Fatalf("%s has no utilisation samples", vm.ID)
		}
		for _, u := range vm.CPUUtil {
			if u < 0 || u > 100 {
				t.Fatalf("%s utilisation sample %g out of range", vm.ID, u)
			}
		}
	}
}

func TestGenerateScenarioWellFormedAndDeterministic(t *testing.T) {
	for _, kind := range Scenarios() {
		t.Run(string(kind), func(t *testing.T) {
			cfg := DefaultScenarioConfig(kind)
			cfg.NumVMs = 300
			cfg.Duration = 2 * 86400
			tr, err := GenerateScenario(cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkWellFormed(t, tr, cfg)

			// Same config, same trace — the property parallel sweep
			// workers rely on.
			again, err := GenerateScenario(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tr, again) {
				t.Error("generation is not deterministic for a fixed seed")
			}

			// A different seed must change the workload.
			cfg2 := cfg
			cfg2.Seed++
			other, err := GenerateScenario(cfg2)
			if err != nil {
				t.Fatal(err)
			}
			if reflect.DeepEqual(tr, other) {
				t.Error("different seeds produced identical traces")
			}
		})
	}
}

func TestScenarioShapes(t *testing.T) {
	const day = 86400.0
	// Bursty: a sizeable cohort of short-lived hot interactive VMs.
	cfg := DefaultScenarioConfig(ScenarioBursty)
	cfg.NumVMs = 600
	tr, err := GenerateScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	short := 0
	for _, vm := range tr.VMs {
		if vm.Class == Interactive && vm.Lifetime() <= 2*3600 {
			short++
		}
	}
	if short < cfg.NumVMs/5 {
		t.Errorf("bursty: only %d short-lived interactive VMs of %d", short, cfg.NumVMs)
	}

	// Heavy tail: most VMs short, but some survive beyond a day.
	cfg = DefaultScenarioConfig(ScenarioHeavyTail)
	cfg.NumVMs = 600
	tr, err = GenerateScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var under1h, over1d int
	for _, vm := range tr.VMs {
		switch {
		case vm.Lifetime() <= 3600:
			under1h++
		case vm.Lifetime() > day:
			over1d++
		}
	}
	if under1h < cfg.NumVMs/2 {
		t.Errorf("heavytail: %d/%d VMs under an hour, want a short-lived majority", under1h, cfg.NumVMs)
	}
	if over1d == 0 {
		t.Error("heavytail: no VM survived beyond a day")
	}

	// Diurnal: daytime (accept-reject peak) arrivals should clearly
	// outnumber off-peak arrivals. sin(2*pi*t/day) peaks at t=day/4.
	cfg = DefaultScenarioConfig(ScenarioDiurnal)
	cfg.NumVMs = 600
	tr, err = GenerateScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var peak, trough int
	for _, vm := range tr.VMs {
		phase := math.Mod(vm.Start, day) / day
		switch {
		case phase >= 0.05 && phase < 0.45: // around the sin peak
			peak++
		case phase >= 0.55 && phase < 0.95: // around the sin trough
			trough++
		}
	}
	if peak <= trough {
		t.Errorf("diurnal: peak-window arrivals %d not above trough-window %d", peak, trough)
	}
}
