package apps

import "vmdeflate/internal/sim"

func simEngineForTest() *sim.Engine { return sim.NewEngine(1) }
