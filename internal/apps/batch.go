package apps

import (
	"fmt"
	"math"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/resources"
)

// ResourceModel is a steady-state application whose normalised
// performance is a function of the resources its domain actually has.
// Performance(undeflated domain) = 1.
type ResourceModel interface {
	// Name identifies the application.
	Name() string
	// InstallWorkload sets the application's memory footprint (RSS and
	// page cache) inside the guest, so hotplug safety thresholds and swap
	// penalties reflect this app.
	InstallWorkload(d *hypervisor.Domain)
	// Performance returns normalised throughput on the domain's current
	// effective allocation.
	Performance(d *hypervisor.Domain) float64
}

// Kcompile models a parallel kernel build: mostly CPU-bound with limited
// build parallelism (slack when the VM has more cores than the build can
// use), an I/O phase bound by disk bandwidth, and a serial fraction.
type Kcompile struct{}

// Name implements ResourceModel.
func (Kcompile) Name() string { return "kcompile" }

// InstallWorkload implements ResourceModel: a build uses modest anonymous
// memory but a large page cache of sources and objects.
func (Kcompile) InstallWorkload(d *hypervisor.Domain) {
	mem := d.MaxSize().Get(resources.Memory)
	d.Guest().SetWorkload(0.20*mem, 0.40*mem)
}

// Performance implements ResourceModel.
func (k Kcompile) Performance(d *hypervisor.Domain) float64 {
	eff := d.Effective()
	max := d.MaxSize()

	// Amdahl decomposition of an undeflated build.
	const (
		serialFrac   = 0.05
		parallelFrac = 0.80
		ioFrac       = 0.15
		// The build's -j parallelism only exploits 85% of the cores.
		usableCoreFrac = 0.85
	)
	usable := usableCoreFrac * max.Get(resources.CPU)
	cpuScale := math.Min(eff.Get(resources.CPU), usable) / usable
	ioScale := ioScaleOf(eff, max)

	t := serialFrac + parallelFrac/cpuScale + ioFrac/ioScale
	base := serialFrac + parallelFrac + ioFrac
	perf := base / t

	// Memory: losing page cache re-reads sources from disk; swapping the
	// build's working set is much worse.
	perf *= cachePenalty(d, 0.3)
	perf *= swapPenalty(d, 6)
	return clamp01(perf)
}

// Memcached models an in-memory cache with a Zipf-skewed working set:
// large slack (CPU and network are over-provisioned, the coldest keys
// are rarely touched), then gentle degradation as hot items no longer
// fit (Section 3.2.2, Figure 3).
type Memcached struct{}

// Name implements ResourceModel.
func (Memcached) Name() string { return "memcached" }

// InstallWorkload implements ResourceModel: almost all memory is the
// item store (anonymous), no meaningful page cache.
func (Memcached) InstallWorkload(d *hypervisor.Domain) {
	mem := d.MaxSize().Get(resources.Memory)
	d.Guest().SetWorkload(0.80*mem, 0.02*mem)
}

// Performance implements ResourceModel.
func (m Memcached) Performance(d *hypervisor.Domain) float64 {
	eff := d.Effective()
	max := d.MaxSize()

	// CPU and network need only ~30% / ~40% of the allocation.
	cpuPart := math.Min(1, eff.Get(resources.CPU)/(0.30*max.Get(resources.CPU)))
	netPart := 1.0
	if max.Get(resources.NetBW) > 0 {
		netPart = math.Min(1, eff.Get(resources.NetBW)/(0.40*max.Get(resources.NetBW)))
	}

	// Working set = 55% of memory; Zipf access skew means the fraction of
	// hits retained with a fraction f of the working set resident is
	// roughly f^0.3. Misses are served by the backing store at 8x cost.
	ws := 0.55 * max.Get(resources.Memory)
	avail := eff.Get(resources.Memory)
	hit := 1.0
	if avail < ws {
		hit = math.Pow(math.Max(avail, 0)/ws, 0.3)
	}
	memPart := hit + (1-hit)/8

	return clamp01(math.Min(cpuPart, netPart) * memPart)
}

// SpecJBB models the SpecJBB 2015 JVM benchmark: CPU-saturated (no
// slack), with garbage-collection overhead that explodes as heap
// headroom over the live set vanishes — producing the knee.
type SpecJBB struct{}

// Name implements ResourceModel.
func (SpecJBB) Name() string { return "specjbb" }

// InstallWorkload implements ResourceModel: the JVM commits a large heap
// (RSS ~58% of memory) with a small page cache.
func (SpecJBB) InstallWorkload(d *hypervisor.Domain) {
	mem := d.MaxSize().Get(resources.Memory)
	d.Guest().SetWorkload(0.55*mem, 0.05*mem)
}

// Performance implements ResourceModel.
func (s SpecJBB) Performance(d *hypervisor.Domain) float64 {
	eff := d.Effective()
	max := d.MaxSize()

	// Fully CPU-bound: throughput scales with cores from the first
	// reclaimed core (no slack, Section 3.1).
	cpuPart := eff.Get(resources.CPU) / max.Get(resources.CPU)

	// GC overhead: heap is 70% of effective memory, live data is fixed at
	// 31.5% of nominal memory. Overhead ~ live/(heap-live).
	live := 0.315 * max.Get(resources.Memory)
	heap := 0.70 * eff.Get(resources.Memory)
	const gcCoeff = 0.10
	gc0 := gcCoeff * live / (0.70*max.Get(resources.Memory) - live)
	headroom := heap - live
	if headroom <= 0.01*live {
		headroom = 0.01 * live // thrashing floor
	}
	gc := gcCoeff * live / headroom
	memPart := (1 + gc0) / (1 + gc)

	perf := cpuPart * memPart * swapPenalty(d, 8)
	return clamp01(perf)
}

// --- shared helpers ---

func ioScaleOf(eff, max resources.Vector) float64 {
	if max.Get(resources.DiskBW) <= 0 {
		return 1
	}
	s := eff.Get(resources.DiskBW) / max.Get(resources.DiskBW)
	if s <= 0 {
		return 1e-3
	}
	return s
}

// cachePenalty converts lost page cache into a throughput multiplier;
// weight is the full-cache-loss slowdown fraction.
func cachePenalty(d *hypervisor.Domain, weight float64) float64 {
	return 1 / (1 + weight*d.CacheLoss())
}

// swapPenalty converts hypervisor swap pressure (transparent memory
// deflation below the guest's RSS) into a throughput multiplier; cost is
// the slowdown factor at full pressure.
func swapPenalty(d *hypervisor.Domain, cost float64) float64 {
	return 1 / (1 + cost*d.SwapPressure())
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Figure3Point is one sample of an all-resource deflation sweep.
type Figure3Point struct {
	DeflationPct float64
	Performance  float64
}

// DeflationCurve reproduces one application's Figure 3 series: deflate
// *all* resources of a fresh domain by each percentage using the given
// mechanism and measure normalised performance.
func DeflationCurve(model ResourceModel, mech mechanism.Mechanism, deflPcts []float64) ([]Figure3Point, error) {
	out := make([]Figure3Point, 0, len(deflPcts))
	for _, pct := range deflPcts {
		perf, err := performanceAt(model, mech, pct)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure3Point{DeflationPct: pct, Performance: perf})
	}
	return out, nil
}

// performanceAt builds a standard 8-core/32GB domain, installs the
// application, deflates, and reads the model's performance.
func performanceAt(model ResourceModel, mech mechanism.Mechanism, pct float64) (float64, error) {
	host, err := hypervisor.NewHost(hypervisor.HostConfig{
		Name:     "bench-host",
		Capacity: resources.New(64, 262144, 2000, 20000),
	})
	if err != nil {
		return 0, err
	}
	d, err := host.Define(hypervisor.DomainConfig{
		Name:       "bench-vm",
		Size:       resources.New(8, 32768, 200, 2000),
		Deflatable: true,
		Priority:   0.5,
	})
	if err != nil {
		return 0, err
	}
	if err := d.Start(); err != nil {
		return 0, err
	}
	model.InstallWorkload(d)
	base := model.Performance(d)
	if pct > 0 {
		if pct >= 100 {
			return 0, fmt.Errorf("apps: deflation %g%% out of range", pct)
		}
		if _, err := mechanism.DeflateByFraction(mech, d, pct/100); err != nil {
			return 0, err
		}
	}
	if base <= 0 {
		return 0, fmt.Errorf("apps: %s has non-positive baseline performance", model.Name())
	}
	return model.Performance(d) / base, nil
}
