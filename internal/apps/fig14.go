package apps

import (
	"fmt"
	"math"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/resources"
)

// SpecJBBMemoryPoint is one sample of the Figure 14 sweep: SpecJBB mean
// response time (normalised to no deflation) under memory-only deflation.
type SpecJBBMemoryPoint struct {
	DeflationPct     float64
	MeanRTNormalized float64
}

// SpecJBBMemoryCurve reproduces Figure 14 for the given mechanism
// (Transparent or Hybrid): a 16 GB SpecJBB VM has only its *memory*
// deflated by each percentage; the reported value is the normalised mean
// response time.
//
// The response-time model is driven entirely by domain state produced by
// the real mechanism:
//
//   - hypervisor swap pressure (transparent limit below the JVM's RSS)
//     multiplies response time. Transparent deflation pays a higher
//     per-page cost because the hypervisor's LRU cannot see guest access
//     patterns (the classic two-level paging problem); under hybrid
//     deflation the guest has already surrendered its coldest pages via
//     hot-unplug, so the residual swap is cheaper.
//   - memory actually hot-unplugged *improves* performance slightly
//     (up to ~10%): the guest kernel manages fewer pages and the JVM
//     triggers compaction, per the paper's Figure 14 observation that
//     "hybrid deflation improves performance by about 10%".
func SpecJBBMemoryCurve(mech mechanism.Mechanism, deflPcts []float64) ([]SpecJBBMemoryPoint, error) {
	out := make([]SpecJBBMemoryPoint, 0, len(deflPcts))
	for _, pct := range deflPcts {
		if pct < 0 || pct >= 100 {
			return nil, fmt.Errorf("apps: memory deflation %g%% out of range", pct)
		}
		rt, err := specJBBMemoryRT(mech, pct)
		if err != nil {
			return nil, err
		}
		out = append(out, SpecJBBMemoryPoint{DeflationPct: pct, MeanRTNormalized: rt})
	}
	return out, nil
}

func specJBBMemoryRT(mech mechanism.Mechanism, pct float64) (float64, error) {
	host, err := hypervisor.NewHost(hypervisor.HostConfig{
		Name:     "fig14-host",
		Capacity: resources.New(64, 262144, 2000, 20000),
	})
	if err != nil {
		return 0, err
	}
	d, err := host.Define(hypervisor.DomainConfig{
		Name:       "specjbb-vm",
		Size:       resources.New(8, 16384, 200, 2000),
		Deflatable: true,
		Priority:   0.5,
	})
	if err != nil {
		return 0, err
	}
	if err := d.Start(); err != nil {
		return 0, err
	}
	SpecJBB{}.InstallWorkload(d)

	maxMem := d.MaxSize().Get(resources.Memory)
	target := d.MaxSize().With(resources.Memory, (1-pct/100)*maxMem)
	if _, err := mech.Apply(d, target); err != nil {
		return 0, err
	}

	// Swap cost: transparent pays the blind two-level-LRU price; hybrid's
	// residual swap hits pre-cooled pages.
	swapCost := 8.0
	if mech.Name() == (mechanism.Hybrid{}).Name() {
		swapCost = 4.0
	}
	pressure := d.SwapPressure()

	// Hot-unplug benefit, proportional to how much of the unpluggable
	// range was actually surrendered by the guest.
	unplugged := maxMem - d.Guest().PluggedMemoryMB()
	maxUnpluggable := maxMem - d.Guest().RSSMB()
	benefit := 0.0
	if maxUnpluggable > 0 && unplugged > 0 {
		benefit = 0.10 * math.Min(1, unplugged/maxUnpluggable)
	}

	return (1 - benefit) * (1 + swapCost*pressure), nil
}
