// Package apps contains the application models used by the paper's
// testbed evaluation (Section 7): three batch/steady-state applications
// (SpecJBB 2015, memcached, kernel-compile) whose resource-driven
// performance models reproduce Figures 3 and 14, and two interactive web
// applications — a Wikipedia-like multi-tier service and a
// DeathStarBench-like social-network microservice application — that run
// on processor-sharing queueing stations and reproduce Figures 16-19.
//
// All models consume a hypervisor.Domain's *effective* resource vector,
// so every experiment exercises the real deflation mechanisms rather
// than shortcutting to an analytic formula.
package apps

import (
	"math"
	"sort"

	"vmdeflate/internal/stats"
)

// Metrics collects per-request outcomes from an interactive experiment.
type Metrics struct {
	// ResponseTimes holds the sojourn time of every *served* request.
	ResponseTimes []float64
	// Served and Dropped count request outcomes; Dropped are timeouts.
	Served, Dropped int
}

// Record adds a served request.
func (m *Metrics) Record(rt float64) {
	m.ResponseTimes = append(m.ResponseTimes, rt)
	m.Served++
}

// Drop adds a timed-out request.
func (m *Metrics) Drop() { m.Dropped++ }

// ServedFraction returns the fraction of requests that completed within
// the timeout (Figure 17's metric).
func (m *Metrics) ServedFraction() float64 {
	total := m.Served + m.Dropped
	if total == 0 {
		return math.NaN()
	}
	return float64(m.Served) / float64(total)
}

// Mean returns the mean response time of served requests.
func (m *Metrics) Mean() float64 { return stats.Mean(m.ResponseTimes) }

// Percentile returns the p-th percentile response time of served requests.
func (m *Metrics) Percentile(p float64) float64 {
	return stats.Percentile(m.ResponseTimes, p)
}

// Summary returns (mean, median, p90, p99) response times.
func (m *Metrics) Summary() (mean, median, p90, p99 float64) {
	s := make([]float64, len(m.ResponseTimes))
	copy(s, m.ResponseTimes)
	sort.Float64s(s)
	return stats.Mean(s), stats.PercentileSorted(s, 50),
		stats.PercentileSorted(s, 90), stats.PercentileSorted(s, 99)
}
