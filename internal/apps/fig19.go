package apps

import (
	"fmt"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/loadbalancer"
	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/resources"
	"vmdeflate/internal/sim"
	"vmdeflate/internal/workload"
)

// LBConfig parameterises the Figure 19 experiment: three Wikipedia
// replicas behind a load balancer; two replicas run on deflatable VMs
// and are deflated equally, the third is non-deflatable (Section 7.3).
type LBConfig struct {
	// CoresPerReplica is each replica VM's CPU (10 in the paper).
	CoresPerReplica float64
	// RatePerSec is the total offered load (200 req/s in the paper).
	RatePerSec float64
	// Duration and WarmupFrac as in the other experiments.
	Duration   float64
	WarmupFrac float64
	// Seed drives all randomness.
	Seed int64
	// MeanCPUCost is the mean per-request CPU demand in core-seconds.
	// The Figure 19 replica stack is heavier per request than the big
	// Figure 16 VM (smaller instances, full render path).
	MeanCPUCost float64
}

// DefaultLBConfig mirrors Section 7.3's setup.
func DefaultLBConfig() LBConfig {
	return LBConfig{
		CoresPerReplica: 10,
		RatePerSec:      200,
		Duration:        120,
		WarmupFrac:      0.15,
		Seed:            1,
		MeanCPUCost:     0.045,
	}
}

// LBPoint is one deflation level of the Figure 19 sweep, for one
// balancing policy.
type LBPoint struct {
	DeflationPct float64
	Mean         float64
	P90          float64
	ServedFrac   float64
}

// RunLBExperiment measures mean and 90th-percentile response time with
// the given balancer construction at one deflation level. deflationAware
// selects the paper's modified HAProxy; false is vanilla WRR with static
// equal weights.
func RunLBExperiment(cfg LBConfig, deflPct float64, deflationAware bool) (LBPoint, error) {
	if deflPct < 0 || deflPct >= 100 {
		return LBPoint{}, fmt.Errorf("apps: deflation %g%% out of range", deflPct)
	}

	// Three replica VMs on one host; replicas 0 and 1 are deflatable.
	host, err := hypervisor.NewHost(hypervisor.HostConfig{
		Name:     "lb-host",
		Capacity: resources.New(48, 131072, 1000, 10000),
	})
	if err != nil {
		return LBPoint{}, err
	}
	domains := make([]*hypervisor.Domain, 3)
	for i := range domains {
		d, err := host.Define(hypervisor.DomainConfig{
			Name:       fmt.Sprintf("wiki-replica-%d", i),
			Size:       resources.New(cfg.CoresPerReplica, 10240, 100, 1000),
			Deflatable: i < 2,
			Priority:   0.5,
		})
		if err != nil {
			return LBPoint{}, err
		}
		if err := d.Start(); err != nil {
			return LBPoint{}, err
		}
		domains[i] = d
	}
	if deflPct > 0 {
		for i := 0; i < 2; i++ {
			target := domains[i].MaxSize().
				With(resources.CPU, cfg.CoresPerReplica*(1-deflPct/100))
			if _, err := (mechanism.Transparent{}).Apply(domains[i], target); err != nil {
				return LBPoint{}, err
			}
		}
	}

	eng := sim.NewEngine(cfg.Seed)
	apps := make([]*WebApp, 3)
	backends := make([]*loadbalancer.Backend, 3)
	for i := range apps {
		apps[i] = NewWebApp(eng, domains[i].Effective().Get(resources.CPU), cfg.Seed+int64(i)+1)
		// Heavier per-request cost for the replica stack.
		apps[i].mix.HitCost = cfg.MeanCPUCost * 0.3
		apps[i].mix.MissCost = cfg.MeanCPUCost * 6.13
		backends[i] = &loadbalancer.Backend{Name: domains[i].Name(), Weight: 100}
	}

	var lb loadbalancer.Balancer
	if deflationAware {
		da := loadbalancer.NewDeflationAware(backends)
		for i, b := range backends {
			da.ReportCapacity(b, domains[i].Effective().Get(resources.CPU))
		}
		lb = da
	} else {
		lb = loadbalancer.NewWeightedRoundRobin(backends)
	}

	byName := map[string]*WebApp{}
	for i, b := range backends {
		byName[b.Name] = apps[i]
	}
	var agg Metrics
	warmupEnd := cfg.Duration * cfg.WarmupFrac
	src := workload.NewPoissonSource(eng, cfg.RatePerSec, cfg.Seed+10, func(now float64, _ int) {
		b, err := lb.Pick()
		if err != nil {
			return
		}
		app := byName[b.Name]
		if now < warmupEnd {
			app.warmRequest(now)
			loadbalancer.Release(b)
			return
		}
		serveVia(app, now, &agg, b)
	})
	src.Start()
	eng.At(cfg.Duration, func(float64) { src.Stop() })
	eng.RunUntil(cfg.Duration + apps[0].Timeout + 1)

	mean, _, p90, _ := agg.Summary()
	return LBPoint{
		DeflationPct: deflPct,
		Mean:         mean,
		P90:          p90,
		ServedFrac:   agg.ServedFraction(),
	}, nil
}

// serveVia routes one measured request into app, recording into agg and
// releasing the backend on completion or timeout.
func serveVia(app *WebApp, now float64, agg *Metrics, b *loadbalancer.Backend) {
	work := app.mix.Draw()
	start := now
	var timeoutH sim.Handle
	j := app.station.Submit(work, func(done float64) {
		timeoutH.Cancel()
		agg.Record(done - start + app.FixedLatency)
		loadbalancer.Release(b)
	})
	if h, err := app.eng.After(app.Timeout, func(float64) {
		if app.station.Cancel(j) {
			agg.Drop()
			loadbalancer.Release(b)
		}
	}); err == nil {
		timeoutH = h
	}
}

// LBSweep runs both balancers across deflation levels (Figure 19's
// x-axis: 0-80%).
func LBSweep(cfg LBConfig, deflPcts []float64) (aware, vanilla []LBPoint, err error) {
	for _, pct := range deflPcts {
		a, err := RunLBExperiment(cfg, pct, true)
		if err != nil {
			return nil, nil, err
		}
		v, err := RunLBExperiment(cfg, pct, false)
		if err != nil {
			return nil, nil, err
		}
		aware = append(aware, a)
		vanilla = append(vanilla, v)
	}
	return aware, vanilla, nil
}
