package apps

import (
	"fmt"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/queueing"
	"vmdeflate/internal/resources"
	"vmdeflate/internal/sim"
	"vmdeflate/internal/workload"
)

// WebApp models the replicated German-Wikipedia stack of Section 7.1.1
// (MediaWiki + MySQL + Apache + memcached in one VM): an open-loop
// request stream served by a processor-sharing CPU. Requests carry a
// CPU demand drawn from the page mix; a fixed latency term covers
// network, database waits, and render pipeline outside the CPU; requests
// exceeding the timeout are dropped ("no longer interesting to the
// users", Section 7.2).
type WebApp struct {
	eng     *sim.Engine
	station *queueing.PSStation
	mix     *workload.PageMix

	// FixedLatency is the CPU-independent response-time component.
	FixedLatency float64
	// Timeout drops requests that exceed it (15 s in the paper).
	Timeout float64

	metrics Metrics
}

// NewWebApp creates a Wikipedia-like application on a station with the
// given effective CPU capacity (cores).
func NewWebApp(eng *sim.Engine, capacityCores float64, seed int64) *WebApp {
	return &WebApp{
		eng:          eng,
		station:      queueing.NewPSStation(eng, capacityCores),
		mix:          workload.NewPageMix(seed),
		FixedLatency: 0.25,
		Timeout:      15,
	}
}

// SetCapacity applies a deflation/reinflation event to the app's CPU.
func (w *WebApp) SetCapacity(cores float64) { w.station.SetCapacity(cores) }

// Station exposes the underlying PS station (for load-balancer tests).
func (w *WebApp) Station() *queueing.PSStation { return w.station }

// Metrics returns the collected request metrics.
func (w *WebApp) Metrics() *Metrics { return &w.metrics }

// HandleRequest admits one request at virtual time now.
func (w *WebApp) HandleRequest(now float64, _ int) {
	work := w.mix.Draw()
	start := now
	var job *queueing.Job
	var timeoutH sim.Handle
	job = w.station.Submit(work, func(done float64) {
		timeoutH.Cancel()
		w.metrics.Record(done - start + w.FixedLatency)
	})
	h, err := w.eng.After(w.Timeout, func(float64) {
		if w.station.Cancel(job) {
			w.metrics.Drop()
		}
	})
	if err == nil {
		timeoutH = h
	}
}

// WikipediaConfig parameterises the Figure 16/17 experiment.
type WikipediaConfig struct {
	// Cores is the VM's nominal CPU allocation (30 in the paper).
	Cores float64
	// MemoryMB is the VM's memory (16 GB in the paper).
	MemoryMB float64
	// RatePerSec is the offered load (800 req/s in the paper).
	RatePerSec float64
	// Duration is the measured interval in seconds.
	Duration float64
	// WarmupFrac discards the first fraction of the run.
	WarmupFrac float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultWikipediaConfig mirrors Section 7.2's setup with a simulation
// length that keeps percentile estimates stable.
func DefaultWikipediaConfig() WikipediaConfig {
	return WikipediaConfig{
		Cores:      30,
		MemoryMB:   16384,
		RatePerSec: 800,
		Duration:   120,
		WarmupFrac: 0.15,
		Seed:       1,
	}
}

// WikipediaPoint is one deflation level of the Figure 16/17 sweep.
type WikipediaPoint struct {
	DeflationPct   float64
	Cores          float64 // effective cores after deflation
	Mean           float64
	Median         float64
	P90            float64
	P99            float64
	ServedFraction float64
}

// RunWikipedia measures the Wikipedia application at one CPU deflation
// level, exercising the real transparent mechanism on a real domain to
// derive the effective capacity (Figures 16 and 17).
func RunWikipedia(cfg WikipediaConfig, deflPct float64) (WikipediaPoint, error) {
	if deflPct < 0 || deflPct >= 100 {
		return WikipediaPoint{}, fmt.Errorf("apps: deflation %g%% out of range", deflPct)
	}
	host, err := hypervisor.NewHost(hypervisor.HostConfig{
		Name:     "wiki-host",
		Capacity: resources.New(48, 131072, 1000, 10000),
	})
	if err != nil {
		return WikipediaPoint{}, err
	}
	d, err := host.Define(hypervisor.DomainConfig{
		Name:       "wiki-vm",
		Size:       resources.New(cfg.Cores, cfg.MemoryMB, 200, 2000),
		Deflatable: true,
		Priority:   0.5,
	})
	if err != nil {
		return WikipediaPoint{}, err
	}
	if err := d.Start(); err != nil {
		return WikipediaPoint{}, err
	}
	if deflPct > 0 {
		target := d.MaxSize().With(resources.CPU, cfg.Cores*(1-deflPct/100))
		if _, err := (mechanism.Transparent{}).Apply(d, target); err != nil {
			return WikipediaPoint{}, err
		}
	}
	cores := d.Effective().Get(resources.CPU)

	eng := sim.NewEngine(cfg.Seed)
	app := NewWebApp(eng, cores, cfg.Seed+1)

	warmupEnd := cfg.Duration * cfg.WarmupFrac
	src := workload.NewPoissonSource(eng, cfg.RatePerSec, cfg.Seed+2, func(now float64, seq int) {
		if now < warmupEnd {
			// Warm the queue without recording.
			app.warmRequest(now)
			return
		}
		app.HandleRequest(now, seq)
	})
	src.Start()
	eng.At(cfg.Duration, func(float64) { src.Stop() })
	eng.RunUntil(cfg.Duration + app.Timeout + 1)

	m := app.Metrics()
	mean, median, p90, p99 := m.Summary()
	return WikipediaPoint{
		DeflationPct:   deflPct,
		Cores:          cores,
		Mean:           mean,
		Median:         median,
		P90:            p90,
		P99:            p99,
		ServedFraction: m.ServedFraction(),
	}, nil
}

// warmRequest submits load without recording metrics.
func (w *WebApp) warmRequest(now float64) {
	work := w.mix.Draw()
	var job *queueing.Job
	job = w.station.Submit(work, nil)
	w.eng.After(w.Timeout, func(float64) { w.station.Cancel(job) })
}

// WikipediaSweep runs RunWikipedia across the paper's deflation levels
// (0-97%, Figure 16's x-axis).
func WikipediaSweep(cfg WikipediaConfig, deflPcts []float64) ([]WikipediaPoint, error) {
	out := make([]WikipediaPoint, 0, len(deflPcts))
	for _, pct := range deflPcts {
		p, err := RunWikipedia(cfg, pct)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
