package apps

import (
	"math"
	"testing"

	"vmdeflate/internal/mechanism"
)

func TestMetrics(t *testing.T) {
	var m Metrics
	if !math.IsNaN(m.ServedFraction()) {
		t.Error("empty metrics served fraction should be NaN")
	}
	for _, rt := range []float64{0.1, 0.2, 0.3, 0.4} {
		m.Record(rt)
	}
	m.Drop()
	if m.Served != 4 || m.Dropped != 1 {
		t.Errorf("counters = %d/%d", m.Served, m.Dropped)
	}
	if got := m.ServedFraction(); got != 0.8 {
		t.Errorf("ServedFraction = %v", got)
	}
	if got := m.Mean(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Mean = %v", got)
	}
	mean, median, p90, p99 := m.Summary()
	if mean != 0.25 || median != 0.25 {
		t.Errorf("summary mean/median = %v/%v", mean, median)
	}
	if p90 < median || p99 < p90 {
		t.Errorf("percentile ordering: %v %v", p90, p99)
	}
	if got := m.Percentile(100); got != 0.4 {
		t.Errorf("P100 = %v", got)
	}
}

var fig3Pcts = []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}

// Figure 3: per-application deflation-response curves from the real
// resource models on real deflated domains.
func TestFigure3Curves(t *testing.T) {
	curves := map[string][]Figure3Point{}
	for _, model := range []ResourceModel{SpecJBB{}, Kcompile{}, Memcached{}} {
		pts, err := DeflationCurve(model, mechanism.Transparent{}, fig3Pcts)
		if err != nil {
			t.Fatalf("%s: %v", model.Name(), err)
		}
		if len(pts) != len(fig3Pcts) {
			t.Fatalf("%s: %d points", model.Name(), len(pts))
		}
		// Performance at zero deflation is 1 and the curve is monotone
		// non-increasing.
		if pts[0].Performance != 1 {
			t.Errorf("%s: perf(0) = %v", model.Name(), pts[0].Performance)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Performance > pts[i-1].Performance+1e-9 {
				t.Errorf("%s: performance increased at %v%%", model.Name(), pts[i].DeflationPct)
			}
		}
		curves[model.Name()] = pts
	}
	// SpecJBB has no slack: visible degradation by 10%.
	if curves["specjbb"][1].Performance >= 0.999 {
		t.Errorf("specjbb should degrade immediately: %v", curves["specjbb"][1].Performance)
	}
	// Memcached holds ~1 through 30% deflation (its slack region).
	if curves["memcached"][3].Performance < 0.97 {
		t.Errorf("memcached at 30%% = %v, want ~1", curves["memcached"][3].Performance)
	}
	// At 50%: memcached > kcompile > specjbb (Figure 3's ordering).
	mc, kc, sj := curves["memcached"][5].Performance, curves["kcompile"][5].Performance, curves["specjbb"][5].Performance
	if !(mc > kc && kc > sj) {
		t.Errorf("ordering at 50%%: memcached=%v kcompile=%v specjbb=%v", mc, kc, sj)
	}
}

func TestDeflationCurveRejectsBadPct(t *testing.T) {
	if _, err := DeflationCurve(SpecJBB{}, mechanism.Transparent{}, []float64{100}); err == nil {
		t.Error("100% deflation should fail")
	}
}

// Figure 14: SpecJBB memory deflation — transparent flat until ~40%,
// rising after; hybrid at or below transparent everywhere and ~10%
// better than baseline in the mid-range.
func TestFigure14SpecJBBMemory(t *testing.T) {
	pcts := []float64{0, 10, 20, 30, 40, 45}
	tr, err := SpecJBBMemoryCurve(mechanism.Transparent{}, pcts)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := SpecJBBMemoryCurve(mechanism.Hybrid{}, pcts)
	if err != nil {
		t.Fatal(err)
	}
	// Transparent: flat (1.0) while the limit stays above the JVM's RSS.
	for i, p := range tr {
		if p.DeflationPct <= 40 && math.Abs(p.MeanRTNormalized-1) > 0.02 {
			t.Errorf("transparent at %v%% = %v, want ~1", pcts[i], p.MeanRTNormalized)
		}
	}
	// Transparent at 45% pays for swapping.
	if tr[5].MeanRTNormalized < 1.15 {
		t.Errorf("transparent at 45%% = %v, want > 1.15", tr[5].MeanRTNormalized)
	}
	// Hybrid never worse than transparent, and better than baseline
	// (~0.9) in the 20-40% range.
	for i := range pcts {
		if hy[i].MeanRTNormalized > tr[i].MeanRTNormalized+1e-9 {
			t.Errorf("hybrid worse than transparent at %v%%: %v > %v",
				pcts[i], hy[i].MeanRTNormalized, tr[i].MeanRTNormalized)
		}
	}
	for _, i := range []int{2, 3, 4} {
		if hy[i].MeanRTNormalized > 0.97 {
			t.Errorf("hybrid at %v%% = %v, want ~0.90 (hot-unplug benefit)",
				pcts[i], hy[i].MeanRTNormalized)
		}
	}
}

func TestSpecJBBMemoryCurveRejectsBadPct(t *testing.T) {
	if _, err := SpecJBBMemoryCurve(mechanism.Hybrid{}, []float64{-1}); err == nil {
		t.Error("negative deflation should fail")
	}
}

func shortWikiConfig() WikipediaConfig {
	cfg := DefaultWikipediaConfig()
	cfg.Duration = 40
	return cfg
}

// Figures 16+17: Wikipedia response times flat until ~70% CPU deflation;
// request loss only appears beyond 70%.
func TestWikipediaDeflationShape(t *testing.T) {
	cfg := shortWikiConfig()
	base, err := RunWikipedia(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.Mean < 0.2 || base.Mean > 0.5 {
		t.Errorf("undeflated mean RT = %v, want ~0.3 (paper)", base.Mean)
	}
	if base.ServedFraction < 0.999 {
		t.Errorf("undeflated served = %v, want ~1", base.ServedFraction)
	}
	if base.Cores != 30 {
		t.Errorf("cores = %v", base.Cores)
	}

	d50, err := RunWikipedia(cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d50.ServedFraction < 0.999 {
		t.Errorf("50%% deflation served = %v, want ~1", d50.ServedFraction)
	}
	if d50.Mean > 2*base.Mean {
		t.Errorf("50%% deflation mean = %v, want < 2x base %v", d50.Mean, base.Mean)
	}

	d80, err := RunWikipedia(cfg, 80)
	if err != nil {
		t.Fatal(err)
	}
	if d80.Mean < d50.Mean {
		t.Errorf("80%% deflation should be slower than 50%%: %v < %v", d80.Mean, d50.Mean)
	}
	if d80.ServedFraction > 0.98 {
		t.Errorf("80%% deflation should drop requests: served=%v", d80.ServedFraction)
	}

	d97, err := RunWikipedia(cfg, 97)
	if err != nil {
		t.Fatal(err)
	}
	// Deflated to ~1 core the app survives but sheds most load (the
	// paper: "even when deflated to a single core, the application did
	// not crash").
	if d97.ServedFraction > 0.4 || d97.ServedFraction <= 0 {
		t.Errorf("97%% deflation served = %v, want small but positive", d97.ServedFraction)
	}
}

func TestWikipediaSweepAndValidation(t *testing.T) {
	cfg := shortWikiConfig()
	cfg.Duration = 20
	pts, err := WikipediaSweep(cfg, []float64{0, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if _, err := RunWikipedia(cfg, 100); err == nil {
		t.Error("100% deflation should fail")
	}
	if _, err := RunWikipedia(cfg, -1); err == nil {
		t.Error("negative deflation should fail")
	}
}

// Figure 18: the social network tolerates 50% deflation with negligible
// loss and degrades abruptly beyond.
func TestSocialNetworkDeflationShape(t *testing.T) {
	cfg := DefaultSocialNetConfig()
	cfg.Duration = 40

	base, err := RunSocialNetwork(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.ServedFraction < 0.999 {
		t.Errorf("undeflated served = %v", base.ServedFraction)
	}

	d50, err := RunSocialNetwork(cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	// "No performance losses" on Figure 18's log-scale axis: the median
	// stays within a small constant factor and well under 0.2 s absolute.
	if d50.Median > 5*base.Median || d50.Median > 0.2 {
		t.Errorf("50%% deflation median %v vs base %v: should stay near base", d50.Median, base.Median)
	}
	if d50.ServedFraction < 0.99 {
		t.Errorf("50%% deflation served = %v", d50.ServedFraction)
	}

	d65, err := RunSocialNetwork(cfg, 65)
	if err != nil {
		t.Fatal(err)
	}
	// Abrupt degradation: tail at least 10x the 50% level.
	if d65.P99 < 10*d50.P99 {
		t.Errorf("65%% deflation p99 = %v, want >> %v (abrupt knee)", d65.P99, d50.P99)
	}
}

func TestSocialNetworkValidation(t *testing.T) {
	cfg := DefaultSocialNetConfig()
	if _, err := RunSocialNetwork(cfg, 100); err == nil {
		t.Error("100% should fail")
	}
	eng := simEngineForTest()
	sn := NewSocialNetwork(eng, 1, 2, 2, 2, 2)
	if sn.Services() != 30 {
		t.Errorf("services = %d, want 30", sn.Services())
	}
}

// Figure 19: the deflation-aware balancer beats vanilla WRR at high
// deflation levels.
func TestDeflationAwareLBBeatsVanilla(t *testing.T) {
	cfg := DefaultLBConfig()
	cfg.Duration = 40
	aware, err := RunLBExperiment(cfg, 70, true)
	if err != nil {
		t.Fatal(err)
	}
	vanilla, err := RunLBExperiment(cfg, 70, false)
	if err != nil {
		t.Fatal(err)
	}
	if aware.P90 >= vanilla.P90 {
		t.Errorf("aware p90 %v should beat vanilla %v at 70%% deflation", aware.P90, vanilla.P90)
	}
	if aware.Mean > vanilla.Mean*1.05 {
		t.Errorf("aware mean %v should be <= vanilla %v", aware.Mean, vanilla.Mean)
	}
}

func TestLBUndeflatedEquivalent(t *testing.T) {
	cfg := DefaultLBConfig()
	cfg.Duration = 30
	aware, err := RunLBExperiment(cfg, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	vanilla, err := RunLBExperiment(cfg, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same weights -> nearly identical performance.
	if math.Abs(aware.Mean-vanilla.Mean) > 0.05*vanilla.Mean {
		t.Errorf("undeflated means should match: %v vs %v", aware.Mean, vanilla.Mean)
	}
	if _, err := RunLBExperiment(cfg, 100, true); err == nil {
		t.Error("100% should fail")
	}
}

func TestLBSweep(t *testing.T) {
	cfg := DefaultLBConfig()
	cfg.Duration = 20
	aware, vanilla, err := LBSweep(cfg, []float64{0, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(aware) != 2 || len(vanilla) != 2 {
		t.Fatalf("lengths = %d/%d", len(aware), len(vanilla))
	}
}
