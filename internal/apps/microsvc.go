package apps

import (
	"fmt"
	"math/rand"

	"vmdeflate/internal/hypervisor"
	"vmdeflate/internal/mechanism"
	"vmdeflate/internal/queueing"
	"vmdeflate/internal/resources"
	"vmdeflate/internal/sim"
	"vmdeflate/internal/workload"
)

// SocialNetwork models the DeathStarBench social-network application of
// Section 7.1.1 (Figure 15): 30 microservices in three logical tiers —
// 3 frontend, 15 logic, and 12 backend (4 memcached + 8 databases). A
// request passes a frontend service, fans out to several logic services
// in parallel, then performs parallel backend lookups; its response time
// is the critical path through the tiers. Each microservice runs in a
// container (max 2 cores, min 0.05) modelled as a processor-sharing
// station whose capacity comes from a real cgroup-limited domain.
//
// Section 7.2 deflates 22 of the 30 services (everything except the 8
// databases); RunSocialNetwork reproduces that exactly.
type SocialNetwork struct {
	eng *sim.Engine
	rng *rand.Rand

	frontend []*queueing.PSStation
	logic    []*queueing.PSStation
	cache    []*queueing.PSStation
	db       []*queueing.PSStation

	// Per-tier mean CPU cost (seconds) per visit.
	FrontendCost, LogicCost, CacheCost, DBCost float64
	// LogicFanout parallel logic calls and CacheLookups+DBLookups
	// parallel backend calls per request.
	LogicFanout, CacheLookups, DBLookups int
	// HopLatency is fixed network latency per tier crossing.
	HopLatency float64
	// Timeout drops requests exceeding it.
	Timeout float64

	metrics Metrics
}

// SocialNetConfig parameterises the Figure 18 experiment.
type SocialNetConfig struct {
	// RatePerSec is the offered load (500 req/s in the paper).
	RatePerSec float64
	// Duration is the measured interval (seconds).
	Duration float64
	// WarmupFrac discards the first fraction of the run.
	WarmupFrac float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultSocialNetConfig mirrors Section 7.2: 500 req/s with wrk2-style
// constant throughput.
func DefaultSocialNetConfig() SocialNetConfig {
	return SocialNetConfig{RatePerSec: 500, Duration: 60, WarmupFrac: 0.15, Seed: 1}
}

// SocialNetPoint is one deflation level of the Figure 18 sweep.
type SocialNetPoint struct {
	DeflationPct   float64
	Median         float64
	P90            float64
	P99            float64
	ServedFraction float64
}

// request tracks one in-flight request across tiers for timeout
// cancellation.
type snRequest struct {
	app      *SocialNetwork
	start    float64
	pending  []*pendingJob
	timedOut bool
	timeoutH sim.Handle
	remain   int
	next     func(now float64)
}

type pendingJob struct {
	st  *queueing.PSStation
	job *queueing.Job
}

// NewSocialNetwork builds the 30-service application with per-tier
// capacities (cores per container instance).
func NewSocialNetwork(eng *sim.Engine, seed int64, feCap, logicCap, cacheCap, dbCap float64) *SocialNetwork {
	// Per-visit CPU costs are calibrated so that at the paper's 500 req/s
	// the deflatable tiers run near 38% utilisation undeflated, cross
	// ~95% at 60% deflation and saturate (rho > 1) at 65% — producing the
	// flat-then-abrupt shape of Figure 18.
	sn := &SocialNetwork{
		eng:          eng,
		rng:          rand.New(rand.NewSource(seed)),
		FrontendCost: 0.0045,
		LogicCost:    0.0057,
		CacheCost:    0.0012,
		DBCost:       0.004,
		LogicFanout:  4,
		CacheLookups: 2,
		DBLookups:    1,
		HopLatency:   0.002,
		Timeout:      60,
	}
	for i := 0; i < 3; i++ {
		sn.frontend = append(sn.frontend, queueing.NewPSStation(eng, feCap))
	}
	for i := 0; i < 15; i++ {
		sn.logic = append(sn.logic, queueing.NewPSStation(eng, logicCap))
	}
	for i := 0; i < 4; i++ {
		sn.cache = append(sn.cache, queueing.NewPSStation(eng, cacheCap))
	}
	for i := 0; i < 8; i++ {
		sn.db = append(sn.db, queueing.NewPSStation(eng, dbCap))
	}
	return sn
}

// Services returns the total number of microservices (30).
func (sn *SocialNetwork) Services() int {
	return len(sn.frontend) + len(sn.logic) + len(sn.cache) + len(sn.db)
}

// SetDeflatableCapacity deflates the 22 deflatable services (frontend,
// logic, memcached) to the given per-container core capacities.
func (sn *SocialNetwork) SetDeflatableCapacity(feCap, logicCap, cacheCap float64) {
	for _, s := range sn.frontend {
		s.SetCapacity(feCap)
	}
	for _, s := range sn.logic {
		s.SetCapacity(logicCap)
	}
	for _, s := range sn.cache {
		s.SetCapacity(cacheCap)
	}
}

// Metrics returns collected request metrics.
func (sn *SocialNetwork) Metrics() *Metrics { return &sn.metrics }

func (sn *SocialNetwork) cost(mean float64) float64 {
	return mean * (0.5 + sn.rng.Float64())
}

func (sn *SocialNetwork) pick(tier []*queueing.PSStation) *queueing.PSStation {
	return tier[sn.rng.Intn(len(tier))]
}

// HandleRequest admits one request; record=false during warmup.
func (sn *SocialNetwork) HandleRequest(now float64, record bool) {
	r := &snRequest{app: sn, start: now}
	if h, err := sn.eng.After(sn.Timeout, func(float64) { r.abort(record) }); err == nil {
		r.timeoutH = h
	}

	// Tier 3 -> completion.
	finish := func(done float64) {
		r.timeoutH.Cancel()
		if record {
			sn.metrics.Record(done - r.start + 3*sn.HopLatency)
		}
	}
	// Tier 2 -> tier 3 (backend fan-out).
	backends := func(now2 float64) {
		n := sn.CacheLookups + sn.DBLookups
		r.fanOut(now2, n, finish, func(i int) (*queueing.PSStation, float64) {
			if i < sn.CacheLookups {
				return sn.pick(sn.cache), sn.cost(sn.CacheCost)
			}
			return sn.pick(sn.db), sn.cost(sn.DBCost)
		})
	}
	// Tier 1 -> tier 2 (logic fan-out).
	logic := func(now1 float64) {
		r.fanOut(now1, sn.LogicFanout, backends, func(int) (*queueing.PSStation, float64) {
			return sn.pick(sn.logic), sn.cost(sn.LogicCost)
		})
	}
	// Tier 0: one frontend visit.
	r.fanOut(now, 1, logic, func(int) (*queueing.PSStation, float64) {
		return sn.pick(sn.frontend), sn.cost(sn.FrontendCost)
	})
}

// fanOut submits n parallel sub-jobs and calls next when all complete.
func (r *snRequest) fanOut(now float64, n int, next func(float64), pick func(i int) (*queueing.PSStation, float64)) {
	if r.timedOut {
		return
	}
	r.remain = n
	r.next = next
	r.pending = r.pending[:0]
	for i := 0; i < n; i++ {
		st, work := pick(i)
		var pj *pendingJob
		job := st.Submit(work, func(done float64) {
			if r.timedOut {
				return
			}
			pj.job = nil
			r.remain--
			if r.remain == 0 {
				r.next(done)
			}
		})
		pj = &pendingJob{st: st, job: job}
		r.pending = append(r.pending, pj)
	}
}

// abort cancels all outstanding sub-jobs on timeout.
func (r *snRequest) abort(record bool) {
	if r.timedOut {
		return
	}
	r.timedOut = true
	for _, pj := range r.pending {
		if pj.job != nil {
			pj.st.Cancel(pj.job)
		}
	}
	if record {
		r.app.metrics.Drop()
	}
}

// RunSocialNetwork measures the social network at one deflation level:
// 22 of 30 microservice containers (everything except the databases) are
// deflated by deflPct using the real transparent mechanism on
// cgroup-limited container domains (Figure 18).
func RunSocialNetwork(cfg SocialNetConfig, deflPct float64) (SocialNetPoint, error) {
	if deflPct < 0 || deflPct >= 100 {
		return SocialNetPoint{}, fmt.Errorf("apps: deflation %g%% out of range", deflPct)
	}
	// Containers: 2 cores max, 0.05 min, 800 MB each (Section 7.2).
	host, err := hypervisor.NewHost(hypervisor.HostConfig{
		Name:     "swarm-node",
		Capacity: resources.New(64, 262144, 2000, 20000),
	})
	if err != nil {
		return SocialNetPoint{}, err
	}
	container, err := host.Define(hypervisor.DomainConfig{
		Name:          "usvc-container",
		Size:          resources.New(2, 800, 0, 0),
		Deflatable:    true,
		Priority:      0.5,
		MinAllocation: resources.New(0.05, 64, 0, 0),
	})
	if err != nil {
		return SocialNetPoint{}, err
	}
	if err := container.Start(); err != nil {
		return SocialNetPoint{}, err
	}
	if deflPct > 0 {
		target := container.MaxSize().With(resources.CPU, 2*(1-deflPct/100))
		if _, err := (mechanism.Transparent{}).Apply(container, target); err != nil {
			return SocialNetPoint{}, err
		}
	}
	deflatedCap := container.Effective().Get(resources.CPU)

	eng := sim.NewEngine(cfg.Seed)
	sn := NewSocialNetwork(eng, cfg.Seed+1, deflatedCap, deflatedCap, deflatedCap, 2)

	warmupEnd := cfg.Duration * cfg.WarmupFrac
	src := workload.NewConstantSource(eng, cfg.RatePerSec, func(now float64, _ int) {
		sn.HandleRequest(now, now >= warmupEnd)
	})
	src.Start()
	eng.At(cfg.Duration, func(float64) { src.Stop() })
	eng.RunUntil(cfg.Duration + sn.Timeout + 1)

	m := sn.Metrics()
	_, median, p90, p99 := m.Summary()
	return SocialNetPoint{
		DeflationPct:   deflPct,
		Median:         median,
		P90:            p90,
		P99:            p99,
		ServedFraction: m.ServedFraction(),
	}, nil
}

// SocialNetworkSweep runs RunSocialNetwork at the paper's levels
// (0, 30, 50, 60, 65 in Figure 18).
func SocialNetworkSweep(cfg SocialNetConfig, deflPcts []float64) ([]SocialNetPoint, error) {
	out := make([]SocialNetPoint, 0, len(deflPcts))
	for _, pct := range deflPcts {
		p, err := RunSocialNetwork(cfg, pct)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
