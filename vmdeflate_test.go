package vmdeflate

import (
	"errors"
	"testing"
)

// Facade-level integration tests: the whole stack driven through the
// public API only.

func TestFacadeEndToEnd(t *testing.T) {
	mgr := NewManager(ClusterConfig{
		Policy:    ProportionalPolicy,
		Mechanism: HybridMechanism,
	})
	for _, n := range []string{"n0", "n1"} {
		if _, err := mgr.AddServer(n, DefaultServerCapacity(), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Fill with deflatable VMs, then admit an on-demand VM by deflation.
	for i, name := range []string{"web-a", "web-b"} {
		_ = i
		if _, _, err := mgr.PlaceVM(DomainConfig{
			Name:       name,
			Size:       CPUMem(48, 98304),
			Deflatable: true,
			Priority:   0.5,
		}); err != nil {
			t.Fatal(err)
		}
	}
	od, _, err := mgr.PlaceVM(DomainConfig{Name: "db", Size: CPUMem(24, 32768)})
	if err != nil {
		t.Fatal(err)
	}
	if od.Allocation() != od.MaxSize() {
		t.Errorf("on-demand VM should be undeflated: %v", od.Allocation())
	}
	st := mgr.Stats()
	if st.VMs != 3 || !st.Allocated.FitsIn(st.Capacity) {
		t.Errorf("stats = %+v", st)
	}
	// Departure reinflates.
	if err := mgr.RemoveVM("db"); err != nil {
		t.Fatal(err)
	}
	web, _, err := mgr.LookupVM("web-a")
	if err != nil {
		t.Fatal(err)
	}
	if web.DeflationFraction() > 0.26 {
		t.Errorf("web-a should have reinflated: deflation %v", web.DeflationFraction())
	}
}

func TestFacadeAdmissionControl(t *testing.T) {
	mgr := NewManager(ClusterConfig{})
	if _, err := mgr.AddServer("n0", CPUMem(48, 131072), 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mgr.PlaceVM(DomainConfig{Name: "big", Size: CPUMem(48, 131072)}); err != nil {
		t.Fatal(err)
	}
	_, _, err := mgr.PlaceVM(DomainConfig{Name: "more", Size: CPUMem(8, 8192)})
	if !errors.Is(err, ErrNoCapacity) {
		t.Errorf("want ErrNoCapacity, got %v", err)
	}
}

func TestFacadeNameLookups(t *testing.T) {
	for _, name := range []string{"transparent", "explicit", "hybrid"} {
		if _, err := MechanismByName(name); err != nil {
			t.Errorf("MechanismByName(%q): %v", name, err)
		}
	}
	for _, name := range []string{"proportional", "priority", "deterministic"} {
		if _, err := PolicyByName(name); err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
		}
	}
	if PriorityFromP95(90, 4) != 1.0 {
		t.Error("PriorityFromP95 wrong")
	}
}

func TestFacadeTraceAndFeasibility(t *testing.T) {
	cfg := DefaultAzureConfig()
	cfg.NumVMs = 200
	tr := GenerateAzureTrace(cfg)
	tab, err := CPUFeasibility(tr, DefaultDeflationLevels())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty feasibility table")
	}
	if FormatFeasibilityTable(tab) == "" {
		t.Error("empty format")
	}
	if _, err := FeasibilityByClass(tr, []float64{50}); err != nil {
		t.Error(err)
	}
	if _, err := FeasibilityBySize(tr, []float64{50}); err != nil {
		t.Error(err)
	}
	if _, err := FeasibilityByPeak(tr, []float64{50}); err != nil {
		t.Error(err)
	}
}

func TestFacadeSimulation(t *testing.T) {
	cfg := DefaultAzureConfig()
	cfg.NumVMs = 300
	cfg.Duration = 86400
	tr := GenerateAzureTrace(cfg)
	base, err := BaselineServerCount(tr, DefaultServerCapacity())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSimulation(SimConfig{Trace: tr, Overcommit: 0.4, BaselineServers: base})
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted == 0 {
		t.Error("nothing admitted")
	}
	sr, err := SweepOvercommit(tr, StrategyProportional, []float64{0, 40})
	if err != nil {
		t.Fatal(err)
	}
	if inc := RevenueIncrease(sr, "static"); len(inc) != 2 {
		t.Errorf("revenue increase = %v", inc)
	}
}

func TestFacadePricingSchemes(t *testing.T) {
	size := CPUMem(8, 16384)
	if StaticPricing.Rate(size, 0.5, size) != 1.6 {
		t.Error("static rate wrong")
	}
	if PriorityPricing.Rate(size, 0.5, size) != 4.0 {
		t.Error("priority rate wrong")
	}
	if AllocationPricing.Rate(size, 0.5, size.Scale(0.5)) != 0.8 {
		t.Error("allocation rate wrong")
	}
}

func TestFacadeApplications(t *testing.T) {
	wcfg := DefaultWikipediaConfig()
	wcfg.Duration = 10
	if _, err := RunWikipedia(wcfg, 30); err != nil {
		t.Error(err)
	}
	scfg := DefaultSocialNetConfig()
	scfg.Duration = 10
	if _, err := RunSocialNetwork(scfg, 30); err != nil {
		t.Error(err)
	}
	lcfg := DefaultLBConfig()
	lcfg.Duration = 10
	if _, err := RunLBExperiment(lcfg, 30, true); err != nil {
		t.Error(err)
	}
}
