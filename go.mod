module vmdeflate

go 1.24
