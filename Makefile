# Developer/CI entry points. `make ci` is what the GitHub Actions
# workflow runs: vet, race-enabled tests, and a one-shot smoke of the
# parallel sweep benchmark.

GO ?= go

.PHONY: build test vet race bench-smoke bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the 10k-VM sweep benchmarks: proves the parallel
# engine end-to-end without the cost of a full benchmark session.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Sweep10k' -benchtime 1x .

# The full reproduction benchmark suite (all figures).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

ci: build vet race bench-smoke
