# Developer/CI entry points. `make ci` is what the GitHub Actions
# workflow runs: vet, race-enabled tests, a one-shot smoke of the
# parallel sweep benchmark, the zero-allocation gate on the placement
# policy hot path, and the 50k-VM capacity-index scale smoke (whose
# BENCH_scale.json report CI archives as a build artifact).

GO ?= go

.PHONY: build test vet race race-placement bench-smoke bench-allocs bench-scale bench-scale-1m bench-scale-10m bench-matrix bench-revocation bench-slo bench-risk bench-pressure bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race shard over the partitioned propose/commit placement path
# and the revocation churn suite: the phase workers, batch commits,
# parallel dirty sync, capacity-shock evacuations, the risk-aware
# (hazard-banded + headroom-gated) placement paths and the engines
# driving them — a fast, explicit signal beside the full `race` run.
race-placement:
	$(GO) test -race -run 'Partition|PlaceVMs|Propose|Sharded|Preemption|Revo|Shock|Resize|Risk|Hazard|Headroom|Pressure' ./internal/cluster ./internal/clustersim

# One iteration of the 10k-VM sweep benchmarks: proves the parallel
# engine end-to-end without the cost of a full benchmark session.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Sweep10k' -benchtime 1x .

# Zero-allocation gate: the steady-state PlaceOn/Reinflate policy pass,
# the partitioned batch-propose pass (risk-blind AND hazard-banded with
# the headroom gate active), the SLO-metered sample pass (closed-form
# queueing math included) AND the calendar event queue's steady-state
# churn must all report 0 allocs/op, or the build fails. The awk gate
# names each required benchmark explicitly (matching on the name with
# its -GOMAXPROCS suffix stripped), so a renamed or silently skipped
# benchmark fails the build instead of shrinking the gate. The
# benchmark output is kept in BENCH_allocs.txt for CI to archive.
bench-allocs:
	$(GO) test -run '^$$' -bench 'PolicyPassSteadyState|ProposeSteadyState|RiskProposeSteadyState|PressureScan' -benchmem ./internal/cluster | tee BENCH_allocs.txt
	$(GO) test -run '^$$' -bench 'SamplePassSLOSteadyState|CalendarQueueSteadyState' -benchmem ./internal/clustersim | tee -a BENCH_allocs.txt
	@awk 'BEGIN { want["BenchmarkPolicyPassSteadyState"]; want["BenchmarkProposeSteadyState"]; \
			want["BenchmarkRiskProposeSteadyState"]; want["BenchmarkPressureScan"]; \
			want["BenchmarkSamplePassSLOSteadyState"]; want["BenchmarkCalendarQueueSteadyState"] } \
		/^Benchmark/ && $$(NF) == "allocs/op" { name = $$1; sub(/-[0-9]+$$/, "", name); \
			if (name in want) { seen[name] = 1; allocs = $$(NF-1) + 0; \
				if (allocs > 0) { failed = 1; print "FAIL: " name " allocates " allocs " allocs/op (want 0)" } } } \
		END { for (n in want) if (!(n in seen)) { failed = 1; print "FAIL: benchmark " n " missing from output" } \
		if (failed) exit 1; \
		print "OK: policy + propose (risk-blind + risk-aware) + pressure scan + SLO sample + calendar queue steady states at 0 allocs/op" }' BENCH_allocs.txt

# Cloud-scale single-run smoke: one 50k-VM deflation run through the
# capacity-indexed manager (sharded across all cores), reported to
# BENCH_scale.json so the perf trajectory is tracked PR-over-PR.
bench-scale:
	$(GO) run ./cmd/benchreport -scale 50000 -scaleout BENCH_scale.json

# The 1M-VM point: an order of magnitude past the CI smoke, for
# measuring the zero-alloc + sharded engine at full cloud scale.
bench-scale-1m:
	$(GO) run ./cmd/benchreport -scale 1000000 -scaleout BENCH_scale_1m.json

# The 10M-VM point, streamed: the trace is never materialised — VM
# parameters generate at arrival, utilisation synthesizes through
# per-VM cursors — so resident memory is O(live VMs). The run fails
# unless peak heap stays >= 3.5x below what the eager generator would
# allocate (per-lifetime utilisation slices; the report also carries the
# ~30x larger horizon-resident denominator for context).
bench-scale-10m:
	$(GO) run ./cmd/benchreport -scale 10000000 -stream -scaleout BENCH_scale_10m.json

# Measured multi-core matrix: GOMAXPROCS x shards x partitions with
# per-phase wall times (propose/commit/sample/reinflate) and peak heap,
# plus aggregate throughput from concurrent share-nothing runs. Fails
# on machines with >= 4 cores unless aggregate throughput scales.
bench-matrix:
	$(GO) run ./cmd/benchreport -matrix 100000 -matrixout BENCH_matrix.json

# Revocation-churn smoke: the 50k-VM run under Poisson server
# revocations (2/server/day), measuring deflation-first evacuation
# throughput (evacuations/sec in BENCH_revocation.json).
bench-revocation:
	$(GO) run ./cmd/benchreport -scale 50000 -shocks poisson -scaleout BENCH_revocation.json

# SLO frontier smoke: the 50k-VM bursty run comparing proportional
# against latency-aware deflation on SLO violations at matched admitted
# load, across overcommitment points and under revocation shocks
# (BENCH_slo.json). Fails if latency-aware does not dominate: strictly
# fewer violation-seconds at every calm overcommitment point, and a
# majority of points plus the net total under revocation shocks.
bench-slo:
	$(GO) run ./cmd/benchreport -slo 50000 -sloout BENCH_slo.json

# Revocation-risk frontier smoke: portfolio server mixes (sweeping the
# cheap revocation-heavy spot slice) run risk-blind vs risk-aware —
# hazard-banded placement plus forecast-headroom admission — under rack
# shocks (BENCH_risk.json). Fails unless risk-aware strictly cuts
# displaced downtime and SLO violation-seconds on every mix at
# near-equal admitted revenue, cuts shock kills fleet-wide, and fleet
# cost falls monotonically as the spot share grows.
bench-risk:
	$(GO) run ./cmd/benchreport -risk 4000 -riskout BENCH_risk.json

# Pressure-index differential perf gate: a high-overcommit 100k-VM run
# (pressure scans dominate) executed twice — bound-pruned descent vs
# the retained full linear scan — on one trace. Fails unless the two
# runs' results are identical (up to the scan meters) AND the pruned
# run's wall clock is strictly lower (BENCH_pressure.json).
bench-pressure:
	$(GO) run ./cmd/benchreport -pressure 100000 -pressureout BENCH_pressure.json

# The full reproduction benchmark suite (all figures).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

ci: build vet race bench-smoke bench-allocs bench-scale bench-revocation bench-slo bench-risk bench-pressure
