# Developer/CI entry points. `make ci` is what the GitHub Actions
# workflow runs: vet, race-enabled tests, a one-shot smoke of the
# parallel sweep benchmark, the zero-allocation gate on the placement
# policy hot path, and the 50k-VM capacity-index scale smoke (whose
# BENCH_scale.json report CI archives as a build artifact).

GO ?= go

.PHONY: build test vet race race-placement bench-smoke bench-allocs bench-scale bench-scale-1m bench-revocation bench-slo bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race shard over the partitioned propose/commit placement path
# and the revocation churn suite: the phase workers, batch commits,
# parallel dirty sync, capacity-shock evacuations and the engines
# driving them — a fast, explicit signal beside the full `race` run.
race-placement:
	$(GO) test -race -run 'Partition|PlaceVMs|Propose|Sharded|Preemption|Revo|Shock|Resize' ./internal/cluster ./internal/clustersim

# One iteration of the 10k-VM sweep benchmarks: proves the parallel
# engine end-to-end without the cost of a full benchmark session.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Sweep10k' -benchtime 1x .

# Zero-allocation gate: the steady-state PlaceOn/Reinflate policy pass,
# the partitioned batch-propose pass AND the SLO-metered sample pass
# (closed-form queueing math included) must all report 0 allocs/op, or
# the build fails. The benchmark output is kept in BENCH_allocs.txt for
# CI to archive.
bench-allocs:
	$(GO) test -run '^$$' -bench 'PolicyPassSteadyState|ProposeSteadyState' -benchmem ./internal/cluster | tee BENCH_allocs.txt
	$(GO) test -run '^$$' -bench 'SamplePassSLOSteadyState' -benchmem ./internal/clustersim | tee -a BENCH_allocs.txt
	@awk '/^Benchmark/ { found++; allocs = $$(NF-1) + 0; \
		if (allocs > 0) { failed = 1; print "FAIL: " $$1 " allocates " allocs " allocs/op (want 0)" } } \
		END { if (found < 3) { print "FAIL: expected the policy-pass, propose-pass and SLO-sample benchmarks, got " found+0; exit 1 } \
		if (failed) exit 1; \
		print "OK: steady-state policy + propose + SLO sample passes at 0 allocs/op" }' BENCH_allocs.txt

# Cloud-scale single-run smoke: one 50k-VM deflation run through the
# capacity-indexed manager (sharded across all cores), reported to
# BENCH_scale.json so the perf trajectory is tracked PR-over-PR.
bench-scale:
	$(GO) run ./cmd/benchreport -scale 50000 -scaleout BENCH_scale.json

# The 1M-VM point: an order of magnitude past the CI smoke, for
# measuring the zero-alloc + sharded engine at full cloud scale.
bench-scale-1m:
	$(GO) run ./cmd/benchreport -scale 1000000 -scaleout BENCH_scale_1m.json

# Revocation-churn smoke: the 50k-VM run under Poisson server
# revocations (2/server/day), measuring deflation-first evacuation
# throughput (evacuations/sec in BENCH_revocation.json).
bench-revocation:
	$(GO) run ./cmd/benchreport -scale 50000 -shocks poisson -scaleout BENCH_revocation.json

# SLO frontier smoke: the 50k-VM bursty run comparing proportional
# against latency-aware deflation on SLO violations at matched admitted
# load, across overcommitment points and under revocation shocks
# (BENCH_slo.json). Fails if latency-aware does not dominate: strictly
# fewer violation-seconds at every calm overcommitment point, and a
# majority of points plus the net total under revocation shocks.
bench-slo:
	$(GO) run ./cmd/benchreport -slo 50000 -sloout BENCH_slo.json

# The full reproduction benchmark suite (all figures).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

ci: build vet race bench-smoke bench-allocs bench-scale bench-revocation bench-slo
