# Developer/CI entry points. `make ci` is what the GitHub Actions
# workflow runs: vet, race-enabled tests, a one-shot smoke of the
# parallel sweep benchmark, and the 50k-VM capacity-index scale smoke
# (whose BENCH_scale.json report CI archives as a build artifact).

GO ?= go

.PHONY: build test vet race bench-smoke bench-scale bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the 10k-VM sweep benchmarks: proves the parallel
# engine end-to-end without the cost of a full benchmark session.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Sweep10k' -benchtime 1x .

# Cloud-scale single-run smoke: one 50k-VM deflation run through the
# capacity-indexed manager, reported to BENCH_scale.json so the perf
# trajectory is tracked PR-over-PR.
bench-scale:
	$(GO) run ./cmd/benchreport -scale 50000 -scaleout BENCH_scale.json

# The full reproduction benchmark suite (all figures).
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

ci: build vet race bench-smoke bench-scale
