// Command webbench runs the testbed-style application experiments of
// Section 7.2-7.3 and prints the series behind Figures 3, 14, 16, 17,
// 18 and 19.
//
// Usage:
//
//	webbench            # all experiments
//	webbench -fig 16    # one figure
package main

import (
	"flag"
	"fmt"
	"log"

	"vmdeflate/internal/apps"
	"vmdeflate/internal/mechanism"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("webbench: ")

	fig := flag.Int("fig", 0, "only this figure (3, 14, 16, 17, 18, 19); 0 = all")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	show := func(n int) bool { return *fig == 0 || *fig == n }

	if show(3) {
		fmt.Println("== Figure 3: normalised performance, all resources deflated together")
		pcts := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
		fmt.Printf("%8s %10s %10s %10s\n", "defl%", "specjbb", "kcompile", "memcached")
		curves := map[string][]apps.Figure3Point{}
		for _, m := range []apps.ResourceModel{apps.SpecJBB{}, apps.Kcompile{}, apps.Memcached{}} {
			pts, err := apps.DeflationCurve(m, mechanism.Transparent{}, pcts)
			check(err)
			curves[m.Name()] = pts
		}
		for i, pct := range pcts {
			fmt.Printf("%8.0f %10.3f %10.3f %10.3f\n", pct,
				curves["specjbb"][i].Performance,
				curves["kcompile"][i].Performance,
				curves["memcached"][i].Performance)
		}
		fmt.Println()
	}

	if show(14) {
		fmt.Println("== Figure 14: SpecJBB mean RT (normalised), memory-only deflation")
		pcts := []float64{0, 5, 10, 15, 20, 25, 30, 35, 40, 45}
		tr, err := apps.SpecJBBMemoryCurve(mechanism.Transparent{}, pcts)
		check(err)
		hy, err := apps.SpecJBBMemoryCurve(mechanism.Hybrid{}, pcts)
		check(err)
		fmt.Printf("%8s %12s %12s\n", "defl%", "transparent", "hybrid")
		for i, pct := range pcts {
			fmt.Printf("%8.0f %12.3f %12.3f\n", pct, tr[i].MeanRTNormalized, hy[i].MeanRTNormalized)
		}
		fmt.Println()
	}

	if show(16) || show(17) {
		fmt.Println("== Figures 16+17: Wikipedia (30 cores, 800 req/s), CPU deflation")
		cfg := apps.DefaultWikipediaConfig()
		cfg.Seed = *seed
		pts, err := apps.WikipediaSweep(cfg, []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 97})
		check(err)
		fmt.Printf("%8s %6s %10s %10s %10s %10s %10s\n",
			"defl%", "cores", "mean(s)", "median(s)", "p90(s)", "p99(s)", "served%")
		for _, p := range pts {
			fmt.Printf("%8.0f %6.1f %10.3f %10.3f %10.3f %10.3f %10.1f\n",
				p.DeflationPct, p.Cores, p.Mean, p.Median, p.P90, p.P99, p.ServedFraction*100)
		}
		fmt.Println()
	}

	if show(18) {
		fmt.Println("== Figure 18: social network (30 microservices, 500 req/s), 22/30 deflated")
		cfg := apps.DefaultSocialNetConfig()
		cfg.Seed = *seed
		pts, err := apps.SocialNetworkSweep(cfg, []float64{0, 30, 50, 60, 65})
		check(err)
		fmt.Printf("%8s %12s %12s %12s %10s\n", "defl%", "median(ms)", "p90(ms)", "p99(ms)", "served%")
		for _, p := range pts {
			fmt.Printf("%8.0f %12.1f %12.1f %12.1f %10.1f\n",
				p.DeflationPct, p.Median*1000, p.P90*1000, p.P99*1000, p.ServedFraction*100)
		}
		fmt.Println()
	}

	if show(19) {
		fmt.Println("== Figure 19: deflation-aware load balancing (3 Wikipedia replicas, 200 req/s)")
		cfg := apps.DefaultLBConfig()
		cfg.Seed = *seed
		pcts := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80}
		aware, vanilla, err := apps.LBSweep(cfg, pcts)
		check(err)
		fmt.Printf("%8s %12s %12s %12s %12s\n",
			"defl%", "aware-mean", "vanilla-mean", "aware-p90", "vanilla-p90")
		for i := range pcts {
			fmt.Printf("%8.0f %12.3f %12.3f %12.3f %12.3f\n", pcts[i],
				aware[i].Mean, vanilla[i].Mean, aware[i].P90, vanilla[i].P90)
		}
		fmt.Println()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
