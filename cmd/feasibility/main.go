// Command feasibility runs the Section 3 trace analysis and prints the
// tables behind Figures 5-12.
//
// Usage:
//
//	feasibility                       # synthetic traces, all figures
//	feasibility -azure azure.csv      # real/preserved Azure-format CSV
//	feasibility -fig 6                # one figure only
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"vmdeflate/internal/feasibility"
	"vmdeflate/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("feasibility: ")

	azurePath := flag.String("azure", "", "Azure-format CSV (default: synthetic)")
	alibabaPath := flag.String("alibaba", "", "Alibaba-format CSV (default: synthetic)")
	nVMs := flag.Int("vms", 2000, "synthetic Azure trace size")
	nContainers := flag.Int("containers", 2000, "synthetic Alibaba trace size")
	seed := flag.Int64("seed", 1, "synthetic trace seed")
	fig := flag.Int("fig", 0, "only this figure (5-12); 0 = all")
	flag.Parse()

	azure := loadAzure(*azurePath, *nVMs, *seed)
	alibaba := loadAlibaba(*alibabaPath, *nContainers, *seed)
	levels := feasibility.DefaultDeflationLevels

	show := func(n int) bool { return *fig == 0 || *fig == n }

	if show(5) {
		t, err := feasibility.CPUFeasibility(azure, levels)
		check(err)
		fmt.Println("== Figure 5: fraction of time CPU usage exceeds deflated allocation (all VMs)")
		fmt.Print(feasibility.FormatTable(t))
	}
	if show(6) {
		ts, err := feasibility.ByClass(azure, levels)
		check(err)
		fmt.Println("== Figure 6: deflatability by workload class")
		for _, t := range ts {
			fmt.Print(feasibility.FormatTable(t))
		}
	}
	if show(7) {
		ts, err := feasibility.BySize(azure, levels)
		check(err)
		fmt.Println("== Figure 7: deflatability by VM memory size")
		for _, t := range ts {
			fmt.Print(feasibility.FormatTable(t))
		}
	}
	if show(8) {
		ts, err := feasibility.ByPeak(azure, levels)
		check(err)
		fmt.Println("== Figure 8: deflatability by 95th-percentile CPU usage")
		for _, t := range ts {
			fmt.Print(feasibility.FormatTable(t))
		}
	}
	if show(9) {
		t, err := feasibility.MemoryFeasibility(alibaba, levels)
		check(err)
		fmt.Println("== Figure 9: container memory occupancy vs deflated allocation")
		fmt.Print(feasibility.FormatTable(t))
	}
	if show(10) {
		s, err := feasibility.MemoryBandwidthUsage(alibaba)
		check(err)
		fmt.Println("== Figure 10: memory-bus bandwidth utilisation")
		fmt.Printf("mean-of-means = %.4f%%  max = %.4f%%\nper-container means: %s\n",
			s.MeanOfMeans, s.MaxOfMax, s.Box)
	}
	if show(11) {
		t, err := feasibility.DiskFeasibility(alibaba, levels)
		check(err)
		fmt.Println("== Figure 11: disk bandwidth deflation feasibility")
		fmt.Print(feasibility.FormatTable(t))
	}
	if show(12) {
		t, err := feasibility.NetworkFeasibility(alibaba, levels)
		check(err)
		fmt.Println("== Figure 12: network bandwidth deflation feasibility")
		fmt.Print(feasibility.FormatTable(t))
	}
}

func loadAzure(path string, n int, seed int64) *trace.AzureTrace {
	if path == "" {
		cfg := trace.DefaultAzureConfig()
		cfg.NumVMs = n
		cfg.Seed = seed
		return trace.GenerateAzure(cfg)
	}
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	tr, err := trace.ReadAzureCSV(f)
	check(err)
	return tr
}

func loadAlibaba(path string, n int, seed int64) *trace.AlibabaTrace {
	if path == "" {
		cfg := trace.DefaultAlibabaConfig()
		cfg.NumContainers = n
		cfg.Seed = seed
		return trace.GenerateAlibaba(cfg)
	}
	f, err := os.Open(path)
	check(err)
	defer f.Close()
	tr, err := trace.ReadAlibabaCSV(f)
	check(err)
	return tr
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
