// Command tracegen generates synthetic Azure-like VM traces and
// Alibaba-like container traces (Section 3's datasets) as CSV.
//
// Usage:
//
//	tracegen -kind azure  -n 10000 -days 3 -seed 1 -o azure.csv
//	tracegen -kind alibaba -n 4000 -samples 288 -seed 1 -o alibaba.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"vmdeflate/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	kind := flag.String("kind", "azure", "trace kind: azure or alibaba")
	n := flag.Int("n", 1000, "number of VMs / containers")
	days := flag.Float64("days", 3, "trace horizon in days (azure)")
	samples := flag.Int("samples", 288, "samples per container (alibaba)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "-", "output file (- for stdout)")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	switch *kind {
	case "azure":
		cfg := trace.DefaultAzureConfig()
		cfg.NumVMs = *n
		cfg.Duration = *days * 86400
		cfg.Seed = *seed
		tr := trace.GenerateAzure(cfg)
		if err := trace.WriteAzureCSV(w, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d VMs over %.1f days\n", len(tr.VMs), *days)
	case "alibaba":
		cfg := trace.DefaultAlibabaConfig()
		cfg.NumContainers = *n
		cfg.Samples = *samples
		cfg.Seed = *seed
		tr := trace.GenerateAlibaba(cfg)
		if err := trace.WriteAlibabaCSV(w, tr); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d containers x %d samples\n", len(tr.Containers), *samples)
	default:
		log.Fatalf("unknown kind %q (want azure or alibaba)", *kind)
	}
}
