// Command benchreport regenerates every table and figure of the paper's
// evaluation end-to-end — the feasibility analysis (Figures 5-12), the
// application experiments (Figures 3, 14, 16-19), and the cluster-scale
// simulation (Figures 20-22) — printing EXPERIMENTS.md-style output.
//
// Usage:
//
//	benchreport            # everything (a few minutes)
//	benchreport -quick     # smaller traces / shorter runs
//	benchreport -scale 50000                 # cloud-scale single-run smoke
//	benchreport -scale 50000 -scaleout BENCH_scale.json
//	benchreport -scale 1000000               # the 1M-VM point (sharded + partitioned)
//	benchreport -scale 100000 -shards 1 -partitions 1   # force a sequential run
//	benchreport -scale 50000 -scenario bursty           # a different workload shape
//	benchreport -scale 50000 -shocks poisson -scaleout BENCH_revocation.json
//	                                # revocation churn: transient servers revoked and
//	                                # restored mid-run, VMs evacuated by deflation
//	                                # (the `make bench-revocation` artifact)
//
// The -scale mode runs one deflation-mode simulation at the given VM
// count through the capacity-indexed manager — with the sample/
// reinflation passes sharded and arrival placement partitioned across
// all cores by default (results are invariant to both counts) — and
// writes a small JSON report (wall time, arrivals/s, admission counts)
// for CI to archive, so the perf trajectory is tracked PR-over-PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"time"

	"vmdeflate/internal/clustersim"
	"vmdeflate/internal/trace"
)

// scaleReport is the BENCH_scale.json / BENCH_revocation.json schema.
// The shock fields are zero when the run has no shock schedule.
type scaleReport struct {
	VMs          int     `json:"vms"`
	Scenario     string  `json:"scenario"`
	Shocks       string  `json:"shocks,omitempty"`
	Servers      int     `json:"servers"`
	Overcommit   float64 `json:"overcommit"`
	Shards       int     `json:"shards"`
	Partitions   int     `json:"partitions"`
	WallSeconds  float64 `json:"wall_seconds"`
	TraceSeconds float64 `json:"trace_gen_seconds"`
	Admitted     int     `json:"admitted"`
	Rejected     int     `json:"rejected"`
	ArrivalsPerS float64 `json:"arrivals_per_sec"`
	Revocations  int     `json:"revocations,omitempty"`
	Evacuations  int     `json:"evacuations,omitempty"`
	ShockKills   int     `json:"shock_kills,omitempty"`
	EvacPerS     float64 `json:"evacuations_per_sec,omitempty"`
}

// runScale executes the cloud-scale single-run smoke: one trace of n
// VMs of the named scenario, cluster sized by the cheap peak-demand
// bound, one indexed deflation run with the sample/reinflation passes
// sharded across `shards` goroutines and arrival placement partitioned
// across `partitions` placement partitions (0 = all cores; the Result
// is identical at any shard and partition count), report written as
// JSON.
func runScale(n, shards, partitions int, scenario, shocks string, seed int64, outPath string) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if partitions <= 0 {
		partitions = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("== scale smoke: %d-VM single deflation run (%d shards, %d placement partitions, shocks: %s)\n",
		n, shards, partitions, shocks)
	t0 := time.Now()
	tr, err := trace.GenerateNamed(scenario, n, 3*86400, seed)
	if err != nil {
		log.Fatal(err)
	}
	genDur := time.Since(t0)
	base, err := clustersim.PeakServerLowerBound(tr, clustersim.DefaultServerCapacity())
	if err != nil {
		log.Fatal(err)
	}
	cfg := clustersim.Config{
		Trace: tr, Overcommit: 0.5, BaselineServers: base,
		Shards: shards, PlacementPartitions: partitions,
	}
	shockKind, err := trace.ParseShockScenario(shocks)
	if err != nil {
		log.Fatal(err)
	}
	if shockKind != trace.ShockNone {
		cfg.ShockConfig = &trace.ShockConfig{Kind: shockKind, RatePerDay: 2, OutageMean: 2 * 3600, Seed: seed}
	}
	t1 := time.Now()
	res, err := clustersim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(t1)
	rep := scaleReport{
		VMs:          n,
		Scenario:     scenario,
		Servers:      res.Servers,
		Overcommit:   0.5,
		Shards:       shards,
		Partitions:   partitions,
		WallSeconds:  wall.Seconds(),
		TraceSeconds: genDur.Seconds(),
		Admitted:     res.Admitted,
		Rejected:     res.Rejected,
		ArrivalsPerS: float64(res.Arrivals) / wall.Seconds(),
	}
	if shockKind != trace.ShockNone {
		rep.Shocks = shocks
		rep.Revocations = res.Revocations
		rep.Evacuations = res.Evacuations
		rep.ShockKills = res.ShockKills
		rep.EvacPerS = float64(res.Evacuations) / wall.Seconds()
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s", out)
	fmt.Printf("scale smoke: %d VMs on %d servers in %s (report: %s)\n",
		n, res.Servers, wall.Round(time.Millisecond), outPath)
}

// sloFrontierPoint compares proportional and latency-aware deflation at
// one (overcommitment, shock-regime) grid point of BENCH_slo.json.
type sloFrontierPoint struct {
	OvercommitPct  float64 `json:"overcommit_pct"`
	Shocks         string  `json:"shocks"`
	Servers        int     `json:"servers"`
	PropAdmitted   int     `json:"proportional_admitted"`
	LatAdmitted    int     `json:"latency_admitted"`
	PropViolSec    float64 `json:"proportional_violation_seconds"`
	LatViolSec     float64 `json:"latency_violation_seconds"`
	PropViolRate   float64 `json:"proportional_violation_rate"`
	LatViolRate    float64 `json:"latency_violation_rate"`
	PropP99        float64 `json:"proportional_p99_slowdown"`
	LatP99         float64 `json:"latency_p99_slowdown"`
	EqualAdmitted  bool    `json:"equal_admitted"`
	LatDominates   bool    `json:"latency_dominates"`
	PropEvacuation int     `json:"proportional_evacuations,omitempty"`
	LatEvacuation  int     `json:"latency_evacuations,omitempty"`
}

// sloReport is the BENCH_slo.json schema.
type sloReport struct {
	VMs             int                `json:"vms"`
	Scenario        string             `json:"scenario"`
	MaxSlowdown     float64            `json:"max_slowdown"`
	WallSeconds     float64            `json:"wall_seconds"`
	DominatedPoints int                `json:"dominated_points"`
	TotalPoints     int                `json:"total_points"`
	ShockNetLatSec  float64            `json:"shock_net_latency_violation_seconds"`
	ShockNetPropSec float64            `json:"shock_net_proportional_violation_seconds"`
	Points          []sloFrontierPoint `json:"points"`
}

// runSLO executes the SLO-frontier smoke: proportional vs latency-aware
// deflation on one bursty trace, SLO-metered with the closed-form PS
// model, across overcommitment points both calm and under Poisson
// revocation shocks. The process exits non-zero unless latency-aware
// dominates — no fewer admissions and strictly fewer violation-seconds —
// at every calm grid point, and, under shocks, at a majority of points
// plus on the summed violation-seconds. (Shock transients are deep-
// deficit events where every policy is driven near the deflation
// floors, so individual shocked points carry placement noise; the calm
// frontier is where the policies actually plan, and is gated strictly.)
func runSLO(n, shards, partitions int, scenario string, seed int64, outPath string) {
	fmt.Printf("== SLO frontier smoke: %d-VM %s trace, proportional vs latency-aware\n", n, scenario)
	t0 := time.Now()
	tr, err := trace.GenerateNamed(scenario, n, 3*86400, seed)
	if err != nil {
		log.Fatal(err)
	}
	base, err := clustersim.PeakServerLowerBound(tr, clustersim.DefaultServerCapacity())
	if err != nil {
		log.Fatal(err)
	}
	strategies := []string{clustersim.StrategyProportional, clustersim.StrategyLatency}
	ocs := []float64{30, 50, 60}
	rep := sloReport{VMs: n, Scenario: scenario, MaxSlowdown: 2}
	var calmMissed, shockDominated, shockTotal int
	for _, shocks := range []string{"none", "poisson"} {
		opts := clustersim.Options{
			BaselineServers:     base,
			Shards:              shards,
			PlacementPartitions: partitions,
			SLO:                 &clustersim.SLOConfig{MaxSlowdown: rep.MaxSlowdown},
		}
		if shocks != "none" {
			opts.ShockConfig = &trace.ShockConfig{
				Kind: trace.ShockPoisson, RatePerDay: 1, OutageMean: 2 * 3600, Seed: seed,
			}
		}
		results, err := clustersim.SweepGrid(tr, strategies, ocs, opts)
		if err != nil {
			log.Fatal(err)
		}
		prop, lat := results[0], results[1]
		for i := range ocs {
			p, l := prop.Points[i], lat.Points[i]
			pt := sloFrontierPoint{
				OvercommitPct:  ocs[i],
				Shocks:         shocks,
				Servers:        l.Servers,
				PropAdmitted:   p.Admitted,
				LatAdmitted:    l.Admitted,
				PropViolSec:    p.SLOViolationSeconds,
				LatViolSec:     l.SLOViolationSeconds,
				PropViolRate:   p.SLOViolationRate,
				LatViolRate:    l.SLOViolationRate,
				PropP99:        p.SLOLatencyP99,
				LatP99:         l.SLOLatencyP99,
				EqualAdmitted:  p.Admitted == l.Admitted,
				LatDominates:   l.Admitted >= p.Admitted && l.SLOViolationSeconds < p.SLOViolationSeconds,
				PropEvacuation: p.Evacuations,
				LatEvacuation:  l.Evacuations,
			}
			if pt.LatDominates {
				rep.DominatedPoints++
			}
			rep.TotalPoints++
			if shocks == "none" {
				if !pt.LatDominates {
					calmMissed++
				}
			} else {
				shockTotal++
				if pt.LatDominates {
					shockDominated++
				}
				rep.ShockNetLatSec += pt.LatViolSec
				rep.ShockNetPropSec += pt.PropViolSec
			}
			rep.Points = append(rep.Points, pt)
			fmt.Printf("oc=%2.0f%% shocks=%-7s admitted %d/%d  viol-sec %.0f/%.0f  p99 %.2f/%.2f  dominates=%v\n",
				ocs[i], shocks, l.Admitted, p.Admitted, pt.LatViolSec, pt.PropViolSec,
				pt.LatP99, pt.PropP99, pt.LatDominates)
		}
	}
	rep.WallSeconds = time.Since(t0).Seconds()
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SLO frontier: %d/%d points dominated (shocked net viol-sec %.0f vs %.0f) in %s (report: %s)\n",
		rep.DominatedPoints, rep.TotalPoints, rep.ShockNetLatSec, rep.ShockNetPropSec,
		time.Duration(rep.WallSeconds*float64(time.Second)).Round(time.Millisecond), outPath)
	if calmMissed > 0 {
		log.Fatalf("latency-aware fails to dominate proportional on %d calm grid points", calmMissed)
	}
	if 2*shockDominated < shockTotal || rep.ShockNetLatSec >= rep.ShockNetPropSec {
		log.Fatalf("latency-aware fails to dominate proportional under shocks: %d/%d points, net viol-sec %.0f vs %.0f",
			shockDominated, shockTotal, rep.ShockNetLatSec, rep.ShockNetPropSec)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")

	quick := flag.Bool("quick", false, "smaller traces and shorter runs")
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Int("scale", 0, "run only the cloud-scale single-run smoke at this VM count")
	scaleOut := flag.String("scaleout", "BENCH_scale.json", "where -scale writes its JSON report")
	shards := flag.Int("shards", 0, "intra-run shard count for -scale (0 = all cores, 1 = sequential)")
	partitions := flag.Int("partitions", 0, "placement partitions for -scale (0 = all cores, 1 = sequential)")
	scenario := flag.String("scenario", "heavytail", "scenario for -scale: azure, diurnal, bursty or heavytail")
	shocks := flag.String("shocks", "none", "capacity-shock scenario for -scale: none, poisson, diurnal or rack")
	slo := flag.Int("slo", 0, "run only the SLO frontier smoke (proportional vs latency-aware) at this VM count")
	sloOut := flag.String("sloout", "BENCH_slo.json", "where -slo writes its JSON report")
	flag.Parse()

	if *scale > 0 {
		runScale(*scale, *shards, *partitions, *scenario, *shocks, *seed, *scaleOut)
		return
	}
	if *slo > 0 {
		// The frontier smoke defaults to the bursty scenario — the load
		// swings are what separate the policies — unless -scenario was
		// given explicitly.
		scn := "bursty"
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scenario" {
				scn = *scenario
			}
		})
		runSLO(*slo, *shards, *partitions, scn, *seed, *sloOut)
		return
	}

	nVMs := 5000
	if *quick {
		nVMs = 1500
	}

	start := time.Now()

	// Figures 5-12 and 3/14/16-19 via the dedicated tools (so their
	// output formats stay the single source of truth).
	run("feasibility", "-vms", strconv.Itoa(nVMs), "-seed", strconv.FormatInt(*seed, 10))
	run("webbench", "-seed", strconv.FormatInt(*seed, 10))

	// Figures 20-22 inline (shared baseline across strategies), fanned
	// out over all cores by the parallel sweep engine.
	fmt.Println("== Figures 20-22: cluster-scale simulation")
	cfg := trace.DefaultAzureConfig()
	cfg.NumVMs = nVMs
	cfg.Seed = *seed
	tr := trace.GenerateAzure(cfg)
	ocs := []float64{0, 10, 20, 30, 40, 50, 60, 70}
	results, err := clustersim.SweepGrid(tr, clustersim.Strategies, ocs, clustersim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, sr := range results {
		fmt.Printf("-- %s\n%8s %12s %12s %12s %12s %12s\n", sr.Strategy,
			"oc%", "failure", "tput-loss%", "rev-static%", "rev-prio%", "rev-alloc%")
		incS := clustersim.RevenueIncrease(sr, "static")
		incP := clustersim.RevenueIncrease(sr, "priority")
		incA := clustersim.RevenueIncrease(sr, "allocation")
		for i, p := range sr.Points {
			fmt.Printf("%8.0f %12.4f %12.2f %12.1f %12.1f %12.1f\n",
				p.OvercommitPct, p.FailureProbability, p.ThroughputLossPct,
				incS[i], incP[i], incA[i])
		}
		fmt.Println()
	}

	fmt.Printf("benchreport: done in %s\n", time.Since(start).Round(time.Second))
}

// run executes a sibling tool via `go run` if available, falling back to
// a PATH lookup; output is streamed through.
func run(tool string, args ...string) {
	cmdArgs := append([]string{"run", "./cmd/" + tool}, args...)
	cmd := exec.Command("go", cmdArgs...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		// Fall back to an installed binary.
		cmd = exec.Command(tool, args...)
		out, err = cmd.CombinedOutput()
		if err != nil {
			log.Printf("%s failed: %v\n%s", tool, err, out)
			return
		}
	}
	fmt.Print(string(out))
}
