// Command benchreport regenerates every table and figure of the paper's
// evaluation end-to-end — the feasibility analysis (Figures 5-12), the
// application experiments (Figures 3, 14, 16-19), and the cluster-scale
// simulation (Figures 20-22) — printing EXPERIMENTS.md-style output.
//
// Usage:
//
//	benchreport            # everything (a few minutes)
//	benchreport -quick     # smaller traces / shorter runs
//	benchreport -scale 50000                 # cloud-scale single-run smoke
//	benchreport -scale 50000 -scaleout BENCH_scale.json
//	benchreport -scale 1000000               # the 1M-VM point (sharded + partitioned)
//	benchreport -scale 100000 -shards 1 -partitions 1   # force a sequential run
//	benchreport -scale 50000 -scenario bursty           # a different workload shape
//	benchreport -scale 50000 -shocks poisson -scaleout BENCH_revocation.json
//	                                # revocation churn: transient servers revoked and
//	                                # restored mid-run, VMs evacuated by deflation
//	                                # (the `make bench-revocation` artifact)
//
// The -scale mode runs one deflation-mode simulation at the given VM
// count through the capacity-indexed manager — with the sample/
// reinflation passes sharded and arrival placement partitioned across
// all cores by default (results are invariant to both counts) — and
// writes a small JSON report (wall time, arrivals/s, admission counts)
// for CI to archive, so the perf trajectory is tracked PR-over-PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"time"

	"vmdeflate/internal/clustersim"
	"vmdeflate/internal/trace"
)

// scaleReport is the BENCH_scale.json / BENCH_revocation.json schema.
// The shock fields are zero when the run has no shock schedule.
type scaleReport struct {
	VMs          int     `json:"vms"`
	Scenario     string  `json:"scenario"`
	Shocks       string  `json:"shocks,omitempty"`
	Servers      int     `json:"servers"`
	Overcommit   float64 `json:"overcommit"`
	Shards       int     `json:"shards"`
	Partitions   int     `json:"partitions"`
	WallSeconds  float64 `json:"wall_seconds"`
	TraceSeconds float64 `json:"trace_gen_seconds"`
	Admitted     int     `json:"admitted"`
	Rejected     int     `json:"rejected"`
	ArrivalsPerS float64 `json:"arrivals_per_sec"`
	Revocations  int     `json:"revocations,omitempty"`
	Evacuations  int     `json:"evacuations,omitempty"`
	ShockKills   int     `json:"shock_kills,omitempty"`
	EvacPerS     float64 `json:"evacuations_per_sec,omitempty"`
}

// runScale executes the cloud-scale single-run smoke: one trace of n
// VMs of the named scenario, cluster sized by the cheap peak-demand
// bound, one indexed deflation run with the sample/reinflation passes
// sharded across `shards` goroutines and arrival placement partitioned
// across `partitions` placement partitions (0 = all cores; the Result
// is identical at any shard and partition count), report written as
// JSON.
func runScale(n, shards, partitions int, scenario, shocks string, seed int64, outPath string) {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if partitions <= 0 {
		partitions = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("== scale smoke: %d-VM single deflation run (%d shards, %d placement partitions, shocks: %s)\n",
		n, shards, partitions, shocks)
	t0 := time.Now()
	tr, err := trace.GenerateNamed(scenario, n, 3*86400, seed)
	if err != nil {
		log.Fatal(err)
	}
	genDur := time.Since(t0)
	base, err := clustersim.PeakServerLowerBound(tr, clustersim.DefaultServerCapacity())
	if err != nil {
		log.Fatal(err)
	}
	cfg := clustersim.Config{
		Trace: tr, Overcommit: 0.5, BaselineServers: base,
		Shards: shards, PlacementPartitions: partitions,
	}
	shockKind, err := trace.ParseShockScenario(shocks)
	if err != nil {
		log.Fatal(err)
	}
	if shockKind != trace.ShockNone {
		cfg.ShockConfig = &trace.ShockConfig{Kind: shockKind, RatePerDay: 2, OutageMean: 2 * 3600, Seed: seed}
	}
	t1 := time.Now()
	res, err := clustersim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(t1)
	rep := scaleReport{
		VMs:          n,
		Scenario:     scenario,
		Servers:      res.Servers,
		Overcommit:   0.5,
		Shards:       shards,
		Partitions:   partitions,
		WallSeconds:  wall.Seconds(),
		TraceSeconds: genDur.Seconds(),
		Admitted:     res.Admitted,
		Rejected:     res.Rejected,
		ArrivalsPerS: float64(res.Arrivals) / wall.Seconds(),
	}
	if shockKind != trace.ShockNone {
		rep.Shocks = shocks
		rep.Revocations = res.Revocations
		rep.Evacuations = res.Evacuations
		rep.ShockKills = res.ShockKills
		rep.EvacPerS = float64(res.Evacuations) / wall.Seconds()
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(outPath, out, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s", out)
	fmt.Printf("scale smoke: %d VMs on %d servers in %s (report: %s)\n",
		n, res.Servers, wall.Round(time.Millisecond), outPath)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")

	quick := flag.Bool("quick", false, "smaller traces and shorter runs")
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Int("scale", 0, "run only the cloud-scale single-run smoke at this VM count")
	scaleOut := flag.String("scaleout", "BENCH_scale.json", "where -scale writes its JSON report")
	shards := flag.Int("shards", 0, "intra-run shard count for -scale (0 = all cores, 1 = sequential)")
	partitions := flag.Int("partitions", 0, "placement partitions for -scale (0 = all cores, 1 = sequential)")
	scenario := flag.String("scenario", "heavytail", "scenario for -scale: azure, diurnal, bursty or heavytail")
	shocks := flag.String("shocks", "none", "capacity-shock scenario for -scale: none, poisson, diurnal or rack")
	flag.Parse()

	if *scale > 0 {
		runScale(*scale, *shards, *partitions, *scenario, *shocks, *seed, *scaleOut)
		return
	}

	nVMs := 5000
	if *quick {
		nVMs = 1500
	}

	start := time.Now()

	// Figures 5-12 and 3/14/16-19 via the dedicated tools (so their
	// output formats stay the single source of truth).
	run("feasibility", "-vms", strconv.Itoa(nVMs), "-seed", strconv.FormatInt(*seed, 10))
	run("webbench", "-seed", strconv.FormatInt(*seed, 10))

	// Figures 20-22 inline (shared baseline across strategies), fanned
	// out over all cores by the parallel sweep engine.
	fmt.Println("== Figures 20-22: cluster-scale simulation")
	cfg := trace.DefaultAzureConfig()
	cfg.NumVMs = nVMs
	cfg.Seed = *seed
	tr := trace.GenerateAzure(cfg)
	ocs := []float64{0, 10, 20, 30, 40, 50, 60, 70}
	results, err := clustersim.SweepGrid(tr, clustersim.Strategies, ocs, clustersim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, sr := range results {
		fmt.Printf("-- %s\n%8s %12s %12s %12s %12s %12s\n", sr.Strategy,
			"oc%", "failure", "tput-loss%", "rev-static%", "rev-prio%", "rev-alloc%")
		incS := clustersim.RevenueIncrease(sr, "static")
		incP := clustersim.RevenueIncrease(sr, "priority")
		incA := clustersim.RevenueIncrease(sr, "allocation")
		for i, p := range sr.Points {
			fmt.Printf("%8.0f %12.4f %12.2f %12.1f %12.1f %12.1f\n",
				p.OvercommitPct, p.FailureProbability, p.ThroughputLossPct,
				incS[i], incP[i], incA[i])
		}
		fmt.Println()
	}

	fmt.Printf("benchreport: done in %s\n", time.Since(start).Round(time.Second))
}

// run executes a sibling tool via `go run` if available, falling back to
// a PATH lookup; output is streamed through.
func run(tool string, args ...string) {
	cmdArgs := append([]string{"run", "./cmd/" + tool}, args...)
	cmd := exec.Command("go", cmdArgs...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		// Fall back to an installed binary.
		cmd = exec.Command(tool, args...)
		out, err = cmd.CombinedOutput()
		if err != nil {
			log.Printf("%s failed: %v\n%s", tool, err, out)
			return
		}
	}
	fmt.Print(string(out))
}
