// Command benchreport regenerates every table and figure of the paper's
// evaluation end-to-end — the feasibility analysis (Figures 5-12), the
// application experiments (Figures 3, 14, 16-19), and the cluster-scale
// simulation (Figures 20-22) — printing EXPERIMENTS.md-style output.
//
// Usage:
//
//	benchreport            # everything (a few minutes)
//	benchreport -quick     # smaller traces / shorter runs
package main

import (
	"flag"
	"fmt"
	"log"
	"os/exec"
	"strconv"
	"time"

	"vmdeflate/internal/clustersim"
	"vmdeflate/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchreport: ")

	quick := flag.Bool("quick", false, "smaller traces and shorter runs")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	nVMs := 5000
	if *quick {
		nVMs = 1500
	}

	start := time.Now()

	// Figures 5-12 and 3/14/16-19 via the dedicated tools (so their
	// output formats stay the single source of truth).
	run("feasibility", "-vms", strconv.Itoa(nVMs), "-seed", strconv.FormatInt(*seed, 10))
	run("webbench", "-seed", strconv.FormatInt(*seed, 10))

	// Figures 20-22 inline (shared baseline across strategies), fanned
	// out over all cores by the parallel sweep engine.
	fmt.Println("== Figures 20-22: cluster-scale simulation")
	cfg := trace.DefaultAzureConfig()
	cfg.NumVMs = nVMs
	cfg.Seed = *seed
	tr := trace.GenerateAzure(cfg)
	ocs := []float64{0, 10, 20, 30, 40, 50, 60, 70}
	results, err := clustersim.SweepGrid(tr, clustersim.Strategies, ocs, clustersim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for _, sr := range results {
		fmt.Printf("-- %s\n%8s %12s %12s %12s %12s %12s\n", sr.Strategy,
			"oc%", "failure", "tput-loss%", "rev-static%", "rev-prio%", "rev-alloc%")
		incS := clustersim.RevenueIncrease(sr, "static")
		incP := clustersim.RevenueIncrease(sr, "priority")
		incA := clustersim.RevenueIncrease(sr, "allocation")
		for i, p := range sr.Points {
			fmt.Printf("%8.0f %12.4f %12.2f %12.1f %12.1f %12.1f\n",
				p.OvercommitPct, p.FailureProbability, p.ThroughputLossPct,
				incS[i], incP[i], incA[i])
		}
		fmt.Println()
	}

	fmt.Printf("benchreport: done in %s\n", time.Since(start).Round(time.Second))
}

// run executes a sibling tool via `go run` if available, falling back to
// a PATH lookup; output is streamed through.
func run(tool string, args ...string) {
	cmdArgs := append([]string{"run", "./cmd/" + tool}, args...)
	cmd := exec.Command("go", cmdArgs...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		// Fall back to an installed binary.
		cmd = exec.Command(tool, args...)
		out, err = cmd.CombinedOutput()
		if err != nil {
			log.Printf("%s failed: %v\n%s", tool, err, out)
			return
		}
	}
	fmt.Print(string(out))
}
